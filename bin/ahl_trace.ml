(* ahl_trace: replay an experiment or an ahl_check witness with the
   observability probes enabled and export the recording.

   Usage: ahl_trace ID [--quick] [--jobs J]
            [--trace out.json] [--jsonl out.jsonl] [--metrics out.json]
            [--summary] [--print]
          ahl_trace --witness "x1 txs=2 ..." [--engine-seed S]
            [--mode ref|client] [--concurrency 2pl|waitdie]
            [--shards K] [--committee N] [--trace out.json] ...

   ID is any experiment id from `ahl_cli experiment --list` (fig10,
   fig13, ...).  The trace artifact is Chrome trace-event JSON — open it
   at chrome://tracing or https://ui.perfetto.dev.  Every run is a
   deterministic simulation and probe names derive from run parameters,
   so artifacts are byte-identical for any --jobs count.

   Exit codes: 0 ok, 1 witness replay found violations, 2 usage/IO
   errors. *)

open Repro_core
open Repro_check
module Hub = Repro_obs.Hub
module Probe = Repro_obs.Probe
module Trace = Repro_obs.Trace
module Metrics = Repro_obs.Metrics
module Sink = Repro_obs.Sink

let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "ahl_trace: %s\n" m; exit 2) fmt

let save_opt ~what path artifact =
  match path with
  | None -> ()
  | Some path -> (
      match Sink.save ~path artifact with
      | Ok () -> Printf.eprintf "ahl_trace: wrote %s to %s\n" what path
      | Error msg -> fail "cannot write %s: %s" path msg)

let () =
  let id = ref "" in
  let witness = ref "" in
  let quick = ref false in
  let jobs = ref 0 in
  let trace_path = ref "" in
  let jsonl_path = ref "" in
  let metrics_path = ref "" in
  let summary = ref false in
  let print_figure = ref false in
  let engine_seed = ref 21 in
  let mode = ref "ref" in
  let concurrency = ref "2pl" in
  let shards = ref 2 in
  let committee = ref 3 in
  let spec =
    [
      ("--witness", Arg.Set_string witness, "W replay an ahl_check cross-shard witness string");
      ("--quick", Arg.Set quick, " reduced sweeps and durations for the experiment");
      ("--jobs", Arg.Set_int jobs, "J worker domains (artifacts are identical for any J)");
      ("--trace", Arg.Set_string trace_path, "PATH write Chrome trace-event JSON here");
      ("--jsonl", Arg.Set_string jsonl_path, "PATH write one JSON event per line here");
      ("--metrics", Arg.Set_string metrics_path, "PATH write the metrics registries as JSON here");
      ("--summary", Arg.Set summary, " print a text summary of the recorded metrics");
      ("--print", Arg.Set print_figure, " also print the rendered figure (experiment runs)");
      ("--engine-seed", Arg.Set_int engine_seed, "S witness replay engine seed (default: 21)");
      ("--mode", Arg.Set_string mode, "M witness coordination mode: ref|client (default: ref)");
      ( "--concurrency",
        Arg.Set_string concurrency,
        "C witness concurrency control: 2pl|waitdie (default: 2pl)" );
      ("--shards", Arg.Set_int shards, "K witness shard committees (default: 2)");
      ("--committee", Arg.Set_int committee, "N witness replicas per committee (default: 3)");
    ]
  in
  Arg.parse (Arg.align spec)
    (fun a -> if !id = "" then id := a else fail "unexpected argument %s" a)
    "ahl_trace ID | --witness W  (replay with tracing; see DESIGN.md)";
  let opt r = if !r = "" then None else Some !r in
  let trace_path = opt trace_path and jsonl_path = opt jsonl_path in
  let metrics_path = opt metrics_path in
  if (!id = "") = (!witness = "") then fail "pass exactly one of an experiment ID or --witness";
  if !witness <> "" then begin
    (* ---- witness replay: one system under test, one trace ---------- *)
    let sched =
      match Xschedule.of_string !witness with
      | s -> s
      | exception Xschedule.Invalid_witness w -> fail "malformed witness: %s" w
    in
    let mode =
      match Xexplore.mode_of_name !mode with
      | Some m -> m
      | None -> fail "unknown mode %s (want ref|client)" !mode
    in
    let concurrency =
      match Xexplore.concurrency_of_name !concurrency with
      | Some c -> c
      | None -> fail "unknown concurrency %s (want 2pl|waitdie)" !concurrency
    in
    let trace = Trace.create () and metrics = Metrics.create () in
    let probe = Probe.make ~trace ~metrics in
    let outcome =
      Xtestbed.run ~probe ~engine_seed:(Int64.of_int !engine_seed) ~mode ~concurrency
        ~shards:!shards ~committee_size:!committee sched
    in
    let violations = Xoracle.check outcome in
    let named = [ ("witness", trace) ] in
    save_opt ~what:"trace" trace_path (Sink.chrome_json named);
    save_opt ~what:"jsonl" jsonl_path (Sink.jsonl named);
    save_opt ~what:"metrics" metrics_path (Sink.metrics_json [ ("witness", metrics) ]);
    if !summary then Sink.print_summary [ ("witness", metrics) ];
    List.iter (fun v -> print_endline (Xoracle.to_string v)) violations;
    Printf.printf "witness replay: %d event(s), %d violation(s)\n" (Trace.length trace)
      (List.length violations);
    exit (if violations = [] then 0 else 1)
  end
  else begin
    (* ---- experiment replay: one probe per datapoint via the hub ---- *)
    let f =
      match Experiment.by_id !id with
      | Some f -> f
      | None -> fail "unknown experiment id %s (try `ahl_cli experiment --list`)" !id
    in
    if !jobs > 0 then Experiment.set_jobs !jobs;
    (* A fresh cache makes the recording complete: memoized runs from an
       earlier figure would otherwise record nothing. *)
    Experiment.reset_caches ();
    let hub = Hub.create () in
    Experiment.set_hub (Some hub);
    let figure = f ~quick:!quick () in
    Experiment.set_hub None;
    if !print_figure then Results.print figure;
    let traces = Hub.traces hub in
    let metrics = Hub.metrics hub in
    save_opt ~what:"trace" trace_path (Sink.chrome_json traces);
    save_opt ~what:"jsonl" jsonl_path (Sink.jsonl traces);
    save_opt ~what:"metrics" metrics_path (Sink.metrics_json metrics);
    if !summary then Sink.print_summary metrics;
    let events = List.fold_left (fun acc (_, t) -> acc + Trace.length t) 0 traces in
    Printf.printf "%s: %d probed run(s), %d event(s)\n" !id (List.length (Hub.names hub)) events;
    exit 0
  end
