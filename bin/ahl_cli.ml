(* Command-line driver for the AHL sharded-blockchain reproduction.

   Subcommands:
     experiment  — regenerate a paper table/figure by id (or list them)
     consensus   — run one PBFT-family committee and report measurements
     sizing      — committee-size calculator (Eq. 1/2)
     beacon      — run the distributed randomness beacon once
     shards      — run the full sharded system under a workload *)

open Cmdliner
open Repro_util
open Repro_consensus
open Repro_core

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)
(* ------------------------------------------------------------------ *)

let experiment_cmd =
  let run ids quick list_only =
    if list_only then begin
      List.iter print_endline Experiment.all_ids;
      0
    end
    else begin
      let ids = if ids = [] then Experiment.all_ids else ids in
      List.iter
        (fun id ->
          match Experiment.by_id id with
          | None -> Printf.printf "unknown experiment id: %s (try --list)\n" id
          | Some f -> Results.print (f ~quick ()))
        ids;
      0
    end
  in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (fig8, table2, ...)") in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sweeps and durations") in
  let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit") in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table or figure from the paper")
    Term.(const run $ ids $ quick $ list_only)

(* ------------------------------------------------------------------ *)
(* consensus                                                           *)
(* ------------------------------------------------------------------ *)

let variant_conv =
  let parse s =
    match
      List.find_opt (fun v -> String.lowercase_ascii v.Config.name = String.lowercase_ascii s)
        (Config.ahl_opt1 :: Config.all_variants)
    with
    | Some v -> Ok v
    | None -> Error (`Msg "expected one of: HL, AHL, AHL+, AHL+op1, AHLR")
  in
  Arg.conv (parse, fun fmt v -> Format.pp_print_string fmt v.Config.name)

let consensus_cmd =
  let run variant n rate duration gcp byzantine =
    let topology = if gcp then Repro_sim.Topology.gcp 8 else Repro_sim.Topology.lan () in
    let cpu_scale = if gcp then 3.5 else 1.0 in
    let r =
      Harness.run ~duration ~warmup:(duration /. 5.0) ~byzantine ~cpu_scale ~variant ~n ~topology
        ~workload:(Harness.Open_loop { rate; clients = 10 })
        ()
    in
    Format.printf "%s n=%d %s: %a@." variant.Config.name n
      (if gcp then "gcp8" else "cluster")
      Harness.pp_result r;
    0
  in
  let variant =
    Arg.(value & opt variant_conv Config.ahl_plus & info [ "variant"; "v" ] ~doc:"HL, AHL, AHL+, AHLR")
  in
  let n = Arg.(value & opt int 19 & info [ "n" ] ~doc:"Committee size") in
  let rate = Arg.(value & opt float 2200.0 & info [ "rate" ] ~doc:"Offered load (req/s)") in
  let duration = Arg.(value & opt float 20.0 & info [ "duration" ] ~doc:"Virtual seconds") in
  let gcp = Arg.(value & flag & info [ "gcp" ] ~doc:"8-region GCP topology instead of the cluster") in
  let byz = Arg.(value & opt int 0 & info [ "byzantine" ] ~doc:"Byzantine replicas") in
  Cmd.v
    (Cmd.info "consensus" ~doc:"Run one consensus committee and report throughput")
    Term.(const run $ variant $ n $ rate $ duration $ gcp $ byz)

(* ------------------------------------------------------------------ *)
(* sizing                                                              *)
(* ------------------------------------------------------------------ *)

let sizing_cmd =
  let run total fraction bits =
    let open Repro_shard in
    let report rule label =
      let n = Sizing.min_committee_size ~total ~fraction ~rule ~security_bits:bits in
      let k = max 1 (total / n) in
      Printf.printf "%-12s committee %4d  -> %3d shard(s) of %d nodes\n" label n k total
    in
    Printf.printf "N = %d, adversary = %.1f%%, target 2^-%d\n" total (100.0 *. fraction) bits;
    report Sizing.Pbft_third "PBFT";
    report Sizing.Ahl_half "AHL+";
    let n = Sizing.min_committee_size ~total ~fraction ~rule:Sizing.Ahl_half ~security_bits:bits in
    let b = Sizing.swap_batch_size ~n in
    Printf.printf "epoch transition with B = log n = %d: Pr(faulty) = %.2e\n" b
      (Sizing.pr_epoch_transition_faulty ~total
         ~byzantine:(int_of_float (fraction *. float_of_int total))
         ~n ~k:(max 1 (total / n)) ~batch:b Sizing.Ahl_half);
    0
  in
  let total = Arg.(value & opt int 2000 & info [ "total"; "N" ] ~doc:"Network size") in
  let fraction = Arg.(value & opt float 0.25 & info [ "adversary"; "s" ] ~doc:"Byzantine fraction") in
  let bits = Arg.(value & opt int 20 & info [ "bits" ] ~doc:"Security parameter (2^-bits)") in
  Cmd.v
    (Cmd.info "sizing" ~doc:"Committee-size security calculator (Equations 1 and 2)")
    Term.(const run $ total $ fraction $ bits)

(* ------------------------------------------------------------------ *)
(* beacon                                                              *)
(* ------------------------------------------------------------------ *)

let beacon_cmd =
  let run n gcp withhold =
    let open Repro_shard in
    let topology = if gcp then Repro_sim.Topology.gcp 8 else Repro_sim.Topology.lan () in
    let delta = Randomness.measured_delta ~topology ~n in
    let l_bits = Randomness.paper_l_bits ~n in
    let o = Randomness.run ~n ~topology ~delta ~l_bits ~byzantine_withhold:withhold () in
    Printf.printf
      "n=%d delta=%.1fs l=%d: rnd=%Lx agreed in %.1fs (%d round(s), %d certificates, %d msgs)\n" n
      delta l_bits o.Randomness.rnd o.Randomness.elapsed o.Randomness.rounds
      o.Randomness.certificates o.Randomness.messages;
    Printf.printf "RandHound at the same size: %.1fs\n"
      (Randomness.randhound_runtime ~n ~group:16 ~topology);
    0
  in
  let n = Arg.(value & opt int 128 & info [ "n" ] ~doc:"Network size") in
  let gcp = Arg.(value & flag & info [ "gcp" ] ~doc:"GCP topology") in
  let withhold = Arg.(value & opt int 0 & info [ "withhold" ] ~doc:"Byzantine certificate withholders") in
  Cmd.v
    (Cmd.info "beacon" ~doc:"Run the SGX randomness-beacon agreement once")
    Term.(const run $ n $ gcp $ withhold)

(* ------------------------------------------------------------------ *)
(* shards                                                              *)
(* ------------------------------------------------------------------ *)

let shards_cmd =
  let run shards committee duration no_reference coordination batching fast_lane theta =
    let mode =
      match coordination with
      | Some m -> m
      | None -> if no_reference then System.Client_driven else System.With_reference
    in
    let mode_tag =
      match mode with
      | System.With_reference -> "with-reference"
      | System.Client_driven -> "client-driven"
      | System.Flattened -> "flattened"
    in
    let base = System.default_config ~shards ~committee_size:committee in
    let batching = if batching then base.System.batching else None in
    let sys = System.create { base with System.mode; batching; fast_lane } in
    (* The fast lane needs commutative work to route: under --fast-lane the
       driver mixes credit-only hot-key increments (mergeable) with
       sendPayments (conditional debits, always locked). *)
    let kind =
      if fast_lane then Workload.Hot_increments { increment_fraction = 0.9 }
      else Workload.Smallbank
    in
    let wl = Workload.create kind ~keyspace:20_000 ~theta ~rng:(Rng.create 4L) in
    Workload.setup wl sys ~initial_balance:5000;
    Workload.start_closed_loop wl sys ~clients:(4 * shards) ~outstanding:32;
    System.run sys ~until:duration;
    Printf.printf
      "shards=%d n=%d %s: %.0f tx/s, %d committed, %.1f%% aborts, cross-shard %.0f%%, R busy %.0f%%\n"
      shards committee mode_tag
      (System.throughput sys ~warmup:(duration /. 5.0))
      (System.committed sys)
      (100.0 *. System.abort_rate sys)
      (100.0 *. Workload.cross_shard_fraction_seen wl)
      (100.0 *. System.reference_busy_fraction sys);
    if fast_lane then begin
      let deltas =
        List.init shards (fun s -> System.merge_lane_log sys ~shard:s)
        |> List.fold_left ( + ) 0
      in
      Printf.printf "fast lane: %d deltas appended, %d block-boundary folds\n" deltas
        (System.merge_folds sys);
      match System.merge_audit sys with
      | [] -> Printf.printf "merge audit: all lanes converged\n"
      | ms -> Printf.printf "merge audit: %d DIVERGENT keys\n" (List.length ms)
    end;
    0
  in
  let shards = Arg.(value & opt int 4 & info [ "shards"; "k" ] ~doc:"Number of shards") in
  let committee = Arg.(value & opt int 3 & info [ "committee" ] ~doc:"Committee size") in
  let duration = Arg.(value & opt float 30.0 & info [ "duration" ] ~doc:"Virtual seconds") in
  let no_ref =
    Arg.(
      value & flag
      & info [ "no-reference" ] ~doc:"Client-driven coordination (alias for $(b,--coordination client))")
  in
  let coordination =
    let mode_conv =
      Arg.enum
        [
          ("ref", System.With_reference);
          ("client", System.Client_driven);
          ("flattened", System.Flattened);
        ]
    in
    Arg.(
      value
      & opt (some mode_conv) None
      & info [ "coordination" ]
          ~doc:
            "Cross-shard coordination: $(b,ref) (dedicated reference committee), $(b,client) \
             (client-driven, no fallback), or $(b,flattened) (SharPer-style, the 2PC state \
             machine rides the coordinator shard's own committee)")
  in
  let batching =
    Arg.(
      value & opt bool true
      & info [ "batching" ]
          ~doc:"Batched + pipelined cross-shard commit (use $(b,--batching=false) for the legacy path)")
  in
  let fast_lane =
    Arg.(
      value & flag
      & info [ "fast-lane" ]
          ~doc:
            "Commutative fast lane (DESIGN §18): all-mergeable transactions skip 2PC and its \
             locks, appending deltas that fold deterministically at block boundaries; the \
             workload becomes a 90/10 hot-key increment / sendPayment mix so both paths run")
  in
  let theta = Arg.(value & opt float 0.2 & info [ "zipf" ] ~doc:"Zipf skew of the workload") in
  Cmd.v
    (Cmd.info "shards" ~doc:"Run the full sharded blockchain under SmallBank")
    Term.(
      const run $ shards $ committee $ duration $ no_ref $ coordination $ batching $ fast_lane
      $ theta)

(* ------------------------------------------------------------------ *)
(* contract                                                            *)
(* ------------------------------------------------------------------ *)

let contract_cmd =
  let run from_ to_ amount shards =
    let open Repro_ledger in
    let send_payment =
      Contract.define ~name:"sendPayment" ~arity:3
        [
          Contract.Transfer
            { from_ = Contract.Param 0; to_ = Contract.Param 1; amount = Contract.Amount_param 2 };
        ]
    in
    let args = [ from_; to_; string_of_int amount ] in
    (match Contract.compile send_payment ~args with
    | Error e ->
        Printf.printf "compile error: %s\n" e
    | Ok ops ->
        Printf.printf "compiled operations:\n";
        List.iter (fun op -> Format.printf "  %a@." Tx.pp_op op) ops;
        (match Contract.analyze send_payment ~shards ~args with
        | `Single s -> Printf.printf "single-shard transaction (shard %d)\n" s
        | `Cross l ->
            Printf.printf "distributed transaction across shards [%s] -> 2PC via R\n"
              (String.concat "; " (List.map string_of_int l))));
    0
  in
  let from_ = Arg.(value & opt string "alice" & info [ "from" ] ~doc:"Source account") in
  let to_ = Arg.(value & opt string "bob" & info [ "to" ] ~doc:"Destination account") in
  let amount = Arg.(value & opt int 10 & info [ "amount" ] ~doc:"Amount") in
  let shards = Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Shard count for the analysis") in
  Cmd.v
    (Cmd.info "contract" ~doc:"Compile and analyze a contract invocation (the §6.4 transformer)")
    Term.(const run $ from_ $ to_ $ amount $ shards)

let () =
  let doc = "Sharded-blockchain (AHL) reproduction toolkit" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "ahl_cli" ~doc)
          [ experiment_cmd; consensus_cmd; sizing_cmd; beacon_cmd; shards_cmd; contract_cmd ]))
