(* ahl_lint: project-invariant static analyzer for the AHL reproduction.

   Usage: ahl_lint [--json|--sarif] [--baseline FILE] [--update-baseline]
                   [--base PREFIX] [--exclude SUBSTR]... [--no-default-excludes]
                   [roots...]

   Exit codes: 0 clean, 1 violations, 2 usage/baseline errors. *)

open Repro_analysis

let default_roots = [ "lib"; "bin"; "bench"; "test"; "examples" ]

let default_excludes = [ "_build"; "analysis_fixtures"; ".git" ]

let () =
  let json = ref false in
  let sarif = ref false in
  let base = ref "" in
  let baseline_path = ref "lint.baseline" in
  let update = ref false in
  let excludes = ref default_excludes in
  let roots = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as a JSON array on stdout");
      ("--sarif", Arg.Set sarif, " emit findings as a SARIF 2.1.0 log on stdout");
      ( "--base",
        Arg.Set_string base,
        "PREFIX strip PREFIX from scanned paths before rule scoping (fixture trees)" );
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE tolerated-violation baseline (default: lint.baseline)" );
      ( "--update-baseline",
        Arg.Set update,
        " rewrite the baseline from current findings (R1/R2/R6/R7 are never written)" );
      ( "--exclude",
        Arg.String (fun s -> excludes := s :: !excludes),
        "SUBSTR additionally skip paths containing SUBSTR" );
      ( "--no-default-excludes",
        Arg.Unit (fun () -> excludes := List.filter (fun e -> not (List.mem e default_excludes)) !excludes),
        " drop the built-in excludes (needed to scan fixture trees)" );
    ]
  in
  Arg.parse (Arg.align spec)
    (fun r -> roots := r :: !roots)
    "ahl_lint [options] [roots...]  (default roots: lib bin bench test examples)";
  let roots = match List.rev !roots with [] -> default_roots | r -> r in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        Printf.eprintf "ahl_lint: root %s does not exist\n" r;
        exit 2
      end)
    roots;
  let all = Lint.scan ~base:!base ~roots ~excludes:!excludes () in
  let active = List.filter (fun f -> not f.Lint_types.suppressed) all in
  let inline_allowed = List.length all - List.length active in
  if !update then begin
    match Lint.write_baseline ~path:!baseline_path active with
    | Error msg ->
        Printf.eprintf "ahl_lint: cannot write %s: %s\n" !baseline_path msg;
        exit 2
    | Ok (entries, unbaselinable) ->
        Printf.printf "ahl_lint: wrote %d baseline entries to %s\n" entries !baseline_path;
        if unbaselinable <> [] then begin
          List.iter (fun f -> print_endline (Lint_types.to_human f)) unbaselinable;
          Printf.eprintf
            "ahl_lint: %d R1/R2/R6/R7 violations cannot be baselined; fix them\n"
            (List.length unbaselinable);
          exit 1
        end
  end
  else begin
    match Lint.load_baseline !baseline_path with
    | Error msg ->
        Printf.eprintf "ahl_lint: %s\n" msg;
        exit 2
    | Ok baseline ->
        let final = Lint.apply_baseline ~baseline active in
        if !sarif then print_string (Lint_types.to_sarif final)
        else if !json then print_string (Lint_types.to_json final)
        else begin
          List.iter (fun f -> print_endline (Lint_types.to_human f)) final;
          let errors, warnings =
            List.partition (fun f -> f.Lint_types.severity = Lint_types.Error) final
          in
          (* Rejected-baseline findings are synthesized by apply_baseline, so
             "baselined" counts only the active findings it actually dropped. *)
          let kept =
            List.filter
              (fun f -> List.exists (fun g -> Lint_types.compare_finding f g = 0) active)
              final
          in
          Printf.eprintf
            "ahl_lint: %d violations (%d errors, %d warnings); %d baselined, %d inline-allowed\n"
            (List.length final) (List.length errors) (List.length warnings)
            (List.length active - List.length kept)
            inline_allowed
        end;
        if final <> [] then exit 1
  end
