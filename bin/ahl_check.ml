(* ahl_check: deterministic adversarial schedule explorer for the AHL
   reproduction.

   Usage: ahl_check [--variant NAME] [--n N] [--f F] [--trials T]
                    [--seed S] [--budget B] [--json]
          ahl_check --cross-shard [--mode diff|ref|client|flat]
                    [--concurrency 2pl|waitdie] [--batching] [--fast-lane]
                    [--shards K] [--committee N] [--trials T] [--seed S]
                    [--budget B] [--json]

   Single-committee variants: hl2f1 hl ahl ahl+ ahlr, or `diff` (the
   default) for the headline differential — HL's unattested quorums at
   N=2f+1 must yield a safety violation within the trial budget while
   AHL/AHL+/AHLR stay safe under identical schedules.  `leader-stall`
   runs the byzantine-leader differential instead: under scripted
   stall / selective-serving leader schedules the unattested small-quorum
   committee must storm with view changes on every trial while the
   attested variants keep committing with zero violations.

   --cross-shard switches to whole-system exploration: seeded 2PC
   coordinator-fault schedules over shard committees plus R, with
   atomicity / durable-decision / conservation / stuck-lock / liveness
   oracles.  --mode diff runs the silent-client differential
   (With_reference survives, Client_driven leaves locks stuck); --mode
   ref, client, or flat explores that coordination mode.  --batching runs
   the system under test on the batched + pipelined commit path (the
   witness line is unchanged: batching is a run parameter).  --fast-lane
   turns the commutative fast lane on: honest transfers become mergeable
   delta pairs, schedules also fault the delta legs, and the
   merge-convergence oracle is armed (also a run parameter).

   Exit codes: 0 property holds / no violation, 1 otherwise, 2 usage
   errors.  Every reported witness is replayable from
   (engine_seed, schedule) alone. *)

open Repro_check
open Repro_consensus

let () =
  let variant = ref "diff" in
  let n = ref 0 in
  let f = ref 1 in
  let trials = ref 5 in
  let seed = ref 11 in
  let budget = ref 32 in
  let json = ref false in
  let cross = ref false in
  let batching = ref false in
  let lane = ref false in
  let mode = ref "diff" in
  let concurrency = ref "2pl" in
  let shards = ref 3 in
  let committee = ref 4 in
  let spec =
    [
      ( "--variant",
        Arg.Set_string variant,
        "NAME hl2f1|hl|ahl|ahl+|ahlr, diff for the differential (default), or leader-stall \
         for the byzantine-leader differential" );
      ("--n", Arg.Set_int n, "N committee size (default: derived from the variant and F)");
      ("--f", Arg.Set_int f, "F byzantine replicas (default: 1)");
      ("--trials", Arg.Set_int trials, "T seeded schedules to explore (default: 5)");
      ("--seed", Arg.Set_int seed, "S base seed; trial i uses engine seed S+i (default: 11)");
      ("--budget", Arg.Set_int budget, "B max shrink replays per violation (default: 32)");
      ("--json", Arg.Set json, " emit a machine-readable summary on stdout");
      ("--cross-shard", Arg.Set cross, " explore whole-system cross-shard schedules");
      ( "--batching",
        Arg.Set batching,
        " run the cross-shard system on the batched + pipelined commit path" );
      ( "--fast-lane",
        Arg.Set lane,
        " run the cross-shard system with the commutative fast lane on (delta-leg faults + \
         merge-convergence oracle)" );
      ( "--mode",
        Arg.Set_string mode,
        "M cross-shard mode: diff|ref|client|flat (default: diff, the silent-client \
         differential)" );
      ( "--concurrency",
        Arg.Set_string concurrency,
        "C cross-shard concurrency control: 2pl|waitdie (default: 2pl)" );
      ("--shards", Arg.Set_int shards, "K shard committees for --cross-shard (default: 3)");
      ( "--committee",
        Arg.Set_int committee,
        "N replicas per committee for --cross-shard (default: 4)" );
    ]
  in
  Arg.parse (Arg.align spec)
    (fun a ->
      Printf.eprintf "ahl_check: unexpected argument %s\n" a;
      exit 2)
    "ahl_check [options]  (adversarial schedule explorer; see DESIGN.md)";
  if !f < 1 then begin
    Printf.eprintf "ahl_check: --f must be >= 1\n";
    exit 2
  end;
  if !trials < 1 || !budget < 0 then begin
    Printf.eprintf "ahl_check: --trials must be >= 1 and --budget >= 0\n";
    exit 2
  end;
  let seed = Int64.of_int !seed in
  (* The explorer itself is clock-free; wall time is measured here, at the
     edge, for the JSON summary only.  ahl_lint: allow R1 *)
  let started = Unix.gettimeofday () in
  let finish reports ok =
    if !json then begin
      let wall_time = Unix.gettimeofday () -. started in (* ahl_lint: allow R1 *)
      print_endline (Explore.json_summary ~wall_time reports)
    end;
    exit (if ok then 0 else 1)
  in
  if !cross then begin
    if !shards < 2 || !committee < 3 then begin
      Printf.eprintf "ahl_check: --cross-shard needs --shards >= 2 and --committee >= 3\n";
      exit 2
    end;
    let concurrency =
      match Xexplore.concurrency_of_name !concurrency with
      | Some c -> c
      | None ->
          Printf.eprintf "ahl_check: unknown concurrency %s\n" !concurrency;
          exit 2
    in
    match !mode with
    | "diff" | "differential" ->
        if !lane then begin
          Printf.eprintf
            "ahl_check: --fast-lane does not apply to the silent-client differential\n";
          exit 2
        end;
        let d =
          Xexplore.differential ~batching:!batching ~shards:!shards ~committee_size:!committee
            ~seed ()
        in
        if !json then print_endline (Xexplore.json_of_differential d)
        else Format.printf "%a" Xexplore.pp_differential d;
        exit (if d.Xexplore.holds then 0 else 1)
    | name -> (
        match Xexplore.mode_of_name name with
        | None ->
            Printf.eprintf "ahl_check: unknown cross-shard mode %s\n" name;
            exit 2
        | Some mode ->
            let r =
              Xexplore.run ~batching:!batching ~lane:!lane ~mode ~concurrency ~shards:!shards
                ~committee_size:!committee ~trials:!trials ~seed ~budget:!budget ()
            in
            if !json then print_endline (Xexplore.json_of_report r)
            else Format.printf "%a" Xexplore.pp_report r;
            exit
              (if r.Xexplore.safety_violations = 0 && r.Xexplore.liveness_violations = 0 then 0
               else 1))
  end;
  match !variant with
  | "diff" | "differential" ->
      let d = Explore.differential ~f:!f ~trials:!trials ~seed ~budget:!budget in
      if not !json then begin
        Format.printf "broken:@.%a@." Explore.pp_report d.Explore.broken;
        List.iter (fun r -> Format.printf "safe:@.%a@." Explore.pp_report r) d.Explore.safe;
        Format.printf "differential %s@."
          (if d.Explore.holds then "holds" else "DOES NOT HOLD")
      end;
      finish (d.Explore.broken :: d.Explore.safe) d.Explore.holds
  | "leader-stall" | "leader_stall" ->
      let d = Explore.leader_stall_differential ~f:!f ~trials:!trials ~seed ~budget:!budget in
      if not !json then Format.printf "%a" Explore.pp_leader_differential d;
      finish (d.Explore.broken :: d.Explore.safe) d.Explore.holds
  | name -> (
      match Explore.variant_of_name name with
      | None ->
          Printf.eprintf "ahl_check: unknown variant %s\n" name;
          exit 2
      | Some variant ->
          let n = if !n > 0 then !n else Config.n_for_f variant ~f:!f in
          let r = Explore.run ~variant ~n ~f:!f ~trials:!trials ~seed ~budget:!budget in
          if not !json then Format.printf "%a" Explore.pp_report r;
          finish [ r ] (r.Explore.safety_violations = 0))
