(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus Bechamel micro-benchmarks of the real
   cryptographic / trusted-log operations backing Table 2.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig8 fig13   # selected experiments
     dune exec bench/main.exe -- micro        # only the Bechamel suite
     dune exec bench/main.exe -- -j 4 fig8    # 4 worker domains
     BENCH_QUICK=1 dune exec bench/main.exe   # reduced sweeps
     BENCH_JOBS=4 dune exec bench/main.exe    # worker domains via env

   Figure datapoints fan across a deterministic domain pool
   (Repro_util.Pool): output is bit-identical for any worker count.
   Machine-readable BENCH_<id>.json artifacts (axis points, series,
   wall time, jobs) land in $BENCH_JSON_DIR (default bench-artifacts/);
   CSVs are additionally written when $BENCH_CSV_DIR is set. *)

open Repro_util
open Repro_crypto
open Repro_core
module Probe = Repro_obs.Probe

let quick = Sys.getenv_opt "BENCH_QUICK" <> None

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (one Test.make per operation)              *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let payload = String.init 256 (fun i -> Char.chr (i mod 256)) in
  let keystore = Keys.create_keystore (Rng.create 1L) in
  let secret = Keys.gen keystore ~id:0 in
  let enclave_ks = Keys.create_keystore (Rng.create 2L) in
  let enclave =
    Repro_sgx.Enclave.create ~keystore:enclave_ks ~id:0 ~measurement:"bench"
      ~rng:(Rng.create 3L) ~costs:Cost_model.free
      ~charge:(fun _ -> ())
      ~now:(fun () -> 0.0)
  in
  let a2m = Repro_sgx.A2m.create enclave ~watermark_window:1_000_000 in
  let slot = ref 0 in
  let leaves = List.init 100 (fun i -> "tx-" ^ string_of_int i) in
  let zipf = Zipf.create ~n:100_000 ~theta:0.99 in
  let zrng = Rng.create 9L in
  let live_probe =
    Probe.make ~trace:(Repro_obs.Trace.create ()) ~metrics:(Repro_obs.Metrics.create ())
  in
  (* 16 two-shard transactions, 4 coordinator steps each (Begin, both
     votes, one duplicate vote) — the slot payload a full batch carries. *)
  let ref_steps =
    List.concat_map
      (fun txid ->
        [
          (txid, Repro_shard.Reference.Begin { participants = [ 0; 1 ] });
          (txid, Repro_shard.Reference.Prepare_ok { shard = 0 });
          (txid, Repro_shard.Reference.Prepare_ok { shard = 1 });
          (txid, Repro_shard.Reference.Prepare_ok { shard = 1 });
        ])
      (List.init 16 Fun.id)
  in
  [
    Test.make ~name:"sha256/256B" (Staged.stage (fun () -> Sha256.digest_string payload));
    Test.make ~name:"hmac-sha256/256B"
      (Staged.stage (fun () -> Sha256.hmac ~key:"secret-key" payload));
    Test.make ~name:"sign-hmac" (Staged.stage (fun () -> Keys.sign_hmac secret payload));
    Test.make ~name:"sim-signature" (Staged.stage (fun () -> Keys.sign secret ~msg_tag:42));
    Test.make ~name:"merkle-root/100" (Staged.stage (fun () -> Merkle.root leaves));
    Test.make ~name:"a2m-append"
      (Staged.stage (fun () ->
           incr slot;
           Repro_sgx.A2m.append a2m ~log:0 ~slot:!slot ~digest_tag:7));
    Test.make ~name:"hypergeom-tail"
      (Staged.stage (fun () ->
           Logspace.hypergeom_tail ~total:2000 ~bad:500 ~draws:80 ~at_least:40));
    Test.make ~name:"committee-size-solve"
      (Staged.stage (fun () ->
           Repro_shard.Sizing.min_committee_size ~total:2000 ~fraction:0.25
             ~rule:Repro_shard.Sizing.Ahl_half ~security_bits:20));
    Test.make ~name:"zipf-sample" (Staged.stage (fun () -> Zipf.sample zipf zrng));
    (* The batched-commit pair: one slot applying 64 coordinator steps in
       a single pass vs the same steps as 64 separate slot executions.
       Both recreate the state machine per iteration so the comparison is
       creation + application on each side. *)
    Test.make ~name:"ref-step/seq64"
      (Staged.stage (fun () ->
           let t = Repro_shard.Reference.create () in
           List.iter
             (fun (txid, ev) -> ignore (Repro_shard.Reference.step t ~txid ev))
             ref_steps));
    Test.make ~name:"ref-step-batch/64"
      (Staged.stage (fun () ->
           let t = Repro_shard.Reference.create () in
           ignore (Repro_shard.Reference.step_batch t ref_steps)));
    (* The two probe entries bound the cost of the permanent instrumentation:
       disabled emitters must be branch-cheap, enabled ones a hashtable op. *)
    Test.make ~name:"probe-off/incr" (Staged.stage (fun () -> Probe.incr Probe.none "bench.ctr"));
    Test.make ~name:"probe-on/incr" (Staged.stage (fun () -> Probe.incr live_probe "bench.ctr"));
    Test.make ~name:"probe-on/observe"
      (Staged.stage (fun () -> Probe.observe live_probe "bench.lat" 0.125));
  ]

(* The probes live permanently in the consensus/2PC hot paths, so the
   disabled path must stay within 2% of PBFT happy-path throughput.  The
   uninstrumented baseline no longer exists in-tree; instead, measure the
   per-call cost of a disabled emitter, count the probe calls an identical
   enabled run actually fires, and bound the product against the disabled
   run's wall time. *)
let assert_probe_overhead () =
  let module Harness = Repro_consensus.Harness in
  let happy_path probe =
    let t0 = Unix.gettimeofday () in
    let (_ : Harness.result) =
      Harness.run ~probe ~duration:4.0 ~warmup:1.0 ~variant:Repro_consensus.Config.ahl_plus
        ~n:4
        ~topology:(Repro_sim.Topology.lan ())
        ~workload:(Harness.Open_loop { rate = 400.0; clients = 8 })
        ()
    in
    Unix.gettimeofday () -. t0
  in
  let wall_off = happy_path Probe.none in
  let trace = Repro_obs.Trace.create () and metrics = Repro_obs.Metrics.create () in
  let (_ : float) = happy_path (Probe.make ~trace ~metrics) in
  let module Metrics = Repro_obs.Metrics in
  (* Counter values overcount Metrics.add calls, which only makes the
     bound stricter. *)
  let calls =
    Repro_obs.Trace.length trace
    + List.fold_left (fun acc (_, v) -> acc + v) 0 (Metrics.counters metrics)
    + List.length (Metrics.gauges metrics)
    + List.fold_left
        (fun acc name ->
          match Metrics.histogram_stats metrics name with
          | Some s -> acc + Stats.count s
          | None -> acc)
        0 (Metrics.histogram_names metrics)
  in
  let iters = 20_000_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    Probe.incr Probe.none "bench.ctr"
  done;
  let per_call = (Unix.gettimeofday () -. t0) /. float_of_int iters in
  let overhead = per_call *. float_of_int calls in
  let pct = 100.0 *. overhead /. wall_off in
  Printf.printf
    "probe-disabled overhead: %d probe calls x %.1f ns = %.3f ms, %.4f%% of the %.2f s PBFT \
     happy path (bound: 2%%)\n\n\
     %!"
    calls (1e9 *. per_call) (1e3 *. overhead) pct wall_off;
  if pct > 2.0 then begin
    prerr_endline "bench: disabled-probe overhead exceeds the 2% acceptance bound";
    exit 1
  end

let run_micro () =
  let open Bechamel in
  print_endline "==== micro: Bechamel benchmarks of real operations ====";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  (* Collect and sort by test name: Hashtbl iteration order is
     hash-dependent, and bench output should be diffable run to run. *)
  let lines =
    List.concat_map
      (fun test ->
        let results = Benchmark.all cfg instances test in
        let analyzed =
          Analyze.all
            (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
            Toolkit.Instance.monotonic_clock results
        in
        Hashtbl.fold
          (fun key ols acc ->
            let rendered =
              match Analyze.OLS.estimates ols with
              | Some [ est ] -> Printf.sprintf "%-28s %12.1f ns/op" key est
              | Some _ | None -> Printf.sprintf "%-28s (no estimate)" key
            in
            (key, rendered) :: acc)
          analyzed [])
      (micro_tests ())
  in
  List.iter
    (fun (_, l) -> print_endline l)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) lines);
  print_newline ();
  assert_probe_overhead ()

(* ------------------------------------------------------------------ *)
(* Figure/table harness                                                 *)
(* ------------------------------------------------------------------ *)

let csv_dir = Sys.getenv_opt "BENCH_CSV_DIR"

let json_dir =
  match Sys.getenv_opt "BENCH_JSON_DIR" with Some d -> d | None -> "bench-artifacts"

let run_experiment id =
  match Experiment.by_id id with
  | None -> Printf.printf "unknown experiment id: %s\n" id
  | Some f ->
      let t0 = Unix.gettimeofday () in
      (* One hub per figure: METRICS_<id>.json carries the runs this figure
         computed itself.  Memoized sweeps shared with an earlier figure
         record nothing here (they already landed in that figure's file). *)
      let hub = Repro_obs.Hub.create () in
      Experiment.set_hub (Some hub);
      let fig = f ~quick () in
      Experiment.set_hub None;
      let wall = Unix.gettimeofday () -. t0 in
      Results.print fig;
      Option.iter (fun dir -> Results.save_csv ~dir fig) csv_dir;
      Results.save_json ~dir:json_dir ~wall_time_s:wall ~jobs:(Experiment.jobs_in_use ()) fig;
      let metrics_path = Filename.concat json_dir (Printf.sprintf "METRICS_%s.json" id) in
      (match Repro_obs.Sink.save ~path:metrics_path (Repro_obs.Sink.metrics_json (Repro_obs.Hub.metrics hub)) with
      | Ok () -> ()
      | Error msg -> Printf.eprintf "bench: cannot write %s: %s\n" metrics_path msg);
      Printf.printf "(%s completed in %.1f s wall time)\n\n%!" id wall

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  (* Pull out -j/--jobs N; the rest are experiment ids. *)
  let rec parse ids = function
    | [] -> List.rev ids
    | ("-j" | "--jobs") :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 ->
            Experiment.set_jobs j;
            parse ids rest
        | Some _ | None ->
            prerr_endline "bench: -j/--jobs expects a positive integer";
            exit 2)
    | [ ("-j" | "--jobs") ] ->
        prerr_endline "bench: -j/--jobs expects a positive integer";
        exit 2
    | id :: rest -> parse (id :: ids) rest
  in
  let ids = parse [] args in
  Printf.printf "(bench: %d worker domain%s)\n%!" (Experiment.jobs_in_use ())
    (if Experiment.jobs_in_use () = 1 then "" else "s");
  match ids with
  | [] ->
      run_micro ();
      List.iter run_experiment Experiment.all_ids
  | [ "micro" ] -> run_micro ()
  | ids -> List.iter (fun id -> if id = "micro" then run_micro () else run_experiment id) ids
