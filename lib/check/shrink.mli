(** Greedy witness minimization.

    On a violation, [minimize] tries structurally smaller schedules —
    dropping perturbation events, disabling byzantine embellishments,
    halving the request stream, shrinking the byzantine clique — and keeps
    any candidate whose deterministic replay still produces a violation of
    the same kind, iterating to a fixpoint or until [budget] replays have
    been spent. *)

val candidates : Schedule.t -> Schedule.t list
(** One-step simplifications of a schedule, most aggressive first. *)

val minimize :
  replay:(Schedule.t -> Oracle.violation option) ->
  budget:int ->
  Schedule.t ->
  Oracle.violation ->
  Schedule.t * int
(** [minimize ~replay ~budget s v] returns the shrunk schedule and the
    number of replays spent.  [replay] must be deterministic and return
    the first violation of a candidate run, if any. *)
