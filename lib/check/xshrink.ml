(* Greedy delta-debugging over cross-shard schedules, mirroring {!Shrink}:
   try structurally smaller candidates, keep any that still reproduces the
   same kind of violation under deterministic replay, repeat to fixpoint
   or budget exhaustion. *)

let restrict indices ~txs = List.filter (fun i -> i < txs) indices

let candidates (s : Xschedule.t) =
  let drop_faults =
    List.mapi
      (fun i _ ->
        { s with Xschedule.faults = List.filteri (fun j _ -> j <> i) s.Xschedule.faults })
      s.Xschedule.faults
  in
  let simpler_flags =
    (if s.Xschedule.contended then [ { s with Xschedule.contended = false } ] else [])
    @
    match s.Xschedule.overdraft with
    | [] -> []
    | _ -> [ { s with Xschedule.overdraft = [] } ]
  in
  let fewer_malicious =
    match List.rev s.Xschedule.malicious with
    | [] | [ _ ] -> [] (* keep at least one silent client: it is the attack *)
    | _ :: keep -> [ { s with Xschedule.malicious = List.rev keep } ]
  in
  let fewer_txs =
    if s.Xschedule.txs > 2 then
      let txs = Int.max 2 (s.Xschedule.txs / 2) in
      [
        {
          s with
          Xschedule.txs;
          malicious = restrict s.Xschedule.malicious ~txs;
          overdraft = restrict s.Xschedule.overdraft ~txs;
        };
      ]
    else []
  in
  drop_faults @ simpler_flags @ fewer_malicious @ fewer_txs

let minimize ~replay ~budget schedule violation =
  let reruns = ref 0 in
  let reproduces s =
    incr reruns;
    match replay s with
    | Some v -> Xoracle.same_kind v violation
    | None -> false
  in
  let rec fixpoint s =
    if !reruns >= budget then s
    else
      let rec try_candidates = function
        | [] -> s
        | cand :: rest ->
            if !reruns >= budget then s
            else if reproduces cand then fixpoint cand
            else try_candidates rest
      in
      try_candidates (candidates s)
  in
  let shrunk = fixpoint schedule in
  (shrunk, !reruns)
