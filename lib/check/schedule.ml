open Repro_util

type event_kind =
  | Drop of float
  | Jitter of float
  | Duplicate of float
  | Partition of int list
  | Silence of { from_ : int; toward : int }

type event = { start : float; stop : float; kind : event_kind }

exception Invalid_witness of string

type t = {
  byz : int list;
  split_brain : bool;
  stale_replay : bool;
  silent_toward : int list;
  requests : int;
  events : event list;
}

let heal_time t = List.fold_left (fun acc ev -> Float.max acc ev.stop) 0.0 t.events

let active ev ~at = at >= ev.start && at < ev.stop

let size t =
  List.length t.events + List.length t.byz + List.length t.silent_toward
  + (if t.stale_replay then 1 else 0)
  + (t.requests / 2)

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let gen_event rng ~n =
  let start = Rng.float rng 5.0 in
  let stop = start +. 1.0 +. Rng.float rng 9.0 in
  let kind =
    match Rng.int rng 5 with
    | 0 -> Drop (0.05 +. Rng.float rng 0.25)
    | 1 -> Jitter (0.01 +. Rng.float rng 0.4)
    | 2 -> Duplicate (0.05 +. Rng.float rng 0.4)
    | 3 ->
        (* Isolate a strict minority so the rest of the committee can keep
           (or resume) making progress once the window closes. *)
        let k = 1 + Rng.int rng (Int.max 1 ((n - 1) / 2)) in
        let perm = Rng.permutation rng n in
        Partition (List.sort Int.compare (List.init k (fun i -> perm.(i))))
    | _ ->
        let from_ = Rng.int rng n in
        let toward = (from_ + 1 + Rng.int rng (n - 1)) mod n in
        Silence { from_; toward }
  in
  { start; stop; kind }

let generate rng ~n ~f =
  let byz = List.init f (fun i -> i) in
  let split_brain = f >= 1 in
  let stale_replay = f >= 1 && Rng.bool rng in
  let silent_toward =
    (* Occasionally the byzantine clique ghosts one high-indexed honest
       member entirely (selective silence, Section 3.3 flavour). *)
    if f >= 1 && n - f > 2 && Rng.int rng 4 = 0 then [ n - 1 ] else []
  in
  let requests = 2 * Rng.int_in rng 4 11 in
  let events = List.init (Rng.int rng 4) (fun _ -> gen_event rng ~n) in
  { byz; split_brain; stale_replay; silent_toward; requests; events }

(* ------------------------------------------------------------------ *)
(* Witness serialization                                               *)
(* ------------------------------------------------------------------ *)

(* %.17g round-trips every float bit-exactly through float_of_string, so a
   printed witness replays the identical schedule. *)
let fl = Printf.sprintf "%.17g"

let ints_field = function
  | [] -> "-"
  | ids -> String.concat "," (List.map string_of_int ids)

let ints_of_field = function
  | "-" -> []
  | s -> List.map int_of_string (String.split_on_char ',' s)

let string_of_event ev =
  let window = Printf.sprintf "%s:%s" (fl ev.start) (fl ev.stop) in
  match ev.kind with
  | Drop p -> Printf.sprintf "drop:%s:%s" (fl p) window
  | Jitter d -> Printf.sprintf "jit:%s:%s" (fl d) window
  | Duplicate p -> Printf.sprintf "dup:%s:%s" (fl p) window
  | Partition group ->
      Printf.sprintf "part:%s:%s" (String.concat "+" (List.map string_of_int group)) window
  | Silence { from_; toward } -> Printf.sprintf "sil:%d>%d:%s" from_ toward window

let event_of_string s =
  match String.split_on_char ':' s with
  | [ "drop"; p; start; stop ] ->
      { start = float_of_string start; stop = float_of_string stop; kind = Drop (float_of_string p) }
  | [ "jit"; d; start; stop ] ->
      {
        start = float_of_string start;
        stop = float_of_string stop;
        kind = Jitter (float_of_string d);
      }
  | [ "dup"; p; start; stop ] ->
      {
        start = float_of_string start;
        stop = float_of_string stop;
        kind = Duplicate (float_of_string p);
      }
  | [ "part"; group; start; stop ] ->
      {
        start = float_of_string start;
        stop = float_of_string stop;
        kind = Partition (List.map int_of_string (String.split_on_char '+' group));
      }
  | [ "sil"; cut; start; stop ] -> (
      match String.split_on_char '>' cut with
      | [ from_; toward ] ->
          {
            start = float_of_string start;
            stop = float_of_string stop;
            kind = Silence { from_ = int_of_string from_; toward = int_of_string toward };
          }
      | _ -> raise (Invalid_witness s))
  | _ -> raise (Invalid_witness s)

let to_string t =
  String.concat " "
    (("v1" :: Printf.sprintf "byz=%s" (ints_field t.byz)
     :: Printf.sprintf "sb=%d" (if t.split_brain then 1 else 0)
     :: Printf.sprintf "stale=%d" (if t.stale_replay then 1 else 0)
     :: Printf.sprintf "quiet=%s" (ints_field t.silent_toward)
     :: Printf.sprintf "req=%d" t.requests
     :: List.map string_of_event t.events))

let of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | "v1" :: byz :: sb :: stale :: quiet :: req :: events ->
      let field prefix v =
        match String.split_on_char '=' v with
        | [ p; rest ] when String.equal p prefix -> rest
        | _ -> raise (Invalid_witness s)
      in
      {
        byz = ints_of_field (field "byz" byz);
        split_brain = String.equal (field "sb" sb) "1";
        stale_replay = String.equal (field "stale" stale) "1";
        silent_toward = ints_of_field (field "quiet" quiet);
        requests = int_of_string (field "req" req);
        events = List.map event_of_string events;
      }
  | _ -> raise (Invalid_witness s)
