open Repro_util

type event_kind =
  | Drop of float
  | Jitter of float
  | Duplicate of float
  | Partition of int list
  | Silence of { from_ : int; toward : int }

type event = { start : float; stop : float; kind : event_kind }

type leader_attack =
  | Stall  (** the byzantine clique wins leader slots and withholds batches *)
  | Serve_only of int list  (** serves pre-prepares/commits only to these peers *)
  | Drip of float  (** one batch per interval, probing the watchdog boundary *)

exception Invalid_witness of string

type t = {
  byz : int list;
  split_brain : bool;
  stale_replay : bool;
  silent_toward : int list;
  leader : leader_attack option;
  requests : int;
  events : event list;
}

let heal_time t = List.fold_left (fun acc ev -> Float.max acc ev.stop) 0.0 t.events

let active ev ~at = at >= ev.start && at < ev.stop

let size t =
  List.length t.events + List.length t.byz + List.length t.silent_toward
  + (if t.stale_replay then 1 else 0)
  + (match t.leader with None -> 0 | Some _ -> 1)
  + (t.requests / 2)

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let gen_event rng ~n =
  let start = Rng.float rng 5.0 in
  let stop = start +. 1.0 +. Rng.float rng 9.0 in
  let kind =
    match Rng.int rng 5 with
    | 0 -> Drop (0.05 +. Rng.float rng 0.25)
    | 1 -> Jitter (0.01 +. Rng.float rng 0.4)
    | 2 -> Duplicate (0.05 +. Rng.float rng 0.4)
    | 3 ->
        (* Isolate a strict minority so the rest of the committee can keep
           (or resume) making progress once the window closes. *)
        let k = 1 + Rng.int rng (Int.max 1 ((n - 1) / 2)) in
        let perm = Rng.permutation rng n in
        Partition (List.sort Int.compare (List.init k (fun i -> perm.(i))))
    | _ ->
        let from_ = Rng.int rng n in
        let toward = (from_ + 1 + Rng.int rng (n - 1)) mod n in
        Silence { from_; toward }
  in
  { start; stop; kind }

let generate rng ~n ~f =
  let byz = List.init f (fun i -> i) in
  let split_brain = f >= 1 in
  let stale_replay = f >= 1 && Rng.bool rng in
  let silent_toward =
    (* Occasionally the byzantine clique ghosts one high-indexed honest
       member entirely (selective silence, Section 3.3 flavour). *)
    if f >= 1 && n - f > 2 && Rng.int rng 4 = 0 then [ n - 1 ] else []
  in
  let requests = 2 * Rng.int_in rng 4 11 in
  let events = List.init (Rng.int rng 4) (fun _ -> gen_event rng ~n) in
  (* Leader attacks: the clique campaigns for (and wins) leader slots.
     Drawn after every other field so seeds from the pre-leader-attack
     palette keep generating the same base schedules. *)
  let leader =
    if f >= 1 && Rng.int rng 3 = 0 then
      match Rng.int rng 3 with
      | 0 -> Some Stall
      | 1 ->
          (* Serve every replica except one high-indexed honest member. *)
          let starved = n - 1 in
          Some (Serve_only (List.filter (fun i -> i <> starved) (List.init n (fun i -> i))))
      | _ -> Some (Drip 1.9) (* just under the 2 s progress watchdog *)
    else None
  in
  { byz; split_brain; stale_replay; silent_toward; leader; requests; events }

(* ------------------------------------------------------------------ *)
(* Witness serialization                                               *)
(* ------------------------------------------------------------------ *)

(* %.17g round-trips every float bit-exactly through float_of_string, so a
   printed witness replays the identical schedule. *)
let fl = Printf.sprintf "%.17g"

let ints_field = function
  | [] -> "-"
  | ids -> String.concat "," (List.map string_of_int ids)

let ints_of_field = function
  | "-" -> []
  | s -> List.map int_of_string (String.split_on_char ',' s)

let string_of_event ev =
  let window = Printf.sprintf "%s:%s" (fl ev.start) (fl ev.stop) in
  match ev.kind with
  | Drop p -> Printf.sprintf "drop:%s:%s" (fl p) window
  | Jitter d -> Printf.sprintf "jit:%s:%s" (fl d) window
  | Duplicate p -> Printf.sprintf "dup:%s:%s" (fl p) window
  | Partition group ->
      Printf.sprintf "part:%s:%s" (String.concat "+" (List.map string_of_int group)) window
  | Silence { from_; toward } -> Printf.sprintf "sil:%d>%d:%s" from_ toward window

let event_of_string s =
  match String.split_on_char ':' s with
  | [ "drop"; p; start; stop ] ->
      { start = float_of_string start; stop = float_of_string stop; kind = Drop (float_of_string p) }
  | [ "jit"; d; start; stop ] ->
      {
        start = float_of_string start;
        stop = float_of_string stop;
        kind = Jitter (float_of_string d);
      }
  | [ "dup"; p; start; stop ] ->
      {
        start = float_of_string start;
        stop = float_of_string stop;
        kind = Duplicate (float_of_string p);
      }
  | [ "part"; group; start; stop ] ->
      {
        start = float_of_string start;
        stop = float_of_string stop;
        kind = Partition (List.map int_of_string (String.split_on_char '+' group));
      }
  | [ "sil"; cut; start; stop ] -> (
      match String.split_on_char '>' cut with
      | [ from_; toward ] ->
          {
            start = float_of_string start;
            stop = float_of_string stop;
            kind = Silence { from_ = int_of_string from_; toward = int_of_string toward };
          }
      | _ -> raise (Invalid_witness s))
  | _ -> raise (Invalid_witness s)

let string_of_leader = function
  | Stall -> "stall"
  | Serve_only ids -> Printf.sprintf "serve:%s" (String.concat "+" (List.map string_of_int ids))
  | Drip interval -> Printf.sprintf "drip:%s" (fl interval)

let leader_of_string s witness =
  match String.split_on_char ':' s with
  | [ "stall" ] -> Stall
  | [ "serve"; ids ] -> Serve_only (List.map int_of_string (String.split_on_char '+' ids))
  | [ "drip"; interval ] -> Drip (float_of_string interval)
  | _ -> raise (Invalid_witness witness)

let to_string t =
  String.concat " "
    (("v1" :: Printf.sprintf "byz=%s" (ints_field t.byz)
     :: Printf.sprintf "sb=%d" (if t.split_brain then 1 else 0)
     :: Printf.sprintf "stale=%d" (if t.stale_replay then 1 else 0)
     :: Printf.sprintf "quiet=%s" (ints_field t.silent_toward)
     :: Printf.sprintf "req=%d" t.requests
     ::
     (match t.leader with
     | None -> List.map string_of_event t.events
     | Some l -> Printf.sprintf "lead=%s" (string_of_leader l) :: List.map string_of_event t.events)))

let of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | "v1" :: byz :: sb :: stale :: quiet :: req :: rest ->
      let field prefix v =
        match String.split_on_char '=' v with
        | [ p; rest ] when String.equal p prefix -> rest
        | _ -> raise (Invalid_witness s)
      in
      (* The [lead=] token is optional, so pre-leader-attack witnesses
         stay replayable verbatim. *)
      let leader, events =
        match rest with
        | tok :: tl when String.length tok >= 5 && String.equal (String.sub tok 0 5) "lead=" ->
            (Some (leader_of_string (field "lead" tok) s), tl)
        | _ -> (None, rest)
      in
      {
        byz = ints_of_field (field "byz" byz);
        split_brain = String.equal (field "sb" sb) "1";
        stale_replay = String.equal (field "stale" stale) "1";
        silent_toward = ints_of_field (field "quiet" quiet);
        leader;
        requests = int_of_string (field "req" req);
        events = List.map event_of_string events;
      }
  | _ -> raise (Invalid_witness s)
