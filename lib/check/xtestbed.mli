(** Deterministic whole-system executor for cross-shard schedules.

    Builds a {!Repro_core.System} (shard committees plus R when the mode
    says so), installs the schedule's faults — a leg filter over the
    coordination messages and timed crash windows on R's replicas — then
    submits the scripted cross-shard transfers and runs to a quiescence
    horizon ([heal time + grace]).  Everything the {!Xoracle}s need is
    captured in the outcome; two calls with the same
    [(engine_seed, schedule, mode, concurrency, shards, committee_size)]
    produce identical outcomes. *)

val grace : float
(** Seconds of synchrony after the last fault heals (and the last
    submission) before the run is considered quiescent. *)

type tx_info = {
  txid : int;
  honest : bool;  (** false when the schedule made this client silent *)
  participants : int list;
  outcome : Repro_core.System.tx_outcome option;  (** None: never decided *)
}

type outcome = {
  mode : Repro_core.System.coordination_mode;
  infos : tx_info list;
  decisions : Repro_core.System.decision_event list;
  stuck_locks : int;  (** lock tuples still held at the horizon *)
  total_before : int;  (** sum of account balances after funding *)
  total_after : int;  (** the same sum at the horizon *)
  ref_decisions : (int * bool) list;
      (** the coordinator machines' recorded decision per txid ([true] =
          committed): R's machine, or the per-shard machines when
          flattened; empty in [Client_driven] mode *)
  horizon : float;
  registry_size : int;  (** live coordination-registry entries at the horizon *)
  ckpt_certs : (int * int * int * int) list;
      (** every member's highest checkpoint certificate at the horizon, as
          [(committee, member, seq, root)] rows
          ({!Repro_core.System.committee_checkpoints}) — the
          checkpoint-agreement oracle's record *)
  observer_lag : (int * int) list;
      (** per committee, how many executed slots the observer trails its
          most advanced member by at the horizon
          ({!Repro_core.System.observer_lag}) — the bounded-convergence
          oracle's record *)
  merge_audit : (int * Repro_ledger.Merge.mismatch) list;
      (** per shard, keys whose materialised value differs from the
          canonical re-fold of the delta-lane history
          ({!Repro_core.System.merge_audit}) — the merge-convergence
          oracle's record; always empty when the run had no lane *)
  merge_roots : (int * string) list;
      (** per shard, the chained fold digest at the horizon
          ({!Repro_core.System.merge_roots}) — equal-seed lane runs must
          agree on every entry *)
}

val run :
  ?probe:Repro_obs.Probe.t ->
  ?batching:bool ->
  ?lane:bool ->
  engine_seed:int64 ->
  mode:Repro_core.System.coordination_mode ->
  concurrency:Repro_core.System.concurrency_control ->
  shards:int ->
  committee_size:int ->
  Xschedule.t ->
  outcome
(** [probe] (default disabled) threads observability through the whole
    system under test — 2PC leg timing, vote/abort causes, PBFT phase and
    view-change events, epoch-transition waves — so a shrunk witness can
    be replayed with [--trace] and read in Perfetto.

    [batching] (default [false], keeping every legacy witness
    bit-replayable on the one-request-per-leg path) runs the system with
    {!Repro_core.System.default_batching} instead, so the adversary
    exercises the batched + pipelined commit path; a schedule's fault
    probabilities apply per constituent leg either way, and it is a run
    parameter — deliberately not part of the witness line.

    [lane] (default [false]) turns {!Repro_core.System.config.fast_lane}
    on and rewrites the schedule's honest, in-funds transfers as
    unconditional delta pairs over per-shard mergeable keys disjoint from
    the locked-path accounts (malicious and overdraft transactions keep
     2PC, so both paths run mixed).  Like [batching], a run parameter —
    deliberately not part of the witness line. *)
