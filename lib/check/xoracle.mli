(** Invariant oracles over a cross-shard run ({!Xtestbed.outcome}).

    Safety first: atomicity, durable decision, and conservation are
    checked on every run; the liveness-class oracles (stuck locks,
    undecided transactions) are reported only when the run was safe — an
    unsafe run's progress is meaningless. *)

type violation =
  | Atomicity of {
      txid : int;
      committed_on : int list;
      aborted_on : int list;
      missing : int list;
    }
      (** a multi-shard transaction committed on some participants but
          aborted — or never decided — on others *)
  | Divergence of { txid : int; ref_commit : bool; shard : int; shard_commit : bool }
      (** R's recorded 2PC decision disagrees with what a shard applied *)
  | Conservation of { before : int; after : int }
      (** total account balance changed: a partial transfer minted or
          burned value *)
  | Stuck_locks of { count : int }
      (** lock tuples still held after quiescence — the OmniLedger
          blocking problem *)
  | Liveness of { missing : int; first : int }
      (** transactions the protocol owed a decision that never got one *)

val is_safety : violation -> bool

val same_kind : violation -> violation -> bool
(** Constructor equality — the shrinker's "still the same bug" test. *)

val to_string : violation -> string

val check : Xtestbed.outcome -> violation list
