(** Invariant oracles over a cross-shard run ({!Xtestbed.outcome}).

    Safety first: atomicity, durable decision, and conservation are
    checked on every run; the liveness-class oracles (stuck locks,
    undecided transactions) are reported only when the run was safe — an
    unsafe run's progress is meaningless. *)

type violation =
  | Atomicity of {
      txid : int;
      committed_on : int list;
      aborted_on : int list;
      missing : int list;
    }
      (** a multi-shard transaction committed on some participants but
          aborted — or never decided — on others *)
  | Divergence of { txid : int; ref_commit : bool; shard : int; shard_commit : bool }
      (** R's recorded 2PC decision disagrees with what a shard applied *)
  | Conservation of { before : int; after : int }
      (** total account balance changed: a partial transfer minted or
          burned value *)
  | Ckpt_divergence of { committee : int; seq : int; roots : int list }
      (** two members of the same committee hold checkpoint certificates
          binding the same sequence number to different execution roots —
          impossible while quorum intersection holds *)
  | Merge_divergence of { shard : int; key : string; expected : string; actual : string }
      (** a fast-lane key's materialised value is not the canonical fold
          of the shard's delta-lane history — the lane broke its one
          root per block promise (DESIGN §18) *)
  | Stuck_locks of { count : int }
      (** lock tuples still held after quiescence — the OmniLedger
          blocking problem *)
  | Liveness of { missing : int; first : int }
      (** transactions the protocol owed a decision that never got one *)
  | Stale_observer of { committee : int; lag : int }
      (** an observer still trails its committee by more than
          {!convergence_bound} executed slots at quiescence: checkpoint
          catch-up stalled *)

val convergence_bound : int
(** Slots an observer may lag at quiescence before {!Stale_observer}
    fires — one checkpoint interval: quiescence gives catch-up ample time,
    and the fetch protocol closes any certified gap, so only the
    sub-interval tail may legitimately remain. *)

val is_safety : violation -> bool

val same_kind : violation -> violation -> bool
(** Constructor equality — the shrinker's "still the same bug" test. *)

val to_string : violation -> string

val check : Xtestbed.outcome -> violation list
