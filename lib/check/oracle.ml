type violation =
  | Agreement of {
      seq : int;
      member_a : int;
      view_a : int;
      digest_a : int;
      member_b : int;
      view_b : int;
      digest_b : int;
    }
  | Order of { member : int; missing_seq : int; max_seq : int }
  | Validity of { member : int; seq : int; req_id : int }
  | Liveness of { missing : int; first_missing : int }

let is_safety = function
  | Agreement _ | Order _ | Validity _ -> true
  | Liveness _ -> false

let same_kind a b =
  match (a, b) with
  | Agreement _, Agreement _ | Order _, Order _ | Validity _, Validity _ | Liveness _, Liveness _
    ->
      true
  | (Agreement _ | Order _ | Validity _ | Liveness _), _ -> false

let to_string = function
  | Agreement { seq; member_a; view_a; digest_a; member_b; view_b; digest_b } ->
      Printf.sprintf
        "agreement: seq %d committed as digest %d at member %d (view %d) but digest %d at member %d (view %d)"
        seq digest_a member_a view_a digest_b member_b view_b
  | Order { member; missing_seq; max_seq } ->
      Printf.sprintf "order: member %d executed up to seq %d with a gap at seq %d" member max_seq
        missing_seq
  | Validity { member; seq; req_id } ->
      Printf.sprintf "validity: member %d committed unsubmitted request %d at seq %d" member
        req_id seq
  | Liveness { missing; first_missing } ->
      Printf.sprintf "liveness: %d submitted requests never executed at the observer (first: %d)"
        missing first_missing

let check (o : Testbed.outcome) =
  let honest_commits =
    List.filter (fun c -> List.exists (Int.equal c.Trace.member) o.Testbed.honest)
      o.Testbed.commits
  in
  (* Agreement: any two honest commits of the same sequence number must
     carry the same digest — even across views, since an executed block is
     final.  This is exactly what breaks at N = 2f+1 without attestation. *)
  let agreement =
    let by_seq : (int, Trace.commit) Hashtbl.t = Hashtbl.create 64 in
    List.filter_map
      (fun (c : Trace.commit) ->
        match Hashtbl.find_opt by_seq c.Trace.seq with
        | None ->
            Hashtbl.replace by_seq c.Trace.seq c;
            None
        | Some first when first.Trace.digest = c.Trace.digest -> None
        | Some first ->
            Some
              (Agreement
                 {
                   seq = c.Trace.seq;
                   member_a = first.Trace.member;
                   view_a = first.Trace.view;
                   digest_a = first.Trace.digest;
                   member_b = c.Trace.member;
                   view_b = c.Trace.view;
                   digest_b = c.Trace.digest;
                 }))
      honest_commits
  in
  (* Total-order prefix: every honest ledger must be the contiguous range
     1..max — a gap means a replica skipped a block (with agreement above,
     gap-freedom makes every honest ledger a prefix of the longest one). *)
  let order =
    List.filter_map
      (fun member ->
        let seqs =
          List.filter_map
            (fun (c : Trace.commit) ->
              if c.Trace.member = member then Some c.Trace.seq else None)
            honest_commits
        in
        match seqs with
        | [] -> None
        | _ ->
            let max_seq = List.fold_left Int.max 0 seqs in
            let rec first_gap s =
              if s > max_seq then None
              else if List.exists (Int.equal s) seqs then first_gap (s + 1)
              else Some (Order { member; missing_seq = s; max_seq })
            in
            first_gap 1)
      o.Testbed.honest
  in
  (* Validity: honest replicas only commit requests that were submitted. *)
  let validity =
    List.concat_map
      (fun (c : Trace.commit) ->
        List.filter_map
          (fun req_id ->
            if List.exists (Int.equal req_id) o.Testbed.submitted then None
            else Some (Validity { member = c.Trace.member; seq = c.Trace.seq; req_id }))
          c.Trace.ids)
      honest_commits
  in
  let safety = agreement @ order @ validity in
  match safety with
  | _ :: _ -> safety
  | [] ->
      begin
    (* Bounded liveness, only meaningful on safe runs: under synchrony
       after the last perturbation heals, every submitted request must
       have executed at the observer by the horizon. *)
    let executed_at_observer =
      List.concat_map
        (fun (c : Trace.commit) ->
          if c.Trace.member = o.Testbed.observer then c.Trace.ids else [])
        o.Testbed.commits
    in
    let missing =
      List.filter
        (fun id -> not (List.exists (Int.equal id) executed_at_observer))
        o.Testbed.submitted
    in
        match missing with
        | [] -> []
        | first :: _ -> [ Liveness { missing = List.length missing; first_missing = first } ]
      end
