(** Committed-trace records: one entry per block execution per replica,
    captured through {!Repro_consensus.Pbft.set_commit_hook}. *)

type commit = {
  member : int;
  view : int;  (** view of the pre-prepare the block committed under *)
  seq : int;
  digest : int;
  ids : int list;  (** request ids of the full decided batch *)
  at : float;  (** virtual time of execution *)
}

val commit_of_batch :
  member:int ->
  view:int ->
  seq:int ->
  digest:int ->
  at:float ->
  Repro_consensus.Types.request list ->
  commit

val pp_commit : Format.formatter -> commit -> unit
