open Repro_util
open Repro_core

let mode_of_name = function
  | "ref" | "with-reference" -> Some System.With_reference
  | "client" | "client-driven" -> Some System.Client_driven
  | "flat" | "flattened" -> Some System.Flattened
  | _ -> None

let mode_name = function
  | System.With_reference -> "with-reference"
  | System.Client_driven -> "client-driven"
  | System.Flattened -> "flattened"

let concurrency_of_name = function
  | "2pl" -> Some System.Two_phase_locking
  | "waitdie" | "wait-die" -> Some System.Wait_die
  | _ -> None

type trial = {
  index : int;
  engine_seed : int64;
  schedule : Xschedule.t;
  violations : Xoracle.violation list;
  shrunk : Xschedule.t option;
  shrink_reruns : int;
}

type report = {
  mode : System.coordination_mode;
  batching : bool;
  lane : bool;
  shards : int;
  committee_size : int;
  trials : trial list;
  safety_violations : int;
  liveness_violations : int;
}

let replay ?(batching = false) ?(lane = false) ~mode ~concurrency ~shards ~committee_size
    ~engine_seed schedule =
  Xoracle.check
    (Xtestbed.run ~batching ~lane ~engine_seed ~mode ~concurrency ~shards ~committee_size
       schedule)

let schedule_for ?(lane = false) ~seed ~shards ~committee_size index =
  let rng = Rng.split_named (Rng.create seed) (string_of_int index) in
  if lane then Xschedule.generate_lane rng ~shards ~committee_size
  else Xschedule.generate rng ~shards ~committee_size

let engine_seed_for ~seed index = Int64.add seed (Int64.of_int index)

let run ?(batching = false) ?(lane = false) ~mode ~concurrency ~shards ~committee_size ~trials
    ~seed ~budget () =
  let run_trial index =
    let schedule = schedule_for ~lane ~seed ~shards ~committee_size index in
    let engine_seed = engine_seed_for ~seed index in
    let violations =
      replay ~batching ~lane ~mode ~concurrency ~shards ~committee_size ~engine_seed schedule
    in
    (* Unlike the single-committee explorer, liveness-class findings
       (stuck locks) are first-class bugs here, so any violation is worth
       a minimal witness. *)
    let shrunk, shrink_reruns =
      match violations with
      | [] -> (None, 0)
      | first :: _ ->
          let replay_one s =
            match
              replay ~batching ~lane ~mode ~concurrency ~shards ~committee_size ~engine_seed s
            with
            | [] -> None
            | v :: _ -> Some v
          in
          let s, reruns = Xshrink.minimize ~replay:replay_one ~budget schedule first in
          (Some s, reruns)
    in
    { index; engine_seed; schedule; violations; shrunk; shrink_reruns }
  in
  let all = List.init trials run_trial in
  let count p = List.length (List.filter p all) in
  {
    mode;
    batching;
    lane;
    shards;
    committee_size;
    trials = all;
    safety_violations = count (fun t -> List.exists Xoracle.is_safety t.violations);
    liveness_violations =
      count (fun t -> List.exists (fun v -> not (Xoracle.is_safety v)) t.violations);
  }

(* ------------------------------------------------------------------ *)
(* The silent-client differential (the Figure-14 argument)             *)
(* ------------------------------------------------------------------ *)

(* Two cross-shard transfers, the first from a client that goes silent
   after BeginTx; no network faults at all.  R's fallback must finish both
   transactions cleanly, while client-driven coordination leaves the
   silent client's locks stuck forever. *)
let silent_client_schedule =
  {
    Xschedule.txs = 2;
    malicious = [ 0 ];
    overdraft = [];
    contended = false;
    faults = [];
  }

type differential = {
  with_ref : Xoracle.violation list;
  client_driven : Xoracle.violation list;
  holds : bool;
}

let differential ?(batching = false) ~shards ~committee_size ~seed () =
  let go mode =
    replay ~batching ~mode ~concurrency:System.Two_phase_locking ~shards ~committee_size
      ~engine_seed:seed silent_client_schedule
  in
  let with_ref = go System.With_reference in
  let client_driven = go System.Client_driven in
  let holds =
    with_ref = []
    && List.exists (function Xoracle.Stuck_locks _ -> true | _ -> false) client_driven
  in
  { with_ref; client_driven; holds }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let pp_trial fmt t =
  match t.violations with
  | [] -> Format.fprintf fmt "trial %d: ok@." t.index
  | vs ->
      Format.fprintf fmt "trial %d: %d violation(s)@." t.index (List.length vs);
      List.iter (fun v -> Format.fprintf fmt "  %s@." (Xoracle.to_string v)) vs;
      (match t.shrunk with
      | None -> ()
      | Some s ->
          Format.fprintf fmt "  witness (engine_seed=%Ld, %d replays):@.    %s@." t.engine_seed
            t.shrink_reruns (Xschedule.to_string s))

let pp_report fmt r =
  Format.fprintf fmt
    "cross-shard %s%s%s shards=%d committee=%d: %d/%d trials with safety violations, %d \
     liveness@."
    (mode_name r.mode)
    (if r.batching then " (batched)" else "")
    (if r.lane then " (fast-lane)" else "")
    r.shards r.committee_size r.safety_violations (List.length r.trials) r.liveness_violations;
  List.iter (pp_trial fmt) r.trials

let pp_differential fmt d =
  let side name = function
    | [] -> Format.fprintf fmt "%s: ok@." name
    | vs ->
        Format.fprintf fmt "%s:@." name;
        List.iter (fun v -> Format.fprintf fmt "  %s@." (Xoracle.to_string v)) vs
  in
  side "with-reference" d.with_ref;
  side "client-driven" d.client_driven;
  Format.fprintf fmt "silent-client differential %s@."
    (if d.holds then "holds" else "DOES NOT HOLD")

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let json_violations vs =
  String.concat ","
    (List.map (fun v -> Printf.sprintf "\"%s\"" (json_escape (Xoracle.to_string v))) vs)

let json_of_report r =
  let trial_json t =
    let witness =
      match t.shrunk with
      | None -> "null"
      | Some s -> Printf.sprintf "\"%s\"" (json_escape (Xschedule.to_string s))
    in
    Printf.sprintf
      "{\"trial\":%d,\"engine_seed\":%Ld,\"violations\":[%s],\"shrunk_witness\":%s,\"shrunk_size\":%s,\"shrink_reruns\":%d}"
      t.index t.engine_seed (json_violations t.violations) witness
      (match t.shrunk with None -> "null" | Some s -> string_of_int (Xschedule.size s))
      t.shrink_reruns
  in
  Printf.sprintf
    "{\"mode\":\"%s\",\"batching\":%b,\"fast_lane\":%b,\"shards\":%d,\"committee_size\":%d,\"trials\":%d,\"safety_violations\":%d,\"liveness_violations\":%d,\"results\":[%s]}"
    (mode_name r.mode) r.batching r.lane r.shards r.committee_size (List.length r.trials)
    r.safety_violations r.liveness_violations
    (String.concat "," (List.map trial_json r.trials))

let json_of_differential d =
  Printf.sprintf
    "{\"differential\":\"silent-client\",\"with_ref\":[%s],\"client_driven\":[%s],\"holds\":%b}"
    (json_violations d.with_ref) (json_violations d.client_driven) d.holds
