open Repro_util
open Repro_crypto
open Repro_sim
open Repro_consensus

let grace = 30.0

type outcome = {
  commits : Trace.commit list;  (** chronological across all replicas *)
  submitted : int list;
  honest : int list;
  observer : int;
  heal_time : float;
  horizon : float;
  view_changes : int;
}

let cuts kind ~src ~dst =
  match kind with
  | Schedule.Partition group ->
      let inside id = List.exists (Int.equal id) group in
      inside src <> inside dst
  | Schedule.Silence { from_; toward } -> src = from_ && dst = toward
  | Schedule.Drop _ | Schedule.Jitter _ | Schedule.Duplicate _ -> false

let run ~engine_seed ~variant ~n (sched : Schedule.t) =
  let engine = Engine.create ~seed:engine_seed in
  let cfg =
    (* Strictly sequential execution: with checkpoints out of the way a
       replica can never jump its ledger forward via state transfer, so
       the total-order-prefix oracle sees every block.  Runs stay far
       below the watermark window. *)
    { (Config.default variant ~n) with Config.checkpoint_interval = 1_000_000 }
  in
  let keystore = Keys.create_keystore (Engine.rng engine) in
  let metrics = Metrics.create engine in
  let faults = Faults.with_byzantine_ids ~n ~ids:sched.Schedule.byz in
  let network : Pbft.msg Network.t = Network.create engine ~topology:(Topology.lan ()) in
  let committee = ref None in
  let nodes =
    Array.init n (fun id ->
        Node.create engine ~id ~inbox_mode:(Config.inbox_mode cfg) ~handler:(fun node msg ->
            match !committee with
            | Some c -> Pbft.handle c ~member:(Node.id node) msg
            | None -> ()))
  in
  Array.iter (Network.register network) nodes;
  let send ~src ~dst ~channel ~bytes m =
    Network.send network ~src:nodes.(src) ~dst ~channel ~bytes m
  in
  let charge ~member cost = Node.charge nodes.(member) cost in
  let c =
    Pbft.create ~engine ~keystore ~costs:Cost_model.default ~config:cfg ~faults ~metrics
      ~enclave_base_id:0 ~send ~charge
      ~execute:(fun ~member:_ ~seq:_ _ -> ())
  in
  committee := Some c;
  Pbft.set_byz_strategy c
    {
      Pbft.vote_noise = not sched.Schedule.split_brain;
      naive_equivocation = not sched.Schedule.split_brain;
      split_brain = sched.Schedule.split_brain;
      silent_toward = sched.Schedule.silent_toward;
      stale_view_replay = sched.Schedule.stale_replay;
      leader_attack =
        (match sched.Schedule.leader with
        | None -> None
        | Some Schedule.Stall -> Some Pbft.Leader_stall
        | Some (Schedule.Serve_only ids) -> Some (Pbft.Leader_serve_only ids)
        | Some (Schedule.Drip interval) -> Some (Pbft.Leader_drip interval));
    };
  let commits = ref [] in
  Pbft.set_commit_hook c (fun ~member ~view ~seq ~digest ~batch ->
      commits :=
        Trace.commit_of_batch ~member ~view ~seq ~digest ~at:(Engine.now engine) batch
        :: !commits);
  (* The schedule adversary sits between the transport and the inboxes.
     Client submissions (src < 0) are the workload, not the adversary's to
     touch — otherwise a dropped submission reads as a liveness bug. *)
  let adv_rng = Rng.split_named (Engine.rng engine) "adversary" in
  Network.set_filter network (fun ~src ~dst _ ->
      if src < 0 then Network.Deliver
      else begin
        let at = Engine.now engine in
        let live = List.filter (fun ev -> Schedule.active ev ~at) sched.Schedule.events in
        if List.exists (fun ev -> cuts ev.Schedule.kind ~src ~dst) live then Network.Drop
        else begin
          (* Draw in event order so the consumed randomness is a pure
             function of (schedule, delivery order). *)
          let dropped = ref false in
          let jitter = ref 0.0 in
          let duplicated = ref false in
          List.iter
            (fun ev ->
              match ev.Schedule.kind with
              | Schedule.Drop p -> if Rng.float adv_rng 1.0 < p then dropped := true
              | Schedule.Jitter d -> jitter := !jitter +. Rng.float adv_rng d
              | Schedule.Duplicate p -> if Rng.float adv_rng 1.0 < p then duplicated := true
              | Schedule.Partition _ | Schedule.Silence _ -> ())
            live;
          if !dropped then Network.Drop
          else if !jitter > 0.0 then Network.Delay !jitter
          else if !duplicated then Network.Duplicate { copies = 2; spacing = 1e-3 }
          else Network.Deliver
        end
      end);
  Pbft.start c;
  (* Submissions go to honest intake replicas only: every request is known
     to at least one correct member, so the liveness oracle's demand that
     all of them eventually execute is fair. *)
  let honest =
    List.filter (fun id -> not (Faults.is_byzantine faults id)) (List.init n (fun i -> i))
  in
  let intake = Array.of_list honest in
  let submitted = List.init sched.Schedule.requests (fun k -> k) in
  List.iter
    (fun k ->
      Engine.schedule engine
        ~delay:(0.05 *. float_of_int k)
        (fun () ->
          let req = Types.request ~req_id:k ~client:k ~submitted:(Engine.now engine) () in
          let target = intake.(k mod Array.length intake) in
          let m = Pbft.submit_via c ~member:target req in
          Network.send_external network ~src_region:0 ~dst:target ~channel:Pbft.request_channel
            ~bytes:(Pbft.bytes_of_msg cfg m) m))
    submitted;
  let heal_time = Schedule.heal_time sched in
  let horizon = heal_time +. grace in
  Engine.run engine ~until:horizon;
  {
    commits = List.rev !commits;
    submitted;
    honest;
    observer = Pbft.observer c;
    heal_time;
    horizon;
    view_changes = Pbft.view_changes c;
  }
