(** Greedy witness minimization for cross-shard schedules.

    On a violation, [minimize] tries structurally smaller schedules —
    dropping faults, un-contending the workload, clearing overdrafts,
    shrinking the silent-client set, halving the transaction count — and
    keeps any candidate whose deterministic replay still produces a
    violation of the same kind, iterating to a fixpoint or until [budget]
    replays have been spent. *)

val candidates : Xschedule.t -> Xschedule.t list
(** One-step simplifications of a schedule, most aggressive first. *)

val minimize :
  replay:(Xschedule.t -> Xoracle.violation option) ->
  budget:int ->
  Xschedule.t ->
  Xoracle.violation ->
  Xschedule.t * int
(** [minimize ~replay ~budget s v] returns the shrunk schedule and the
    number of replays spent.  [replay] must be deterministic and return
    the first violation of a candidate run, if any. *)
