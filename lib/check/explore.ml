open Repro_util
open Repro_consensus

(* HL's quorum rule applied at AHL's committee size: 2f+1 replicas with
   f+1 quorums but no attested logs.  This is the configuration the paper
   argues is unsound — the differential target. *)
let hl_small = { Config.hl with Config.name = "HL@2f+1"; Config.quorum_rule = `Half }

let variant_of_name = function
  | "hl2f1" | "hl@2f+1" -> Some hl_small
  | "hl" -> Some Config.hl
  | "ahl" -> Some Config.ahl
  | "ahl+" | "ahlplus" -> Some Config.ahl_plus
  | "ahlr" -> Some Config.ahlr
  | _ -> None

type trial = {
  index : int;
  engine_seed : int64;
  schedule : Schedule.t;
  violations : Oracle.violation list;
  shrunk : Schedule.t option;
  shrink_reruns : int;
}

type report = {
  variant_name : string;
  n : int;
  f : int;
  trials : trial list;
  safety_violations : int;  (** trials with at least one safety violation *)
  liveness_violations : int;
}

let replay ~variant ~n ~engine_seed schedule =
  Oracle.check (Testbed.run ~engine_seed ~variant ~n schedule)

let schedule_for ~seed ~n ~f index =
  Schedule.generate (Rng.split_named (Rng.create seed) (string_of_int index)) ~n ~f

let engine_seed_for ~seed index = Int64.add seed (Int64.of_int index)

let run ~variant ~n ~f ~trials ~seed ~budget =
  let run_trial index =
    let schedule = schedule_for ~seed ~n ~f index in
    let engine_seed = engine_seed_for ~seed index in
    let violations = replay ~variant ~n ~engine_seed schedule in
    let shrunk, shrink_reruns =
      match List.filter Oracle.is_safety violations with
      | [] -> (None, 0)
      | first :: _ ->
          let replay_one s =
            match List.filter Oracle.is_safety (replay ~variant ~n ~engine_seed s) with
            | [] -> None
            | v :: _ -> Some v
          in
          let s, reruns = Shrink.minimize ~replay:replay_one ~budget schedule first in
          (Some s, reruns)
    in
    { index; engine_seed; schedule; violations; shrunk; shrink_reruns }
  in
  let all = List.init trials run_trial in
  let count p = List.length (List.filter p all) in
  {
    variant_name = variant.Config.name;
    n;
    f;
    trials = all;
    safety_violations = count (fun t -> List.exists Oracle.is_safety t.violations);
    liveness_violations =
      count (fun t -> List.exists (fun v -> not (Oracle.is_safety v)) t.violations);
  }

type differential = {
  broken : report;
  safe : report list;
  holds : bool;
      (** the paper's claim as a property: the unattested small-quorum
          configuration yields a safety violation within the budget, and
          none of the attested variants does on the identical schedules *)
}

let differential ~f ~trials ~seed ~budget =
  let n = Config.n_for_f Config.ahl ~f in
  let broken = run ~variant:hl_small ~n ~f ~trials ~seed ~budget in
  let safe =
    List.map
      (fun variant -> run ~variant ~n ~f ~trials ~seed ~budget)
      [ Config.ahl; Config.ahl_plus; Config.ahlr ]
  in
  let holds =
    broken.safety_violations > 0 && List.for_all (fun r -> r.safety_violations = 0) safe
  in
  { broken; safe; holds }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let pp_trial fmt t =
  match t.violations with
  | [] -> Format.fprintf fmt "trial %d: ok@." t.index
  | vs ->
      Format.fprintf fmt "trial %d: %d violation(s)@." t.index (List.length vs);
      List.iter (fun v -> Format.fprintf fmt "  %s@." (Oracle.to_string v)) vs;
      (match t.shrunk with
      | None -> ()
      | Some s ->
          Format.fprintf fmt "  witness (engine_seed=%Ld, %d replays):@.    %s@." t.engine_seed
            t.shrink_reruns (Schedule.to_string s))

let pp_report fmt r =
  Format.fprintf fmt "%s n=%d f=%d: %d/%d trials with safety violations, %d liveness@."
    r.variant_name r.n r.f r.safety_violations (List.length r.trials) r.liveness_violations;
  List.iter (pp_trial fmt) r.trials

(* Machine-readable summary; [wall_time] is measured by the caller so this
   module stays free of wall-clock reads. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let json_of_report r =
  let trial_json t =
    let witness =
      match t.shrunk with
      | None -> "null"
      | Some s -> Printf.sprintf "\"%s\"" (json_escape (Schedule.to_string s))
    in
    Printf.sprintf
      "{\"trial\":%d,\"engine_seed\":%Ld,\"violations\":[%s],\"shrunk_witness\":%s,\"shrunk_size\":%s,\"shrink_reruns\":%d}"
      t.index t.engine_seed
      (String.concat ","
         (List.map (fun v -> Printf.sprintf "\"%s\"" (json_escape (Oracle.to_string v))) t.violations))
      witness
      (match t.shrunk with None -> "null" | Some s -> string_of_int (Schedule.size s))
      t.shrink_reruns
  in
  Printf.sprintf
    "{\"variant\":\"%s\",\"n\":%d,\"f\":%d,\"trials\":%d,\"safety_violations\":%d,\"liveness_violations\":%d,\"results\":[%s]}"
    (json_escape r.variant_name) r.n r.f (List.length r.trials) r.safety_violations
    r.liveness_violations
    (String.concat "," (List.map trial_json r.trials))

let json_summary ~wall_time reports =
  Printf.sprintf "{\"wall_time_s\":%.3f,\"reports\":[%s]}" wall_time
    (String.concat "," (List.map json_of_report reports))
