open Repro_util
open Repro_consensus

(* HL's quorum rule applied at AHL's committee size: 2f+1 replicas with
   f+1 quorums but no attested logs.  This is the configuration the paper
   argues is unsound — the differential target. *)
let hl_small = { Config.hl with Config.name = "HL@2f+1"; Config.quorum_rule = `Half }

let variant_of_name = function
  | "hl2f1" | "hl@2f+1" -> Some hl_small
  | "hl" -> Some Config.hl
  | "ahl" -> Some Config.ahl
  | "ahl+" | "ahlplus" -> Some Config.ahl_plus
  | "ahlr" -> Some Config.ahlr
  | _ -> None

type trial = {
  index : int;
  engine_seed : int64;
  schedule : Schedule.t;
  violations : Oracle.violation list;
  view_changes : int;
  shrunk : Schedule.t option;
  shrink_reruns : int;
}

type report = {
  variant_name : string;
  n : int;
  f : int;
  trials : trial list;
  safety_violations : int;  (** trials with at least one safety violation *)
  liveness_violations : int;
}

let replay ~variant ~n ~engine_seed schedule =
  Oracle.check (Testbed.run ~engine_seed ~variant ~n schedule)

let schedule_for ~seed ~n ~f index =
  Schedule.generate (Rng.split_named (Rng.create seed) (string_of_int index)) ~n ~f

let engine_seed_for ~seed index = Int64.add seed (Int64.of_int index)

let run_scripted ~variant ~n ~f ~trials ~seed ~budget ~schedule_of =
  let run_trial index =
    let schedule = schedule_of index in
    let engine_seed = engine_seed_for ~seed index in
    let outcome = Testbed.run ~engine_seed ~variant ~n schedule in
    let violations = Oracle.check outcome in
    let shrunk, shrink_reruns =
      match List.filter Oracle.is_safety violations with
      | [] -> (None, 0)
      | first :: _ ->
          let replay_one s =
            match List.filter Oracle.is_safety (replay ~variant ~n ~engine_seed s) with
            | [] -> None
            | v :: _ -> Some v
          in
          let s, reruns = Shrink.minimize ~replay:replay_one ~budget schedule first in
          (Some s, reruns)
    in
    {
      index;
      engine_seed;
      schedule;
      violations;
      view_changes = outcome.Testbed.view_changes;
      shrunk;
      shrink_reruns;
    }
  in
  let all = List.init trials run_trial in
  let count p = List.length (List.filter p all) in
  {
    variant_name = variant.Config.name;
    n;
    f;
    trials = all;
    safety_violations = count (fun t -> List.exists Oracle.is_safety t.violations);
    liveness_violations =
      count (fun t -> List.exists (fun v -> not (Oracle.is_safety v)) t.violations);
  }

let run ~variant ~n ~f ~trials ~seed ~budget =
  run_scripted ~variant ~n ~f ~trials ~seed ~budget ~schedule_of:(fun index ->
      schedule_for ~seed ~n ~f index)

type differential = {
  broken : report;
  safe : report list;
  holds : bool;
      (** the paper's claim as a property: the unattested small-quorum
          configuration yields a safety violation within the budget, and
          none of the attested variants does on the identical schedules *)
}

let differential ~f ~trials ~seed ~budget =
  let n = Config.n_for_f Config.ahl ~f in
  let broken = run ~variant:hl_small ~n ~f ~trials ~seed ~budget in
  let safe =
    List.map
      (fun variant -> run ~variant ~n ~f ~trials ~seed ~budget)
      [ Config.ahl; Config.ahl_plus; Config.ahlr ]
  in
  let holds =
    broken.safety_violations > 0 && List.for_all (fun r -> r.safety_violations = 0) safe
  in
  { broken; safe; holds }

(* Leader-attack schedules are scripted, not drawn: the byzantine clique
   sits on ids [0..f-1] so it owns the early leader slots, there are no
   network perturbations (the leader IS the fault), and trials alternate
   between the stall and the selective-serving strategy (the drip is
   stealthy by design — it never trips the watchdog, so it has no place
   in a view-change differential).  The starved peer under selective
   serving is the highest id: never the observer, so bounded liveness
   stays a fair demand. *)
let leader_schedule ~n ~f index =
  let served = List.filter (fun i -> i <> n - 1) (List.init n (fun i -> i)) in
  {
    Schedule.byz = List.init f (fun i -> i);
    split_brain = false;
    stale_replay = false;
    silent_toward = [];
    leader =
      Some (if index mod 2 = 0 then Schedule.Stall else Schedule.Serve_only served);
    requests = 6 + (2 * index);
    events = [];
  }

let leader_stall_differential ~f ~trials ~seed ~budget =
  let n = Config.n_for_f Config.ahl ~f in
  let schedule_of index = leader_schedule ~n ~f index in
  let broken = run_scripted ~variant:hl_small ~n ~f ~trials ~seed ~budget ~schedule_of in
  let safe =
    List.map
      (fun variant -> run_scripted ~variant ~n ~f ~trials ~seed ~budget ~schedule_of)
      [ Config.ahl; Config.ahl_plus; Config.ahlr ]
  in
  (* A byzantine leader cannot be told apart from a slow one, so stalls
     are timeout-detected in every variant; the property is therefore a
     storm-shape one.  Broken side: the unattested small-quorum committee
     must storm with view changes on every stall trial (the byzantine
     clique really wins and loses the slot) without ever breaking safety.
     Selective serving is stealthier — the starved minority alone can
     never reach the f+1 join threshold, so only AHLR's relay watchdog
     catches it: the relay variant must storm on EVERY trial, serve
     included.  Safe side: the attested variants ride out the identical
     schedules with no violation of any kind — they keep committing. *)
  let stall_trial t =
    match t.schedule.Schedule.leader with Some Schedule.Stall -> true | _ -> false
  in
  let storms_on_stalls r =
    List.for_all (fun t -> (not (stall_trial t)) || t.view_changes >= 1) r.trials
  in
  let storms_always r = List.for_all (fun t -> t.view_changes >= 1) r.trials in
  let clean r = r.safety_violations = 0 && r.liveness_violations = 0 in
  let relay_detects =
    List.for_all
      (fun r -> r.variant_name <> Config.ahlr.Config.name || storms_always r)
      safe
  in
  let holds =
    broken.safety_violations = 0 && storms_on_stalls broken
    && List.for_all clean safe && relay_detects
  in
  { broken; safe; holds }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let pp_trial fmt t =
  match t.violations with
  | [] -> Format.fprintf fmt "trial %d: ok@." t.index
  | vs ->
      Format.fprintf fmt "trial %d: %d violation(s)@." t.index (List.length vs);
      List.iter (fun v -> Format.fprintf fmt "  %s@." (Oracle.to_string v)) vs;
      (match t.shrunk with
      | None -> ()
      | Some s ->
          Format.fprintf fmt "  witness (engine_seed=%Ld, %d replays):@.    %s@." t.engine_seed
            t.shrink_reruns (Schedule.to_string s))

let pp_report fmt r =
  Format.fprintf fmt "%s n=%d f=%d: %d/%d trials with safety violations, %d liveness@."
    r.variant_name r.n r.f r.safety_violations (List.length r.trials) r.liveness_violations;
  List.iter (pp_trial fmt) r.trials

let pp_leader_report ~expect_storm fmt r =
  Format.fprintf fmt "%s n=%d f=%d: %d/%d trials with safety violations, %d liveness@."
    r.variant_name r.n r.f r.safety_violations (List.length r.trials) r.liveness_violations;
  List.iter
    (fun t ->
      Format.fprintf fmt "trial %d: view_changes=%d, %d violation(s)@." t.index t.view_changes
        (List.length t.violations);
      List.iter (fun v -> Format.fprintf fmt "  %s@." (Oracle.to_string v)) t.violations;
      (* Any trial off its expected shape carries its own one-line
         replayable witness: the scripted schedule plus the engine seed. *)
      if t.violations <> [] || (expect_storm t && t.view_changes = 0) then
        Format.fprintf fmt "  witness (engine_seed=%Ld):@.    %s@." t.engine_seed
          (Schedule.to_string t.schedule))
    r.trials

let pp_leader_differential fmt (d : differential) =
  let stall_only t =
    match t.schedule.Schedule.leader with Some Schedule.Stall -> true | _ -> false
  in
  Format.fprintf fmt "broken:@.%a@." (pp_leader_report ~expect_storm:stall_only) d.broken;
  List.iter
    (fun r ->
      (* Only the relay variant is expected to detect selective serving. *)
      let expect_storm =
        if r.variant_name = Config.ahlr.Config.name then fun _ -> true else stall_only
      in
      Format.fprintf fmt "safe:@.%a@." (pp_leader_report ~expect_storm) r)
    d.safe;
  Format.fprintf fmt "leader-stall differential %s@."
    (if d.holds then "holds" else "DOES NOT HOLD")

(* Machine-readable summary; [wall_time] is measured by the caller so this
   module stays free of wall-clock reads. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let json_of_report r =
  let trial_json t =
    let witness =
      match t.shrunk with
      | None -> "null"
      | Some s -> Printf.sprintf "\"%s\"" (json_escape (Schedule.to_string s))
    in
    Printf.sprintf
      "{\"trial\":%d,\"engine_seed\":%Ld,\"view_changes\":%d,\"violations\":[%s],\"shrunk_witness\":%s,\"shrunk_size\":%s,\"shrink_reruns\":%d}"
      t.index t.engine_seed t.view_changes
      (String.concat ","
         (List.map (fun v -> Printf.sprintf "\"%s\"" (json_escape (Oracle.to_string v))) t.violations))
      witness
      (match t.shrunk with None -> "null" | Some s -> string_of_int (Schedule.size s))
      t.shrink_reruns
  in
  Printf.sprintf
    "{\"variant\":\"%s\",\"n\":%d,\"f\":%d,\"trials\":%d,\"safety_violations\":%d,\"liveness_violations\":%d,\"results\":[%s]}"
    (json_escape r.variant_name) r.n r.f (List.length r.trials) r.safety_violations
    r.liveness_violations
    (String.concat "," (List.map trial_json r.trials))

let json_summary ~wall_time reports =
  Printf.sprintf "{\"wall_time_s\":%.3f,\"reports\":[%s]}" wall_time
    (String.concat "," (List.map json_of_report reports))
