open Repro_util
open Repro_sim
open Repro_ledger
open Repro_core

let grace = 60.0

type tx_info = {
  txid : int;
  honest : bool;
  participants : int list;
  outcome : System.tx_outcome option;
}

type outcome = {
  mode : System.coordination_mode;
  infos : tx_info list;
  decisions : System.decision_event list;
  stuck_locks : int;
  total_before : int;
  total_after : int;
  ref_decisions : (int * bool) list;
  horizon : float;
  registry_size : int;
  ckpt_certs : (int * int * int * int) list;
  observer_lag : (int * int) list;
  merge_audit : (int * Merge.mismatch) list;
  merge_roots : (int * string) list;
}

let leg_of_op = function
  | Coordination.Prepare_tx _ -> Some Xschedule.Prepare
  | Coordination.Vote _ -> Some Xschedule.Vote
  | Coordination.Commit_tx _ | Coordination.Abort_tx _ -> Some Xschedule.Decision
  | Coordination.Merge_tx _ -> Some Xschedule.Mdelta
  (* Submissions and BeginTx are the workload, not the adversary's to
     touch — dropping them reads as a liveness bug that is not one. *)
  | Coordination.Single _ | Coordination.Begin_tx _ -> None
  (* Never seen here: System filters a batch's constituent steps
     individually before sealing the carrier, so fault probabilities act
     per leg no matter how legs are grouped. *)
  | Coordination.Batch _ -> None

(* Deterministic key living on a given shard under hash partitioning. *)
let key_on ~shards ~prefix shard =
  let rec find i =
    let k = Printf.sprintf "%s%d" prefix i in
    if Tx.shard_of_key ~shards k = shard then k else find (i + 1)
  in
  find 0

let run ?(probe = Repro_obs.Probe.none) ?(batching = false) ?(lane = false) ~engine_seed
    ~mode ~concurrency ~shards ~committee_size (sched : Xschedule.t) =
  let base = System.default_config ~shards ~committee_size in
  let sys =
    System.create
      {
        base with
        System.mode;
        concurrency;
        seed = engine_seed;
        (* Default off: legacy witnesses replay bit-identically on the
           one-request-per-leg path; [batching:true] explores the batched
           commit path instead. *)
        batching = (if batching then base.System.batching else None);
        (* Like [batching], a run parameter rather than part of the
           witness: [lane:true] turns the fast lane on and rewrites the
           honest transfers as mergeable delta pairs (below). *)
        fast_lane = lane;
      }
  in
  System.set_probe sys probe;
  let engine = System.engine sys in
  (* Draws are a pure function of (schedule, leg-delivery order), so two
     runs with the same (engine_seed, schedule) are identical. *)
  let adv = Rng.split_named (Engine.rng engine) "xadversary" in
  System.set_leg_filter sys
    (Some
       (fun ~dst op ->
         let at = Engine.now engine in
         let live =
           List.filter (fun f -> Xschedule.active f ~at) sched.Xschedule.faults
         in
         let cut =
           List.exists
             (fun (f : Xschedule.fault) ->
               match f.Xschedule.kind with
               | Xschedule.Cut_shard s -> (
                   dst = s
                   ||
                   match op with
                   | Coordination.Vote { shard; _ } -> shard = s
                   | _ -> false)
               | _ -> false)
             live
         in
         if cut then Network.Drop
         else
           match leg_of_op op with
           | None -> Network.Deliver
           | Some leg ->
               let dropped = ref false and delay = ref 0.0 and dup = ref false in
               List.iter
                 (fun (f : Xschedule.fault) ->
                   match f.Xschedule.kind with
                   | Xschedule.Drop_leg { leg = l; p } ->
                       if l = leg && Rng.float adv 1.0 < p then dropped := true
                   | Xschedule.Dup_leg { leg = l; p } ->
                       if l = leg && Rng.float adv 1.0 < p then dup := true
                   | Xschedule.Delay_leg { leg = l; d } ->
                       if l = leg then delay := !delay +. d
                   | Xschedule.Crash_ref _ | Xschedule.Cut_shard _
                   | Xschedule.Crash_observer _ | Xschedule.Epoch_wave _ -> ())
                 live;
               if !dropped then Network.Drop
               else if !delay > 0.0 then Network.Delay !delay
               else if !dup then Network.Duplicate { copies = 2; spacing = 0.5 }
               else Network.Deliver));
  (* Crash faults against the coordinator committee's replicas (never the
     observer: member 0 is pinned measurement infrastructure).  Under
     [Flattened] there is no R, so the fault lands on shard 0 — the
     committee most transactions' 2PC machines hash to in small runs. *)
  (match mode with
  | System.With_reference | System.Flattened ->
      let committee = if mode = System.With_reference then shards else 0 in
      List.iter
        (fun (f : Xschedule.fault) ->
          match f.Xschedule.kind with
          | Xschedule.Crash_ref { member } ->
              let member = Int.max 1 (Int.min member (committee_size - 1)) in
              Engine.schedule_at engine ~time:f.Xschedule.start (fun () ->
                  System.crash_member sys ~committee ~member);
              Engine.schedule_at engine ~time:f.Xschedule.stop (fun () ->
                  System.recover_member sys ~committee ~member)
          | _ -> ())
        sched.Xschedule.faults
  | System.Client_driven -> ());
  (* Shard-side crash faults and epoch transitions apply in every mode. *)
  List.iter
    (fun (f : Xschedule.fault) ->
      match f.Xschedule.kind with
      | Xschedule.Crash_observer { shard } ->
          let shard = Int.max 0 (Int.min shard (shards - 1)) in
          Engine.schedule_at engine ~time:f.Xschedule.start (fun () ->
              System.crash_member sys ~committee:shard ~member:0);
          Engine.schedule_at engine ~time:f.Xschedule.stop (fun () ->
              System.recover_member sys ~committee:shard ~member:0)
      | Xschedule.Epoch_wave { epoch } ->
          System.advance_epoch sys ~at:f.Xschedule.start ~seed:engine_seed ~epoch
            ~strategy:`Batched_log
      | _ -> ())
    sched.Xschedule.faults;
  (* Workload: [txs] two-op cross-shard transfers.  Sources are funded
     far above the honest transfer amount; overdraft transactions ask for
     more than any funding so their debit shard votes NotOK. *)
  let src = Array.init shards (fun s -> key_on ~shards ~prefix:"src" s) in
  let dst = Array.init shards (fun s -> key_on ~shards ~prefix:"dst" s) in
  Array.iteri (fun s k -> Executor.set_balance (System.shard_state sys s) k 1000) src;
  Array.iteri (fun s k -> Executor.set_balance (System.shard_state sys s) k 0) dst;
  (* Fast-lane trials move honest transfers onto a disjoint mergeable key
     pair per shard: the convergence audit re-folds each lane's history
     from its recorded base values, which is only meaningful if lane keys
     are never written outside the fold — so malicious and overdraft
     transactions keep the locked path and its src/dst keys. *)
  let msrc = Array.init shards (fun s -> key_on ~shards ~prefix:"msrc" s) in
  let mdst = Array.init shards (fun s -> key_on ~shards ~prefix:"mdst" s) in
  if lane then begin
    Array.iteri (fun s k -> Executor.set_balance (System.shard_state sys s) k 1000) msrc;
    Array.iteri (fun s k -> Executor.set_balance (System.shard_state sys s) k 0) mdst
  end;
  let total () =
    let sum = ref 0 in
    for s = 0 to shards - 1 do
      sum :=
        !sum
        + Executor.balance (System.shard_state sys s) src.(s)
        + Executor.balance (System.shard_state sys s) dst.(s);
      if lane then
        sum :=
          !sum
          + Executor.balance (System.shard_state sys s) msrc.(s)
          + Executor.balance (System.shard_state sys s) mdst.(s)
    done;
    !sum
  in
  let total_before = total () in
  let outcomes = Array.make (sched.Xschedule.txs + 1) None in
  let txs =
    List.init sched.Xschedule.txs (fun i ->
        let txid = i + 1 in
        let mal = List.exists (Int.equal i) sched.Xschedule.malicious in
        let over = List.exists (Int.equal i) sched.Xschedule.overdraft in
        let amount = if over then 10_000 else 5 in
        let from_shard = if sched.Xschedule.contended then 0 else i mod shards in
        let to_shard =
          if sched.Xschedule.contended then 1 + (i mod Int.max 1 (shards - 1))
          else (i + 1) mod shards
        in
        let tx =
          if lane && (not mal) && not over then
            (* A conserving delta pair: unconditional Add(-a)/Add(+a) on
               the mergeable keys, classified down the fast lane. *)
            Tx.make ~txid ~client:txid
              [
                Tx.Merge { key = msrc.(from_shard); delta = Tx.Add (-amount) };
                Tx.Merge { key = mdst.(to_shard); delta = Tx.Add amount };
              ]
          else
            Tx.make ~txid ~client:txid
              [
                Tx.Debit { account = src.(from_shard); amount };
                Tx.Credit { account = dst.(to_shard); amount };
              ]
        in
        (txid, mal, tx))
  in
  List.iter
    (fun (txid, mal, tx) ->
      Engine.schedule engine
        ~delay:(1.0 +. (0.7 *. float_of_int txid))
        (fun () ->
          System.submit sys ~malicious_client:mal
            ~on_done:(fun o -> outcomes.(txid) <- Some o)
            tx))
    txs;
  let last_submit = 1.0 +. (0.7 *. float_of_int sched.Xschedule.txs) in
  let horizon = Float.max (Xschedule.heal_time sched) last_submit +. grace in
  Engine.run engine ~until:horizon;
  let infos =
    List.map
      (fun (txid, mal, tx) ->
        {
          txid;
          honest = not mal;
          participants = Tx.shards_touched ~shards tx;
          outcome = outcomes.(txid);
        })
      txs
  in
  let ref_decisions =
    (* At most one hosted machine carries each txid (R's single machine,
       or the transaction's coordinator shard when flattened). *)
    match System.coordination_machines sys with
    | [] -> []
    | machines ->
        List.filter_map
          (fun (txid, _, _) ->
            List.fold_left
              (fun acc m ->
                match acc with
                | Some _ -> acc
                | None -> (
                    match Repro_shard.Reference.state_of m ~txid with
                    | Some Repro_shard.Reference.Committed -> Some (txid, true)
                    | Some Repro_shard.Reference.Aborted -> Some (txid, false)
                    | Some _ | None -> None))
              None machines)
          txs
  in
  {
    mode;
    infos;
    decisions = System.decision_trace sys;
    stuck_locks = System.stuck_locks sys;
    total_before;
    total_after = total ();
    ref_decisions;
    horizon;
    registry_size = System.registry_size sys;
    ckpt_certs = System.committee_checkpoints sys;
    observer_lag = System.observer_lag sys;
    merge_audit = System.merge_audit sys;
    merge_roots = System.merge_roots sys;
  }
