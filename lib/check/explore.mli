(** The schedule explorer: seeded trials, oracles, shrinking, and the
    headline differential property.

    Trial [i] of a run with base seed [s] uses engine seed [s + i] and the
    schedule generated from [split_named (create s) (string_of_int i)] —
    so a witness is fully described by [(engine_seed, schedule)] and
    nothing else. *)

val hl_small : Repro_consensus.Config.variant
(** HL's unattested quorums at AHL's committee size ([N = 2f+1], quorums
    of [f+1]) — the configuration the paper's Section 3 argues is unsound,
    and the one the explorer must break. *)

val variant_of_name : string -> Repro_consensus.Config.variant option
(** CLI names: [hl2f1], [hl], [ahl], [ahl+], [ahlr]. *)

type trial = {
  index : int;
  engine_seed : int64;
  schedule : Schedule.t;
  violations : Oracle.violation list;
  view_changes : int;  (** adopted new-views across the committee *)
  shrunk : Schedule.t option;  (** minimized witness, on safety violations *)
  shrink_reruns : int;
}

type report = {
  variant_name : string;
  n : int;
  f : int;
  trials : trial list;
  safety_violations : int;  (** trials with at least one safety violation *)
  liveness_violations : int;
}

val replay :
  variant:Repro_consensus.Config.variant ->
  n:int ->
  engine_seed:int64 ->
  Schedule.t ->
  Oracle.violation list
(** Deterministically re-run one witness and re-check the oracles. *)

val schedule_for : seed:int64 -> n:int -> f:int -> int -> Schedule.t
(** The schedule trial [i] uses (exposed for replay tests). *)

val engine_seed_for : seed:int64 -> int -> int64

val run :
  variant:Repro_consensus.Config.variant ->
  n:int ->
  f:int ->
  trials:int ->
  seed:int64 ->
  budget:int ->
  report
(** Explore [trials] seeded schedules; safety violations are shrunk with
    at most [budget] replays each. *)

type differential = {
  broken : report;
  safe : report list;
  holds : bool;
      (** the paper's claim as a property: {!hl_small} yields a safety
          violation within the trial budget, and AHL/AHL+/AHLR never do
          on the identical schedules *)
}

val differential : f:int -> trials:int -> seed:int64 -> budget:int -> differential

val leader_schedule : n:int -> f:int -> int -> Schedule.t
(** The scripted schedule leader-attack trial [i] uses: byzantine clique
    on ids [0..f-1], no network perturbations, alternating stall /
    selective-serving leader strategies (exposed for replay tests). *)

val leader_stall_differential : f:int -> trials:int -> seed:int64 -> budget:int -> differential
(** The Fig. 16 right-panel property as a differential.  Byzantine-leader
    stalls are timeout-detected in every PBFT variant — a silent leader is
    indistinguishable from a slow one — so the claim is about storm shape,
    not a safety split.  [holds] is the conjunction of: {!hl_small} storms
    with view changes on every stall trial without ever breaking safety;
    AHL/AHL+/AHLR ride out the identical schedules with zero violations of
    any kind (they keep committing); and AHLR alone also storms on the
    selective-serving trials — the starved minority can never reach the
    f+1 join threshold on its own, so only the relay watchdog detects that
    attack. *)

val pp_report : Format.formatter -> report -> unit

val pp_leader_differential : Format.formatter -> differential -> unit
(** Like the plain report printer but leads with per-trial view-change
    counts, and prints a one-line replayable witness for any trial off its
    expected shape (a violation anywhere, or a storm-free broken trial). *)

val json_of_report : report -> string

val json_summary : wall_time:float -> report list -> string
(** One machine-readable line: violations, shrunk witness sizes, and the
    caller-measured wall time. *)
