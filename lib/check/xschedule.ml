open Repro_util

type leg = Prepare | Vote | Decision | Mdelta

type fault_kind =
  | Drop_leg of { leg : leg; p : float }
  | Dup_leg of { leg : leg; p : float }
  | Delay_leg of { leg : leg; d : float }
  | Crash_ref of { member : int }
  | Cut_shard of int
  | Crash_observer of { shard : int }
  | Epoch_wave of { epoch : int }

type fault = { start : float; stop : float; kind : fault_kind }

exception Invalid_witness of string

type t = {
  txs : int;
  malicious : int list;
  overdraft : int list;
  contended : bool;
  faults : fault list;
}

let heal_time t = List.fold_left (fun acc f -> Float.max acc f.stop) 0.0 t.faults

let active f ~at = at >= f.start && at < f.stop

let size t =
  List.length t.faults + List.length t.malicious + List.length t.overdraft
  + (if t.contended then 1 else 0)
  + t.txs

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let gen_fault_with ~leg rng ~shards ~committee_size =
  let start = Rng.float rng 8.0 in
  let stop = start +. 1.0 +. Rng.float rng 12.0 in
  let kind =
    match Rng.int rng 7 with
    | 0 -> Drop_leg { leg = leg (); p = 0.3 +. Rng.float rng 0.7 }
    | 1 -> Dup_leg { leg = leg (); p = 0.3 +. Rng.float rng 0.7 }
    | 2 ->
        (* Long enough to sail past client_fallback_timeout: the window
           where a sweep racing a slow prepare used to guess wrong. *)
        Delay_leg { leg = leg (); d = 2.0 +. Rng.float rng 12.0 }
    | 3 ->
        (* Member 0 is the observer (pinned infrastructure); crash a
           backup of R, the paper's crash-fault model for the committee. *)
        Crash_ref { member = 1 + Rng.int rng (Int.max 1 (committee_size - 1)) }
    | 4 -> Cut_shard (Rng.int rng shards)
    | 5 ->
        (* The hard crash: a shard's observer, where state materializes —
           execution stalls until recovery and retries must re-drive. *)
        Crash_observer { shard = Rng.int rng shards }
    | _ ->
        (* A full Section-5 epoch transition racing the 2PC legs:
           transitioning replicas go offline in waves mid-protocol. *)
        Epoch_wave { epoch = 1 + Rng.int rng 3 }
  in
  { start; stop; kind }

(* The legacy leg draw: three legs, draw shape untouched so every
   pre-fast-lane seed still generates the identical schedule. *)
let gen_fault rng ~shards ~committee_size =
  gen_fault_with rng ~shards ~committee_size ~leg:(fun () ->
      match Rng.int rng 3 with 0 -> Prepare | 1 -> Vote | _ -> Decision)

let generate rng ~shards ~committee_size =
  let txs = 2 + Rng.int rng 5 in
  let indices = List.init txs Fun.id in
  let malicious = List.filter (fun _ -> Rng.int rng 3 = 0) indices in
  let overdraft = List.filter (fun _ -> Rng.int rng 5 = 0) indices in
  let contended = Rng.int rng 4 = 0 in
  let faults =
    List.init (1 + Rng.int rng 3) (fun _ -> gen_fault rng ~shards ~committee_size)
  in
  { txs; malicious; overdraft; contended; faults }

(* Fast-lane trials: the leg draw includes delta legs, and no client goes
   silent — the lane has no vote relay to abandon (silent clients are the
   2PC attack; its delta legs are re-driven by the submitting client's
   retry, which a schedule's drop/delay windows already race). *)
let generate_lane rng ~shards ~committee_size =
  let sched = generate rng ~shards ~committee_size in
  let lane_faults =
    List.init
      (1 + Rng.int rng 2)
      (fun _ ->
        gen_fault_with rng ~shards ~committee_size ~leg:(fun () ->
            match Rng.int rng 4 with
            | 0 -> Prepare
            | 1 -> Vote
            | 2 -> Decision
            | _ -> Mdelta))
  in
  { sched with malicious = []; faults = sched.faults @ lane_faults }

(* ------------------------------------------------------------------ *)
(* Witness serialization                                               *)
(* ------------------------------------------------------------------ *)

(* %.17g round-trips every float bit-exactly through float_of_string, so a
   printed witness replays the identical schedule. *)
let fl = Printf.sprintf "%.17g"

let ints_field = function
  | [] -> "-"
  | ids -> String.concat "," (List.map string_of_int ids)

let ints_of_field = function
  | "-" -> []
  | s -> List.map int_of_string (String.split_on_char ',' s)

let string_of_leg = function
  | Prepare -> "prep"
  | Vote -> "vote"
  | Decision -> "dec"
  | Mdelta -> "mrg"

let leg_of_string s =
  match s with
  | "prep" -> Prepare
  | "vote" -> Vote
  | "dec" -> Decision
  | "mrg" -> Mdelta
  | _ -> raise (Invalid_witness s)

let string_of_fault f =
  let window = Printf.sprintf "%s:%s" (fl f.start) (fl f.stop) in
  match f.kind with
  | Drop_leg { leg; p } -> Printf.sprintf "dropleg:%s:%s:%s" (string_of_leg leg) (fl p) window
  | Dup_leg { leg; p } -> Printf.sprintf "dupleg:%s:%s:%s" (string_of_leg leg) (fl p) window
  | Delay_leg { leg; d } -> Printf.sprintf "delayleg:%s:%s:%s" (string_of_leg leg) (fl d) window
  | Crash_ref { member } -> Printf.sprintf "crashref:%d:%s" member window
  | Cut_shard s -> Printf.sprintf "cut:%d:%s" s window
  | Crash_observer { shard } -> Printf.sprintf "crashobs:%d:%s" shard window
  | Epoch_wave { epoch } -> Printf.sprintf "epochwave:%d:%s" epoch window

let fault_of_string s =
  match String.split_on_char ':' s with
  | [ "dropleg"; leg; p; start; stop ] ->
      {
        start = float_of_string start;
        stop = float_of_string stop;
        kind = Drop_leg { leg = leg_of_string leg; p = float_of_string p };
      }
  | [ "dupleg"; leg; p; start; stop ] ->
      {
        start = float_of_string start;
        stop = float_of_string stop;
        kind = Dup_leg { leg = leg_of_string leg; p = float_of_string p };
      }
  | [ "delayleg"; leg; d; start; stop ] ->
      {
        start = float_of_string start;
        stop = float_of_string stop;
        kind = Delay_leg { leg = leg_of_string leg; d = float_of_string d };
      }
  | [ "crashref"; member; start; stop ] ->
      {
        start = float_of_string start;
        stop = float_of_string stop;
        kind = Crash_ref { member = int_of_string member };
      }
  | [ "cut"; shard; start; stop ] ->
      {
        start = float_of_string start;
        stop = float_of_string stop;
        kind = Cut_shard (int_of_string shard);
      }
  | [ "crashobs"; shard; start; stop ] ->
      {
        start = float_of_string start;
        stop = float_of_string stop;
        kind = Crash_observer { shard = int_of_string shard };
      }
  | [ "epochwave"; epoch; start; stop ] ->
      {
        start = float_of_string start;
        stop = float_of_string stop;
        kind = Epoch_wave { epoch = int_of_string epoch };
      }
  | _ -> raise (Invalid_witness s)

let to_string t =
  String.concat " "
    ("x1" :: Printf.sprintf "txs=%d" t.txs
    :: Printf.sprintf "mal=%s" (ints_field t.malicious)
    :: Printf.sprintf "over=%s" (ints_field t.overdraft)
    :: Printf.sprintf "hot=%d" (if t.contended then 1 else 0)
    :: List.map string_of_fault t.faults)

let of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | "x1" :: txs :: mal :: over :: hot :: faults ->
      let field prefix v =
        match String.split_on_char '=' v with
        | [ p; rest ] when String.equal p prefix -> rest
        | _ -> raise (Invalid_witness s)
      in
      {
        txs = int_of_string (field "txs" txs);
        malicious = ints_of_field (field "mal" mal);
        overdraft = ints_of_field (field "over" over);
        contended = String.equal (field "hot" hot) "1";
        faults = List.map fault_of_string faults;
      }
  | _ -> raise (Invalid_witness s)
