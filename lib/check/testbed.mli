(** Deterministic single-run executor for adversarial schedules.

    Builds the same engine/network/committee stack as
    {!Repro_consensus.Harness}, but drives it from a {!Schedule.t}: the
    byzantine strategy is scripted from the schedule, a network filter
    applies its timed perturbation events, and a fixed request stream is
    submitted round-robin to honest intake replicas.  The committed trace
    of every replica is captured for the {!Oracle}s.  Two calls with the
    same [(engine_seed, schedule, variant, n)] produce identical
    outcomes. *)

val grace : float
(** Seconds of synchrony granted after the last perturbation event before
    the liveness oracle may complain (also the run horizon). *)

type outcome = {
  commits : Trace.commit list;  (** chronological, across all replicas *)
  submitted : int list;  (** request ids handed to the committee *)
  honest : int list;
  observer : int;
  heal_time : float;
  horizon : float;
  view_changes : int;
}

val run :
  engine_seed:int64 -> variant:Repro_consensus.Config.variant -> n:int -> Schedule.t -> outcome
