(** The cross-shard explorer: seeded trials over whole-system schedules,
    oracles, shrinking, and the silent-client differential.

    Trial [i] of a run with base seed [s] uses engine seed [s + i] and the
    schedule generated from [split_named (create s) (string_of_int i)] —
    a witness is fully described by [(engine_seed, schedule)] plus the
    fixed run parameters. *)

val mode_of_name : string -> Repro_core.System.coordination_mode option
(** CLI names: [ref], [client], [flat]. *)

val mode_name : Repro_core.System.coordination_mode -> string

val concurrency_of_name : string -> Repro_core.System.concurrency_control option
(** CLI names: [2pl], [waitdie]. *)

type trial = {
  index : int;
  engine_seed : int64;
  schedule : Xschedule.t;
  violations : Xoracle.violation list;
  shrunk : Xschedule.t option;  (** minimized witness, on any violation *)
  shrink_reruns : int;
}

type report = {
  mode : Repro_core.System.coordination_mode;
  batching : bool;  (** true when the trials ran the batched commit path *)
  lane : bool;  (** true when the trials ran the fast lane (mergeable deltas) *)
  shards : int;
  committee_size : int;
  trials : trial list;
  safety_violations : int;  (** trials with at least one safety violation *)
  liveness_violations : int;
}

val replay :
  ?batching:bool ->
  ?lane:bool ->
  mode:Repro_core.System.coordination_mode ->
  concurrency:Repro_core.System.concurrency_control ->
  shards:int ->
  committee_size:int ->
  engine_seed:int64 ->
  Xschedule.t ->
  Xoracle.violation list
(** Deterministically re-run one witness and re-check the oracles.
    [batching] (default false) replays over the batched commit path;
    [lane] (default false) over the commutative fast lane with the honest
    transfers rewritten as delta pairs ({!Xtestbed.run}).  Both are run
    parameters, not part of the witness line. *)

val schedule_for :
  ?lane:bool -> seed:int64 -> shards:int -> committee_size:int -> int -> Xschedule.t
(** The schedule trial [i] uses (exposed for replay tests); [lane]
    (default false) draws with {!Xschedule.generate_lane} instead so
    faults also target the delta legs. *)

val engine_seed_for : seed:int64 -> int -> int64

val run :
  ?batching:bool ->
  ?lane:bool ->
  mode:Repro_core.System.coordination_mode ->
  concurrency:Repro_core.System.concurrency_control ->
  shards:int ->
  committee_size:int ->
  trials:int ->
  seed:int64 ->
  budget:int ->
  unit ->
  report
(** Explore [trials] seeded schedules; every violation (stuck locks
    included — they are first-class bugs here) is shrunk with at most
    [budget] replays.  [batching] (default false) explores the batched +
    pipelined commit path on the same schedules; [lane] (default false)
    explores the fast lane under delta-leg faults with the
    merge-convergence and conservation oracles armed. *)

val silent_client_schedule : Xschedule.t
(** Two cross-shard transfers, the first from a silent client, no
    network faults — the differential's fixed workload. *)

type differential = {
  with_ref : Xoracle.violation list;
  client_driven : Xoracle.violation list;
  holds : bool;
      (** the paper's Figure-14 argument as a property: R's fallback
          finishes the silent client's transaction with no violations,
          while client-driven coordination leaves its locks stuck *)
}

val differential :
  ?batching:bool -> shards:int -> committee_size:int -> seed:int64 -> unit -> differential
(** [batching] (default false) runs both sides of the differential over
    the batched commit path — the Figure-14 argument must survive the
    optimization. *)

val pp_report : Format.formatter -> report -> unit

val pp_differential : Format.formatter -> differential -> unit

val json_of_report : report -> string

val json_of_differential : differential -> string
