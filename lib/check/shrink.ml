(* Greedy delta-debugging over schedules: try structurally smaller
   candidates, keep any that still reproduces the same kind of violation
   (re-checked by a fully deterministic replay), repeat to fixpoint or
   budget exhaustion.  The result plus the engine seed is a minimal
   replayable witness. *)

let candidates (s : Schedule.t) =
  let drop_events =
    List.mapi
      (fun i _ ->
        { s with Schedule.events = List.filteri (fun j _ -> j <> i) s.Schedule.events })
      s.Schedule.events
  in
  let simpler_flags =
    (if s.Schedule.stale_replay then [ { s with Schedule.stale_replay = false } ] else [])
    @ (match s.Schedule.leader with
      | None -> []
      | Some _ -> [ { s with Schedule.leader = None } ])
    @
    match s.Schedule.silent_toward with
    | [] -> []
    | _ -> [ { s with Schedule.silent_toward = [] } ]
  in
  let fewer_requests =
    if s.Schedule.requests > 2 then
      [ { s with Schedule.requests = Int.max 2 (s.Schedule.requests / 2) } ]
    else []
  in
  let fewer_byz =
    match List.rev s.Schedule.byz with
    | [] | [ _ ] -> []  (* keep at least one byzantine: it is the attack *)
    | _ :: keep -> [ { s with Schedule.byz = List.rev keep } ]
  in
  drop_events @ simpler_flags @ fewer_byz @ fewer_requests

let minimize ~replay ~budget schedule violation =
  let reruns = ref 0 in
  let reproduces s =
    incr reruns;
    match replay s with
    | Some v -> Oracle.same_kind v violation
    | None -> false
  in
  let rec fixpoint s =
    if !reruns >= budget then s
    else
      let rec try_candidates = function
        | [] -> s
        | cand :: rest ->
            if !reruns >= budget then s
            else if reproduces cand then fixpoint cand
            else try_candidates rest
      in
      try_candidates (candidates s)
  in
  let shrunk = fixpoint schedule in
  (shrunk, !reruns)
