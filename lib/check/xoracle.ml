open Repro_core

type violation =
  | Atomicity of {
      txid : int;
      committed_on : int list;
      aborted_on : int list;
      missing : int list;
    }
  | Divergence of { txid : int; ref_commit : bool; shard : int; shard_commit : bool }
  | Conservation of { before : int; after : int }
  | Ckpt_divergence of { committee : int; seq : int; roots : int list }
  | Merge_divergence of { shard : int; key : string; expected : string; actual : string }
  | Stuck_locks of { count : int }
  | Liveness of { missing : int; first : int }
  | Stale_observer of { committee : int; lag : int }

let convergence_bound = 16

let is_safety = function
  | Atomicity _ | Divergence _ | Conservation _ | Ckpt_divergence _ | Merge_divergence _ ->
      true
  | Stuck_locks _ | Liveness _ | Stale_observer _ -> false

let same_kind a b =
  match (a, b) with
  | Atomicity _, Atomicity _
  | Divergence _, Divergence _
  | Conservation _, Conservation _
  | Ckpt_divergence _, Ckpt_divergence _
  | Merge_divergence _, Merge_divergence _
  | Stuck_locks _, Stuck_locks _
  | Liveness _, Liveness _
  | Stale_observer _, Stale_observer _ ->
      true
  | ( ( Atomicity _ | Divergence _ | Conservation _ | Ckpt_divergence _ | Merge_divergence _
      | Stuck_locks _ | Liveness _ | Stale_observer _ ),
      _ ) ->
      false

let ints ids = String.concat "," (List.map string_of_int ids)

let to_string = function
  | Atomicity { txid; committed_on; aborted_on; missing } ->
      Printf.sprintf
        "atomicity: tx %d committed on shards [%s] but aborted on [%s] and undecided on [%s]"
        txid (ints committed_on) (ints aborted_on) (ints missing)
  | Divergence { txid; ref_commit; shard; shard_commit } ->
      Printf.sprintf "divergence: R recorded tx %d as %s but shard %d applied %s" txid
        (if ref_commit then "committed" else "aborted")
        shard
        (if shard_commit then "a commit" else "an abort")
  | Conservation { before; after } ->
      Printf.sprintf "conservation: total balance drifted from %d to %d at quiescence" before
        after
  | Ckpt_divergence { committee; seq; roots } ->
      Printf.sprintf "ckpt-divergence: committee %d certified roots [%s] for checkpoint seq %d"
        committee (ints roots) seq
  | Merge_divergence { shard; key; expected; actual } ->
      Printf.sprintf
        "merge-divergence: shard %d key %s materialised %S but the canonical fold of its \
         delta log gives %S"
        shard key actual expected
  | Stuck_locks { count } ->
      Printf.sprintf "stuck-locks: %d lock tuples still held at quiescence" count
  | Liveness { missing; first } ->
      Printf.sprintf "liveness: %d transactions never decided by the horizon (first: tx %d)"
        missing first
  | Stale_observer { committee; lag } ->
      Printf.sprintf
        "stale-observer: committee %d's observer trails by %d executed slots at quiescence \
         (bound: %d)"
        committee lag convergence_bound

let check (o : Xtestbed.outcome) =
  (* At-most-one decision per (txid, shard): the executors guard with the
     applied table, so the trace can be read as a map. *)
  let decisions_for txid =
    List.filter (fun (d : System.decision_event) -> d.System.txid = txid) o.Xtestbed.decisions
  in
  (* Atomicity: a multi-shard transaction must reach the same decision on
     every participant — commit-on-some with abort-or-nothing elsewhere is
     the partial commit 2PC exists to prevent. *)
  let atomicity =
    List.filter_map
      (fun (i : Xtestbed.tx_info) ->
        if List.length i.Xtestbed.participants < 2 then None
        else
          let ds = decisions_for i.Xtestbed.txid in
          let committed_on =
            List.filter_map
              (fun (d : System.decision_event) ->
                if d.System.commit then Some d.System.shard else None)
              ds
          in
          let aborted_on =
            List.filter_map
              (fun (d : System.decision_event) ->
                if d.System.commit then None else Some d.System.shard)
              ds
          in
          let missing =
            List.filter
              (fun s ->
                not
                  (List.exists
                     (fun (d : System.decision_event) -> d.System.shard = s)
                     ds))
              i.Xtestbed.participants
          in
          if committed_on <> [] && (aborted_on <> [] || missing <> []) then
            Some (Atomicity { txid = i.Xtestbed.txid; committed_on; aborted_on; missing })
          else None)
      o.Xtestbed.infos
  in
  (* Durable decision: what R's replicated state machine recorded must be
     what the shard chains applied. *)
  let divergence =
    List.concat_map
      (fun (txid, ref_commit) ->
        List.filter_map
          (fun (d : System.decision_event) ->
            if d.System.txid = txid && d.System.commit <> ref_commit then
              Some
                (Divergence { txid; ref_commit; shard = d.System.shard; shard_commit = d.System.commit })
            else None)
          o.Xtestbed.decisions)
      o.Xtestbed.ref_decisions
  in
  (* Conservation: transfers move value, they never mint or burn it. *)
  let conservation =
    if o.Xtestbed.total_before = o.Xtestbed.total_after then []
    else [ Conservation { before = o.Xtestbed.total_before; after = o.Xtestbed.total_after } ]
  in
  (* Checkpoint agreement: no two members of a committee may hold
     certificates binding the same sequence number to different roots —
     a quorum of 2f+1 votes per cert means two such certs share a correct
     voter, so divergence here is a broken execution chain, not noise. *)
  let ckpt_divergence =
    let by_slot = Hashtbl.create 16 in
    List.iter
      (fun (committee, _member, seq, root) ->
        let key = (committee, seq) in
        let roots = Option.value (Hashtbl.find_opt by_slot key) ~default:[] in
        if not (List.mem root roots) then Hashtbl.replace by_slot key (root :: roots))
      o.Xtestbed.ckpt_certs;
    let compare_slot (c1, s1) (c2, s2) =
      match Int.compare c1 c2 with 0 -> Int.compare s1 s2 | c -> c
    in
    Repro_util.Det.fold ~compare:compare_slot
      (fun (committee, seq) roots acc ->
        match roots with
        | _ :: _ :: _ ->
            Ckpt_divergence { committee; seq; roots = List.sort Int.compare roots } :: acc
        | _ -> acc)
      by_slot []
  in
  (* Merge convergence: each shard's materialised state must be exactly
     the canonical fold of its delta-lane history — one root per block.
     Dropped legs are the client's retry problem (liveness); a key that
     folded to the wrong value is a safety bug in the lane itself. *)
  let merge_divergence =
    List.map
      (fun (shard, (m : Repro_ledger.Merge.mismatch)) ->
        Merge_divergence
          {
            shard;
            key = m.Repro_ledger.Merge.mkey;
            expected = m.Repro_ledger.Merge.expected;
            actual = m.Repro_ledger.Merge.actual;
          })
      o.Xtestbed.merge_audit
  in
  let safety = atomicity @ divergence @ conservation @ ckpt_divergence @ merge_divergence in
  match safety with
  | _ :: _ -> safety
  | [] ->
      (* Liveness-class checks only mean something on safe runs.  With a
         coordinator committee — R, or the flattened per-shard machines —
         every transaction must eventually decide: defeating silent
         clients is the point of the fallback; client-driven coordination
         is only accountable for honest clients. *)
      let stuck =
        if o.Xtestbed.stuck_locks > 0 then [ Stuck_locks { count = o.Xtestbed.stuck_locks } ]
        else []
      in
      let undecided =
        List.filter
          (fun (i : Xtestbed.tx_info) ->
            i.Xtestbed.outcome = None
            && (i.Xtestbed.honest || o.Xtestbed.mode <> System.Client_driven))
          o.Xtestbed.infos
      in
      let liveness =
        match undecided with
        | [] -> []
        | first :: _ ->
            [ Liveness { missing = List.length undecided; first = first.Xtestbed.txid } ]
      in
      (* Bounded convergence: a recovered observer must have caught up to
         within one checkpoint interval of its committee by quiescence —
         the grace window is far longer than a catch-up round trip, so a
         larger lag means the fetch protocol stalled, not that it is
         merely slow. *)
      let stale =
        List.filter_map
          (fun (committee, lag) ->
            if lag > convergence_bound then Some (Stale_observer { committee; lag }) else None)
          o.Xtestbed.observer_lag
      in
      stuck @ liveness @ stale
