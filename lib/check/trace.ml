open Repro_consensus

type commit = {
  member : int;
  view : int;
  seq : int;
  digest : int;
  ids : int list;
  at : float;
}

let commit_of_batch ~member ~view ~seq ~digest ~at batch =
  { member; view; seq; digest; ids = List.map (fun q -> q.Types.req_id) batch; at }

let pp_commit fmt c =
  Format.fprintf fmt "member=%d view=%d seq=%d digest=%d ids=[%s] at=%.3f" c.member c.view c.seq
    c.digest
    (String.concat ";" (List.map string_of_int c.ids))
    c.at
