(** Seed-driven adversarial schedules.

    A schedule is the adversary's whole script for one run: which replicas
    are byzantine and how they are scripted ({!Repro_consensus.Pbft.byz_strategy}
    knobs), how many client requests arrive, and a list of timed network
    perturbation events (message drops, delivery jitter, duplication,
    partitions, directed silence).  Schedules are generated from an
    explicit {!Repro_util.Rng.t}, so [(seed, schedule)] identifies a run
    bit-exactly, and serialize to a single printable line for replayable
    witnesses. *)

type event_kind =
  | Drop of float  (** drop each in-window message with this probability *)
  | Jitter of float  (** add uniform [0, d) extra delay to in-window messages *)
  | Duplicate of float  (** duplicate each in-window message with this probability *)
  | Partition of int list
      (** messages crossing the cut between this group and the rest are
          dropped while the event is active (partition-and-heal) *)
  | Silence of { from_ : int; toward : int }
      (** the directed link [from_ -> toward] is dead while active *)

type event = { start : float; stop : float; kind : event_kind }

type leader_attack =
  | Stall
      (** the clique campaigns for leader slots, wins them with credible
          New_views, then withholds every batch (deposed only by timeout) *)
  | Serve_only of int list
      (** as leader, serve pre-prepares/commit votes only to these peers *)
  | Drip of float
      (** as leader, one batch per interval — just under the watchdog
          period this throttles the committee without ever being deposed *)

exception Invalid_witness of string
(** Raised by {!of_string} / event parsing on a malformed witness. *)

type t = {
  byz : int list;  (** byzantine member ids (the colluding clique) *)
  split_brain : bool;  (** script the Figure 8/16 conflicting-batch attack *)
  stale_replay : bool;  (** byzantine replicas replay stale-view prepares *)
  silent_toward : int list;  (** peers the byzantine clique never messages *)
  leader : leader_attack option;
      (** byzantine-leader strategy (the Fig. 16 right-panel adversary);
          serialized as an optional [lead=] witness token, so witnesses
          predating the leader palette replay verbatim *)
  requests : int;  (** client submissions (one every 50 ms, round-robin) *)
  events : event list;
}

val heal_time : t -> float
(** When the last perturbation event ends (0 if there are none); the
    liveness oracle grants a grace period from this point. *)

val active : event -> at:float -> bool

val size : t -> int
(** A coarse complexity measure the shrinker minimizes. *)

val generate : Repro_util.Rng.t -> n:int -> f:int -> t
(** Draw a schedule for an [n]-member committee with [f] byzantine members
    (ids [0..f-1]; the split-brain script is enabled whenever [f >= 1]). *)

val to_string : t -> string
(** One-line witness form; floats are printed with enough digits to
    round-trip bit-exactly. *)

val of_string : string -> t
(** Inverse of {!to_string}.  @raise Invalid_witness on malformed input. *)
