(** Invariant oracles over committed traces.

    Evaluated on a {!Testbed.outcome}; honest replicas only.  The safety
    oracles are checked first and liveness is reported only when the run
    was safe — an unsafe run's "progress" is meaningless. *)

type violation =
  | Agreement of {
      seq : int;
      member_a : int;
      view_a : int;
      digest_a : int;
      member_b : int;
      view_b : int;
      digest_b : int;
    }
      (** two honest replicas committed different digests at the same
          sequence number *)
  | Order of { member : int; missing_seq : int; max_seq : int }
      (** an honest ledger has a gap: it is not a prefix of the longest
          honest ledger *)
  | Validity of { member : int; seq : int; req_id : int }
      (** an honest replica committed a request no client submitted *)
  | Liveness of { missing : int; first_missing : int }
      (** submitted requests that never executed at the observer within
          the post-heal grace window *)

val is_safety : violation -> bool

val same_kind : violation -> violation -> bool
(** Constructor equality — the shrinker's "still the same bug" test. *)

val check : Testbed.outcome -> violation list

val to_string : violation -> string
