(** Cross-shard adversarial schedules: seeded 2PC coordinator faults over
    the whole {!Repro_core.System} (shard committees plus R), extending the
    single-committee {!Schedule} adversary.

    A schedule scripts the workload (how many cross-shard transactions,
    which clients go silent after BeginTx, which attempt overdrafts,
    whether all debits contend on one hot key) and a list of timed faults
    over the coordination legs themselves — the Figure-5 messages —
    rather than over raw network packets. *)

type leg =
  | Prepare  (** PrepareTx, coordinator/client -> participant shard *)
  | Vote  (** a shard's quorum answer relayed to R *)
  | Decision  (** CommitTx/AbortTx -> participant shard *)
  | Mdelta
      (** a fast-lane delta leg (MergeTx -> participant shard): no
          prepare/vote round to attack, so dropping/delaying these races
          the client's retry against the block-boundary fold *)

type fault_kind =
  | Drop_leg of { leg : leg; p : float }  (** lose matching legs w.p. [p] *)
  | Dup_leg of { leg : leg; p : float }  (** re-deliver matching legs w.p. [p] *)
  | Delay_leg of { leg : leg; d : float }
      (** hold matching legs for [d] seconds — past
          [client_fallback_timeout] when [d] is large *)
  | Crash_ref of { member : int }  (** crash a backup replica of R for the window *)
  | Cut_shard of int
      (** partition this participant shard from R: both its incoming legs
          and its outgoing votes are lost *)
  | Crash_observer of { shard : int }
      (** crash the shard's observer replica (member 0, where state
          materializes) for the window — execution on that shard stalls
          until recovery and client retries / R's sweeps must re-drive *)
  | Epoch_wave of { epoch : int }
      (** run a full {!Repro_core.System.advance_epoch} transition
          (Batched_log waves) starting at the window's [start], racing
          the 2PC legs against transitioning replicas; [stop] only pads
          the quiescence horizon *)

type fault = { start : float; stop : float; kind : fault_kind }

exception Invalid_witness of string

type t = {
  txs : int;  (** cross-shard transfers submitted (txids 1..txs) *)
  malicious : int list;  (** tx indices whose client stops relaying after BeginTx *)
  overdraft : int list;  (** tx indices transferring more than their funding *)
  contended : bool;  (** all debits drawn from one hot account on shard 0 *)
  faults : fault list;
}

val heal_time : t -> float
(** When the last fault window closes (0 if none). *)

val active : fault -> at:float -> bool

val size : t -> int
(** Structural size, the shrinker's objective. *)

val generate : Repro_util.Rng.t -> shards:int -> committee_size:int -> t
(** The legacy draw: faults target the three 2PC legs only, so
    pre-fast-lane seeds regenerate the identical schedule. *)

val generate_lane : Repro_util.Rng.t -> shards:int -> committee_size:int -> t
(** Fast-lane trial draw: extends {!generate} with extra faults whose leg
    draw includes {!Mdelta}, and clears [malicious] — the lane's delta
    legs are client-driven, so silent clients are the (separately tested)
    2PC attack, not a lane schedule's job. *)

val to_string : t -> string
(** One-line witness; floats print as [%.17g] so [of_string] replays the
    bit-identical schedule. *)

val of_string : string -> t
(** Inverse of {!to_string}; raises {!Invalid_witness} on malformed
    input. *)
