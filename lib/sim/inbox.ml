type channel = Request | Consensus

type mode =
  | Shared of int
  | Split of { request_cap : int; consensus_cap : int }

type 'msg t = {
  mode : mode;
  shared : (channel * 'msg) Queue.t; (* used in Shared mode *)
  requests : 'msg Queue.t; (* used in Split mode *)
  consensus : 'msg Queue.t;
  mutable dropped_requests : int;
  mutable dropped_consensus : int;
}

let create mode =
  (match mode with
  | Shared cap when cap <= 0 -> Sim_error.invalid "Inbox.create: capacity must be positive"
  | Split { request_cap; consensus_cap } when request_cap <= 0 || consensus_cap <= 0 ->
      Sim_error.invalid "Inbox.create: capacity must be positive"
  | _ -> ());
  {
    mode;
    shared = Queue.create ();
    requests = Queue.create ();
    consensus = Queue.create ();
    dropped_requests = 0;
    dropped_consensus = 0;
  }

let drop t channel =
  (match channel with
  | Request -> t.dropped_requests <- t.dropped_requests + 1
  | Consensus -> t.dropped_consensus <- t.dropped_consensus + 1);
  false

let push t channel msg =
  match t.mode with
  | Shared cap ->
      if Queue.length t.shared >= cap then drop t channel
      else begin
        Queue.add (channel, msg) t.shared;
        true
      end
  | Split { request_cap; consensus_cap } -> (
      match channel with
      | Request ->
          if Queue.length t.requests >= request_cap then drop t channel
          else begin
            Queue.add msg t.requests;
            true
          end
      | Consensus ->
          if Queue.length t.consensus >= consensus_cap then drop t channel
          else begin
            Queue.add msg t.consensus;
            true
          end)

let pop t =
  match t.mode with
  | Shared _ -> Queue.take_opt t.shared
  | Split _ -> (
      match Queue.take_opt t.consensus with
      | Some msg -> Some (Consensus, msg)
      | None -> (
          match Queue.take_opt t.requests with
          | Some msg -> Some (Request, msg)
          | None -> None))

let length t =
  match t.mode with
  | Shared _ -> Queue.length t.shared
  | Split _ -> Queue.length t.requests + Queue.length t.consensus

let dropped t = function
  | Request -> t.dropped_requests
  | Consensus -> t.dropped_consensus

let clear t =
  Queue.clear t.shared;
  Queue.clear t.requests;
  Queue.clear t.consensus
