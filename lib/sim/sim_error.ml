exception Invalid of string

let invalid fmt = Printf.ksprintf (fun msg -> raise (Invalid msg)) fmt
