(** Message transport between simulated nodes.

    A send charges the source's current handler offset (messages leave when
    the CPU work that produced them is done), then the link adds
    serialization time plus jittered propagation latency from the topology.
    An installed filter can drop or delay traffic for fault injection
    (partitions, targeted message suppression). *)

type 'msg t

type verdict =
  | Deliver
  | Drop
  | Delay of float
  | Duplicate of { copies : int; spacing : float }
      (** deliver [copies] identical copies, the first on time and each
          subsequent one [spacing] seconds after the previous (adversarial
          message duplication) *)

val create : Engine.t -> topology:Topology.t -> 'msg t

val register : 'msg t -> 'msg Node.t -> unit
(** Make a node addressable; its region comes from
    [Topology.region_of_node].  Node ids must be unique. *)

val register_in_region : 'msg t -> 'msg Node.t -> region:int -> unit
(** Like [register] with an explicit region (used when committee-local ids
    don't coincide with global placement). *)

val node : 'msg t -> int -> 'msg Node.t option

val send :
  'msg t -> src:'msg Node.t -> dst:int -> channel:Inbox.channel -> bytes:int -> 'msg -> unit
(** One-way message.  Unknown destinations are ignored (models a peer that
    has left). *)

val send_external :
  'msg t -> src_region:int -> dst:int -> channel:Inbox.channel -> bytes:int -> 'msg -> unit
(** A message from an entity that is not a registered node (clients). *)

val broadcast :
  'msg t -> src:'msg Node.t -> dsts:int list -> channel:Inbox.channel -> bytes:int -> 'msg -> unit
(** Send to every id in [dsts] except the source itself. *)

val set_probe : 'msg t -> Repro_obs.Probe.t -> unit
(** Install an observability probe (default {!Repro_obs.Probe.none}):
    records a delivery-latency histogram ([net.delivery_s], departure to
    arrival including serialization and fault-injected delay) and drop
    counters split by cause ([net.dropped.filter] / [net.dropped.inbox]). *)

val set_filter : 'msg t -> (src:int -> dst:int -> 'msg -> verdict) -> unit
(** Install a fault-injection filter consulted on every send ([src = -1]
    for external senders). *)

val clear_filter : 'msg t -> unit

val sent_count : 'msg t -> int
(** Total messages handed to the transport (before filtering/drops);
    the communication-overhead measure for O(N²) vs O(N) comparisons. *)

val delivered_count : 'msg t -> int

val dropped_in_network : 'msg t -> int
(** Messages eaten by the filter (not by full inboxes). *)

val dropped_at_inbox : 'msg t -> int
(** Messages that arrived but were tail-dropped by a full inbox. *)
