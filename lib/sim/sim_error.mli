(** Typed error surface for the simulator.

    Misuse of a sim primitive (negative delay, bad region, duplicate
    registration, ...) raises {!Invalid} with a human-readable message,
    replacing the untyped [Invalid_argument] the modules used to throw.
    Callers that want to survive a misconfigured scenario can match on one
    constructor instead of string-matching stdlib exceptions. *)

exception Invalid of string

val invalid : ('a, unit, string, 'b) format4 -> 'a
(** [invalid fmt ...] raises {!Invalid} with the formatted message. *)
