open Repro_util

type verdict =
  | Deliver
  | Drop
  | Delay of float
  | Duplicate of { copies : int; spacing : float }

type 'msg t = {
  engine : Engine.t;
  topology : Topology.t;
  nodes : (int, 'msg Node.t * int) Hashtbl.t; (* id -> node, region *)
  rng : Rng.t;
  mutable filter : (src:int -> dst:int -> 'msg -> verdict) option;
  mutable sent : int;
  mutable delivered : int;
  mutable net_dropped : int;
  mutable inbox_dropped : int;
  mutable probe : Repro_obs.Probe.t;
}

let create engine ~topology =
  {
    engine;
    topology;
    nodes = Hashtbl.create 64;
    rng = Rng.split_named (Engine.rng engine) "network";
    filter = None;
    sent = 0;
    delivered = 0;
    net_dropped = 0;
    inbox_dropped = 0;
    probe = Repro_obs.Probe.none;
  }

let register_in_region t node ~region =
  let id = Node.id node in
  if Hashtbl.mem t.nodes id then Sim_error.invalid "Network.register: duplicate node id";
  if region < 0 || region >= Topology.regions t.topology then
    Sim_error.invalid "Network.register: region out of range";
  Hashtbl.replace t.nodes id (node, region)

let register t node =
  register_in_region t node ~region:(Topology.region_of_node t.topology (Node.id node))

let node t id = Option.map fst (Hashtbl.find_opt t.nodes id)

let transmit t ~src_id ~src_region ~departure ~dst ~channel ~bytes msg =
  t.sent <- t.sent + 1;
  match Hashtbl.find_opt t.nodes dst with
  | None -> ()
  | Some (dst_node, dst_region) -> (
      let decide () =
        match t.filter with
        | None -> Deliver
        | Some f -> f ~src:src_id ~dst msg
      in
      match decide () with
      | Drop ->
          t.net_dropped <- t.net_dropped + 1;
          Repro_obs.Probe.incr t.probe "net.dropped.filter"
      | (Deliver | Delay _ | Duplicate _) as v ->
          let extra, copies, spacing =
            match v with
            | Delay d -> (d, 1, 0.0)
            | Duplicate { copies; spacing } -> (0.0, Int.max 1 copies, Float.max 0.0 spacing)
            | Deliver | Drop -> (0.0, 1, 0.0)
          in
          let propagation = Topology.latency t.topology t.rng ~src_region ~dst_region in
          let serialization = Topology.transfer_time t.topology ~bytes in
          let arrival = departure +. serialization +. propagation +. extra in
          for i = 0 to copies - 1 do
            Engine.schedule_at t.engine
              ~time:(arrival +. (spacing *. float_of_int i))
              (fun () ->
                if Node.deliver dst_node channel msg then begin
                  t.delivered <- t.delivered + 1;
                  Repro_obs.Probe.observe t.probe "net.delivery_s"
                    (Engine.now t.engine -. departure)
                end
                else begin
                  t.inbox_dropped <- t.inbox_dropped + 1;
                  Repro_obs.Probe.incr t.probe "net.dropped.inbox"
                end)
          done)

let send t ~src ~dst ~channel ~bytes msg =
  let src_id = Node.id src in
  let src_region =
    match Hashtbl.find_opt t.nodes src_id with
    | Some (_, r) -> r
    | None -> Sim_error.invalid "Network.send: source not registered"
  in
  let departure = Engine.now t.engine +. Node.charged src in
  transmit t ~src_id ~src_region ~departure ~dst ~channel ~bytes msg

let send_external t ~src_region ~dst ~channel ~bytes msg =
  transmit t ~src_id:(-1) ~src_region ~departure:(Engine.now t.engine) ~dst ~channel ~bytes msg

let broadcast t ~src ~dsts ~channel ~bytes msg =
  List.iter (fun dst -> if dst <> Node.id src then send t ~src ~dst ~channel ~bytes msg) dsts

let set_probe t p = t.probe <- p

let set_filter t f = t.filter <- Some f

let clear_filter t = t.filter <- None

let sent_count t = t.sent

let delivered_count t = t.delivered

let dropped_in_network t = t.net_dropped

let dropped_at_inbox t = t.inbox_dropped
