open Repro_util

type behavior = Honest | Crashed | Byzantine

type t = { roster : behavior array }

let honest n = { roster = Array.make n Honest }

let with_byzantine rng ~n ~count =
  if count > n then Sim_error.invalid "Faults.with_byzantine: count exceeds n";
  let t = honest n in
  let ids = Rng.permutation rng n in
  for i = 0 to count - 1 do
    t.roster.(ids.(i)) <- Byzantine
  done;
  t

let with_byzantine_ids ~n ~ids =
  let t = honest n in
  List.iter
    (fun id ->
      if id < 0 || id >= n then Sim_error.invalid "Faults.with_byzantine_ids: id out of range";
      t.roster.(id) <- Byzantine)
    ids;
  t

let behavior t id = t.roster.(id)

let is_byzantine t id = t.roster.(id) = Byzantine

let is_crashed t id = t.roster.(id) = Crashed

let byzantine_ids t =
  let acc = ref [] in
  Array.iteri (fun i b -> if b = Byzantine then acc := i :: !acc) t.roster;
  List.rev !acc

let crash t id = t.roster.(id) <- Crashed

let corrupt t id = t.roster.(id) <- Byzantine

let corrupt_after engine t id ~delay = Engine.schedule engine ~delay (fun () -> corrupt t id)

let byzantine_count t =
  Array.fold_left (fun acc b -> if b = Byzantine then acc + 1 else acc) 0 t.roster

let size t = Array.length t.roster
