open Repro_util

type t = {
  engine : Engine.t;
  mutable committed : int;
  mutable aborted : int;
  mutable committed_after : (float * int) list; (* (time, count), newest first *)
  latencies : Stats.t;
  counters : (string, int) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  series : Stats.Series.s;
}

let create_with_bin engine ~bin =
  {
    engine;
    committed = 0;
    aborted = 0;
    committed_after = [];
    latencies = Stats.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    series =
      (match Stats.Series.create ~bin with
      | Ok s -> s
      | Error msg -> Sim_error.invalid "Metrics.create_with_bin: %s" msg);
  }

let create engine = create_with_bin engine ~bin:1.0

let commit t ~count =
  t.committed <- t.committed + count;
  let now = Engine.now t.engine in
  t.committed_after <- (now, count) :: t.committed_after;
  Stats.Series.record t.series now (float_of_int count)

let commit_latency t ~submitted = Stats.add t.latencies (Engine.now t.engine -. submitted)

let abort t ~count = t.aborted <- t.aborted + count

let incr t name =
  Hashtbl.replace t.counters name (1 + Option.value (Hashtbl.find_opt t.counters name) ~default:0)

let add_to t name v =
  Hashtbl.replace t.gauges name (v +. Option.value (Hashtbl.find_opt t.gauges name) ~default:0.0)

let committed t = t.committed

let aborted t = t.aborted

let abort_rate t =
  let finished = t.committed + t.aborted in
  if finished = 0 then 0.0 else float_of_int t.aborted /. float_of_int finished

let counter t name = Option.value (Hashtbl.find_opt t.counters name) ~default:0

let gauge t name = Option.value (Hashtbl.find_opt t.gauges name) ~default:0.0

let throughput t ~warmup =
  let now = Engine.now t.engine in
  if now <= warmup then 0.0
  else begin
    let in_window =
      List.fold_left
        (fun acc (time, count) -> if time >= warmup then acc + count else acc)
        0 t.committed_after
    in
    float_of_int in_window /. (now -. warmup)
  end

let latency_stats t = t.latencies

let throughput_series t = Stats.Series.rate_bins t.series
