open Repro_util

type t = {
  name : string;
  nregions : int;
  latency_s : float array array; (* mean one-way latency between regions *)
  jitter : float; (* relative spread *)
  bandwidth_bps : float;
}

let gcp_region_names =
  [|
    "us-west1-b"; "us-west2-a"; "us-east1-b"; "us-east4-b";
    "asia-east1-b"; "asia-southeast1-b"; "europe-west1-b"; "europe-west2-a";
  |]

(* Table 3 of the paper, in milliseconds. *)
let gcp_latency_matrix_ms =
  [|
    [| 0.0; 24.7; 66.7; 59.0; 120.2; 150.8; 138.9; 132.7 |];
    [| 24.7; 0.0; 62.9; 60.5; 129.5; 160.5; 140.4; 136.1 |];
    [| 66.7; 62.9; 0.0; 12.7; 183.8; 216.6; 93.1; 88.2 |];
    [| 59.1; 60.4; 12.7; 0.0; 176.6; 208.4; 81.9; 75.6 |];
    [| 118.7; 129.5; 184.9; 176.6; 0.0; 50.5; 255.5; 252.5 |];
    [| 150.8; 160.5; 216.7; 208.3; 50.6; 0.0; 288.8; 283.8 |];
    [| 138.9; 140.5; 93.2; 81.8; 255.7; 288.7; 0.0; 7.1 |];
    [| 132.1; 134.9; 88.1; 76.6; 252.1; 283.9; 7.1; 0.0 |];
  |]

(* Delay within one region / between colocated instances. *)
let intra_region_s = 0.4e-3

let lan ?(latency_ms = 0.3) ?(jitter = 0.1) ?(bandwidth_mbps = 1000.0) () =
  {
    name = "local-cluster";
    nregions = 1;
    latency_s = [| [| latency_ms *. 1e-3 |] |];
    jitter;
    bandwidth_bps = bandwidth_mbps *. 1e6;
  }

let constrained_lan ~latency_ms ~bandwidth_mbps =
  {
    name = Printf.sprintf "cluster-%gms-%gMbps" latency_ms bandwidth_mbps;
    nregions = 1;
    latency_s = [| [| latency_ms *. 1e-3 |] |];
    jitter = 0.1;
    bandwidth_bps = bandwidth_mbps *. 1e6;
  }

let gcp n =
  if n < 1 || n > 8 then Sim_error.invalid "Topology.gcp: regions must be in 1..8";
  let latency_s =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then intra_region_s else gcp_latency_matrix_ms.(i).(j) *. 1e-3))
  in
  {
    name = Printf.sprintf "gcp-%d-regions" n;
    nregions = n;
    latency_s;
    jitter = 0.1;
    bandwidth_bps = 100.0 *. 1e6;
  }

let name t = t.name

let regions t = t.nregions

let region_of_node t node = node mod t.nregions

let latency t rng ~src_region ~dst_region =
  if src_region < 0 || src_region >= t.nregions || dst_region < 0 || dst_region >= t.nregions
  then Sim_error.invalid "Topology.latency: region out of range";
  let base = t.latency_s.(src_region).(dst_region) in
  let base = Float.max base intra_region_s in
  (* Symmetric relative jitter, truncated at zero. *)
  let j = 1.0 +. ((Rng.float rng 2.0 -. 1.0) *. t.jitter) in
  Float.max 0.0 (base *. j)

let transfer_time t ~bytes = float_of_int (8 * bytes) /. t.bandwidth_bps
