open Repro_util

type t = {
  mutable clock : float;
  queue : (unit -> unit) Heap.t;
  root_rng : Rng.t;
  mutable processed : int;
}

type cancel = bool ref

let create ~seed =
  { clock = 0.0; queue = Heap.create (); root_rng = Rng.create seed; processed = 0 }

let now t = t.clock

let rng t = t.root_rng

let schedule_at t ~time f =
  let time = Float.max time t.clock in
  Heap.push t.queue time f

let schedule t ~delay f =
  if delay < 0.0 then Sim_error.invalid "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let timer t ~delay f =
  let flag = ref false in
  schedule t ~delay (fun () -> if not !flag then f ());
  flag

let cancel flag = flag := true

let cancelled flag = !flag

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      t.processed <- t.processed + 1;
      f ();
      true

let run t ~until =
  let continue = ref true in
  while !continue do
    match Heap.peek_key t.queue with
    | Some time when time <= until -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  t.clock <- Float.max t.clock until

let run_until_idle ?(max_events = max_int) t =
  let n = ref 0 in
  while !n < max_events && step t do
    incr n
  done

let events_processed t = t.processed

let pending t = Heap.size t.queue
