type 'msg t = {
  engine : Engine.t;
  node_id : int;
  inbox : 'msg Inbox.t;
  handler : 'msg t -> 'msg -> unit;
  mutable busy_until : float;
  mutable pump_scheduled : bool;
  mutable crashed : bool;
  mutable busy_accum : float;
  mutable epoch_started : float;
}

let create engine ~id ~inbox_mode ~handler =
  {
    engine;
    node_id = id;
    inbox = Inbox.create inbox_mode;
    handler;
    busy_until = Engine.now engine;
    pump_scheduled = false;
    crashed = false;
    busy_accum = 0.0;
    epoch_started = Engine.now engine;
  }

let id t = t.node_id

let engine t = t.engine

let charge t cost =
  if cost < 0.0 then Sim_error.invalid "Node.charge: negative cost";
  let start = Float.max (Engine.now t.engine) t.busy_until in
  t.busy_until <- start +. cost;
  t.busy_accum <- t.busy_accum +. cost

let charged t = Float.max 0.0 (t.busy_until -. Engine.now t.engine)

(* Serial-CPU drain loop: handle the next message once the CPU frees up.
   At most one wake-up event is outstanding at any time. *)
let rec pump t =
  t.pump_scheduled <- false;
  if not t.crashed then begin
    let now = Engine.now t.engine in
    if now < t.busy_until then schedule_pump t (t.busy_until -. now)
    else
      match Inbox.pop t.inbox with
      | None -> ()
      | Some (_, msg) ->
          t.handler t msg;
          pump t
  end

and schedule_pump t delay =
  if not t.pump_scheduled then begin
    t.pump_scheduled <- true;
    Engine.schedule t.engine ~delay (fun () -> pump t)
  end

let deliver t channel msg =
  if t.crashed then false
  else begin
    let accepted = Inbox.push t.inbox channel msg in
    if accepted then begin
      let now = Engine.now t.engine in
      if now >= t.busy_until then pump t else schedule_pump t (t.busy_until -. now)
    end;
    accepted
  end

let inbox_dropped t channel = Inbox.dropped t.inbox channel

let inbox_length t = Inbox.length t.inbox

let crash t =
  t.crashed <- true;
  Inbox.clear t.inbox

let recover t =
  if t.crashed then begin
    t.crashed <- false;
    t.epoch_started <- Engine.now t.engine;
    t.busy_until <- Engine.now t.engine;
    pump t
  end

let is_crashed t = t.crashed

let busy_fraction t =
  let elapsed = Engine.now t.engine -. t.epoch_started in
  if elapsed <= 0.0 then 0.0 else Float.min 1.0 (t.busy_accum /. elapsed)
