(** Per-file AST checks for rules R1–R3 and R5.

    R4 (interface coverage) needs the whole module graph and lives in
    {!Lint}.  Scoping is by path prefix so the same checks can be exercised
    against fixture files under any directory by passing a logical path. *)

val of_structure : path:string -> Parsetree.structure -> Lint_types.finding list
(** Findings for one parsed implementation, sorted by position.  [path] is
    the logical path used for rule scoping (e.g. ["lib/consensus/pbft.ml"])
    and recorded in each finding. *)

val in_r2_scope : string -> bool
(** Whether R2 (comparison safety) applies to this path — exposed so tests
    and the driver agree on the message/state-path boundary. *)

val in_r2_sort_scope : string -> bool
(** Whether R2's sort-argument check (bare [compare] passed to a
    sort/dedup or [Det] traversal) applies: the whole [lib/] tree.  Where
    {!in_r2_scope} already holds, the ident-level check reports instead,
    so the two never double-count a finding. *)

val in_r5_scope : string -> bool
(** Whether R5 (quorum hygiene) applies to this path: the consensus and
    shard trees, minus the size-computing allowlist
    ([Config]/[Quorum]/[Sizing]). *)

val in_r6_scope : string -> bool
(** Whether R6 (console hygiene) applies to this path: the whole [lib/]
    tree, minus the rendering allowlist ([Sink]/[Table]). *)

val starts_with : prefix:string -> string -> bool
(** Path-prefix test shared with the driver's R4 scoping. *)

val flatten : Longident.t -> string list
(** Like [Longident.flatten] but total: functor applications keep only the
    head path instead of raising. *)
