(* Pass 1 of the cross-module analysis behind rules R7 and R8.

   One summary per implementation file: the toplevel mutable cells it
   defines, and — for every toplevel binding — the identifiers it
   references, the mutations it performs, and the nondeterminism sources
   it calls, each annotated with the lexical context that matters to the
   later propagation (inside a [Mutex.protect]-style guard, inside a
   closure handed to [Pool.submit]/[Domain.spawn]).  Everything here is
   purely syntactic; {!Propagate} stitches the summaries into a call
   graph and decides what is actually reachable from a domain-submitted
   task or from state-and-artifact-producing code. *)

type cell_kind = Raw | Sync

type cell = {
  c_name : string;
  c_line : int;
  c_col : int;
  c_ctor : string;  (* constructor expression head, e.g. "ref", "Hashtbl.create" *)
  c_kind : cell_kind;
}

type reference = {
  r_path : string list;
  r_line : int;
  r_col : int;
  r_guarded : bool;
  r_in_task : bool;
}

type mutation = { mut_what : string; mut_line : int; mut_col : int; mut_guarded : bool }

type nondet = { nd_what : string; nd_hint : string; nd_line : int; nd_col : int }

type func = {
  fn_name : string;  (* "" groups module-initialisation code *)
  fn_line : int;
  fn_lock_aware : bool;
  fn_refs : reference list;
  fn_mutations : mutation list;
  fn_nondet : nondet list;
}

type t = {
  sm_path : string;
  sm_module : string;
  sm_cells : cell list;
  sm_funs : func list;
  sm_concurrent : bool;  (* references Mutex/Condition/Domain: hand-rolled synchronization *)
  sm_submits : bool;  (* contains a Pool.submit/Pool.map/Domain.spawn call *)
}

(* ------------------------------------------------------------------ *)
(* Vocabulary: constructors, guards, spawn points, nondet sources      *)
(* ------------------------------------------------------------------ *)

let last2 parts = match List.rev parts with b :: a :: _ -> Some (a, b) | _ -> None

let last1 parts = match List.rev parts with b :: _ -> Some b | _ -> None

(* Heads that allocate raw shared-mutable state when bound at toplevel. *)
let raw_ctor = function
  | Some ("Hashtbl", "create")
  | Some ("Queue", "create")
  | Some ("Stack", "create")
  | Some ("Buffer", "create")
  | Some ("Array", ("make" | "init" | "create_float"))
  | Some ("Bytes", ("create" | "make")) ->
      true
  | _ -> false

(* Heads that allocate internally synchronized state: safe to share. *)
let sync_ctor = function
  | Some ("Atomic", "make")
  | Some ("Mutex", "create")
  | Some ("Condition", "create")
  | Some ("Semaphore", "make")
  | Some ("Memo", "create")
  | Some ("Pool", "create")
  | Some ("Hub", "create") ->
      true
  | _ -> false

(* Callees whose function arguments run on another domain. *)
let is_spawn_callee parts =
  match last2 parts with
  | Some ("Pool", ("submit" | "map")) | Some ("Domain", "spawn") -> true
  | _ -> false

(* Callees whose function arguments run under a lock. *)
let is_guard_callee parts =
  match last2 parts with Some ("Mutex", "protect") -> true | _ -> false

let is_lock_primitive parts =
  match last2 parts with Some ("Mutex", ("lock" | "protect")) -> true | _ -> false

let concurrency_module parts =
  match parts with
  | "Mutex" :: _ :: _ | "Condition" :: _ :: _ | "Domain" :: _ :: _ -> true
  | _ -> (
      match last2 parts with
      | Some (("Mutex" | "Condition" | "Domain"), _) -> true
      | _ -> false)

(* Syntactic mutations policed by R7 inside concurrency-claiming modules. *)
let mutation_callee parts =
  match parts with
  | [ ":=" ] -> Some "ref assignment (:=)"
  | [ "incr" ] | [ "Stdlib"; "incr" ] -> Some "ref increment (incr)"
  | [ "decr" ] | [ "Stdlib"; "decr" ] -> Some "ref decrement (decr)"
  | _ -> (
      match last2 parts with
      | Some (("Hashtbl" as m), (("replace" | "add" | "remove" | "reset" | "clear") as v))
      | Some (("Queue" as m), (("add" | "push" | "pop" | "take" | "clear" | "transfer") as v))
      | Some
          ( ("Buffer" as m),
            (("add_string" | "add_char" | "add_bytes" | "add_subbytes" | "clear" | "reset") as v)
          ) ->
          Some (m ^ "." ^ v)
      | _ -> None)

(* Nondeterminism sources invisible to the per-file R1 rule: worker
   identity, GC state, the ambient self-seeded [Random] generator, and
   the polymorphic (layout- and version-dependent) [Hashtbl.hash]. *)
let nondet_source parts =
  match parts with
  | [ "Random";
      (( "int" | "full_int" | "int32" | "int64" | "nativeint" | "float" | "bool" | "char"
       | "bits" | "bits32" | "bits64" ) as v)
    ] ->
      Some
        ( "Random." ^ v ^ " draws from the ambient self-seeded generator",
          "draw from the run's seeded Repro_util.Rng instead" )
  | _ -> (
      match last2 parts with
      | Some ("Domain", "self") ->
          Some
            ( "Domain.self exposes scheduling-dependent worker identity",
              "derive run identity from task parameters, never from the executing domain" )
      | Some ("Gc", (("stat" | "quick_stat" | "minor_words" | "allocated_bytes" | "counters") as v))
        ->
          Some
            ( "Gc." ^ v ^ " exposes allocation history, which differs across runs and workers",
              "measure simulated cost through the engine, not the collector" )
      | Some ("Hashtbl", (("hash" | "seeded_hash" | "hash_param") as v)) ->
          Some
            ( "Hashtbl." ^ v ^ " is polymorphic and depends on value layout and OCaml version",
              "derive stable tags with Repro_util.Det.stable_hash over an explicit rendering" )
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

let loc_pos (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol + 1)

let module_name_of path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let rec pat_name (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (inner, _) -> pat_name inner
  | _ -> None

let rec fun_body (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> fun_body body
  | Pexp_newtype (_, body) -> fun_body body
  | _ -> e

let is_function (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

let rec strip_constraint (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (inner, _) | Pexp_coerce (inner, _, _) -> strip_constraint inner
  | _ -> e

let classify_cell (e : Parsetree.expression) =
  let e = strip_constraint e in
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      let parts = Lint_rules.flatten txt in
      match parts with
      | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some ("ref", Raw)
      | _ ->
          let pair = last2 parts in
          if raw_ctor pair then
            Some ((match pair with Some (m, v) -> m ^ "." ^ v | None -> "?"), Raw)
          else if sync_ctor pair then
            Some ((match pair with Some (m, v) -> m ^ "." ^ v | None -> "?"), Sync)
          else None)
  | _ -> None

(* Per-binding accumulator threaded through the iterator via mutable
   context: the enclosing toplevel binding, whether the current subtree is
   under a lock or inside a domain-submitted closure. *)
type ctx = {
  mutable cur : string;
  mutable guarded : bool;
  mutable in_task : bool;
  mutable refs : reference list;
  mutable muts : mutation list;
  mutable nds : nondet list;
  mutable submits : bool;
  mutable concurrent : bool;
  lock_aware : (string, unit) Hashtbl.t;
}

(* First micro-pass: which toplevel bindings mention Mutex.lock/protect
   anywhere in their body (the lock-aware set used to bless mutations and
   to infer guard wrappers like Hub's [locked]). *)
let lock_aware_set (structure : Parsetree.structure) =
  let set = Hashtbl.create 8 in
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr this (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> if is_lock_primitive (Lint_rules.flatten txt) then found := true
    | _ -> ());
    super.expr this e
  in
  let it = { super with expr } in
  List.iter
    (fun (si : Parsetree.structure_item) ->
      match si.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              found := false;
              it.expr it vb.pvb_expr;
              if !found then
                match pat_name vb.pvb_pat with
                | Some name -> Hashtbl.replace set name ()
                | None -> ())
            bindings
      | _ -> ())
    structure;
  set

let of_structure ~path (structure : Parsetree.structure) =
  let ctx =
    {
      cur = "";
      guarded = false;
      in_task = false;
      refs = [];
      muts = [];
      nds = [];
      submits = false;
      concurrent = false;
      lock_aware = lock_aware_set structure;
    }
  in
  let cells = ref [] in
  let funs = ref [] in
  let record_ref parts loc =
    let line, col = loc_pos loc in
    ctx.refs <-
      { r_path = parts; r_line = line; r_col = col; r_guarded = ctx.guarded; r_in_task = ctx.in_task }
      :: ctx.refs;
    if concurrency_module parts then ctx.concurrent <- true;
    if is_spawn_callee parts then ctx.submits <- true
  in
  let record_mut what loc =
    let line, col = loc_pos loc in
    ctx.muts <- { mut_what = what; mut_line = line; mut_col = col; mut_guarded = ctx.guarded } :: ctx.muts
  in
  let record_nd (what, hint) loc =
    let line, col = loc_pos loc in
    ctx.nds <- { nd_what = what; nd_hint = hint; nd_line = line; nd_col = col } :: ctx.nds
  in
  let super = Ast_iterator.default_iterator in
  let rec expr this (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        let parts = Lint_rules.flatten txt in
        record_ref parts loc;
        (match nondet_source parts with Some nd -> record_nd nd loc | None -> ());
        super.expr this e
    | Pexp_setfield (_, { txt; _ }, _) ->
        let field = match last1 (Lint_rules.flatten txt) with Some f -> f | None -> "?" in
        record_mut (Printf.sprintf "mutable-field store (.%s <-)" field) e.pexp_loc;
        super.expr this e
    | Pexp_apply (({ pexp_desc = Pexp_ident { txt; _ }; _ } as callee), args) ->
        let parts = Lint_rules.flatten txt in
        (match mutation_callee parts with
        | Some what -> record_mut what e.pexp_loc
        | None -> ());
        (* Visit the callee normally, then the arguments under whichever
           context the callee imposes on them. *)
        expr this callee;
        let local_lock_aware =
          match parts with [ v ] -> Hashtbl.mem ctx.lock_aware v | _ -> false
        in
        let guards_args = is_guard_callee parts || local_lock_aware in
        let spawns_args = is_spawn_callee parts in
        let saved_guard = ctx.guarded and saved_task = ctx.in_task in
        if guards_args then ctx.guarded <- true;
        if spawns_args then ctx.in_task <- true;
        List.iter (fun (_, a) -> expr this a) args;
        ctx.guarded <- saved_guard;
        ctx.in_task <- saved_task
    | _ -> super.expr this e
  in
  let it = { super with expr } in
  List.iter
    (fun (si : Parsetree.structure_item) ->
      match si.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              let name = pat_name vb.pvb_pat in
              let line, col = loc_pos vb.pvb_loc in
              match (name, classify_cell vb.pvb_expr) with
              | Some n, Some (ctor, kind) when not (is_function vb.pvb_expr) ->
                  cells := { c_name = n; c_line = line; c_col = col; c_ctor = ctor; c_kind = kind } :: !cells
              | _ ->
                  let fn_name = Option.value name ~default:"" in
                  ctx.cur <- fn_name;
                  ctx.refs <- [];
                  ctx.muts <- [];
                  ctx.nds <- [];
                  ctx.guarded <- false;
                  ctx.in_task <- false;
                  it.expr it (fun_body vb.pvb_expr);
                  funs :=
                    {
                      fn_name;
                      fn_line = line;
                      fn_lock_aware =
                        (match name with Some n -> Hashtbl.mem ctx.lock_aware n | None -> false);
                      fn_refs = List.rev ctx.refs;
                      fn_mutations = List.rev ctx.muts;
                      fn_nondet = List.rev ctx.nds;
                    }
                    :: !funs)
            bindings
      | _ -> ())
    structure;
  (* Merge the module-initialisation fragments into one "" pseudo-function
     so propagation sees a single init entry per module. *)
  let named, init = List.partition (fun f -> f.fn_name <> "") (List.rev !funs) in
  let init_merged =
    match init with
    | [] -> []
    | first :: _ ->
        [
          {
            fn_name = "";
            fn_line = first.fn_line;
            fn_lock_aware = false;
            fn_refs = List.concat_map (fun f -> f.fn_refs) init;
            fn_mutations = List.concat_map (fun f -> f.fn_mutations) init;
            fn_nondet = List.concat_map (fun f -> f.fn_nondet) init;
          };
        ]
  in
  {
    sm_path = path;
    sm_module = module_name_of path;
    sm_cells = List.rev !cells;
    sm_funs = named @ init_merged;
    sm_concurrent = ctx.concurrent;
    sm_submits = ctx.submits;
  }
