(** Pass 2 of the cross-module analysis: reachability over the call
    graph assembled from {!Summary.t} values.

    Emits R7 (unguarded toplevel mutable state reachable from a
    domain-submitted task, plus unguarded mutations inside modules that
    hand-roll synchronization) and R8 (nondeterminism sources reachable
    from artifact-, trace-, or consensus-producing code).  Findings are
    deduplicated and sorted with {!Lint_types.compare_finding}; inline
    suppression is applied by the caller, which owns the source text. *)

val analyze : Summary.t list -> Lint_types.finding list
