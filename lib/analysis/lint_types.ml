type rule = R1 | R2 | R3 | R4 | R5 | R6 | Parse_error

type severity = Error | Warning

type finding = {
  rule : rule;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
  suppressed : bool;
}

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | Parse_error -> "parse"

let rule_of_id = function
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | "parse" -> Some Parse_error
  | _ -> None

let severity_id = function Error -> "error" | Warning -> "warning"

let make ?(severity = Error) ~rule ~file ~line ~col message =
  { rule; severity; file; line; col; message; suppressed = false }

let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (rule_id a.rule) (rule_id b.rule)

let to_human f =
  Printf.sprintf "%s:%d:%d: [%s/%s] %s" f.file f.line f.col (rule_id f.rule)
    (severity_id f.severity) f.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json findings =
  let one f =
    Printf.sprintf
      "{\"rule\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
      (rule_id f.rule) (severity_id f.severity) (json_escape f.file) f.line f.col
      (json_escape f.message)
  in
  "[" ^ String.concat "," (List.map one findings) ^ "]"
