type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | Parse_error

type severity = Error | Warning

type finding = {
  rule : rule;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
  suppressed : bool;
}

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | Parse_error -> "parse"

let rule_of_id = function
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | "R7" -> Some R7
  | "R8" -> Some R8
  | "parse" -> Some Parse_error
  | _ -> None

let severity_id = function Error -> "error" | Warning -> "warning"

let make ?(severity = Error) ~rule ~file ~line ~col message =
  { rule; severity; file; line; col; message; suppressed = false }

let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (rule_id a.rule) (rule_id b.rule)

let to_human f =
  Printf.sprintf "%s:%d:%d: [%s/%s] %s" f.file f.line f.col (rule_id f.rule)
    (severity_id f.severity) f.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json findings =
  let one f =
    Printf.sprintf
      "{\"rule\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
      (rule_id f.rule) (severity_id f.severity) (json_escape f.file) f.line f.col
      (json_escape f.message)
  in
  "[" ^ String.concat "," (List.map one findings) ^ "]"

let rule_description = function
  | R1 -> "Determinism: no wall-clock, self-seeded randomness, or hash-order iteration"
  | R2 -> "Comparison safety: no polymorphic compare in message/state paths"
  | R3 -> "Exception hygiene: no failwith/invalid_arg/assert-false in library code"
  | R4 -> "Interface coverage: every lib module has an .mli with no unused exports"
  | R5 -> "Quorum hygiene: quorum and committee sizes come from Config"
  | R6 -> "Console hygiene: no direct console printing in library code"
  | R7 -> "Domain safety: no unguarded shared mutable state reachable from domain tasks"
  | R8 -> "Nondeterminism sources: no ambient entropy reaching traces or consensus state"
  | Parse_error -> "File failed to parse"

let all_rules = [ R1; R2; R3; R4; R5; R6; R7; R8; Parse_error ]

let to_sarif findings =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",";
  Buffer.add_string buf "\"runs\":[{\"tool\":{\"driver\":{\"name\":\"ahl_lint\",\"rules\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"}}" (rule_id r)
           (json_escape (rule_description r))))
    all_rules;
  Buffer.add_string buf "]}},\"results\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      (* SARIF regions are 1-based; whole-file findings carry line 0 here. *)
      let line = max 1 f.line and col = max 1 f.col in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"ruleId\":\"%s\",\"level\":\"%s\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
           (rule_id f.rule) (severity_id f.severity) (json_escape f.message) (json_escape f.file)
           line col))
    findings;
  Buffer.add_string buf "]}]}";
  Buffer.contents buf
