(** ahl_lint driver: project scanning, inline suppression, baseline.

    The scan parses every [.ml]/[.mli] under the given roots with
    [compiler-libs], runs the R1–R3 AST checks per file, the R4
    interface-coverage checks across the whole module graph, and the
    two-pass cross-module R7/R8 analysis ({!Summary} + {!Propagate}).
    A finding is silenced either by an inline comment containing
    ["ahl_lint: allow <rule>"] on (or directly above) the flagged line, or
    by an entry in the checked-in baseline file — except R1/R2/R6/R7,
    which can only be fixed or inline-annotated. *)

val parse_impl : logical:string -> string -> (Parsetree.structure, Lint_types.finding) result
(** Parse implementation source as [compiler-libs] would; the error case
    is a ready-made [Parse_error] finding.  Exposed so summary-pass unit
    tests can feed {!Summary.of_structure} directly. *)

val check_file : ?logical_path:string -> string -> Lint_types.finding list
(** Lint one implementation file (R1–R3 + inline suppression marking).
    [logical_path] overrides the path used for rule scoping, so fixture
    files can be linted as if they lived under [lib/]. *)

val scan :
  ?base:string -> roots:string list -> excludes:string list -> unit -> Lint_types.finding list
(** Scan whole directory trees.  Findings whose inline-allow comment fired
    are returned with [suppressed = true]; callers filter.  [excludes] are
    substrings of paths to skip.  [base] is stripped from the front of each
    path before rule scoping (fixture trees pass the prefix that makes their
    files look like ["lib/..."]). *)

type baseline

val load_baseline : string -> (baseline, string) result
(** Parse a baseline file ("<rule> <path> <count>" lines, '#' comments).
    A missing file is an empty baseline. *)

val apply_baseline : baseline:baseline -> Lint_types.finding list -> Lint_types.finding list
(** Drop finding groups whose (rule, path) count stays within the recorded
    allowance; any growth reports the whole group.  R1/R2/R6/R7 baseline
    entries are returned as rejection findings. *)

val write_baseline :
  path:string -> Lint_types.finding list -> (int * Lint_types.finding list, string) result
(** Write a fresh baseline covering the given findings; returns the number
    of entries written and the findings that may never be baselined
    (R1/R2/R6/R7), which the caller must surface. *)
