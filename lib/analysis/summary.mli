(** Pass 1 of the cross-module analysis behind rules R7 and R8.

    One summary per implementation file, extracted purely syntactically:
    toplevel mutable cells (raw [ref]/[Hashtbl]/[Buffer]/... versus
    internally synchronized [Atomic]/[Mutex]/[Memo]/[Pool]/[Hub]), and
    per-toplevel-binding reference/mutation/nondeterminism records, each
    annotated with the lexical context the propagation pass needs: was the
    site under a [Mutex.protect]-style guard, was it inside a closure
    handed to [Pool.submit]/[Pool.map]/[Domain.spawn].  {!Propagate}
    turns a set of summaries into R7/R8 findings. *)

type cell_kind =
  | Raw  (** shared-mutable with no internal synchronization *)
  | Sync  (** internally synchronized; safe to share across domains *)

type cell = {
  c_name : string;
  c_line : int;
  c_col : int;
  c_ctor : string;  (** allocating head, e.g. ["ref"], ["Hashtbl.create"] *)
  c_kind : cell_kind;
}

type reference = {
  r_path : string list;  (** identifier path as written, e.g. [["Gstate"; "bump"]] *)
  r_line : int;
  r_col : int;
  r_guarded : bool;  (** lexically inside a lock-holding wrapper's argument *)
  r_in_task : bool;  (** lexically inside a domain-submitted closure *)
}

type mutation = { mut_what : string; mut_line : int; mut_col : int; mut_guarded : bool }

type nondet = { nd_what : string; nd_hint : string; nd_line : int; nd_col : int }

type func = {
  fn_name : string;  (** [""] groups module-initialisation code *)
  fn_line : int;
  fn_lock_aware : bool;  (** body mentions [Mutex.lock]/[Mutex.protect] *)
  fn_refs : reference list;
  fn_mutations : mutation list;
  fn_nondet : nondet list;
}

type t = {
  sm_path : string;
  sm_module : string;
  sm_cells : cell list;
  sm_funs : func list;
  sm_concurrent : bool;  (** references [Mutex]/[Condition]/[Domain] *)
  sm_submits : bool;  (** contains a [Pool.submit]/[Pool.map]/[Domain.spawn] call *)
}

val of_structure : path:string -> Parsetree.structure -> t
(** Summarize one parsed implementation.  [path] is the logical path used
    for scoping and recorded in findings that point into this file. *)

val last2 : string list -> (string * string) option
(** Last two components of an identifier path, i.e. the (module, value)
    pair {!Propagate} resolves cross-module references with. *)
