(* Pass 2 of the cross-module analysis: stitch per-module summaries into a
   call graph and emit the two reachability rules.

   R7 (domain-safety) — an unguarded access to toplevel raw mutable state
   that is reachable from a domain-submitted task is a static race:
   - task roots are the closures lexically handed to
     Pool.submit/Pool.map/Domain.spawn, plus (coarsely) every toplevel
     binding of a module that submits tasks, since submitted thunks are
     usually built in the same module and flow through lists the
     syntactic pass cannot follow;
   - guard tracking is path-sensitive at function granularity: an access
     reached only through Mutex.protect (or a local lock-holding wrapper)
     is not reported, and neither is an access whose enclosing function
     takes a lock itself;
   - additionally, inside modules that hand-roll synchronization (they
     reference Mutex/Condition/Domain), every syntactic mutation outside
     a lock-aware context is reported — such modules claim domain-safety,
     so an unguarded store needs a lock or an explicit annotation.

   R8 (nondeterminism sources) — a call to worker-identity / GC /
   ambient-Random / polymorphic-hash primitives is reported when the
   enclosing function is reachable from state-and-artifact-producing code
   (consensus, ledger, shard, obs, core, the executables, or any module's
   initialisation), i.e. when its value can plausibly flow into traces,
   metrics, artifacts, or consensus state.

   Soundness caveats are documented in DESIGN.md §14: the pass is
   flow-insensitive, resolves calls by module-name suffix (over-
   approximate on name collisions), cannot follow closures through data
   structures beyond the coarse same-module root rule, and treats any
   lexical Mutex use in a function as guarding the whole body. *)

open Lint_types

(* ------------------------------------------------------------------ *)
(* Indexing                                                            *)
(* ------------------------------------------------------------------ *)

type graph = {
  summaries : Summary.t array;
  by_module : (string, int list) Hashtbl.t;  (* module name -> summary indices *)
  funcs : (int * string, Summary.func) Hashtbl.t;  (* (summary idx, fn name) -> fn *)
}

let build summaries =
  let summaries = Array.of_list summaries in
  let by_module = Hashtbl.create 64 in
  let funcs = Hashtbl.create 256 in
  Array.iteri
    (fun i (s : Summary.t) ->
      let prev = Option.value (Hashtbl.find_opt by_module s.sm_module) ~default:[] in
      Hashtbl.replace by_module s.sm_module (i :: prev);
      List.iter (fun (f : Summary.func) -> Hashtbl.replace funcs (i, f.fn_name) f) s.sm_funs)
    summaries;
  { summaries; by_module; funcs }

let modules_named g name = Option.value (Hashtbl.find_opt g.by_module name) ~default:[]

(* Resolve a reference path to candidate (summary index, function) pairs:
   a bare [f] is a same-module binding; a qualified [...M.f] matches every
   scanned module named [M] (over-approximate on collisions). *)
let resolve_funcs g ~from_idx parts =
  match parts with
  | [ f ] -> (
      match Hashtbl.find_opt g.funcs (from_idx, f) with
      | Some fn -> [ (from_idx, fn) ]
      | None -> [])
  | _ -> (
      match Summary.last2 parts with
      | None -> []
      | Some (m, f) ->
          List.filter_map
            (fun i ->
              match Hashtbl.find_opt g.funcs (i, f) with
              | Some fn -> Some (i, fn)
              | None -> None)
            (modules_named g m))

let resolve_cells g ~from_idx parts =
  let cell_in i name =
    List.filter_map
      (fun (c : Summary.cell) -> if String.equal c.c_name name then Some (i, c) else None)
      g.summaries.(i).Summary.sm_cells
  in
  match parts with
  | [ x ] -> cell_in from_idx x
  | _ -> (
      match Summary.last2 parts with
      | None -> []
      | Some (m, x) -> List.concat_map (fun i -> cell_in i x) (modules_named g m))

let in_finding_scope path =
  Lint_rules.starts_with ~prefix:"lib/" path || Lint_rules.starts_with ~prefix:"bin/" path

(* ------------------------------------------------------------------ *)
(* R7: domain-safety                                                   *)
(* ------------------------------------------------------------------ *)

let r7_cell_message (owner : Summary.t) (cell : Summary.cell) =
  Printf.sprintf
    "%s.%s is toplevel mutable state (%s at %s:%d) accessed without a guard from code reachable \
     from a domain-submitted task; use Mutex.protect/Atomic, or make the state task-private"
    owner.Summary.sm_module cell.Summary.c_name cell.Summary.c_ctor owner.Summary.sm_path
    cell.Summary.c_line

let r7_mutation_message (s : Summary.t) (m : Summary.mutation) =
  Printf.sprintf
    "unguarded %s in %s, which hand-rolls synchronization (references Mutex/Condition/Domain); \
     perform the mutation while holding the lock, or annotate why it is domain-safe"
    m.Summary.mut_what s.Summary.sm_module

let r7 g =
  let findings = Hashtbl.create 32 in
  let add ~file ~line ~col msg =
    let key = (file, line, col, msg) in
    if not (Hashtbl.mem findings key) then
      Hashtbl.replace findings key (make ~rule:R7 ~file ~line ~col msg)
  in
  (* Flag unguarded Raw-cell references made by [fn] of summary [i] when
     the effective guard state is [guarded = false]. *)
  let flag_accesses i (fn : Summary.func) ~guarded =
    let s = g.summaries.(i) in
    if in_finding_scope s.Summary.sm_path then
      List.iter
        (fun (r : Summary.reference) ->
          if not (guarded || r.Summary.r_guarded || fn.Summary.fn_lock_aware) then
            List.iter
              (fun (owner_idx, (cell : Summary.cell)) ->
                if cell.Summary.c_kind = Summary.Raw then
                  add ~file:s.Summary.sm_path ~line:r.Summary.r_line ~col:r.Summary.r_col
                    (r7_cell_message g.summaries.(owner_idx) cell))
              (resolve_cells g ~from_idx:i r.Summary.r_path))
        fn.Summary.fn_refs
  in
  (* Reachability from task roots, tracking the guard state per path. *)
  let visited = Hashtbl.create 256 in
  (* (idx, fn, guarded) *)
  let queue = Queue.create () in
  let push i fn_name ~guarded =
    match Hashtbl.find_opt g.funcs (i, fn_name) with
    | None -> ()
    | Some _ ->
        if not (Hashtbl.mem visited (i, fn_name, guarded)) then begin
          Hashtbl.replace visited (i, fn_name, guarded) ();
          Queue.add (i, fn_name, guarded) queue
        end
  in
  Array.iteri
    (fun i (s : Summary.t) ->
      List.iter
        (fun (fn : Summary.func) ->
          (* Accesses lexically inside a submitted closure are task context
             on their own, whatever the enclosing binding is. *)
          List.iter
            (fun (r : Summary.reference) ->
              if r.Summary.r_in_task then begin
                (if in_finding_scope s.Summary.sm_path
                    && not (r.Summary.r_guarded || fn.Summary.fn_lock_aware) then
                   List.iter
                     (fun (owner_idx, (cell : Summary.cell)) ->
                       if cell.Summary.c_kind = Summary.Raw then
                         add ~file:s.Summary.sm_path ~line:r.Summary.r_line ~col:r.Summary.r_col
                           (r7_cell_message g.summaries.(owner_idx) cell))
                     (resolve_cells g ~from_idx:i r.Summary.r_path));
                List.iter
                  (fun (j, (callee : Summary.func)) ->
                    push j callee.Summary.fn_name ~guarded:r.Summary.r_guarded)
                  (resolve_funcs g ~from_idx:i r.Summary.r_path)
              end)
            fn.Summary.fn_refs;
          (* Coarse rule: every toplevel binding of a submitting module is a
             potential task body (thunks flow through data structures the
             syntactic pass cannot follow). *)
          if s.Summary.sm_submits then push i fn.Summary.fn_name ~guarded:false)
        s.Summary.sm_funs)
    g.summaries;
  while not (Queue.is_empty queue) do
    let i, fn_name, guarded = Queue.take queue in
    match Hashtbl.find_opt g.funcs (i, fn_name) with
    | None -> ()
    | Some fn ->
        flag_accesses i fn ~guarded;
        List.iter
          (fun (r : Summary.reference) ->
            let g' = guarded || r.Summary.r_guarded || fn.Summary.fn_lock_aware in
            List.iter
              (fun (j, (callee : Summary.func)) -> push j callee.Summary.fn_name ~guarded:g')
              (resolve_funcs g ~from_idx:i r.Summary.r_path))
          fn.Summary.fn_refs
  done;
  (* Concurrency-claiming modules: unguarded syntactic mutations. *)
  Array.iter
    (fun (s : Summary.t) ->
      if s.Summary.sm_concurrent && Lint_rules.starts_with ~prefix:"lib/" s.Summary.sm_path then
        List.iter
          (fun (fn : Summary.func) ->
            List.iter
              (fun (m : Summary.mutation) ->
                if not (m.Summary.mut_guarded || fn.Summary.fn_lock_aware) then
                  add ~file:s.Summary.sm_path ~line:m.Summary.mut_line ~col:m.Summary.mut_col
                    (r7_mutation_message s m))
              fn.Summary.fn_mutations)
          s.Summary.sm_funs)
    g.summaries;
  (* ahl_lint: allow R1 — the sort below erases the fold's bucket order. *)
  Hashtbl.fold (fun _ f acc -> f :: acc) findings []
  |> List.sort compare_finding

(* ------------------------------------------------------------------ *)
(* R8: nondeterminism sources                                          *)
(* ------------------------------------------------------------------ *)

(* Code whose outputs are traces, metrics, artifacts, or consensus state:
   nondeterminism reachable from here can corrupt the byte-identity bar. *)
let sink_scope path =
  Lint_rules.starts_with ~prefix:"lib/consensus/" path
  || Lint_rules.starts_with ~prefix:"lib/ledger/" path
  || Lint_rules.starts_with ~prefix:"lib/shard/" path
  || Lint_rules.starts_with ~prefix:"lib/obs/" path
  || Lint_rules.starts_with ~prefix:"lib/core/" path
  || Lint_rules.starts_with ~prefix:"bin/" path

let r8 g =
  let visited = Hashtbl.create 256 in
  let queue = Queue.create () in
  let push i fn_name =
    if Hashtbl.mem g.funcs (i, fn_name) && not (Hashtbl.mem visited (i, fn_name)) then begin
      Hashtbl.replace visited (i, fn_name) ();
      Queue.add (i, fn_name) queue
    end
  in
  Array.iteri
    (fun i (s : Summary.t) ->
      List.iter
        (fun (fn : Summary.func) ->
          (* Module initialisation runs in every program that links the
             module, artifact producers included. *)
          if sink_scope s.Summary.sm_path || String.equal fn.Summary.fn_name "" then
            push i fn.Summary.fn_name)
        s.Summary.sm_funs)
    g.summaries;
  while not (Queue.is_empty queue) do
    let i, fn_name = Queue.take queue in
    match Hashtbl.find_opt g.funcs (i, fn_name) with
    | None -> ()
    | Some fn ->
        List.iter
          (fun (r : Summary.reference) ->
            List.iter
              (fun (j, (callee : Summary.func)) -> push j callee.Summary.fn_name)
              (resolve_funcs g ~from_idx:i r.Summary.r_path))
          fn.Summary.fn_refs
  done;
  let findings = ref [] in
  Array.iteri
    (fun i (s : Summary.t) ->
      if in_finding_scope s.Summary.sm_path then
        List.iter
          (fun (fn : Summary.func) ->
            if Hashtbl.mem visited (i, fn.Summary.fn_name) then
              List.iter
                (fun (nd : Summary.nondet) ->
                  findings :=
                    make ~rule:R8 ~file:s.Summary.sm_path ~line:nd.Summary.nd_line
                      ~col:nd.Summary.nd_col
                      (Printf.sprintf
                         "%s, and the value can reach traces, metrics, artifacts, or consensus \
                          state; %s"
                         nd.Summary.nd_what nd.Summary.nd_hint)
                    :: !findings)
                fn.Summary.fn_nondet)
          s.Summary.sm_funs)
    g.summaries;
  List.sort compare_finding !findings

let analyze summaries =
  let g = build summaries in
  List.sort compare_finding (r7 g @ r8 g)
