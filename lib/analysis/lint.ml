open Lint_types

(* ------------------------------------------------------------------ *)
(* Small string/path helpers                                           *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1)) in
  nn = 0 || go 0

let strip_prefix ~prefix s =
  let np = String.length prefix in
  if np > 0 && String.length s >= np && String.equal (String.sub s 0 np) prefix then
    String.sub s np (String.length s - np)
  else s

let normalize path = strip_prefix ~prefix:"./" path

let has_suffix ~suffix s =
  let ns = String.length suffix and n = String.length s in
  n >= ns && String.equal (String.sub s (n - ns) ns) suffix

(* ------------------------------------------------------------------ *)
(* File IO and parsing                                                 *)
(* ------------------------------------------------------------------ *)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | src -> Ok src
  | exception Sys_error msg -> Error msg

let parse_error_finding ~logical exn =
  let line, col, msg =
    match exn with
    | Syntaxerr.Error err ->
        let loc = Syntaxerr.location_of_error err in
        (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol + 1, "syntax error")
    | exn -> (1, 1, Printexc.to_string exn)
  in
  make ~rule:Parse_error ~file:logical ~line ~col (Printf.sprintf "cannot parse: %s" msg)

let parse_impl ~logical src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf logical;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception exn -> Error (parse_error_finding ~logical exn)

let parse_intf ~logical src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf logical;
  match Parse.interface lexbuf with
  | signature -> Ok signature
  | exception exn -> Error (parse_error_finding ~logical exn)

(* ------------------------------------------------------------------ *)
(* Inline suppression: a comment containing "ahl_lint: allow <rule>"   *)
(* on the flagged line or the line directly above it                   *)
(* ------------------------------------------------------------------ *)

let mark_suppressed ~src findings =
  let lines = Array.of_list (String.split_on_char '\n' src) in
  let marker_on l rule =
    l >= 1 && l <= Array.length lines && contains lines.(l - 1) ("ahl_lint: allow " ^ rule_id rule)
  in
  List.map
    (fun f ->
      if marker_on f.line f.rule || marker_on (f.line - 1) f.rule then { f with suppressed = true }
      else f)
    findings

(* ------------------------------------------------------------------ *)
(* Per-file entry point (R1–R3)                                        *)
(* ------------------------------------------------------------------ *)

let check_source ~logical src =
  match parse_impl ~logical src with
  | Error f -> [ f ]
  | Ok structure -> mark_suppressed ~src (Lint_rules.of_structure ~path:logical structure)

let check_file ?logical_path file =
  let logical = match logical_path with Some p -> p | None -> normalize file in
  match read_file file with
  | Error msg -> [ make ~rule:Parse_error ~file:logical ~line:1 ~col:1 msg ]
  | Ok src -> check_source ~logical src

(* ------------------------------------------------------------------ *)
(* R4: interface coverage and unused exports                           *)
(* ------------------------------------------------------------------ *)

type file_usage = {
  u_path : string;
  u_opens : (string, unit) Hashtbl.t;
  u_bare : (string, unit) Hashtbl.t;
  u_qualified : (string * string, unit) Hashtbl.t;
}

let usage_of_structure ~path structure =
  let u =
    {
      u_path = path;
      u_opens = Hashtbl.create 8;
      u_bare = Hashtbl.create 64;
      u_qualified = Hashtbl.create 64;
    }
  in
  let aliases = Hashtbl.create 4 in
  let resolve m = Option.value (Hashtbl.find_opt aliases m) ~default:m in
  let record_module_expr (me : Parsetree.module_expr) =
    match me.pmod_desc with
    | Pmod_ident { txt; _ } -> (
        match List.rev (Lint_rules.flatten txt) with
        | last :: _ -> Hashtbl.replace u.u_opens (resolve last) ()
        | [] -> ())
    | _ -> ()
  in
  let super = Ast_iterator.default_iterator in
  let expr this (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match Lint_rules.flatten txt with
        | [ v ] -> Hashtbl.replace u.u_bare v ()
        | parts -> (
            match List.rev parts with
            | v :: m :: _ -> Hashtbl.replace u.u_qualified (resolve m, v) ()
            | _ -> ()))
    | Pexp_open (od, _) -> record_module_expr od.popen_expr
    | _ -> ());
    super.expr this e
  in
  let structure_item this (si : Parsetree.structure_item) =
    (match si.pstr_desc with
    | Pstr_open od -> record_module_expr od.popen_expr
    | Pstr_include inc -> record_module_expr inc.pincl_mod
    | Pstr_module
        {
          pmb_name = { txt = Some name; _ };
          pmb_expr = { pmod_desc = Pmod_ident { txt; _ }; _ };
          _;
        } -> (
        match List.rev (Lint_rules.flatten txt) with
        | last :: _ -> Hashtbl.replace aliases name last
        | [] -> ())
    | _ -> ());
    super.structure_item this si
  in
  let it = { super with expr; structure_item } in
  it.structure it structure;
  u

let exports_of_signature (sg : Parsetree.signature) =
  List.filter_map
    (fun (item : Parsetree.signature_item) ->
      match item.psig_desc with
      | Psig_value vd -> Some (vd.pval_name.txt, vd.pval_loc.loc_start.pos_lnum)
      | _ -> None)
    sg

let module_name_of path = String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let value_used ~usages ~def_ml ~modname ~name =
  List.exists
    (fun u ->
      (not (String.equal u.u_path def_ml))
      && (Hashtbl.mem u.u_qualified (modname, name)
         || (Hashtbl.mem u.u_opens modname && Hashtbl.mem u.u_bare name)))
    usages

(* ------------------------------------------------------------------ *)
(* Directory walking                                                   *)
(* ------------------------------------------------------------------ *)

let walk ~excludes roots =
  let excluded path = List.exists (fun e -> contains path e) excludes in
  let seen = Hashtbl.create 256 in
  let acc = ref [] in
  let rec go path =
    let path = normalize path in
    if excluded path || Hashtbl.mem seen path then ()
    else begin
      Hashtbl.replace seen path ();
      if Sys.file_exists path then
        if Sys.is_directory path then begin
          let entries = Sys.readdir path in
          Array.sort String.compare entries;
          Array.iter (fun entry -> go (Filename.concat path entry)) entries
        end
        else if has_suffix ~suffix:".ml" path || has_suffix ~suffix:".mli" path then
          acc := path :: !acc
    end
  in
  List.iter go roots;
  List.sort String.compare !acc

(* ------------------------------------------------------------------ *)
(* Whole-project scan                                                  *)
(* ------------------------------------------------------------------ *)

let scan ?(base = "") ~roots ~excludes () =
  let files = walk ~excludes roots in
  let logical p = strip_prefix ~prefix:base p in
  let logical_set = Hashtbl.create 256 in
  List.iter (fun p -> Hashtbl.replace logical_set (logical p) ()) files;
  let ml_files = List.filter (has_suffix ~suffix:".ml") files in
  let mli_files = List.filter (has_suffix ~suffix:".mli") files in
  let findings = ref [] in
  let usages = ref [] in
  let summaries = ref [] in
  let sources = Hashtbl.create 256 in
  (* R1–R3 plus usage and summary collection, one parse per implementation. *)
  List.iter
    (fun file ->
      let lg = logical file in
      match read_file file with
      | Error msg -> findings := make ~rule:Parse_error ~file:lg ~line:1 ~col:1 msg :: !findings
      | Ok src -> (
          match parse_impl ~logical:lg src with
          | Error f -> findings := f :: !findings
          | Ok structure ->
              Hashtbl.replace sources lg src;
              usages := usage_of_structure ~path:lg structure :: !usages;
              summaries := Summary.of_structure ~path:lg structure :: !summaries;
              findings :=
                mark_suppressed ~src (Lint_rules.of_structure ~path:lg structure) @ !findings))
    ml_files;
  (* R7/R8: cross-module propagation over the collected summaries.  The
     inline-allow marking needs each finding's own file's source text. *)
  List.iter
    (fun f ->
      let marked =
        match Hashtbl.find_opt sources f.file with
        | Some src -> List.hd (mark_suppressed ~src [ f ])
        | None -> f
      in
      findings := marked :: !findings)
    (Propagate.analyze (List.rev !summaries));
  (* R4a: every lib implementation carries an interface. *)
  List.iter
    (fun file ->
      let lg = logical file in
      if Lint_rules.starts_with ~prefix:"lib/" lg && not (Hashtbl.mem logical_set (lg ^ "i"))
      then
        findings :=
          make ~rule:R4 ~file:lg ~line:1 ~col:1
            (Printf.sprintf "lib module %s has no interface (.mli)" (module_name_of lg))
          :: !findings)
    ml_files;
  (* R4b: no exported value of a lib interface is unused elsewhere. *)
  let usages = !usages in
  List.iter
    (fun file ->
      let lg = logical file in
      if Lint_rules.starts_with ~prefix:"lib/" lg then
        match read_file file with
        | Error msg -> findings := make ~rule:Parse_error ~file:lg ~line:1 ~col:1 msg :: !findings
        | Ok src -> (
            match parse_intf ~logical:lg src with
            | Error f -> findings := f :: !findings
            | Ok signature ->
                let modname = module_name_of lg in
                let def_ml = Filename.remove_extension lg ^ ".ml" in
                let unused =
                  List.filter_map
                    (fun (name, line) ->
                      if value_used ~usages ~def_ml ~modname ~name then None
                      else
                        Some
                          (make ~severity:Warning ~rule:R4 ~file:lg ~line ~col:1
                             (Printf.sprintf
                                "%s.%s is exported but never used outside %s; drop it from the \
                                 .mli or use it"
                                modname name def_ml)))
                    (exports_of_signature signature)
                in
                findings := mark_suppressed ~src unused @ !findings))
    mli_files;
  List.sort compare_finding !findings

(* ------------------------------------------------------------------ *)
(* Baseline: a checked-in ratchet of tolerated violations              *)
(*                                                                     *)
(* Format: one entry per line, "<rule> <path> <count>"; '#' comments.  *)
(* A (rule, path) group passes while its violation count stays at or   *)
(* below the recorded allowance; any growth reports every finding in   *)
(* the group.  R1/R2/R6/R7 entries are rejected outright: determinism, *)
(* comparison-safety, console-hygiene, and domain-safety violations    *)
(* must be fixed, never baselined.                                     *)
(* ------------------------------------------------------------------ *)

type baseline_entry = { b_rule : string; b_path : string; b_count : int }

type baseline = baseline_entry list

let load_baseline path =
  if not (Sys.file_exists path) then Ok []
  else
    match read_file path with
    | Error msg -> Error msg
    | Ok src ->
        let parse_line ((lineno : int), (acc : (baseline_entry list, string) result)) line =
          let line = String.trim line in
          match acc with
          | Error _ -> (lineno + 1, acc)
          | Ok entries ->
              if String.equal line "" || String.length line > 0 && line.[0] = '#' then
                (lineno + 1, acc)
              else (
                match List.filter (fun s -> not (String.equal s "")) (String.split_on_char ' ' line) with
                | [ rule; bpath; count ] -> (
                    match (rule_of_id rule, int_of_string_opt count) with
                    | Some _, Some n when n > 0 ->
                        (lineno + 1, Ok ({ b_rule = rule; b_path = bpath; b_count = n } :: entries))
                    | _ ->
                        ( lineno + 1,
                          Error (Printf.sprintf "%s:%d: malformed baseline entry %S" path lineno line) ))
                | _ ->
                    ( lineno + 1,
                      Error
                        (Printf.sprintf
                           "%s:%d: malformed baseline line %S (want \"<rule> <path> <count>\")" path
                           lineno line) ))
        in
        let _, result =
          List.fold_left parse_line (1, Ok []) (String.split_on_char '\n' src)
        in
        Result.map List.rev result

let pair_compare (a1, b1) (a2, b2) =
  let c = String.compare a1 a2 in
  if c <> 0 then c else String.compare b1 b2

let group_counts findings =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let k = (rule_id f.rule, f.file) in
      Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0))
    findings;
  tbl

let never_baselined rule =
  String.equal rule "R1" || String.equal rule "R2" || String.equal rule "R6"
  || String.equal rule "R7"

let apply_baseline ~baseline findings =
  let counts = group_counts findings in
  let allowance (rule, bpath) =
    List.fold_left
      (fun acc e ->
        if String.equal e.b_rule rule && String.equal e.b_path bpath && not (never_baselined rule)
        then acc + e.b_count
        else acc)
      0 baseline
  in
  let kept =
    List.filter
      (fun f ->
        let k = (rule_id f.rule, f.file) in
        Option.value (Hashtbl.find_opt counts k) ~default:0 > allowance k)
      findings
  in
  let rejections =
    List.filter_map
      (fun e ->
        if never_baselined e.b_rule then
          Some
            (make ~rule:(Option.value (rule_of_id e.b_rule) ~default:Parse_error)
               ~file:e.b_path ~line:0 ~col:0
               (Printf.sprintf
                  "baseline entry \"%s %s %d\" rejected: %s violations must be fixed, not baselined"
                  e.b_rule e.b_path e.b_count e.b_rule))
        else None)
      baseline
  in
  List.sort compare_finding (kept @ rejections)

let write_baseline ~path findings =
  let baselinable f = not (never_baselined (rule_id f.rule)) in
  let good, bad = List.partition baselinable findings in
  let groups =
    Repro_util.Det.bindings ~compare:pair_compare (group_counts good)
  in
  let body =
    "# ahl_lint baseline: tolerated pre-existing violations, \"<rule> <path> <count>\".\n\
     # Shrink this file over time; never grow it.  R1/R2/R6/R7 entries are rejected.\n"
    ^ String.concat ""
        (List.map (fun ((rule, bpath), n) -> Printf.sprintf "%s %s %d\n" rule bpath n) groups)
  in
  match Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc body) with
  | () -> Ok (List.length groups, bad)
  | exception Sys_error msg -> Error msg
