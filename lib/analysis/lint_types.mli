(** Core vocabulary of ahl_lint: rules, severities, findings, rendering.

    The rule set mirrors the project invariants the AHL reproduction depends
    on (see DESIGN.md):
    - R1 determinism: no wall-clock / self-seeded randomness / hash-order
      iteration in library code.
    - R2 comparison safety: no polymorphic compare or structural [=] in the
      consensus, ledger, and shard message/state paths.
    - R3 exception hygiene: no [failwith]/[assert false]/[invalid_arg] in
      [lib/] outside the checked-in baseline.
    - R4 interface coverage: every [lib] module has an [.mli] exporting no
      unused public values.
    - R5 quorum hygiene: no bare [2*f+1] / [3*f+1] arithmetic in the
      consensus and shard paths; quorum and committee sizes must come from
      [Config.quorum_size] / [Config.n_for_f] (or the sizing allowlist).
    - R6 console hygiene: no direct console printing
      ([Printf.printf]/[eprintf], [print_string] and friends) in [lib/]
      outside the rendering allowlist ([Sink]/[Table]); library code
      reports through [Repro_obs] probes or returns strings. *)

type rule = R1 | R2 | R3 | R4 | R5 | R6 | Parse_error

type severity = Error | Warning

type finding = {
  rule : rule;
  severity : severity;
  file : string;  (** path as scanned, also used for rule scoping *)
  line : int;
  col : int;
  message : string;
  suppressed : bool;  (** an inline [ahl_lint: allow <rule>] comment covers it *)
}

val rule_id : rule -> string
(** "R1".."R6", or "parse" for unparseable files. *)

val rule_of_id : string -> rule option

val severity_id : severity -> string

val make :
  ?severity:severity -> rule:rule -> file:string -> line:int -> col:int -> string -> finding
(** Build an unsuppressed finding; severity defaults to [Error]. *)

val compare_finding : finding -> finding -> int
(** Order by file, line, column, then rule id. *)

val to_human : finding -> string
(** [file:line:col: [rule/severity] message] — click-through friendly. *)

val to_json : finding list -> string
(** Machine-readable JSON array of findings. *)
