(** Core vocabulary of ahl_lint: rules, severities, findings, rendering.

    The rule set mirrors the project invariants the AHL reproduction depends
    on (see DESIGN.md):
    - R1 determinism: no wall-clock / self-seeded randomness / hash-order
      iteration in library code.
    - R2 comparison safety: no polymorphic compare or structural [=] in the
      consensus, ledger, and shard message/state paths.
    - R3 exception hygiene: no [failwith]/[assert false]/[invalid_arg] in
      [lib/] outside the checked-in baseline.
    - R4 interface coverage: every [lib] module has an [.mli] exporting no
      unused public values.
    - R5 quorum hygiene: no bare [2*f+1] / [3*f+1] arithmetic in the
      consensus and shard paths; quorum and committee sizes must come from
      [Config.quorum_size] / [Config.n_for_f] (or the sizing allowlist).
    - R6 console hygiene: no direct console printing
      ([Printf.printf]/[eprintf], [print_string] and friends) in [lib/]
      outside the rendering allowlist ([Sink]/[Table]); library code
      reports through [Repro_obs] probes or returns strings.
    - R7 domain safety: no unguarded access to toplevel mutable state
      reachable from a [Pool.submit]/[Domain.spawn] task, and no unguarded
      mutation inside a module that hand-rolls synchronization
      (cross-module, via {!Summary} + {!Propagate}).
    - R8 nondeterminism sources: no ambient [Random] draws,
      [Domain.self], [Gc] statistics, or polymorphic [Hashtbl.hash]
      reachable from trace-, metric-, artifact-, or consensus-producing
      code (cross-module). *)

type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | Parse_error

type severity = Error | Warning

type finding = {
  rule : rule;
  severity : severity;
  file : string;  (** path as scanned, also used for rule scoping *)
  line : int;
  col : int;
  message : string;
  suppressed : bool;  (** an inline [ahl_lint: allow <rule>] comment covers it *)
}

val rule_id : rule -> string
(** "R1".."R8", or "parse" for unparseable files. *)

val rule_of_id : string -> rule option

val severity_id : severity -> string

val make :
  ?severity:severity -> rule:rule -> file:string -> line:int -> col:int -> string -> finding
(** Build an unsuppressed finding; severity defaults to [Error]. *)

val compare_finding : finding -> finding -> int
(** Order by file, line, column, then rule id. *)

val to_human : finding -> string
(** [file:line:col: [rule/severity] message] — click-through friendly. *)

val to_json : finding list -> string
(** Machine-readable JSON array of findings. *)

val rule_description : rule -> string
(** One-line rule summary, embedded in the SARIF tool metadata. *)

val to_sarif : finding list -> string
(** SARIF 2.1.0 log: one run, driver [ahl_lint] with static rule
    metadata, one result per finding.  Whole-file findings (line 0) are
    clamped to line 1 as SARIF regions are 1-based. *)
