open Lint_types

(* ------------------------------------------------------------------ *)
(* Rule scoping by path                                                *)
(* ------------------------------------------------------------------ *)

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.equal (String.sub s 0 (String.length prefix)) prefix

(* Wall-clock and ambient randomness: the whole deterministic core. *)
let in_r1_call_scope path = starts_with ~prefix:"lib/" path || starts_with ~prefix:"bin/" path

(* Hash-order iteration: library code only (bench/test may print freely). *)
let in_r1_table_scope path = starts_with ~prefix:"lib/" path

(* Polymorphic comparison: the consensus/ledger/shard message and state
   paths, where a structural compare on a float- or closure-carrying value
   is a latent crash or a silent ordering divergence. *)
let in_r2_scope path =
  starts_with ~prefix:"lib/consensus/" path
  || starts_with ~prefix:"lib/ledger/" path
  || starts_with ~prefix:"lib/shard/" path

(* Bare [compare] handed to a sort/dedup: the whole library tree.  A
   polymorphic comparator deep in a hot path is both a perf trap and a
   latent crash on float/closure-carrying elements, wherever it lives —
   the narrower [in_r2_scope] already flags the ident itself, so this
   broader rule only reports where that one stays quiet. *)
let in_r2_sort_scope path = starts_with ~prefix:"lib/" path

let in_r3_scope path = starts_with ~prefix:"lib/" path

(* Bare quorum arithmetic: consensus and shard paths, minus the three
   modules whose whole job is to compute those sizes. *)
let r5_allowlist =
  [ "lib/consensus/config.ml"; "lib/consensus/quorum.ml"; "lib/shard/sizing.ml" ]

let in_r5_scope path =
  (starts_with ~prefix:"lib/consensus/" path || starts_with ~prefix:"lib/shard/" path)
  && not (List.exists (String.equal path) r5_allowlist)

(* Direct console printing: the whole library tree, minus the two modules
   whose exported job is rendering to stdout.  Library code reports
   through Repro_obs probes or returns strings for bin/bench to print. *)
let r6_allowlist = [ "lib/obs/sink.ml"; "lib/util/table.ml" ]

let in_r6_scope path =
  starts_with ~prefix:"lib/" path && not (List.exists (String.equal path) r6_allowlist)

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                   *)
(* ------------------------------------------------------------------ *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> flatten p @ [ s ]
  | Longident.Lapply (p, _) -> flatten p

let last2 parts =
  match List.rev parts with b :: a :: _ -> Some (a, b) | _ -> None

(* ------------------------------------------------------------------ *)
(* Banned identifiers                                                  *)
(* ------------------------------------------------------------------ *)

let r1_banned_calls =
  [
    ("Random", "self_init", "seed all randomness from the engine seed (Repro_util.Rng)");
    ("Sys", "time", "use Engine.now for simulated time");
    ("Unix", "gettimeofday", "use Engine.now for simulated time");
    ("Unix", "time", "use Engine.now for simulated time");
    ("Unix", "gmtime", "wall-clock calendar time is nondeterministic across runs");
    ("Unix", "localtime", "wall-clock calendar time is nondeterministic across runs");
  ]

let r1_banned_tables =
  [
    ("Hashtbl", "iter", "iterates in hash-bucket order; use Repro_util.Det.iter ~compare");
    ("Hashtbl", "fold", "folds in hash-bucket order; use Repro_util.Det.fold ~compare");
  ]

let r2_banned_idents =
  [
    ("List", "mem", "uses polymorphic equality; use List.exists with an explicit equal");
    ("List", "assoc", "uses polymorphic equality; use List.find_map with an explicit equal");
    ("List", "assoc_opt", "uses polymorphic equality; use List.find_map with an explicit equal");
    ("List", "mem_assoc", "uses polymorphic equality; use List.exists with an explicit equal");
    ("List", "remove_assoc", "uses polymorphic equality; use List.filter with an explicit equal");
    ("Stdlib", "compare", "polymorphic compare; use the key type's compare (Int/String/Float/...)");
    ("Poly", "compare", "polymorphic compare; use the key type's compare (Int/String/Float/...)");
    ("Pervasives", "compare", "polymorphic compare; use the key type's compare");
    ("Stdlib", "min", "polymorphic min; use the operand type's min (Int.min/Float.min/...)");
    ("Stdlib", "max", "polymorphic max; use the operand type's max (Int.max/Float.max/...)");
    ("Pervasives", "min", "polymorphic min; use the operand type's min (Int.min/Float.min/...)");
    ("Pervasives", "max", "polymorphic max; use the operand type's max (Int.max/Float.max/...)");
  ]

(* ------------------------------------------------------------------ *)
(* Expression checks                                                   *)
(* ------------------------------------------------------------------ *)

let loc_pos (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol + 1)

(* Structural operand heuristic for R2: [=]/[<>] applied to a constructor,
   tuple, record, array, or polymorphic-variant expression is comparing a
   non-scalar shape.  [true]/[false] are exempt (scalar). *)
let is_structural (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident ("true" | "false"); _ }, None) -> false
  | Pexp_construct _ | Pexp_tuple _ | Pexp_record _ | Pexp_variant _ | Pexp_array _ -> true
  | _ -> false

(* R5 shape: [p + 1] or [1 + p] where [p] is a product with a literal 2
   or 3 factor — the textbook [2*f+1] / [3*f+1] quorum formulas. *)
let is_const_int n (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer (s, None)) -> (
      match int_of_string_opt s with Some v -> v = n | None -> false)
  | _ -> false

let is_quorum_product (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident "*"; _ }; _ }, [ (_, a); (_, b) ]) ->
      is_const_int 2 a || is_const_int 3 a || is_const_int 2 b || is_const_int 3 b
  | _ -> false

let check_ident ~path ~report lid loc =
  let parts = flatten lid in
  let pair = last2 parts in
  (if in_r1_call_scope path then
     List.iter
       (fun (m, v, hint) ->
         let matches =
           match pair with
           | Some (a, b) -> String.equal a m && String.equal b v
           | None -> false
         in
         if matches then
           report ~rule:R1 ~severity:Error loc (Printf.sprintf "%s.%s is nondeterministic: %s" m v hint))
       r1_banned_calls);
  (if in_r1_table_scope path then
     List.iter
       (fun (m, v, hint) ->
         let matches =
           match pair with
           | Some (a, b) -> String.equal a m && String.equal b v
           | None -> false
         in
         if matches then
           report ~rule:R1 ~severity:Error loc (Printf.sprintf "%s.%s %s" m v hint))
       r1_banned_tables);
  if in_r2_scope path then begin
    (match parts with
    | [ "compare" ] ->
        report ~rule:R2 ~severity:Error loc
          "bare polymorphic compare; use the key type's compare (Int/String/Float/...)"
    | [ (("min" | "max") as op) ] ->
        report ~rule:R2 ~severity:Error loc
          (Printf.sprintf
             "bare polymorphic %s; use the operand type's %s (Int.%s/Float.%s/...)" op op op op)
    | _ -> ());
    List.iter
      (fun (m, v, hint) ->
        let matches =
          match pair with
          | Some (a, b) -> String.equal a m && String.equal b v
          | None -> false
        in
        if matches then report ~rule:R2 ~severity:Error loc (Printf.sprintf "%s.%s %s" m v hint))
      r2_banned_idents
  end;
  (if in_r6_scope path then
     let flag what =
       report ~rule:R6 ~severity:Error loc
         (Printf.sprintf
            "%s prints to the console from library code; emit a Repro_obs probe event or return \
             the string"
            what)
     in
     match parts with
     | [ "Printf"; ("printf" | "eprintf") ] -> flag ("Printf." ^ List.nth parts 1)
     | [ ("print_string" | "print_endline" | "print_newline" | "prerr_string" | "prerr_endline")
       ]
     | [ "Stdlib";
         ("print_string" | "print_endline" | "print_newline" | "prerr_string" | "prerr_endline")
       ] ->
         flag (List.nth parts (List.length parts - 1))
     | _ -> ());
  if in_r3_scope path then begin
    match parts with
    | [ "failwith" ] | [ "Stdlib"; "failwith" ] ->
        report ~rule:R3 ~severity:Warning loc
          "failwith raises an untyped exception; return a typed result instead"
    | [ "invalid_arg" ] | [ "Stdlib"; "invalid_arg" ] ->
        report ~rule:R3 ~severity:Warning loc
          "invalid_arg raises an untyped exception; return a typed result instead"
    | _ -> ()
  end

(* Sort/dedup callees whose comparator argument R2 polices everywhere. *)
let is_sort_callee lid =
  match last2 (flatten lid) with
  | Some (("List" | "Array"), ("sort" | "sort_uniq" | "stable_sort" | "fast_sort")) -> true
  | Some ("Det", ("iter" | "fold" | "bindings")) -> true
  | _ -> false

let is_bare_compare (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match flatten txt with
      | [ "compare" ]
      | [ "Stdlib"; "compare" ]
      | [ "Poly"; "compare" ]
      | [ "Pervasives"; "compare" ] ->
          true
      | _ -> false)
  | _ -> false

let check_expr ~path ~report (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; loc } -> check_ident ~path ~report txt loc
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = callee; _ }; _ }, args)
    when in_r2_sort_scope path
         && not (in_r2_scope path)
         && is_sort_callee callee
         && List.exists (fun (_, a) -> is_bare_compare a) args ->
      report ~rule:R2 ~severity:Error e.pexp_loc
        "bare polymorphic compare passed to a sort/dedup; use the element type's compare \
         (Int/String/Float/...)"
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ }; _ },
        [ (_, a); (_, b) ] )
    when in_r2_scope path && (is_structural a || is_structural b) ->
      report ~rule:R2 ~severity:Error e.pexp_loc
        (Printf.sprintf
           "structural (%s) on a constructor/tuple/record operand; pattern-match or use \
            Option.is_none/is_some or an explicit equal"
           op)
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident (("==" | "!=") as op); _ }; _ }, _)
    when in_r2_scope path ->
      report ~rule:R2 ~severity:Error e.pexp_loc
        (Printf.sprintf "physical equality (%s) in a state path; use = on scalars or an explicit equal" op)
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident "+"; _ }; _ }, [ (_, a); (_, b) ])
    when in_r5_scope path
         && ((is_const_int 1 a && is_quorum_product b)
            || (is_const_int 1 b && is_quorum_product a)) ->
      report ~rule:R5 ~severity:Error e.pexp_loc
        "bare quorum arithmetic (2*f+1 / 3*f+1); use Config.quorum_size or Config.n_for_f"
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
    when in_r3_scope path ->
      report ~rule:R3 ~severity:Warning e.pexp_loc
        "assert false hides an impossible-case claim; make the state unrepresentable or return an error"
  | _ -> ()

let of_structure ~path (structure : Parsetree.structure) =
  let acc = ref [] in
  let report ~rule ~severity loc message =
    let line, col = loc_pos loc in
    acc := make ~severity ~rule ~file:path ~line ~col message :: !acc
  in
  let super = Ast_iterator.default_iterator in
  let expr this e =
    check_expr ~path ~report e;
    super.expr this e
  in
  let iterator = { super with expr } in
  iterator.structure iterator structure;
  List.sort compare_finding !acc
