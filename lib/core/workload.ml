open Repro_util
open Repro_ledger

type kind =
  | Kvstore of { updates_per_tx : int }
  | Smallbank
  | Hot_increments of { increment_fraction : float }

type t = {
  kind : kind;
  keyspace : int;
  zipf : Zipf.t;
  rng : Rng.t;
  mutable next_txid : int;
  mutable generated : int;
  mutable cross_shard : int;
}

let create kind ~keyspace ~theta ~rng =
  {
    kind;
    keyspace;
    zipf = Zipf.create ~n:keyspace ~theta;
    rng = Rng.split_named rng "workload";
    next_txid = 0;
    generated = 0;
    cross_shard = 0;
  }

let account i = "acc" ^ string_of_int i

let setup t system ~initial_balance =
  match t.kind with
  | Kvstore _ -> ()
  | Smallbank | Hot_increments _ ->
      let shards = System.shards system in
      for i = 0 to t.keyspace - 1 do
        let acc = account i in
        List.iter
          (fun key ->
            let shard = Tx.shard_of_key ~shards key in
            Executor.set_balance (System.shard_state system shard) key initial_balance)
          [ Smallbank_cc.checking_key acc; Smallbank_cc.savings_key acc ]
      done

let distinct_keys t count =
  let rec draw acc =
    if List.length acc >= count then acc
    else begin
      let k = Zipf.sample t.zipf t.rng in
      if List.mem k acc then
        (* Fall back to uniform so high skew cannot loop forever. *)
        let k' = Rng.int t.rng t.keyspace in
        draw (if List.mem k' acc then acc else k' :: acc)
      else draw (k :: acc)
    end
  in
  draw []

let next_tx t system ~client =
  let txid = t.next_txid in
  t.next_txid <- txid + 1;
  let ops =
    match t.kind with
    | Kvstore { updates_per_tx } ->
        let keys = distinct_keys t updates_per_tx in
        List.map (fun k -> Tx.Put { key = "key" ^ string_of_int k; value = "v" ^ string_of_int txid }) keys
    | Smallbank -> (
        match distinct_keys t 2 with
        | [ a; b ] ->
            let amount = 1 + Rng.int t.rng 10 in
            Smallbank_cc.send_payment_ops ~src:(account a) ~dst:(account b) ~amount
        | ks -> Repro_sim.Sim_error.invalid "Workload.next_tx: expected 2 keys, got %d" (List.length ks))
    | Hot_increments { increment_fraction } -> (
        (* The CRDV-style mix: with probability [increment_fraction] a
           credit-only increment of two hot counters — all-commutative, so
           the fast lane takes it when enabled; on the locked path it is an
           ordinary cross-shard 2PC transaction whose lock acquisitions
           collide on the Zipf head.  The rest are sendPayments, whose
           debits are conditional and always keep the locked path.  The
           counters are deliberately disjoint from the account keys: lane
           keys must never be written outside the fold, or the
           merge-convergence audit has nothing to certify. *)
        match distinct_keys t 2 with
        | [ a; b ] ->
            if Rng.float t.rng 1.0 < increment_fraction then
              let amount = 1 + Rng.int t.rng 5 in
              [
                Tx.Credit { account = Kvstore_cc.counter_key (account a); amount };
                Tx.Credit { account = Kvstore_cc.counter_key (account b); amount };
              ]
            else
              let amount = 1 + Rng.int t.rng 10 in
              Smallbank_cc.send_payment_ops ~src:(account a) ~dst:(account b) ~amount
        | ks -> Repro_sim.Sim_error.invalid "Workload.next_tx: expected 2 keys, got %d" (List.length ks))
  in
  let tx =
    Tx.make ~txid ~client ~submitted:(Repro_sim.Engine.now (System.engine system)) ops
  in
  t.generated <- t.generated + 1;
  if Tx.is_cross_shard ~shards:(System.shards system) tx then
    t.cross_shard <- t.cross_shard + 1;
  tx

let start_closed_loop t system ~clients ~outstanding =
  let engine = System.engine system in
  let rec submit_next client =
    let tx = next_tx t system ~client in
    System.submit system ~on_done:(fun _ -> submit_next client) tx
  in
  for client = 0 to clients - 1 do
    for _ = 1 to outstanding do
      Repro_sim.Engine.schedule engine ~delay:(Rng.float t.rng 1.0) (fun () -> submit_next client)
    done
  done

let cross_shard_fraction_seen t =
  if t.generated = 0 then 0.0 else float_of_int t.cross_shard /. float_of_int t.generated
