(** The operations that flow through committee consensus in the sharded
    blockchain, and the registry that maps a consensus request's [op_tag]
    to its operation.

    Single-shard transactions execute directly; a cross-shard transaction
    becomes a [Begin_tx] on the coordinating committee, one [Prepare_tx]
    per participant shard, [Vote]s back to the coordinator, and finally
    [Commit_tx] / [Abort_tx] on the participants (Figure 5).  Under the
    batched commit path many coordinator-bound steps ride one [Batch]
    carrier, so a single consensus slot orders them all. *)

type op =
  | Single of { txid : int; ops : Repro_ledger.Tx.op list }
  | Begin_tx of { txid : int; participants : int list }
  | Prepare_tx of { txid : int; ops : Repro_ledger.Tx.op list }
  | Vote of { txid : int; shard : int; ok : bool }
  | Commit_tx of { txid : int; ops : Repro_ledger.Tx.op list }
  | Abort_tx of { txid : int; ops : Repro_ledger.Tx.op list }
  | Merge_tx of { txid : int; deltas : (string * Repro_ledger.Tx.delta) list }
      (** Fast-lane delta leg (DESIGN §18): one unconditional commutative
          payload per participant shard, riding the decision position —
          no [Begin_tx]/[Prepare_tx]/[Vote] round and no lock tuples. *)
  | Batch of { batch : int; steps : op list }
      (** One consensus slot carrying many coordination steps (Begin/Vote);
          [batch] is a per-system unique id, [steps] are canonically ordered
          by {!batch_order} before submission. *)

val txid_of_op : op -> int
(** The transaction every operation belongs to; a [Batch] answers with the
    synthetic {!batch_txid} of its id (negative, disjoint from real
    transactions) so registry compaction can release it as a unit. *)

val batch_txid : int -> int
(** The synthetic registry key of batch [id]: negative, so it can never
    collide with a real transaction id. *)

val batch_order : op -> op -> int
(** Canonical deterministic order of steps within one consensus slot:
    [Begin_tx] before [Vote], then by txid, then (for votes) by shard and
    outcome.  A pure function of the steps themselves, so any submission
    interleaving sorts to the same slot content — the determinism argument
    for the batched commit path (DESIGN §15). *)

type registry

val create_registry : unit -> registry

val register : registry -> op -> int
(** Returns the [op_tag] to embed in the consensus request.  Idempotent:
    re-registering a structurally identical op (a client retry, a
    duplicated leg) returns the existing tag instead of growing the
    registry, so a long-running system's registry is bounded by the
    distinct operations still in flight. *)

val lookup : registry -> int -> op option
(** [None] for unknown tags and for tags already {!release}d. *)

val release : registry -> txid:int -> unit
(** Compaction hook: drop every entry belonging to a finished transaction
    (or, via {!batch_txid}, an executed batch).  Late retries or duplicates
    carrying a released tag fail [lookup] and are ignored by the executors
    — the decision is already applied. *)

val length : registry -> int
(** Live entries; regression surface for the retry-leak bound. *)

val op_cost : Repro_crypto.Cost_model.t -> op -> float
(** Execution cost charged per replica when the operation runs: prepares
    and commits touch the lock tuples and state, begin/vote only the
    coordinator chaincode's bookkeeping; a batch costs the sum of its
    steps. *)

val op_bytes : op -> int
(** Wire-size contribution of the operation's payload (beyond the fixed
    request envelope); batches grow with their step count. *)
