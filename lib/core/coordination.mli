(** The operations that flow through committee consensus in the sharded
    blockchain, and the registry that maps a consensus request's [op_tag]
    to its operation.

    Single-shard transactions execute directly; a cross-shard transaction
    becomes a [Begin_tx] on the reference committee, one [Prepare_tx] per
    participant shard, [Vote]s back on R, and finally [Commit_tx] /
    [Abort_tx] on the participants (Figure 5). *)

type op =
  | Single of { txid : int; ops : Repro_ledger.Tx.op list }
  | Begin_tx of { txid : int; participants : int list }
  | Prepare_tx of { txid : int; ops : Repro_ledger.Tx.op list }
  | Vote of { txid : int; shard : int; ok : bool }
  | Commit_tx of { txid : int; ops : Repro_ledger.Tx.op list }
  | Abort_tx of { txid : int; ops : Repro_ledger.Tx.op list }

val txid_of_op : op -> int
(** The transaction every operation belongs to. *)

type registry

val create_registry : unit -> registry

val register : registry -> op -> int
(** Returns the [op_tag] to embed in the consensus request.  Idempotent:
    re-registering a structurally identical op (a client retry, a
    duplicated leg) returns the existing tag instead of growing the
    registry, so a long-running system's registry is bounded by the
    distinct operations still in flight. *)

val lookup : registry -> int -> op option
(** [None] for unknown tags and for tags already {!release}d. *)

val release : registry -> txid:int -> unit
(** Compaction hook: drop every entry belonging to a finished transaction.
    Late retries or duplicates carrying a released tag fail [lookup] and
    are ignored by the executors — the decision is already applied. *)

val length : registry -> int
(** Live entries; regression surface for the retry-leak bound. *)

val op_cost : Repro_crypto.Cost_model.t -> op -> float
(** Execution cost charged per replica when the operation runs: prepares
    and commits touch the lock tuples and state, begin/vote only the
    reference chaincode's bookkeeping. *)
