open Repro_util
open Repro_crypto
open Repro_sim
open Repro_consensus
open Repro_ledger
open Repro_shard
module Probe = Repro_obs.Probe
module Ev = Repro_obs.Event

type coordination_mode = With_reference | Client_driven | Flattened

type concurrency_control =
  | Two_phase_locking  (** the paper's 2PL: conflicting prepares vote NotOK *)
  | Wait_die
      (** Section 6.4's optimization opportunity: an older transaction
          whose prepare hits a lock parks and retries when the lock frees
          (younger ones still die, so no deadlocks) *)

type batching = { window : float; max_steps : int; pipeline : bool }

type config = {
  shards : int;
  committee_size : int;
  variant : Config.variant;
  topology : Topology.t;
  cpu_scale : float;
  mode : coordination_mode;
  concurrency : concurrency_control;
  seed : int64;
  tune : Config.t -> Config.t;
  client_fallback_timeout : float;
  batching : batching option;
  fast_lane : bool;
      (* DESIGN §18: route all-mergeable transactions down the lock-free
         delta lane instead of 2PC+2PL *)
}

let default_batching = { window = 0.02; max_steps = 128; pipeline = true }

let default_config ~shards ~committee_size =
  {
    shards;
    committee_size;
    variant = Config.ahl_plus;
    topology = Topology.lan ();
    cpu_scale = 1.0;
    mode = With_reference;
    concurrency = Two_phase_locking;
    seed = 1L;
    tune = Fun.id;
    client_fallback_timeout = 5.0;
    batching = Some default_batching;
    fast_lane = false;
  }

type tx_outcome = Committed | Aborted

type committee_ctx = {
  index : int; (* 0..shards-1, or [shards] for R *)
  base : int; (* global node id of member 0 *)
  pbft : Pbft.committee;
  pcfg : Config.t;
  nodes : Pbft.msg Node.t array;
  state : State.t;
  chain : Block.Chain.chain;
  cmetrics : Metrics.t;
  coordsm : Reference.t option;
      (* the Fig.-6 2PC chaincode: hosted by R in [With_reference] mode,
         by every shard committee in [Flattened] mode (the coordinator
         shard of a transaction runs its machine), by nobody when the
         client coordinates *)
  applied : (int * int, unit) Hashtbl.t;
      (* (txid, phase) pairs already executed — client retries after
         request loss make re-delivery possible, execution must be
         idempotent *)
  parked : (int, Tx.op list * Types.request * float) Hashtbl.t;
      (* wait-die: prepares waiting for a lock (with park time),
         retried on releases *)
  prepared : (int, bool) Hashtbl.t;
      (* the shard observer's record of each prepare's quorum outcome —
         the evidence R's fallback sweep reads instead of guessing from
         lock tuples (a prepare still in flight has no entry) *)
  mlane : Merge.lane;
      (* the shard's lock-free delta lane: fast-lane legs append here and
         the observer folds it into [state] at each block boundary *)
  mutable state_commit : Sha256.digest;
      (* rolling state commitment chained per block; recomputing the full
         Merkle root over the whole state each block would be O(state) *)
}

(* Book-keeping for one in-flight cross-shard transaction. *)
type tx_record = {
  tx : Tx.t;
  participant_shards : int list;
  mutable decided : bool;
  mutable legs_left : int;
  legs_done : (int, unit) Hashtbl.t;
  mutable outcome : tx_outcome;
  mutable relaying : bool; (* false once a malicious client went silent *)
  lane_deltas : (string * Tx.delta) list option;
      (* [Some _] iff this transaction rides the merge fast lane; retries
         then re-send delta legs rather than commit/abort legs *)
  mutable prepare_started : float; (* -1 until the first prepare dispatch *)
  mutable decided_at : float; (* -1 until the decision is reached *)
  on_done : tx_outcome -> unit;
}

type decision_event = { at : float; txid : int; shard : int; commit : bool }

(* Per-destination accumulator of coordinator-bound steps: one consensus
   slot then carries the whole batch instead of one request per leg. *)
type batcher = {
  mutable steps : Coordination.op list; (* newest first *)
  mutable count : int;
  mutable bclient : int; (* client of the carrier request *)
  mutable armed : bool; (* a window-flush timer is pending *)
}

type t = {
  cfg : config;
  engine : Engine.t;
  network : Pbft.msg Network.t;
  registry : Coordination.registry;
  merge_reg : Merge.registry; (* chaincode-declared commutative ops *)
  mutable committees : committee_ctx array; (* shards, then optionally R last *)
  metrics : Metrics.t; (* transaction-level *)
  inflight : (int, tx_record) Hashtbl.t;
  client_votes : (int, (int, bool) Hashtbl.t) Hashtbl.t;
      (* per-tx vote collection when the client itself coordinates *)
  mutable next_req : int;
  rng : Rng.t;
  mutable leg_filter : (dst:int -> Coordination.op -> Network.verdict) option;
      (* adversarial hook over coordination legs (see set_leg_filter) *)
  mutable decisions : decision_event list; (* reverse chronological *)
  mutable probe : Probe.t;
  batchers : (int, batcher) Hashtbl.t; (* destination committee -> pending *)
  mutable next_batch : int;
  mutable batches_inflight : int; (* sent, not yet executed *)
  live_batches : (int, unit) Hashtbl.t;
  corrupt_snapshot : (int, unit) Hashtbl.t;
      (* one-shot per-committee flag: the next snapshot served for catch-up
         is tampered (models a Byzantine serving member; the joiner's
         verification must reject it) *)
}

let ref_index t = t.cfg.shards

let has_reference t = t.cfg.mode = With_reference

let engine t = t.engine

let shards t = t.cfg.shards

let committee_size t = t.cfg.committee_size

let shard_state t s = t.committees.(s).state

let shard_chain t s = t.committees.(s).chain

let reference_machine t = if has_reference t then t.committees.(ref_index t).coordsm else None

let coordination_machines t =
  Array.to_list t.committees |> List.filter_map (fun ctx -> ctx.coordsm)

(* The committee that runs a transaction's 2PC machine. *)
let coordinator_of t (rec_ : tx_record) =
  match t.cfg.mode with
  | With_reference -> ref_index t
  | Flattened ->
      (* SharPer-style: an involved shard coordinates; spread the role over
         participants by txid so no shard becomes the de-facto R. *)
      let ps = rec_.participant_shards in
      List.nth ps (rec_.tx.Tx.txid mod List.length ps)
  | Client_driven ->
      Sim_error.invalid "System.coordinator_of: no coordinator committee in client-driven mode"

let pipelining t = match t.cfg.batching with Some b -> b.pipeline | None -> false

(* ------------------------------------------------------------------ *)
(* Request plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let fresh_req t ~client ~op_tag =
  let req_id = t.next_req in
  t.next_req <- req_id + 1;
  Types.request ~req_id ~client ~submitted:(Engine.now t.engine) ~op_tag ()

(* Hand one coordination step (or a batch carrier) to a committee's entry
   replica, unconditionally — leg filtering happens in the callers. *)
let deliver_op t ~committee ~client op =
  let ctx = t.committees.(committee) in
  let op_tag = Coordination.register t.registry op in
  let req = fresh_req t ~client ~op_tag in
  (* Clients notice an unresponsive peer (dead TCP connection) and try the
     next one, so entry requests go to a live member. *)
  let n = Array.length ctx.nodes in
  let member =
    let start = req.Types.req_id mod n in
    let rec probe i =
      if i >= n then start
      else
        let m = (start + i) mod n in
        if Node.is_crashed ctx.nodes.(m) then probe (i + 1) else m
    in
    probe 0
  in
  (match op with
  | Coordination.Batch { steps; _ } ->
      (* The entry replica's enclave verifies every inner step's client
         signature and its peers accept the attested carrier, so the
         per-step verification cost is paid once — at a rotating member,
         off the replicated pre-prepare path (the amortization DESIGN §15
         justifies; without it each step would cost every replica
         [client_sig_verify]). *)
      Node.charge ctx.nodes.(member)
        (float_of_int (List.length steps)
        *. ctx.pcfg.Config.client_sig_verify *. t.cfg.cpu_scale)
  | _ -> ());
  let dst = ctx.base + member in
  let msg = Pbft.submit_via ctx.pbft ~member req in
  let region = Topology.region_of_node t.cfg.topology dst in
  Network.send_external t.network ~src_region:region ~dst ~channel:Pbft.request_channel
    ~bytes:(240 + Coordination.op_bytes op)
    msg

(* Submit a coordination step as a consensus request to a committee, via a
   deterministic entry replica (clients talk to one peer, AHL+ forwards).
   An installed leg filter can drop, delay, or duplicate the whole step —
   the adversarial knob the cross-shard checker drives. *)
let send_to_committee t ~committee ~client op =
  let deliver () = deliver_op t ~committee ~client op in
  match t.leg_filter with
  | None -> deliver ()
  | Some filter -> (
      match filter ~dst:committee op with
      | Network.Deliver -> deliver ()
      | Network.Drop -> ()
      | Network.Delay d -> Engine.schedule t.engine ~delay:d deliver
      | Network.Duplicate { copies; spacing } ->
          deliver ();
          for k = 1 to copies - 1 do
            Engine.schedule t.engine ~delay:(float_of_int k *. spacing) deliver
          done)

(* ------------------------------------------------------------------ *)
(* The step batcher (DESIGN §15)                                       *)
(* ------------------------------------------------------------------ *)

(* A batch the executing committee never sees (entry replica crashed,
   consensus stalled past the horizon) would pin its registry entries
   forever; release them after a generous grace period instead. *)
let batch_gc_period = 120.0

let send_batch t ~committee ~client steps =
  match steps with
  | [] -> ()
  | steps ->
      let id = t.next_batch in
      t.next_batch <- id + 1;
      Probe.observe t.probe "2pc.batch.size" (float_of_int (List.length steps));
      Hashtbl.replace t.live_batches id ();
      t.batches_inflight <- t.batches_inflight + 1;
      Probe.observe t.probe "2pc.batch.pipeline_depth" (float_of_int t.batches_inflight);
      deliver_op t ~committee ~client (Coordination.Batch { batch = id; steps });
      Engine.schedule t.engine ~delay:batch_gc_period (fun () ->
          if Hashtbl.mem t.live_batches id then begin
            Hashtbl.remove t.live_batches id;
            t.batches_inflight <- t.batches_inflight - 1;
            Coordination.release t.registry ~txid:(Coordination.batch_txid id)
          end)

(* Seal the pending steps into canonical order and ship them.  The leg
   filter is applied per *constituent* step — an adversary that drops Vote
   legs with probability p must see the same per-leg semantics whether the
   legs travel alone or batched — and the surviving steps are regrouped
   into sub-batches (delivered now / after each distinct delay / duplicated
   as singletons), each with its own carrier id. *)
let flush_batcher t ~committee b =
  match b.steps with
  | [] -> ()
  | rev_steps ->
      b.steps <- [];
      b.count <- 0;
      let client = b.bclient in
      (* [List.rev] restores enqueue order so the stable sort resolves
         batch_order ties (structurally identical duplicates) the same way
         for any flush size. *)
      let steps = List.sort Coordination.batch_order (List.rev rev_steps) in
      (match t.leg_filter with
      | None -> send_batch t ~committee ~client steps
      | Some filter ->
          let now_ = ref [] and delayed = ref [] in
          List.iter
            (fun s ->
              match filter ~dst:committee s with
              | Network.Deliver -> now_ := s :: !now_
              | Network.Drop -> Probe.incr t.probe "2pc.batch.step_dropped"
              | Network.Delay d -> delayed := (d, s) :: !delayed
              | Network.Duplicate { copies; spacing } ->
                  now_ := s :: !now_;
                  for k = 1 to copies - 1 do
                    Engine.schedule t.engine ~delay:(float_of_int k *. spacing) (fun () ->
                        send_batch t ~committee ~client [ s ])
                  done)
            steps;
          send_batch t ~committee ~client (List.rev !now_);
          let delayed =
            List.stable_sort (fun (d1, _) (d2, _) -> Float.compare d1 d2) (List.rev !delayed)
          in
          let rec groups = function
            | [] -> []
            | (d, s) :: rest ->
                let same, others = List.partition (fun (d2, _) -> Float.equal d d2) rest in
                (d, s :: List.map snd same) :: groups others
          in
          List.iter
            (fun (d, ss) ->
              Engine.schedule t.engine ~delay:d (fun () -> send_batch t ~committee ~client ss))
            (groups delayed))

(* Coordinator-bound steps (Begin/Vote) ride batches when batching is on;
   everything else keeps the one-request-per-step path. *)
let enqueue_step t ~committee ~client op =
  match t.cfg.batching with
  | None -> send_to_committee t ~committee ~client op
  | Some bcfg ->
      let b =
        match Hashtbl.find_opt t.batchers committee with
        | Some b -> b
        | None ->
            let b = { steps = []; count = 0; bclient = client; armed = false } in
            Hashtbl.replace t.batchers committee b;
            b
      in
      if b.count = 0 then b.bclient <- client;
      b.steps <- op :: b.steps;
      b.count <- b.count + 1;
      if b.count >= bcfg.max_steps then begin
        Probe.incr t.probe "2pc.batch.flush.full";
        flush_batcher t ~committee b
      end
      else if not b.armed then begin
        b.armed <- true;
        Engine.schedule t.engine ~delay:bcfg.window (fun () ->
            b.armed <- false;
            match b.steps with
            | [] -> ()
            | _ :: _ ->
                Probe.incr t.probe "2pc.batch.flush.window";
                flush_batcher t ~committee b)
      end

(* ------------------------------------------------------------------ *)
(* Coordination driver (the client relay + coordinator fallback)       *)
(* ------------------------------------------------------------------ *)

let finish_leg t txid shard =
  match Hashtbl.find_opt t.inflight txid with
  | None -> ()
  | Some rec_ when Hashtbl.mem rec_.legs_done shard -> ignore rec_
  | Some rec_ ->
      Hashtbl.replace rec_.legs_done shard ();
      rec_.legs_left <- rec_.legs_left - 1;
      if rec_.decided_at >= 0.0 then
        Probe.observe t.probe "2pc.decision_leg_s" (Engine.now t.engine -. rec_.decided_at);
      if rec_.legs_left <= 0 then begin
        Hashtbl.remove t.inflight txid;
        Coordination.release t.registry ~txid;
        (match rec_.outcome with
        | Committed ->
            Metrics.commit t.metrics ~count:1;
            Metrics.commit_latency t.metrics ~submitted:rec_.tx.Tx.submitted;
            Probe.incr t.probe "2pc.committed"
        | Aborted ->
            Metrics.abort t.metrics ~count:1;
            Probe.incr t.probe "2pc.aborted");
        Probe.observe t.probe "2pc.tx_total_s" (Engine.now t.engine -. rec_.tx.Tx.submitted);
        rec_.on_done rec_.outcome
      end

let dispatch_decision t txid ok =
  match Hashtbl.find_opt t.inflight txid with
  | None -> ()
  | Some rec_ ->
      if not rec_.decided then begin
        rec_.decided <- true;
        rec_.outcome <- (if ok then Committed else Aborted);
        rec_.decided_at <- Engine.now t.engine;
        if Probe.enabled t.probe then begin
          Probe.incr t.probe
            (if ok then "2pc.decided.commit" else "2pc.decided.abort");
          Probe.instant t.probe ~time:(Engine.now t.engine) ~cat:"2pc" ~node:"coord"
            ~args:[ ("txid", Ev.I txid); ("commit", Ev.S (string_of_bool ok)) ]
            "decision"
        end;
        rec_.legs_left <- List.length rec_.participant_shards;
        List.iter
          (fun shard ->
            let ops = Tx.ops_for_shard ~shards:t.cfg.shards rec_.tx shard in
            let op =
              if ok then Coordination.Commit_tx { txid; ops }
              else Coordination.Abort_tx { txid; ops }
            in
            send_to_committee t ~committee:shard ~client:rec_.tx.Tx.client op)
          rec_.participant_shards
      end

let dispatch_prepares t txid =
  match Hashtbl.find_opt t.inflight txid with
  | None -> ()
  | Some rec_ ->
      if rec_.prepare_started < 0.0 then begin
        rec_.prepare_started <- Engine.now t.engine;
        Probe.incr t.probe "2pc.prepare_rounds";
        Probe.instant t.probe ~time:(Engine.now t.engine) ~cat:"2pc" ~node:"coord"
          "prepare_dispatch"
      end;
      List.iter
        (fun shard ->
          let ops = Tx.ops_for_shard ~shards:t.cfg.shards rec_.tx shard in
          send_to_committee t ~committee:shard ~client:rec_.tx.Tx.client
            (Coordination.Prepare_tx { txid; ops }))
        rec_.participant_shards

(* Client-driven vote collection (OmniLedger mode). *)
let on_client_vote t txid shard ok =
  match Hashtbl.find_opt t.inflight txid with
  | None -> ()
  | Some rec_ when rec_.relaying ->
      let votes =
        match Hashtbl.find_opt t.client_votes txid with
        | Some v -> v
        | None ->
            let v = Hashtbl.create 4 in
            Hashtbl.replace t.client_votes txid v;
            v
      in
      Hashtbl.replace votes shard ok;
      let all_in = Hashtbl.length votes = List.length rec_.participant_shards in
      let any_nok = Det.fold ~compare:Int.compare (fun _ ok acc -> acc || not ok) votes false in
      if any_nok || all_in then begin
        Hashtbl.remove t.client_votes txid;
        dispatch_decision t txid (not any_nok)
      end
  | Some _ -> () (* malicious client: locks stay, nobody decides *)

(* ------------------------------------------------------------------ *)
(* Execution at committee observers                                    *)
(* ------------------------------------------------------------------ *)

(* Block-boundary merge fold (DESIGN §18): materialise the delta lane into
   canonical state before sealing the block.  The fold order is canonical
   (key, txid, seq) — a pure function of the delta set — so every replica
   folding this block chains the same root, and the lane's effect on the
   state commitment is independent of leg arrival order. *)
let fold_lane t ctx =
  let depth = Merge.depth ctx.mlane in
  if depth > 0 then begin
    let count, digest = Merge.fold_into ctx.mlane ctx.state in
    if Probe.enabled t.probe then begin
      Probe.incr t.probe "merge.folds";
      Probe.observe t.probe "merge.fold.depth" (float_of_int depth);
      let dur =
        float_of_int count *. Cost_model.default.Cost_model.tx_execute *. t.cfg.cpu_scale
      in
      Probe.span t.probe ~time:(Engine.now t.engine) ~dur ~cat:"merge"
        ~node:("s" ^ string_of_int ctx.index)
        ~args:[ ("entries", Ev.I count) ]
        "merge_fold"
    end;
    ctx.state_commit <-
      Sha256.digest_concat
        [ Sha256.to_raw ctx.state_commit; "merge-fold"; Sha256.to_raw digest ]
  end

let record_block t ctx batch =
  fold_lane t ctx;
  let txs = List.map (fun (r : Types.request) -> Printf.sprintf "req-%d" r.Types.req_id) batch in
  ctx.state_commit <-
    Sha256.digest_concat (Sha256.to_raw ctx.state_commit :: txs);
  ignore
    (Block.Chain.append ctx.chain ~txs ~state_root:ctx.state_commit
       ~timestamp:(Engine.now t.engine))

(* Deliver a shard's quorum answer for a prepare to whoever coordinates. *)
let emit_vote t ctx (req : Types.request) ~txid ~ok =
  match t.cfg.mode with
  | With_reference | Flattened -> (
      match Hashtbl.find_opt t.inflight txid with
      | Some rec_ when rec_.relaying ->
          enqueue_step t ~committee:(coordinator_of t rec_) ~client:req.Types.client
            (Coordination.Vote { txid; shard = ctx.index; ok })
      | Some _ | None ->
          (* Silent client: the coordinator's fallback sweep reads the
             chain instead. *)
          ())
  | Client_driven -> on_client_vote t txid ctx.index ok

(* A prepare's quorum outcome is evidence the shard observer keeps until
   the transaction's decision lands; R's fallback sweep reads it rather
   than inferring a vote from the lock table. *)
let record_prepare t ctx ~txid ~ok =
  ignore t;
  Hashtbl.replace ctx.prepared txid ok

(* Wait-die retry: lock releases wake parked prepares in txid order. *)
let retry_parked t ctx =
  let waiting = Det.bindings ~compare:Int.compare ctx.parked in
  List.iter
    (fun (txid, (ops, req, parked_at)) ->
      match Executor.try_prepare ctx.state ~txid ops with
      | Ok () ->
          Hashtbl.remove ctx.parked txid;
          Probe.incr t.probe "2pc.waitdie.retry_ok";
          Probe.observe t.probe "2pc.waitdie.wait_s" (Engine.now t.engine -. parked_at);
          record_prepare t ctx ~txid ~ok:true;
          emit_vote t ctx req ~txid ~ok:true
      | Error (Executor.Insufficient _) ->
          Hashtbl.remove ctx.parked txid;
          Probe.incr t.probe "2pc.vote_nok.insufficient";
          record_prepare t ctx ~txid ~ok:false;
          emit_vote t ctx req ~txid ~ok:false
      | Error (Executor.Lock_conflict _) -> ())
    waiting

let execute_on_shard t ctx (req : Types.request) =
  match Coordination.lookup t.registry req.Types.op_tag with
  | None -> ()
  | Some op -> (
      match op with
      (* Client retries can re-deliver any step; state-changing ones are
         applied at most once per (txid, step). *)
      | Coordination.Single { txid; _ } when Hashtbl.mem ctx.applied (txid, 0) -> ()
      | Coordination.Commit_tx { txid; _ } when Hashtbl.mem ctx.applied (txid, 1) -> ()
      | Coordination.Abort_tx { txid; _ } when Hashtbl.mem ctx.applied (txid, 2) -> ()
      | Coordination.Prepare_tx { txid; _ }
        when Hashtbl.mem ctx.applied (txid, 1) || Hashtbl.mem ctx.applied (txid, 2) ->
          (* A retried prepare arriving after the decision must not
             re-acquire locks the commit/abort already released. *)
          ()
      | Coordination.Merge_tx { txid; _ } when Hashtbl.mem ctx.applied (txid, 3) ->
          () (* duplicated/retried delta legs append at most once *)
      | Coordination.Merge_tx { txid; deltas } ->
          Hashtbl.replace ctx.applied (txid, 3) ();
          List.iter
            (fun (key, delta) -> Merge.append ctx.mlane ctx.state ~txid ~key delta)
            deltas;
          if Probe.enabled t.probe then begin
            Probe.add t.probe "merge.deltas" (List.length deltas);
            Probe.observe t.probe "merge.lane.depth" (float_of_int (Merge.depth ctx.mlane))
          end;
          t.decisions <-
            { at = Engine.now t.engine; txid; shard = ctx.index; commit = true } :: t.decisions;
          finish_leg t txid ctx.index
      | Coordination.Single { txid; ops } -> (
          Hashtbl.replace ctx.applied (txid, 0) ();
          match Executor.execute_single ctx.state ~txid ops with
          | Ok () -> (
              match Hashtbl.find_opt t.inflight txid with
              | Some rec_ ->
                  Hashtbl.remove t.inflight txid;
                  Coordination.release t.registry ~txid;
                  Metrics.commit t.metrics ~count:1;
                  Metrics.commit_latency t.metrics ~submitted:rec_.tx.Tx.submitted;
                  rec_.on_done Committed
              | None -> ())
          | Error _ -> (
              match Hashtbl.find_opt t.inflight txid with
              | Some rec_ ->
                  Hashtbl.remove t.inflight txid;
                  Coordination.release t.registry ~txid;
                  Metrics.abort t.metrics ~count:1;
                  rec_.on_done Aborted
              | None -> ()))
      | Coordination.Prepare_tx { txid; ops } -> (
          (* The client reads the vote off the shard's chain and relays. *)
          match Executor.try_prepare ctx.state ~txid ops with
          | Ok () ->
              record_prepare t ctx ~txid ~ok:true;
              emit_vote t ctx req ~txid ~ok:true
          | Error (Executor.Insufficient _) ->
              Probe.incr t.probe "2pc.vote_nok.insufficient";
              record_prepare t ctx ~txid ~ok:false;
              emit_vote t ctx req ~txid ~ok:false
          | Error (Executor.Lock_conflict { holder; _ }) -> (
              if Probe.enabled t.probe then
                Probe.instant t.probe ~time:(Engine.now t.engine) ~cat:"2pc"
                  ~node:("s" ^ string_of_int ctx.index)
                  ~args:[ ("txid", Ev.I txid); ("holder", Ev.I holder) ]
                  "lock_conflict";
              match t.cfg.concurrency with
              | Two_phase_locking ->
                  Probe.incr t.probe "2pc.vote_nok.lock_conflict";
                  record_prepare t ctx ~txid ~ok:false;
                  emit_vote t ctx req ~txid ~ok:false
              | Wait_die ->
                  if txid < holder && not (Hashtbl.mem ctx.parked txid) then begin
                    (* Older waits; a park timeout bounds the wait.  No
                       evidence is recorded while parked: the prepare is
                       still undecided. *)
                    Probe.incr t.probe "2pc.waitdie.parked";
                    Hashtbl.replace ctx.parked txid (ops, req, Engine.now t.engine);
                    Engine.schedule t.engine ~delay:4.0 (fun () ->
                        match Hashtbl.find_opt ctx.parked txid with
                        | Some (_, req, parked_at) ->
                            Hashtbl.remove ctx.parked txid;
                            Probe.incr t.probe "2pc.waitdie.park_timeout";
                            Probe.observe t.probe "2pc.waitdie.wait_s"
                              (Engine.now t.engine -. parked_at);
                            record_prepare t ctx ~txid ~ok:false;
                            emit_vote t ctx req ~txid ~ok:false
                        | None -> ())
                  end
                  else begin
                    Probe.incr t.probe "2pc.waitdie.died";
                    record_prepare t ctx ~txid ~ok:false;
                    emit_vote t ctx req ~txid ~ok:false
                  end))
      | Coordination.Commit_tx { txid; ops } ->
          Hashtbl.replace ctx.applied (txid, 1) ();
          Executor.commit ctx.state ~txid ops;
          Hashtbl.remove ctx.parked txid;
          Hashtbl.remove ctx.prepared txid;
          t.decisions <-
            { at = Engine.now t.engine; txid; shard = ctx.index; commit = true } :: t.decisions;
          finish_leg t txid ctx.index;
          if t.cfg.concurrency = Wait_die then retry_parked t ctx
      | Coordination.Abort_tx { txid; ops } ->
          Hashtbl.replace ctx.applied (txid, 2) ();
          Executor.abort ctx.state ~txid ops;
          Hashtbl.remove ctx.parked txid;
          Hashtbl.remove ctx.prepared txid;
          t.decisions <-
            { at = Engine.now t.engine; txid; shard = ctx.index; commit = false } :: t.decisions;
          finish_leg t txid ctx.index;
          if t.cfg.concurrency = Wait_die then retry_parked t ctx
      | Coordination.Begin_tx _ | Coordination.Vote _ | Coordination.Batch _ ->
          () (* coordinator-only ops *))

let merge_deltas_for t deltas shard =
  List.filter (fun (key, _) -> Tx.shard_of_key ~shards:t.cfg.shards key = shard) deltas

let observe_vote_leg t txid =
  if Probe.enabled t.probe then
    match Hashtbl.find_opt t.inflight txid with
    | Some rec_ when rec_.prepare_started >= 0.0 && not rec_.decided ->
        Probe.observe t.probe "2pc.vote_leg_s" (Engine.now t.engine -. rec_.prepare_started)
    | Some _ | None -> ()

let rec react_begin t txid decision =
  match decision with
  | Reference.Now_started -> (
      match Hashtbl.find_opt t.inflight txid with
      | None -> ()
      | Some rec_ ->
          if rec_.relaying then begin
            (* Under the pipelined path the submitting client already
               dispatched prepares alongside BeginTx; the coordinator only
               dispatches here on the legacy (unpipelined) path. *)
            if not (pipelining t) then dispatch_prepares t txid
          end
          else
            (* Fallback: the coordinator's nodes dispatch PrepareTx
               themselves if the client relay stays silent, then sweep for
               the shards' prepare evidence until the tx is done. *)
            Engine.schedule t.engine ~delay:t.cfg.client_fallback_timeout (fun () ->
                (match coord_state t rec_ ~txid with
                | Some (Reference.Preparing _) | Some Reference.Started ->
                    dispatch_prepares t txid
                | Some Reference.Committed | Some Reference.Aborted | None -> ());
                Engine.schedule t.engine ~delay:t.cfg.client_fallback_timeout (fun () ->
                    fallback_collect t txid)))
  | Reference.Now_committed ->
      (* Buffered early votes completed the machine inside BeginTx. *)
      dispatch_decision t txid true
  | Reference.Now_aborted -> dispatch_decision t txid false
  | Reference.No_change -> ()

and react_vote t txid decision =
  match decision with
  | Reference.Now_committed -> dispatch_decision t txid true
  | Reference.Now_aborted -> dispatch_decision t txid false
  | Reference.No_change | Reference.Now_started -> ()

and coord_state t rec_ ~txid =
  match t.committees.(coordinator_of t rec_).coordsm with
  | None -> None
  | Some sm -> Reference.state_of sm ~txid

(* Run coordinator chaincode steps at the hosting committee's observer.
   One [Batch] carrier applies a whole consensus slot's worth of legs via
   [Reference.step_batch], reacting to each step's decision exactly as the
   per-request path would. *)
and execute_coord t ctx (req : Types.request) =
  match ctx.coordsm with
  | None -> ()
  | Some refsm -> (
      match Coordination.lookup t.registry req.Types.op_tag with
      | None -> ()
      | Some op -> (
          match op with
          | Coordination.Begin_tx { txid; participants } ->
              react_begin t txid (Reference.step refsm ~txid (Reference.Begin { participants }))
          | Coordination.Vote { txid; shard; ok } ->
              observe_vote_leg t txid;
              let event =
                if ok then Reference.Prepare_ok { shard } else Reference.Prepare_not_ok { shard }
              in
              react_vote t txid (Reference.step refsm ~txid event)
          | Coordination.Batch { batch; steps } ->
              Probe.observe t.probe "2pc.slot_steps" (float_of_int (List.length steps));
              let events =
                List.filter_map
                  (fun s ->
                    match s with
                    | Coordination.Begin_tx { txid; participants } ->
                        Some (s, (txid, Reference.Begin { participants }))
                    | Coordination.Vote { txid; shard; ok } ->
                        Some
                          ( s,
                            ( txid,
                              if ok then Reference.Prepare_ok { shard }
                              else Reference.Prepare_not_ok { shard } ) )
                    | Coordination.Single _ | Coordination.Prepare_tx _
                    | Coordination.Commit_tx _ | Coordination.Abort_tx _
                    | Coordination.Merge_tx _ | Coordination.Batch _ ->
                        None)
                  steps
              in
              List.iter
                (fun (s, (txid, _)) ->
                  match s with Coordination.Vote _ -> observe_vote_leg t txid | _ -> ())
                events;
              let decisions = Reference.step_batch refsm (List.map snd events) in
              List.iter2
                (fun (s, _) (txid, d) ->
                  match s with
                  | Coordination.Begin_tx _ -> react_begin t txid d
                  | _ -> react_vote t txid d)
                events decisions;
              if Hashtbl.mem t.live_batches batch then begin
                Hashtbl.remove t.live_batches batch;
                t.batches_inflight <- t.batches_inflight - 1
              end;
              Coordination.release t.registry ~txid:(Coordination.batch_txid batch)
          | Coordination.Single _ | Coordination.Prepare_tx _ | Coordination.Commit_tx _
          | Coordination.Abort_tx _ | Coordination.Merge_tx _ ->
              ()))

(* When the client never relays votes, the coordinator's members sweep the
   participants: each shard observer keeps the quorum outcome of every
   prepare it ran ([ctx.prepared]), and the sweep relays exactly that
   evidence.  A shard with no evidence yet (prepare lost or still in
   flight) gets its prepare re-dispatched instead of a guessed vote —
   inferring NotOK from the lock table here is what used to abort
   transactions that would have committed, and a single-shot sweep left
   locks stuck when a leg was lost.  The sweep re-arms every
   [client_fallback_timeout] until the transaction is done, re-driving
   undelivered decision legs too (the client will not). *)
and fallback_collect t txid =
  match Hashtbl.find_opt t.inflight txid with
  | None -> ()
  | Some rec_ ->
      Probe.incr t.probe "2pc.fallback_sweeps";
      Probe.instant t.probe ~time:(Engine.now t.engine) ~cat:"2pc" ~node:"R"
        ~args:[ ("txid", Ev.I txid) ]
        "fallback_sweep";
      (if rec_.decided then
         List.iter
           (fun shard ->
             if not (Hashtbl.mem rec_.legs_done shard) then begin
               let ops = Tx.ops_for_shard ~shards:t.cfg.shards rec_.tx shard in
               let op =
                 if rec_.outcome = Committed then Coordination.Commit_tx { txid; ops }
                 else Coordination.Abort_tx { txid; ops }
               in
               send_to_committee t ~committee:shard ~client:rec_.tx.Tx.client op
             end)
           rec_.participant_shards
       else
         List.iter
           (fun shard ->
             match Hashtbl.find_opt t.committees.(shard).prepared txid with
             | Some ok ->
                 enqueue_step t ~committee:(coordinator_of t rec_) ~client:rec_.tx.Tx.client
                   (Coordination.Vote { txid; shard; ok })
             | None ->
                 let ops = Tx.ops_for_shard ~shards:t.cfg.shards rec_.tx shard in
                 send_to_committee t ~committee:shard ~client:rec_.tx.Tx.client
                   (Coordination.Prepare_tx { txid; ops }))
           rec_.participant_shards);
      Engine.schedule t.engine ~delay:t.cfg.client_fallback_timeout (fun () ->
          fallback_collect t txid)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create cfg =
  let engine = Engine.create ~seed:cfg.seed in
  let keystore = Keys.create_keystore (Engine.rng engine) in
  let network = Network.create engine ~topology:cfg.topology in
  let registry = Coordination.create_registry () in
  let merge_reg = Merge.create_registry () in
  Smallbank_cc.declare_mergeable merge_reg;
  Kvstore_cc.declare_mergeable merge_reg;
  let metrics = Metrics.create engine in
  let committee_count = cfg.shards + (if cfg.mode = With_reference then 1 else 0) in
  let t =
    {
      cfg;
      engine;
      network;
      registry;
      merge_reg;
      committees = [||];
      metrics;
      inflight = Hashtbl.create 1024;
      client_votes = Hashtbl.create 64;
      next_req = 0;
      rng = Rng.split_named (Engine.rng engine) "system";
      leg_filter = None;
      decisions = [];
      probe = Probe.none;
      batchers = Hashtbl.create 8;
      next_batch = 0;
      batches_inflight = 0;
      live_batches = Hashtbl.create 64;
      corrupt_snapshot = Hashtbl.create 4;
    }
  in
  let make_committee index =
    let n = cfg.committee_size in
    let base = index * n in
    let pbft_cfg = cfg.tune (Config.default cfg.variant ~n) in
    let cmetrics = Metrics.create engine in
    let ctx_ref = ref None in
    let nodes =
      Array.init n (fun member ->
          Node.create engine ~id:(base + member) ~inbox_mode:(Config.inbox_mode pbft_cfg)
            ~handler:(fun _node msg ->
              match !ctx_ref with
              | Some ctx -> Pbft.handle ctx.pbft ~member msg
              | None -> ()))
    in
    Array.iter (Network.register network) nodes;
    let send ~src ~dst ~channel ~bytes m =
      Network.send network ~src:nodes.(src) ~dst:(base + dst) ~channel ~bytes m
    in
    let charge ~member cost = Node.charge nodes.(member) (cost *. cfg.cpu_scale) in
    let state = State.create () in
    let chain = Block.Chain.create ~state_root:(State.root state) in
    let execute ~member ~seq:_ batch =
      match !ctx_ref with
      | None -> ()
      | Some ctx ->
          if member = Pbft.observer ctx.pbft && batch <> [] then begin
            List.iter
              (fun req ->
                match Coordination.lookup t.registry req.Types.op_tag with
                | Some (Coordination.Begin_tx _ | Coordination.Vote _ | Coordination.Batch _)
                  ->
                    execute_coord t ctx req
                | Some _ | None -> execute_on_shard t ctx req)
              batch;
            record_block t ctx batch
          end
    in
    let pbft =
      Pbft.create ~engine ~keystore ~costs:Cost_model.default ~config:pbft_cfg
        ~faults:(Faults.honest n) ~metrics:cmetrics ~enclave_base_id:base ~send ~charge ~execute
    in
    let coordsm =
      match cfg.mode with
      | With_reference -> if index = cfg.shards then Some (Reference.create ()) else None
      | Flattened -> Some (Reference.create ())
      | Client_driven -> None
    in
    let ctx =
      {
        index;
        base;
        pbft;
        pcfg = pbft_cfg;
        nodes;
        state;
        chain;
        cmetrics;
        coordsm;
        applied = Hashtbl.create 1024;
        parked = Hashtbl.create 64;
        prepared = Hashtbl.create 64;
        mlane = Merge.lane ();
        state_commit = State.root state;
      }
    in
    ctx_ref := Some ctx;
    Pbft.set_alive pbft (fun member -> not (Node.is_crashed nodes.(member)));
    (* Section 5.3 state transfer for checkpoint catch-up: a member whose
       missed slots were pruned from its peers' replay rings pulls a
       snapshot of the shard state, pays transfer + Merkle re-verification
       time, and rejects packages that fail verification.  The observer is
       the one member this can never apply to — its materialized state is
       the committee's only copy, so it must replay, never install. *)
    Pbft.set_snapshot_hook pbft (fun ~member ~seq:_ ~digest:_ ~k ->
        if member = Pbft.observer pbft then k false
        else begin
          let pkg = State_transfer.pack ctx.state in
          let expected = State_transfer.claimed_root pkg in
          let pkg =
            if Hashtbl.mem t.corrupt_snapshot index then begin
              Hashtbl.remove t.corrupt_snapshot index;
              State_transfer.tamper pkg ~key:"acct_0" ~value:"doctored"
            end
            else pkg
          in
          let transfer = State_transfer.transfer_time t.cfg.topology pkg in
          let verify =
            float_of_int (State_transfer.size_bytes pkg / 64)
            *. Cost_model.default.Cost_model.sha256 *. t.cfg.cpu_scale
          in
          if Probe.enabled t.probe then begin
            Probe.observe t.probe "ckpt.transfer_bytes"
              (float_of_int (State_transfer.size_bytes pkg));
            Probe.observe t.probe "ckpt.transfer_s" (transfer +. verify)
          end;
          Engine.schedule t.engine ~delay:(transfer +. verify) (fun () ->
              match State_transfer.verify_and_restore pkg ~expected_root:expected with
              | Ok _ -> k true
              | Error _ -> k false)
        end);
    Pbft.start pbft;
    ctx
  in
  t.committees <- Array.init committee_count make_committee;
  t

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

(* An honest client retries until its transaction finishes: requests can
   be lost at crashed or transitioning replicas, and every coordination
   step is idempotent, so re-driving from the top is safe. *)
let client_retry_period = 25.0

let rec arm_retry t txid =
  Engine.schedule t.engine ~delay:client_retry_period (fun () ->
      match Hashtbl.find_opt t.inflight txid with
      | None -> ()
      | Some rec_ when not rec_.relaying -> ignore rec_ (* malicious: stays silent *)
      | Some rec_ ->
          (match rec_.participant_shards with
          | [ shard ] when not rec_.decided ->
              send_to_committee t ~committee:shard ~client:rec_.tx.Tx.client
                (Coordination.Single { txid; ops = rec_.tx.Tx.ops })
          | _ when rec_.decided ->
              (* Re-send the decision to the legs that have not landed. *)
              List.iter
                (fun shard ->
                  if not (Hashtbl.mem rec_.legs_done shard) then begin
                    let op =
                      match rec_.lane_deltas with
                      | Some deltas ->
                          (* Fast lane: re-drive the delta leg itself; the
                             shard's applied table makes it append-once. *)
                          Coordination.Merge_tx
                            { txid; deltas = merge_deltas_for t deltas shard }
                      | None ->
                          let ops = Tx.ops_for_shard ~shards:t.cfg.shards rec_.tx shard in
                          if rec_.outcome = Committed then Coordination.Commit_tx { txid; ops }
                          else Coordination.Abort_tx { txid; ops }
                    in
                    send_to_committee t ~committee:shard ~client:rec_.tx.Tx.client op
                  end)
                rec_.participant_shards
          | _ -> (
              match t.cfg.mode with
              | With_reference | Flattened ->
                  enqueue_step t ~committee:(coordinator_of t rec_) ~client:rec_.tx.Tx.client
                    (Coordination.Begin_tx { txid; participants = rec_.participant_shards });
                  dispatch_prepares t txid
              | Client_driven -> dispatch_prepares t txid));
          arm_retry t txid)

(* A transaction is admitted to the fast lane iff every op classifies as a
   commutative delta AND no touched key is under an in-flight exclusive
   lock — deltas folded around a 2PC transaction's lock window would
   otherwise interleave with its validated read (the downgrade guard of
   DESIGN §18). *)
let merge_lock_conflict t deltas =
  List.exists
    (fun (key, _) ->
      let shard = Tx.shard_of_key ~shards:t.cfg.shards key in
      let locks = Locks.create t.committees.(shard).state in
      Option.is_some (Locks.holder locks key))
    deltas

let submit_merge t ~on_done ~malicious_client tx deltas =
  let txid = tx.Tx.txid in
  let touched =
    List.sort_uniq Int.compare
      (List.map (fun (key, _) -> Tx.shard_of_key ~shards:t.cfg.shards key) deltas)
  in
  let rec_ =
    {
      tx;
      participant_shards = touched;
      (* The lane has no abort path: the transaction is decided the moment
         it is classified; only its delta legs remain. *)
      decided = true;
      legs_left = List.length touched;
      legs_done = Hashtbl.create 4;
      outcome = Committed;
      relaying = not malicious_client;
      lane_deltas = Some deltas;
      prepare_started = -1.0;
      decided_at = Engine.now t.engine;
      on_done;
    }
  in
  Hashtbl.replace t.inflight txid rec_;
  Probe.incr t.probe "merge.lane_hits";
  List.iter
    (fun shard ->
      send_to_committee t ~committee:shard ~client:tx.Tx.client
        (Coordination.Merge_tx { txid; deltas = merge_deltas_for t deltas shard }))
    touched;
  arm_retry t txid

let submit_locked t ?(on_done = fun _ -> ()) ?(malicious_client = false) tx =
  let txid = tx.Tx.txid in
  let touched = Tx.shards_touched ~shards:t.cfg.shards tx in
  match touched with
  | [] -> on_done Aborted
  | [ shard ] ->
      Hashtbl.replace t.inflight txid
        {
          tx;
          participant_shards = touched;
          decided = false;
          legs_left = 1;
          legs_done = Hashtbl.create 4;
          outcome = Aborted;
          relaying = true;
          lane_deltas = None;
          prepare_started = -1.0;
          decided_at = -1.0;
          on_done;
        };
      send_to_committee t ~committee:shard ~client:tx.Tx.client
        (Coordination.Single { txid; ops = tx.Tx.ops });
      arm_retry t txid
  | _ :: _ ->
      let rec_ =
        {
          tx;
          participant_shards = touched;
          decided = false;
          legs_left = List.length touched;
          legs_done = Hashtbl.create 4;
          outcome = Aborted;
          relaying = not malicious_client;
          lane_deltas = None;
          prepare_started = -1.0;
          decided_at = -1.0;
          on_done;
        }
      in
      Hashtbl.replace t.inflight txid rec_;
      (match t.cfg.mode with
      | With_reference | Flattened ->
          enqueue_step t ~committee:(coordinator_of t rec_) ~client:tx.Tx.client
            (Coordination.Begin_tx { txid; participants = touched });
          (* Pipelining (DESIGN §15): don't round-trip BeginTx through the
             coordinator's consensus before preparing — dispatch prepares
             immediately and let the coordinator's machine buffer any vote
             that outruns its Begin. *)
          if pipelining t && rec_.relaying then dispatch_prepares t txid
      | Client_driven -> dispatch_prepares t txid);
      arm_retry t txid

let submit t ?(on_done = fun _ -> ()) ?(malicious_client = false) tx =
  if not t.cfg.fast_lane then submit_locked t ~on_done ~malicious_client tx
  else
    match Merge.classify_tx t.merge_reg tx with
    | None -> submit_locked t ~on_done ~malicious_client tx
    | Some deltas ->
        if merge_lock_conflict t deltas then begin
          (* Downgrade: mergeable, but a touched key is exclusively locked
             by an in-flight 2PC transaction — take the full path. *)
          Probe.incr t.probe "merge.downgrades";
          submit_locked t ~on_done ~malicious_client tx
        end
        else submit_merge t ~on_done ~malicious_client tx deltas

let run t ~until = Engine.run t.engine ~until

let committed t = Metrics.committed t.metrics

let aborted t = Metrics.aborted t.metrics

let abort_rate t = Metrics.abort_rate t.metrics

let throughput t ~warmup = Metrics.throughput t.metrics ~warmup

let latency_stats t = Metrics.latency_stats t.metrics

let throughput_series t = Metrics.throughput_series t.metrics

let view_changes t =
  Array.fold_left (fun acc ctx -> acc + Metrics.counter ctx.cmetrics "view_changes") 0 t.committees

let reference_busy_fraction t =
  if not (has_reference t) then 0.0
  else begin
    let ctx = t.committees.(ref_index t) in
    let total = Array.fold_left (fun acc node -> acc +. Node.busy_fraction node) 0.0 ctx.nodes in
    total /. float_of_int (Array.length ctx.nodes)
  end

let stuck_locks t =
  let count = ref 0 in
  for s = 0 to t.cfg.shards - 1 do
    List.iter
      (fun k -> if String.length k > 2 && String.sub k 0 2 = "L_" then incr count)
      (State.keys t.committees.(s).state)
  done;
  !count

(* ------------------------------------------------------------------ *)
(* Fault hooks and observability (the cross-shard checker's surface)   *)
(* ------------------------------------------------------------------ *)

let set_leg_filter t f = t.leg_filter <- f

let set_probe t p =
  t.probe <- p;
  Network.set_probe t.network p;
  Array.iter (fun ctx -> Pbft.set_probe ctx.pbft p) t.committees

let crash_member t ~committee ~member = Node.crash t.committees.(committee).nodes.(member)

let recover_member t ~committee ~member =
  let ctx = t.committees.(committee) in
  if Node.is_crashed ctx.nodes.(member) then begin
    Node.recover ctx.nodes.(member);
    (* The revived replica immediately asks its peers for the slots it
       missed — the fix for the crashobs divergence the checker found. *)
    Pbft.notify_recovered ctx.pbft ~member
  end

let reset_member t ~committee ~member = Pbft.reset_member t.committees.(committee).pbft ~member

let corrupt_next_snapshot t ~shard = Hashtbl.replace t.corrupt_snapshot shard ()

let committee_checkpoints t =
  Array.to_list t.committees
  |> List.concat_map (fun ctx ->
         List.init (Array.length ctx.nodes) (fun m ->
             match Pbft.checkpoint_cert ctx.pbft ~member:m with
             | Some (seq, root, _) -> [ (ctx.index, m, seq, root) ]
             | None -> [])
         |> List.concat)

let observer_lag t =
  Array.to_list t.committees
  |> List.map (fun ctx ->
         let hi = ref 0 in
         for m = 0 to Array.length ctx.nodes - 1 do
           hi := Int.max !hi (Pbft.last_executed ctx.pbft ~member:m)
         done;
         let obs = Pbft.last_executed ctx.pbft ~member:(Pbft.observer ctx.pbft) in
         (ctx.index, !hi - obs))

(* ---- merge fast-lane surface (oracles + tests) ---- *)

(* Flush every shard's remaining pending deltas (the run may stop between
   block boundaries), then re-fold each lane's full history against its
   recorded bases and diff with materialised state.  Empty iff every
   replica's state is exactly the canonical fold of its delta log — the
   merge-convergence oracle. *)
let merge_audit t =
  List.concat
    (List.init t.cfg.shards (fun s ->
         let ctx = t.committees.(s) in
         fold_lane t ctx;
         List.map (fun m -> (s, m)) (Merge.audit ctx.mlane ctx.state)))

let merge_folds t =
  Array.fold_left (fun acc ctx -> acc + Merge.folds ctx.mlane) 0 t.committees

let merge_lane_log t ~shard = Merge.log_length t.committees.(shard).mlane

let merge_roots t =
  List.init t.cfg.shards (fun s -> (s, Sha256.to_hex (Merge.root t.committees.(s).mlane)))

let decision_trace t = List.rev t.decisions

let prepare_evidence t ~shard ~txid = Hashtbl.find_opt t.committees.(shard).prepared txid

let registry_size t = Coordination.length t.registry

let schedule_reshard t ~at ~strategy ~fetch_time =
  let plan_waves () =
    (* Half of each committee's members are reassigned (two-shard swap of
       Figure 12); what matters for throughput is how many are offline at
       once. *)
    let per_committee = Array.to_list (Array.map (fun ctx -> ctx.nodes) t.committees) in
    (* Transition the tail half of each committee: the observer (member 0,
       where state is materialized) stays, mirroring the paper's setup
       where measurement nodes persist. *)
    let movers_per_committee =
      List.map
        (fun nodes ->
          let n = Array.length nodes in
          List.init (n / 2) (fun i -> nodes.(n - 1 - i)))
        per_committee
    in
    match strategy with
    | `Swap_all ->
        (* The naive approach stops *every* node, reassigns, and restarts:
           the whole system is down for the fetch period. *)
        [ List.concat_map Array.to_list (Array.to_list (Array.map (fun ctx -> ctx.nodes) t.committees)) ]
    | `Batched b ->
        (* Wave w takes movers [w·b .. w·b+b-1] from every committee, so no
           committee ever has more than b members offline. *)
        let max_len = List.fold_left (fun acc l -> Stdlib.max acc (List.length l)) 0 movers_per_committee in
        let waves = (max_len + b - 1) / b in
        List.init waves (fun w ->
            List.concat_map
              (fun movers ->
                List.filteri (fun i _ -> i >= w * b && i < (w + 1) * b) movers)
              movers_per_committee)
  in
  Engine.schedule_at t.engine ~time:at (fun () ->
      let waves = plan_waves () in
      let rec run_wave w = function
        | [] ->
            Probe.instant t.probe ~time:(Engine.now t.engine) ~cat:"epoch" ~node:"epoch"
              "reshard_done"
        | wave :: rest ->
            Probe.incr t.probe "epoch.reshard_waves";
            if Probe.enabled t.probe then
              Probe.span t.probe ~time:(Engine.now t.engine) ~dur:fetch_time ~cat:"epoch"
                ~node:"epoch"
                ~args:[ ("wave", Ev.I w); ("movers", Ev.I (List.length wave)) ]
                "reshard_wave";
            List.iter Node.crash wave;
            Engine.schedule t.engine ~delay:fetch_time (fun () ->
                List.iter Node.recover wave;
                run_wave (w + 1) rest)
      in
      run_wave 0 waves)

let advance_epoch t ~at ~seed ~epoch ~strategy =
  let committees = Array.length t.committees in
  let nodes_total = Array.fold_left (fun acc ctx -> acc + Array.length ctx.nodes) 0 t.committees in
  let from_ = Assignment.derive ~seed ~epoch:(epoch - 1) ~nodes:nodes_total ~committees in
  let to_ = Assignment.derive ~seed ~epoch ~nodes:nodes_total ~committees in
  let node_of_global id =
    (* Global ids are dense across committees in creation order. *)
    let rec find c =
      if c >= Array.length t.committees then
        Sim_error.invalid "System.advance_epoch: node id %d outside all committees" id
      else
        let ctx = t.committees.(c) in
        if id >= ctx.base && id < ctx.base + Array.length ctx.nodes then ctx.nodes.(id - ctx.base)
        else find (c + 1)
    in
    find 0
  in
  (* A transitioning node is down for as long as fetching + verifying its
     destination shard's state takes (plus re-attestation of the new
     committee, amortized). *)
  let fetch_time step =
    let dst = Stdlib.min step.Assignment.to_committee (t.cfg.shards - 1) in
    let pkg = State_transfer.pack t.committees.(dst).state in
    let transfer = State_transfer.transfer_time t.cfg.topology pkg in
    (* Verification recomputes the Merkle root: charged at Table-2 SHA
       throughput over the package. *)
    let verify =
      float_of_int (State_transfer.size_bytes pkg / 64)
      *. Cost_model.default.Cost_model.sha256 *. t.cfg.cpu_scale
    in
    if Probe.enabled t.probe then begin
      Probe.observe t.probe "ckpt.transfer_bytes" (float_of_int (State_transfer.size_bytes pkg));
      Probe.observe t.probe "ckpt.transfer_s" (transfer +. verify)
    end;
    Float.max 1.0 (transfer +. verify +. Cost_model.default.Cost_model.remote_attestation)
  in
  let batch =
    match strategy with
    | `Swap_all -> nodes_total (* one wave containing everyone who moves *)
    | `Batched_log -> Sizing.swap_batch_size ~n:t.cfg.committee_size
  in
  let waves = Assignment.transition_plan ~from_ ~to_ ~batch in
  Engine.schedule_at t.engine ~time:at (fun () ->
      Probe.instant t.probe ~time:(Engine.now t.engine) ~cat:"epoch" ~node:"epoch"
        ~args:[ ("epoch", Ev.I epoch); ("waves", Ev.I (List.length waves)) ]
        "epoch_transition_start";
      let rec run_wave w = function
        | [] ->
            Probe.instant t.probe ~time:(Engine.now t.engine) ~cat:"epoch" ~node:"epoch"
              ~args:[ ("epoch", Ev.I epoch) ]
              "epoch_transition_done"
        | wave :: rest ->
            let max_fetch = ref 1.0 in
            let moved = ref 0 in
            List.iter
              (fun step ->
                let nd = node_of_global step.Assignment.node in
                let cidx = Node.id nd / t.cfg.committee_size in
                let member = Node.id nd mod t.cfg.committee_size in
                let ctx = t.committees.(cidx) in
                (* The observer replica anchors measurement; it is treated
                   as pinned infrastructure and never transitions. *)
                if member <> 0 || strategy = `Swap_all then begin
                  Node.crash nd;
                  Stdlib.incr moved;
                  let ft = fetch_time step in
                  if ft > !max_fetch then max_fetch := ft;
                  if member <> 0 then begin
                    (* A literal committee swap: the slot's previous
                       occupant departs with its consensus state; after the
                       fetch window a newcomer rejoins holding only the
                       snapshot it transferred and verified, anchored at the
                       committee's latest certified checkpoint, and replays
                       the tail from its peers. *)
                    Pbft.reset_member ctx.pbft ~member;
                    Engine.schedule t.engine ~delay:ft (fun () ->
                        Node.recover nd;
                        (match
                           Pbft.checkpoint_cert ctx.pbft ~member:(Pbft.observer ctx.pbft)
                         with
                        | Some (seq, root, voters) ->
                            Pbft.install_checkpoint ctx.pbft ~member ~seq ~digest:root ~voters
                        | None -> ());
                        Pbft.notify_recovered ctx.pbft ~member)
                  end
                  else
                    (* Swap-all restarts even the pinned observer node; it
                       keeps its state and catches up by replay. *)
                    Engine.schedule t.engine ~delay:ft (fun () ->
                        Node.recover nd;
                        Pbft.notify_recovered ctx.pbft ~member)
                end)
              wave;
            Probe.incr t.probe "epoch.waves";
            Probe.add t.probe "epoch.movers" !moved;
            if Probe.enabled t.probe then
              Probe.span t.probe ~time:(Engine.now t.engine) ~dur:!max_fetch ~cat:"epoch"
                ~node:"epoch"
                ~args:[ ("epoch", Ev.I epoch); ("wave", Ev.I w); ("movers", Ev.I !moved) ]
                "epoch_wave";
            Engine.schedule t.engine ~delay:!max_fetch (fun () -> run_wave (w + 1) rest)
      in
      run_wave 0 waves)
