(** The sharded blockchain system: k shard committees plus an optional
    reference committee, wired over one simulated network, with the
    Section 6 coordination protocol on top.

    Committees run the PBFT family (AHL+ by default); each committee's
    designated observer replica materializes the shard's key-value state
    and hash chain.  Cross-shard transactions follow Figure 5, with the
    client relaying messages between R and the tx-committees (Section 6.3's
    optimization) and R's own nodes falling back to direct dispatch when a
    client goes silent, which is what defeats malicious coordinators.

    The batched + pipelined commit path (DESIGN §15) lifts the Fig.-13
    reference-committee plateau: coordinator-bound Begin/Vote steps are
    accumulated into per-slot {!Coordination.op.Batch} carriers so one
    consensus slot orders many transactions, and prepares are dispatched
    at submit time so the coordinator's consensus on BeginTx overlaps the
    shards' prepare work. *)

type coordination_mode =
  | With_reference            (** 2PC state machine on a BFT committee R *)
  | Client_driven             (** OmniLedger-style: the client decides —
                                  unsafe under malicious clients *)
  | Flattened
      (** SharPer-style: no dedicated committee — an involved shard
          (chosen by txid among the participants) hosts the transaction's
          2PC machine, so coordination capacity grows with the shard
          count instead of bottlenecking on one committee *)

type concurrency_control =
  | Two_phase_locking  (** the paper's 2PL: conflicting prepares vote NotOK *)
  | Wait_die
      (** the Section 6.4 extension: an older transaction whose prepare
          hits a lock parks (bounded wait) and retries on release; younger
          transactions still die, so no deadlocks *)

type batching = {
  window : float;  (** seconds a pending step may wait for co-travellers *)
  max_steps : int;  (** flush immediately at this many pending steps *)
  pipeline : bool;
      (** dispatch prepares at submit time instead of waiting for BeginTx
          to clear the coordinator's consensus (the coordinator buffers
          votes that outrun their Begin) *)
}
(** Knobs of the batched commit path; [None] in {!config.batching}
    restores the legacy one-consensus-request-per-leg protocol. *)

type config = {
  shards : int;
  committee_size : int;
  variant : Repro_consensus.Config.variant;
  topology : Repro_sim.Topology.t;
  cpu_scale : float;
  mode : coordination_mode;
  concurrency : concurrency_control;
  seed : int64;
  tune : Repro_consensus.Config.t -> Repro_consensus.Config.t;
  client_fallback_timeout : float;
      (** how long R waits for the client relay before its nodes dispatch
          PrepareTx/CommitTx themselves *)
  batching : batching option;
      (** [Some] batches coordinator-bound steps per destination
          committee; {!default_config} turns it on *)
  fast_lane : bool;
      (** route all-mergeable transactions down the lock-free delta lane
          (DESIGN §18): deltas append per shard with no prepare/vote round
          and no locks, and fold into canonical state at block boundaries;
          mixed/non-commutative transactions keep 2PC+2PL.  Off in
          {!default_config}. *)
}

val default_batching : batching
(** 20 ms window, 128-step flush, pipelining on — the configuration the
    fig13 batched curves run with. *)

val default_config : shards:int -> committee_size:int -> config

type t

type tx_outcome = Committed | Aborted

val create : config -> t

val engine : t -> Repro_sim.Engine.t

val shards : t -> int

val committee_size : t -> int

val shard_state : t -> int -> Repro_ledger.State.t
(** The observer-materialized state of a shard (for setup and assertions). *)

val shard_chain : t -> int -> Repro_ledger.Block.Chain.chain

val reference_machine : t -> Repro_shard.Reference.t option
(** R's 2PC chaincode instance ([With_reference] mode only; [None] in the
    other modes — see {!coordination_machines} for the flattened ones). *)

val coordination_machines : t -> Repro_shard.Reference.t list
(** Every hosted 2PC machine in committee order: R's single machine under
    [With_reference], one per shard under [Flattened], empty when the
    client coordinates.  Checkers sum their stats to count decided
    transactions regardless of mode. *)

val submit :
  t ->
  ?on_done:(tx_outcome -> unit) ->
  ?malicious_client:bool ->
  Repro_ledger.Tx.t ->
  unit
(** Inject a transaction.  Single-shard transactions execute directly on
    their committee; cross-shard ones run the coordination protocol.
    [malicious_client] makes the submitting client stop relaying after
    BeginTx — with a coordinator committee ([With_reference] or
    [Flattened]) the fallback completes the transaction anyway; in
    [Client_driven] mode its locks dangle forever. *)

val run : t -> until:float -> unit

val committed : t -> int

val aborted : t -> int

val abort_rate : t -> float

val throughput : t -> warmup:float -> float
(** Committed transactions per second. *)

val latency_stats : t -> Repro_util.Stats.t

val throughput_series : t -> (float * float) list

val view_changes : t -> int
(** Summed across committees. *)

val reference_busy_fraction : t -> float
(** Mean CPU utilization of the reference committee's replicas (0 when
    running without R) — the bottleneck measure of Figure 13. *)

val stuck_locks : t -> int
(** Lock tuples currently held across all shards; non-zero long after all
    clients finished indicates the OmniLedger blocking problem. *)

val set_leg_filter :
  t -> (dst:int -> Coordination.op -> Repro_sim.Network.verdict) option -> unit
(** Install (or clear) an adversarial filter over coordination legs: every
    client/R-initiated step headed for committee [dst] (a shard index, or
    [shards t] for R) passes through it and can be dropped, delayed, or
    duplicated before it reaches consensus.  Batched legs are filtered per
    {e constituent} step — dropping a Vote drops that vote out of its
    carrier, not the whole batch — so fault semantics are independent of
    how steps are grouped.  This is the cross-shard checker's
    fault-injection surface; [None] restores normal delivery. *)

val set_probe : t -> Repro_obs.Probe.t -> unit
(** Thread an observability probe through the whole system: 2PC leg
    timing histograms ([2pc.vote_leg_s], [2pc.decision_leg_s],
    [2pc.tx_total_s]), vote/abort cause counters ([2pc.vote_nok.*],
    [2pc.waitdie.*]), fallback-sweep firings, batched-commit
    instrumentation ([2pc.batch.size], [2pc.batch.pipeline_depth],
    [2pc.slot_steps], [2pc.batch.flush.*]), epoch-transition wave events,
    plus every committee's PBFT probe points and the shared network's
    delivery/drop instrumentation.  Call before {!run}. *)

val crash_member : t -> committee:int -> member:int -> unit
(** Crash one replica of a committee ([shards t] addresses R).  Crashing
    member 0 — the observer that materializes state — stalls that
    committee's execution; checkers that want the paper's crash-fault
    model should pick members >= 1. *)

val recover_member : t -> committee:int -> member:int -> unit
(** Revive a crashed replica.  It immediately runs checkpoint catch-up
    ({!Repro_consensus.Pbft.notify_recovered}): missed slots are fetched
    from f+1 peers and replayed through the execution path, so a recovered
    observer's materialized state converges instead of silently diverging
    (the crashobs regression). *)

val reset_member : t -> committee:int -> member:int -> unit
(** Wipe one replica's consensus state as if a brand-new node took over
    the slot ({!Repro_consensus.Pbft.reset_member}) — node-churn modelling:
    pair with {!crash_member}/{!recover_member} for a literal swap. *)

val corrupt_next_snapshot : t -> shard:int -> unit
(** One-shot fault: the next catch-up snapshot served for this committee
    is tampered before transfer (a Byzantine serving member).  The
    joiner's verification rejects it and the fetch is retried clean —
    regression surface for Section 5.3's verify-before-serve rule. *)

val committee_checkpoints : t -> (int * int * int * int) list
(** Every member's highest checkpoint certificate as
    [(committee, member, seq, root)] rows (members holding none are
    omitted) — the record the checkpoint-agreement oracle reads. *)

val observer_lag : t -> (int * int) list
(** Per committee: how many executed slots the observer trails its most
    advanced member by, as [(committee, slots)] — the bounded-liveness
    oracle's convergence measure (0 everywhere once catch-up is done). *)

type decision_event = { at : float; txid : int; shard : int; commit : bool }

val decision_trace : t -> decision_event list
(** Every Commit_tx/Abort_tx — and every fast-lane delta leg, which is
    always a commit — applied at a shard observer, in application order;
    the observable record the atomicity and durable-decision oracles
    read. *)

val merge_audit : t -> (int * Repro_ledger.Merge.mismatch) list
(** The merge-convergence oracle's evidence: flush any deltas still
    pending in each shard's lane, then re-fold every lane's full history
    from its recorded base values and diff against materialised state.
    Empty iff each replica's state is exactly the canonical fold of its
    delta log (one root per block). *)

val merge_folds : t -> int
(** Total block-boundary folds performed across all shards. *)

val merge_lane_log : t -> shard:int -> int
(** Delta-lane entries ever appended at [shard] — with the applied-table
    dedup this counts each delta leg at most once, the surface the
    duplicated-leg idempotency test reads. *)

val merge_roots : t -> (int * string) list
(** Per shard, the hex chained digest over every block-boundary fold: a
    pure function of the folded delta sets, so equal-seed runs must agree
    replica by replica. *)

val prepare_evidence : t -> shard:int -> txid:int -> bool option
(** The shard observer's recorded quorum outcome for a prepare, if the
    prepare has executed and the transaction is still undecided there
    (evidence is dropped once the decision applies). *)

val registry_size : t -> int
(** Live entries in the coordination registry; bounded by the distinct
    operations of in-flight transactions plus the batches awaiting
    execution (executed or stranded batches are released, the latter
    after a grace period — regression surface for the retry-leak fix). *)

val schedule_reshard :
  t -> at:float -> strategy:[ `Swap_all | `Batched of int ] -> fetch_time:float -> unit
(** Epoch transition (Section 5.3): transitioning replicas go offline for
    [fetch_time] (state synchronization) either all at once or in batches
    of the given size per committee. *)

val advance_epoch :
  t -> at:float -> seed:int64 -> epoch:int -> strategy:[ `Swap_all | `Batched_log ] -> unit
(** The full Section 5 pipeline: derive the epoch's node-to-committee
    assignment from the beacon seed ({!Repro_shard.Assignment.derive}),
    plan the transition in waves of B = log₂(n)
    ({!Repro_shard.Sizing.swap_batch_size}), and run each wave as a
    *literal* committee swap: the departing occupant's consensus state is
    wiped, the slot is offline for the time needed to fetch and verify the
    destination shard's state ({!Repro_shard.State_transfer}), and the
    newcomer rejoins anchored at the committee's latest certified
    checkpoint, replaying the tail from its peers.  Observers (member 0)
    are pinned infrastructure: they transition only under [`Swap_all], and
    then by restart-and-replay, never by state wipe. *)
