open Repro_util

type panel = {
  title : string;
  x_label : string;
  columns : string list;
  rows : (float * float list) list;
}

type figure = { id : string; caption : string; panels : panel list }

let panel ~title ~x_label ~columns ~rows = { title; x_label; columns; rows }

let figure ~id ~caption panels = { id; caption; panels }

let render f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "==== %s: %s ====\n" f.id f.caption);
  List.iter
    (fun p ->
      if p.columns = [] && p.rows = [] then Buffer.add_string buf (p.title ^ "\n")
      else
        Buffer.add_string buf
          (Table.series ~title:p.title ~x_label:p.x_label ~columns:p.columns ~rows:p.rows))
    f.panels;
  Buffer.contents buf

(* The one sanctioned console write of lib/core: the exported figure
   printer that bin/bench call on purpose. *)
let print f = print_string (render f) (* ahl_lint: allow R6 *)

let text_figure ~id ~caption body =
  { id; caption; panels = [ { title = body; x_label = ""; columns = []; rows = [] } ] }

let slug s =
  String.map (fun c -> if ('a' <= Char.lowercase_ascii c && Char.lowercase_ascii c <= 'z') || ('0' <= c && c <= '9') then Char.lowercase_ascii c else '-') s

let to_csv f =
  List.filter_map
    (fun p ->
      if p.columns = [] then None
      else begin
        let buf = Buffer.create 256 in
        Buffer.add_string buf (String.concat "," (p.x_label :: p.columns));
        Buffer.add_char buf '\n';
        List.iter
          (fun (x, ys) ->
            Buffer.add_string buf
              (String.concat "," (List.map (Printf.sprintf "%g") (x :: ys)));
            Buffer.add_char buf '\n')
          p.rows;
        Some (Printf.sprintf "%s-%s.csv" f.id (slug p.title), Buffer.contents buf)
      end)
    f.panels

let save_csv ~dir f =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, contents) ->
      let oc = open_out (Filename.concat dir name) in
      output_string oc contents;
      close_out oc)
    (to_csv f)

(* ---- machine-readable artifacts ----------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_num x =
  if Float.is_nan x then "null"
  else if x = Float.infinity then "1e999"
  else if x = Float.neg_infinity then "-1e999"
  else Printf.sprintf "%g" x

let to_json ?wall_time_s ?jobs f =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "{\"id\":\"%s\",\"caption\":\"%s\"" (json_escape f.id) (json_escape f.caption));
  Option.iter (fun t -> Buffer.add_string buf (Printf.sprintf ",\"wall_time_s\":%.3f" t)) wall_time_s;
  Option.iter (fun j -> Buffer.add_string buf (Printf.sprintf ",\"jobs\":%d" j)) jobs;
  Buffer.add_string buf ",\"panels\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      if p.columns = [] && p.rows = [] then
        (* Preformatted text figure: the body lives in the title. *)
        Buffer.add_string buf (Printf.sprintf "{\"text\":\"%s\"}" (json_escape p.title))
      else begin
        Buffer.add_string buf
          (Printf.sprintf "{\"title\":\"%s\",\"x_label\":\"%s\",\"columns\":[%s],\"rows\":["
             (json_escape p.title) (json_escape p.x_label)
             (String.concat "," (List.map (fun c -> "\"" ^ json_escape c ^ "\"") p.columns)));
        List.iteri
          (fun j (x, ys) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "{\"x\":%s,\"values\":[%s]}" (json_num x)
                 (String.concat "," (List.map json_num ys))))
          p.rows;
        Buffer.add_string buf "]}"
      end)
    f.panels;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let save_json ~dir ?wall_time_s ?jobs f =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir (Printf.sprintf "BENCH_%s.json" f.id)) in
  output_string oc (to_json ?wall_time_s ?jobs f);
  close_out oc
