open Repro_util
open Repro_crypto
open Repro_sim
open Repro_consensus
open Repro_shard

(* ------------------------------------------------------------------ *)
(* Parallel datapoint runner                                            *)
(*                                                                      *)
(* Every datapoint below is an independent seeded simulation, so the    *)
(* sweeps fan across a fixed-size domain pool.  Determinism: tasks      *)
(* share no mutable state (each creates its own Engine/Rng), shared     *)
(* configurations are memoized through keyed once-cells whose values    *)
(* are pure functions of the key, and results are joined in submission  *)
(* order — so the rendered tables are bit-for-bit identical for any     *)
(* worker count.                                                        *)
(* ------------------------------------------------------------------ *)

let jobs_override = Atomic.make None

let jobs_in_use () =
  match Atomic.get jobs_override with Some j -> j | None -> Pool.default_jobs ()

let the_pool : Pool.t option Atomic.t = Atomic.make None

let set_jobs j =
  (match Atomic.get the_pool with Some p -> Pool.shutdown p | None -> ());
  Atomic.set the_pool None;
  Atomic.set jobs_override (Some (if j < 1 then 1 else j))

let pool () =
  match Atomic.get the_pool with
  | Some p -> p
  | None ->
      let p = Pool.create ~jobs:(jobs_in_use ()) in
      Atomic.set the_pool (Some p);
      p

(* Optional observability hub: when installed, the shared runners request
   probes under names derived purely from their run parameters (the memo
   keys), never from scheduling — so hub dumps, which are sorted by name,
   stay byte-identical for any worker count. *)
let the_hub : Repro_obs.Hub.t option Atomic.t = Atomic.make None

let set_hub h = Atomic.set the_hub h

let hub_probe name =
  match Atomic.get the_hub with
  | None -> Repro_obs.Probe.none
  | Some h -> Repro_obs.Hub.probe h name

(* Submit every cell of a row-structured sweep before joining any, then
   join in submission order.  [rows] pairs each x-axis point with the
   thunks producing its column values. *)
let par_cells rows =
  let p = pool () in
  let submitted =
    List.map (fun (x, thunks) -> (x, List.map (fun t -> Pool.submit p t) thunks)) rows
  in
  List.map (fun (x, futures) -> (x, List.map Pool.await futures)) submitted

(* ------------------------------------------------------------------ *)
(* Shared runners (memoized so Figures 8/15/16/17 share one sweep)      *)
(* ------------------------------------------------------------------ *)

let duration ~quick = if quick then 8.0 else 15.0

let warmup = 4.0

type site = Cluster | Gcp4 | Gcp8

let topology_of = function
  | Cluster -> Topology.lan ()
  | Gcp4 -> Topology.gcp 4
  | Gcp8 -> Topology.gcp 8

let cpu_scale_of = function Cluster -> 1.0 | Gcp4 | Gcp8 -> 3.5

(* On WAN deployments the relay deadline must absorb round-trip jitter. *)
let tune_of site (c : Config.t) =
  match site with
  | Cluster -> c
  | Gcp4 | Gcp8 -> { c with Config.relay_timeout = 2.5; relay_tail_prob = 0.005 }

(* Keyed once-cell: when parallel datapoints request the same
   configuration, exactly one computes it and the rest share the cell. *)
let pbft_cache : (string * int * int * int * bool * bool, Harness.result) Memo.t =
  Memo.create ()

let run_pbft ?(quick = false) ?(byzantine = 0) ?(leader_attack = false) ~site ~variant ~n () =
  let site_code = match site with Cluster -> 0 | Gcp4 -> 4 | Gcp8 -> 8 in
  let key = (variant.Config.name, n, byzantine, site_code, quick, leader_attack) in
  Memo.get pbft_cache key (fun () ->
      let probe =
        hub_probe
          (Printf.sprintf "pbft:%s:n=%d:byz=%d:site=%d:quick=%b%s" variant.Config.name n
             byzantine site_code quick
             (if leader_attack then ":atk=stall" else ""))
      in
      (* Fig. 16 right panel: the byzantine clique owns the low member ids,
         so it sits on the early leader slots, wins them with credible
         New_views, and stalls them — each won slot costs the committee one
         timeout-detected view change.  Attack runs bind one client per
         replica (10 clients would hand every intake to the clique once
         f >= 10, and a censored request no honest replica knows about
         never arms a watchdog) and scale the progress timeout to the 15 s
         simulated horizon — the paper's counts come from runs minutes
         long. *)
      let byz_ids, byz_strategy =
        if leader_attack && byzantine > 0 then
          ( Some (List.init byzantine (fun i -> i)),
            Some { Pbft.default_byz_strategy with Pbft.leader_attack = Some Pbft.Leader_stall }
          )
        else (None, None)
      in
      let tune c =
        let c = tune_of site c in
        if leader_attack then { c with Config.progress_timeout = 1.0 } else c
      in
      let clients = if leader_attack then n else 10 in
      Harness.run ~duration:(duration ~quick) ~warmup ~byzantine ?byz_ids ?byz_strategy
        ~cpu_scale:(cpu_scale_of site) ~tune ~probe ~variant ~n
        ~topology:(topology_of site)
        ~workload:(Harness.Open_loop { rate = 2200.0; clients })
        ())

let n_axis ~quick = if quick then [ 7; 19; 43; 79 ] else [ 7; 19; 31; 43; 55; 67; 79 ]

let f_axis ~quick = if quick then [ 1; 10; 25 ] else [ 1; 5; 10; 15; 20; 25 ]

(* ---- Lockstep (Tendermint / IBFT) and Raft baselines -------------- *)

let run_lockstep ~flavour ~n ~clients ~rate ~duration:dur =
  let engine = Engine.create ~seed:1L in
  let keystore = Keys.create_keystore (Engine.rng engine) in
  let metrics = Metrics.create engine in
  let topology = Topology.lan () in
  let network : Lockstep.msg Network.t = Network.create engine ~topology in
  let committee = ref None in
  let nodes =
    Array.init n (fun id ->
        Node.create engine ~id ~inbox_mode:(Inbox.Shared 5000) ~handler:(fun node msg ->
            match !committee with
            | Some c -> Lockstep.handle c ~member:(Node.id node) msg
            | None -> ()))
  in
  Array.iter (Network.register network) nodes;
  let c =
    Lockstep.create ~engine ~keystore ~costs:Cost_model.default ~flavour ~n ~batch_max:200
      ~metrics
      ~send:(fun ~src ~dst ~channel ~bytes m -> Network.send network ~src:nodes.(src) ~dst ~channel ~bytes m)
      ~charge:(fun ~member cost -> Node.charge nodes.(member) cost)
  in
  committee := Some c;
  Lockstep.start c;
  let rng = Rng.create 3L in
  let next = ref 0 in
  for client = 0 to clients - 1 do
    let rec arrival () =
      let req_id = !next in
      incr next;
      let req = Types.request ~req_id ~client ~submitted:(Engine.now engine) () in
      Network.send_external network ~src_region:0 ~dst:(client mod n)
        ~channel:Lockstep.request_channel ~bytes:240 (Lockstep.submit c req);
      Engine.schedule engine
        ~delay:(Rng.exponential rng ~mean:(float_of_int clients /. rate))
        arrival
    in
    Engine.schedule engine ~delay:(Rng.float rng 1.0) arrival
  done;
  Engine.run engine ~until:dur;
  Metrics.throughput metrics ~warmup

let run_raft ~n ~clients ~rate ~duration:dur =
  let engine = Engine.create ~seed:1L in
  let metrics = Metrics.create engine in
  let topology = Topology.lan () in
  let network : Raft.msg Network.t = Network.create engine ~topology in
  let cluster = ref None in
  let nodes =
    Array.init n (fun id ->
        Node.create engine ~id ~inbox_mode:(Inbox.Shared 5000) ~handler:(fun node msg ->
            match !cluster with
            | Some c -> Raft.handle c ~member:(Node.id node) msg
            | None -> ()))
  in
  Array.iter (Network.register network) nodes;
  let c =
    Raft.create ~engine ~costs:Cost_model.default ~n ~batch_max:200 ~metrics
      ~send:(fun ~src ~dst ~channel ~bytes m -> Network.send network ~src:nodes.(src) ~dst ~channel ~bytes m)
      ~charge:(fun ~member cost -> Node.charge nodes.(member) cost)
  in
  cluster := Some c;
  Raft.start c;
  let rng = Rng.create 3L in
  let next = ref 0 in
  for client = 0 to clients - 1 do
    let rec arrival () =
      let req_id = !next in
      incr next;
      let req = Types.request ~req_id ~client ~submitted:(Engine.now engine) () in
      Network.send_external network ~src_region:0 ~dst:(client mod n)
        ~channel:Raft.request_channel ~bytes:240 (Raft.submit c req);
      Engine.schedule engine
        ~delay:(Rng.exponential rng ~mean:(float_of_int clients /. rate))
        arrival
    in
    Engine.schedule engine ~delay:(Rng.float rng 1.0) arrival
  done;
  Engine.run engine ~until:dur;
  Metrics.throughput metrics ~warmup

(* ---- Sharded system runs ------------------------------------------ *)

type shard_run = {
  tps : float;
  s_abort_rate : float;
  ref_busy : float;
  s_latency : float;
  series : (float * float) list;
}

let run_shards ?(quick = false) ?(site = Cluster) ?(mode = System.With_reference)
    ?(concurrency = System.Two_phase_locking) ?(variant = Config.ahl_plus) ?(theta = 0.2)
    ?(workload = Workload.Smallbank) ?(outstanding = 32) ?(fast_lane = false) ?reshard ?dur
    ~shards ~committee_size () =
  let dur = match dur with Some d -> d | None -> if quick then 15.0 else 25.0 in
  let cfg =
    {
      (System.default_config ~shards ~committee_size) with
      System.mode;
      concurrency;
      variant;
      topology = topology_of site;
      cpu_scale = cpu_scale_of site;
      tune = tune_of site;
      fast_lane;
    }
  in
  let sys = System.create cfg in
  let probe =
    let mode_tag =
      match mode with
      | System.With_reference -> "ref"
      | System.Client_driven -> "client"
      | System.Flattened -> "flat"
    in
    let cc_tag =
      match concurrency with System.Two_phase_locking -> "2pl" | System.Wait_die -> "waitdie"
    in
    let wl_tag =
      match workload with
      | Workload.Smallbank -> "sb"
      | Workload.Kvstore { updates_per_tx } -> Printf.sprintf "kvs%d" updates_per_tx
      | Workload.Hot_increments { increment_fraction } ->
          Printf.sprintf "hotinc%g" increment_fraction
    in
    let reshard_tag =
      match reshard with
      | None -> "none"
      | Some `Swap_all -> "swapall"
      | Some (`Batched b) -> "batched" ^ string_of_int b
    in
    hub_probe
      (Printf.sprintf
         "shards:%s:k=%d:n=%d:mode=%s:cc=%s:site=%d:theta=%g:wl=%s:out=%d:reshard=%s:dur=%g:quick=%b%s"
         cfg.System.variant.Config.name shards committee_size mode_tag cc_tag
         (match site with Cluster -> 0 | Gcp4 -> 4 | Gcp8 -> 8)
         theta wl_tag outstanding reshard_tag dur quick
         (* Appended only when on, so every legacy probe name — and with it
            every existing hub dump — is byte-identical. *)
         (if fast_lane then ":lane=1" else ""))
  in
  System.set_probe sys probe;
  (* Keyspace grows with the deployment (more shards serve more users), so
     contention reflects skew rather than an artificially small universe. *)
  let wl =
    Workload.create workload ~keyspace:(Stdlib.max 20_000 (8_000 * shards)) ~theta
      ~rng:(Rng.create 4L)
  in
  Workload.setup wl sys ~initial_balance:5_000;
  Workload.start_closed_loop wl sys ~clients:(4 * shards) ~outstanding;
  (match reshard with
  | None -> ()
  | Some strategy ->
      (* Literal epoch transitions (Fig. 12): each one derives the next
         beacon assignment and swaps the transitioning replicas for real —
         consensus state wiped, snapshot fetched and verified, certified
         checkpoint installed, tail replayed — instead of the old modeled
         fixed offline window. *)
      let strategy =
        match strategy with `Swap_all -> `Swap_all | `Batched _ -> `Batched_log
      in
      System.advance_epoch sys ~at:(dur /. 3.0) ~seed:cfg.System.seed ~epoch:1 ~strategy;
      System.advance_epoch sys ~at:(2.0 *. dur /. 3.0) ~seed:cfg.System.seed ~epoch:2 ~strategy);
  System.run sys ~until:dur;
  (* The Fig.-13 bottleneck measure, exported next to the batch-size and
     pipeline-depth histograms so METRICS_fig13.json tells the whole
     plateau story. *)
  Repro_obs.Probe.set_gauge probe "2pc.ref_busy_fraction" (System.reference_busy_fraction sys);
  {
    tps = System.throughput sys ~warmup;
    s_abort_rate = System.abort_rate sys;
    ref_busy = System.reference_busy_fraction sys;
    s_latency = Stats.mean (System.latency_stats sys);
    series = System.throughput_series sys;
  }

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  Results.text_figure ~id:"table1" ~caption:"Comparison with other sharded blockchains"
    (Table.render
       ~header:[ "System"; "#machines"; "Over-subscription"; "Tx model"; "Distributed tx" ]
       ~rows:
         [
           [ "Elastico"; "800"; "2"; "UTXO"; "no" ];
           [ "OmniLedger"; "60"; "67"; "UTXO"; "no" ];
           [ "RapidChain"; "32"; "125"; "UTXO"; "yes" ];
           [ "Ours"; "1400"; "1"; "General workload"; "yes" ];
         ])

let table2 () =
  let c = Cost_model.default in
  let us x = x *. 1e6 in
  Results.text_figure ~id:"table2" ~caption:"Runtime costs of enclave operations (µs)"
    (Table.render
       ~header:[ "Operation"; "Time (µs)" ]
       ~rows:
         [
           [ "ECDSA signing"; Table.fnum (us c.Cost_model.ecdsa_sign) ];
           [ "ECDSA verification"; Table.fnum (us c.Cost_model.ecdsa_verify) ];
           [ "SHA256"; Table.fnum (us c.Cost_model.sha256) ];
           [ "AHL append"; Table.fnum (us c.Cost_model.ahl_append) ];
           [ "AHLR aggregation (f=8)"; Table.fnum (us (Cost_model.ahlr_aggregate c ~f:8)) ];
           [ "RandomnessBeacon"; Table.fnum (us c.Cost_model.beacon_invoke) ];
           [ "Enclave switch"; Table.fnum (us c.Cost_model.enclave_switch) ];
           [ "Remote attestation"; Table.fnum (us c.Cost_model.remote_attestation) ];
         ])

let table3 () =
  let names = Topology.gcp_region_names in
  let m = Topology.gcp_latency_matrix_ms in
  Results.text_figure ~id:"table3" ~caption:"Latency (ms) between GCP regions"
    (Table.render
       ~header:("zone" :: Array.to_list names)
       ~rows:
         (List.init 8 (fun i ->
              names.(i) :: List.init 8 (fun j -> Table.fnum m.(i).(j)))))

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

let fig2 ?(quick = false) () =
  let dur = duration ~quick in
  let ns = if quick then [ 7; 19; 43 ] else [ 7; 19; 31; 43; 55; 67 ] in
  let vs_n =
    par_cells
      (List.map
         (fun n ->
           ( float_of_int n,
             [
               (fun () ->
                 (run_pbft ~quick ~site:Cluster ~variant:Config.hl ~n ()).Harness.throughput);
               (fun () ->
                 run_lockstep ~flavour:Lockstep.Tendermint ~n ~clients:10 ~rate:2200.0
                   ~duration:dur);
               (fun () -> run_raft ~n ~clients:10 ~rate:2200.0 ~duration:dur);
               (fun () ->
                 run_lockstep ~flavour:Lockstep.Ibft ~n ~clients:10 ~rate:2200.0 ~duration:dur);
             ] ))
         ns)
  in
  let clients_axis = if quick then [ 1; 8; 64 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  let vs_clients =
    par_cells
      (List.map
         (fun clients ->
           let n = 7 in
           let rate = 2200.0 in
           ( float_of_int clients,
             [
               (fun () ->
                 (Harness.run ~duration:dur ~warmup ~variant:Config.hl ~n
                    ~topology:(Topology.lan ())
                    ~workload:(Harness.Closed_loop { clients; outstanding = 8; think = 0.0 })
                    ())
                   .Harness.throughput);
               (fun () -> run_lockstep ~flavour:Lockstep.Tendermint ~n ~clients ~rate ~duration:dur);
               (fun () -> run_raft ~n ~clients ~rate ~duration:dur);
               (fun () -> run_lockstep ~flavour:Lockstep.Ibft ~n ~clients ~rate ~duration:dur);
             ] ))
         clients_axis)
  in
  let columns = [ "HL(PBFT)"; "Tendermint"; "Quorum(Raft)"; "Quorum(IBFT)" ] in
  Results.figure ~id:"fig2" ~caption:"Comparison of BFT protocols"
    [
      Results.panel ~title:"Throughput vs N" ~x_label:"N" ~columns ~rows:vs_n;
      Results.panel ~title:"Throughput vs #clients (N=7)" ~x_label:"clients" ~columns
        ~rows:vs_clients;
    ]

(* ------------------------------------------------------------------ *)
(* Figures 8/9/10 and the derived 15/16/17                             *)
(* ------------------------------------------------------------------ *)

let variant_columns = [ "HL"; "AHL"; "AHL+"; "AHLR" ]

let sweep_variants ~quick ~site ~byzantine ns =
  par_cells
    (List.map
       (fun x ->
         let per_variant variant () =
           let n, byz =
             if byzantine then
               (* x is f: HL runs 3f+1, the attested variants 2f+1. *)
               (Config.n_for_f variant ~f:x, x)
             else (x, 0)
           in
           run_pbft ~quick ~byzantine:byz ~site ~variant ~n ()
         in
         (float_of_int x, List.map per_variant Config.all_variants))
       ns)

let fig8 ?(quick = false) () =
  let no_fail = sweep_variants ~quick ~site:Cluster ~byzantine:false (n_axis ~quick) in
  let with_fail = sweep_variants ~quick ~site:Cluster ~byzantine:true (f_axis ~quick) in
  let tps rs = List.map (fun (x, l) -> (x, List.map (fun r -> r.Harness.throughput) l)) rs in
  Results.figure ~id:"fig8" ~caption:"AHL+ performance on the local cluster"
    [
      Results.panel ~title:"Throughput w/o failures" ~x_label:"N" ~columns:variant_columns
        ~rows:(tps no_fail);
      Results.panel ~title:"Throughput w/ failures (conflicting-message attack)" ~x_label:"f"
        ~columns:variant_columns ~rows:(tps with_fail);
    ]

let fig9 ?(quick = false) () =
  let ns = if quick then [ 7; 43; 79 ] else n_axis ~quick in
  let tps rs = List.map (fun (x, l) -> (x, List.map (fun r -> r.Harness.throughput) l)) rs in
  Results.figure ~id:"fig9" ~caption:"AHL+ performance on GCP"
    [
      Results.panel ~title:"4 regions" ~x_label:"N" ~columns:variant_columns
        ~rows:(tps (sweep_variants ~quick ~site:Gcp4 ~byzantine:false ns));
      Results.panel ~title:"8 regions" ~x_label:"N" ~columns:variant_columns
        ~rows:(tps (sweep_variants ~quick ~site:Gcp8 ~byzantine:false ns));
    ]

let ablation_variants =
  [ Config.hl; Config.ahl; Config.ahl_opt1; Config.ahl_plus; Config.ahlr ]

let ablation_columns = [ "HL"; "AHL"; "AHL+op1"; "AHL+op1,2"; "AHL+op1,2,3" ]

let fig10 ?(quick = false) () =
  let rows_of ~byzantine xs =
    par_cells
      (List.map
         (fun x ->
           let per variant () =
             let n, byz = if byzantine then (Config.n_for_f variant ~f:x, x) else (x, 0) in
             (run_pbft ~quick ~byzantine:byz ~site:Cluster ~variant ~n ()).Harness.throughput
           in
           (float_of_int x, List.map per ablation_variants))
         xs)
  in
  Results.figure ~id:"fig10" ~caption:"Effect of each optimization on throughput"
    [
      Results.panel ~title:"Throughput w/o failures" ~x_label:"N" ~columns:ablation_columns
        ~rows:(rows_of ~byzantine:false [ 7; 19 ]);
      Results.panel ~title:"Throughput w/ failures" ~x_label:"f" ~columns:ablation_columns
        ~rows:(rows_of ~byzantine:true [ 5; 20 ]);
    ]

let fig15 ?(quick = false) () =
  let lat site ns =
    par_cells
      (List.map
         (fun n ->
           ( float_of_int n,
             List.map
               (fun variant () -> (run_pbft ~quick ~site ~variant ~n ()).Harness.latency_mean)
               Config.all_variants ))
         ns)
  in
  Results.figure ~id:"fig15" ~caption:"Consensus latency (s)"
    [
      Results.panel ~title:"Latency on cluster" ~x_label:"N" ~columns:variant_columns
        ~rows:(lat Cluster (n_axis ~quick));
      Results.panel ~title:"Latency on GCP (8 regions)" ~x_label:"N" ~columns:variant_columns
        ~rows:(lat Gcp8 (if quick then [ 7; 43; 79 ] else n_axis ~quick));
    ]

let fig16 ?(quick = false) () =
  (* The attack panel runs the leader-stall adversary (byzantine members
     that win the leader slot now actually attack it) rather than fig8's
     conflicting-message clique, which never campaigns and so never costs
     a view change. *)
  let vc ~byzantine ~leader_attack xs =
    par_cells
      (List.map
         (fun x ->
           ( float_of_int x,
             List.map
               (fun variant () ->
                 let n, byz = if byzantine then (Config.n_for_f variant ~f:x, x) else (x, 0) in
                 float_of_int
                   (run_pbft ~quick ~byzantine:byz ~leader_attack ~site:Cluster ~variant ~n ())
                     .Harness.view_changes)
               Config.all_variants ))
         xs)
  in
  Results.figure ~id:"fig16" ~caption:"Number of view changes"
    [
      Results.panel ~title:"#View-changes, normal case" ~x_label:"N" ~columns:variant_columns
        ~rows:(vc ~byzantine:false ~leader_attack:false (n_axis ~quick));
      Results.panel ~title:"#View-changes, under attack" ~x_label:"f" ~columns:variant_columns
        ~rows:(vc ~byzantine:true ~leader_attack:true (f_axis ~quick));
    ]

let fig17 ?(quick = false) () =
  let cost pick ns =
    par_cells
      (List.map
         (fun n ->
           ( float_of_int n,
             List.map
               (fun variant () -> pick (run_pbft ~quick ~site:Cluster ~variant ~n ()))
               Config.all_variants ))
         ns)
  in
  Results.figure ~id:"fig17" ~caption:"Per-block cost breakdown (observer CPU seconds)"
    [
      Results.panel ~title:"Consensus cost" ~x_label:"N" ~columns:variant_columns
        ~rows:(cost (fun r -> r.Harness.consensus_cost_per_block) (n_axis ~quick));
      Results.panel ~title:"Execution cost" ~x_label:"N" ~columns:variant_columns
        ~rows:(cost (fun r -> r.Harness.execution_cost_per_block) (n_axis ~quick));
    ]

(* ------------------------------------------------------------------ *)
(* Figure 11: shard formation                                          *)
(* ------------------------------------------------------------------ *)

let fig11 ?(quick = false) () =
  let total = 2000 in
  let sizes =
    List.filter_map
      (fun pct ->
        if pct = 0 then None
        else begin
          let fraction = float_of_int pct /. 100.0 in
          let ours =
            Sizing.min_committee_size ~total ~fraction ~rule:Sizing.Ahl_half ~security_bits:20
          in
          let omni =
            Sizing.min_committee_size ~total ~fraction ~rule:Sizing.Pbft_third ~security_bits:20
          in
          Some (float_of_int pct, [ float_of_int omni; float_of_int ours ])
        end)
      (if quick then [ 5; 15; 25; 30 ] else [ 2; 5; 10; 15; 20; 25; 30; 33 ])
  in
  let ns = if quick then [ 32; 128; 512 ] else [ 32; 64; 128; 256; 512 ] in
  let formation site =
    par_cells
      (List.map
         (fun n ->
           let topology = topology_of site in
           ( float_of_int n,
             [
               (fun () -> Randomness.randhound_runtime ~n ~group:16 ~topology);
               (fun () ->
                 let delta = Randomness.measured_delta ~topology ~n in
                 let l_bits = Randomness.paper_l_bits ~n in
                 (Randomness.run ~n ~topology ~delta ~l_bits ()).Randomness.elapsed);
             ] ))
         ns)
  in
  Results.figure ~id:"fig11" ~caption:"Evaluation of shard formation"
    [
      Results.panel ~title:"Committee size vs % Byzantine (N=2000, 2^-20)" ~x_label:"%byz"
        ~columns:[ "OmniLedger(PBFT)"; "Ours(AHL+)" ] ~rows:sizes;
      Results.panel ~title:"Committee formation time, cluster (s)" ~x_label:"N"
        ~columns:[ "RandHound"; "Ours" ] ~rows:(formation Cluster);
      Results.panel ~title:"Committee formation time, GCP (s)" ~x_label:"N"
        ~columns:[ "RandHound"; "Ours" ] ~rows:(formation Gcp8);
    ]

(* ------------------------------------------------------------------ *)
(* Figure 12: reconfiguration                                          *)
(* ------------------------------------------------------------------ *)

let fig12 ?(quick = false) () =
  let sizes = if quick then [ 9 ] else [ 9; 17; 33 ] in
  let strategies n =
    [
      ("No Reshard", None);
      ("Swap all", Some `Swap_all);
      ("Swap Log[n]", Some (`Batched (Sizing.swap_batch_size ~n)));
    ]
  in
  (* One run per (size, strategy); the first size's runs also provide the
     throughput-over-time panel. *)
  let runs =
    let p = pool () in
    let submitted =
      List.map
        (fun n ->
          ( n,
            List.map
              (fun (name, reshard) ->
                ( name,
                  Pool.submit p (fun () ->
                      run_shards ~quick ~shards:2 ~committee_size:n ?reshard
                        ~dur:(if quick then 30.0 else 60.0)
                        ()) ))
              (strategies n) ))
        sizes
    in
    List.map
      (fun (n, rs) -> (n, List.map (fun (name, fut) -> (name, Pool.await fut)) rs))
      submitted
  in
  let avg =
    List.map (fun (n, rs) -> (float_of_int n, List.map (fun (_, r) -> r.tps) rs)) runs
  in
  let n0, first_runs = List.hd runs in
  let over_time = List.map (fun (name, r) -> (name, r.series)) first_runs in
  (* Align the three time series on common bins. *)
  let times =
    List.sort_uniq Float.compare (List.concat_map (fun (_, s) -> List.map fst s) over_time)
  in
  let series_rows =
    List.map
      (fun time ->
        ( time,
          List.map
            (fun (_, s) -> Option.value (List.assoc_opt time s) ~default:0.0)
            over_time ))
      times
  in
  Results.figure ~id:"fig12" ~caption:"Performance during shard reconfiguration"
    [
      Results.panel ~title:"Avg. throughput" ~x_label:"committee size n"
        ~columns:(List.map fst (strategies n0))
        ~rows:avg;
      Results.panel
        ~title:(Printf.sprintf "Throughput over time (n=%d)" n0)
        ~x_label:"time (s)"
        ~columns:(List.map fst (strategies n0))
        ~rows:series_rows;
    ]

(* ------------------------------------------------------------------ *)
(* Figures 13/14/18: sharding performance                              *)
(* ------------------------------------------------------------------ *)

let fig13 ?(quick = false) () =
  let ns = if quick then [ 12; 36 ] else [ 8; 12; 18; 24; 36 ] in
  let tps_rows =
    par_cells
      (List.map
         (fun total ->
           let run ~variant ~csize ~mode () =
             let shards = Stdlib.max 1 (total / csize) in
             (run_shards ~quick ~variant ~mode ~shards ~committee_size:csize ()).tps
           in
           ( float_of_int total,
             [
               run ~variant:Config.ahl_plus ~csize:3 ~mode:System.With_reference;
               run ~variant:Config.hl ~csize:4 ~mode:System.With_reference;
               run ~variant:Config.ahl_plus ~csize:3 ~mode:System.Client_driven;
               run ~variant:Config.hl ~csize:4 ~mode:System.Client_driven;
               run ~variant:Config.ahl_plus ~csize:3 ~mode:System.Flattened;
             ] ))
         ns)
  in
  let thetas = if quick then [ 0.0; 0.99; 1.99 ] else [ 0.0; 0.49; 0.99; 1.49; 1.99 ] in
  let abort_rows =
    par_cells
      (List.map
         (fun theta ->
           ( theta,
             List.map
               (fun total () ->
                 let shards = total / 3 in
                 (run_shards ~quick ~theta ~shards ~committee_size:3 ()).s_abort_rate)
               (if quick then [ 18; 36 ] else [ 8; 18; 36 ]) ))
         thetas)
  in
  Results.figure ~id:"fig13"
    ~caption:"Sharding on the local cluster, with and without the reference committee"
    [
      Results.panel ~title:"Throughput (SmallBank)" ~x_label:"N"
        ~columns:[ "AHL+;w R"; "HL;w R"; "AHL+;w/o R"; "HL;w/o R"; "AHL+;flat" ]
        ~rows:tps_rows;
      Results.panel ~title:"Abort rate vs Zipf" ~x_label:"zipf"
        ~columns:(List.map (fun n -> Printf.sprintf "N=%d" n) (if quick then [ 18; 36 ] else [ 8; 18; 36 ]))
        ~rows:abort_rows;
    ]

(* The fast-lane companion to Fig. 13 (DESIGN §18): the same
   high-contention cluster, under the Hot-increments mix, with the
   commutative lane off vs on.  Lane off, every credit-only increment is
   an ordinary cross-shard 2PC transaction whose lock acquisitions pile up
   on the Zipf head; lane on, the same transactions append deltas with no
   locks and only the conditional sendPayments contend.  The third panel
   sweeps the mix itself (CRDV's read-write-ratio analogue): how much
   commutativity the workload must declare before the lane pays off. *)
let fig13_fastlane ?(quick = false) () =
  let lanes = [ false; true ] in
  let hot = Workload.Hot_increments { increment_fraction = 0.9 } in
  let thetas = if quick then [ 0.0; 1.49; 1.99 ] else [ 0.0; 0.49; 0.99; 1.49; 1.99 ] in
  (* One run per (theta, lane); the abort and throughput panels read the
     same results. *)
  let cells =
    par_cells
      (List.map
         (fun theta ->
           ( theta,
             List.map
               (fun fast_lane () ->
                 run_shards ~quick ~theta ~workload:hot ~fast_lane ~shards:6 ~committee_size:3
                   ())
               lanes ))
         thetas)
  in
  let rows metric = List.map (fun (theta, rs) -> (theta, List.map metric rs)) cells in
  let fractions = if quick then [ 0.0; 0.5; 1.0 ] else [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  let mix_rows =
    par_cells
      (List.map
         (fun increment_fraction ->
           ( increment_fraction,
             List.map
               (fun fast_lane () ->
                 (run_shards ~quick ~theta:1.49
                    ~workload:(Workload.Hot_increments { increment_fraction })
                    ~fast_lane ~shards:6 ~committee_size:3 ())
                   .tps)
               lanes ))
         fractions)
  in
  let lane_columns = [ "lane off"; "lane on" ] in
  Results.figure ~id:"fig13_fastlane"
    ~caption:
      "Commutative fast lane under contention (6 shards, Hot-increments mix): abort rate and \
       throughput vs Zipf with the lane off/on, and throughput vs the mergeable fraction at \
       zipf 1.49"
    [
      Results.panel ~title:"Abort rate vs Zipf" ~x_label:"zipf" ~columns:lane_columns
        ~rows:(rows (fun r -> r.s_abort_rate));
      Results.panel ~title:"Throughput vs Zipf" ~x_label:"zipf" ~columns:lane_columns
        ~rows:(rows (fun r -> r.tps));
      Results.panel ~title:"Throughput vs mergeable fraction (zipf 1.49)"
        ~x_label:"increment fraction" ~columns:lane_columns ~rows:mix_rows;
    ]

let fig14 ?(quick = false) () =
  let points = if quick then [ 162; 486; 972 ] else [ 162; 324; 486; 648; 810; 972 ] in
  let run_at ~csize total =
    let shards = Stdlib.max 1 (total / csize) in
    let r =
      (* The paper drives 432 clients with 128 outstanding requests each;
         the window below saturates the WAN pipeline the same way. *)
      run_shards ~quick ~site:Gcp8 ~mode:System.Client_driven ~shards ~committee_size:csize
        ~outstanding:64 ()
    in
    (r.tps, float_of_int shards)
  in
  let rows =
    List.map
      (fun (x, cells) -> (x, List.map fst cells, List.map snd cells))
      (par_cells
         (List.map
            (fun total ->
              ( float_of_int total,
                [ (fun () -> run_at ~csize:27 total); (fun () -> run_at ~csize:79 total) ] ))
            points))
  in
  Results.figure ~id:"fig14" ~caption:"Sharding performance on GCP (SmallBank, no reference committee)"
    [
      Results.panel ~title:"Throughput" ~x_label:"N" ~columns:[ "12.5%"; "25%" ]
        ~rows:(List.map (fun (x, t, _) -> (x, t)) rows);
      Results.panel ~title:"#Shards" ~x_label:"N" ~columns:[ "12.5%"; "25%" ]
        ~rows:(List.map (fun (x, _, k) -> (x, k)) rows);
    ]

let fig18 ?(quick = false) () =
  let ns = if quick then [ 12; 36 ] else [ 8; 12; 18; 24; 36 ] in
  let rows =
    par_cells
      (List.map
         (fun total ->
           let run ~variant ~csize ~workload () =
             let shards = Stdlib.max 1 (total / csize) in
             (run_shards ~quick ~variant ~workload ~shards ~committee_size:csize ()).tps
           in
           ( float_of_int total,
             [
               run ~variant:Config.ahl_plus ~csize:3 ~workload:Workload.Smallbank;
               run ~variant:Config.hl ~csize:4 ~workload:Workload.Smallbank;
               run ~variant:Config.ahl_plus ~csize:3
                 ~workload:(Workload.Kvstore { updates_per_tx = 3 });
               run ~variant:Config.hl ~csize:4 ~workload:(Workload.Kvstore { updates_per_tx = 3 });
             ] ))
         ns)
  in
  Results.figure ~id:"fig18" ~caption:"Sharding with KVStore vs SmallBank"
    [
      Results.panel ~title:"Sharding throughput" ~x_label:"N"
        ~columns:[ "SB-AHL+"; "SB-HL"; "KVS-AHL+"; "KVS-HL" ]
        ~rows;
    ]

(* ------------------------------------------------------------------ *)
(* Figures 19/20: client sweeps                                        *)
(* ------------------------------------------------------------------ *)

let fig19 ?(quick = false) () =
  let clients_axis = if quick then [ 1; 8; 64 ] else [ 1; 2; 4; 8; 16; 32; 64; 128 ] in
  (* Each BLOCKBENCH client contributes ~32 req/s; the configured rate
     caps the aggregate, so throughput climbs with the client count until
     either the cap or the protocol's capacity binds. *)
  let panel rate =
    par_cells
      (List.map
         (fun clients ->
           let offered = Float.min rate (32.0 *. float_of_int clients) in
           let per variant () =
             (Harness.run ~duration:(duration ~quick) ~warmup ~cpu_scale:3.5 ~tune:(tune_of Gcp8)
                ~variant ~n:19 ~topology:(Topology.gcp 8)
                ~workload:(Harness.Open_loop { rate = offered; clients })
                ())
               .Harness.throughput
           in
           (float_of_int clients, List.map per [ Config.hl; Config.ahl_plus; Config.ahlr ]))
         clients_axis)
  in
  Results.figure ~id:"fig19" ~caption:"Throughput vs workload on GCP (N=19)"
    [
      Results.panel ~title:"256 requests/second" ~x_label:"clients"
        ~columns:[ "HL"; "AHL+"; "AHLR" ] ~rows:(panel 256.0);
      Results.panel ~title:"1024 requests/second" ~x_label:"clients"
        ~columns:[ "HL"; "AHL+"; "AHLR" ] ~rows:(panel 1024.0);
    ]

let fig20 ?(quick = false) () =
  let clients_axis = if quick then [ 1; 8; 64 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  (* SmallBank transactions execute chaincode logic (reads + balance
     updates); KVStore writes are cheap — the only knob that differs. *)
  let smallbank_costs =
    { Cost_model.default with Cost_model.tx_execute = 3.0 *. Cost_model.default.Cost_model.tx_execute }
  in
  let panel costs =
    par_cells
      (List.map
         (fun clients ->
           let per variant () =
             (Harness.run ~duration:(duration ~quick) ~warmup ~costs ~variant ~n:19
                ~topology:(Topology.lan ())
                ~workload:(Harness.Closed_loop { clients; outstanding = 8; think = 0.0 })
                ())
               .Harness.throughput
           in
           (float_of_int clients, List.map per Config.all_variants))
         clients_axis)
  in
  Results.figure ~id:"fig20" ~caption:"Throughput vs workload on the local cluster (N=19)"
    [
      Results.panel ~title:"Smallbank" ~x_label:"clients" ~columns:variant_columns
        ~rows:(panel smallbank_costs);
      Results.panel ~title:"KVStore" ~x_label:"clients" ~columns:variant_columns
        ~rows:(panel Cost_model.default);
    ]

(* ------------------------------------------------------------------ *)
(* Figures 21/22: PoET                                                 *)
(* ------------------------------------------------------------------ *)

let poet_sites = [ ("cluster", Topology.constrained_lan ~latency_ms:100.0 ~bandwidth_mbps:50.0) ]

let poet_cache : (int * float * int * bool, Poet.result) Memo.t = Memo.create ~size:32 ()

let poet_rows ~quick pick topology =
  let ns = if quick then [ 8; 128 ] else [ 2; 8; 32; 128 ] in
  let sizes = if quick then [ 2.0; 8.0 ] else [ 2.0; 4.0; 8.0 ] in
  let dur = if quick then 1200.0 else 1800.0 in
  let rows =
    par_cells
      (List.map
         (fun n ->
           let per block_mb l_bits () =
             Memo.get poet_cache (n, block_mb, l_bits, quick) (fun () ->
                 Poet.run ~n ~topology ~block_mb ~block_time:18.0 ~l_bits ~tx_bytes:500
                   ~duration:dur ())
           in
           ( float_of_int n,
             List.concat_map (fun mb -> [ per mb 0; per mb (Poet.plus_l_bits ~n) ]) sizes ))
         ns)
  in
  List.map (fun (x, cells) -> (x, List.map pick cells)) rows

let poet_columns ~quick =
  let sizes = if quick then [ 2; 8 ] else [ 2; 4; 8 ] in
  List.concat_map (fun mb -> [ Printf.sprintf "PoET %dMB" mb; Printf.sprintf "PoET+ %dMB" mb ]) sizes

let fig21 ?(quick = false) () =
  Results.figure ~id:"fig21" ~caption:"PoET and PoET+ throughput (tps)"
    (List.map
       (fun (name, topo) ->
         Results.panel ~title:("Throughput on " ^ name) ~x_label:"N"
           ~columns:(poet_columns ~quick)
           ~rows:(poet_rows ~quick (fun r -> r.Poet.throughput) topo))
       poet_sites)

let fig22 ?(quick = false) () =
  Results.figure ~id:"fig22" ~caption:"PoET and PoET+ stale-block rate"
    (List.map
       (fun (name, topo) ->
         Results.panel ~title:("Stale rate on " ^ name) ~x_label:"N"
           ~columns:(poet_columns ~quick)
           ~rows:(poet_rows ~quick (fun r -> r.Poet.stale_rate) topo))
       poet_sites)

(* ------------------------------------------------------------------ *)
(* Appendices                                                          *)
(* ------------------------------------------------------------------ *)

let appendix_a () =
  (* Exercise the rollback defense end to end and report each check as
     pass(1)/fail(0). *)
  let engine = Engine.create ~seed:9L in
  let keystore = Keys.create_keystore (Engine.rng engine) in
  let enclave =
    Repro_sgx.Enclave.create ~keystore ~id:0 ~measurement:"appendix-a" ~rng:(Engine.rng engine)
      ~costs:Cost_model.free
      ~charge:(fun _ -> ())
      ~now:(fun () -> Engine.now engine)
  in
  let a2m = Repro_sgx.A2m.create enclave ~watermark_window:128 in
  let ok1 = Repro_sgx.A2m.append a2m ~log:1 ~slot:5 ~digest_tag:111 <> None in
  let stale = Repro_sgx.A2m.seal_state a2m in
  let ok2 = Repro_sgx.A2m.append a2m ~log:1 ~slot:6 ~digest_tag:222 <> None in
  (* Host rolls the enclave back to the stale seal and tries to get slot 6
     re-attested with a different digest. *)
  Repro_sgx.A2m.restart a2m ~resume_with:(Some stale);
  let refused_while_recovering = Repro_sgx.A2m.append a2m ~log:1 ~slot:6 ~digest_tag:999 = None in
  List.iteri (fun i ckp -> Repro_sgx.A2m.record_peer_checkpoint a2m ~peer:(i + 1) ~ckp)
    [ 16; 16; 32; 16 ];
  let hm = Repro_sgx.A2m.estimate_hm a2m ~f:2 in
  let rejects_low = not (Repro_sgx.A2m.finish_recovery a2m ~f:2 ~stable_checkpoint:16) in
  let accepts_high = Repro_sgx.A2m.finish_recovery a2m ~f:2 ~stable_checkpoint:(Option.get hm) in
  let resumed = Repro_sgx.A2m.append a2m ~log:1 ~slot:200 ~digest_tag:7 <> None in
  let b v = if v then 1.0 else 0.0 in
  Results.figure ~id:"appendix_a" ~caption:"Rollback-attack defense (1 = behaves as specified)"
    [
      Results.panel ~title:"Recovery protocol checks" ~x_label:"check#"
        ~columns:[ "result" ]
        ~rows:
          [
            (1.0, [ b ok1 ]) (* append before crash *);
            (2.0, [ b ok2 ]) (* append after seal *);
            (3.0, [ b refused_while_recovering ]);
            (4.0, [ b (hm = Some (16 + 128)) ]) (* HM = ckpM + L *);
            (5.0, [ b rejects_low ]);
            (6.0, [ b accepts_high ]);
            (7.0, [ b resumed ]);
          ];
    ]

let appendix_b () =
  let shards = 10 in
  let mc ~args ~touches =
    let rng = Rng.create 17L in
    let trials = 200_000 in
    let hits = ref 0 in
    for _ = 1 to trials do
      let sh = List.init args (fun _ -> Rng.int rng shards) in
      if List.length (List.sort_uniq Int.compare sh) = touches then incr hits
    done;
    float_of_int !hits /. float_of_int trials
  in
  let cases =
    List.concat_map
      (fun args ->
        List.filter_map
          (fun touches ->
            let analytic = Sizing.cross_shard_probability ~shards ~args ~touches in
            if analytic < 1e-6 then None else Some (args, touches, analytic))
          [ 1; 2; 3; 4 ])
      [ 1; 2; 3; 4 ]
  in
  let rows =
    let p = pool () in
    let submitted =
      List.map
        (fun (args, touches, analytic) ->
          (args, touches, analytic, Pool.submit p (fun () -> mc ~args ~touches)))
        cases
    in
    List.map
      (fun (args, touches, analytic, fut) ->
        ( float_of_int ((args * 10) + touches),
          [ float_of_int args; float_of_int touches; analytic; Pool.await fut ] ))
      submitted
  in
  Results.figure ~id:"appendix_b"
    ~caption:"Probability a d-argument transaction touches x of 10 shards (Eq. 3 vs Monte Carlo)"
    [
      Results.panel ~title:"Cross-shard probability" ~x_label:"(d,x)"
        ~columns:[ "d"; "x"; "analytic"; "monte-carlo" ] ~rows;
    ]

(* ------------------------------------------------------------------ *)
(* Ablation beyond the paper: Section 6.4's concurrency-control hint    *)
(* ------------------------------------------------------------------ *)

let ablation_cc ?(quick = false) () =
  let thetas = if quick then [ 0.0; 0.99; 1.99 ] else [ 0.0; 0.49; 0.99; 1.49; 1.99 ] in
  (* One run per (theta, concurrency); both panels read the same results
     (the sequential version re-ran every simulation per panel). *)
  let cells =
    par_cells
      (List.map
         (fun theta ->
           ( theta,
             List.map
               (fun concurrency () ->
                 run_shards ~quick ~theta ~concurrency ~shards:6 ~committee_size:3 ())
               [ System.Two_phase_locking; System.Wait_die ] ))
         thetas)
  in
  let rows metric = List.map (fun (theta, rs) -> (theta, List.map metric rs)) cells in
  Results.figure ~id:"ablation_cc"
    ~caption:
      "Extension (Section 6.4): 2PL vs wait-die lock waiting under contention (6 shards, SmallBank)"
    [
      Results.panel ~title:"Abort rate vs Zipf" ~x_label:"zipf" ~columns:[ "2PL"; "Wait-die" ]
        ~rows:(rows (fun r -> r.s_abort_rate));
      Results.panel ~title:"Throughput vs Zipf" ~x_label:"zipf" ~columns:[ "2PL"; "Wait-die" ]
        ~rows:(rows (fun r -> r.tps));
    ]

(* ------------------------------------------------------------------ *)
(* Index                                                               *)
(* ------------------------------------------------------------------ *)

let reset_caches () =
  Memo.clear pbft_cache;
  Memo.clear poet_cache

let all_ids =
  [
    "table1"; "table2"; "table3"; "fig2"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13";
    "fig13_fastlane"; "fig14"; "fig15"; "fig16"; "fig17"; "fig18"; "fig19"; "fig20"; "fig21";
    "fig22"; "appendix_a"; "appendix_b"; "ablation_cc";
  ]

let by_id id =
  let const f ?quick:_ () = f () in
  match id with
  | "table1" -> Some (const table1)
  | "table2" -> Some (const table2)
  | "table3" -> Some (const table3)
  | "fig2" -> Some fig2
  | "fig8" -> Some fig8
  | "fig9" -> Some fig9
  | "fig10" -> Some fig10
  | "fig11" -> Some fig11
  | "fig12" -> Some fig12
  | "fig13" -> Some fig13
  | "fig13_fastlane" -> Some fig13_fastlane
  | "fig14" -> Some fig14
  | "fig15" -> Some fig15
  | "fig16" -> Some fig16
  | "fig17" -> Some fig17
  | "fig18" -> Some fig18
  | "fig19" -> Some fig19
  | "fig20" -> Some fig20
  | "fig21" -> Some fig21
  | "fig22" -> Some fig22
  | "appendix_a" -> Some (const appendix_a)
  | "ablation_cc" -> Some ablation_cc
  | "appendix_b" -> Some (const appendix_b)
  | _ -> None
