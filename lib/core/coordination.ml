type op =
  | Single of { txid : int; ops : Repro_ledger.Tx.op list }
  | Begin_tx of { txid : int; participants : int list }
  | Prepare_tx of { txid : int; ops : Repro_ledger.Tx.op list }
  | Vote of { txid : int; shard : int; ok : bool }
  | Commit_tx of { txid : int; ops : Repro_ledger.Tx.op list }
  | Abort_tx of { txid : int; ops : Repro_ledger.Tx.op list }

let txid_of_op = function
  | Single { txid; _ }
  | Begin_tx { txid; _ }
  | Prepare_tx { txid; _ }
  | Vote { txid; _ }
  | Commit_tx { txid; _ }
  | Abort_tx { txid; _ } ->
      txid

(* Tags are handed out once per distinct operation: a client retry (or an
   adversarial duplicate) re-registering the same op gets the original tag
   back, so the registry stays bounded by the set of *distinct* in-flight
   operations rather than the number of messages sent.  [release] drops a
   finished transaction's entries; a late message carrying a released tag
   simply fails [lookup] (the decision is already on every chain). *)
type registry = {
  mutable next : int;
  ops : (int, op) Hashtbl.t; (* tag -> op *)
  index : (op, int) Hashtbl.t; (* structural op -> tag (idempotent re-sends) *)
  by_txid : (int, int list) Hashtbl.t; (* txid -> tags, for compaction *)
}

let create_registry () =
  { next = 0; ops = Hashtbl.create 1024; index = Hashtbl.create 1024; by_txid = Hashtbl.create 256 }

let register r op =
  match Hashtbl.find_opt r.index op with
  | Some tag -> tag
  | None ->
      let tag = r.next in
      r.next <- tag + 1;
      Hashtbl.replace r.ops tag op;
      Hashtbl.replace r.index op tag;
      let txid = txid_of_op op in
      let tags = Option.value (Hashtbl.find_opt r.by_txid txid) ~default:[] in
      Hashtbl.replace r.by_txid txid (tag :: tags);
      tag

let lookup r tag = Hashtbl.find_opt r.ops tag

let release r ~txid =
  match Hashtbl.find_opt r.by_txid txid with
  | None -> ()
  | Some tags ->
      List.iter
        (fun tag ->
          (match Hashtbl.find_opt r.ops tag with
          | Some op -> Hashtbl.remove r.index op
          | None -> ());
          Hashtbl.remove r.ops tag)
        tags;
      Hashtbl.remove r.by_txid txid

let length r = Hashtbl.length r.ops

let op_cost (costs : Repro_crypto.Cost_model.t) op =
  let per_op = costs.Repro_crypto.Cost_model.tx_execute in
  match op with
  | Single { ops; _ } -> float_of_int (List.length ops) *. per_op
  | Prepare_tx { ops; _ } | Commit_tx { ops; _ } | Abort_tx { ops; _ } ->
      (* Lock-tuple reads/writes double the state touches. *)
      2.0 *. float_of_int (List.length ops) *. per_op
  | Begin_tx _ | Vote _ -> per_op
