type op =
  | Single of { txid : int; ops : Repro_ledger.Tx.op list }
  | Begin_tx of { txid : int; participants : int list }
  | Prepare_tx of { txid : int; ops : Repro_ledger.Tx.op list }
  | Vote of { txid : int; shard : int; ok : bool }
  | Commit_tx of { txid : int; ops : Repro_ledger.Tx.op list }
  | Abort_tx of { txid : int; ops : Repro_ledger.Tx.op list }
  | Merge_tx of { txid : int; deltas : (string * Repro_ledger.Tx.delta) list }
    (* Fast-lane delta leg (DESIGN §18): rides the decision position —
       one unconditional leg per participant shard, no prepare/vote. *)
  | Batch of { batch : int; steps : op list }

let rec txid_of_op = function
  | Single { txid; _ }
  | Begin_tx { txid; _ }
  | Prepare_tx { txid; _ }
  | Vote { txid; _ }
  | Commit_tx { txid; _ }
  | Abort_tx { txid; _ }
  | Merge_tx { txid; _ } ->
      txid
  (* Batches carry steps of many transactions; registry compaction keys
     them by a synthetic id disjoint from real (non-negative) txids. *)
  | Batch { batch; steps = _ } -> batch_txid batch

and batch_txid batch = -batch - 1

(* Canonical slot order: all Begins land before any Vote of the same slot,
   so a transaction whose Begin and first Votes share a batch starts before
   it counts votes; within a kind, (txid, shard, ok) breaks ties.  The
   order is a pure function of the step (never of arrival), which is what
   makes a batch's effect independent of submission interleaving. *)
let step_rank = function
  | Begin_tx _ -> 0
  | Vote _ -> 1
  | Single _ -> 2
  | Prepare_tx _ -> 3
  | Commit_tx _ -> 4
  | Abort_tx _ -> 5
  | Merge_tx _ -> 6
  | Batch _ -> 7

let batch_order a b =
  let c = Int.compare (step_rank a) (step_rank b) in
  if c <> 0 then c
  else
    let c = Int.compare (txid_of_op a) (txid_of_op b) in
    if c <> 0 then c
    else
      match (a, b) with
      | Vote { shard = sa; ok = oka; _ }, Vote { shard = sb; ok = okb; _ } ->
          let c = Int.compare sa sb in
          if c <> 0 then c else Bool.compare oka okb
      | _ -> 0

(* Tags are handed out once per distinct operation: a client retry (or an
   adversarial duplicate) re-registering the same op gets the original tag
   back, so the registry stays bounded by the set of *distinct* in-flight
   operations rather than the number of messages sent.  [release] drops a
   finished transaction's entries; a late message carrying a released tag
   simply fails [lookup] (the decision is already on every chain). *)
type registry = {
  mutable next : int;
  ops : (int, op) Hashtbl.t; (* tag -> op *)
  index : (op, int) Hashtbl.t; (* structural op -> tag (idempotent re-sends) *)
  by_txid : (int, int list) Hashtbl.t; (* txid -> tags, for compaction *)
}

let create_registry () =
  { next = 0; ops = Hashtbl.create 1024; index = Hashtbl.create 1024; by_txid = Hashtbl.create 256 }

let register r op =
  match Hashtbl.find_opt r.index op with
  | Some tag -> tag
  | None ->
      let tag = r.next in
      r.next <- tag + 1;
      Hashtbl.replace r.ops tag op;
      Hashtbl.replace r.index op tag;
      let txid = txid_of_op op in
      let tags = Option.value (Hashtbl.find_opt r.by_txid txid) ~default:[] in
      Hashtbl.replace r.by_txid txid (tag :: tags);
      tag

let lookup r tag = Hashtbl.find_opt r.ops tag

let release r ~txid =
  match Hashtbl.find_opt r.by_txid txid with
  | None -> ()
  | Some tags ->
      List.iter
        (fun tag ->
          (match Hashtbl.find_opt r.ops tag with
          | Some op -> Hashtbl.remove r.index op
          | None -> ());
          Hashtbl.remove r.ops tag)
        tags;
      Hashtbl.remove r.by_txid txid

let length r = Hashtbl.length r.ops

let rec op_cost (costs : Repro_crypto.Cost_model.t) op =
  let per_op = costs.Repro_crypto.Cost_model.tx_execute in
  match op with
  | Single { ops; _ } -> float_of_int (List.length ops) *. per_op
  | Prepare_tx { ops; _ } | Commit_tx { ops; _ } | Abort_tx { ops; _ } ->
      (* Lock-tuple reads/writes double the state touches. *)
      2.0 *. float_of_int (List.length ops) *. per_op
  (* Delta legs take no lock tuples: one state touch per delta. *)
  | Merge_tx { deltas; _ } -> float_of_int (List.length deltas) *. per_op
  | Begin_tx _ | Vote _ -> per_op
  | Batch { steps; _ } -> List.fold_left (fun acc s -> acc +. op_cost costs s) 0.0 steps

let rec op_bytes op =
  match op with
  | Single { ops; _ } | Prepare_tx { ops; _ } | Commit_tx { ops; _ } | Abort_tx { ops; _ } ->
      40 * List.length ops
  | Merge_tx { deltas; _ } -> 40 * List.length deltas
  | Begin_tx _ | Vote _ -> 40
  | Batch { steps; _ } -> List.fold_left (fun acc s -> acc + op_bytes s) 16 steps
