(** BLOCKBENCH-style workload drivers for the sharded system.

    - {b KVStore}: the paper's modified driver issues 3 updates per
      transaction on Zipf-popular keys.
    - {b SmallBank}: [sendPayment] between two Zipf-sampled accounts
      (reads and writes two different states).
    - {b Hot increments}: a tunable mix of credit-only increments on hot
      accounts (all-commutative, so the fast lane can take them) and
      sendPayments (conditional debits, always locked) — the contention
      workload of the fig13_fastlane experiment.

    Keys hash across shards, so the cross-shard fraction follows
    Appendix B.  The multi-shard experiments use a closed-loop driver:
    each client keeps a window of transactions outstanding and submits a
    new one when one finishes. *)

type kind =
  | Kvstore of { updates_per_tx : int }
  | Smallbank
  | Hot_increments of { increment_fraction : float }
      (** probability a generated transaction is a two-account credit-only
          increment instead of a sendPayment *)

type t

val create :
  kind ->
  keyspace:int ->
  theta:float ->
  rng:Repro_util.Rng.t ->
  t

val setup : t -> System.t -> initial_balance:int -> unit
(** Materialize initial state in every shard (SmallBank account balances;
    KVStore needs nothing). *)

val next_tx : t -> System.t -> client:int -> Repro_ledger.Tx.t
(** Generate the next transaction (fresh txid, current virtual time). *)

val start_closed_loop :
  t -> System.t -> clients:int -> outstanding:int -> unit
(** Launch the driver: [clients] × [outstanding] windows, resubmitting on
    completion (the modified closed-loop driver of Section 7). *)

val cross_shard_fraction_seen : t -> float
(** Fraction of generated transactions that touched ≥ 2 shards. *)
