(** Result containers and rendering for the paper's tables and figures. *)

type panel = {
  title : string;
  x_label : string;
  columns : string list;
  rows : (float * float list) list;
}

type figure = { id : string; caption : string; panels : panel list }

val panel :
  title:string -> x_label:string -> columns:string list -> rows:(float * float list) list -> panel

val figure : id:string -> caption:string -> panel list -> figure

val render : figure -> string

val print : figure -> unit

val text_figure : id:string -> caption:string -> string -> figure
(** A figure whose body is preformatted text (tables 1 and 3). *)

val to_csv : figure -> (string * string) list
(** One CSV per panel: [(filename, contents)] with an x column followed by
    one column per series — ready for gnuplot/pandas. *)

val save_csv : dir:string -> figure -> unit
(** Write the CSVs under [dir] (created if missing). *)

val to_json : ?wall_time_s:float -> ?jobs:int -> figure -> string
(** The whole figure as one JSON object — id, caption, panels with axis
    points and series values, plus optional wall-time and worker-count
    metadata — so successive bench runs can be diffed by tooling. *)

val save_json : dir:string -> ?wall_time_s:float -> ?jobs:int -> figure -> unit
(** Write {!to_json} to [dir]/BENCH_<id>.json (dir created if missing). *)
