(** One entry point per table/figure of the paper's evaluation.

    Every function runs the required simulations (deterministic seeds) and
    returns a {!Results.figure} whose panels mirror the paper's plot
    panels.  [quick] shrinks sweep points and durations for smoke runs;
    the defaults regenerate the full x-axes at shorter virtual durations
    than the paper's wall-clock runs (shapes are stable well before). *)

val set_jobs : int -> unit
(** Fix the worker-domain count for subsequent figures (replacing any
    live pool).  Without a call, the count comes from [BENCH_JOBS] or
    [Domain.recommended_domain_count].  The rendered figures are
    bit-identical for every worker count; only wall time changes.
    Do not call while a figure is running. *)

val jobs_in_use : unit -> int
(** The worker count the next figure will run with. *)

val set_hub : Repro_obs.Hub.t option -> unit
(** Install (or clear) an observability hub for subsequent figures.  The
    shared runners ([run_pbft] / [run_shards]) request per-run probes
    under names derived purely from their parameters (the memo keys), so
    the hub's sorted-by-name dumps are byte-identical for every [-j]
    worker count.  Runs already cached by the memo tables record nothing;
    call {!reset_caches} first for a complete trace.  Do not swap hubs
    while a figure is running. *)

val reset_caches : unit -> unit
(** Drop the memoized PBFT/PoET sweeps so the next figure recomputes
    them (used by the determinism replay test).  Do not call while a
    figure is running. *)

val table1 : unit -> Results.figure
(** Methodology comparison with other sharded blockchains. *)

val table2 : unit -> Results.figure
(** Enclave operation cost model (the injected Table-2 latencies). *)

val table3 : unit -> Results.figure
(** GCP inter-region latency matrix. *)

val fig2 : ?quick:bool -> unit -> Results.figure
(** BFT implementations (PBFT/Tendermint/IBFT/Raft) vs N and vs #clients. *)

val fig8 : ?quick:bool -> unit -> Results.figure
(** HL/AHL/AHL+/AHLR on the local cluster, without and with failures. *)

val fig9 : ?quick:bool -> unit -> Results.figure
(** Same protocols on GCP with 4 and 8 regions. *)

val fig10 : ?quick:bool -> unit -> Results.figure
(** Ablation of the three optimizations. *)

val fig11 : ?quick:bool -> unit -> Results.figure
(** Committee size vs adversarial power; beacon runtime vs RandHound. *)

val fig12 : ?quick:bool -> unit -> Results.figure
(** Shard reconfiguration: average tps and tps-over-time for no-reshard /
    swap-all / swap-log(n). *)

val fig13 : ?quick:bool -> unit -> Results.figure
(** Sharding on the local cluster with/without the reference committee;
    abort rate vs Zipf coefficient. *)

val fig13_fastlane : ?quick:bool -> unit -> Results.figure
(** Beyond the paper (DESIGN §18): the commutative fast lane off vs on
    under the Hot-increments contention mix — abort rate and throughput
    across Zipf skews, plus throughput vs the mergeable fraction of the
    workload. *)

val fig14 : ?quick:bool -> unit -> Results.figure
(** Scale-out on GCP: throughput and shard count vs N for 12.5% and 25%
    adversaries. *)

val fig15 : ?quick:bool -> unit -> Results.figure
(** Consensus latency vs N (cluster and GCP). *)

val fig16 : ?quick:bool -> unit -> Results.figure
(** View changes vs N (normal case) and vs f (under attack). *)

val fig17 : ?quick:bool -> unit -> Results.figure
(** Consensus vs execution cost per block. *)

val fig18 : ?quick:bool -> unit -> Results.figure
(** Sharding throughput: KVStore vs SmallBank. *)

val fig19 : ?quick:bool -> unit -> Results.figure
(** Throughput vs #clients on GCP at 256 and 1024 req/s offered. *)

val fig20 : ?quick:bool -> unit -> Results.figure
(** Throughput vs #clients on the local cluster (SmallBank, KVStore). *)

val fig21 : ?quick:bool -> unit -> Results.figure
(** PoET vs PoET+ throughput. *)

val fig22 : ?quick:bool -> unit -> Results.figure
(** PoET vs PoET+ stale-block rate. *)

val appendix_a : unit -> Results.figure
(** Rollback-attack defense: recovery outcomes under stale sealed state. *)

val appendix_b : unit -> Results.figure
(** Cross-shard probability: Equation 3 vs Monte-Carlo. *)

val ablation_cc : ?quick:bool -> unit -> Results.figure
(** Beyond the paper (Section 6.4's future work): 2PL vs wait-die lock
    waiting, abort rate and throughput across contention levels. *)

val all_ids : string list

val by_id : string -> (?quick:bool -> unit -> Results.figure) option
