open Repro_crypto

type quorum_proof = {
  aggregator : int;
  stmt_tag : int;
  voters : int list;
  signature : Keys.signature;
}

let proof_tag ~aggregator ~stmt_tag ~voters =
  Repro_util.Det.stable_hash
    (Printf.sprintf "ahlr-agg:%d:%d:%s" aggregator stmt_tag
       (String.concat "," (List.map string_of_int voters)))

let aggregate enclave ~f ~stmt_tag ~votes =
  let costs = Enclave.costs enclave in
  Enclave.charge enclave (Cost_model.ahlr_aggregate costs ~f);
  let keystore = Enclave.keystore enclave in
  let valid_signers =
    List.filter_map
      (fun (s : Keys.signature) ->
        if Keys.verify keystore s ~msg_tag:stmt_tag then Some s.Keys.signer else None)
      votes
  in
  let distinct = List.sort_uniq Int.compare valid_signers in
  if List.length distinct < f + 1 then None
  else begin
    let aggregator = Enclave.id enclave in
    let voters = distinct in
    let signature = Enclave.sign_free enclave ~msg_tag:(proof_tag ~aggregator ~stmt_tag ~voters) in
    Some { aggregator; stmt_tag; voters; signature }
  end

let verify keystore ~f p =
  List.length (List.sort_uniq Int.compare p.voters) >= f + 1
  && p.signature.Keys.signer = p.aggregator
  && Keys.verify keystore p.signature
       ~msg_tag:(proof_tag ~aggregator:p.aggregator ~stmt_tag:p.stmt_tag ~voters:p.voters)
