open Repro_crypto

type quote = {
  enclave_id : int;
  measurement : Sha256.digest;
  signature : Keys.signature;
}

let msg_tag_of ~enclave_id ~measurement =
  Repro_util.Det.stable_hash
    (Printf.sprintf "attest:%d:%s" enclave_id (Sha256.to_raw measurement))

let quote enclave =
  let costs = Enclave.costs enclave in
  Enclave.charge enclave costs.Cost_model.remote_attestation;
  let measurement = Enclave.measurement enclave in
  let enclave_id = Enclave.id enclave in
  {
    enclave_id;
    measurement;
    signature = Enclave.sign_free enclave ~msg_tag:(msg_tag_of ~enclave_id ~measurement);
  }

let verify keystore ~expected_measurement q =
  Sha256.equal q.measurement expected_measurement
  && Keys.verify keystore q.signature
       ~msg_tag:(msg_tag_of ~enclave_id:q.enclave_id ~measurement:q.measurement)
  && q.signature.Keys.signer = q.enclave_id
