open Repro_crypto

type cert = { epoch : int; rnd : int64; signature : Keys.signature }

type outcome =
  | Cert of cert
  | Unlucky
  | Already_invoked
  | Guard_active
  | Genesis_replayed

type t = {
  enclave : Enclave.t;
  counter : Mono_counter.t;
  l_bits : int;
  delta : float;
  served : (int, int) Hashtbl.t; (* epoch -> generation when served *)
}

let create enclave counter ~l_bits ~delta =
  if l_bits < 0 || l_bits > 62 then invalid_arg "Beacon.create: l_bits out of range";
  { enclave; counter; l_bits; delta; served = Hashtbl.create 16 }

let cert_tag ~signer ~epoch ~rnd =
  Repro_util.Det.stable_hash (Printf.sprintf "beacon:%d:%d:%Ld" signer epoch rnd)

let invoke t ~epoch =
  let costs = Enclave.costs t.enclave in
  Enclave.charge t.enclave (costs.Cost_model.beacon_invoke +. costs.Cost_model.enclave_switch);
  let generation = Enclave.generation t.enclave in
  let already =
    match Hashtbl.find_opt t.served epoch with
    | Some g -> g = generation (* served in the current generation *)
    | None -> false
  in
  if already then Already_invoked
  else if epoch = 0 && Mono_counter.read t.counter > 0 then Genesis_replayed
  else if
    epoch <> 0
    && generation > 0
    && Enclave.trusted_time t.enclave -. Enclave.instantiated_at t.enclave < t.delta
  then Guard_active
  else begin
    if epoch = 0 then ignore (Mono_counter.increment t.counter);
    Hashtbl.replace t.served epoch generation;
    (* q and rnd from two independent sgx_read_rand invocations. *)
    let q = if t.l_bits = 0 then 0 else Enclave.read_rand_bits t.enclave t.l_bits in
    let rnd = Enclave.read_rand64 t.enclave in
    if q <> 0 then Unlucky
    else
      let signer = Enclave.id t.enclave in
      let signature = Enclave.sign_free t.enclave ~msg_tag:(cert_tag ~signer ~epoch ~rnd) in
      Cert { epoch; rnd; signature }
  end

let verify keystore c =
  Keys.verify keystore c.signature
    ~msg_tag:(cert_tag ~signer:c.signature.Keys.signer ~epoch:c.epoch ~rnd:c.rnd)

let restart t =
  Enclave.restart t.enclave;
  (* Volatile memory is lost: the served set empties (modelled by the
     generation check in [invoke]). *)
  ()

let l_bits t = t.l_bits

let repeat_probability ~l_bits ~n =
  Float.pow (1.0 -. Float.pow 2.0 (float_of_int (-l_bits))) (float_of_int n)

let expected_certs ~l_bits ~n = float_of_int n *. Float.pow 2.0 (float_of_int (-l_bits))
