open Repro_crypto

type wait_cert = {
  node : int;
  height : int;
  wait : float;
  lucky : bool;
  signature : Keys.signature;
}

type t = {
  enclave : Enclave.t;
  draws : (int, float * float) Hashtbl.t; (* height -> wait, drawn_at *)
  luck : (int, bool) Hashtbl.t; (* height -> q = 0 (drawn once, bound to cert) *)
}

let create enclave = { enclave; draws = Hashtbl.create 32; luck = Hashtbl.create 32 }

let cert_tag ~node ~height ~wait ~lucky =
  Repro_util.Det.stable_hash (Printf.sprintf "poet:%d:%d:%.17g:%b" node height wait lucky)

let draw_wait t ~height ~mean_wait =
  match Hashtbl.find_opt t.draws height with
  | Some (wait, _) -> wait
  | None ->
      Enclave.ecall t.enclave;
      let u =
        (* Uniform in (0, 1] from trusted randomness. *)
        let bits = Enclave.read_rand_bits t.enclave 53 in
        (float_of_int bits +. 1.0) /. 9007199254740992.0
      in
      let wait = -.mean_wait *. log u in
      Hashtbl.replace t.draws height (wait, Enclave.trusted_time t.enclave);
      wait

let certificate t ~height ~l_bits ~now =
  match Hashtbl.find_opt t.draws height with
  | None -> None
  | Some (wait, drawn_at) ->
      if now -. drawn_at +. 1e-12 < wait then None
      else begin
        let costs = Enclave.costs t.enclave in
        Enclave.charge t.enclave costs.Cost_model.poet_cert;
        let lucky =
          match Hashtbl.find_opt t.luck height with
          | Some l -> l
          | None ->
              let l = l_bits = 0 || Enclave.read_rand_bits t.enclave l_bits = 0 in
              Hashtbl.replace t.luck height l;
              l
        in
        let node = Enclave.id t.enclave in
        let signature =
          Enclave.sign_free t.enclave ~msg_tag:(cert_tag ~node ~height ~wait ~lucky)
        in
        Some { node; height; wait; lucky; signature }
      end

let verify keystore c =
  c.signature.Keys.signer = c.node
  && Keys.verify keystore c.signature
       ~msg_tag:(cert_tag ~node:c.node ~height:c.height ~wait:c.wait ~lucky:c.lucky)

let wins a b =
  a.lucky
  && ((not b.lucky) || a.wait < b.wait || (a.wait = b.wait && a.node < b.node))
