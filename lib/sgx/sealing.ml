open Repro_crypto

type 'a sealed = {
  payload : 'a;
  sealer : int;
  measurement : Sha256.digest;
  mac : Keys.signature; (* models AES-GCM under the sealing key *)
}

let mac_tag ~sealer ~measurement payload =
  (* The payload is an arbitrary ['a] with no explicit rendering, so the
     polymorphic hash stays confined to this one site; sealed payloads are
     immediate data in practice, where the hash is layout-stable.
     ahl_lint: allow R8 *)
  let payload_tag = Hashtbl.hash payload in
  Repro_util.Det.stable_hash
    (Printf.sprintf "seal:%d:%s:%d" sealer (Sha256.to_raw measurement) payload_tag)

let seal enclave payload =
  let costs = Enclave.costs enclave in
  Enclave.charge enclave (costs.Cost_model.seal +. costs.Cost_model.enclave_switch);
  let sealer = Enclave.id enclave in
  let measurement = Enclave.measurement enclave in
  {
    payload;
    sealer;
    measurement;
    mac = Enclave.sign_free enclave ~msg_tag:(mac_tag ~sealer ~measurement payload);
  }

let unseal enclave blob =
  Enclave.ecall enclave;
  let ok =
    blob.sealer = Enclave.id enclave
    && Sha256.equal blob.measurement (Enclave.measurement enclave)
    && Keys.verify (Enclave.keystore enclave) blob.mac
         ~msg_tag:(mac_tag ~sealer:blob.sealer ~measurement:blob.measurement blob.payload)
  in
  if ok then Some blob.payload else None

let tamper blob payload = { blob with payload }

let sealed_by blob = blob.sealer
