open Repro_crypto

type proof = {
  signer : int;
  log : int;
  slot : int;
  digest_tag : int;
  signature : Keys.signature;
}

type snapshot = (int * int * int) list
(* (log, slot, digest_tag) triples *)

type t = {
  enclave : Enclave.t;
  mutable entries : (int * int, int) Hashtbl.t; (* (log, slot) -> digest_tag *)
  watermark_window : int;
  mutable recovering : bool;
  mutable peer_checkpoints : (int, int) Hashtbl.t;
  mutable hm : int option;
}

let create enclave ~watermark_window =
  if watermark_window <= 0 then
    Repro_util.Invariant.fail "A2m.create: watermark window %d must be positive" watermark_window;
  {
    enclave;
    entries = Hashtbl.create 256;
    watermark_window;
    recovering = false;
    peer_checkpoints = Hashtbl.create 8;
    hm = None;
  }

let enclave t = t.enclave

let proof_tag ~signer ~log ~slot ~digest_tag =
  Repro_util.Det.stable_hash (Printf.sprintf "a2m:%d:%d:%d:%d" signer log slot digest_tag)

let append t ~log ~slot ~digest_tag =
  let costs = Enclave.costs t.enclave in
  Enclave.charge t.enclave costs.Cost_model.ahl_append;
  if t.recovering then None
  else
    match Hashtbl.find_opt t.entries (log, slot) with
    | Some existing when existing <> digest_tag -> None (* equivocation refused *)
    | Some _ | None ->
        Hashtbl.replace t.entries (log, slot) digest_tag;
        let signer = Enclave.id t.enclave in
        let signature =
          Enclave.sign_free t.enclave ~msg_tag:(proof_tag ~signer ~log ~slot ~digest_tag)
        in
        Some { signer; log; slot; digest_tag; signature }

let lookup t ~log ~slot = Hashtbl.find_opt t.entries (log, slot)

let verify keystore p =
  p.signature.Keys.signer = p.signer
  && Keys.verify keystore p.signature
       ~msg_tag:(proof_tag ~signer:p.signer ~log:p.log ~slot:p.slot ~digest_tag:p.digest_tag)

let truncate_below t ~slot =
  let keep = Hashtbl.create (Hashtbl.length t.entries) in
  Repro_util.Det.iter ~compare:Repro_util.Det.int_pair
    (fun (l, s) d -> if s >= slot then Hashtbl.replace keep (l, s) d)
    t.entries;
  t.entries <- keep

let seal_state t =
  let snapshot =
    List.map
      (fun ((l, s), d) -> (l, s, d))
      (Repro_util.Det.bindings ~compare:Repro_util.Det.int_pair t.entries)
  in
  Sealing.seal t.enclave snapshot

let restart t ~resume_with =
  Enclave.restart t.enclave;
  t.entries <- Hashtbl.create 256;
  (match resume_with with
  | None -> ()
  | Some blob -> (
      match Sealing.unseal t.enclave blob with
      | None -> () (* tampered or foreign blob: start empty *)
      | Some snapshot ->
          List.iter (fun (l, s, d) -> Hashtbl.replace t.entries (l, s) d) snapshot));
  t.recovering <- true;
  t.peer_checkpoints <- Hashtbl.create 8;
  t.hm <- None

let is_recovering t = t.recovering

let highest_attested t =
  Repro_util.Det.fold ~compare:Repro_util.Det.int_pair
    (fun (_, s) _ acc -> Stdlib.max acc s)
    t.entries (-1)

let record_peer_checkpoint t ~peer ~ckp =
  if t.recovering && peer <> Enclave.id t.enclave then
    Hashtbl.replace t.peer_checkpoints peer ckp

let estimate_hm t ~f =
  if f < 0 then Repro_util.Invariant.fail "A2m.estimate_hm: f = %d must be non-negative" f;
  let responses = List.map snd (Repro_util.Det.bindings ~compare:Int.compare t.peer_checkpoints) in
  if List.length responses < f + 1 then None
  else begin
    (* ckpM = (f+1)-th smallest response: at least f other replicas report
       values <= ckpM, so by quorum intersection no stable checkpoint the
       pre-crash enclave saw can exceed it. *)
    let sorted = List.sort Int.compare responses in
    let ckp_m = List.nth sorted f in
    let hm = ckp_m + t.watermark_window in
    t.hm <- Some hm;
    Some hm
  end

let finish_recovery t ~f ~stable_checkpoint =
  if not t.recovering then true
  else
    match (match t.hm with Some hm -> Some hm | None -> estimate_hm t ~f) with
    | None -> false
    | Some hm ->
        if stable_checkpoint >= hm then begin
          t.recovering <- false;
          true
        end
        else false
