type state = Started | Preparing of int | Committed | Aborted

type event =
  | Begin of { participants : int list }
  | Prepare_ok of { shard : int }
  | Prepare_not_ok of { shard : int }
  | Client_abort

type decision = No_change | Now_started | Now_committed | Now_aborted

type record = {
  mutable state : state;
  participants : (int, unit) Hashtbl.t;
  voted : (int, unit) Hashtbl.t;
}

type t = {
  txs : (int, record) Hashtbl.t;
  mutable committed : int;
  mutable aborted : int;
}

let create () = { txs = Hashtbl.create 256; committed = 0; aborted = 0 }

let state_of t ~txid = Option.map (fun r -> r.state) (Hashtbl.find_opt t.txs txid)

let finish t r outcome =
  r.state <- outcome;
  (match outcome with
  | Committed -> t.committed <- t.committed + 1
  | Aborted -> t.aborted <- t.aborted + 1
  | Started | Preparing _ -> ());
  match outcome with Committed -> Now_committed | _ -> Now_aborted

let step t ~txid event =
  match (Hashtbl.find_opt t.txs txid, event) with
  | None, Begin { participants } ->
      let distinct = List.sort_uniq Int.compare participants in
      (match distinct with
      | [] -> Repro_sim.Sim_error.invalid "Reference.step: participants must be non-empty"
      | _ :: _ -> ());
      let table = Hashtbl.create 4 in
      List.iter (fun s -> Hashtbl.replace table s ()) distinct;
      Hashtbl.replace t.txs txid
        { state = Preparing (List.length distinct); participants = table; voted = Hashtbl.create 4 };
      Now_started
  | None, (Prepare_ok _ | Prepare_not_ok _ | Client_abort) -> No_change
  | Some _, Begin _ -> No_change
  | Some r, Prepare_ok { shard } -> (
      match r.state with
      | Preparing remaining when Hashtbl.mem r.participants shard && not (Hashtbl.mem r.voted shard)
        ->
          Hashtbl.replace r.voted shard ();
          if remaining <= 1 then finish t r Committed
          else begin
            r.state <- Preparing (remaining - 1);
            No_change
          end
      | Preparing _ | Started | Committed | Aborted -> No_change)
  | Some r, Prepare_not_ok { shard } -> (
      match r.state with
      | Preparing _ when Hashtbl.mem r.participants shard && not (Hashtbl.mem r.voted shard) ->
          Hashtbl.replace r.voted shard ();
          finish t r Aborted
      | Preparing _ | Started | Committed | Aborted -> No_change)
  | Some r, Client_abort -> (
      match r.state with
      | Preparing _ | Started -> finish t r Aborted
      | Committed | Aborted -> No_change)

let stats t =
  let in_flight =
    Repro_util.Det.fold ~compare:Int.compare
      (fun _ r acc -> match r.state with Preparing _ | Started -> acc + 1 | _ -> acc)
      t.txs 0
  in
  (in_flight, t.committed, t.aborted)
