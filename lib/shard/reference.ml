type state = Started | Preparing of int | Committed | Aborted

type event =
  | Begin of { participants : int list }
  | Prepare_ok of { shard : int }
  | Prepare_not_ok of { shard : int }
  | Client_abort

type decision = No_change | Now_started | Now_committed | Now_aborted

type record = {
  mutable state : state;
  participants : (int, unit) Hashtbl.t;
  voted : (int, unit) Hashtbl.t;
}

type t = {
  txs : (int, record) Hashtbl.t;
  early : (int, (int * bool) list) Hashtbl.t;
      (* votes that arrived before the transaction's Begin (the pipelined
         commit path dispatches prepares without waiting for Begin's
         consensus slot), newest first; replayed in canonical shard order
         when the Begin lands *)
  mutable committed : int;
  mutable aborted : int;
}

let create () =
  { txs = Hashtbl.create 256; early = Hashtbl.create 64; committed = 0; aborted = 0 }

let state_of t ~txid = Option.map (fun r -> r.state) (Hashtbl.find_opt t.txs txid)

let early_votes t = Hashtbl.length t.early

let finish t r outcome =
  r.state <- outcome;
  (match outcome with
  | Committed -> t.committed <- t.committed + 1
  | Aborted -> t.aborted <- t.aborted + 1
  | Started | Preparing _ -> ());
  match outcome with Committed -> Now_committed | _ -> Now_aborted

let apply_vote t r ~shard ~ok =
  match r.state with
  | Preparing remaining when Hashtbl.mem r.participants shard && not (Hashtbl.mem r.voted shard)
    ->
      Hashtbl.replace r.voted shard ();
      if not ok then finish t r Aborted
      else if remaining <= 1 then finish t r Committed
      else begin
        r.state <- Preparing (remaining - 1);
        No_change
      end
  | Preparing _ | Started | Committed | Aborted -> No_change

let buffer_early t ~txid ~shard ~ok =
  let prior = Option.value (Hashtbl.find_opt t.early txid) ~default:[] in
  Hashtbl.replace t.early txid ((shard, ok) :: prior);
  No_change

let step t ~txid event =
  match (Hashtbl.find_opt t.txs txid, event) with
  | None, Begin { participants } ->
      let distinct = List.sort_uniq Int.compare participants in
      (match distinct with
      | [] -> Repro_sim.Sim_error.invalid "Reference.step: participants must be non-empty"
      | _ :: _ -> ());
      let table = Hashtbl.create 4 in
      List.iter (fun s -> Hashtbl.replace table s ()) distinct;
      let r =
        { state = Preparing (List.length distinct); participants = table; voted = Hashtbl.create 4 }
      in
      Hashtbl.replace t.txs txid r;
      (* Replay buffered early votes in canonical (shard, outcome) order so
         the Begin's net transition is a pure function of the vote *set*;
         the machine is idempotent per shard, so duplicates are inert. *)
      let early = Option.value (Hashtbl.find_opt t.early txid) ~default:[] in
      Hashtbl.remove t.early txid;
      let early =
        List.sort_uniq
          (fun (s1, ok1) (s2, ok2) ->
            let c = Int.compare s1 s2 in
            if c <> 0 then c else Bool.compare ok1 ok2)
          early
      in
      List.fold_left
        (fun acc (shard, ok) ->
          match acc with
          | Now_committed | Now_aborted -> acc
          | No_change | Now_started -> (
              match apply_vote t r ~shard ~ok with No_change -> acc | d -> d))
        Now_started early
  | None, Prepare_ok { shard } -> buffer_early t ~txid ~shard ~ok:true
  | None, Prepare_not_ok { shard } -> buffer_early t ~txid ~shard ~ok:false
  | None, Client_abort -> No_change
  | Some _, Begin _ -> No_change
  | Some r, Prepare_ok { shard } -> apply_vote t r ~shard ~ok:true
  | Some r, Prepare_not_ok { shard } -> apply_vote t r ~shard ~ok:false
  | Some r, Client_abort -> (
      match r.state with
      | Preparing _ | Started -> finish t r Aborted
      | Committed | Aborted -> No_change)

let step_batch t steps = List.map (fun (txid, event) -> (txid, step t ~txid event)) steps

let stats t =
  let in_flight =
    Repro_util.Det.fold ~compare:Int.compare
      (fun _ r acc -> match r.state with Preparing _ | Started -> acc + 1 | _ -> acc)
      t.txs 0
  in
  (in_flight, t.committed, t.aborted)
