open Repro_util

type rule = Pbft_third | Ahl_half

let tolerance rule ~n =
  match rule with Pbft_third -> (n - 1) / 3 | Ahl_half -> (n - 1) / 2

let log_pr_faulty ~total ~byzantine ~n rule =
  let f = tolerance rule ~n in
  Logspace.hypergeom_log_tail ~total ~bad:byzantine ~draws:n ~at_least:(f + 1)

let pr_faulty_committee ~total ~byzantine ~n rule = exp (log_pr_faulty ~total ~byzantine ~n rule)

let log2_pr_faulty ~total ~byzantine ~n rule = log_pr_faulty ~total ~byzantine ~n rule /. log 2.0

let min_committee_size ~total ~fraction ~rule ~security_bits =
  if fraction < 0.0 || fraction >= 1.0 then
    Repro_sim.Sim_error.invalid "Sizing.min_committee_size: fraction %g outside [0, 1)" fraction;
  let byzantine = int_of_float (Float.round (fraction *. float_of_int total)) in
  let target = -.float_of_int security_bits in
  let rec search n =
    if n > total then total
    else if log2_pr_faulty ~total ~byzantine ~n rule <= target then n
    else search (n + 1)
  in
  search 1

let max_shards ~total ~fraction ~rule ~security_bits =
  let n = min_committee_size ~total ~fraction ~rule ~security_bits in
  (Int.max 1 (total / n), n)

let swap_batch_size ~n =
  Int.max 1 (int_of_float (Float.round (log (float_of_int (Int.max 2 n)) /. log 2.0)))

let pr_epoch_transition_faulty ~total ~byzantine ~n ~k ~batch rule =
  (* Expected number of intermediate committees during one transition. *)
  let intermediates =
    float_of_int n *. float_of_int (k - 1) /. float_of_int k /. float_of_int (Int.max 1 batch)
  in
  let per = pr_faulty_committee ~total ~byzantine ~n rule in
  Float.min 1.0 (intermediates *. per)

(* Stirling numbers of the second kind, S(d, x), by the standard DP. *)
let stirling2 d =
  let table = Array.make_matrix (d + 1) (d + 1) 0.0 in
  table.(0).(0) <- 1.0;
  for i = 1 to d do
    for j = 1 to i do
      table.(i).(j) <- (float_of_int j *. table.(i - 1).(j)) +. table.(i - 1).(j - 1)
    done
  done;
  table.(d)

let cross_shard_probability ~shards ~args ~touches =
  if touches < 1 || touches > Int.min args shards then 0.0
  else begin
    let s = stirling2 args in
    (* P(X = x) = C(k, x) · x! · S(d, x) / k^d *)
    let log_p =
      Logspace.log_choose shards touches
      +. Logspace.log_gamma (float_of_int (touches + 1))
      +. log s.(touches)
      -. (float_of_int args *. log (float_of_int shards))
    in
    exp log_p
  end

let expected_cross_shard_fraction ~shards ~args =
  if shards <= 1 || args <= 1 then if shards <= 1 then 0.0 else 0.0
  else 1.0 -. cross_shard_probability ~shards ~args ~touches:1
