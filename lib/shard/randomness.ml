open Repro_util
open Repro_crypto
open Repro_sim
module Enclave = Repro_sgx.Enclave
module Beacon = Repro_sgx.Beacon
module Mono_counter = Repro_sgx.Mono_counter

type outcome = {
  rnd : int64;
  rounds : int;
  elapsed : float;
  certificates : int;
  messages : int;
}

let paper_l_bits ~n =
  let logn = log (float_of_int (Int.max 2 n)) /. log 2.0 in
  Int.max 1 (int_of_float (Float.round (logn -. (log logn /. log 2.0))))

let measured_delta ~topology ~n =
  (* Maximum propagation of a 1 KB message across the deployment, tripled
     (the paper measured 2-4.5 s on the cluster, 5.9-15 s on GCP, growing
     with n through gossip depth). *)
  let regions = Topology.regions topology in
  let rng = Rng.create 11L in
  let worst = ref 0.0 in
  for src = 0 to regions - 1 do
    for dst = 0 to regions - 1 do
      for _ = 1 to 8 do
        let l = Topology.latency topology rng ~src_region:src ~dst_region:dst in
        if l > !worst then worst := l
      done
    done
  done;
  let hops = Float.ceil (log (float_of_int (Int.max 2 n)) /. log 8.0) in
  let base = (!worst +. Topology.transfer_time topology ~bytes:1024) *. hops in
  (* Conservative floor growing with gossip fan-out, scaled further on
     multi-region deployments (the paper measured 2-4.5 s on the cluster
     and 5.9-15 s on GCP). *)
  let floor = 0.7 +. (0.002 *. float_of_int n) in
  let region_factor = 1.0 +. (float_of_int (Topology.regions topology - 1) /. 3.5) in
  3.0 *. region_factor *. Float.max base floor

let run ?(seed = 5L) ~n ~topology ~delta ~l_bits ?(byzantine_withhold = 0) () =
  let engine = Engine.create ~seed in
  let keystore = Keys.create_keystore (Engine.rng engine) in
  let costs = Cost_model.default in
  let beacons =
    Array.init n (fun id ->
        let enclave =
          Enclave.create ~keystore ~id ~measurement:"beacon" ~rng:(Engine.rng engine) ~costs
            ~charge:(fun _ -> ())
            ~now:(fun () -> Engine.now engine)
        in
        Beacon.create enclave (Mono_counter.create ()) ~l_bits ~delta)
  in
  let withholds id = id < byzantine_withhold in
  let rng = Rng.split_named (Engine.rng engine) "beacon-net" in
  let messages = ref 0 in
  let locked : int64 option array = Array.make n None in
  let finished = ref None in
  (* (rounds, certificates, lock-in time) *)
  let rec round ~epoch ~rounds =
    Array.fill locked 0 n None;
    let best : (int, int64) Hashtbl.t = Hashtbl.create n in
    let certs = ref 0 in
    (* Every node invokes its enclave at the start of the round. *)
    Array.iteri
      (fun id beacon ->
        match Beacon.invoke beacon ~epoch with
        | Beacon.Cert cert when not (withholds id) ->
            incr certs;
            (* Broadcast: each peer receives after a jittered delay below ∆. *)
            for dst = 0 to n - 1 do
              incr messages;
              let src_region = Topology.region_of_node topology id in
              let dst_region = Topology.region_of_node topology dst in
              let delay =
                Topology.latency topology rng ~src_region ~dst_region
                +. Topology.transfer_time topology ~bytes:1024
              in
              Engine.schedule engine ~delay (fun () ->
                  if Beacon.verify keystore cert then begin
                    let cur = Hashtbl.find_opt best dst in
                    match cur with
                    | Some r when Int64.unsigned_compare r cert.Beacon.rnd <= 0 -> ()
                    | Some _ | None -> Hashtbl.replace best dst cert.Beacon.rnd
                  end)
            done
        | Beacon.Cert _ (* withheld *) | Beacon.Unlucky | Beacon.Already_invoked
        | Beacon.Guard_active | Beacon.Genesis_replayed ->
            ())
      beacons;
    (* After ∆, nodes lock in the lowest rnd they have seen. *)
    Engine.schedule engine ~delay:delta (fun () ->
        let any = ref false in
        for id = 0 to n - 1 do
          match Hashtbl.find_opt best id with
          | Some r ->
              locked.(id) <- Some r;
              any := true
          | None -> ()
        done;
        if !any then finished := Some (rounds, !certs, Engine.now engine)
        else round ~epoch:(epoch + 1) ~rounds:(rounds + 1))
  in
  round ~epoch:1 ~rounds:1;
  (* Run until a round succeeds. *)
  let rec drive horizon =
    Engine.run engine ~until:horizon;
    if Option.is_none !finished then drive (horizon +. (10.0 *. delta))
  in
  drive (2.0 *. delta);
  let rounds, certificates, lock_time = Option.get !finished in
  (* Agreement check: all honest nodes locked the same value. *)
  let values = Array.to_list locked |> List.filter_map Fun.id |> List.sort_uniq Int64.compare in
  (match values with
  | [ _ ] -> ()
  | _ -> Sim_error.invalid "Randomness.run: honest nodes disagree on rnd");
  {
    rnd = List.hd values;
    rounds;
    elapsed = lock_time;
    certificates;
    messages = !messages;
  }

let randhound_runtime ~n ~group ~topology =
  (* RandHound partitions n nodes into groups of c = [group]; each node
     creates and verifies O(c²) PVSS shares (public-key ops), the leader
     collects group transcripts, and the protocol completes in a constant
     number of communication rounds over the deployment's diameter. *)
  let pk_op = 1.0e-3 in
  let c = float_of_int group in
  (* The transcript carries O(N·c²) PVSS shares; producing and verifying
     them is the dominant cost (tens of seconds at N = 512). *)
  let per_node = c *. c *. pk_op in
  let leader = float_of_int n *. c *. c *. pk_op in
  let rng = Rng.create 3L in
  let regions = Topology.regions topology in
  let diameter = ref 0.0 in
  for src = 0 to regions - 1 do
    for dst = 0 to regions - 1 do
      let l = Topology.latency topology rng ~src_region:src ~dst_region:dst in
      if l > !diameter then diameter := l
    done
  done;
  let rounds = 6.0 in
  per_node +. leader +. (rounds *. !diameter)
