(** Shard state transfer for epoch transitions (Section 5.3).

    A node joining a committee fetches the shard's state from current
    members and must verify it before serving: the package carries the
    serialized snapshot and the state root its block headers commit to;
    the joiner recomputes the root and compares.  A Byzantine member
    serving a doctored snapshot is caught immediately. *)

type package

val pack : Repro_ledger.State.t -> package
(** What a serving member sends: snapshot + claimed root. *)

val claimed_root : package -> Repro_crypto.Sha256.digest

val size_bytes : package -> int
(** Serialized size estimate, for transfer-time modeling. *)

val tamper : package -> key:string -> value:string -> package
(** Byzantine server: alter one entry — or inject a foreign one — without
    updating the root, so the package no longer hashes to what it claims. *)

val verify_and_restore :
  package -> expected_root:Repro_crypto.Sha256.digest -> (Repro_ledger.State.t, string) result
(** The joiner's check: the package's own integrity (root matches content)
    and agreement with the root learned from the committee's chain. *)

val transfer_time : Repro_sim.Topology.t -> package -> float
(** Seconds to pull the package over one link of the topology. *)
