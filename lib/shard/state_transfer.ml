open Repro_crypto
open Repro_ledger

type package = {
  entries : (string * State.value) list;
  root : Sha256.digest;
}

let pack state = { entries = State.snapshot state; root = State.root state }

let claimed_root p = p.root

let size_bytes p =
  List.fold_left
    (fun acc (k, v) -> acc + String.length k + String.length v.State.data + 12)
    64 p.entries

let tamper p ~key ~value =
  let entries =
    if List.exists (fun (k, _) -> k = key) p.entries then
      List.map
        (fun (k, v) -> if k = key then (k, { v with State.data = value }) else (k, v))
        p.entries
    else (key, { State.data = value; version = 0 }) :: p.entries
  in
  { p with entries }

let verify_and_restore p ~expected_root =
  let state = State.restore p.entries in
  let actual = State.root state in
  if not (Sha256.equal actual p.root) then Error "package root does not match its content"
  else if not (Sha256.equal actual expected_root) then
    Error "snapshot disagrees with the committee's state root"
  else Ok state

let transfer_time topology p = Repro_sim.Topology.transfer_time topology ~bytes:(size_bytes p)
