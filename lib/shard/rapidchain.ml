open Repro_ledger

type t = { utxos : Utxo.t array }

let create ~shards =
  if shards <= 0 then
    Repro_sim.Sim_error.invalid "Rapidchain.create: shards %d not positive" shards;
  { utxos = Array.init shards (fun _ -> Utxo.create ()) }

let utxo_of_shard t shard = t.utxos.(shard)

let mint t ~shard ~owner ~amount = Utxo.mint t.utxos.(shard) ~owner ~amount

type split_outcome = {
  committed : bool;
  migrated_leftovers : (int * Utxo.coin) list;
}

let cross_shard_transfer t ~inputs ~output_shard ~owner =
  (* Leg 1..m: each input shard spends Iᵢ and the output shard mints the
     migrated coin Iᵢ′.  The legs are independent single-shard
     transactions — exactly RapidChain's construction. *)
  let migrated =
    List.filter_map
      (fun (shard, coin_id) ->
        match Utxo.coin t.utxos.(shard) coin_id with
        | None -> None
        | Some c -> (
            match
              Utxo.apply t.utxos.(shard)
                { Utxo.inputs = [ coin_id ]; outputs = [ (owner ^ "!burned", c.Utxo.amount) ] }
            with
            | Error _ -> None
            | Ok _ ->
                (* The value reappears in the output shard as Iᵢ′. *)
                Some (output_shard, Utxo.mint t.utxos.(output_shard) ~owner ~amount:c.Utxo.amount)))
      inputs
  in
  if List.length migrated <> List.length inputs then
    (* Some leg failed; the successful migrations are NOT rolled back. *)
    { committed = false; migrated_leftovers = migrated }
  else begin
    (* Final leg: spend the migrated coins into the output O. *)
    let total =
      List.fold_left (fun acc (_, c) -> acc + c.Utxo.amount) 0 migrated
    in
    match
      Utxo.apply t.utxos.(output_shard)
        {
          Utxo.inputs = List.map (fun (_, c) -> c.Utxo.id) migrated;
          outputs = [ (owner, total) ];
        }
    with
    | Ok _ -> { committed = true; migrated_leftovers = [] }
    | Error _ -> { committed = false; migrated_leftovers = migrated }
  end

let account_transfer states ~debits ~credit =
  let succeeded =
    List.filter_map
      (fun (shard, account, amount) ->
        let state = states.(shard) in
        if Executor.balance state account >= amount then begin
          Executor.set_balance state account (Executor.balance state account - amount);
          Some account
        end
        else None)
      debits
  in
  if List.length succeeded = List.length debits then begin
    let shard, account, amount = credit in
    Executor.set_balance states.(shard) account (Executor.balance states.(shard) account + amount);
    `Committed
  end
  else
    (* Partial execution: debited accounts stay debited (no rollback) and
       the credit never happens — the Figure 4 atomicity violation. *)
    `Partial succeeded
