open Repro_util

type t = { epoch : int; committees : int array array }

let derive ~seed ~epoch ~nodes ~committees =
  if nodes <= 0 || committees <= 0 || committees > nodes then
    Repro_sim.Sim_error.invalid "Assignment.derive: bad sizes (nodes %d, committees %d)" nodes
      committees;
  let rng = Rng.split_named (Rng.create seed) (Printf.sprintf "epoch-%d" epoch) in
  let perm = Rng.permutation rng nodes in
  (* Chunk the permutation into k nearly-equal committees. *)
  let base = nodes / committees and extra = nodes mod committees in
  let result = Array.make committees [||] in
  let pos = ref 0 in
  for c = 0 to committees - 1 do
    let size = base + if c < extra then 1 else 0 in
    result.(c) <- Array.sub perm !pos size;
    pos := !pos + size
  done;
  { epoch; committees = result }

let committee_of t node =
  let found = ref (-1) in
  Array.iteri
    (fun c members -> if Array.exists (fun m -> m = node) members then found := c)
    t.committees;
  if !found < 0 then Repro_sim.Sim_error.invalid "Assignment.committee_of: unknown node %d" node;
  !found

let transitioning ~from_ ~to_ =
  let moved = ref [] in
  (* Seed order = order of appearance in the new epoch's permutation. *)
  Array.iter
    (fun members ->
      Array.iter
        (fun node -> if committee_of from_ node <> committee_of to_ node then moved := node :: !moved)
        members)
    to_.committees;
  List.rev !moved

type step = { node : int; from_committee : int; to_committee : int }

let transition_plan ~from_ ~to_ ~batch =
  if batch <= 0 then
    Repro_sim.Sim_error.invalid "Assignment.transition_plan: batch %d not positive" batch;
  let pending =
    List.map
      (fun node ->
        { node; from_committee = committee_of from_ node; to_committee = committee_of to_ node })
      (transitioning ~from_ ~to_)
  in
  (* Greedy waves: a step joins the current wave unless its source or
     destination committee already has [batch] moves in it. *)
  let rec waves acc = function
    | [] -> List.rev acc
    | remaining ->
        let load = Hashtbl.create 16 in
        let bump c = Hashtbl.replace load c (1 + Option.value (Hashtbl.find_opt load c) ~default:0) in
        let count c = Option.value (Hashtbl.find_opt load c) ~default:0 in
        let wave, rest =
          List.partition
            (fun s ->
              if count s.from_committee < batch && count s.to_committee < batch then begin
                bump s.from_committee;
                bump s.to_committee;
                true
              end
              else false)
            remaining
        in
        waves (wave :: acc) rest
  in
  waves [] pending
