(** The reference committee's 2PC state machine (Figure 6).

    R runs this machine as a BFT-replicated chaincode: [BeginTx] starts a
    transaction with a participant counter c; each participant committee's
    quorum answer ([PrepareOK]/[PrepareNotOK]) advances it; [Committed] is
    reached when every participant voted OK, [Aborted] on the first NotOK
    (or an explicit client abort before completion).  The machine is pure
    and deterministic, so every replica of R computes identical
    transitions — the module is exactly the chaincode of Section 6.3.

    The batched/pipelined commit path (DESIGN §15) adds two capabilities:
    votes may arrive {e before} their transaction's Begin (the coordinator
    dispatches prepares without waiting for Begin's consensus slot) and are
    buffered, then replayed in canonical shard order when the Begin lands;
    and {!step_batch} applies one consensus slot's worth of steps in a
    single pass. *)

type state = Started | Preparing of int (** remaining OK votes *) | Committed | Aborted

type event =
  | Begin of { participants : int list }  (** the tx-committees involved *)
  | Prepare_ok of { shard : int }
  | Prepare_not_ok of { shard : int }
  | Client_abort

type decision = No_change | Now_started | Now_committed | Now_aborted

type t

val create : unit -> t

val step : t -> txid:int -> event -> decision
(** Applies one event; idempotent per (txid, shard) vote (duplicate quorum
    messages from the same shard do not double-count), and votes from
    shards that are not participants of the transaction are rejected.
    Votes for a transaction that has no record yet are {e buffered} and
    replayed — sorted by (shard, outcome), so the result is a function of
    the vote set, not its arrival order — when the [Begin] arrives; such a
    Begin may therefore answer [Now_committed]/[Now_aborted] directly.
    Events for finished transactions return [No_change] (the blockchain
    already records the outcome). *)

val step_batch : t -> (int * event) list -> (int * decision) list
(** Applies one consensus slot's batch of (txid, event) steps in submission
    order, returning each step's decision in the same order.  Because
    {!step} is idempotent per vote and buffers early votes, the net state
    after a batch is independent of how the same step set was split across
    batches — the property the batched-commit determinism tests pin. *)

val state_of : t -> txid:int -> state option

val early_votes : t -> int
(** Transactions with buffered votes whose Begin has not yet arrived;
    should drain to zero at quiescence (regression surface for the
    pipelined path). *)

val stats : t -> int * int * int
(** (in-flight, committed, aborted). *)
