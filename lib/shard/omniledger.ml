open Repro_ledger

type tx = {
  txid : int;
  inputs : (int * string) list;
  output_shard : int;
  output_key : string;
}

type client_behaviour = Honest | Crash_after_locks

type t = { states : State.t array }

let create ~shards =
  if shards <= 0 then
    Repro_sim.Sim_error.invalid "Omniledger.create: shards %d not positive" shards;
  { states = Array.init shards (fun _ -> State.create ()) }

let state_of_shard t shard = t.states.(shard)

let execute t tx behaviour =
  (* Phase 1 (client-driven): lock every input in its shard. *)
  let lock_results =
    List.map
      (fun (shard, key) ->
        let locks = Locks.create t.states.(shard) in
        ((shard, key), Locks.acquire locks ~txid:tx.txid key))
      tx.inputs
  in
  if List.exists (fun (_, ok) -> not ok) lock_results then begin
    (* Honest clients unlock what they took; note a malicious client could
       equally leave these dangling. *)
    List.iter
      (fun ((shard, key), ok) ->
        if ok then Locks.release (Locks.create t.states.(shard)) ~txid:tx.txid key)
      lock_results;
    Error "input locked by another transaction"
  end
  else
    match behaviour with
    | Crash_after_locks ->
        (* The client vanishes between phases: the input shards hold locks
           with nobody left to drive an unlock — indefinite blocking. *)
        Error "client crashed"
    | Honest ->
        (* Phase 2: spend the inputs, create the output, release locks. *)
        List.iter
          (fun (shard, key) ->
            State.delete t.states.(shard) key;
            Locks.release (Locks.create t.states.(shard)) ~txid:tx.txid key)
          tx.inputs;
        State.put t.states.(tx.output_shard) tx.output_key (string_of_int tx.txid);
        Ok ()

let locked_keys t shard =
  let state = t.states.(shard) in
  List.filter_map
    (fun k ->
      if String.length k > 2 && String.sub k 0 2 = "L_" then
        Some (String.sub k 2 (String.length k - 2))
      else None)
    (State.keys state)

let committee_size_for ~fraction ~security_bits ~total =
  Sizing.min_committee_size ~total ~fraction ~rule:Sizing.Pbft_third ~security_bits
