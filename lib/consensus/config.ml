type variant = {
  name : string;
  quorum_rule : [ `Third | `Half ];
  attested : bool;
  split_queues : bool;
  forward_requests : bool;
  relay : bool;
}

let hl =
  {
    name = "HL";
    quorum_rule = `Third;
    attested = false;
    split_queues = false;
    forward_requests = false;
    relay = false;
  }

let ahl = { hl with name = "AHL"; quorum_rule = `Half; attested = true }

let ahl_opt1 = { ahl with name = "AHL+op1"; split_queues = true }

let ahl_plus = { ahl_opt1 with name = "AHL+"; forward_requests = true }

let ahlr = { ahl_plus with name = "AHLR"; relay = true }

let all_variants = [ hl; ahl; ahl_plus; ahlr ]

type t = {
  variant : variant;
  n : int;
  batch_max : int;
  batch_delay : float;
  pipeline_window : int;
  checkpoint_interval : int;
  watermark_window : int;
  progress_timeout : float;
  vc_backoff_cap : int;
  relay_timeout : float;
  relay_tail_prob : float;
  relay_tail_factor : float;
  shared_queue_capacity : int;
  request_queue_capacity : int;
  consensus_queue_capacity : int;
  consensus_msg_bytes : int;
  request_overhead_bytes : int;
  request_parse_cost : float;
  client_sig_verify : float;
  msg_parse_cost : float;
}

let f_of t =
  match t.variant.quorum_rule with `Third -> (t.n - 1) / 3 | `Half -> (t.n - 1) / 2

let quorum_size t =
  match t.variant.quorum_rule with `Third -> (2 * f_of t) + 1 | `Half -> f_of t + 1

let n_for_f variant ~f =
  match variant.quorum_rule with `Third -> (3 * f) + 1 | `Half -> (2 * f) + 1

let default variant ~n =
  if n < 1 then Repro_sim.Sim_error.invalid "Config.default: n must be positive";
  {
    variant;
    n;
    batch_max = 200;
    batch_delay = 0.05;
    pipeline_window = 8;
    checkpoint_interval = 16;
    watermark_window = 128;
    progress_timeout = 2.0;
    vc_backoff_cap = 3;
    relay_timeout = 1.0;
    relay_tail_prob = 0.01;
    relay_tail_factor = 35.0;
    shared_queue_capacity = 5000;
    request_queue_capacity = 4096;
    consensus_queue_capacity = 8192;
    consensus_msg_bytes = 160;
    request_overhead_bytes = 40;
    request_parse_cost = 15e-6;
    client_sig_verify = 500e-6;
    msg_parse_cost = 10e-6;
  }

let inbox_mode t =
  if t.variant.split_queues then
    Repro_sim.Inbox.Split
      { request_cap = t.request_queue_capacity; consensus_cap = t.consensus_queue_capacity }
  else Repro_sim.Inbox.Shared t.shared_queue_capacity
