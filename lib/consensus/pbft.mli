(** The PBFT family: HL, AHL, AHL+, AHLR (Section 4.1).

    One replica implementation parameterized by {!Config.variant}:

    - {b HL} — vanilla PBFT: pre-prepare / prepare / commit with 2f+1
      quorums out of N = 3f+1, pipelined within a window, checkpoints and
      watermarks, and the view-change / new-view protocol.  Client requests
      received by a replica are re-broadcast to everyone, and requests share
      one bounded network queue with consensus traffic.
    - {b AHL} — every protocol message carries an attested append-only
      memory proof; equivocation is impossible, so quorums shrink to f+1
      out of N = 2f+1.
    - {b AHL+} — AHL plus optimization 1 (separate request/consensus
      queues) and optimization 2 (requests are forwarded to the leader
      instead of broadcast).
    - {b AHLR} — AHL+ plus optimization 3: replicas send signed votes to
      the leader only; the leader's enclave aggregates f+1 of them into one
      quorum certificate (O(N) messages, but a serial hotspot and a
      view-change hazard when the certificate misses the relay deadline).

    The module is transport-agnostic: the embedding supplies [send]/[self]
    callbacks, per-member CPU charging, and an [execute] upcall.  Committee
    members are addressed by their index 0..n-1. *)

open Types

type msg =
  | Request of { req : request; relayed : bool }
  | Forward of request
  | Pre_prepare of { view : int; seq : int; batch : request list; digest : int }
  | Prepare of { view : int; seq : int; digest : int; sender : int }
  | Commit of { view : int; seq : int; digest : int; sender : int }
  | Checkpoint of { seq : int; digest : int; sender : int }
      (** [digest] is the sender's execution-chain root at [seq] (see
          {!exec_root}) — a quorum of matching roots certifies the state *)
  | Fetch of { since : int; sender : int }
      (** catch-up request: send me what was decided after [since] *)
  | Fetch_resp of {
      sender : int;
      view : int;
          (** the responder's current view — the recovering replica's only
              way to learn a view change it slept through *)
      ckpt : (int * int * int list) option;
          (** latest certificate: (seq, root, quorum of signers) *)
      blocks : (int * int * int * request list) list;
          (** contiguous (seq, view, digest, batch) slots to replay *)
    }
  | View_change of {
      target : int;
      sender : int;
      last_stable : int;
      prepared : (int * int * int * request list) list;
          (** (seq, view, digest, batch) certificates *)
    }
  | New_view of {
      view : int;
      sender : int;
      reproposals : (int * int * request list) list;  (** (seq, digest, batch) *)
    }
  | Relay_vote of {
      phase : phase;
      view : int;
      seq : int;
      digest : int;
      sender : int;
      vote : Repro_crypto.Keys.signature;
    }
  | Quorum_cert of {
      phase : phase;
      view : int;
      seq : int;
      digest : int;
      proof : Repro_sgx.Aggregator.quorum_proof;
    }

type committee

type leader_attack =
  | Leader_stall
      (** win the leader slot (campaign in view changes, emit a credible
          New_view), then withhold every pre-prepare — the classic faulty
          primary that must be deposed by timeout, not outvoted *)
  | Leader_serve_only of int list
      (** as leader, serve pre-prepares and commit votes only to the listed
          peers; the rest starve and must rely on relay or catch-up *)
  | Leader_drip of float
      (** as leader, emit at most one batch every given interval — pick it
          just under the watchdog period to probe the detection boundary
          (throughput collapses but no timeout ever fires) *)

type byz_strategy = {
  vote_noise : bool;  (** spam garbage prepare votes on every pre-prepare *)
  naive_equivocation : bool;
      (** per-half conflicting digests on overheard pre-prepares (fabricated
          batches — burns honest CPU but can never commit) *)
  split_brain : bool;
      (** as view-0 leader, propose two real conflicting batches and drive
          each committee half to commit its own (the Figure 8/16 attack);
          non-leader byzantine replicas collude by voting both sides *)
  silent_toward : int list;  (** peers the byzantine replicas never message *)
  stale_view_replay : bool;
      (** stash overheard prepares and replay them after a new view *)
  leader_attack : leader_attack option;
      (** byzantine replicas track views, campaign for leader slots, win
          them with credible New_views, and then attack them — the Fig. 16
          right-panel adversary.  [None]: byzantine replicas never lead. *)
}

val default_byz_strategy : byz_strategy
(** [vote_noise] and [naive_equivocation] on, everything else off — the
    behaviour used by the throughput experiments. *)

val set_byz_strategy : committee -> byz_strategy -> unit
(** Script the committee's byzantine members (shared by all of them). *)

val set_commit_hook :
  committee -> (member:int -> view:int -> seq:int -> digest:int -> batch:request list -> unit) -> unit
(** Observe every block execution at every replica: the hook fires with the
    full decided batch (including requests already executed through an
    earlier block) just before the [execute] upcall.  This is the committed
    trace the safety oracles consume. *)

val create :
  engine:Repro_sim.Engine.t ->
  keystore:Repro_crypto.Keys.keystore ->
  costs:Repro_crypto.Cost_model.t ->
  config:Config.t ->
  faults:Repro_sim.Faults.t ->
  metrics:Repro_sim.Metrics.t ->
  enclave_base_id:int ->
  send:(src:int -> dst:int -> channel:Repro_sim.Inbox.channel -> bytes:int -> msg -> unit) ->
  charge:(member:int -> float -> unit) ->
  execute:(member:int -> seq:int -> request list -> unit) ->
  committee
(** [enclave_base_id]: the attested variants register one enclave per
    member with keystore principal ids [base .. base+n-1] (pass a range
    disjoint from other committees).  [faults] is indexed by member.
    [execute] is called on every replica with the not-yet-executed requests
    of each decided batch, in sequence order. *)

val set_observer : committee -> int -> unit
(** Override the metrics observer (default: lowest-indexed honest member).
    Must be in [0..n-1]; pass a member that stays honest and alive, or
    committee metrics go dark.  Call before {!start}. *)

val set_alive : committee -> (int -> bool) -> unit
(** Install the embedding's liveness predicate: members for which it
    returns [false] (crashed / transitioning nodes) fire no timers.
    Defaults to always-alive. *)

val set_probe : committee -> Repro_obs.Probe.t -> unit
(** Install an observability probe (default {!Repro_obs.Probe.none}):
    phase transitions, block intervals and per-reason view-change counters
    are recorded at the observer replica; equivocation refusals and
    view-change starts at every replica.  The disabled probe costs one
    branch per site. *)

val start : committee -> unit
(** Arm leader batching and watchdog timers (they run as local engine
    timers, not network messages — a flooded inbox cannot suppress a
    timeout).  Call once, after the transport is wired. *)

val handle : committee -> member:int -> msg -> unit
(** Entry point the embedding's node handler calls for every delivered
    message (including self-ticks). *)

val submit_via : committee -> member:int -> request -> msg
(** The wire message a client should send to [member] for this variant
    (plain request; the replica relays or forwards according to the
    variant). *)

val request_channel : Repro_sim.Inbox.channel

val consensus_channel : Repro_sim.Inbox.channel

val bytes_of_msg : Config.t -> msg -> int
(** Wire size estimate used by embeddings when sending. *)

val leader_of_view : committee -> int -> int

val current_view : committee -> member:int -> int

val last_executed : committee -> member:int -> int

val view_changes : committee -> int
(** Successful new-view adoptions observed by the designated observer. *)

val observer : committee -> int
(** The lowest-indexed honest member; metrics (commits, latencies,
    cost gauges) are recorded at this replica only, so committee-wide
    throughput is not multiple-counted. *)

val known_backlog : committee -> member:int -> int
(** Requests known to a member but not yet executed (for tests). *)

val last_stable : committee -> member:int -> int
(** The member's latest stable checkpoint (garbage-collection horizon). *)

val exec_root : committee -> member:int -> int
(** The member's execution-chain root: a running digest folded over every
    executed (seq, batch digest).  Honest replicas at equal {!last_executed}
    hold equal roots, so this is the value checkpoints certify. *)

val checkpoint_cert : committee -> member:int -> (int * int * int list) option
(** The highest checkpoint certificate the member holds, as
    [(seq, root, voters)] — the quorum of members whose matching
    [Checkpoint] votes were collected.  [None] before the first
    certificate forms (or right after {!reset_member}). *)

val notify_recovered : committee -> member:int -> unit
(** Tell a member the embedding just revived (un-crashed) it: it resets its
    progress clock and asks f+1 peers for the slots it missed, replaying
    them through the normal execution path.  Call after the member's inbox
    is accepting deliveries again. *)

val reset_member : committee -> member:int -> unit
(** Wipe a member's consensus state (logs, votes, checkpoints, attested
    log) as if a brand-new node took over its slot — the literal
    committee-swap primitive used by epoch transitions.  The newcomer
    rejoins via {!install_checkpoint} or {!notify_recovered}. *)

val install_checkpoint : committee -> member:int -> seq:int -> digest:int -> voters:int list -> unit
(** Hand a member a checkpoint certificate whose snapshot the embedding
    already transferred and verified (Section 5.3): the member adopts
    [seq] as executed and stable without replaying below it.  Ignored
    unless [voters] contains a quorum of distinct member indices. *)

val set_snapshot_hook :
  committee -> (member:int -> seq:int -> digest:int -> k:(bool -> unit) -> unit) -> unit
(** Install the embedding's snapshot transfer: called when catch-up needs a
    snapshot certified at [seq] because the missed slots were pruned even
    from the serving peers' replay rings.  The hook must eventually call
    [k true] once a snapshot matching the certificate is transferred and
    verified, or [k false] to reject (verification failure triggers a
    retry).  Default: immediately [k true] (state-free embeddings). *)
