type request = {
  req_id : int;
  client : int;
  submitted : float;
  size : int;
  op_tag : int;
}

let request ~req_id ~client ~submitted ?(size = 200) ?(op_tag = 0) () =
  { req_id; client; submitted; size; op_tag }

type phase = Prepare_phase | Commit_phase

let phase_log = function Prepare_phase -> 1 | Commit_phase -> 2

let digest_of_batch batch =
  Repro_util.Det.stable_hash
    ("batch:" ^ String.concat "," (List.map (fun r -> string_of_int r.req_id) batch))

let batch_bytes batch = List.fold_left (fun acc r -> acc + r.size) 0 batch

let pp_phase fmt = function
  | Prepare_phase -> Format.pp_print_string fmt "prepare"
  | Commit_phase -> Format.pp_print_string fmt "commit"
