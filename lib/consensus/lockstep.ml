open Repro_crypto
open Repro_sim
open Types

type flavour = Tendermint | Ibft

type msg =
  | Req of { req : request; relayed : bool }
  | Proposal of { height : int; round : int; digest : int; batch : request list; proposer : int }
  | Prevote of { height : int; round : int; digest : int; sender : int }
      (** [digest = 0] encodes a nil prevote *)
  | Precommit of { height : int; round : int; digest : int; sender : int }

type replica = {
  index : int;
  mutable height : int;
  mutable round : int;
  mutable locked : (int * request list * int) option; (* digest, batch, round *)
  pool : request Queue.t;
  pooled : (int, unit) Hashtbl.t;
  executed : (int, unit) Hashtbl.t;
  prevotes : Quorum.t; (* view = height, seq = round *)
  precommits : Quorum.t;
  proposals : (int * int, int * request list) Hashtbl.t; (* (height, round) -> digest, batch *)
  mutable proposed_this_round : bool;
  mutable round_deadline : float;
}

type committee = {
  engine : Engine.t;
  keystore : Keys.keystore;
  costs : Cost_model.t;
  flavour : flavour;
  n : int;
  f : int;
  batch_max : int;
  metrics : Metrics.t;
  send_cb : src:int -> dst:int -> channel:Inbox.channel -> bytes:int -> msg -> unit;
  charge_cb : member:int -> float -> unit;
  mutable replicas : replica array;
}

let request_channel = Inbox.Request

(* Per-transaction client-signature validation and the per-height commit
   overhead (state persistence, proposer hand-over) that make these stacks
   slower per block than pipelined PBFT. *)
let client_sig_verify = 500e-6

let commit_overhead = 0.15

let round_timeout = 1.0

let bytes_of_msg = function
  | Req { req; _ } -> 40 + req.size
  | Proposal { batch; _ } -> 160 + batch_bytes batch
  | Prevote _ | Precommit _ -> 160

let quorum c = Quorum.supermajority ~f:c.f

let proposer_of c ~height ~round = (height + round) mod c.n

let now c = Engine.now c.engine

let charge c r cost =
  c.charge_cb ~member:r.index cost;
  if r.index = 0 then Metrics.add_to c.metrics "consensus_cost" cost

let send c r ~dst m =
  charge c r 10e-6;
  c.send_cb ~src:r.index ~dst ~channel:Inbox.Consensus ~bytes:(bytes_of_msg m) m

let broadcast c r m =
  for dst = 0 to c.n - 1 do
    if dst <> r.index then send c r ~dst m
  done

let vote_key ~height ~round = (height * 1024) + (round land 1023)

(* The proposer of the current (height, round) assembles a block: its
   locked value if it has one, otherwise a fresh batch from the pool. *)
let rec try_propose c r =
  if proposer_of c ~height:r.height ~round:r.round = r.index && not r.proposed_this_round then begin
    let value =
      match r.locked with
      | Some (digest, batch, _) -> Some (digest, batch)
      | None ->
          (* Drain already-executed entries (committed under another
             proposer) while building the batch. *)
          let batch = ref [] in
          let budget = ref (Queue.length r.pool) in
          while List.length !batch < c.batch_max && !budget > 0 do
            decr budget;
            let req = Queue.take r.pool in
            if not (Hashtbl.mem r.executed req.req_id) then batch := req :: !batch
          done;
          (match !batch with
          | [] -> None
          | _ :: _ ->
              (* Proposal contents must not depend on pool arrival order:
                 replicas relay requests along different paths, so sort the
                 batch by req_id before it becomes a digest. *)
              let batch =
                List.sort (fun a b -> Int.compare a.req_id b.req_id) !batch
              in
              Some (digest_of_batch batch, batch))
    in
    match value with
    | None -> ()
    | Some (digest, batch) ->
        r.proposed_this_round <- true;
        charge c r
          ((float_of_int (List.length batch) *. client_sig_verify)
          +. c.costs.Cost_model.ecdsa_sign);
        Hashtbl.replace r.proposals (r.height, r.round) (digest, batch);
        broadcast c r (Proposal { height = r.height; round = r.round; digest; batch; proposer = r.index });
        on_proposal c r ~height:r.height ~round:r.round ~digest ~batch ~charge_batch:false
  end

and prevote c r ~height ~round ~digest =
  charge c r c.costs.Cost_model.ecdsa_sign;
  broadcast c r (Prevote { height; round; digest; sender = r.index });
  count_prevote c r ~height ~round ~digest ~sender:r.index

and on_proposal c r ~height ~round ~digest ~batch ~charge_batch =
  if charge_batch then
    charge c r
      (c.costs.Cost_model.ecdsa_verify
      +. (float_of_int (List.length batch) *. client_sig_verify));
  if height = r.height && round = r.round then begin
    Hashtbl.replace r.proposals (height, round) (digest, batch);
    let vote =
      match r.locked with
      | Some (locked_digest, _, _) when locked_digest <> digest -> 0 (* nil: refuse *)
      | Some _ | None -> digest
    in
    prevote c r ~height ~round ~digest:vote
  end

and count_prevote c r ~height ~round ~digest ~sender =
  if height = r.height && digest <> 0 then begin
    let votes =
      Quorum.vote r.prevotes ~view:(vote_key ~height ~round) ~seq:0 ~digest ~member:sender
    in
    if votes >= quorum c then begin
      (* Lock on the value (Tendermint may re-lock a newer value; the IBFT
         defect keeps the first lock forever). *)
      (match Hashtbl.find_opt r.proposals (height, round) with
      | Some (d, batch) when d = digest -> (
          match (c.flavour, r.locked) with
          | _, None -> r.locked <- Some (digest, batch, round)
          | Tendermint, Some (_, _, locked_round) when round >= locked_round ->
              r.locked <- Some (digest, batch, round)
          | Tendermint, Some _ -> ()
          | Ibft, Some _ -> () (* never released: the Quorum defect *))
      | Some _ | None -> ());
      match r.locked with
      | Some (d, _, _) when d = digest ->
          charge c r c.costs.Cost_model.ecdsa_sign;
          broadcast c r (Precommit { height; round; digest; sender = r.index });
          count_precommit c r ~height ~round ~digest ~sender:r.index
      | Some _ | None -> ()
    end
  end

and count_precommit c r ~height ~round ~digest ~sender =
  if height = r.height && digest <> 0 then begin
    let votes =
      Quorum.vote r.precommits ~view:(vote_key ~height ~round) ~seq:1 ~digest ~member:sender
    in
    if votes >= quorum c then begin
      match batch_for c r ~height ~digest with
      | None -> ()
      | Some batch -> commit c r ~batch
    end
  end

and batch_for _c r ~height ~digest =
  (* The batch may have been delivered in any round of this height, or be
     our locked value. *)
  let from_lock =
    match r.locked with Some (d, batch, _) when d = digest -> Some batch | _ -> None
  in
  match from_lock with
  | Some _ as b -> b
  | None ->
      Repro_util.Det.fold ~compare:Repro_util.Det.int_pair
        (fun (h, _) (d, batch) acc ->
          match acc with
          | Some _ -> acc
          | None -> if h = height && d = digest then Some batch else None)
        r.proposals None

and commit c r ~batch =
  let fresh = List.filter (fun q -> not (Hashtbl.mem r.executed q.req_id)) batch in
  charge c r (commit_overhead +. (float_of_int (List.length fresh) *. c.costs.Cost_model.tx_execute));
  List.iter
    (fun q ->
      Hashtbl.replace r.executed q.req_id ();
      Hashtbl.remove r.pooled q.req_id)
    batch;
  if r.index = 0 then begin
    Metrics.incr c.metrics "blocks";
    Metrics.commit c.metrics ~count:(List.length fresh);
    List.iter (fun q -> Metrics.commit_latency c.metrics ~submitted:q.submitted) fresh
  end;
  r.height <- r.height + 1;
  r.round <- 0;
  r.locked <- None;
  r.proposed_this_round <- false;
  r.round_deadline <- now c +. round_timeout;
  (* Lockstep: only now may the next height begin. *)
  try_propose c r

let advance_round c r =
  r.round <- r.round + 1;
  r.proposed_this_round <- false;
  r.round_deadline <- now c +. (round_timeout *. (1.0 +. (0.5 *. float_of_int r.round)));
  if r.index = 0 then Metrics.incr c.metrics "round_changes";
  try_propose c r

let handle c ~member m =
  let r = c.replicas.(member) in
  match m with
  | Req { req; relayed } ->
      charge c r 15e-6;
      if (not (Hashtbl.mem r.executed req.req_id)) && not (Hashtbl.mem r.pooled req.req_id)
      then begin
        Hashtbl.replace r.pooled req.req_id ();
        Queue.add req r.pool;
        if not relayed then
          for dst = 0 to c.n - 1 do
            if dst <> r.index then begin
              charge c r 10e-6;
              c.send_cb ~src:r.index ~dst ~channel:Inbox.Request
                ~bytes:(bytes_of_msg (Req { req; relayed = true }))
                (Req { req; relayed = true })
            end
          done;
        try_propose c r
      end
  | Proposal { height; round; digest; batch; proposer } ->
      if proposer = proposer_of c ~height ~round then
        on_proposal c r ~height ~round ~digest ~batch ~charge_batch:true
  | Prevote { height; round; digest; sender } ->
      charge c r c.costs.Cost_model.ecdsa_verify;
      count_prevote c r ~height ~round ~digest ~sender
  | Precommit { height; round; digest; sender } ->
      charge c r c.costs.Cost_model.ecdsa_verify;
      count_precommit c r ~height ~round ~digest ~sender

let start c =
  Array.iter
    (fun r ->
      r.round_deadline <- now c +. round_timeout;
      let rec watchdog () =
        let has_work = Hashtbl.length r.pooled > 0 || Option.is_some r.locked in
        if now c > r.round_deadline && has_work then advance_round c r;
        Engine.schedule c.engine ~delay:(round_timeout /. 4.0) watchdog
      in
      Engine.schedule c.engine
        ~delay:(round_timeout /. 4.0 *. (1.0 +. (float_of_int r.index /. float_of_int c.n)))
        watchdog)
    c.replicas

let create ~engine ~keystore ~costs ~flavour ~n ~batch_max ~metrics ~send ~charge =
  let c =
    {
      engine;
      keystore;
      costs;
      flavour;
      n;
      f = (n - 1) / 3;
      batch_max;
      metrics;
      send_cb = send;
      charge_cb = charge;
      replicas = [||];
    }
  in
  c.replicas <-
    Array.init n (fun index ->
        {
          index;
          height = 0;
          round = 0;
          locked = None;
          pool = Queue.create ();
          pooled = Hashtbl.create 256;
          executed = Hashtbl.create 1024;
          prevotes = Quorum.create ~n;
          precommits = Quorum.create ~n;
          proposals = Hashtbl.create 64;
          proposed_this_round = false;
          round_deadline = infinity;
        });
  c

let submit _c req = Req { req; relayed = false }

let height c ~member = c.replicas.(member).height

let round_changes c = Metrics.counter c.metrics "round_changes"
