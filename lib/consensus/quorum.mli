(** Vote bookkeeping: who voted for which value in which slot.

    Byzantine peers may vote for different values in the same slot, so
    votes are keyed by (view, seq, digest); a quorum forms only over
    matching digests. *)

type t

val create : n:int -> t
(** [n] committee members, indexed 0 .. n-1. *)

val vote : t -> view:int -> seq:int -> digest:int -> member:int -> int
(** Record a vote (idempotent per member) and return the current count of
    distinct voters for this (view, seq, digest). *)

val count : t -> view:int -> seq:int -> digest:int -> int

val voters : t -> view:int -> seq:int -> digest:int -> int list

val cert : t -> threshold:int -> view:int -> seq:int -> digest:int -> int list option
(** [Some voters] once at least [threshold] distinct members voted for this
    (view, seq, digest); the list is ascending and is the certificate's
    signer set. [None] while the quorum has not yet formed. *)

val forget_below : t -> seq:int -> unit
(** Garbage-collect slots below a stable checkpoint. *)

val supermajority : f:int -> int
(** The classic [2f+1] supermajority threshold — the one place protocol
    code may get it from (see ahl_lint rule R5). *)
