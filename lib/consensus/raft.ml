open Repro_crypto
open Repro_sim
open Types

type msg =
  | Req of { req : request; relayed : bool }
  | Append of { term : int; index : int; batch : request list; leader : int }
  | Ack of { term : int; index : int; sender : int }
  | Committed of { term : int; index : int }
  | Heartbeat of { term : int; leader : int }
  | Request_vote of { term : int; candidate : int; last_index : int }
  | Vote of { term : int; sender : int }

type role = Follower | Candidate | Leader

type replica = {
  index : int;
  mutable term : int;
  mutable role : role;
  mutable voted_for : int option;
  mutable votes : int;
  mutable last_index : int;   (* highest log entry stored *)
  mutable commit_index : int; (* highest executed entry *)
  mutable in_flight : (int * request list) option; (* index being replicated *)
  mutable acks : int;
  pool : request Queue.t;
  pooled : (int, unit) Hashtbl.t;
  executed : (int, unit) Hashtbl.t;
  entries : (int, request list) Hashtbl.t;
  mutable last_heartbeat : float;
  mutable election_deadline : float;
  mutable crashed : bool;
}

type cluster = {
  engine : Engine.t;
  costs : Cost_model.t;
  n : int;
  batch_max : int;
  metrics : Metrics.t;
  send_cb : src:int -> dst:int -> channel:Inbox.channel -> bytes:int -> msg -> unit;
  charge_cb : member:int -> float -> unit;
  rng : Repro_util.Rng.t;
  mutable replicas : replica array;
}

let request_channel = Inbox.Request

(* MAC check instead of ECDSA; Quorum's EVM + Merkle-tree execution. *)
let mac_cost = 20e-6

let evm_execute = 1.2e-3

let block_overhead = 0.08

let heartbeat_period = 0.15

let election_timeout_base = 0.6

let bytes_of_msg = function
  | Req { req; _ } -> 40 + req.size
  | Append { batch; _ } -> 120 + batch_bytes batch
  | Ack _ | Committed _ | Heartbeat _ | Request_vote _ | Vote _ -> 120

let majority c = (c.n / 2) + 1

let is_leader r = match r.role with Leader -> true | Follower | Candidate -> false

let is_follower r = match r.role with Follower -> true | Leader | Candidate -> false

let is_candidate r = match r.role with Candidate -> true | Leader | Follower -> false

let now c = Engine.now c.engine

let charge c r cost =
  c.charge_cb ~member:r.index cost;
  if r.index = 0 then Metrics.add_to c.metrics "consensus_cost" cost

let send c r ~dst m =
  charge c r 5e-6;
  c.send_cb ~src:r.index ~dst ~channel:Inbox.Consensus ~bytes:(bytes_of_msg m) m

let broadcast c r m =
  for dst = 0 to c.n - 1 do
    if dst <> r.index then send c r ~dst m
  done

let reset_election_deadline c r =
  r.election_deadline <-
    now c +. election_timeout_base +. Repro_util.Rng.float c.rng election_timeout_base

(* Quorum's lockstep: the leader replicates one block at a time. *)
let rec try_replicate c r =
  if is_leader r && Option.is_none r.in_flight && not (Queue.is_empty r.pool) then begin
    let batch = ref [] in
    let count = Int.min c.batch_max (Queue.length r.pool) in
    for _ = 1 to count do
      batch := Queue.take r.pool :: !batch
    done;
    let batch = List.rev !batch in
    let index = r.last_index + 1 in
    r.last_index <- index;
    r.in_flight <- Some (index, batch);
    r.acks <- 1;
    Hashtbl.replace r.entries index batch;
    charge c r (block_overhead /. 2.0);
    broadcast c r (Append { term = r.term; index; batch; leader = r.index })
  end

and execute c r ~index =
  match Hashtbl.find_opt r.entries index with
  | None -> ()
  | Some batch ->
      if index = r.commit_index + 1 then begin
        let fresh = List.filter (fun q -> not (Hashtbl.mem r.executed q.req_id)) batch in
        charge c r
          ((block_overhead /. 2.0) +. (float_of_int (List.length fresh) *. evm_execute));
        List.iter
          (fun q ->
            Hashtbl.replace r.executed q.req_id ();
            Hashtbl.remove r.pooled q.req_id)
          batch;
        if r.index = 0 then begin
          Metrics.incr c.metrics "blocks";
          Metrics.commit c.metrics ~count:(List.length fresh);
          List.iter (fun q -> Metrics.commit_latency c.metrics ~submitted:q.submitted) fresh
        end;
        r.commit_index <- index
      end

let become_leader c r =
  r.role <- Leader;
  r.in_flight <- None;
  Metrics.incr c.metrics "elections";
  broadcast c r (Heartbeat { term = r.term; leader = r.index });
  try_replicate c r

let start_election c r =
  r.term <- r.term + 1;
  r.role <- Candidate;
  r.voted_for <- Some r.index;
  r.votes <- 1;
  reset_election_deadline c r;
  charge c r mac_cost;
  broadcast c r (Request_vote { term = r.term; candidate = r.index; last_index = r.last_index });
  if r.votes >= majority c then become_leader c r

let step_down c r ~term =
  if term > r.term then begin
    r.term <- term;
    r.role <- Follower;
    r.voted_for <- None;
    r.in_flight <- None;
    reset_election_deadline c r
  end

let handle c ~member m =
  let r = c.replicas.(member) in
  if r.crashed then ()
  else
    match m with
    | Req { req; relayed } ->
        charge c r 15e-6;
        if (not (Hashtbl.mem r.executed req.req_id)) && not (Hashtbl.mem r.pooled req.req_id)
        then
          if is_leader r then begin
            Hashtbl.replace r.pooled req.req_id ();
            Queue.add req r.pool;
            try_replicate c r
          end
          else if not relayed then begin
            (* Forward to the presumed leader: whoever heartbeats. *)
            Hashtbl.replace r.pooled req.req_id ();
            Queue.add req r.pool
          end
    | Append { term; index; batch; leader } ->
        charge c r (mac_cost +. (float_of_int (List.length batch) *. mac_cost));
        if term >= r.term then begin
          step_down c r ~term;
          r.last_heartbeat <- now c;
          reset_election_deadline c r;
          Hashtbl.replace r.entries index batch;
          if index > r.last_index then r.last_index <- index;
          send c r ~dst:leader (Ack { term; index; sender = r.index })
        end
    | Ack { term; index; sender = _ } ->
        charge c r mac_cost;
        if is_leader r && term = r.term then begin
          match r.in_flight with
          | Some (i, _) when i = index ->
              r.acks <- r.acks + 1;
              if r.acks >= majority c then begin
                r.in_flight <- None;
                execute c r ~index;
                broadcast c r (Committed { term; index });
                (* Lockstep: only now is the next block constructed. *)
                try_replicate c r
              end
          | Some _ | None -> ()
        end
    | Committed { term = _; index } ->
        charge c r mac_cost;
        execute c r ~index;
        (* Leftover pool entries at followers drain to the leader lazily:
           followers hand their pool over on heartbeat response (modelled
           by re-queueing through Req forwarding below). *)
        ()
    | Heartbeat { term; leader } ->
        charge c r mac_cost;
        if term >= r.term then begin
          step_down c r ~term;
          if is_follower r then begin
            r.last_heartbeat <- now c;
            reset_election_deadline c r;
            (* Forward any pooled requests to the leader. *)
            let count = Int.min 64 (Queue.length r.pool) in
            for _ = 1 to count do
              let req = Queue.take r.pool in
              Hashtbl.remove r.pooled req.req_id;
              send c r ~dst:leader (Req { req; relayed = true })
            done
          end
        end
    | Request_vote { term; candidate; last_index } ->
        charge c r mac_cost;
        step_down c r ~term;
        if term = r.term && Option.is_none r.voted_for && last_index >= r.last_index then begin
          r.voted_for <- Some candidate;
          reset_election_deadline c r;
          send c r ~dst:candidate (Vote { term; sender = r.index })
        end
    | Vote { term; sender = _ } ->
        charge c r mac_cost;
        if is_candidate r && term = r.term then begin
          r.votes <- r.votes + 1;
          if r.votes >= majority c then become_leader c r
        end

let start c =
  Array.iter
    (fun r ->
      reset_election_deadline c r;
      let rec tick () =
        if not r.crashed then begin
          (match r.role with
          | Leader ->
              broadcast c r (Heartbeat { term = r.term; leader = r.index });
              try_replicate c r
          | Follower | Candidate ->
              if now c > r.election_deadline then start_election c r);
          Engine.schedule c.engine ~delay:heartbeat_period tick
        end
      in
      Engine.schedule c.engine
        ~delay:(heartbeat_period *. (1.0 +. (float_of_int r.index /. float_of_int c.n)))
        tick)
    c.replicas

let create ~engine ~costs ~n ~batch_max ~metrics ~send ~charge =
  let c =
    {
      engine;
      costs;
      n;
      batch_max;
      metrics;
      send_cb = send;
      charge_cb = charge;
      rng = Repro_util.Rng.split_named (Engine.rng engine) "raft";
      replicas = [||];
    }
  in
  c.replicas <-
    Array.init n (fun index ->
        {
          index;
          term = 0;
          role = (if index = 0 then Leader else Follower);
          voted_for = None;
          votes = 0;
          last_index = 0;
          commit_index = 0;
          in_flight = None;
          acks = 0;
          pool = Queue.create ();
          pooled = Hashtbl.create 256;
          executed = Hashtbl.create 1024;
          entries = Hashtbl.create 256;
          last_heartbeat = 0.0;
          election_deadline = infinity;
          crashed = false;
        });
  c

let submit _c req = Req { req; relayed = false }

let crash c ~member = c.replicas.(member).crashed <- true

let leader_id c =
  let best = ref None in
  Array.iter
    (fun r ->
      if is_leader r && not r.crashed then
        match !best with
        | Some (t, _) when t >= r.term -> ()
        | _ -> best := Some (r.term, r.index))
    c.replicas;
  Option.map snd !best

let committed_index c ~member = c.replicas.(member).commit_index

let elections c = Metrics.counter c.metrics "elections"
