(** Single-committee experiment runner.

    Builds an engine, a network over the given topology, one simulated node
    per replica, and a population of BLOCKBENCH-style clients; runs the
    requested PBFT-family variant for a virtual duration and reports the
    measurements the paper's figures plot.  Used directly by the Figure
    2/8/9/10/15/16/17/19/20 benches and by the integration tests. *)

type workload =
  | Open_loop of { rate : float; clients : int }
      (** Poisson arrivals totalling [rate] requests/s, split across
          clients, each bound to one replica (the BLOCKBENCH driver). *)
  | Closed_loop of { clients : int; outstanding : int; think : float }
      (** Each client keeps [outstanding] requests in flight and waits
          [think] seconds after a commit before resubmitting. *)

type result = {
  throughput : float;        (** committed tx/s after warmup *)
  latency_mean : float;
  latency_p50 : float;
  latency_p99 : float;
  committed : int;
  view_changes : int;        (** successful new-view adoptions *)
  view_change_attempts : int;
  blocks : int;
  consensus_cost_per_block : float;  (** observer CPU seconds, Figure 17 *)
  execution_cost_per_block : float;
  dropped_requests : int;    (** inbox tail-drops across replicas *)
  dropped_consensus : int;
  messages_sent : int;
}

val run :
  ?seed:int64 ->
  ?duration:float ->
  ?warmup:float ->
  ?byzantine:int ->
  ?byz_ids:int list ->
  ?byz_strategy:Pbft.byz_strategy ->
  ?crashes:(int * float) list ->
  ?recovers:(int * float) list ->
  ?cpu_scale:float ->
  ?costs:Repro_crypto.Cost_model.t ->
  ?tune:(Config.t -> Config.t) ->
  ?probe:Repro_obs.Probe.t ->
  variant:Config.variant ->
  n:int ->
  topology:Repro_sim.Topology.t ->
  workload:workload ->
  unit ->
  result
(** Defaults: seed 1, 20 s runs with 5 s warmup, no Byzantine nodes.
    [byz_ids] pins the byzantine members to fixed ids (overriding the
    seeded random pick of [byzantine]); [byz_strategy] scripts them
    (default {!Pbft.default_byz_strategy}) — together they wire the
    Fig. 16 leader attacks, which need the clique sitting on the early
    leader slots.  [crashes] is a list of [(member, time)] crash-fault
    injections: the
    node stops at [time] seconds and stays down (its watchdog timers are
    muted through {!Pbft.set_alive}) unless a matching [(member, time)]
    entry in [recovers] revives it later: the inbox reopens and the replica
    runs checkpoint catch-up ({!Pbft.notify_recovered}) for the slots it
    missed; the metrics observer is moved to the first member that stays
    honest and alive.  [cpu_scale] multiplies every
    CPU charge — 1.0 models the paper's 3.5 GHz Xeon cluster servers, 3.5
    the 2-vCPU GCP instances.  [tune] post-processes the default
    {!Config.t} (batch sizes, timeouts) for ablations.  [probe] (default
    disabled) threads observability through the committee and transport:
    PBFT phase/view-change events, network delivery latency and drop
    counters, crash instants, and a per-replica inbox-depth counter series
    sampled at 2 Hz. *)

val pp_result : Format.formatter -> result -> unit
