open Repro_util
open Repro_crypto
open Repro_sim
module Poet_enclave = Repro_sgx.Poet_enclave
module Enclave = Repro_sgx.Enclave

type result = {
  produced : int;
  adopted : int;
  stale_rate : float;
  throughput : float;
  mean_interval : float;
}

type block = { height : int; producer : int; born : float }

type node_state = {
  id : int;
  enclave : Poet_enclave.t;
  mutable height : int; (* height this node is competing for *)
  mutable attempt : int; (* redraw counter within the height *)
  mutable gen : int; (* invalidates stale scheduled certificate events *)
}

let plus_l_bits ~n =
  let l = int_of_float (Float.round (log (float_of_int n) /. log 2.0 /. 2.0)) in
  Int.max 1 l

(* Enclave wait-slots are (height, attempt) pairs so an unlucky node can
   re-enter the race without being able to redraw a prior slot. *)
let slot ~height ~attempt = (height * 64) + Int.min 63 attempt

let run ?(seed = 7L) ?(duration = 600.0) ~n ~topology ~block_mb ~block_time ~l_bits ~tx_bytes () =
  let engine = Engine.create ~seed in
  let keystore = Keys.create_keystore (Engine.rng engine) in
  let costs = Cost_model.default in
  let block_bytes = int_of_float (block_mb *. 1024.0 *. 1024.0) in
  let txs_per_block = Int.max 1 (block_bytes / tx_bytes) in
  (* Sawtooth v0.8's difficulty lags the true population (its z-test
     population estimate under-adjusts at scale): the per-node wait mean
     scales as (effective population)^alpha with alpha < 1, so achieved
     block intervals shrink as deployments grow, and with them the margin
     over propagation delay.  PoET+'s q-filter shrinks the effective
     population to n·2^-l, keeping intervals long and collisions rare. *)
  let alpha = 0.9 in
  let n_eff = float_of_int n *. Float.pow 2.0 (float_of_int (-l_bits)) in
  (* Per-node mean such that the network-wide valid-certificate interval is
     block_time / n_eff^(1-alpha): a correctly-sized deployment of n_eff
     nodes would hold the target interval, an under-estimated one drifts
     shorter. *)
  let per_node_mean = block_time *. Float.pow (Float.max 1.0 n_eff) alpha in
  let produced = ref 0 in
  let adopted = ref 0 in
  let adoption_times = ref [] in
  let canonical : (int, block) Hashtbl.t = Hashtbl.create 256 in
  let rng = Rng.split_named (Engine.rng engine) "poet-net" in
  let states =
    Array.init n (fun id ->
        let enclave =
          Enclave.create ~keystore ~id ~measurement:"poet" ~rng:(Engine.rng engine) ~costs
            ~charge:(fun _ -> ())
            ~now:(fun () -> Engine.now engine)
        in
        { id; enclave = Poet_enclave.create enclave; height = 1; attempt = 0; gen = 0 })
  in
  (* Gossip dissemination: a block crosses ~log8(n) relay hops, each
     paying one link transfer plus propagation; the receiver's downlink
     also serializes concurrent block deliveries, which is what melts the
     fabric down when stale blocks multiply. *)
  let gossip_depth = int_of_float (Float.ceil (log (float_of_int (Int.max 2 n)) /. log 8.0)) in
  let downlink_free = Array.make n 0.0 in
  let propagation src dst =
    let src_region = Topology.region_of_node topology src in
    let dst_region = Topology.region_of_node topology dst in
    let hop () =
      Topology.latency topology rng ~src_region ~dst_region
      +. Topology.transfer_time topology ~bytes:block_bytes
    in
    let path = ref 0.0 in
    for _ = 1 to gossip_depth do
      path := !path +. hop ()
    done;
    !path
  in
  let relay_fanout = Int.min 8 (Int.max 1 (n - 1)) in
  let deliver_at dst base_arrival =
    (* The destination's NIC both receives the block body and relays it to
       its gossip fan-out, one transfer each, on the same constrained link
       — the 50 Mbps fabric of Appendix C.1.  Stale blocks multiply this
       traffic, which is what melts large PoET deployments down. *)
    let start = Float.max base_arrival downlink_free.(dst) in
    let busy =
      Topology.transfer_time topology ~bytes:block_bytes *. float_of_int (1 + relay_fanout)
    in
    downlink_free.(dst) <- start +. busy;
    start +. Topology.transfer_time topology ~bytes:block_bytes
  in
  let rec compete st =
    let height = st.height and gen = st.gen in
    let s = slot ~height ~attempt:st.attempt in
    let wait = Poet_enclave.draw_wait st.enclave ~height:s ~mean_wait:per_node_mean in
    Engine.schedule engine ~delay:wait (fun () ->
        if st.gen = gen then
          match Poet_enclave.certificate st.enclave ~height:s ~l_bits ~now:(Engine.now engine) with
          | None -> ()
          | Some cert ->
              if cert.Poet_enclave.lucky then produce st ~height
              else begin
                (* Out of luck for this slot: rejoin the race. *)
                st.attempt <- st.attempt + 1;
                compete st
              end)
  and produce st ~height =
    incr produced;
    let blk = { height; producer = st.id; born = Engine.now engine } in
    if not (Hashtbl.mem canonical height) then begin
      Hashtbl.replace canonical height blk;
      incr adopted;
      adoption_times := blk.born :: !adoption_times
    end;
    let uplink = Topology.transfer_time topology ~bytes:block_bytes in
    Array.iteri
      (fun j other ->
        if j <> st.id then begin
          (* The producer seeds 8 gossip streams; deeper fan-out is covered
             by the hop count inside [propagation]. *)
          let serialize = float_of_int (j mod 8) *. uplink /. 8.0 in
          let arrival = Engine.now engine +. serialize +. propagation st.id j in
          let finish = deliver_at j arrival in
          Engine.schedule_at engine ~time:finish (fun () -> receive other blk)
        end)
      states;
    advance st ~next:(height + 1)
  and receive st blk = if blk.height >= st.height then advance st ~next:(blk.height + 1)
  and advance st ~next =
    st.gen <- st.gen + 1;
    st.height <- next;
    st.attempt <- 0;
    compete st
  in
  Array.iter compete states;
  Engine.run engine ~until:duration;
  let sorted = List.sort Float.compare !adoption_times in
  let mean_interval =
    match sorted with
    | [] | [ _ ] -> 0.0
    | first :: _ ->
        let last = List.fold_left (fun _ x -> x) first sorted in
        (last -. first) /. float_of_int (List.length sorted - 1)
  in
  {
    produced = !produced;
    adopted = !adopted;
    stale_rate =
      (if !produced = 0 then 0.0
       else float_of_int (!produced - !adopted) /. float_of_int !produced);
    throughput = float_of_int (!adopted * txs_per_block) /. duration;
    mean_interval;
  }
