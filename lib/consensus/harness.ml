open Repro_util
open Repro_crypto
open Repro_sim
open Types

type workload =
  | Open_loop of { rate : float; clients : int }
  | Closed_loop of { clients : int; outstanding : int; think : float }

type result = {
  throughput : float;
  latency_mean : float;
  latency_p50 : float;
  latency_p99 : float;
  committed : int;
  view_changes : int;
  view_change_attempts : int;
  blocks : int;
  consensus_cost_per_block : float;
  execution_cost_per_block : float;
  dropped_requests : int;
  dropped_consensus : int;
  messages_sent : int;
}

let run ?(seed = 1L) ?(duration = 20.0) ?(warmup = 5.0) ?(byzantine = 0) ?byz_ids ?byz_strategy
    ?(crashes = []) ?(recovers = []) ?(cpu_scale = 1.0) ?(costs = Cost_model.default)
    ?(tune = fun (c : Config.t) -> c) ?(probe = Repro_obs.Probe.none) ~variant ~n ~topology
    ~workload () =
  let module Probe = Repro_obs.Probe in
  let engine = Engine.create ~seed in
  let cfg = tune (Config.default variant ~n) in
  let keystore = Keys.create_keystore (Engine.rng engine) in
  let metrics = Metrics.create engine in
  let faults =
    match byz_ids with
    | Some ids -> Faults.with_byzantine_ids ~n ~ids
    | None ->
        if byzantine = 0 then Faults.honest n
        else
          Faults.with_byzantine (Rng.split_named (Engine.rng engine) "faults") ~n ~count:byzantine
  in
  (* With scheduled crashes the default observer (lowest honest member)
     may be about to die; record metrics at the first member that stays
     honest and alive instead. *)
  let observer =
    match crashes with
    | [] -> None
    | _ ->
        let crashed i = List.exists (fun (m, _) -> Int.equal m i) crashes in
        let rec first i =
          if i >= n then None
          else if (not (Faults.is_byzantine faults i)) && not (crashed i) then Some i
          else first (i + 1)
        in
        first 0
  in
  let network : Pbft.msg Network.t = Network.create engine ~topology in
  (* Committee and nodes know each other through these mutable cells. *)
  let committee = ref None in
  let nodes =
    Array.init n (fun id ->
        Node.create engine ~id ~inbox_mode:(Config.inbox_mode cfg) ~handler:(fun node msg ->
            match !committee with
            | Some c -> Pbft.handle c ~member:(Node.id node) msg
            | None -> ()))
  in
  Array.iter (Network.register network) nodes;
  Network.set_probe network probe;
  let send ~src ~dst ~channel ~bytes m =
    Network.send network ~src:nodes.(src) ~dst ~channel ~bytes m
  in
  let charge ~member cost = Node.charge nodes.(member) (cost *. cpu_scale) in
  (* Closed-loop clients resubmit when their request commits at the
     observer replica. *)
  let on_commit : (int -> unit) ref = ref (fun _ -> ()) in
  let c =
    Pbft.create ~engine ~keystore ~costs ~config:cfg ~faults ~metrics
      ~enclave_base_id:0 ~send ~charge
      ~execute:(fun ~member ~seq:_ batch ->
        match !committee with
        | Some cm when member = Pbft.observer cm -> List.iter (fun q -> !on_commit q.req_id) batch
        | Some _ | None -> ())
  in
  (match observer with Some o -> Pbft.set_observer c o | None -> ());
  (match byz_strategy with Some s -> Pbft.set_byz_strategy c s | None -> ());
  committee := Some c;
  Pbft.set_probe c probe;
  Pbft.set_alive c (fun m -> not (Node.is_crashed nodes.(m)));
  List.iter
    (fun (m, at) ->
      Engine.schedule engine ~delay:at (fun () ->
          Probe.instant probe ~time:(Engine.now engine) ~cat:"harness"
            ~node:("r" ^ string_of_int m) "node_crash";
          Node.crash nodes.(m)))
    crashes;
  (* Scheduled recoveries: the node's inbox reopens and the replica asks
     its peers for the slots it missed (checkpoint catch-up). *)
  List.iter
    (fun (m, at) ->
      Engine.schedule engine ~delay:at (fun () ->
          if Node.is_crashed nodes.(m) then begin
            Probe.instant probe ~time:(Engine.now engine) ~cat:"harness"
              ~node:("r" ^ string_of_int m) "node_recover";
            Node.recover nodes.(m);
            Pbft.notify_recovered c ~member:m
          end))
    recovers;
  Pbft.start c;
  (* Inbox-depth counter series: sample twice a second while enabled, so
     queueing collapses (Fig. 9 saturation, flooding attacks) are visible
     in the trace without per-message event volume. *)
  if Probe.enabled probe then begin
    let rec sample_inboxes () =
      let now = Engine.now engine in
      Array.iter
        (fun node ->
          Probe.counter_sample probe ~time:now
            ~node:("r" ^ string_of_int (Node.id node))
            "inbox_depth"
            (float_of_int (Node.inbox_length node)))
        nodes;
      if now +. 0.5 <= duration then Engine.schedule engine ~delay:0.5 sample_inboxes
    in
    sample_inboxes ()
  end;
  (* ---------------- clients ---------------- *)
  let next_req_id = ref 0 in
  let client_rng = Rng.split_named (Engine.rng engine) "clients" in
  let submit ~client =
    let req_id = !next_req_id in
    incr next_req_id;
    let req = Types.request ~req_id ~client ~submitted:(Engine.now engine) () in
    let target = client mod n in
    let region = Topology.region_of_node topology target in
    Network.send_external network ~src_region:region ~dst:target
      ~channel:Pbft.request_channel
      ~bytes:(Pbft.bytes_of_msg cfg (Pbft.submit_via c ~member:target req))
      (Pbft.submit_via c ~member:target req);
    req_id
  in
  (match workload with
  | Open_loop { rate; clients } ->
      let clients = Int.max 1 clients in
      let per_client = rate /. float_of_int clients in
      for client = 0 to clients - 1 do
        let rng = Rng.split_named client_rng (string_of_int client) in
        let rec arrival () =
          ignore (submit ~client);
          Engine.schedule engine
            ~delay:(Rng.exponential rng ~mean:(1.0 /. per_client))
            arrival
        in
        (* Ramp clients up over the first second so the run does not open
           with one giant synchronized burst. *)
        Engine.schedule engine ~delay:(Rng.float rng 1.0) arrival
      done
  | Closed_loop { clients; outstanding; think } ->
      let in_flight : (int, int) Hashtbl.t = Hashtbl.create 1024 in
      (* req_id -> client *)
      let rec resubmit client =
        let req_id = submit ~client in
        Hashtbl.replace in_flight req_id client;
        (* BLOCKBENCH-style client timeout: give up on a lost request and
           issue a fresh one, so inbox drops cannot leak the window. *)
        Engine.schedule engine ~delay:10.0 (fun () ->
            if Hashtbl.mem in_flight req_id then begin
              Hashtbl.remove in_flight req_id;
              resubmit client
            end)
      in
      on_commit :=
        (fun req_id ->
          match Hashtbl.find_opt in_flight req_id with
          | None -> ()
          | Some client ->
              Hashtbl.remove in_flight req_id;
              if think > 0.0 then Engine.schedule engine ~delay:think (fun () -> resubmit client)
              else resubmit client);
      for client = 0 to clients - 1 do
        for _ = 1 to outstanding do
          Engine.schedule engine
            ~delay:(Rng.float client_rng 0.05)
            (fun () -> resubmit client)
        done
      done);
  Engine.run engine ~until:duration;
  if Probe.enabled probe then begin
    Probe.set_gauge probe "net.sent" (float_of_int (Network.sent_count network));
    Probe.set_gauge probe "net.delivered" (float_of_int (Network.delivered_count network))
  end;
  (* ---------------- results ---------------- *)
  let latencies = Metrics.latency_stats metrics in
  let blocks = Metrics.counter metrics "blocks" in
  let per_block gauge = if blocks = 0 then 0.0 else Metrics.gauge metrics gauge /. float_of_int blocks in
  let dropped channel =
    Array.fold_left (fun acc node -> acc + Node.inbox_dropped node channel) 0 nodes
  in
  {
    throughput = Metrics.throughput metrics ~warmup;
    latency_mean = Stats.mean latencies;
    latency_p50 = Stats.percentile latencies 50.0;
    latency_p99 = Stats.percentile latencies 99.0;
    committed = Metrics.committed metrics;
    view_changes = Metrics.counter metrics "view_changes";
    view_change_attempts = Metrics.counter metrics "view_change_started";
    blocks;
    consensus_cost_per_block = per_block "consensus_cost";
    execution_cost_per_block = per_block "execution_cost";
    dropped_requests = dropped Inbox.Request;
    dropped_consensus = dropped Inbox.Consensus;
    messages_sent = Network.sent_count network;
  }

let pp_result fmt r =
  Format.fprintf fmt
    "tps=%.1f lat(mean/p50/p99)=%.3f/%.3f/%.3f committed=%d blocks=%d vc=%d/%d drops(req/cons)=%d/%d msgs=%d"
    r.throughput r.latency_mean r.latency_p50 r.latency_p99 r.committed r.blocks r.view_changes
    r.view_change_attempts r.dropped_requests r.dropped_consensus r.messages_sent
