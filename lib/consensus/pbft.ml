open Repro_crypto
open Repro_sim
open Repro_sgx
open Types
module Probe = Repro_obs.Probe
module Ev = Repro_obs.Event

type msg =
  | Request of { req : request; relayed : bool }
  | Forward of request
  | Pre_prepare of { view : int; seq : int; batch : request list; digest : int }
  | Prepare of { view : int; seq : int; digest : int; sender : int }
  | Commit of { view : int; seq : int; digest : int; sender : int }
  | Checkpoint of { seq : int; digest : int; sender : int }
  | Fetch of { since : int; sender : int }
  | Fetch_resp of {
      sender : int;
      view : int;
      ckpt : (int * int * int list) option;
      blocks : (int * int * int * request list) list;
    }
  | View_change of {
      target : int;
      sender : int;
      last_stable : int;
      prepared : (int * int * int * request list) list;
    }
  | New_view of {
      view : int;
      sender : int;
      reproposals : (int * int * request list) list;
    }
  | Relay_vote of {
      phase : phase;
      view : int;
      seq : int;
      digest : int;
      sender : int;
      vote : Keys.signature;
    }
  | Quorum_cert of {
      phase : phase;
      view : int;
      seq : int;
      digest : int;
      proof : Aggregator.quorum_proof;
    }

type replica = {
  index : int;
  enclave : Enclave.t option;
  a2m : A2m.t option;
  mutable view : int;
  mutable active : bool;
  mutable vc_target : int;
  mutable vc_deadline : float;
  mutable last_exec : int;
  mutable last_exec_time : float;
  mutable last_stable : int;
  mutable next_seq : int;
  pending : request Queue.t;
  mutable oldest_pending_since : float;
  queued : (int, unit) Hashtbl.t; (* req ids in pending or proposed by me *)
  known : (int, request) Hashtbl.t; (* unexecuted requests this replica knows *)
  executed : (int, unit) Hashtbl.t;
  preprep : (int, int * int * request list) Hashtbl.t; (* seq -> view, digest, batch *)
  prepares : Quorum.t;
  commits : Quorum.t;
  prepared : (int, int) Hashtbl.t; (* seq -> digest *)
  committed : (int, int * int * request list) Hashtbl.t; (* seq -> view, digest, batch *)
  checkpoints : Quorum.t;
  mutable exec_root : int;
      (* chained digest of every batch executed so far: equal across honest
         replicas at equal last_exec, so it doubles as the checkpoint root *)
  roots : (int, int) Hashtbl.t; (* checkpoint seq -> my exec_root there *)
  ckpt_certs : (int, int * int list) Hashtbl.t;
      (* checkpoint seq -> (certified root, quorum of signers) *)
  history : (int, int * int * request list) Hashtbl.t;
      (* executed seq -> (view, digest, batch), a watermark_window-deep ring
         kept past stabilization so recovering peers can replay, not skip *)
  mutable fetching : bool; (* one outstanding catch-up request at a time *)
  mutable gap_timer_armed : bool; (* a commit-above-a-hole check is pending *)
  vc_votes : Quorum.t; (* keyed: view=target, seq=0, digest=0 *)
  vc_prepared : (int, (int, int * int * request list) Hashtbl.t) Hashtbl.t;
      (* target -> seq -> (view, digest, batch), keeping highest view *)
  relay_pool : (int * int * int * int, Keys.signature list ref) Hashtbl.t;
  relay_done : (int * int * int * int, unit) Hashtbl.t;
  mutable earliest_known : float;
  mutable batch_timer_armed : bool;
  mutable drip_next : float; (* byz slow-drip leader: earliest next emission *)
}

type leader_attack =
  | Leader_stall
      (** win the leader slot (emit a credible New_view), then withhold every
          pre-prepare: honest replicas must depose the primary by timeout *)
  | Leader_serve_only of int list
      (** as leader, serve pre-prepares and commit votes only to the listed
          peers; everyone else starves and must rely on relay or catch-up *)
  | Leader_drip of float
      (** as leader, emit at most one batch every given interval — pick it
          just under the watchdog period to probe the detection boundary *)

type byz_strategy = {
  vote_noise : bool;  (** spam garbage prepare votes on every pre-prepare *)
  naive_equivocation : bool;
      (** per-half conflicting digests on overheard pre-prepares (fabricated
          batches, so honest replicas can never commit them) *)
  split_brain : bool;
      (** as view-0 leader, propose two real conflicting batches and drive
          each committee half to commit its own — the Figure 8/16 attack *)
  silent_toward : int list;  (** peers this replica never talks to *)
  stale_view_replay : bool;
      (** stash overheard prepares and replay them after a new view *)
  leader_attack : leader_attack option;
      (** byzantine replicas campaign for (and win) leader slots, then
          attack them — the Fig. 16 right-panel adversary *)
}

type committee = {
  engine : Engine.t;
  keystore : Keys.keystore;
  costs : Cost_model.t;
  cfg : Config.t;
  faults : Faults.t;
  metrics : Metrics.t;
  send_cb : src:int -> dst:int -> channel:Inbox.channel -> bytes:int -> msg -> unit;
  charge_cb : member:int -> float -> unit;
  execute_cb : member:int -> seq:int -> request list -> unit;
  mutable replicas : replica array;
  mutable observer : int;
  rng : Repro_util.Rng.t;
  mutable alive : int -> bool;
      (* embedding hook: timers of nodes that are offline (crashed or
         transitioning between shards) must not fire *)
  mutable byz : byz_strategy;
  equiv_plans : (int * int, int * request list * int * request list) Hashtbl.t;
      (* (view, seq) -> digest_a, batch_a, digest_b, batch_b: the colluding
         replicas' shared script for a split-brain sequence number *)
  mutable stale_log : msg list;
  mutable commit_hook :
    member:int -> view:int -> seq:int -> digest:int -> batch:request list -> unit;
  mutable snapshot_fetch : member:int -> seq:int -> digest:int -> k:(bool -> unit) -> unit;
      (* embedding hook modelling Section 5.3 state transfer: fetch and
         verify a snapshot certified at [seq]; [k true] on verified install *)
  mutable probe : Probe.t;
}

let default_byz_strategy =
  {
    vote_noise = true;
    naive_equivocation = true;
    split_brain = false;
    silent_toward = [];
    stale_view_replay = false;
    leader_attack = None;
  }

let request_channel = Inbox.Request

let consensus_channel = Inbox.Consensus

let phase_index = function Prepare_phase -> 1 | Commit_phase -> 2

(* A2M log ids: one log per (phase, view), so a replica cannot attest two
   different digests for the same slot within a view, while new views can
   legitimately re-propose a sequence number. *)
let a2m_log ~phase_idx ~view = (view * 4) + phase_idx

let vote_tag ~phase ~view ~seq ~digest =
  Repro_util.Det.stable_hash
    (Printf.sprintf "rvote:%d:%d:%d:%d" (phase_index phase) view seq digest)

let bytes_of_msg (cfg : Config.t) = function
  | Request { req; _ } | Forward req -> cfg.request_overhead_bytes + req.size
  | Pre_prepare { batch; _ } -> cfg.consensus_msg_bytes + batch_bytes batch
  | View_change { prepared; _ } ->
      List.fold_left
        (fun acc (_, _, _, batch) -> acc + batch_bytes batch)
        cfg.consensus_msg_bytes prepared
  | New_view { reproposals; _ } ->
      List.fold_left
        (fun acc (_, _, batch) -> acc + batch_bytes batch)
        cfg.consensus_msg_bytes reproposals
  | Fetch_resp { ckpt; blocks; _ } ->
      let cert_bytes = match ckpt with None -> 0 | Some (_, _, voters) -> 64 * List.length voters in
      List.fold_left
        (fun acc (_, _, _, batch) -> acc + batch_bytes batch)
        (cfg.consensus_msg_bytes + cert_bytes)
        blocks
  | Prepare _ | Commit _ | Checkpoint _ | Fetch _ | Relay_vote _ | Quorum_cert _ ->
      cfg.consensus_msg_bytes

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let now c = Engine.now c.engine

let n_of c = c.cfg.Config.n

let f_of c = Config.f_of c.cfg

let quorum c = Config.quorum_size c.cfg

let leader_of_view_int c v = ((v mod n_of c) + n_of c) mod n_of c

let is_leader c r = r.active && leader_of_view_int c r.view = r.index

let is_byz c r = Faults.is_byzantine c.faults r.index

let observer c = c.observer

let at_observer c r f = if r.index = c.observer then f ()

let rname r = "r" ^ string_of_int r.index

(* Trace emitters are guarded on [Probe.enabled] at every call site so an
   uninstrumented run neither builds the args list nor takes the call. *)
let probe_instant c r ~cat ?args name =
  Probe.instant c.probe ~time:(Engine.now c.engine) ~cat ~node:(rname r) ?args name

let charge_consensus c r cost =
  c.charge_cb ~member:r.index cost;
  at_observer c r (fun () -> Metrics.add_to c.metrics "consensus_cost" cost)

let charge_exec c r cost =
  c.charge_cb ~member:r.index cost;
  at_observer c r (fun () -> Metrics.add_to c.metrics "execution_cost" cost)

let send c r ~dst ~channel m =
  (* Tiny per-copy serialization cost so O(N) broadcast fan-out is not
     free at the sender. *)
  charge_consensus c r c.cfg.Config.msg_parse_cost;
  c.send_cb ~src:r.index ~dst ~channel ~bytes:(bytes_of_msg c.cfg m) m

let broadcast c r ~channel m =
  for dst = 0 to n_of c - 1 do
    if dst <> r.index then send c r ~dst ~channel m
  done

(* Charge the cost of authenticating an outgoing protocol statement: an
   A2M append (which embeds the TEE signature) for attested variants, a
   plain ECDSA signature otherwise.  Returns false if the attested log
   refused the append (equivocation or recovery). *)
let authenticate c r ~phase_idx ~view ~slot ~digest =
  match r.a2m with
  | Some a2m -> (
      match A2m.append a2m ~log:(a2m_log ~phase_idx ~view) ~slot ~digest_tag:digest with
      | Some _ -> true
      | None ->
          (* The attested log refused the append: an equivocation (or a
             post-recovery replay) was blocked right here. *)
          if Probe.enabled c.probe then begin
            Probe.incr c.probe "pbft.equivocation_blocked";
            probe_instant c r ~cat:"pbft"
              ~args:[ ("view", Ev.I view); ("slot", Ev.I slot); ("phase", Ev.I phase_idx) ]
              "a2m_refused"
          end;
          false)
  | None ->
      charge_consensus c r c.costs.Cost_model.ecdsa_sign;
      true

let verify_in c r = charge_consensus c r (c.cfg.Config.msg_parse_cost +. c.costs.Cost_model.ecdsa_verify)

let parse_in c r cost = charge_consensus c r cost

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let make_replica c ~enclave_base_id index =
  let enclave =
    if c.cfg.Config.variant.Config.attested || c.cfg.Config.variant.Config.relay then
      Some
        (Enclave.create ~keystore:c.keystore ~id:(enclave_base_id + index)
           ~measurement:("pbft-" ^ c.cfg.Config.variant.Config.name) ~rng:(Engine.rng c.engine)
           ~costs:c.costs
           ~charge:(fun cost -> c.charge_cb ~member:index cost)
           ~now:(fun () -> Engine.now c.engine))
    else None
  in
  let a2m =
    if c.cfg.Config.variant.Config.attested then
      Some (A2m.create (Option.get enclave) ~watermark_window:c.cfg.Config.watermark_window)
    else None
  in
  {
    index;
    enclave;
    a2m;
    view = 0;
    active = true;
    vc_target = 0;
    vc_deadline = infinity;
    last_exec = 0;
    last_exec_time = 0.0;
    last_stable = 0;
    next_seq = 1;
    pending = Queue.create ();
    oldest_pending_since = infinity;
    queued = Hashtbl.create 256;
    known = Hashtbl.create 256;
    executed = Hashtbl.create 1024;
    preprep = Hashtbl.create 128;
    prepares = Quorum.create ~n:c.cfg.Config.n;
    commits = Quorum.create ~n:c.cfg.Config.n;
    prepared = Hashtbl.create 128;
    committed = Hashtbl.create 128;
    checkpoints = Quorum.create ~n:c.cfg.Config.n;
    exec_root = 0;
    roots = Hashtbl.create 32;
    ckpt_certs = Hashtbl.create 32;
    history = Hashtbl.create 256;
    fetching = false;
    gap_timer_armed = false;
    vc_votes = Quorum.create ~n:c.cfg.Config.n;
    vc_prepared = Hashtbl.create 8;
    relay_pool = Hashtbl.create 64;
    relay_done = Hashtbl.create 64;
    earliest_known = infinity;
    batch_timer_armed = false;
    drip_next = 0.0;
  }

let create ~engine ~keystore ~costs ~config ~faults ~metrics ~enclave_base_id ~send ~charge
    ~execute =
  if Faults.size faults <> config.Config.n then
    Sim_error.invalid "Pbft.create: fault roster size must equal n";
  let obs =
    let rec first i =
      if i >= config.Config.n then 0
      else
        match Faults.behavior faults i with
        | Faults.Honest -> i
        | Faults.Crashed | Faults.Byzantine -> first (i + 1)
    in
    first 0
  in
  let c =
    {
      engine;
      keystore;
      costs;
      cfg = config;
      faults;
      metrics;
      send_cb = send;
      charge_cb = charge;
      execute_cb = execute;
      replicas = [||];
      observer = obs;
      rng = Repro_util.Rng.split_named (Engine.rng engine) "pbft";
      alive = (fun _ -> true);
      byz = default_byz_strategy;
      equiv_plans = Hashtbl.create 16;
      stale_log = [];
      commit_hook = (fun ~member:_ ~view:_ ~seq:_ ~digest:_ ~batch:_ -> ());
      snapshot_fetch = (fun ~member:_ ~seq:_ ~digest:_ ~k -> k true);
      probe = Probe.none;
    }
  in
  c.replicas <- Array.init config.Config.n (make_replica c ~enclave_base_id);
  c

(* ------------------------------------------------------------------ *)
(* Request intake and leader batching                                  *)
(* ------------------------------------------------------------------ *)

let add_known c r req =
  if (not (Hashtbl.mem r.executed req.req_id)) && not (Hashtbl.mem r.known req.req_id) then begin
    if Hashtbl.length r.known = 0 then r.earliest_known <- now c;
    Hashtbl.replace r.known req.req_id req
  end

let add_pending c r req =
  if (not (Hashtbl.mem r.executed req.req_id)) && not (Hashtbl.mem r.queued req.req_id) then begin
    if Queue.is_empty r.pending then r.oldest_pending_since <- now c;
    Queue.add req r.pending;
    Hashtbl.replace r.queued req.req_id ()
  end

let relay_pool_key ~phase ~view ~seq ~digest = (phase_index phase, view, seq, digest)

let rec try_propose c r =
  if is_leader c r && not (is_byz c r) then begin
    let cfg = c.cfg in
    let outstanding = r.next_seq - 1 - r.last_exec in
    let window_open =
      outstanding < cfg.Config.pipeline_window
      && r.next_seq < r.last_stable + cfg.Config.watermark_window
    in
    let batch_ready =
      Queue.length r.pending >= cfg.Config.batch_max
      || ((not (Queue.is_empty r.pending))
         && now c -. r.oldest_pending_since >= cfg.Config.batch_delay)
    in
    if window_open && batch_ready then begin
      let batch = ref [] in
      let count = Int.min cfg.Config.batch_max (Queue.length r.pending) in
      for _ = 1 to count do
        batch := Queue.take r.pending :: !batch
      done;
      let batch = List.rev !batch in
      r.oldest_pending_since <- now c;
      let digest = digest_of_batch batch in
      let seq = r.next_seq in
      (* The leader validates client signatures before proposing. *)
      charge_consensus c r
        (float_of_int (List.length batch) *. c.cfg.Config.client_sig_verify);
      if authenticate c r ~phase_idx:0 ~view:r.view ~slot:seq ~digest then begin
        r.next_seq <- seq + 1;
        Hashtbl.replace r.preprep seq (r.view, digest, batch);
        List.iter (add_known c r) batch;
        if Probe.enabled c.probe then begin
          Probe.incr c.probe "pbft.pre_prepares";
          probe_instant c r ~cat:"pbft"
            ~args:[ ("seq", Ev.I seq); ("view", Ev.I r.view); ("batch", Ev.I (List.length batch)) ]
            "pre_prepare"
        end;
        broadcast c r ~channel:consensus_channel (Pre_prepare { view = r.view; seq; batch; digest });
        (* The pre-prepare stands for the leader's prepare vote. *)
        ignore (Quorum.vote r.prepares ~view:r.view ~seq ~digest ~member:r.index);
        if cfg.Config.variant.Config.relay then leader_self_vote c r ~phase:Prepare_phase ~seq ~digest
      end;
      try_propose c r
    end
    else if window_open && not (Queue.is_empty r.pending) then
      (* Waiting for the batch to fill or age; a timer re-checks.  When the
         window is closed instead, execution progress re-triggers us. *)
      arm_batch_timer c r
  end

and arm_batch_timer c r =
  if not r.batch_timer_armed then begin
    r.batch_timer_armed <- true;
    let fire_in =
      Float.max 1e-4 (r.oldest_pending_since +. c.cfg.Config.batch_delay -. now c)
    in
    Engine.schedule c.engine ~delay:fire_in (fun () ->
        r.batch_timer_armed <- false;
        if c.alive r.index then try_propose c r)
  end

(* AHLR: the leader contributes its own signed vote to the pool and
   aggregates once the pool holds a quorum. *)
and leader_self_vote c r ~phase ~seq ~digest =
  let enclave = Option.get r.enclave in
  charge_consensus c r c.costs.Cost_model.ecdsa_sign;
  let vote = Enclave.sign_free enclave ~msg_tag:(vote_tag ~phase ~view:r.view ~seq ~digest) in
  relay_collect c r ~phase ~view:r.view ~seq ~digest ~vote

and relay_collect c r ~phase ~view ~seq ~digest ~vote =
  let key = relay_pool_key ~phase ~view ~seq ~digest in
  if not (Hashtbl.mem r.relay_done key) then begin
    let pool =
      match Hashtbl.find_opt r.relay_pool key with
      | Some p -> p
      | None ->
          let p = ref [] in
          Hashtbl.replace r.relay_pool key p;
          p
    in
    (* Dedup by signer. *)
    if not (List.exists (fun (v : Keys.signature) -> v.Keys.signer = vote.Keys.signer) !pool)
    then pool := vote :: !pool;
    if List.length !pool >= quorum c then begin
      let enclave = Option.get r.enclave in
      (* Occasional heavy-tailed aggregation (EPC paging on real SGX): the
         larger the quorum, the longer the stall — this is what makes the
         AHLR leader miss relay deadlines at scale (Section 7.1). *)
      if Repro_util.Rng.float c.rng 1.0 < c.cfg.Config.relay_tail_prob then
        charge_consensus c r
          (Cost_model.ahlr_aggregate c.costs ~f:(f_of c)
          *. (c.cfg.Config.relay_tail_factor -. 1.0));
      match
        Aggregator.aggregate enclave ~f:(f_of c) ~stmt_tag:(vote_tag ~phase ~view ~seq ~digest)
          ~votes:!pool
      with
      | None -> ()
      | Some proof ->
          Hashtbl.replace r.relay_done key ();
          Hashtbl.remove r.relay_pool key;
          broadcast c r ~channel:consensus_channel (Quorum_cert { phase; view; seq; digest; proof });
          apply_quorum_cert c r ~phase ~view ~seq ~digest
    end
  end

(* A quorum certificate (or a full vote quorum) has been established for
   (phase, view, seq, digest) at this replica. *)
and apply_quorum_cert c r ~phase ~view ~seq ~digest =
  match phase with
  | Prepare_phase -> mark_prepared c r ~view ~seq ~digest
  | Commit_phase -> mark_committed c r ~seq ~digest

and mark_prepared c r ~view ~seq ~digest =
  if (not (Hashtbl.mem r.prepared seq)) && view = r.view then begin
    match Hashtbl.find_opt r.preprep seq with
    | Some (v, d, _) when v = view && d = digest ->
        Hashtbl.replace r.prepared seq digest;
        if Probe.enabled c.probe && r.index = c.observer then begin
          Probe.incr c.probe "pbft.prepared";
          probe_instant c r ~cat:"pbft"
            ~args:[ ("seq", Ev.I seq); ("view", Ev.I view) ]
            "prepared"
        end;
        if c.cfg.Config.variant.Config.relay then begin
          if is_leader c r then leader_self_vote c r ~phase:Commit_phase ~seq ~digest
          else begin
            let enclave = Option.get r.enclave in
            charge_consensus c r c.costs.Cost_model.ecdsa_sign;
            let vote =
              Enclave.sign_free enclave ~msg_tag:(vote_tag ~phase:Commit_phase ~view ~seq ~digest)
            in
            send c r ~dst:(leader_of_view_int c r.view) ~channel:consensus_channel
              (Relay_vote { phase = Commit_phase; view; seq; digest; sender = r.index; vote })
          end
        end
        else if authenticate c r ~phase_idx:2 ~view ~slot:seq ~digest then begin
          broadcast c r ~channel:consensus_channel (Commit { view; seq; digest; sender = r.index });
          let n_votes = Quorum.vote r.commits ~view ~seq ~digest ~member:r.index in
          if n_votes >= quorum c then mark_committed c r ~seq ~digest
        end
    | Some _ | None -> ()
  end

and mark_committed c r ~seq ~digest =
  if not (Hashtbl.mem r.committed seq) then begin
    match Hashtbl.find_opt r.preprep seq with
    | Some (v, d, batch) when d = digest ->
        Hashtbl.replace r.committed seq (v, digest, batch);
        if Probe.enabled c.probe && r.index = c.observer then begin
          Probe.incr c.probe "pbft.committed";
          probe_instant c r ~cat:"pbft" ~args:[ ("seq", Ev.I seq) ] "committed"
        end;
        try_execute c r;
        (* Committed above a hole: peers decided slots I never saw (lost
           while crashed or to inbox drops).  Ordinary pipelining usually
           fills the hole within a timeout; if not, fetch the missing
           slots instead of stalling execution forever. *)
        if seq > r.last_exec && not r.gap_timer_armed then begin
          r.gap_timer_armed <- true;
          ignore
            (Engine.timer c.engine ~delay:c.cfg.Config.progress_timeout (fun () ->
                 r.gap_timer_armed <- false;
                 if
                   c.alive r.index
                   && (not (Faults.is_crashed c.faults r.index))
                   && (not r.fetching) && gapped c r
                 then request_catch_up c r))
        end
    | Some _ | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Execution, checkpoints, watermarks                                  *)
(* ------------------------------------------------------------------ *)

and try_execute c r =
  match Hashtbl.find_opt r.committed (r.last_exec + 1) with
  | None -> ()
  | Some (view, digest, batch) ->
      let seq = r.last_exec + 1 in
      let fresh = List.filter (fun q -> not (Hashtbl.mem r.executed q.req_id)) batch in
      charge_exec c r (float_of_int (List.length fresh) *. c.costs.Cost_model.tx_execute);
      List.iter
        (fun q ->
          Hashtbl.replace r.executed q.req_id ();
          Hashtbl.remove r.known q.req_id;
          Hashtbl.remove r.queued q.req_id)
        batch;
      c.commit_hook ~member:r.index ~view ~seq ~digest ~batch;
      c.execute_cb ~member:r.index ~seq fresh;
      at_observer c r (fun () ->
          Metrics.incr c.metrics "blocks";
          Metrics.commit c.metrics ~count:(List.length fresh);
          List.iter (fun q -> Metrics.commit_latency c.metrics ~submitted:q.submitted) fresh);
      if Probe.enabled c.probe && r.index = c.observer then begin
        Probe.incr c.probe "pbft.blocks";
        Probe.add c.probe "pbft.txs_executed" (List.length fresh);
        (* The gap since the previous execution at the observer: the
           per-block consensus interval, rendered as a span in Perfetto. *)
        Probe.span c.probe ~time:r.last_exec_time
          ~dur:(now c -. r.last_exec_time)
          ~cat:"pbft" ~node:(rname r)
          ~args:[ ("seq", Ev.I seq); ("txs", Ev.I (List.length fresh)) ]
          "block_interval";
        Probe.observe c.probe "pbft.block_interval_s" (now c -. r.last_exec_time)
      end;
      r.last_exec <- seq;
      r.last_exec_time <- now c;
      r.earliest_known <- now c;
      (* Fold the executed batch into the replica-local state root: honest
         replicas execute identical batches in identical order, so equal
         [last_exec] implies equal [exec_root] — certifying it certifies the
         state (DESIGN §16).  Keep the slot in the replay ring. *)
      r.exec_root <-
        Repro_util.Det.stable_hash (Printf.sprintf "ckpt:%d:%d:%d" r.exec_root seq digest);
      Hashtbl.replace r.history seq (view, digest, batch);
      Hashtbl.remove r.history (seq - c.cfg.Config.watermark_window);
      if seq mod c.cfg.Config.checkpoint_interval = 0 then begin
        Hashtbl.replace r.roots seq r.exec_root;
        (match Hashtbl.find_opt r.ckpt_certs seq with
        | Some (d, _) when d <> r.exec_root ->
            (* My replayed history disagrees with the committee's certified
               root: surfaced to the checkpoint-agreement oracle. *)
            if Probe.enabled c.probe then Probe.incr c.probe "ckpt.root_mismatch"
        | _ -> ());
        charge_consensus c r c.costs.Cost_model.ecdsa_sign;
        if Probe.enabled c.probe then begin
          Probe.incr c.probe "ckpt.proposed";
          probe_instant c r ~cat:"ckpt"
            ~args:[ ("seq", Ev.I seq); ("root", Ev.I r.exec_root) ]
            "checkpoint"
        end;
        broadcast c r ~channel:consensus_channel
          (Checkpoint { seq; digest = r.exec_root; sender = r.index });
        note_checkpoint_vote c r ~seq ~digest:r.exec_root ~member:r.index
      end;
      if is_leader c r then try_propose c r;
      try_execute c r

(* A checkpoint vote (mine or a peer's).  Once a quorum of matching roots
   is collected the certificate is recorded; replicas that executed through
   [seq] stabilize on it, replicas that are behind start catch-up — the
   certificate is the proof there is something to catch up to.  The old
   code jumped [last_exec] forward here without executing, permanently
   diverging any state materialized at this replica. *)
and note_checkpoint_vote c r ~seq ~digest ~member =
  let n_votes = Quorum.vote r.checkpoints ~view:0 ~seq ~digest ~member in
  if n_votes >= quorum c && not (Hashtbl.mem r.ckpt_certs seq) then begin
    Hashtbl.replace r.ckpt_certs seq (digest, Quorum.voters r.checkpoints ~view:0 ~seq ~digest);
    if Probe.enabled c.probe then begin
      Probe.incr c.probe "ckpt.certs";
      probe_instant c r ~cat:"ckpt"
        ~args:[ ("seq", Ev.I seq); ("root", Ev.I digest) ]
        "ckpt_cert"
    end;
    if r.last_exec >= seq then stabilize c r ~seq else request_catch_up c r
  end

and highest_cert r =
  Repro_util.Det.fold ~compare:Int.compare
    (fun seq (digest, _) acc ->
      match acc with Some (s, _) when s >= seq -> acc | _ -> Some (seq, digest))
    r.ckpt_certs None

and behind c r =
  ignore c;
  match highest_cert r with Some (s, _) -> s > r.last_exec | None -> false

(* Provably missing slots: a certificate above my execution point, or a
   committed slot I cannot reach because the one after [last_exec] never
   arrived. *)
and gapped c r =
  behind c r
  || Repro_util.Det.fold ~compare:Int.compare
       (fun s _ acc -> acc || s > r.last_exec)
       r.committed false

(* Ask f+1 peers for the slots (or a certified snapshot) I missed; at least
   one of them is correct.  One request outstanding at a time, re-armed on
   the progress timeout while a certificate still sits above [last_exec]. *)
and request_catch_up c r =
  if (not r.fetching) && not (is_byz c r) then begin
    r.fetching <- true;
    if Probe.enabled c.probe then begin
      Probe.incr c.probe "ckpt.fetch.requests";
      probe_instant c r ~cat:"ckpt" ~args:[ ("since", Ev.I r.last_exec) ] "fetch"
    end;
    charge_consensus c r c.costs.Cost_model.ecdsa_sign;
    let sent = ref 0 in
    for dst = 0 to n_of c - 1 do
      if dst <> r.index && !sent < f_of c + 1 then begin
        incr sent;
        send c r ~dst ~channel:consensus_channel (Fetch { since = r.last_exec; sender = r.index })
      end
    done;
    ignore
      (Engine.timer c.engine ~delay:c.cfg.Config.progress_timeout (fun () ->
           if r.fetching then begin
             r.fetching <- false;
             if c.alive r.index && (not (Faults.is_crashed c.faults r.index)) && gapped c r
             then request_catch_up c r
           end))
  end

and stabilize c r ~seq =
  if seq > r.last_stable && r.last_exec >= seq then begin
    r.last_stable <- seq;
    if Probe.enabled c.probe then Probe.incr c.probe "ckpt.stabilized";
    Quorum.forget_below r.prepares ~seq;
    Quorum.forget_below r.commits ~seq;
    (* The certified watermark keys all garbage collection: only slots
       below a *certified* checkpoint are forgotten, so uncertified votes
       are never discarded. *)
    Quorum.forget_below r.checkpoints ~seq;
    let drop_below table = Hashtbl.filter_map_inplace (fun s v -> if s <= seq then None else Some v) table in
    drop_below r.preprep;
    Hashtbl.filter_map_inplace (fun s v -> if s <= seq then None else Some v) r.prepared;
    drop_below r.committed;
    Hashtbl.filter_map_inplace (fun s v -> if s < seq then None else Some v) r.roots;
    Hashtbl.filter_map_inplace (fun s v -> if s < seq then None else Some v) r.ckpt_certs;
    (* [history] is deliberately not pruned here: it stays a full
       watermark_window ring so a recovering observer can replay slots
       below the stable point instead of skipping them. *)
    match r.a2m with
    | Some a2m ->
        A2m.truncate_below a2m ~slot:seq;
        ignore (A2m.seal_state a2m)
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* View changes                                                        *)
(* ------------------------------------------------------------------ *)

and start_view_change c r ~reason ~target =
  let current_goal = if r.active then r.view else r.vc_target in
  if target > current_goal then begin
    r.active <- false;
    r.vc_target <- target;
    (* Exponential retry backoff, capped: uncapped, a sustained stall across
       a run of faulty leaders inflates the deadline past any horizon and
       the committee never recovers (the Fig. 16 right-panel bug). *)
    let raw_backoff = Int.max 0 (target - r.view - 1) in
    let backoff = Int.min c.cfg.Config.vc_backoff_cap raw_backoff in
    if raw_backoff > backoff && Probe.enabled c.probe then
      Probe.incr c.probe "pbft.vc.backoff_capped";
    r.vc_deadline <- now c +. (c.cfg.Config.progress_timeout *. Float.pow 2.0 (float_of_int backoff));
    at_observer c r (fun () -> Metrics.incr c.metrics "view_change_started");
    if Probe.enabled c.probe then begin
      Probe.incr c.probe ("pbft.vc.reason." ^ reason);
      probe_instant c r ~cat:"pbft"
        ~args:[ ("target", Ev.I target); ("reason", Ev.S reason) ]
        "view_change_start"
    end;
    charge_consensus c r c.costs.Cost_model.ecdsa_sign;
    let prepared =
      Repro_util.Det.fold ~compare:Int.compare
        (fun seq digest acc ->
          match Hashtbl.find_opt r.preprep seq with
          | Some (view, d, batch) when d = digest -> (seq, view, digest, batch) :: acc
          | Some _ | None -> acc)
        r.prepared []
    in
    let m =
      View_change { target; sender = r.index; last_stable = r.last_stable; prepared }
    in
    broadcast c r ~channel:consensus_channel m;
    record_view_change_vote c r ~target ~sender:r.index ~prepared
  end

and record_view_change_vote c r ~target ~sender ~prepared =
  let merged =
    match Hashtbl.find_opt r.vc_prepared target with
    | Some table -> table
    | None ->
        let table = Hashtbl.create 16 in
        Hashtbl.replace r.vc_prepared target table;
        table
  in
  List.iter
    (fun (seq, view, digest, batch) ->
      match Hashtbl.find_opt merged seq with
      | Some (v, _, _) when v >= view -> ()
      | Some _ | None -> Hashtbl.replace merged seq (view, digest, batch))
    prepared;
  let votes = Quorum.vote r.vc_votes ~view:target ~seq:0 ~digest:0 ~member:sender in
  (* Join a view change when f+1 peers demand it. *)
  let goal = if r.active then r.view else r.vc_target in
  if votes >= f_of c + 1 && target > goal then start_view_change c r ~reason:"join-f+1" ~target;
  if
    votes >= quorum c
    && leader_of_view_int c target = r.index
    && (r.view < target || not r.active)
    && ((not (is_byz c r)) || Option.is_some c.byz.leader_attack)
    (* A byzantine replica running a leader attack emits a credible
       New_view — it wants to *win* the slot so it can attack it. *)
  then begin
    (* Become the new leader: re-propose surviving prepared certificates. *)
    let reproposals =
      Repro_util.Det.bindings ~compare:Int.compare merged
      |> List.filter_map (fun (seq, (_, digest, batch)) ->
             if seq > r.last_stable then Some (seq, digest, batch) else None)
    in
    charge_consensus c r c.costs.Cost_model.ecdsa_sign;
    broadcast c r ~channel:consensus_channel (New_view { view = target; sender = r.index; reproposals });
    adopt_new_view c r ~view:target ~reproposals
  end

and adopt_new_view c r ~view ~reproposals =
  if view > r.view || ((not r.active) && view >= r.vc_target) || (not r.active && view = r.view)
  then begin
    r.view <- Int.max view r.view;
    r.active <- true;
    r.vc_deadline <- infinity;
    at_observer c r (fun () -> Metrics.incr c.metrics "view_changes");
    if Probe.enabled c.probe then begin
      Probe.incr c.probe "pbft.vc.adopted";
      probe_instant c r ~cat:"pbft" ~args:[ ("view", Ev.I view) ] "new_view"
    end;
    (* Drop stale view-change bookkeeping. *)
    let stale =
      List.filter (fun t -> t <= view) (Repro_util.Det.keys ~compare:Int.compare r.vc_prepared)
    in
    List.iter (Hashtbl.remove r.vc_prepared) stale;
    (* Discard superseded-view pre-prepares that never reached a prepared
       certificate: a certificate would have travelled with the view-change
       votes and be re-proposed below, so what remains is a dead proposal —
       and holding it would make this replica refuse the new leader's
       re-proposal or no-op fill at that slot forever (the pre-prepare
       guard admits one digest per slot). *)
    Hashtbl.filter_map_inplace
      (fun seq ((pv, _, _) as entry) ->
        if pv < view && seq > r.last_exec && not (Hashtbl.mem r.committed seq) then None
        else Some entry)
      r.preprep;
    Hashtbl.filter_map_inplace
      (fun seq digest -> if Hashtbl.mem r.preprep seq then Some digest else None)
      r.prepared;
    (* Accept the new leader's re-proposals as view-v pre-prepares. *)
    List.iter
      (fun (seq, digest, batch) ->
        if seq > r.last_stable && seq > r.last_exec then begin
          Hashtbl.replace r.preprep seq (view, digest, batch);
          Hashtbl.remove r.prepared seq;
          respond_to_preprepare c r ~view ~seq ~digest
        end)
      reproposals;
    if leader_of_view_int c view = r.index then begin
      let max_repro = List.fold_left (fun acc (s, _, _) -> Int.max acc s) 0 reproposals in
      r.next_seq <- 1 + List.fold_left Int.max 0 [ r.last_stable; r.last_exec; max_repro; r.next_seq - 1 ];
      (* Requeue everything I know about that is not in flight. *)
      Hashtbl.reset r.queued;
      Queue.iter (fun q -> Hashtbl.replace r.queued q.req_id ()) r.pending;
      List.iter (fun (_, _, batch) -> List.iter (fun q -> Hashtbl.replace r.queued q.req_id ()) batch) reproposals;
      Repro_util.Det.iter ~compare:Int.compare (fun _ q -> add_pending c r q) r.known;
      (* Fill every slot below [next_seq] that neither committed nor got a
         re-proposal with a no-op batch (Castro–Liskov null requests): a
         proposal that died unprepared in the old view leaves a hole that
         no future proposal revisits, and execution — hence the whole
         committee — would stall on it into the next view change. *)
      let noop_digest = digest_of_batch [] in
      for seq = r.last_exec + 1 to r.next_seq - 1 do
        if (not (Hashtbl.mem r.preprep seq)) && not (Hashtbl.mem r.committed seq) then begin
          Hashtbl.replace r.preprep seq (view, noop_digest, []);
          if Probe.enabled c.probe then Probe.incr c.probe "pbft.vc.noop_fill";
          charge_consensus c r c.costs.Cost_model.ecdsa_sign;
          broadcast c r ~channel:consensus_channel
            (Pre_prepare { view; seq; batch = []; digest = noop_digest });
          ignore (Quorum.vote r.prepares ~view ~seq ~digest:noop_digest ~member:r.index);
          if c.cfg.Config.variant.Config.relay then
            leader_self_vote c r ~phase:Prepare_phase ~seq ~digest:noop_digest
        end
      done;
      try_propose c r
    end
    else begin
      (* Hand the new leader the requests we still wait on. *)
      let leader = leader_of_view_int c view in
      let budget = ref 128 in
      Repro_util.Det.iter ~compare:Int.compare
        (fun _ q ->
          if !budget > 0 then begin
            decr budget;
            send c r ~dst:leader ~channel:request_channel (Forward q)
          end)
        r.known
    end;
    r.earliest_known <- now c
  end

(* Replica-side response to an accepted pre-prepare: vote and move the
   prepare phase forward under the variant's communication pattern. *)
and respond_to_preprepare c r ~view ~seq ~digest =
  if c.cfg.Config.variant.Config.relay then begin
    if not (is_leader c r) then begin
      let enclave = Option.get r.enclave in
      charge_consensus c r c.costs.Cost_model.ecdsa_sign;
      let vote = Enclave.sign_free enclave ~msg_tag:(vote_tag ~phase:Prepare_phase ~view ~seq ~digest) in
      send c r ~dst:(leader_of_view_int c view) ~channel:consensus_channel
        (Relay_vote { phase = Prepare_phase; view; seq; digest; sender = r.index; vote });
      (* Relay watchdog: while this sequence is outstanding, any commit
         stall longer than the relay timeout means the leader is sitting on
         a quorum certificate — suspect it (the AHLR pathology of
         Section 7.1).  Ordinary pipelining keeps commits flowing, so the
         watchdog only fires on genuine leader stalls. *)
      let deadline = c.cfg.Config.relay_timeout in
      let rec watch () =
        if c.alive r.index && r.active && r.view = view && r.last_exec < seq then begin
          let stall = now c -. r.last_exec_time in
          if stall > deadline then start_view_change c r ~reason:"relay-stall" ~target:(r.view + 1)
          else ignore (Engine.timer c.engine ~delay:(deadline -. stall +. 1e-3) watch)
        end
      in
      ignore (Engine.timer c.engine ~delay:deadline watch)
    end
  end
  else if authenticate c r ~phase_idx:1 ~view ~slot:seq ~digest then begin
    broadcast c r ~channel:consensus_channel (Prepare { view; seq; digest; sender = r.index });
    let n_votes = Quorum.vote r.prepares ~view ~seq ~digest ~member:r.index in
    if n_votes >= quorum c then mark_prepared c r ~view ~seq ~digest
  end

(* ------------------------------------------------------------------ *)
(* Byzantine behaviours (the Figure 8/16 attack)                       *)
(* ------------------------------------------------------------------ *)

(* A Byzantine replica follows the committee's {!byz_strategy}.  The
   default mounts the paper's conflicting-message attack: on every
   pre-prepare it spams peers with garbage votes carrying wrong sequence
   numbers (burning honest verification CPU), and without A2M it also
   equivocates, telling half the committee a different digest — but those
   digests name fabricated batches, so they cost CPU without ever
   committing.  The scripted [split_brain] strategy is the real
   Figure 8/16 attack: the byzantine view-0 leader proposes two genuinely
   conflicting batches of real requests and drives each half of the
   committee to commit its own. *)
and byz_silent c dst = List.exists (fun id -> Int.equal id dst) c.byz.silent_toward

and byz_send c r ~dst m = if not (byz_silent c dst) then send c r ~dst ~channel:consensus_channel m

(* Side A of the split is the low-indexed half of the committee; with
   byzantine ids 0..f-1, the first honest replica (the observer) always
   lands on side A, which is also the side whose A2M append goes first and
   therefore survives attestation. *)
and byz_split_side_a c dst = 2 * dst < n_of c

and byz_try_split_propose c r =
  if leader_of_view_int c r.view = r.index then
    while Queue.length r.pending >= 2 do
      let a = Queue.take r.pending in
      let b = Queue.take r.pending in
      let seq = r.next_seq in
      r.next_seq <- seq + 1;
      let batch_a = [ a; b ] and batch_b = [ b; a ] in
      let digest_a = digest_of_batch batch_a and digest_b = digest_of_batch batch_b in
      Hashtbl.replace c.equiv_plans (r.view, seq) (digest_a, batch_a, digest_b, batch_b);
      (* Under A2M the first append per (log, slot) wins: side A's digest
         is attested, side B's is refused, and only one side's messages go
         out — exactly why the attack dies against AHL. *)
      let pp_a = authenticate c r ~phase_idx:0 ~view:r.view ~slot:seq ~digest:digest_a in
      let pp_b = authenticate c r ~phase_idx:0 ~view:r.view ~slot:seq ~digest:digest_b in
      let cm_a = authenticate c r ~phase_idx:2 ~view:r.view ~slot:seq ~digest:digest_a in
      let cm_b = authenticate c r ~phase_idx:2 ~view:r.view ~slot:seq ~digest:digest_b in
      for dst = 0 to n_of c - 1 do
        if dst <> r.index then begin
          let pp_ok, cm_ok, digest, batch =
            if byz_split_side_a c dst then (pp_a, cm_a, digest_a, batch_a)
            else (pp_b, cm_b, digest_b, batch_b)
          in
          if pp_ok then byz_send c r ~dst (Pre_prepare { view = r.view; seq; batch; digest });
          if cm_ok then byz_send c r ~dst (Commit { view = r.view; seq; digest; sender = r.index })
        end
      done
    done

(* A non-leader accomplice looks the plan up and votes both sides —
   each vote still gated by its own attested log. *)
and byz_collude_on_preprepare c r ~view ~seq =
  match Hashtbl.find_opt c.equiv_plans (view, seq) with
  | None -> ()
  | Some (digest_a, _, digest_b, _) ->
      let p_a = authenticate c r ~phase_idx:1 ~view ~slot:seq ~digest:digest_a in
      let p_b = authenticate c r ~phase_idx:1 ~view ~slot:seq ~digest:digest_b in
      let c_a = authenticate c r ~phase_idx:2 ~view ~slot:seq ~digest:digest_a in
      let c_b = authenticate c r ~phase_idx:2 ~view ~slot:seq ~digest:digest_b in
      for dst = 0 to n_of c - 1 do
        if dst <> r.index then begin
          let p_ok, c_ok, digest =
            if byz_split_side_a c dst then (p_a, c_a, digest_a) else (p_b, c_b, digest_b)
          in
          if p_ok then byz_send c r ~dst (Prepare { view; seq; digest; sender = r.index });
          if c_ok then byz_send c r ~dst (Commit { view; seq; digest; sender = r.index })
        end
      done

and byz_naive_equivocate c r ~view ~seq ~digest =
  if not c.cfg.Config.variant.Config.attested then
    (* Equivocation: conflicting digests to the two halves. *)
    for dst = 0 to n_of c - 1 do
      if dst <> r.index then
        let d = if dst < n_of c / 2 then digest else digest + 1 in
        send c r ~dst ~channel:consensus_channel (Prepare { view; seq; digest = d; sender = r.index })
    done
  else
    match r.a2m with
    | Some a2m ->
        (* Try to equivocate through the trusted log; the second append
           is refused, so only the honest vote goes out. *)
        let log = a2m_log ~phase_idx:1 ~view in
        (match A2m.append a2m ~log ~slot:seq ~digest_tag:digest with
        | Some _ ->
            broadcast c r ~channel:consensus_channel (Prepare { view; seq; digest; sender = r.index })
        | None -> ());
        (match A2m.append a2m ~log ~slot:seq ~digest_tag:(digest + 1) with
        | Some _ -> Sim_error.invalid "Pbft: A2M accepted a conflicting append for slot %d" seq
        | None -> ())
    | None -> ()

(* ---- Leader attacks (the Fig. 16 right panel) -------------------- *)

(* A byzantine replica running a leader attack tracks views like an honest
   one (it records view-change votes and adopts new views), campaigns for
   the leader slot, and — once it holds it — attacks it: total silence
   (stall), service restricted to a chosen subset, or batches dripped just
   under the watchdog period. *)
and byz_holds_slot c r = r.active && leader_of_view_int c r.view = r.index

(* Emit one honest-looking batch from the byzantine leader, restricted to
   [only] when given (selective serving).  The pre-prepare carries real
   requests and a correct digest, so served replicas make normal progress;
   a matching commit vote follows so the served subset can complete its
   commit quorum without the starved peers. *)
and byz_leader_emit c r ~only =
  if not (Queue.is_empty r.pending) then begin
    let batch = ref [] in
    let count = Int.min c.cfg.Config.batch_max (Queue.length r.pending) in
    for _ = 1 to count do
      batch := Queue.take r.pending :: !batch
    done;
    let batch = List.rev !batch in
    let digest = digest_of_batch batch in
    let seq = r.next_seq in
    r.next_seq <- seq + 1;
    let served dst = match only with None -> true | Some ids -> List.exists (Int.equal dst) ids in
    let pp_ok = authenticate c r ~phase_idx:0 ~view:r.view ~slot:seq ~digest in
    let cm_ok = authenticate c r ~phase_idx:2 ~view:r.view ~slot:seq ~digest in
    for dst = 0 to n_of c - 1 do
      if dst <> r.index && served dst then begin
        if pp_ok then byz_send c r ~dst (Pre_prepare { view = r.view; seq; batch; digest });
        if cm_ok then byz_send c r ~dst (Commit { view = r.view; seq; digest; sender = r.index })
      end
    done
  end

and byz_leader_drip c r ~delay =
  let t = now c in
  if Queue.is_empty r.pending then ()
  else if t >= r.drip_next then begin
    r.drip_next <- t +. delay;
    byz_leader_emit c r ~only:None
  end
  else if not r.batch_timer_armed then begin
    r.batch_timer_armed <- true;
    Engine.schedule c.engine
      ~delay:(Float.max 1e-4 (r.drip_next -. t))
      (fun () ->
        r.batch_timer_armed <- false;
        if c.alive r.index && byz_holds_slot c r then byz_leader_try_propose c r)
  end

and byz_leader_try_propose c r =
  if byz_holds_slot c r then
    match c.byz.leader_attack with
    | None | Some Leader_stall -> ()
    | Some (Leader_serve_only ids) -> byz_leader_emit c r ~only:(Some ids)
    | Some (Leader_drip delay) -> byz_leader_drip c r ~delay

and byz_handle c r m =
  (match m with
  | Prepare _ when c.byz.stale_view_replay && List.length c.stale_log < 16 ->
      c.stale_log <- m :: c.stale_log
  | _ -> ());
  let leader_attack = Option.is_some c.byz.leader_attack in
  match m with
  | Pre_prepare { view; seq; digest; _ } ->
      verify_in c r;
      if c.byz.split_brain then byz_collude_on_preprepare c r ~view ~seq;
      if c.byz.vote_noise then begin
        let garbage = Prepare { view; seq = seq + 100_000; digest = digest + 7; sender = r.index } in
        broadcast c r ~channel:consensus_channel garbage
      end;
      if c.byz.naive_equivocation then byz_naive_equivocate c r ~view ~seq ~digest
  | Request { req; _ } | Forward req ->
      parse_in c r c.cfg.Config.request_parse_cost;
      if c.byz.split_brain then begin
        add_pending c r req;
        byz_try_split_propose c r
      end
      else if leader_attack then begin
        add_pending c r req;
        byz_leader_try_propose c r
      end
  | View_change { target; sender; prepared; _ } when leader_attack ->
      (* Track (and vote in) view changes so the quorum that elects this
         replica is observed — winning the slot is the attack's entry. *)
      verify_in c r;
      record_view_change_vote c r ~target ~sender ~prepared;
      byz_leader_try_propose c r
  | New_view { view; sender; reproposals } ->
      parse_in c r c.cfg.Config.msg_parse_cost;
      if leader_attack && sender = leader_of_view_int c view then
        adopt_new_view c r ~view ~reproposals;
      if c.byz.stale_view_replay then
        List.iter (fun stale -> broadcast c r ~channel:consensus_channel stale) c.stale_log
  | _ -> parse_in c r c.cfg.Config.msg_parse_cost

(* ------------------------------------------------------------------ *)
(* Message handling                                                    *)
(* ------------------------------------------------------------------ *)

let handle_request c r req ~relayed =
  parse_in c r c.cfg.Config.request_parse_cost;
  if not (Hashtbl.mem r.executed req.req_id) then begin
    add_known c r req;
    let variant = c.cfg.Config.variant in
    if variant.Config.forward_requests then begin
      if is_leader c r then begin
        add_pending c r req;
        try_propose c r
      end
      else if not relayed then
        send c r ~dst:(leader_of_view_int c r.view) ~channel:request_channel (Forward req)
    end
    else begin
      (* Hyperledger behaviour: gossip the raw request to everyone. *)
      if not relayed then broadcast c r ~channel:request_channel (Request { req; relayed = true });
      if is_leader c r then begin
        add_pending c r req;
        try_propose c r
      end
    end
  end

let handle_pre_prepare c r ~view ~seq ~batch ~digest ~charge_batch =
  verify_in c r;
  (* Validating a pre-prepare means checking every transaction's client
     signature (amortized batch verification) plus the batch digest. *)
  if charge_batch then
    charge_consensus c r
      (float_of_int (List.length batch)
      *. (c.cfg.Config.client_sig_verify +. c.costs.Cost_model.sha256));
  if
    r.active && view = r.view
    && seq > r.last_stable
    && seq < r.last_stable + c.cfg.Config.watermark_window
    && (not (Hashtbl.mem r.preprep seq))
    && digest = digest_of_batch batch
  then begin
    Hashtbl.replace r.preprep seq (view, digest, batch);
    List.iter (add_known c r) batch;
    (* The pre-prepare carries the leader's prepare vote. *)
    let leader = leader_of_view_int c view in
    let after_leader_vote = Quorum.vote r.prepares ~view ~seq ~digest ~member:leader in
    respond_to_preprepare c r ~view ~seq ~digest;
    if (not c.cfg.Config.variant.Config.relay) && after_leader_vote + 1 >= quorum c then
      (* Quorum may already be complete counting our own vote. *)
      if Quorum.count r.prepares ~view ~seq ~digest >= quorum c then
        mark_prepared c r ~view ~seq ~digest
  end

let handle_prepare c r ~view ~seq ~digest ~sender =
  verify_in c r;
  if r.active && view = r.view then begin
    let n_votes = Quorum.vote r.prepares ~view ~seq ~digest ~member:sender in
    if n_votes >= quorum c && Hashtbl.mem r.preprep seq then mark_prepared c r ~view ~seq ~digest
  end

let handle_commit c r ~view ~seq ~digest ~sender =
  verify_in c r;
  if r.active && view = r.view then begin
    let n_votes = Quorum.vote r.commits ~view ~seq ~digest ~member:sender in
    if n_votes >= quorum c && Hashtbl.mem r.prepared seq then mark_committed c r ~seq ~digest
  end

let handle_checkpoint c r ~seq ~digest ~sender =
  verify_in c r;
  if seq > r.last_stable then note_checkpoint_vote c r ~seq ~digest ~member:sender
  else if Probe.enabled c.probe then
    (* Straggler vote below my watermark: that checkpoint is already
       certified and garbage-collected here — nothing to do. *)
    Probe.incr c.probe "ckpt.stale_msg"

(* Serve a catch-up request: contiguous slots after [since] out of the
   replay ring (which survives stabilization) plus my latest checkpoint
   certificate; when the requested slots are already beyond the ring, the
   certificate is the anchor and the blocks restart above it (the fetcher
   installs a verified snapshot for the gap). *)
let handle_fetch c r ~since ~sender =
  verify_in c r;
  if sender <> r.index && sender >= 0 && sender < n_of c then begin
    let block_at s =
      match Hashtbl.find_opt r.history s with
      | Some b -> Some b
      | None -> Hashtbl.find_opt r.committed s
    in
    let collect start =
      let rec go s acc n =
        if n >= 64 || s > r.last_exec then List.rev acc
        else
          match block_at s with
          | Some (view, digest, batch) -> go (s + 1) ((s, view, digest, batch) :: acc) (n + 1)
          | None -> List.rev acc
      in
      go start [] 0
    in
    let ckpt =
      match highest_cert r with
      | Some (s, _) when s > since -> (
          match Hashtbl.find_opt r.ckpt_certs s with
          | Some (digest, voters) -> Some (s, digest, voters)
          | None -> None)
      | _ -> None
    in
    let blocks =
      match collect (since + 1) with
      | _ :: _ as direct -> direct
      | [] -> ( match ckpt with Some (s, _, _) -> collect (s + 1) | None -> [])
    in
    if (not (List.is_empty blocks)) || Option.is_some ckpt then begin
      charge_consensus c r c.costs.Cost_model.ecdsa_sign;
      if Probe.enabled c.probe then begin
        Probe.incr c.probe "ckpt.fetch.served";
        Probe.add c.probe "ckpt.fetch.blocks_served" (List.length blocks)
      end;
      send c r ~dst:sender ~channel:consensus_channel
        (Fetch_resp { sender = r.index; view = r.view; ckpt; blocks })
    end
  end

(* Install a certified checkpoint without replaying up to it: the embedding
   has already transferred and verified a snapshot for everything below
   [seq] (or knows this replica materializes no state).  Anything this
   replica still tracked below the checkpoint is superseded. *)
let adopt_checkpoint c r ~seq ~digest =
  if r.last_exec < seq then begin
    r.last_exec <- seq;
    r.last_exec_time <- now c;
    r.exec_root <- digest;
    Hashtbl.replace r.roots seq digest;
    Queue.clear r.pending;
    r.oldest_pending_since <- infinity;
    Hashtbl.reset r.queued;
    Hashtbl.reset r.known;
    r.earliest_known <- infinity;
    r.next_seq <- Int.max r.next_seq (seq + 1);
    if not (Hashtbl.mem r.ckpt_certs seq) then
      Hashtbl.replace r.ckpt_certs seq (digest, Quorum.voters r.checkpoints ~view:0 ~seq ~digest);
    stabilize c r ~seq
  end

let handle_fetch_resp c r ~view ~ckpt ~blocks =
  verify_in c r;
  (* The responder's current view is a liveness hint: a replica that
     slept through a view change has no other way to learn it — the
     committee runs steadily in the new view, so there are no
     view-change votes left to join, and every pre-prepare it hears is
     tagged with a view it refuses.  Adopting the newer view re-opens
     its ears; a lying responder can only strand this one recovering
     replica, which the f-fault budget already covers. *)
  let goal = if r.active then r.view else r.vc_target in
  if view > goal then begin
    r.view <- view;
    r.active <- true;
    r.vc_deadline <- infinity;
    if Probe.enabled c.probe then begin
      Probe.incr c.probe "ckpt.view_adopted";
      probe_instant c r ~cat:"ckpt" ~args:[ ("view", Ev.I view) ] "view_from_fetch"
    end
  end;
  (* Learn (and verify) the certificate carried by the response. *)
  (match ckpt with
  | Some (seq, digest, voters) when seq > r.last_stable && not (Hashtbl.mem r.ckpt_certs seq) ->
      let signers =
        List.sort_uniq Int.compare (List.filter (fun m -> m >= 0 && m < n_of c) voters)
      in
      if List.length signers >= quorum c then begin
        charge_consensus c r
          (float_of_int (List.length signers) *. c.costs.Cost_model.ecdsa_verify);
        Hashtbl.replace r.ckpt_certs seq (digest, signers)
      end
  | _ -> ());
  let sorted = List.sort (fun (a, _, _, _) (b, _, _, _) -> Int.compare a b) blocks in
  let insert (seq, view, digest, batch) =
    if seq > r.last_exec && (not (Hashtbl.mem r.committed seq)) && digest = digest_of_batch batch
    then Hashtbl.replace r.committed seq (view, digest, batch)
  in
  let finish_step before =
    r.fetching <- false;
    if Probe.enabled c.probe && r.last_exec > before then begin
      Probe.incr c.probe "ckpt.fetch.applied";
      Probe.add c.probe "ckpt.fetch.blocks_replayed" (r.last_exec - before);
      Probe.observe c.probe "ckpt.catchup_slots" (float_of_int (r.last_exec - before))
    end;
    (* Still below a certificate (the 64-slot response cap): keep pulling. *)
    if r.last_exec > before && gapped c r then request_catch_up c r
  in
  let before = r.last_exec in
  if List.exists (fun (s, _, _, _) -> s = r.last_exec + 1) sorted then begin
    (* The response covers my next slot: replay through the normal
       execution path (state, metrics and checkpoint votes all advance). *)
    List.iter insert sorted;
    try_execute c r;
    finish_step before
  end
  else
    match highest_cert r with
    | Some (cseq, cdigest) when cseq > r.last_exec ->
        (* The missed slots are gone even from the serving peers' rings:
           transfer a snapshot certified at [cseq], then replay the tail. *)
        if Probe.enabled c.probe then Probe.incr c.probe "ckpt.fetch.snapshots";
        c.snapshot_fetch ~member:r.index ~seq:cseq ~digest:cdigest
          ~k:(fun ok ->
            if c.alive r.index && not (Faults.is_crashed c.faults r.index) then
              if ok then begin
                adopt_checkpoint c r ~seq:cseq ~digest:cdigest;
                List.iter insert sorted;
                try_execute c r;
                finish_step before
              end
              else begin
                (* Tampered or stale snapshot: reject and retry the fetch
                   (a different peer serves next time). *)
                if Probe.enabled c.probe then Probe.incr c.probe "ckpt.fetch.snapshot_rejected";
                r.fetching <- false;
                request_catch_up c r
              end)
    | _ -> r.fetching <- false

let handle_relay_vote c r ~phase ~view ~seq ~digest ~vote =
  parse_in c r c.cfg.Config.msg_parse_cost;
  if r.active && view = r.view && is_leader c r then
    relay_collect c r ~phase ~view ~seq ~digest ~vote

let handle_quorum_cert c r ~phase ~view ~seq ~digest ~proof =
  verify_in c r;
  if
    r.active && view = r.view
    && proof.Aggregator.stmt_tag = vote_tag ~phase ~view ~seq ~digest
    && Aggregator.verify c.keystore ~f:(f_of c) proof
  then apply_quorum_cert c r ~phase ~view ~seq ~digest

let handle c ~member m =
  let r = c.replicas.(member) in
  if Faults.is_crashed c.faults member then ()
  else if is_byz c r then byz_handle c r m
  else
    match m with
    | Request { req; relayed } -> handle_request c r req ~relayed
    | Forward req ->
        parse_in c r c.cfg.Config.request_parse_cost;
        add_known c r req;
        if is_leader c r then begin
          add_pending c r req;
          try_propose c r
        end
    | Pre_prepare { view; seq; batch; digest } ->
        handle_pre_prepare c r ~view ~seq ~batch ~digest ~charge_batch:true
    | Prepare { view; seq; digest; sender } -> handle_prepare c r ~view ~seq ~digest ~sender
    | Commit { view; seq; digest; sender } -> handle_commit c r ~view ~seq ~digest ~sender
    | Checkpoint { seq; digest; sender } -> handle_checkpoint c r ~seq ~digest ~sender
    | Fetch { since; sender } -> handle_fetch c r ~since ~sender
    | Fetch_resp { sender = _; view; ckpt; blocks } -> handle_fetch_resp c r ~view ~ckpt ~blocks
    | View_change { target; sender; last_stable = _; prepared } ->
        verify_in c r;
        record_view_change_vote c r ~target ~sender ~prepared
    | New_view { view; sender; reproposals } ->
        verify_in c r;
        if sender = leader_of_view_int c view then adopt_new_view c r ~view ~reproposals
    | Relay_vote { phase; view; seq; digest; sender = _; vote } ->
        handle_relay_vote c r ~phase ~view ~seq ~digest ~vote
    | Quorum_cert { phase; view; seq; digest; proof } ->
        handle_quorum_cert c r ~phase ~view ~seq ~digest ~proof

(* ------------------------------------------------------------------ *)
(* Timers                                                              *)
(* ------------------------------------------------------------------ *)

let watchdog c r () =
  if Faults.is_crashed c.faults r.index || not (c.alive r.index) then ()
  else if is_byz c r then begin
    match c.byz.leader_attack with
    | Some _ when byz_holds_slot c r ->
        (* Holding the slot: never vote against myself; keep the serve /
           drip emission paced off the watchdog tick. *)
        byz_leader_try_propose c r
    | Some (Leader_drip _) ->
        (* Stealth attack: destabilization votes would out the adversary
           before the drip probes the detection boundary. *)
        ()
    | Some _ | None ->
        (* Byzantine destabilization: keep calling for view changes; alone
           they are f votes — one honest timeout tips the committee over. *)
        let target = (if r.active then r.view else r.vc_target) + 1 in
        broadcast c r ~channel:consensus_channel
          (View_change { target; sender = r.index; last_stable = r.last_stable; prepared = [] })
  end
  else if r.active then begin
    let timeout = c.cfg.Config.progress_timeout in
    let t = now c in
    if
      Hashtbl.length r.known > 0
      && t -. r.last_exec_time > timeout
      && t -. r.earliest_known > timeout
    then begin
      (* PBFT's request retransmission: before (and alongside) suspecting
         the leader, make sure every peer knows the stalled requests so
         their timers arm too — without it, a request known to one replica
         whose forward was lost can never assemble a view-change quorum. *)
      let budget = ref 64 in
      Repro_util.Det.iter ~compare:Int.compare
        (fun _ req ->
          if !budget > 0 then begin
            decr budget;
            broadcast c r ~channel:request_channel (Request { req; relayed = true })
          end)
        r.known;
      start_view_change c r ~reason:"progress-timeout" ~target:(r.view + 1)
    end
  end
  else if now c > r.vc_deadline then
    start_view_change c r ~reason:"vc-restart" ~target:(r.vc_target + 1)

let start c =
  Array.iter
    (fun r ->
      let period = c.cfg.Config.progress_timeout /. 2.0 in
      let rec loop () =
        watchdog c r ();
        Engine.schedule c.engine ~delay:period loop
      in
      (* Stagger watchdogs so the committee does not act in lockstep. *)
      Engine.schedule c.engine
        ~delay:(period *. (0.5 +. (float_of_int r.index /. float_of_int (n_of c))))
        loop)
    c.replicas

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let submit_via _c ~member:_ req = Request { req; relayed = false }

let leader_of_view c v = leader_of_view_int c v

let current_view c ~member = c.replicas.(member).view

let last_executed c ~member = c.replicas.(member).last_exec

let view_changes c = Metrics.counter c.metrics "view_changes"

let known_backlog c ~member = Hashtbl.length c.replicas.(member).known

let last_stable c ~member = c.replicas.(member).last_stable

let exec_root c ~member = c.replicas.(member).exec_root

let checkpoint_cert c ~member =
  let r = c.replicas.(member) in
  match highest_cert r with
  | Some (seq, digest) -> (
      match Hashtbl.find_opt r.ckpt_certs seq with
      | Some (_, voters) -> Some (seq, digest, voters)
      | None -> None)
  | None -> None

let notify_recovered c ~member =
  let r = c.replicas.(member) in
  r.fetching <- false;
  r.last_exec_time <- now c;
  r.earliest_known <- (if Hashtbl.length r.known > 0 then now c else infinity);
  if not (is_byz c r) then request_catch_up c r

let reset_member c ~member =
  let r = c.replicas.(member) in
  r.active <- true;
  r.vc_target <- 0;
  r.vc_deadline <- infinity;
  r.last_exec <- 0;
  r.last_exec_time <- now c;
  r.last_stable <- 0;
  r.next_seq <- 1;
  r.exec_root <- 0;
  r.fetching <- false;
  r.gap_timer_armed <- false;
  Queue.clear r.pending;
  r.oldest_pending_since <- infinity;
  r.earliest_known <- infinity;
  List.iter Hashtbl.reset
    [ r.queued; r.executed ];
  Hashtbl.reset r.known;
  Hashtbl.reset r.preprep;
  Hashtbl.reset r.prepared;
  Hashtbl.reset r.committed;
  Hashtbl.reset r.roots;
  Hashtbl.reset r.ckpt_certs;
  Hashtbl.reset r.history;
  Hashtbl.reset r.vc_prepared;
  Hashtbl.reset r.relay_pool;
  Hashtbl.reset r.relay_done;
  Quorum.forget_below r.prepares ~seq:max_int;
  Quorum.forget_below r.commits ~seq:max_int;
  Quorum.forget_below r.checkpoints ~seq:max_int;
  Quorum.forget_below r.vc_votes ~seq:max_int;
  match r.a2m with
  | Some a2m -> A2m.truncate_below a2m ~slot:max_int
  | None -> ()

let install_checkpoint c ~member ~seq ~digest ~voters =
  let r = c.replicas.(member) in
  let signers = List.sort_uniq Int.compare (List.filter (fun m -> m >= 0 && m < n_of c) voters) in
  if List.length signers >= quorum c && seq > r.last_stable then begin
    Hashtbl.replace r.ckpt_certs seq (digest, signers);
    if r.last_exec < seq then adopt_checkpoint c r ~seq ~digest else stabilize c r ~seq
  end

let set_snapshot_hook c f = c.snapshot_fetch <- f

let set_alive c f = c.alive <- f

let set_byz_strategy c s = c.byz <- s

let set_observer c o = c.observer <- o

let set_commit_hook c f = c.commit_hook <- f

let set_probe c p = c.probe <- p
