(** Protocol variants and tuning knobs for the PBFT family.

    One replica implementation ({!Pbft}) covers the paper's four protocols;
    a {!variant} selects the quorum rule, the use of attested logs, and the
    three optimizations of Section 4.1. *)

type variant = {
  name : string;
  quorum_rule : [ `Third | `Half ];
      (** [`Third]: N = 3f+1, quorums of 2f+1 (vanilla PBFT).
          [`Half]:  N = 2f+1, quorums of f+1 (TEE-assisted, no
          equivocation). *)
  attested : bool;        (** messages carry A2M append proofs *)
  split_queues : bool;    (** optimization 1: separate request channel *)
  forward_requests : bool;(** optimization 2: forward to leader, no
                              request re-broadcast *)
  relay : bool;           (** optimization 3: leader vote aggregation *)
}

val hl : variant
(** Vanilla PBFT as in Hyperledger v0.6. *)

val ahl : variant
(** Attested HyperLedger: TEE quorums, no communication optimizations. *)

val ahl_opt1 : variant
(** AHL + separate queues only (the Figure 10 ablation point). *)

val ahl_plus : variant
(** AHL + optimizations 1 and 2. *)

val ahlr : variant
(** AHL + optimizations 1, 2 and 3 (leader relay). *)

val all_variants : variant list

type t = {
  variant : variant;
  n : int;                    (** committee size *)
  batch_max : int;            (** max requests per block *)
  batch_delay : float;        (** propose a partial batch after this long *)
  pipeline_window : int;      (** outstanding pre-prepares (HL pipelining) *)
  checkpoint_interval : int;  (** blocks between checkpoints *)
  watermark_window : int;     (** L: max seq distance beyond a stable
                                  checkpoint *)
  progress_timeout : float;   (** no-execution watchdog before view change *)
  vc_backoff_cap : int;       (** cap on the view-change retry exponent:
                                  the vc deadline grows as
                                  [progress_timeout * 2^min(backoff, cap)]
                                  so consecutive failed view changes can
                                  never inflate the retry delay past
                                  recovery within a finite horizon *)
  relay_timeout : float;      (** AHLR: max wait for the leader's quorum
                                  certificate before suspecting it *)
  relay_tail_prob : float;    (** AHLR: probability that one aggregation
                                  hits the heavy tail (EPC paging /
                                  enclave-transition storms on real SGX) *)
  relay_tail_factor : float;  (** AHLR: cost multiplier of a tail event *)
  shared_queue_capacity : int;
  request_queue_capacity : int;
  consensus_queue_capacity : int;
  consensus_msg_bytes : int;  (** wire size of a vote-like message *)
  request_overhead_bytes : int;
  request_parse_cost : float; (** CPU per request intake *)
  client_sig_verify : float;
      (** per-transaction client-signature verification, charged when a
          replica validates a pre-prepare's batch (amortized batch ECDSA) *)
  msg_parse_cost : float;     (** CPU per consensus message intake, before
                                  signature verification *)
}

val f_of : t -> int
(** Tolerated failures for the committee size under the variant's rule. *)

val quorum_size : t -> int
(** Matching votes (including one's own) needed to advance a phase. *)

val n_for_f : variant -> f:int -> int
(** Committee size achieving tolerance [f] ([3f+1] or [2f+1]). *)

val default : variant -> n:int -> t
(** Paper-calibrated defaults (Hyperledger v0.6-like batching, 2 s
    watchdog). *)

val inbox_mode : t -> Repro_sim.Inbox.mode
