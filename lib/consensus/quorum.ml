type slot = { mask : Bytes.t; mutable count : int }

type t = { n : int; slots : (int * int * int, slot) Hashtbl.t }

let create ~n =
  if n <= 0 then Repro_sim.Sim_error.invalid "Quorum.create: n must be positive";
  { n; slots = Hashtbl.create 256 }

let get_slot t key =
  match Hashtbl.find_opt t.slots key with
  | Some s -> s
  | None ->
      let s = { mask = Bytes.make t.n '\000'; count = 0 } in
      Hashtbl.replace t.slots key s;
      s

let vote t ~view ~seq ~digest ~member =
  if member < 0 || member >= t.n then
    Repro_sim.Sim_error.invalid "Quorum.vote: member %d out of range [0,%d)" member t.n;
  let s = get_slot t (view, seq, digest) in
  if Bytes.get s.mask member = '\000' then begin
    Bytes.set s.mask member '\001';
    s.count <- s.count + 1
  end;
  s.count

let count t ~view ~seq ~digest =
  match Hashtbl.find_opt t.slots (view, seq, digest) with None -> 0 | Some s -> s.count

let voters t ~view ~seq ~digest =
  match Hashtbl.find_opt t.slots (view, seq, digest) with
  | None -> []
  | Some s ->
      let acc = ref [] in
      for i = t.n - 1 downto 0 do
        if Bytes.get s.mask i = '\001' then acc := i :: !acc
      done;
      !acc

let cert t ~threshold ~view ~seq ~digest =
  match Hashtbl.find_opt t.slots (view, seq, digest) with
  | Some s when s.count >= threshold -> Some (voters t ~view ~seq ~digest)
  | _ -> None

let forget_below t ~seq =
  let stale =
    List.filter
      (fun (_, s, _) -> s < seq)
      (Repro_util.Det.keys ~compare:Repro_util.Det.int_triple t.slots)
  in
  List.iter (Hashtbl.remove t.slots) stale

(* The classic 2f+1 supermajority threshold.  Protocol code must call
   this rather than spelling the arithmetic out (ahl_lint R5); the size
   formulas themselves live only here and in Config/Sizing. *)
let supermajority ~f = (2 * f) + 1
