(** Merkle trees over transaction lists and state snapshots.

    Blocks commit to their transaction batch with a Merkle root; committee
    members transfer shard state during epoch transitions and verify it
    against the root (Section 5.3). *)

type proof = { leaf_index : int; path : (Sha256.digest * [ `Left | `Right ]) list }
(** Audit path from a leaf to the root.  Each step gives the sibling digest
    and which side the sibling is on. *)

val empty_root : Sha256.digest
(** Root of an empty tree (digest of the empty string, domain-separated). *)

val leaf_hash : string -> Sha256.digest
(** Domain-separated leaf digest (prefix 0x00, RFC 6962 style, preventing
    leaf/node confusion attacks). *)

val root : string list -> Sha256.digest
(** Root over the leaves in order.  Odd nodes are promoted (Bitcoin-style
    duplication is avoided to prevent CVE-2012-2459-like ambiguity). *)

exception Leaf_out_of_range of { index : int; leaves : int }
(** A proof was requested for a leaf index outside the tree. *)

val prove : string list -> int -> proof
(** [prove leaves i] builds the audit path for leaf [i].
    Raises {!Leaf_out_of_range} if out of range. *)

val verify : root:Sha256.digest -> leaf:string -> proof -> bool
(** Checks that [leaf] is at [proof.leaf_index] under [root]. *)
