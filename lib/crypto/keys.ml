open Repro_util

type secret = { id : int; key64 : int64; key_bytes : string }

type keystore = { rng : Rng.t; table : (int, secret) Hashtbl.t }

type signature = { signer : int; auth : int64 }

let create_keystore rng = { rng = Rng.split rng; table = Hashtbl.create 64 }

exception Already_registered of int

let gen ks ~id =
  if Hashtbl.mem ks.table id then raise (Already_registered id);
  let secret = { id; key64 = Rng.next_int64 ks.rng; key_bytes = Rng.bytes ks.rng 32 } in
  Hashtbl.replace ks.table id secret;
  secret

let gen_many ks n = Array.init n (fun id -> gen ks ~id)

let id_of s = s.id

(* Cheap keyed mix: the tag depends on the secret and the message tag; only
   the handle's owner can produce it. *)
let tag_of secret msg_tag =
  let z = Int64.add secret.key64 (Int64.of_int msg_tag) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  Int64.logxor z (Int64.shift_right_logical z 27)

let sign secret ~msg_tag = { signer = secret.id; auth = tag_of secret msg_tag }

let verify ks signature ~msg_tag =
  match Hashtbl.find_opt ks.table signature.signer with
  | None -> false
  | Some secret -> Int64.equal signature.auth (tag_of secret msg_tag)

let sign_hmac secret payload = Sha256.hmac ~key:secret.key_bytes payload

let verify_hmac ks ~id payload digest =
  match Hashtbl.find_opt ks.table id with
  | None -> false
  | Some secret -> Sha256.equal (Sha256.hmac ~key:secret.key_bytes payload) digest
