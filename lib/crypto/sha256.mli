(** Pure-OCaml SHA-256 (FIPS 180-4).

    Used wherever the reproduction needs a *real* collision-resistant hash:
    block hash pointers, Merkle roots, enclave measurements, and the
    signature simulation's message digests.  Protocol-message authentication
    in the simulator deliberately does not hash full payloads (its cost is
    charged to the simulated clock instead); see {!Sig_model}. *)

type digest = private string
(** 32 raw bytes. *)

val digest_string : string -> digest

val digest_concat : string list -> digest
(** Digest of the concatenation, without building the intermediate string. *)

val to_hex : digest -> string

exception Not_a_digest of int
(** A raw string of the wrong length was offered as a digest; carries the
    actual length. *)

val of_raw_exn : string -> digest
(** Wraps a 32-byte string; raises {!Not_a_digest} otherwise. *)

val to_raw : digest -> string

val equal : digest -> digest -> bool

val compare : digest -> digest -> int

val hmac : key:string -> string -> digest
(** HMAC-SHA256 (RFC 2104); the basis of simulated signing and sealing. *)
