type digest = string

(* Round constants: first 32 bits of the fractional parts of the cube roots
   of the first 64 primes. *)
let k =
  [|
    0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl; 0x59f111f1l;
    0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l;
    0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l; 0xc19bf174l; 0xe49b69c1l; 0xefbe4786l;
    0x0fc19dc6l; 0x240ca1ccl; 0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal;
    0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
    0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl; 0x53380d13l;
    0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l; 0xa2bfe8a1l; 0xa81a664bl;
    0xc24b8b70l; 0xc76c51a3l; 0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l;
    0x19a4c116l; 0x1e376c08l; 0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al;
    0x5b9cca4fl; 0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
    0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l;
  |]

type state = {
  h : int32 array; (* 8 words *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int64; (* total message bytes *)
  w : int32 array; (* 64-word message schedule, reused across blocks *)
}

let init () =
  {
    h =
      [|
        0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
        0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l;
      |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0L;
    w = Array.make 64 0l;
  }

let ( >>> ) x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
let ( ^^ ) = Int32.logxor
let ( &&& ) = Int32.logand
let ( +% ) = Int32.add

(* The message schedule is loaded by input-specific loaders so whole
   blocks are consumed in place — directly from the caller's string or
   from the partial-block buffer — without an intermediate copy. *)

let load_block_bytes st block offset =
  let w = st.w in
  for i = 0 to 15 do
    let b j = Int32.of_int (Char.code (Bytes.get block (offset + (4 * i) + j))) in
    w.(i) <-
      Int32.logor
        (Int32.shift_left (b 0) 24)
        (Int32.logor (Int32.shift_left (b 1) 16) (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
  done

let load_block_string st s offset =
  let w = st.w in
  for i = 0 to 15 do
    let b j = Int32.of_int (Char.code (String.get s (offset + (4 * i) + j))) in
    w.(i) <-
      Int32.logor
        (Int32.shift_left (b 0) 24)
        (Int32.logor (Int32.shift_left (b 1) 16) (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
  done

(* Rounds over the already-loaded schedule w.(0..15). *)
let compress_rounds st =
  let w = st.w in
  for i = 16 to 63 do
    let s0 = (w.(i - 15) >>> 7) ^^ (w.(i - 15) >>> 18) ^^ Int32.shift_right_logical w.(i - 15) 3 in
    let s1 = (w.(i - 2) >>> 17) ^^ (w.(i - 2) >>> 19) ^^ Int32.shift_right_logical w.(i - 2) 10 in
    w.(i) <- w.(i - 16) +% s0 +% w.(i - 7) +% s1
  done;
  let a = ref st.h.(0) and b = ref st.h.(1) and c = ref st.h.(2) and d = ref st.h.(3) in
  let e = ref st.h.(4) and f = ref st.h.(5) and g = ref st.h.(6) and h = ref st.h.(7) in
  for i = 0 to 63 do
    let s1 = (!e >>> 6) ^^ (!e >>> 11) ^^ (!e >>> 25) in
    let ch = (!e &&& !f) ^^ (Int32.lognot !e &&& !g) in
    let temp1 = !h +% s1 +% ch +% k.(i) +% w.(i) in
    let s0 = (!a >>> 2) ^^ (!a >>> 13) ^^ (!a >>> 22) in
    let maj = (!a &&& !b) ^^ (!a &&& !c) ^^ (!b &&& !c) in
    let temp2 = s0 +% maj in
    h := !g;
    g := !f;
    f := !e;
    e := !d +% temp1;
    d := !c;
    c := !b;
    b := !a;
    a := temp1 +% temp2
  done;
  st.h.(0) <- st.h.(0) +% !a;
  st.h.(1) <- st.h.(1) +% !b;
  st.h.(2) <- st.h.(2) +% !c;
  st.h.(3) <- st.h.(3) +% !d;
  st.h.(4) <- st.h.(4) +% !e;
  st.h.(5) <- st.h.(5) +% !f;
  st.h.(6) <- st.h.(6) +% !g;
  st.h.(7) <- st.h.(7) +% !h

let feed st s =
  let len = String.length s in
  st.total <- Int64.add st.total (Int64.of_int len);
  let pos = ref 0 in
  (* Fill a partial block first. *)
  if st.buf_len > 0 then begin
    let need = 64 - st.buf_len in
    let take = if need < len then need else len in
    Bytes.blit_string s 0 st.buf st.buf_len take;
    st.buf_len <- st.buf_len + take;
    pos := take;
    if st.buf_len = 64 then begin
      load_block_bytes st st.buf 0;
      compress_rounds st;
      st.buf_len <- 0
    end
  end;
  (* Whole blocks in place from the input — no staging copy. *)
  while len - !pos >= 64 do
    load_block_string st s !pos;
    compress_rounds st;
    pos := !pos + 64
  done;
  (* Stash the tail. *)
  if !pos < len then begin
    Bytes.blit_string s !pos st.buf st.buf_len (len - !pos);
    st.buf_len <- st.buf_len + (len - !pos)
  end

(* A 64-byte block fed without growing the buffer: HMAC's key pads are
   exactly one block, so they compress directly. *)
let feed_block st block =
  st.total <- Int64.add st.total 64L;
  load_block_bytes st block 0;
  compress_rounds st

let finish st =
  let bit_len = Int64.mul st.total 8L in
  (* Pad in place inside the block buffer: append 0x80, zeros, and the
     64-bit big-endian length — no intermediate tail string. *)
  let b = st.buf in
  let len = st.buf_len in
  Bytes.set b len '\x80';
  if len >= 56 then begin
    (* No room for the length in this block: close it out and pad a
       second, all-zero block. *)
    Bytes.fill b (len + 1) (64 - len - 1) '\x00';
    load_block_bytes st b 0;
    compress_rounds st;
    Bytes.fill b 0 56 '\x00'
  end
  else Bytes.fill b (len + 1) (56 - len - 1) '\x00';
  for i = 0 to 7 do
    Bytes.set b (56 + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len (8 * (7 - i))) 0xFFL)))
  done;
  load_block_bytes st b 0;
  compress_rounds st;
  st.buf_len <- 0;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let word = st.h.(i) in
    Bytes.set out (4 * i) (Char.chr (Int32.to_int (Int32.shift_right_logical word 24) land 0xFF));
    Bytes.set out ((4 * i) + 1) (Char.chr (Int32.to_int (Int32.shift_right_logical word 16) land 0xFF));
    Bytes.set out ((4 * i) + 2) (Char.chr (Int32.to_int (Int32.shift_right_logical word 8) land 0xFF));
    Bytes.set out ((4 * i) + 3) (Char.chr (Int32.to_int word land 0xFF))
  done;
  Bytes.unsafe_to_string out

let digest_string s =
  let st = init () in
  feed st s;
  finish st

let digest_concat parts =
  let st = init () in
  List.iter (feed st) parts;
  finish st

let to_hex d =
  let hex = "0123456789abcdef" in
  let out = Bytes.create 64 in
  for i = 0 to 31 do
    let byte = Char.code d.[i] in
    Bytes.set out (2 * i) hex.[byte lsr 4];
    Bytes.set out ((2 * i) + 1) hex.[byte land 0xF]
  done;
  Bytes.unsafe_to_string out

exception Not_a_digest of int

let of_raw_exn s =
  if String.length s <> 32 then raise (Not_a_digest (String.length s));
  s

let to_raw d = d

let equal = String.equal

let compare = String.compare

let hmac ~key msg =
  let block = 64 in
  let key = if String.length key > block then (digest_string key : digest :> string) else key in
  (* Both pads in one pass over the key; each is exactly one compression
     block, fed in place. *)
  let ipad = Bytes.make block '\x36' and opad = Bytes.make block '\x5c' in
  for i = 0 to String.length key - 1 do
    let k = Char.code key.[i] in
    Bytes.set ipad i (Char.chr (k lxor 0x36));
    Bytes.set opad i (Char.chr (k lxor 0x5c))
  done;
  let st = init () in
  feed_block st ipad;
  feed st msg;
  let inner = finish st in
  let st = init () in
  feed_block st opad;
  feed st (inner :> string);
  finish st
