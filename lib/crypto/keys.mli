(** Key management and signatures, in two strengths.

    {b Simulated signatures} ([sign] / [verify]) are what protocol code in
    the discrete-event simulator uses.  They are cheap tokens — no hashing
    of the payload — whose *time* cost is charged to the simulated clock by
    {!Cost_model}.  They are unforgeable within a simulation by
    construction: the only way to obtain a valid token is to call [sign]
    with the secret handle, and fault-injection code never hands one
    principal another principal's handle.

    {b Real signatures} ([sign_hmac] / [verify_hmac]) use HMAC-SHA256 over
    the payload with the same secrets.  The SGX layer uses these for sealed
    data and attestation evidence in tests, demonstrating that the token
    scheme has a sound concrete instantiation. *)

type keystore
(** Shared registry of principals' verification material (models a PKI /
    membership list distributed out of band in a permissioned network). *)

type secret
(** A principal's signing handle.  Never serialized. *)

type signature = { signer : int; auth : int64 }
(** A simulated signature: the claimed signer and an authentication tag. *)

val create_keystore : Repro_util.Rng.t -> keystore

exception Already_registered of int
(** A principal id was registered twice; carries the offending id. *)

val gen : keystore -> id:int -> secret
(** Registers principal [id] and returns its signing handle.  Raises
    {!Already_registered} if [id] is already registered. *)

val gen_many : keystore -> int -> secret array
(** [gen_many ks n] registers principals [0 .. n-1]. *)

val id_of : secret -> int

val sign : secret -> msg_tag:int -> signature
(** Sign a message identified by [msg_tag] (a caller-chosen structural tag,
    e.g. [Hashtbl.hash] of the message). *)

val verify : keystore -> signature -> msg_tag:int -> bool
(** True iff the token was produced by [signer]'s handle over [msg_tag]. *)

val sign_hmac : secret -> string -> Sha256.digest
(** Real HMAC-SHA256 signature over the payload. *)

val verify_hmac : keystore -> id:int -> string -> Sha256.digest -> bool
