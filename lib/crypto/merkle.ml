type proof = { leaf_index : int; path : (Sha256.digest * [ `Left | `Right ]) list }

let empty_root = Sha256.digest_string "\x02merkle-empty"

let leaf_hash s = Sha256.digest_concat [ "\x00"; s ]

let node_hash l r = Sha256.digest_concat [ "\x01"; (l : Sha256.digest :> string); (r : Sha256.digest :> string) ]

(* Reduce one level: pair up siblings, promote an unpaired last node. *)
let level_up nodes =
  let rec pair acc = function
    | [] -> List.rev acc
    | [ last ] -> List.rev (last :: acc)
    | l :: r :: rest -> pair (node_hash l r :: acc) rest
  in
  pair [] nodes

let root leaves =
  match leaves with
  | [] -> empty_root
  | _ ->
      let rec reduce nodes =
        match nodes with
        | [ single ] -> single
        | _ -> reduce (level_up nodes)
      in
      reduce (List.map leaf_hash leaves)

exception Leaf_out_of_range of { index : int; leaves : int }

let prove leaves i =
  let n = List.length leaves in
  if i < 0 || i >= n then raise (Leaf_out_of_range { index = i; leaves = n });
  let rec walk nodes idx acc =
    match nodes with
    | [ _ ] -> List.rev acc
    | _ ->
        let arr = Array.of_list nodes in
        let len = Array.length arr in
        let sibling =
          if idx mod 2 = 0 then if idx + 1 < len then Some (arr.(idx + 1), `Right) else None
          else Some (arr.(idx - 1), `Left)
        in
        let acc = match sibling with Some s -> s :: acc | None -> acc in
        walk (level_up nodes) (idx / 2) acc
  in
  { leaf_index = i; path = walk (List.map leaf_hash leaves) i [] }

let verify ~root:expected ~leaf proof =
  let digest =
    List.fold_left
      (fun acc (sibling, side) ->
        match side with
        | `Right -> node_hash acc sibling
        | `Left -> node_hash sibling acc)
      (leaf_hash leaf) proof.path
  in
  Sha256.equal digest expected
