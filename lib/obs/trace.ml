(* Append-only event recorder.  One trace per instrumented run; a run is
   single-domain, so no locking here — cross-domain aggregation happens in
   Hub, which hands each run its own trace. *)

type t = { mutable rev_events : Event.t list; mutable next_seq : int }

let create () = { rev_events = []; next_seq = 0 }

let record t ~time ~name ~cat ~node ~kind ~args =
  let e = { Event.seq = t.next_seq; time; name; cat; node; kind; args } in
  t.next_seq <- t.next_seq + 1;
  t.rev_events <- e :: t.rev_events

let instant t ~time ~cat ~node ?(args = []) name =
  record t ~time ~name ~cat ~node ~kind:Event.Instant ~args

let span t ~time ~dur ~cat ~node ?(args = []) name =
  record t ~time ~name ~cat ~node ~kind:(Event.Span { dur }) ~args

let counter t ~time ~node name value =
  record t ~time ~name ~cat:"counter" ~node ~kind:(Event.Counter { value }) ~args:[]

let events t = List.rev t.rev_events

let length t = t.next_seq
