(* Registry of named counters, gauges, and log-bucketed histograms.

   Everything is keyed by string and dumped in sorted-name order via Det,
   so a dump is a pure function of the recorded values — no hash-order
   nondeterminism can leak into artifacts. *)

open Repro_util

type histogram = {
  base : float;
  buckets : (int, int ref) Hashtbl.t;
  mutable zero : int; (* observations <= 0, which no log bucket covers *)
  stats : Stats.t;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 32; gauges = Hashtbl.create 16; histograms = Hashtbl.create 16 }

let add t name n =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t.counters name (ref n)

let incr t name = add t name 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  List.map (fun (k, r) -> (k, !r)) (Det.bindings ~compare:String.compare t.counters)

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let gauge t name = Option.map ( ! ) (Hashtbl.find_opt t.gauges name)

let gauges t =
  List.map (fun (k, r) -> (k, !r)) (Det.bindings ~compare:String.compare t.gauges)

(* Index of the log bucket [base^i, base^(i+1)) containing [v > 0].  The
   naive floor(log v / log base) misplaces exact powers (log 8 / log 2 =
   2.999...96), so the candidate index is corrected against the actual
   bucket bounds. *)
let bucket_index ~base v =
  let i = int_of_float (Float.floor (Float.log v /. Float.log base)) in
  let lo = base ** float_of_int i in
  if v < lo then i - 1 else if v >= lo *. base then i + 1 else i

let default_base = 2.0

let histogram t ~base name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h = { base; buckets = Hashtbl.create 16; zero = 0; stats = Stats.create () } in
      Hashtbl.replace t.histograms name h;
      h

let observe ?(base = default_base) t name v =
  let h = histogram t ~base name in
  Stats.add h.stats v;
  if v > 0.0 then begin
    let i = bucket_index ~base:h.base v in
    match Hashtbl.find_opt h.buckets i with
    | Some r -> Stdlib.incr r
    | None -> Hashtbl.replace h.buckets i (ref 1)
  end
  else h.zero <- h.zero + 1

let buckets t name =
  match Hashtbl.find_opt t.histograms name with
  | None -> []
  | Some h -> List.map (fun (i, r) -> (i, !r)) (Det.bindings ~compare:Int.compare h.buckets)

let histogram_stats t name =
  Option.map (fun h -> h.stats) (Hashtbl.find_opt t.histograms name)

let histogram_names t = Det.keys ~compare:String.compare t.histograms

(* Counters sum; a gauge in [src] overwrites the same-named gauge in
   [into] (a gauge is a last-write sample, not an accumulator); same-named
   histograms must share a bucket base and merge exactly, samples
   included. *)
let merge ~into src =
  List.iter (fun (k, n) -> add into k n) (counters src);
  List.iter (fun (k, v) -> set_gauge into k v) (gauges src);
  Det.iter ~compare:String.compare
    (fun name (h : histogram) ->
      let dst = histogram into ~base:h.base name in
      Stats.merge ~into:dst.stats h.stats;
      dst.zero <- dst.zero + h.zero;
      Det.iter ~compare:Int.compare
        (fun i r ->
          match Hashtbl.find_opt dst.buckets i with
          | Some d -> d := !d + !r
          | None -> Hashtbl.replace dst.buckets i (ref !r))
        h.buckets)
    src.histograms

let rows t =
  let counter_rows = List.map (fun (k, n) -> [ k; "counter"; string_of_int n ]) (counters t) in
  let gauge_rows = List.map (fun (k, v) -> [ k; "gauge"; Table.fnum v ]) (gauges t) in
  let hist_rows =
    List.map
      (fun (name, h) ->
        let s = h.stats in
        [
          name;
          "histogram";
          Printf.sprintf "n=%d mean=%s p50=%s p95=%s max=%s" (Stats.count s)
            (Table.fnum (Stats.mean s))
            (Table.fnum (Stats.percentile s 50.0))
            (Table.fnum (Stats.percentile s 95.0))
            (Table.fnum (Stats.max s));
        ])
      (Det.bindings ~compare:String.compare t.histograms)
  in
  counter_rows @ gauge_rows @ hist_rows
