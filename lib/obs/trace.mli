(** Append-only recorder of {!Event.t}s for one instrumented run.

    Events are stamped with the caller-supplied *simulated* time and an
    internal sequence number; [events] returns them in emission order. *)

type t

val create : unit -> t

val instant :
  t -> time:float -> cat:string -> node:string -> ?args:(string * Event.arg) list -> string -> unit
(** [instant t ~time ~cat ~node name] records a point event. *)

val span :
  t ->
  time:float ->
  dur:float ->
  cat:string ->
  node:string ->
  ?args:(string * Event.arg) list ->
  string ->
  unit
(** [span t ~time ~dur ~cat ~node name] records a closed interval
    [\[time, time +. dur\]]. *)

val counter : t -> time:float -> node:string -> string -> float -> unit
(** [counter t ~time ~node name v] samples a counter series. *)

val events : t -> Event.t list
(** All recorded events, in emission (= seq) order. *)

val length : t -> int
