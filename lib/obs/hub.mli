(** Cross-domain collection point for per-run probes.

    Runs executing on pool workers request probes under deterministic names
    (derived from run parameters, never from scheduling); dumps are sorted
    by name, so artifacts are byte-identical across [-j] worker counts. *)

type t

val create : unit -> t

val probe : t -> string -> Probe.t
(** Get-or-create the probe registered under [name].  Idempotent: the same
    name always returns the same probe, whichever domain asks first. *)

val names : t -> string list

val traces : t -> (string * Trace.t) list
(** All (name, trace) pairs, sorted by name. *)

val metrics : t -> (string * Metrics.t) list

val find_metrics : t -> string -> Metrics.t option

val merged_metrics : t -> Metrics.t
(** All registries counter-merged in sorted-name order. *)
