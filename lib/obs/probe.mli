(** Observability capability threaded through instrumented code.

    An unset probe ({!none}) turns every emitter into a single branch on an
    immediate — no allocation, no recording — so instrumentation can live
    permanently in hot paths.  Call sites that build argument lists should
    guard on {!enabled} to skip even that construction when disabled. *)

type t

val none : t
(** The disabled probe: every emitter is a no-op costing one branch. *)

val make : trace:Trace.t -> metrics:Metrics.t -> t

val enabled : t -> bool

val trace_of : t -> Trace.t option
val metrics_of : t -> Metrics.t option

val instant :
  t -> time:float -> cat:string -> node:string -> ?args:(string * Event.arg) list -> string -> unit

val span :
  t ->
  time:float ->
  dur:float ->
  cat:string ->
  node:string ->
  ?args:(string * Event.arg) list ->
  string ->
  unit

val counter_sample : t -> time:float -> node:string -> string -> float -> unit
(** Sample a counter series into the trace (Chrome "C" events). *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val observe : t -> string -> float -> unit
val set_gauge : t -> string -> float -> unit
