(** Renderers for recorded traces and metrics: Chrome trace-event JSON
    (viewable in chrome://tracing and Perfetto), JSONL, and text/JSON
    metrics summaries.  Output order is sorted by trace/registry name, so
    artifacts are byte-identical across runs and worker counts. *)

val chrome_json : (string * Trace.t) list -> string
(** Chrome trace-event JSON for the named traces.  Each trace becomes a
    process (pid assigned in sorted-name order) and each of its node scopes
    a named thread; spans map to "X", instants to "i", counter samples to
    "C".  Timestamps are simulated microseconds. *)

val jsonl : (string * Trace.t) list -> string
(** One JSON object per event per line, for ad-hoc slicing. *)

val summary : (string * Metrics.t) list -> string
(** Text table of every registry's counters, gauges, and histograms. *)

val metrics_json : (string * Metrics.t) list -> string
(** Flat JSON object keyed by registry name with counters, gauges, and
    histogram summaries (count/mean/p50/p95/p99/max plus log buckets). *)

val save : path:string -> string -> (unit, string) result
(** Write an artifact to disk; [Error msg] on IO failure. *)

val print_summary : (string * Metrics.t) list -> unit
