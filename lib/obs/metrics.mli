(** Registry of named counters, gauges, and log-bucketed histograms.

    All dump/iteration order is sorted by name (via {!Repro_util.Det}), so
    rendered output is a pure function of the recorded values. *)

type t

val create : unit -> t

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val counter : t -> string -> int
(** Current value of a counter; 0 if never touched. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val set_gauge : t -> string -> float -> unit
val gauge : t -> string -> float option
val gauges : t -> (string * float) list

val observe : ?base:float -> t -> string -> float -> unit
(** Record a sample into the named histogram.  Positive samples land in the
    log bucket [base^i, base^(i+1)) (default base 2); samples <= 0 are
    counted separately.  The first observation of a name fixes its base. *)

val bucket_index : base:float -> float -> int
(** [bucket_index ~base v] for [v > 0]: the [i] with
    [base^i <= v < base^(i+1)], exact at representable bucket bounds. *)

val buckets : t -> string -> (int * int) list
(** Non-empty log buckets of a histogram as [(index, count)], sorted. *)

val histogram_stats : t -> string -> Repro_util.Stats.t option
(** Exact running stats (count/mean/percentiles) over all samples of a
    histogram, including those <= 0. *)

val histogram_names : t -> string list

val merge : into:t -> t -> unit
(** Counters sum; gauges take [src]'s value (last write wins); same-named
    histograms must share a base and merge exactly, samples included. *)

val rows : t -> string list list
(** One [name; kind; value] row per metric, for {!Repro_util.Table.render}. *)
