(** A single trace event, stamped with simulated time plus an emission
    sequence number.  See DESIGN.md §13 for the event model. *)

type arg = S of string | I of int | F of float

type kind =
  | Instant  (** a point in simulated time *)
  | Span of { dur : float }  (** a closed interval starting at [time] *)
  | Counter of { value : float }  (** a sampled series value *)

type t = {
  seq : int;  (** emission order within one trace; breaks timestamp ties *)
  time : float;  (** simulated seconds (Engine.now), never wall clock *)
  name : string;
  cat : string;  (** coarse grouping: "pbft", "2pc", "net", "epoch", ... *)
  node : string;  (** per-node scope, e.g. "r3" or "shard1/r0" *)
  kind : kind;
  args : (string * arg) list;
}
