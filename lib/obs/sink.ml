(* Renderers for recorded traces and metrics.

   All output is assembled in sorted-name order from data that is itself a
   pure function of (seed, schedule), so a rendered artifact is
   byte-identical across runs and across `-j` worker counts.  This module
   and Repro_util.Table are the only lib/ modules allowed to print
   directly (ahl_lint rule R6). *)

open Repro_util

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Integral values render without an exponent so timestamps stay readable;
   everything else round-trips at full precision. *)
let json_num x =
  if Float.is_nan x then "null"
  else if x = Float.infinity then "1e999"
  else if x = Float.neg_infinity then "-1e999"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let json_arg = function
  | Event.S s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Event.I n -> string_of_int n
  | Event.F x -> json_num x

let json_args args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (json_arg v)) args)
  ^ "}"

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON (chrome://tracing, Perfetto)                *)
(* ------------------------------------------------------------------ *)

let sorted_by_name xs =
  List.sort (fun (a, _) (b, _) -> String.compare a b) xs

let nodes_of trace =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (e : Event.t) -> Hashtbl.replace tbl e.Event.node ()) (Trace.events trace);
  Det.keys ~compare:String.compare tbl

(* Simulated seconds -> integer-friendly microseconds. *)
let ts time = json_num (time *. 1e6)

let chrome_event ~pid ~tid (e : Event.t) =
  let common =
    Printf.sprintf "\"name\":\"%s\",\"cat\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%s"
      (json_escape e.Event.name) (json_escape e.Event.cat) pid tid (ts e.Event.time)
  in
  match e.Event.kind with
  | Event.Instant ->
      Printf.sprintf "{%s,\"ph\":\"i\",\"s\":\"t\",\"args\":%s}" common (json_args e.Event.args)
  | Event.Span { dur } ->
      Printf.sprintf "{%s,\"ph\":\"X\",\"dur\":%s,\"args\":%s}" common (ts dur)
        (json_args e.Event.args)
  | Event.Counter { value } ->
      Printf.sprintf "{%s,\"ph\":\"C\",\"args\":{\"value\":%s}}" common (json_num value)

let chrome_json traces =
  let traces = sorted_by_name traces in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_string buf "\n";
    Buffer.add_string buf line
  in
  List.iteri
    (fun i (name, trace) ->
      let pid = i + 1 in
      let nodes = nodes_of trace in
      let tid_of =
        let tbl = Hashtbl.create 16 in
        List.iteri (fun j n -> Hashtbl.replace tbl n (j + 1)) nodes;
        fun n -> Option.value (Hashtbl.find_opt tbl n) ~default:0
      in
      emit
        (Printf.sprintf "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           pid (json_escape name));
      List.iter
        (fun n ->
          emit
            (Printf.sprintf
               "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
               pid (tid_of n) (json_escape n)))
        nodes;
      List.iter
        (fun (e : Event.t) -> emit (chrome_event ~pid ~tid:(tid_of e.Event.node) e))
        (Trace.events trace))
    traces;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSONL: one event object per line, for ad-hoc slicing with jq        *)
(* ------------------------------------------------------------------ *)

let jsonl traces =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, trace) ->
      List.iter
        (fun (e : Event.t) ->
          let kind, extra =
            match e.Event.kind with
            | Event.Instant -> ("instant", "")
            | Event.Span { dur } -> ("span", Printf.sprintf ",\"dur\":%s" (json_num dur))
            | Event.Counter { value } ->
                ("counter", Printf.sprintf ",\"value\":%s" (json_num value))
          in
          Buffer.add_string buf
            (Printf.sprintf
               "{\"trace\":\"%s\",\"seq\":%d,\"time\":%s,\"node\":\"%s\",\"cat\":\"%s\",\"kind\":\"%s\",\"name\":\"%s\"%s,\"args\":%s}\n"
               (json_escape name) e.Event.seq (json_num e.Event.time)
               (json_escape e.Event.node) (json_escape e.Event.cat) kind
               (json_escape e.Event.name) extra (json_args e.Event.args)))
        (Trace.events trace))
    (sorted_by_name traces);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Metrics artifacts: text summary and a flat JSON object              *)
(* ------------------------------------------------------------------ *)

let summary metrics =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, m) ->
      match Metrics.rows m with
      | [] -> ()
      | rows ->
          Buffer.add_string buf (Printf.sprintf "== %s ==\n" name);
          Buffer.add_string buf (Table.render ~header:[ "metric"; "kind"; "value" ] ~rows);
          Buffer.add_char buf '\n')
    (sorted_by_name metrics);
  Buffer.contents buf

let metrics_json metrics =
  let one (name, m) =
    let counters =
      List.map (fun (k, n) -> Printf.sprintf "\"%s\":%d" (json_escape k) n) (Metrics.counters m)
    in
    let gauges =
      List.map
        (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (json_num v))
        (Metrics.gauges m)
    in
    let hists =
      List.map
        (fun k ->
          let stats = Metrics.histogram_stats m k in
          let count, mean, p50, p95, p99, mx =
            match stats with
            | None -> (0, 0.0, 0.0, 0.0, 0.0, 0.0)
            | Some s ->
                ( Stats.count s,
                  Stats.mean s,
                  Stats.percentile s 50.0,
                  Stats.percentile s 95.0,
                  Stats.percentile s 99.0,
                  Stats.max s )
          in
          let buckets =
            String.concat ","
              (List.map (fun (i, n) -> Printf.sprintf "[%d,%d]" i n) (Metrics.buckets m k))
          in
          Printf.sprintf
            "\"%s\":{\"count\":%d,\"mean\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"max\":%s,\"buckets\":[%s]}"
            (json_escape k) count (json_num mean) (json_num p50) (json_num p95) (json_num p99)
            (json_num mx) buckets)
        (Metrics.histogram_names m)
    in
    Printf.sprintf "\"%s\":{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}"
      (json_escape name) (String.concat "," counters) (String.concat "," gauges)
      (String.concat "," hists)
  in
  "{" ^ String.concat "," (List.map one (sorted_by_name metrics)) ^ "}\n"

let save ~path contents =
  match Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents) with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let print_summary metrics = print_string (summary metrics)
