(* A single trace event.  Times are *simulated* seconds (Engine.now), never
   wall clock: the whole subsystem inherits the simulator's determinism, so
   two runs of the same seed produce byte-identical traces.  [seq] breaks
   ties between events carrying the same simulated timestamp and records
   emission order within one trace. *)

type arg = S of string | I of int | F of float

type kind =
  | Instant
  | Span of { dur : float }
  | Counter of { value : float }

type t = {
  seq : int;
  time : float;
  name : string;
  cat : string;
  node : string;
  kind : kind;
  args : (string * arg) list;
}
