(* The capability handed to instrumented code.  [none] makes every emitter
   a single branch on an immediate, so an uninstrumented run pays one
   compare per probe point and allocates nothing; hot call sites that would
   otherwise build an args list guard on [enabled] first. *)

type active = { trace : Trace.t; metrics : Metrics.t }

type t = active option

let none : t = None

let make ~trace ~metrics = Some { trace; metrics }

let enabled = function None -> false | Some _ -> true

let trace_of = function None -> None | Some a -> Some a.trace

let metrics_of = function None -> None | Some a -> Some a.metrics

let instant p ~time ~cat ~node ?args name =
  match p with
  | None -> ()
  | Some a -> Trace.instant a.trace ~time ~cat ~node ?args name

let span p ~time ~dur ~cat ~node ?args name =
  match p with
  | None -> ()
  | Some a -> Trace.span a.trace ~time ~dur ~cat ~node ?args name

let counter_sample p ~time ~node name value =
  match p with None -> () | Some a -> Trace.counter a.trace ~time ~node name value

let incr p name = match p with None -> () | Some a -> Metrics.incr a.metrics name

let add p name n = match p with None -> () | Some a -> Metrics.add a.metrics name n

let observe p name v = match p with None -> () | Some a -> Metrics.observe a.metrics name v

let set_gauge p name v =
  match p with None -> () | Some a -> Metrics.set_gauge a.metrics name v
