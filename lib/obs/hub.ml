(* Cross-domain collection point for per-run probes.

   The parallel experiment runner fans datapoints across a domain pool, so
   which worker executes a given run is scheduling-dependent.  Each run
   asks the hub for a probe under a name derived deterministically from the
   run's parameters (e.g. the memo key), records into its own private
   Trace/Metrics pair, and the hub dumps everything in sorted-name order —
   so the rendered artifact is a pure function of the set of runs, not of
   worker scheduling.  Only the registry itself is locked; recording into a
   run's trace stays lock-free on the run's own domain. *)

open Repro_util

type entry = { trace : Trace.t; metrics : Metrics.t; probe : Probe.t }

type t = { mutex : Mutex.t; entries : (string, entry) Hashtbl.t }

let create () = { mutex = Mutex.create (); entries = Hashtbl.create 32 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let probe t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some e -> e.probe
      | None ->
          let trace = Trace.create () and metrics = Metrics.create () in
          let e = { trace; metrics; probe = Probe.make ~trace ~metrics } in
          Hashtbl.replace t.entries name e;
          e.probe)

let names t =
  locked t (fun () -> Det.keys ~compare:String.compare t.entries)

let traces t =
  locked t (fun () ->
      List.map
        (fun (name, e) -> (name, e.trace))
        (Det.bindings ~compare:String.compare t.entries))

let metrics t =
  locked t (fun () ->
      List.map
        (fun (name, e) -> (name, e.metrics))
        (Det.bindings ~compare:String.compare t.entries))

let find_metrics t name =
  locked t (fun () -> Option.map (fun e -> e.metrics) (Hashtbl.find_opt t.entries name))

(* Counter-merge across every registry, in sorted-name order so merged
   floats combine identically on every run. *)
let merged_metrics t =
  let into = Metrics.create () in
  List.iter (fun (_, m) -> Metrics.merge ~into m) (metrics t);
  into
