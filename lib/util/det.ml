(* Deterministic views over hash tables.

   [Hashtbl.iter]/[Hashtbl.fold] visit buckets in an order that depends on
   the hash function, table sizing history, and resize schedule — none of
   which the simulation seed controls.  Every iteration in library code must
   go through this module (enforced by ahl_lint rule R1) so that the visit
   order is a pure function of the key set. *)

let bindings ~compare tbl =
  (* The one sanctioned raw fold: the sort below erases whatever order the
     buckets produced.  ahl_lint: allow R1 *)
  let raw = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.sort (fun (a, _) (b, _) -> compare a b) raw

let keys ~compare tbl = List.map fst (bindings ~compare tbl)

let iter ~compare f tbl = List.iter (fun (k, v) -> f k v) (bindings ~compare tbl)

let fold ~compare f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (bindings ~compare tbl)

let int_pair (a1, b1) (a2, b2) =
  let c = Int.compare a1 a2 in
  if c <> 0 then c else Int.compare b1 b2

let int_triple (a1, b1, c1) (a2, b2, c2) =
  let c = Int.compare a1 a2 in
  if c <> 0 then c
  else
    let c = Int.compare b1 b2 in
    if c <> 0 then c else Int.compare c1 c2

(* FNV-1a over the bytes of an explicit rendering: unlike the polymorphic
   [Hashtbl.hash] it replaces (ahl_lint rule R8), the result depends only
   on the string, never on value layout or the OCaml version. *)
let stable_hash s =
  let prime = 0x100000001b3L and basis = 0xcbf29ce484222325L in
  let h = ref basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  (* Fold to a non-negative OCaml int so it slots in anywhere a
     [Hashtbl.hash] result did. *)
  Int64.to_int (Int64.logand !h 0x3fffffffffffffffL)
