(** Fixed-size domain pool with deterministic, submission-ordered joins.

    The experiment runner fans independent seeded simulations across OCaml
    5 domains.  Determinism is preserved by construction: every task is a
    self-contained computation (its own [Engine]/[Rng]), and results are
    observed only through {!await}, in whatever order the submitter chooses
    — so a [jobs]-way run produces output bit-for-bit identical to the
    sequential one.

    Tasks must not {!await} futures of the same pool from inside a worker
    (the pool does not steal work while blocked, so that can deadlock).
    Submit from one coordinating domain and join there. *)

type t

type 'a future

val default_jobs : unit -> int
(** Worker count from the [BENCH_JOBS] environment variable when set to a
    positive integer, else [Domain.recommended_domain_count ()]. *)

val create : jobs:int -> t
(** A pool of [jobs] workers ([jobs] is clamped to at least 1).  With
    [jobs = 1] no domain is spawned: tasks run inline at submission, which
    makes the degenerate pool exactly the sequential execution. *)

val jobs : t -> int
(** The worker count the pool was created with. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task.  Exceptions escaping the task are captured and
    re-raised (with their backtrace) by {!await}. *)

val await : 'a future -> 'a
(** Block until the task finishes; returns its value or re-raises its
    exception.  Idempotent. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] runs [f] on every element concurrently and returns
    results in the order of [xs] (submission order). *)

val shutdown : t -> unit
(** Wait for queued tasks to drain and join every worker domain.
    The pool must not be used afterwards. *)
