type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable total : float;
  mutable samples : float list;
  mutable sorted : float array option; (* cache invalidated on add *)
}

let create () =
  {
    count = 0;
    mean = 0.0;
    m2 = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    total = 0.0;
    samples = [];
    sorted = None;
  }

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  t.total <- t.total +. x;
  t.samples <- x :: t.samples;
  t.sorted <- None

let count t = t.count

let mean t = if t.count = 0 then 0.0 else t.mean

let stddev t = if t.count < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.count - 1))

let min t = if t.count = 0 then 0.0 else t.min_v

let max t = if t.count = 0 then 0.0 else t.max_v

let total t = t.total

(* Chan et al. parallel-variance combine; samples concatenate so percentile
   queries over the merged accumulator stay exact. *)
let merge ~into src =
  if src.count > 0 then begin
    if into.count = 0 then begin
      into.count <- src.count;
      into.mean <- src.mean;
      into.m2 <- src.m2;
      into.min_v <- src.min_v;
      into.max_v <- src.max_v;
      into.total <- src.total;
      into.samples <- src.samples;
      into.sorted <- None
    end
    else begin
      let n1 = float_of_int into.count and n2 = float_of_int src.count in
      let delta = src.mean -. into.mean in
      let n = n1 +. n2 in
      into.m2 <- into.m2 +. src.m2 +. (delta *. delta *. n1 *. n2 /. n);
      into.mean <- into.mean +. (delta *. n2 /. n);
      into.count <- into.count + src.count;
      if src.min_v < into.min_v then into.min_v <- src.min_v;
      if src.max_v > into.max_v then into.max_v <- src.max_v;
      into.total <- into.total +. src.total;
      into.samples <- List.rev_append src.samples into.samples;
      into.sorted <- None
    end
  end

let percentile t p =
  if t.count = 0 then 0.0
  else begin
    let sorted =
      match t.sorted with
      | Some a -> a
      | None ->
          let a = Array.of_list t.samples in
          Array.sort Float.compare a;
          t.sorted <- Some a;
          a
    in
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
    let idx = Stdlib.max 0 (Stdlib.min (t.count - 1) (rank - 1)) in
    sorted.(idx)
  end

module Series = struct
  type s = { bin : float; table : (int, float) Hashtbl.t }

  let create ~bin =
    if bin <= 0.0 then Error "Series.create: bin must be positive"
    else Ok { bin; table = Hashtbl.create 64 }

  let record s time weight =
    let idx = int_of_float (Float.floor (time /. s.bin)) in
    let cur = Option.value (Hashtbl.find_opt s.table idx) ~default:0.0 in
    Hashtbl.replace s.table idx (cur +. weight)

  let bins s =
    if Hashtbl.length s.table = 0 then []
    else begin
      let keys = Det.keys ~compare:Int.compare s.table in
      let lo = ref max_int and hi = ref min_int in
      List.iter
        (fun k ->
          if k < !lo then lo := k;
          if k > !hi then hi := k)
        keys;
      List.init
        (!hi - !lo + 1)
        (fun i ->
          let k = !lo + i in
          let v = Option.value (Hashtbl.find_opt s.table k) ~default:0.0 in
          (float_of_int k *. s.bin, v))
    end

  let rate_bins s = List.map (fun (t, v) -> (t, v /. s.bin)) (bins s)
end
