type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next_int64 t in
  create (mix64 s)

(* FNV-1a over the label, folded into a fresh draw from the parent: two
   different labels give unrelated child seeds regardless of draw order. *)
let split_named t label =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    label;
  create (mix64 (Int64.logxor t.state !h))

let bits t k =
  if k < 0 || k > 62 then Invariant.fail "Rng.bits: k = %d out of [0, 62]" k;
  if k = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (next_int64 t) (64 - k)) land ((1 lsl k) - 1)

let int t n =
  if n <= 0 then Invariant.fail "Rng.int: bound %d not positive" n;
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let k =
    let rec width acc v = if v = 0 then acc else width (acc + 1) (v lsr 1) in
    width 0 (n - 1)
  in
  if k = 0 then 0
  else
    let rec draw () =
      let v = bits t k in
      if v < n then v else draw ()
    in
    draw ()

let int_in t lo hi =
  if hi < lo then Invariant.fail "Rng.int_in: empty range [%d, %d]" lo hi;
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 uniform bits scaled to [0, 1). *)
  let u = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  u /. 9007199254740992.0 *. x

let bool t = Int64.compare (next_int64 t) 0L < 0

let exponential t ~mean =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  -.mean *. log (nonzero ())

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let pick t a =
  if Array.length a = 0 then Invariant.fail "Rng.pick: empty array";
  a.(int t (Array.length a))

let bytes t n =
  String.init n (fun _ -> Char.chr (bits t 8))
