type 'a state =
  | Pending
  | Done of 'a
  | Raised of exn * Printexc.raw_backtrace

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a state;
}

type t = {
  n_jobs : int;
  m : Mutex.t;
  work_ready : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "BENCH_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs t = t.n_jobs

let worker_loop pool () =
  let rec next () =
    Mutex.lock pool.m;
    let rec take () =
      match Queue.take_opt pool.queue with
      | Some task ->
          Mutex.unlock pool.m;
          task ();
          next ()
      | None ->
          if pool.closed then Mutex.unlock pool.m
          else begin
            Condition.wait pool.work_ready pool.m;
            take ()
          end
    in
    take ()
  in
  next ()

let create ~jobs =
  let n_jobs = if jobs < 1 then 1 else jobs in
  let pool =
    {
      n_jobs;
      m = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  if n_jobs > 1 then
    (* Workers are spawned before the pool escapes [create] and the list is
       read again only by the creating domain in [shutdown].  ahl_lint: allow R7 *)
    pool.workers <- List.init n_jobs (fun _ -> Domain.spawn (worker_loop pool));
  pool

let fill fut result =
  Mutex.lock fut.fm;
  fut.state <- result;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let run_into fut f () =
  match f () with
  | v -> fill fut (Done v)
  | exception e -> fill fut (Raised (e, Printexc.get_raw_backtrace ()))

let submit pool f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
  if pool.n_jobs <= 1 then run_into fut f ()
  else begin
    Mutex.lock pool.m;
    Queue.add (run_into fut f) pool.queue;
    Condition.signal pool.work_ready;
    Mutex.unlock pool.m
  end;
  fut

let await fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.state with
    | Pending ->
        Condition.wait fut.fc fut.fm;
        wait ()
    | Done v ->
        Mutex.unlock fut.fm;
        v
    | Raised (e, bt) ->
        Mutex.unlock fut.fm;
        Printexc.raise_with_backtrace e bt
  in
  wait ()

let map pool f xs =
  let futures = List.map (fun x -> submit pool (fun () -> f x)) xs in
  List.map await futures

let shutdown pool =
  Mutex.lock pool.m;
  pool.closed <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.m;
  List.iter Domain.join pool.workers;
  pool.workers <- []
