(** Streaming statistics and time-series accumulators for experiment
    metrics (throughput, latency, abort rates, stale-block rates). *)

type t
(** Streaming accumulator: count / mean / variance (Welford) plus min/max,
    with all observed samples retained for percentile queries. *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0.0 when empty. *)

val stddev : t -> float
(** Sample standard deviation; 0.0 with fewer than two samples. *)

val min : t -> float

val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]]; nearest-rank on the sorted
    samples.  0.0 when empty. *)

val total : t -> float

val merge : into:t -> t -> unit
(** Combine [src] into [into] (parallel Welford merge); retained samples
    concatenate, so percentile queries over the result stay exact. *)

(** Fixed-width time-series binning, e.g. committed transactions per second
    over the run for the Figure 12 throughput-over-time plot. *)
module Series : sig
  type s

  val create : bin:float -> (s, string) result
  (** [create ~bin] accumulates events into bins of width [bin] (simulated
      seconds); [Error] when [bin <= 0]. *)

  val record : s -> float -> float -> unit
  (** [record s time weight] adds [weight] to the bin containing [time]. *)

  val bins : s -> (float * float) list
  (** [(bin_start, sum)] pairs in time order, including empty interior
      bins. *)

  val rate_bins : s -> (float * float) list
  (** Like [bins] but each sum is divided by the bin width, giving a rate
      (per second). *)
end
