(** Deterministic views over hash tables.

    [Hashtbl] iteration order is an artifact of hashing and resize history,
    so any consensus or simulation state assembled by [Hashtbl.iter]/[fold]
    is a silent nondeterminism hazard.  Library code must use these sorted
    wrappers instead; ahl_lint rule R1 bans the raw iterators under [lib/]. *)

val bindings : compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings, sorted by key under [compare]. *)

val keys : compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** All keys, sorted under [compare]. *)

val iter : compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter ~compare f tbl] applies [f] to every binding in sorted key order. *)

val fold :
  compare:('k -> 'k -> int) -> ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) Hashtbl.t -> 'acc -> 'acc
(** [fold ~compare f tbl init] folds over bindings in sorted key order. *)

val int_pair : int * int -> int * int -> int
(** Lexicographic comparator for [int * int] keys. *)

val int_triple : int * int * int -> int * int * int -> int
(** Lexicographic comparator for [int * int * int] keys. *)

val stable_hash : string -> int
(** FNV-1a over the bytes of an explicit rendering, folded to a
    non-negative [int].  The deterministic replacement for polymorphic
    [Hashtbl.hash] in tag derivation (ahl_lint rule R8): the result is a
    pure function of the string across runs, layouts, and OCaml
    versions. *)
