exception Violation of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Violation msg)) fmt
