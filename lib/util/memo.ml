type 'v cell_state =
  | Running
  | Ready of 'v
  | Raised of exn * Printexc.raw_backtrace

type 'v cell = {
  cm : Mutex.t;
  cc : Condition.t;
  mutable state : 'v cell_state;
}

type ('k, 'v) t = {
  m : Mutex.t;
  table : ('k, 'v cell) Hashtbl.t;
}

let create ?(size = 64) () = { m = Mutex.create (); table = Hashtbl.create size }

let wait_cell cell =
  Mutex.lock cell.cm;
  let rec go () =
    match cell.state with
    | Running ->
        Condition.wait cell.cc cell.cm;
        go ()
    | Ready v ->
        Mutex.unlock cell.cm;
        v
    | Raised (e, bt) ->
        Mutex.unlock cell.cm;
        Printexc.raise_with_backtrace e bt
  in
  go ()

let settle cell state =
  Mutex.lock cell.cm;
  cell.state <- state;
  Condition.broadcast cell.cc;
  Mutex.unlock cell.cm

let get t key compute =
  Mutex.lock t.m;
  match Hashtbl.find_opt t.table key with
  | Some cell ->
      Mutex.unlock t.m;
      wait_cell cell
  | None ->
      (* Claim the key before computing so concurrent callers block on the
         cell instead of duplicating the work. *)
      let cell = { cm = Mutex.create (); cc = Condition.create (); state = Running } in
      Hashtbl.replace t.table key cell;
      Mutex.unlock t.m;
      (match compute () with
      | v ->
          settle cell (Ready v);
          v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          settle cell (Raised (e, bt));
          Printexc.raise_with_backtrace e bt)

let clear t =
  Mutex.lock t.m;
  Hashtbl.reset t.table;
  Mutex.unlock t.m
