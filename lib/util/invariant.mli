(** Typed precondition failures for [Repro_util] (which cannot see
    [Repro_sim.Sim_error] without a dependency cycle).

    Raised instead of the anonymous [Invalid_argument]/[Failure] that
    ahl_lint rule R3 bans: a named exception states which layer rejected
    the input, and callers can match on it without string-matching. *)

exception Violation of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Violation} with the formatted message. *)
