(** Mutex-guarded keyed once-cells.

    [get t key compute] runs [compute] at most once per key, even under
    concurrent callers from different domains: the first caller claims the
    key and computes while later callers block until the cell settles, then
    share the value (or the computation's exception).  This is how shared
    experiment sweeps (Figures 8/15/16/17) stay computed-exactly-once when
    datapoints run in parallel.

    [compute] must be a pure function of [key] for results to be
    deterministic — which caller wins the race is scheduling-dependent. *)

type ('k, 'v) t

val create : ?size:int -> unit -> ('k, 'v) t

val get : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

val clear : ('k, 'v) t -> unit
(** Forget every cell.  Only call while no [get] is in flight. *)
