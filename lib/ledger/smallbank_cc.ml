let checking_key acc = "chk_" ^ acc

let savings_key acc = "sav_" ^ acc

let checking state acc = Executor.balance state (checking_key acc)

let savings state acc = Executor.balance state (savings_key acc)

let setup state ~accounts ~initial =
  for i = 0 to accounts - 1 do
    let acc = "acc" ^ string_of_int i in
    Executor.set_balance state (checking_key acc) initial;
    Executor.set_balance state (savings_key acc) initial
  done

let total_money state =
  List.fold_left
    (fun acc key ->
      if String.length key > 4 && (String.sub key 0 4 = "chk_" || String.sub key 0 4 = "sav_")
      then acc + Executor.balance state key
      else acc)
    0 (State.keys state)

let send_payment_ops ~src ~dst ~amount =
  [
    Tx.Debit { account = checking_key src; amount };
    Tx.Credit { account = checking_key dst; amount };
  ]

let amalgamate_ops state ~src ~dst =
  let total = checking state src + savings state src in
  [
    Tx.Debit { account = checking_key src; amount = checking state src };
    Tx.Debit { account = savings_key src; amount = savings state src };
    Tx.Credit { account = checking_key dst; amount = total };
  ]

let arity_error fn = Chaincode.Failure (fn ^ ": wrong arguments")

let int_arg v k = match int_of_string_opt v with Some i -> k i | None -> Chaincode.Failure "bad int"

let handler state ~txid { Chaincode.fn; args } =
  let single ops =
    match Executor.execute_single state ~txid ops with
    | Ok () -> Chaincode.Success ""
    | Error reason -> Chaincode.Failure reason
  in
  match (fn, args) with
  | "getBalance", [ acc ] ->
      Chaincode.Success (string_of_int (checking state acc + savings state acc))
  | "depositChecking", [ acc; amount ] ->
      int_arg amount (fun amount -> single [ Tx.Credit { account = checking_key acc; amount } ])
  | "transactSavings", [ acc; amount ] ->
      int_arg amount (fun amount -> single [ Tx.Debit { account = savings_key acc; amount } ])
  | "writeCheck", [ acc; amount ] ->
      int_arg amount (fun amount -> single [ Tx.Debit { account = checking_key acc; amount } ])
  | "sendPayment", [ src; dst; amount ] ->
      int_arg amount (fun amount -> single (send_payment_ops ~src ~dst ~amount))
  | "amalgamate", [ src; dst ] -> single (amalgamate_ops state ~src ~dst)
  (* Sharded refactoring: the coordination protocol drives these. *)
  | "preparePayment", _ | "prepare", _ ->
      Kvstore_cc.with_tx args (fun txid ops ->
          match Executor.prepare state ~txid ops with
          | Executor.Prepare_ok -> Chaincode.Success "PrepareOK"
          | Executor.Prepare_not_ok reason -> Chaincode.Failure reason)
  | "commitPayment", _ | "commit", _ ->
      Kvstore_cc.with_tx args (fun txid ops ->
          Executor.commit state ~txid ops;
          Chaincode.Success "")
  | "abortPayment", _ | "abort", _ ->
      Kvstore_cc.with_tx args (fun txid ops ->
          Executor.abort state ~txid ops;
          Chaincode.Success "")
  | ("getBalance" | "depositChecking" | "transactSavings" | "writeCheck" | "sendPayment"
    | "amalgamate"), _ ->
      arity_error fn
  | other, _ -> Chaincode.Failure ("unknown function " ^ other)

let chaincode = Chaincode.define ~name:"smallbank" handler

(* Credits are unconditional increments, so they commute: declare them
   mergeable (DESIGN §18).  Debits keep the 2PC+2PL path — their
   balance-≥-0 precondition does not commute. *)
let declare_mergeable reg =
  Merge.register reg ~name:"smallbank.credit" (fun op ->
      match op with
      | Tx.Credit { account; amount } -> Some (account, Tx.Add amount)
      | Tx.Put _ | Tx.Get _ | Tx.Debit _ | Tx.Merge _ -> None)
