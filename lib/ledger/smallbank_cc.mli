(** The SmallBank chaincode (H-Store benchmark as shipped with
    BLOCKBENCH), sharded per Section 6.3.

    Accounts have a checking and a savings balance, stored under
    ["chk_" ^ acc] and ["sav_" ^ acc].  Single-shard entry points mirror
    the original chaincode; [sendPayment] is additionally refactored into
    [preparePayment] / [commitPayment] / [abortPayment], which is the
    running example of the paper's implementation section. *)

val chaincode : Chaincode.t

val checking_key : string -> string

val savings_key : string -> string

val setup : State.t -> accounts:int -> initial:int -> unit
(** Create [accounts] accounts named "acc0".."accN-1" with the given
    initial checking and savings balances. *)

val send_payment_ops : src:string -> dst:string -> amount:int -> Tx.op list
(** The two-account transfer of the evaluation (reads and writes two
    different states; cross-shard whenever the accounts hash apart). *)

val amalgamate_ops : State.t -> src:string -> dst:string -> Tx.op list

val checking : State.t -> string -> int

val savings : State.t -> string -> int

val total_money : State.t -> int
(** Sum of all balances — the conservation invariant for property tests. *)

val declare_mergeable : Merge.registry -> unit
(** Declare the chaincode's commutative operations (credits as [Add]
    deltas) for the fast-lane classifier. *)
