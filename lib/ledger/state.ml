open Repro_crypto

type value = { data : string; version : int }

type t = { table : (string, value) Hashtbl.t }

let create () = { table = Hashtbl.create 256 }

let get t key = Hashtbl.find_opt t.table key

let get_data t key = Option.map (fun v -> v.data) (get t key)

let put t key data =
  let version = match get t key with Some v -> v.version + 1 | None -> 0 in
  Hashtbl.replace t.table key { data; version }

let delete t key = Hashtbl.remove t.table key

let mem t key = Hashtbl.mem t.table key

let size t = Hashtbl.length t.table

let keys t = Repro_util.Det.keys ~compare:String.compare t.table

let snapshot t =
  List.map (fun k -> (k, Hashtbl.find t.table k)) (keys t)

let root t =
  let leaves =
    List.map (fun (k, v) -> Printf.sprintf "%s=%s@%d" k v.data v.version) (snapshot t)
  in
  Merkle.root leaves

let restore entries =
  let t = create () in
  List.iter (fun (k, v) -> Hashtbl.replace t.table k v) entries;
  t

let equal a b =
  size a = size b
  && List.for_all2
       (fun (ka, va) (kb, vb) -> ka = kb && va.data = vb.data && va.version = vb.version)
       (snapshot a) (snapshot b)
