open Repro_crypto

type delta =
  | Add of int
  | Maxi of int
  | Union of string list

type op =
  | Put of { key : string; value : string }
  | Get of { key : string }
  | Debit of { account : string; amount : int }
  | Credit of { account : string; amount : int }
  | Merge of { key : string; delta : delta }

type t = {
  txid : int;
  ops : op list;
  client : int;
  submitted : float;
}

let make ~txid ?(client = 0) ?(submitted = 0.0) ops = { txid; ops; client; submitted }

let key_of_op = function
  | Put { key; _ } | Get { key } | Merge { key; _ } -> key
  | Debit { account; _ } | Credit { account; _ } -> account

let keys t = List.sort_uniq String.compare (List.map key_of_op t.ops)

let shard_of_key ~shards key =
  if shards <= 0 then Repro_util.Invariant.fail "Tx.shard_of_key: shards must be positive";
  let digest = Sha256.to_raw (Sha256.digest_string key) in
  (* First 4 digest bytes as an unsigned int. *)
  let v =
    (Char.code digest.[0] lsl 24)
    lor (Char.code digest.[1] lsl 16)
    lor (Char.code digest.[2] lsl 8)
    lor Char.code digest.[3]
  in
  v mod shards

let shards_touched ~shards t =
  List.sort_uniq Int.compare (List.map (fun op -> shard_of_key ~shards (key_of_op op)) t.ops)

let is_cross_shard ~shards t = List.length (shards_touched ~shards t) > 1

let ops_for_shard ~shards t shard =
  List.filter (fun op -> shard_of_key ~shards (key_of_op op) = shard) t.ops

let pp_delta fmt = function
  | Add n -> Format.fprintf fmt "add %d" n
  | Maxi n -> Format.fprintf fmt "max %d" n
  | Union elts -> Format.fprintf fmt "union{%s}" (String.concat "," elts)

let pp_op fmt = function
  | Put { key; value } -> Format.fprintf fmt "put(%s=%s)" key value
  | Get { key } -> Format.fprintf fmt "get(%s)" key
  | Debit { account; amount } -> Format.fprintf fmt "debit(%s,%d)" account amount
  | Credit { account; amount } -> Format.fprintf fmt "credit(%s,%d)" account amount
  | Merge { key; delta } -> Format.fprintf fmt "merge(%s,%a)" key pp_delta delta

(* Canonical encoding: header line then one op per line.  Values are
   percent-escaped so newlines and pipes in user data cannot break
   framing. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string buf "%25"
      | '|' -> Buffer.add_string buf "%7c"
      | '\n' -> Buffer.add_string buf "%0a"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  let ok = ref true in
  while !i < n do
    (if s.[!i] = '%' && !i + 2 < n then begin
       (match String.sub s (!i + 1) 2 with
       | "25" -> Buffer.add_char buf '%'
       | "7c" -> Buffer.add_char buf '|'
       | "0a" -> Buffer.add_char buf '\n'
       | _ -> ok := false);
       i := !i + 3
     end
     else begin
       Buffer.add_char buf s.[!i];
       incr i
     end)
  done;
  if !ok then Some (Buffer.contents buf) else None

let serialize t =
  let op_line = function
    | Put { key; value } -> Printf.sprintf "put|%s|%s" (escape key) (escape value)
    | Get { key } -> Printf.sprintf "get|%s" (escape key)
    | Debit { account; amount } -> Printf.sprintf "debit|%s|%d" (escape account) amount
    | Credit { account; amount } -> Printf.sprintf "credit|%s|%d" (escape account) amount
    | Merge { key; delta = Add n } -> Printf.sprintf "merge|%s|add|%d" (escape key) n
    | Merge { key; delta = Maxi n } -> Printf.sprintf "merge|%s|max|%d" (escape key) n
    | Merge { key; delta = Union elts } ->
        String.concat "|" ("merge" :: escape key :: "union" :: List.map escape elts)
  in
  String.concat "\n"
    (Printf.sprintf "tx|%d|%d|%.6f" t.txid t.client t.submitted :: List.map op_line t.ops)

let deserialize s =
  match String.split_on_char '\n' s with
  | [] -> Error "empty"
  | header :: op_lines -> (
      match String.split_on_char '|' header with
      | [ "tx"; txid; client; submitted ] -> (
          match (int_of_string_opt txid, int_of_string_opt client, float_of_string_opt submitted)
          with
          | Some txid, Some client, Some submitted -> (
              let parse_op line =
                match String.split_on_char '|' line with
                | [ "put"; key; value ] -> (
                    match (unescape key, unescape value) with
                    | Some key, Some value -> Ok (Put { key; value })
                    | _ -> Error "bad escape")
                | [ "get"; key ] -> (
                    match unescape key with
                    | Some key -> Ok (Get { key })
                    | None -> Error "bad escape")
                | [ "debit"; account; amount ] -> (
                    match (unescape account, int_of_string_opt amount) with
                    | Some account, Some amount -> Ok (Debit { account; amount })
                    | _ -> Error "bad debit")
                | [ "credit"; account; amount ] -> (
                    match (unescape account, int_of_string_opt amount) with
                    | Some account, Some amount -> Ok (Credit { account; amount })
                    | _ -> Error "bad credit")
                | [ "merge"; key; "add"; n ] -> (
                    match (unescape key, int_of_string_opt n) with
                    | Some key, Some n -> Ok (Merge { key; delta = Add n })
                    | _ -> Error "bad merge add")
                | [ "merge"; key; "max"; n ] -> (
                    match (unescape key, int_of_string_opt n) with
                    | Some key, Some n -> Ok (Merge { key; delta = Maxi n })
                    | _ -> Error "bad merge max")
                | "merge" :: key :: "union" :: elts -> (
                    let unescaped = List.filter_map unescape elts in
                    match unescape key with
                    | Some key when List.length unescaped = List.length elts ->
                        Ok (Merge { key; delta = Union unescaped })
                    | _ -> Error "bad merge union")
                | _ -> Error ("bad op line: " ^ line)
              in
              let rec go acc = function
                | [] -> Ok (List.rev acc)
                | line :: rest -> (
                    match parse_op line with Ok op -> go (op :: acc) rest | Error e -> Error e)
              in
              match go [] op_lines with
              | Ok ops -> Ok { txid; client; submitted; ops }
              | Error e -> Error e)
          | _ -> Error "bad header numbers")
      | _ -> Error "bad header")

let digest t = Sha256.digest_string (serialize t)
