type invocation = { fn : string; args : string list }

type response = Success of string | Failure of string

type t = { name : string; handler : State.t -> txid:int -> invocation -> response }

let name t = t.name

let define ~name handler = { name; handler }

let invoke t state ~txid inv = t.handler state ~txid inv

let op_to_args op =
  match op with
  | Tx.Put { key; value } -> [ "put"; key; value ]
  | Tx.Get { key } -> [ "get"; key ]
  | Tx.Debit { account; amount } -> [ "debit"; account; string_of_int amount ]
  | Tx.Credit { account; amount } -> [ "credit"; account; string_of_int amount ]
  | Tx.Merge { key; delta = Tx.Add n } -> [ "madd"; key; string_of_int n ]
  | Tx.Merge { key; delta = Tx.Maxi n } -> [ "mmax"; key; string_of_int n ]
  | Tx.Merge { key; delta = Tx.Union elts } ->
      (* Length-prefixed so the flat argument stream stays parseable. *)
      "munion" :: key :: string_of_int (List.length elts) :: elts

let functions_of_ops ~txid ~phase ops =
  let fn =
    match phase with `Prepare -> "prepare" | `Commit -> "commit" | `Abort -> "abort"
  in
  { fn; args = string_of_int txid :: List.concat_map op_to_args ops }
