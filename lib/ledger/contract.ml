type arg = Param of int | Lit of string

type amount = Amount_param of int | Amount_lit of int

type stmt =
  | Transfer of { from_ : arg; to_ : arg; amount : amount }
  | Deposit of { to_ : arg; amount : amount }
  | Withdraw of { from_ : arg; amount : amount }
  | Set of { key : arg; value : arg }

type t = { name : string; arity : int; body : stmt list }

let check_arg ~arity = function
  | Param i when i < 0 || i >= arity -> Repro_util.Invariant.fail "Contract.define: parameter out of range"
  | Param _ | Lit _ -> ()

let check_amount ~arity = function
  | Amount_param i when i < 0 || i >= arity ->
      Repro_util.Invariant.fail "Contract.define: parameter out of range"
  | Amount_param _ | Amount_lit _ -> ()

let define ~name ~arity body =
  if arity < 0 then Repro_util.Invariant.fail "Contract.define: negative arity";
  List.iter
    (fun stmt ->
      match stmt with
      | Transfer { from_; to_; amount } ->
          check_arg ~arity from_;
          check_arg ~arity to_;
          check_amount ~arity amount
      | Deposit { to_; amount } ->
          check_arg ~arity to_;
          check_amount ~arity amount
      | Withdraw { from_; amount } ->
          check_arg ~arity from_;
          check_amount ~arity amount
      | Set { key; value } ->
          check_arg ~arity key;
          check_arg ~arity value)
    body;
  { name; arity; body }

let name t = t.name

let arity t = t.arity

let subst args = function Param i -> List.nth args i | Lit s -> s

let subst_amount args = function
  | Amount_lit v -> Ok v
  | Amount_param i -> (
      match int_of_string_opt (List.nth args i) with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "argument %d is not an integer" i))

let compile t ~args =
  if List.length args <> t.arity then
    Error (Printf.sprintf "%s expects %d arguments" t.name t.arity)
  else begin
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | stmt :: rest -> (
          match stmt with
          | Transfer { from_; to_; amount } -> (
              match subst_amount args amount with
              | Error e -> Error e
              | Ok amount ->
                  go
                    (Tx.Credit { account = subst args to_; amount }
                     :: Tx.Debit { account = subst args from_; amount }
                     :: acc)
                    rest)
          | Deposit { to_; amount } -> (
              match subst_amount args amount with
              | Error e -> Error e
              | Ok amount -> go (Tx.Credit { account = subst args to_; amount } :: acc) rest)
          | Withdraw { from_; amount } -> (
              match subst_amount args amount with
              | Error e -> Error e
              | Ok amount -> go (Tx.Debit { account = subst args from_; amount } :: acc) rest)
          | Set { key; value } ->
              go (Tx.Put { key = subst args key; value = subst args value } :: acc) rest)
    in
    go [] t.body
  end

let analyze t ~shards ~args =
  match compile t ~args with
  | Error e -> Repro_util.Invariant.fail "Contract.analyze: %s" e
  | Ok ops -> (
      let tx = Tx.make ~txid:0 ops in
      match Tx.shards_touched ~shards tx with
      | [ s ] -> `Single s
      | many -> `Cross many)

let to_chaincode t =
  Chaincode.define ~name:t.name (fun state ~txid { Chaincode.fn; args } ->
      if fn = t.name then
        (* Original single-shard entry point: prepare + commit fused. *)
        match compile t ~args with
        | Error e -> Chaincode.Failure e
        | Ok ops -> (
            match Executor.execute_single state ~txid ops with
            | Ok () -> Chaincode.Success ""
            | Error e -> Chaincode.Failure e)
      else
        (* Auto-generated sharded entry points. *)
        match fn with
        | "prepare" ->
            Kvstore_cc.with_tx args (fun txid ops ->
                match Executor.prepare state ~txid ops with
                | Executor.Prepare_ok -> Chaincode.Success "PrepareOK"
                | Executor.Prepare_not_ok reason -> Chaincode.Failure reason)
        | "commit" ->
            Kvstore_cc.with_tx args (fun txid ops ->
                Executor.commit state ~txid ops;
                Chaincode.Success "")
        | "abort" ->
            Kvstore_cc.with_tx args (fun txid ops ->
                Executor.abort state ~txid ops;
                Chaincode.Success "")
        | other -> Chaincode.Failure ("unknown function " ^ other))
