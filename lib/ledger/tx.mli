(** Transactions over the general (non-UTXO) data model.

    A transaction is a set of read/write operations on named state keys;
    keys are hash-partitioned across [k] shards, so a transaction touching
    keys in several partitions is a cross-shard (distributed) transaction
    requiring the Section 6 coordination protocol. *)

type delta =
  | Add of int            (** commutative counter increment (any sign) *)
  | Maxi of int           (** monotone max register *)
  | Union of string list  (** grow-only set (elements must not contain [',']) *)
(** Commutative state deltas for the merge fast lane (DESIGN §18).
    [Merge] ops carry no precondition: two deltas of the same class
    always combine, so transactions made only of them need no locks. *)

type op =
  | Put of { key : string; value : string }        (** blind write (KVStore) *)
  | Get of { key : string }                        (** read *)
  | Debit of { account : string; amount : int }    (** conditional decrement *)
  | Credit of { account : string; amount : int }   (** increment *)
  | Merge of { key : string; delta : delta }       (** classified commutative op *)

type t = {
  txid : int;
  ops : op list;
  client : int;
  submitted : float;
}

val make : txid:int -> ?client:int -> ?submitted:float -> op list -> t

val key_of_op : op -> string

val keys : t -> string list
(** Distinct keys touched, sorted. *)

val shard_of_key : shards:int -> string -> int
(** Stable hash partitioning (SHA-256 based, matching Appendix B's
    uniformly-random argument-to-shard mapping). *)

val shards_touched : shards:int -> t -> int list
(** Sorted distinct shard ids. *)

val is_cross_shard : shards:int -> t -> bool

val ops_for_shard : shards:int -> t -> int -> op list
(** The sub-ops a given participant shard must prepare/commit. *)

val pp_delta : Format.formatter -> delta -> unit

val pp_op : Format.formatter -> op -> unit

val serialize : t -> string
(** Canonical wire encoding (what block bodies and tx digests cover). *)

val deserialize : string -> (t, string) result
(** Inverse of {!serialize}. *)

val digest : t -> Repro_crypto.Sha256.digest
(** SHA-256 over the canonical encoding — the transaction id used in
    Merkle inclusion proofs. *)
