type coin_id = int

type coin = { id : coin_id; owner : string; amount : int }

type tx = { inputs : coin_id list; outputs : (string * int) list }

type t = {
  coins : (coin_id, coin) Hashtbl.t;
  spent : (coin_id, unit) Hashtbl.t;
  mutable next_id : int;
}

let create () = { coins = Hashtbl.create 256; spent = Hashtbl.create 256; next_id = 0 }

let fresh t owner amount =
  let id = t.next_id in
  t.next_id <- id + 1;
  let c = { id; owner; amount } in
  Hashtbl.replace t.coins id c;
  c

let mint t ~owner ~amount =
  if amount <= 0 then Repro_util.Invariant.fail "Utxo.mint: amount must be positive";
  fresh t owner amount

let coin t id = Hashtbl.find_opt t.coins id

let is_unspent t id = Hashtbl.mem t.coins id && not (Hashtbl.mem t.spent id)

let apply t tx =
  let distinct = List.sort_uniq Int.compare tx.inputs in
  if List.length distinct <> List.length tx.inputs then Error "duplicate input"
  else begin
    let resolve id =
      if is_unspent t id then Option.to_result ~none:"missing" (coin t id)
      else Error (Printf.sprintf "input %d spent or unknown" id)
    in
    let rec resolve_all acc = function
      | [] -> Ok (List.rev acc)
      | id :: rest -> (
          match resolve id with Ok c -> resolve_all (c :: acc) rest | Error e -> Error e)
    in
    match resolve_all [] tx.inputs with
    | Error e -> Error e
    | Ok coins ->
        let in_total = List.fold_left (fun acc c -> acc + c.amount) 0 coins in
        let out_total = List.fold_left (fun acc (_, v) -> acc + v) 0 tx.outputs in
        if out_total > in_total then Error "outputs exceed inputs"
        else if List.exists (fun (_, v) -> v <= 0) tx.outputs then Error "non-positive output"
        else begin
          List.iter (fun c -> Hashtbl.replace t.spent c.id ()) coins;
          Ok (List.map (fun (owner, amount) -> fresh t owner amount) tx.outputs)
        end
  end

let unspent_of t owner =
  Repro_util.Det.bindings ~compare:Int.compare t.coins
  |> List.filter_map (fun (id, c) ->
         if String.equal c.owner owner && not (Hashtbl.mem t.spent id) then Some c else None)

let balance t owner = List.fold_left (fun acc c -> acc + c.amount) 0 (unspent_of t owner)

let total_unspent t =
  Repro_util.Det.fold ~compare:Int.compare
    (fun id c acc -> if Hashtbl.mem t.spent id then acc else acc + c.amount)
    t.coins 0
