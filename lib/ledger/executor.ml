type vote = Prepare_ok | Prepare_not_ok of string

type prepare_error =
  | Lock_conflict of { key : string; holder : int }
  | Insufficient of string

let balance state account =
  match State.get_data state account with
  | None -> 0
  | Some data -> Option.value (int_of_string_opt data) ~default:0

let set_balance state account v = State.put state account (string_of_int v)

(* Net effect of this transaction's local ops per account, so a prepare can
   validate a debit that is funded by a credit in the same transaction. *)
let net_deltas ops =
  let table = Hashtbl.create 8 in
  List.iter
    (fun op ->
      let upd account d =
        Hashtbl.replace table account (d + Option.value (Hashtbl.find_opt table account) ~default:0)
      in
      match op with
      | Tx.Debit { account; amount } -> upd account (-amount)
      | Tx.Credit { account; amount } -> upd account amount
      (* Merge deltas are unconditional: they never fail validation, so a
         downgraded merge transaction cannot abort on funds. *)
      | Tx.Put _ | Tx.Get _ | Tx.Merge _ -> ())
    ops;
  table

let validate state ops =
  let deltas = net_deltas ops in
  Repro_util.Det.fold ~compare:String.compare
    (fun account delta acc ->
      match acc with
      | Some _ -> acc
      | None -> if balance state account + delta < 0 then Some account else None)
    deltas None

let try_prepare state ~txid ops =
  let locks = Locks.create state in
  let keys = List.sort_uniq String.compare (List.map Tx.key_of_op ops) in
  if not (Locks.acquire_all locks ~txid keys) then begin
    (* Report the first conflicting key and its holder. *)
    let conflict =
      List.find_map
        (fun key ->
          match Locks.holder locks key with
          | Some holder when holder <> txid -> Some (Lock_conflict { key; holder })
          | Some _ | None -> None)
        keys
    in
    Error (Option.value conflict ~default:(Lock_conflict { key = "?"; holder = -1 }))
  end
  else
    match validate state ops with
    | Some account ->
        Locks.release_all locks ~txid keys;
        Error (Insufficient account)
    | None -> Ok ()

let prepare state ~txid ops =
  match try_prepare state ~txid ops with
  | Ok () -> Prepare_ok
  | Error (Lock_conflict _) -> Prepare_not_ok "lock conflict"
  | Error (Insufficient account) -> Prepare_not_ok ("insufficient funds: " ^ account)

let apply state ops =
  List.iter
    (fun op ->
      match op with
      | Tx.Put { key; value } -> State.put state key value
      | Tx.Get _ -> ()
      | Tx.Debit { account; amount } -> set_balance state account (balance state account - amount)
      | Tx.Credit { account; amount } -> set_balance state account (balance state account + amount)
      | Tx.Merge { key; delta } -> Merge.apply_delta state key delta)
    ops

let locked_by_us state ~txid ops =
  let locks = Locks.create state in
  List.for_all
    (fun key -> match Locks.holder locks key with Some h -> h = txid | None -> false)
    (List.sort_uniq String.compare (List.map Tx.key_of_op ops))

let commit state ~txid ops =
  if locked_by_us state ~txid ops then begin
    apply state ops;
    let locks = Locks.create state in
    Locks.release_all locks ~txid (List.sort_uniq String.compare (List.map Tx.key_of_op ops))
  end

let abort state ~txid ops =
  let locks = Locks.create state in
  Locks.release_all locks ~txid (List.sort_uniq String.compare (List.map Tx.key_of_op ops))

let execute_single state ~txid ops =
  match prepare state ~txid ops with
  | Prepare_not_ok reason ->
      abort state ~txid ops;
      Error reason
  | Prepare_ok ->
      commit state ~txid ops;
      Ok ()
