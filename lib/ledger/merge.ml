(* Mergeable (commutative) state: typed deltas with a deterministic
   combine, a per-shard lock-free delta lane, and the block-boundary fold
   that materialises deltas into canonical state (DESIGN §18).

   The algebra is the CRDT core of CRDV's conflict-free replicated views
   (SIGMOD 2025): each delta class forms a commutative monoid, so any
   arrival order folds to the same value.  Chaincodes opt their hot,
   unconditional operations into the lane via [register]; everything
   else keeps the 2PC+2PL path. *)

open Repro_crypto

type delta = Tx.delta = Add of int | Maxi of int | Union of string list

let canon = function
  | Union elts -> Union (List.sort_uniq String.compare elts)
  | (Add _ | Maxi _) as d -> d

let identity = function Add _ -> Add 0 | Maxi _ -> Maxi min_int | Union _ -> Union []

let combine a b =
  match (a, b) with
  | Add x, Add y -> Some (Add (x + y))
  | Maxi x, Maxi y -> Some (Maxi (Int.max x y))
  | Union x, Union y -> Some (Union (List.sort_uniq String.compare (x @ y)))
  | (Add _ | Maxi _ | Union _), _ -> None

let int_of_data data = Option.value (int_of_string_opt data) ~default:0

let set_of_data = function "" -> [] | data -> String.split_on_char ',' data

let apply_delta state key delta =
  let current = Option.value (State.get_data state key) ~default:"" in
  let merged =
    match canon delta with
    | Add n -> string_of_int (int_of_data current + n)
    | Maxi n -> string_of_int (Int.max (int_of_data current) n)
    | Union elts ->
        String.concat "," (List.sort_uniq String.compare (set_of_data current @ elts))
  in
  State.put state key merged

(* ---- registry: chaincode-declared commutative operations ---- *)

type rule = { rname : string; rclassify : Tx.op -> (string * delta) option }

type registry = { mutable rules : rule list }

let create_registry () = { rules = [] }

let register reg ~name rclassify =
  if not (List.exists (fun r -> String.equal r.rname name) reg.rules) then
    reg.rules <- reg.rules @ [ { rname = name; rclassify } ]

let rule_names reg = List.map (fun r -> r.rname) reg.rules

let classify_op reg op =
  match op with
  | Tx.Merge { key; delta } -> Some (key, canon delta)
  | Tx.Put _ | Tx.Get _ | Tx.Debit _ | Tx.Credit _ ->
      List.find_map (fun r -> r.rclassify op) reg.rules

let classify_tx reg (tx : Tx.t) =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | op :: rest -> (
        match classify_op reg op with Some kd -> go (kd :: acc) rest | None -> None)
  in
  match tx.Tx.ops with [] -> None | ops -> go [] ops

(* ---- per-shard delta lane ---- *)

type entry = { txid : int; key : string; delta : delta }

type lane = {
  mutable pending : entry list; (* newest first; folded at block boundaries *)
  mutable log_rev : entry list; (* full applied history, for the audit *)
  mutable log_len : int;
  base : (string, string option) Hashtbl.t; (* state value before first delta *)
  mutable folds : int;
  mutable root : Sha256.digest; (* chained digest over every fold *)
}

let lane () =
  {
    pending = [];
    log_rev = [];
    log_len = 0;
    base = Hashtbl.create 64;
    folds = 0;
    root = Sha256.digest_string "merge-lane-genesis";
  }

let append lane state ~txid ~key delta =
  if not (Hashtbl.mem lane.base key) then
    Hashtbl.replace lane.base key (State.get_data state key);
  let e = { txid; key; delta = canon delta } in
  lane.pending <- e :: lane.pending;
  lane.log_rev <- e :: lane.log_rev;
  lane.log_len <- lane.log_len + 1

let depth lane = List.length lane.pending

let log_length lane = lane.log_len

let folds lane = lane.folds

let root lane = lane.root

let delta_token = function
  | Add n -> "add:" ^ string_of_int n
  | Maxi n -> "max:" ^ string_of_int n
  | Union elts -> "union:" ^ String.concat "," elts

let entry_line e = Printf.sprintf "%s|%d|%s" e.key e.txid (delta_token e.delta)

(* Canonical fold order: by key, then txid, then delta token — no arrival
   component anywhere.  Commutativity makes the folded *values*
   order-independent; the canonical order makes the fold *digest* a pure
   function of the delta set, so every replica chains the same root per
   block no matter how its deltas arrived. *)
let entry_order a b =
  let c = String.compare a.key b.key in
  if c <> 0 then c
  else
    let c = Int.compare a.txid b.txid in
    if c <> 0 then c else String.compare (delta_token a.delta) (delta_token b.delta)

let fold_into lane state =
  let entries = List.sort entry_order (List.rev lane.pending) in
  List.iter (fun e -> apply_delta state e.key e.delta) entries;
  lane.pending <- [];
  let digest = Sha256.digest_concat (List.map entry_line entries) in
  lane.root <- Sha256.digest_concat [ Sha256.to_hex lane.root; Sha256.to_hex digest ];
  lane.folds <- lane.folds + 1;
  (List.length entries, digest)

(* ---- convergence audit ---- *)

type mismatch = { mkey : string; expected : string; actual : string }

(* Re-fold the full history for every touched key from its recorded base
   and compare with materialised state.  Call after the final fold: any
   divergence means a delta reached state outside the canonical fold (or a
   fold was skipped/duplicated on this replica). *)
let audit lane state =
  let by_key = Hashtbl.create 32 in
  List.iter
    (fun e ->
      Hashtbl.replace by_key e.key
        (e :: Option.value (Hashtbl.find_opt by_key e.key) ~default:[]))
    lane.log_rev (* newest first; re-sorted canonically below *)
  ;
  Repro_util.Det.fold ~compare:String.compare
    (fun key entries acc ->
      let scratch = State.create () in
      (match Hashtbl.find_opt lane.base key with
      | Some (Some v) -> State.put scratch key v
      | Some None | None -> ());
      List.iter (fun e -> apply_delta scratch key e.delta) (List.sort entry_order entries);
      let expected = Option.value (State.get_data scratch key) ~default:"" in
      let actual = Option.value (State.get_data state key) ~default:"" in
      if String.equal expected actual then acc
      else { mkey = key; expected; actual } :: acc)
    by_key []
  |> List.sort (fun a b -> String.compare a.mkey b.mkey)
