(** Mergeable (commutative) state for the fast-lane commit path
    (DESIGN §18, CRDV-style conflict-free replicated views).

    Three pieces: a delta algebra (each class a commutative monoid with a
    deterministic combine), a registry chaincodes use to declare which of
    their operations are commutative, and a per-shard lock-free lane that
    buffers deltas and folds them into canonical state at block
    boundaries in a canonical order. *)

type delta = Tx.delta = Add of int | Maxi of int | Union of string list

val canon : delta -> delta
(** Canonical form ([Union] sorted and deduplicated). *)

val identity : delta -> delta
(** The identity element of the argument's class:
    [combine d (identity d) = Some (canon d)]. *)

val combine : delta -> delta -> delta option
(** Deterministic merge of two deltas; [None] across classes.
    Associative and commutative — the QCheck laws in [test_ledger]
    pin this. *)

val apply_delta : State.t -> string -> delta -> unit
(** Fold one delta into the stored value ([Add]/[Maxi] over the integer
    encoding shared with [Executor.balance]; [Union] over a sorted
    comma-joined set). *)

(** {1 Registry} *)

type registry

val create_registry : unit -> registry

val register : registry -> name:string -> (Tx.op -> (string * delta) option) -> unit
(** Declare a commutative-operation rule.  The classifier returns
    [Some (key, delta)] when the op is an instance of this rule.
    Re-registering an existing [name] is a no-op. *)

val rule_names : registry -> string list

val classify_op : registry -> Tx.op -> (string * delta) option
(** [Tx.Merge] ops classify as themselves; other ops consult the
    registered rules in declaration order. *)

val classify_tx : registry -> Tx.t -> (string * delta) list option
(** [Some deltas] iff {e every} op classifies — the all-mergeable test
    that admits a transaction to the fast lane. *)

(** {1 Per-shard delta lane} *)

type lane

val lane : unit -> lane

val append : lane -> State.t -> txid:int -> key:string -> delta -> unit
(** Lock-free append to the pending log (the state argument only snapshots
    the key's pre-lane base value for the audit; nothing is written). *)

val depth : lane -> int
(** Pending (unfolded) entries. *)

val log_length : lane -> int
(** Total entries ever appended. *)

val folds : lane -> int

val root : lane -> Repro_crypto.Sha256.digest
(** Chained digest over every block-boundary fold. *)

val fold_into : lane -> State.t -> int * Repro_crypto.Sha256.digest
(** Fold all pending deltas into state in canonical (key, txid, delta)
    order — a pure function of the delta set, never of arrival; returns
    the entry count and this fold's digest, and chains it into {!root}. *)

(** {1 Convergence audit} *)

type mismatch = { mkey : string; expected : string; actual : string }

val audit : lane -> State.t -> mismatch list
(** Re-fold the full delta history from each key's recorded base value and
    diff against materialised state.  Empty iff the replica's state is
    exactly the canonical fold of its delta log — the merge-convergence
    oracle checks this on every shard after adversarial schedules. *)
