(** The BLOCKBENCH KVStore chaincode, sharded per Section 6.3.

    Functions:
    - ["write" ; key; value] — single-shard write
    - ["read" ; key]
    - ["prepare"; txid; (op triples)...] — acquire lock tuples, validate
    - ["commit" ; txid; ...] — apply writes, drop locks
    - ["abort"  ; txid; ...] — drop locks *)

val chaincode : Chaincode.t

val with_tx :
  string list -> (int -> Tx.op list -> Chaincode.response) -> Chaincode.response
(** Decode [txid :: flat-op-args] produced by
    {!Chaincode.functions_of_ops}; shared by chaincodes implementing the
    prepare/commit/abort split. *)

val ops_of_update : keys:string list -> value:string -> Tx.op list
(** The multi-key update transaction the paper's modified KVStore driver
    issues (3 updates per transaction). *)

val counter_key : string -> string
(** The mergeable counter namespace (["ctr_" ^ k]). *)

val ops_of_increment : keys:string list -> amount:int -> Tx.op list
(** Commutative counter bumps — fast-lane eligible (DESIGN §18). *)

val declare_mergeable : Merge.registry -> unit
(** Declare the counter namespace ([ctr_*] credits) mergeable. *)
