(* Parse the flat argument encoding produced by Chaincode.functions_of_ops:
   [txid; op; args...; op; args...]. *)
let parse_ops args =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | "put" :: key :: value :: rest -> go (Tx.Put { key; value } :: acc) rest
    | "get" :: key :: rest -> go (Tx.Get { key } :: acc) rest
    | "debit" :: account :: amount :: rest -> (
        match int_of_string_opt amount with
        | Some amount -> go (Tx.Debit { account; amount } :: acc) rest
        | None -> None)
    | "credit" :: account :: amount :: rest -> (
        match int_of_string_opt amount with
        | Some amount -> go (Tx.Credit { account; amount } :: acc) rest
        | None -> None)
    | "madd" :: key :: n :: rest -> (
        match int_of_string_opt n with
        | Some n -> go (Tx.Merge { key; delta = Tx.Add n } :: acc) rest
        | None -> None)
    | "mmax" :: key :: n :: rest -> (
        match int_of_string_opt n with
        | Some n -> go (Tx.Merge { key; delta = Tx.Maxi n } :: acc) rest
        | None -> None)
    | "munion" :: key :: count :: rest -> (
        match int_of_string_opt count with
        | Some count when count >= 0 && List.length rest >= count ->
            let rec split n xs =
              if n = 0 then ([], xs)
              else
                match xs with
                | x :: tl ->
                    let taken, rest = split (n - 1) tl in
                    (x :: taken, rest)
                | [] -> ([], [])
            in
            let elts, rest = split count rest in
            go (Tx.Merge { key; delta = Tx.Union elts } :: acc) rest
        | _ -> None)
    | _ -> None
  in
  go [] args

let with_tx args k =
  match args with
  | txid :: rest -> (
      match (int_of_string_opt txid, parse_ops rest) with
      | Some txid, Some ops -> k txid ops
      | None, _ | _, None -> Chaincode.Failure "malformed arguments")
  | [] -> Chaincode.Failure "missing txid"

let handler state ~txid:_ { Chaincode.fn; args } =
  match fn with
  | "write" -> (
      match args with
      | [ key; value ] ->
          State.put state key value;
          Chaincode.Success ""
      | _ -> Chaincode.Failure "write expects key value")
  | "read" -> (
      match args with
      | [ key ] -> (
          match State.get_data state key with
          | Some v -> Chaincode.Success v
          | None -> Chaincode.Failure "not found")
      | _ -> Chaincode.Failure "read expects key")
  | "prepare" ->
      with_tx args (fun txid ops ->
          match Executor.prepare state ~txid ops with
          | Executor.Prepare_ok -> Chaincode.Success "PrepareOK"
          | Executor.Prepare_not_ok reason -> Chaincode.Failure reason)
  | "commit" ->
      with_tx args (fun txid ops ->
          Executor.commit state ~txid ops;
          Chaincode.Success "")
  | "abort" ->
      with_tx args (fun txid ops ->
          Executor.abort state ~txid ops;
          Chaincode.Success "")
  | other -> Chaincode.Failure ("unknown function " ^ other)

let chaincode = Chaincode.define ~name:"kvstore" handler

let ops_of_update ~keys ~value = List.map (fun key -> Tx.Put { key; value }) keys

let counter_key k = "ctr_" ^ k

let ops_of_increment ~keys ~amount =
  List.map (fun key -> Tx.Merge { key = counter_key key; delta = Tx.Add amount }) keys

(* Counters commute; blind writes do not (last-write-wins depends on
   order), so only the counter namespace is declared mergeable. *)
let declare_mergeable reg =
  Merge.register reg ~name:"kvstore.counter" (fun op ->
      match op with
      | Tx.Credit { account; amount }
        when String.length account > 4 && String.equal (String.sub account 0 4) "ctr_" ->
          Some (account, Tx.Add amount)
      | Tx.Put _ | Tx.Get _ | Tx.Debit _ | Tx.Credit _ | Tx.Merge _ -> None)
