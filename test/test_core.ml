open Repro_util
open Repro_ledger
open Repro_core

(* ------------------------------------------------------------------ *)
(* Coordination registry                                               *)
(* ------------------------------------------------------------------ *)

let test_registry_roundtrip () =
  let r = Coordination.create_registry () in
  let op = Coordination.Begin_tx { txid = 7; participants = [ 0; 2 ] } in
  let tag = Coordination.register r op in
  Alcotest.(check bool) "lookup returns op" true (Coordination.lookup r tag = Some op);
  Alcotest.(check bool) "unknown tag" true (Coordination.lookup r 9999 = None)

let test_registry_grows () =
  let r = Coordination.create_registry () in
  let tags =
    List.init 3000 (fun i -> Coordination.register r (Coordination.Vote { txid = i; shard = 0; ok = true }))
  in
  Alcotest.(check int) "sequential tags" 2999 (List.nth tags 2999)

let test_registry_release () =
  let r = Coordination.create_registry () in
  let v7 = Coordination.Vote { txid = 7; shard = 0; ok = true } in
  let v8 = Coordination.Vote { txid = 8; shard = 1; ok = false } in
  let t7 = Coordination.register r v7 in
  let _ = Coordination.register r v8 in
  Alcotest.(check int) "two live entries" 2 (Coordination.length r);
  (* Re-registering a structurally identical op reuses its tag: a retried
     leg does not grow the registry. *)
  Alcotest.(check int) "idempotent register" t7 (Coordination.register r v7);
  Alcotest.(check int) "still two entries" 2 (Coordination.length r);
  Coordination.release r ~txid:7;
  Alcotest.(check int) "txid 7 compacted" 1 (Coordination.length r);
  Alcotest.(check bool) "released tag gone" true (Coordination.lookup r t7 = None);
  (* Release is keyed on txid, so a fresh registration gets a fresh tag. *)
  let t7' = Coordination.register r v7 in
  Alcotest.(check bool) "new tag after release" true (t7' <> t7);
  Alcotest.(check int) "txid extraction" 8 (Coordination.txid_of_op v8);
  Coordination.release r ~txid:9999 (* unknown txid is a no-op *)

let test_op_cost_positive () =
  let costs = Repro_crypto.Cost_model.default in
  let ops = [ Tx.Put { key = "k"; value = "v" } ] in
  Alcotest.(check bool) "prepare cost > single cost" true
    (Coordination.op_cost costs (Coordination.Prepare_tx { txid = 1; ops })
    > Coordination.op_cost costs (Coordination.Single { txid = 1; ops }) /. 2.0)

(* The slot content of a batch is a pure function of its steps: any
   submission interleaving must sort to the same canonical order. *)
let test_batch_order_permutation_determinism () =
  let steps =
    [
      Coordination.Vote { txid = 3; shard = 1; ok = true };
      Coordination.Begin_tx { txid = 4; participants = [ 0; 1 ] };
      Coordination.Vote { txid = 3; shard = 0; ok = false };
      Coordination.Begin_tx { txid = 2; participants = [ 1; 2 ] };
      Coordination.Vote { txid = 2; shard = 2; ok = true };
      Coordination.Vote { txid = 3; shard = 1; ok = false };
    ]
  in
  let canon = List.sort Coordination.batch_order steps in
  let permutations =
    [ List.rev steps; (match steps with a :: b :: rest -> b :: (rest @ [ a ]) | l -> l) ]
  in
  List.iter
    (fun p ->
      Alcotest.(check bool) "permutation sorts to the same slot" true
        (List.sort Coordination.batch_order p = canon))
    permutations;
  (* Begins sort before votes, txids ascend within each rank. *)
  (match canon with
  | Coordination.Begin_tx { txid = 2; _ } :: Coordination.Begin_tx { txid = 4; _ } :: _ -> ()
  | _ -> Alcotest.fail "begins must lead the slot in txid order");
  Alcotest.(check int) "batch txids are negative and distinct" (-3)
    (Coordination.batch_txid 2)

(* ------------------------------------------------------------------ *)
(* System fixtures                                                     *)
(* ------------------------------------------------------------------ *)

let make_system ?(shards = 2) ?(mode = System.With_reference) () =
  System.create { (System.default_config ~shards ~committee_size:3) with System.mode }

(* Find keys living in given shards. *)
let key_in sys shard =
  let shards = System.shards sys in
  let rec find i =
    let k = Printf.sprintf "acct%d" i in
    if Tx.shard_of_key ~shards k = shard then k else find (i + 1)
  in
  find 0

let fund sys key amount =
  let shard = Tx.shard_of_key ~shards:(System.shards sys) key in
  Executor.set_balance (System.shard_state sys shard) key amount

let transfer_tx ~txid sys ~from_ ~to_ ~amount =
  ignore sys;
  Tx.make ~txid [ Tx.Debit { account = from_; amount }; Tx.Credit { account = to_; amount } ]

let run_to_done sys = System.run sys ~until:20.0

(* ------------------------------------------------------------------ *)
(* Single-shard transactions                                           *)
(* ------------------------------------------------------------------ *)

let test_single_shard_commit () =
  let sys = make_system () in
  let a = key_in sys 0 and outcome = ref None in
  let b = (* second key in the same shard *)
    let rec find i =
      let k = Printf.sprintf "other%d" i in
      if Tx.shard_of_key ~shards:2 k = 0 then k else find (i + 1)
    in
    find 0
  in
  fund sys a 100;
  fund sys b 0;
  System.submit sys ~on_done:(fun o -> outcome := Some o)
    (transfer_tx ~txid:1 sys ~from_:a ~to_:b ~amount:40);
  run_to_done sys;
  Alcotest.(check bool) "committed" true (!outcome = Some System.Committed);
  Alcotest.(check int) "debited" 60 (Executor.balance (System.shard_state sys 0) a);
  Alcotest.(check int) "credited" 40 (Executor.balance (System.shard_state sys 0) b);
  Alcotest.(check int) "counted" 1 (System.committed sys)

let test_single_shard_abort_on_overdraft () =
  let sys = make_system () in
  let a = key_in sys 0 in
  fund sys a 10;
  let outcome = ref None in
  System.submit sys ~on_done:(fun o -> outcome := Some o)
    (transfer_tx ~txid:1 sys ~from_:a ~to_:(key_in sys 0 ^ "x") ~amount:999);
  run_to_done sys;
  Alcotest.(check bool) "aborted" true (!outcome = Some System.Aborted);
  Alcotest.(check int) "unchanged" 10 (Executor.balance (System.shard_state sys 0) a);
  Alcotest.(check int) "abort counted" 1 (System.aborted sys)

(* ------------------------------------------------------------------ *)
(* Cross-shard transactions (the paper's core protocol)                *)
(* ------------------------------------------------------------------ *)

let test_cross_shard_commit () =
  let sys = make_system () in
  let a = key_in sys 0 and b = key_in sys 1 in
  fund sys a 100;
  fund sys b 0;
  let outcome = ref None in
  System.submit sys ~on_done:(fun o -> outcome := Some o)
    (transfer_tx ~txid:1 sys ~from_:a ~to_:b ~amount:30);
  run_to_done sys;
  Alcotest.(check bool) "committed" true (!outcome = Some System.Committed);
  Alcotest.(check int) "shard 0 debited" 70 (Executor.balance (System.shard_state sys 0) a);
  Alcotest.(check int) "shard 1 credited" 30 (Executor.balance (System.shard_state sys 1) b);
  Alcotest.(check int) "no stuck locks" 0 (System.stuck_locks sys);
  (* The reference committee recorded the decision. *)
  match System.reference_machine sys with
  | Some r ->
      Alcotest.(check bool) "R says committed" true
        (Repro_shard.Reference.state_of r ~txid:1 = Some Repro_shard.Reference.Committed)
  | None -> Alcotest.fail "reference expected"

let test_cross_shard_atomic_abort () =
  (* The debit shard refuses (insufficient funds): the credit shard must
     not apply its leg — the RapidChain failure fixed. *)
  let sys = make_system () in
  let a = key_in sys 0 and b = key_in sys 1 in
  fund sys a 10;
  fund sys b 0;
  let outcome = ref None in
  System.submit sys ~on_done:(fun o -> outcome := Some o)
    (transfer_tx ~txid:1 sys ~from_:a ~to_:b ~amount:500);
  run_to_done sys;
  Alcotest.(check bool) "aborted" true (!outcome = Some System.Aborted);
  Alcotest.(check int) "no debit" 10 (Executor.balance (System.shard_state sys 0) a);
  Alcotest.(check int) "no credit" 0 (Executor.balance (System.shard_state sys 1) b);
  Alcotest.(check int) "locks all released" 0 (System.stuck_locks sys)

let test_cross_shard_money_conservation () =
  let sys = make_system ~shards:3 () in
  let keys = List.init 12 (fun i -> Printf.sprintf "acct%d" i) in
  List.iter (fun k -> fund sys k 100) keys;
  let rng = Rng.create 99L in
  let done_count = ref 0 in
  List.iteri
    (fun txid _ ->
      let from_ = List.nth keys (Rng.int rng 12) in
      let to_ = List.nth keys (Rng.int rng 12) in
      if from_ <> to_ then
        System.submit sys ~on_done:(fun _ -> incr done_count)
          (transfer_tx ~txid sys ~from_ ~to_ ~amount:(1 + Rng.int rng 30)))
    (List.init 30 Fun.id);
  System.run sys ~until:40.0;
  let total =
    List.fold_left
      (fun acc k ->
        acc + Executor.balance (System.shard_state sys (Tx.shard_of_key ~shards:3 k)) k)
      0 keys
  in
  Alcotest.(check int) "money conserved across shards" 1200 total;
  Alcotest.(check int) "no stuck locks" 0 (System.stuck_locks sys);
  Alcotest.(check bool) "transactions finished" true (!done_count > 20)

let test_client_driven_mode_commits () =
  let sys = make_system ~mode:System.Client_driven () in
  let a = key_in sys 0 and b = key_in sys 1 in
  fund sys a 100;
  let outcome = ref None in
  System.submit sys ~on_done:(fun o -> outcome := Some o)
    (transfer_tx ~txid:1 sys ~from_:a ~to_:b ~amount:30);
  run_to_done sys;
  Alcotest.(check bool) "committed" true (!outcome = Some System.Committed);
  Alcotest.(check int) "applied" 70 (Executor.balance (System.shard_state sys 0) a)

let test_malicious_client_with_reference_still_completes () =
  (* The paper's liveness claim: R's nodes take over when the coordinator
     goes silent, so the transaction terminates and locks are freed. *)
  let sys = make_system ~mode:System.With_reference () in
  let a = key_in sys 0 and b = key_in sys 1 in
  fund sys a 100;
  System.submit sys ~malicious_client:true (transfer_tx ~txid:1 sys ~from_:a ~to_:b ~amount:30);
  System.run sys ~until:60.0;
  Alcotest.(check int) "locks eventually released" 0 (System.stuck_locks sys);
  match System.reference_machine sys with
  | Some r ->
      Alcotest.(check bool) "R decided" true
        (match Repro_shard.Reference.state_of r ~txid:1 with
        | Some Repro_shard.Reference.Committed | Some Repro_shard.Reference.Aborted -> true
        | _ -> false)
  | None -> Alcotest.fail "reference expected"

let test_malicious_client_client_driven_blocks () =
  (* The OmniLedger failure mode: without R the locks dangle forever. *)
  let sys = make_system ~mode:System.Client_driven () in
  let a = key_in sys 0 and b = key_in sys 1 in
  fund sys a 100;
  System.submit sys ~malicious_client:true (transfer_tx ~txid:1 sys ~from_:a ~to_:b ~amount:30);
  System.run sys ~until:60.0;
  Alcotest.(check bool) "locks stuck forever" true (System.stuck_locks sys > 0);
  (* And the locked account is unusable for later transactions. *)
  let outcome = ref None in
  System.submit sys ~on_done:(fun o -> outcome := Some o)
    (transfer_tx ~txid:2 sys ~from_:a ~to_:b ~amount:10);
  System.run sys ~until:90.0;
  Alcotest.(check bool) "victim aborted" true (!outcome = Some System.Aborted)

let test_lock_conflict_aborts_one () =
  let sys = make_system () in
  let a = key_in sys 0 and b = key_in sys 1 in
  fund sys a 100;
  fund sys b 100;
  let outcomes = ref [] in
  (* Two conflicting transfers over the same accounts, submitted together. *)
  System.submit sys ~on_done:(fun o -> outcomes := o :: !outcomes)
    (transfer_tx ~txid:1 sys ~from_:a ~to_:b ~amount:10);
  System.submit sys ~on_done:(fun o -> outcomes := o :: !outcomes)
    (transfer_tx ~txid:2 sys ~from_:b ~to_:a ~amount:10);
  System.run sys ~until:30.0;
  Alcotest.(check int) "both finished" 2 (List.length !outcomes);
  Alcotest.(check int) "no stuck locks" 0 (System.stuck_locks sys);
  let total =
    Executor.balance (System.shard_state sys 0) a + Executor.balance (System.shard_state sys 1) b
  in
  Alcotest.(check int) "conserved under conflict" 200 total

let test_chains_validate () =
  let sys = make_system () in
  let a = key_in sys 0 and b = key_in sys 1 in
  fund sys a 100;
  System.submit sys (transfer_tx ~txid:1 sys ~from_:a ~to_:b ~amount:5);
  run_to_done sys;
  for s = 0 to 1 do
    Alcotest.(check bool)
      (Printf.sprintf "shard %d chain valid" s)
      true
      (Block.Chain.validate (System.shard_chain sys s));
    Alcotest.(check bool) "blocks were appended" true (Block.Chain.height (System.shard_chain sys s) >= 1)
  done

let test_wait_die_reduces_aborts () =
  (* Section 6.4 extension: under contention, parking older transactions
     converts aborts into commits. *)
  let run concurrency =
    let sys =
      System.create
        { (System.default_config ~shards:3 ~committee_size:3) with System.concurrency }
    in
    let keys = List.init 4 (fun i -> Printf.sprintf "hot%d" i) in
    List.iter (fun k -> fund sys k 10_000) keys;
    let rng = Rng.create 31L in
    for txid = 1 to 40 do
      let from_ = List.nth keys (Rng.int rng 4) in
      let to_ = List.nth keys (Rng.int rng 4) in
      if from_ <> to_ then
        System.submit sys (transfer_tx ~txid sys ~from_ ~to_ ~amount:1)
    done;
    System.run sys ~until:40.0;
    (System.committed sys, System.aborted sys, System.stuck_locks sys)
  in
  let c2pl, a2pl, s2pl = run System.Two_phase_locking in
  let cwd, awd, swd = run System.Wait_die in
  Alcotest.(check int) "2PL leaves no locks" 0 s2pl;
  Alcotest.(check int) "wait-die leaves no locks" 0 swd;
  Alcotest.(check bool) "wait-die commits at least as many" true (cwd >= c2pl);
  Alcotest.(check bool) "wait-die aborts no more" true (awd <= a2pl);
  Alcotest.(check int) "same workload size" (c2pl + a2pl) (cwd + awd)

let test_malicious_client_fallback_commits () =
  (* Sharper than "R decided": when every prepare succeeds, the fallback
     sweep must reach the COMMIT it owes — reading the shard observers'
     recorded votes, not guessing from lock state — and both legs must
     apply. *)
  let sys = make_system ~mode:System.With_reference () in
  let a = key_in sys 0 and b = key_in sys 1 in
  fund sys a 100;
  fund sys b 0;
  let outcome = ref None in
  System.submit sys ~malicious_client:true ~on_done:(fun o -> outcome := Some o)
    (transfer_tx ~txid:1 sys ~from_:a ~to_:b ~amount:30);
  System.run sys ~until:60.0;
  Alcotest.(check bool) "fallback commits" true (!outcome = Some System.Committed);
  Alcotest.(check int) "debit applied" 70 (Executor.balance (System.shard_state sys 0) a);
  Alcotest.(check int) "credit applied" 30 (Executor.balance (System.shard_state sys 1) b);
  Alcotest.(check int) "no stuck locks" 0 (System.stuck_locks sys);
  match System.reference_machine sys with
  | Some r ->
      Alcotest.(check bool) "R recorded COMMIT" true
        (Repro_shard.Reference.state_of r ~txid:1 = Some Repro_shard.Reference.Committed)
  | None -> Alcotest.fail "reference expected"

(* The batched commit path end to end: cross-shard transfers still commit,
   the carrier slots leave their footprint in the batch histograms, and the
   registry drains once the batches execute. *)
let test_batched_commit_probes_and_registry () =
  let sys =
    System.create
      {
        (System.default_config ~shards:2 ~committee_size:3) with
        System.batching = Some System.default_batching;
      }
  in
  let metrics = Repro_obs.Metrics.create () in
  System.set_probe sys (Repro_obs.Probe.make ~trace:(Repro_obs.Trace.create ()) ~metrics);
  (* Distinct account pairs so no transfer lock-conflicts with another. *)
  let pick shard n =
    let rec go i acc =
      if List.length acc = n then List.rev acc
      else
        let k = Printf.sprintf "user%d" i in
        go (i + 1) (if Tx.shard_of_key ~shards:2 k = shard then k :: acc else acc)
    in
    go 0 []
  in
  let sources = pick 0 6 and dests = pick 1 6 in
  List.iter (fun k -> fund sys k 100) sources;
  List.iter (fun k -> fund sys k 0) dests;
  let done_count = ref 0 in
  List.iteri
    (fun i (from_, to_) ->
      System.submit sys ~on_done:(fun _ -> incr done_count)
        (transfer_tx ~txid:(i + 1) sys ~from_ ~to_ ~amount:5))
    (List.combine sources dests);
  System.run sys ~until:40.0;
  Alcotest.(check int) "all transfers decided" 6 !done_count;
  Alcotest.(check int) "all committed" 6 (System.committed sys);
  Alcotest.(check int) "balances moved" 30
    (List.fold_left (fun acc k -> acc + Executor.balance (System.shard_state sys 1) k) 0 dests);
  let hist_count name =
    match Repro_obs.Metrics.histogram_stats metrics name with
    | Some s -> Repro_util.Stats.count s
    | None -> 0
  in
  Alcotest.(check bool) "batch-size histogram recorded" true (hist_count "2pc.batch.size" > 0);
  Alcotest.(check bool) "pipeline-depth histogram recorded" true
    (hist_count "2pc.batch.pipeline_depth" > 0);
  Alcotest.(check int) "registry drained at quiescence" 0 (System.registry_size sys)

let test_unbatched_legacy_path_commits () =
  let sys =
    System.create
      { (System.default_config ~shards:2 ~committee_size:3) with System.batching = None }
  in
  let a = key_in sys 0 and b = key_in sys 1 in
  fund sys a 100;
  fund sys b 0;
  let outcome = ref None in
  System.submit sys ~on_done:(fun o -> outcome := Some o)
    (transfer_tx ~txid:1 sys ~from_:a ~to_:b ~amount:30);
  run_to_done sys;
  Alcotest.(check bool) "committed" true (!outcome = Some System.Committed);
  Alcotest.(check int) "credited" 30 (Executor.balance (System.shard_state sys 1) b)

(* SharPer-style flattened coordination: no dedicated R, the coordinator
   shard's own committee orders the 2PC machine. *)
let test_flattened_cross_shard_commit () =
  let sys = make_system ~mode:System.Flattened () in
  let a = key_in sys 0 and b = key_in sys 1 in
  fund sys a 100;
  fund sys b 0;
  let outcome = ref None in
  System.submit sys ~on_done:(fun o -> outcome := Some o)
    (transfer_tx ~txid:1 sys ~from_:a ~to_:b ~amount:30);
  run_to_done sys;
  Alcotest.(check bool) "committed" true (!outcome = Some System.Committed);
  Alcotest.(check int) "debited" 70 (Executor.balance (System.shard_state sys 0) a);
  Alcotest.(check int) "credited" 30 (Executor.balance (System.shard_state sys 1) b);
  Alcotest.(check bool) "no dedicated reference committee" true
    (System.reference_machine sys = None);
  Alcotest.(check bool) "a shard-hosted machine recorded COMMIT" true
    (List.exists
       (fun r -> Repro_shard.Reference.state_of r ~txid:1 = Some Repro_shard.Reference.Committed)
       (System.coordination_machines sys))

let test_flattened_fallback_commits () =
  (* The silent-client defense must survive flattening: the coordinator
     shard's machine owes the same fallback sweep R would run. *)
  let sys = make_system ~mode:System.Flattened () in
  let a = key_in sys 0 and b = key_in sys 1 in
  fund sys a 100;
  fund sys b 0;
  let outcome = ref None in
  System.submit sys ~malicious_client:true ~on_done:(fun o -> outcome := Some o)
    (transfer_tx ~txid:1 sys ~from_:a ~to_:b ~amount:30);
  System.run sys ~until:60.0;
  Alcotest.(check bool) "fallback commits" true (!outcome = Some System.Committed);
  Alcotest.(check int) "credit applied" 30 (Executor.balance (System.shard_state sys 1) b);
  Alcotest.(check int) "no stuck locks" 0 (System.stuck_locks sys)

let test_wait_die_park_timeout_aborts () =
  (* An older transaction parks behind a lock that never frees (malicious
     client in client-driven mode); the 4s park timeout must convert the
     wait into a NotOK vote so the victim terminates instead of hanging. *)
  let sys =
    System.create
      {
        (System.default_config ~shards:2 ~committee_size:3) with
        System.mode = System.Client_driven;
        concurrency = System.Wait_die;
      }
  in
  let a = key_in sys 0 and b = key_in sys 1 in
  fund sys a 100;
  fund sys b 100;
  System.submit sys ~malicious_client:true (transfer_tx ~txid:5 sys ~from_:a ~to_:b ~amount:10);
  System.run sys ~until:15.0;
  Alcotest.(check bool) "attacker's locks held" true (System.stuck_locks sys > 0);
  (* The shard observer recorded the undecided prepare's outcome — the
     evidence the reference committee's sweep would read. *)
  Alcotest.(check bool) "prepare evidence recorded" true
    (System.prepare_evidence sys ~shard:0 ~txid:5 = Some true);
  let outcome = ref None in
  (* txid 1 < 5: wait-die parks it rather than killing it outright. *)
  System.submit sys ~on_done:(fun o -> outcome := Some o)
    (transfer_tx ~txid:1 sys ~from_:a ~to_:b ~amount:10);
  System.run sys ~until:40.0;
  Alcotest.(check bool) "parked victim aborts on timeout" true (!outcome = Some System.Aborted);
  Alcotest.(check int) "no balance change from the victim" 100
    (Executor.balance (System.shard_state sys 1) b)

let test_duplicate_decision_leg_idempotent () =
  (* An adversary re-delivering CommitTx must not double-apply: the
     observer's applied-set makes the decision leg idempotent. *)
  let sys = make_system ~mode:System.With_reference () in
  System.set_leg_filter sys
    (Some
       (fun ~dst:_ op ->
         match op with
         | Coordination.Commit_tx _ | Coordination.Abort_tx _ ->
             Repro_sim.Network.Duplicate { copies = 3; spacing = 0.5 }
         | _ -> Repro_sim.Network.Deliver));
  let a = key_in sys 0 and b = key_in sys 1 in
  fund sys a 100;
  fund sys b 0;
  let outcome = ref None in
  System.submit sys ~on_done:(fun o -> outcome := Some o)
    (transfer_tx ~txid:1 sys ~from_:a ~to_:b ~amount:30);
  System.run sys ~until:30.0;
  Alcotest.(check bool) "committed once" true (!outcome = Some System.Committed);
  Alcotest.(check int) "debit applied exactly once" 70
    (Executor.balance (System.shard_state sys 0) a);
  Alcotest.(check int) "credit applied exactly once" 30
    (Executor.balance (System.shard_state sys 1) b);
  Alcotest.(check int) "no stuck locks" 0 (System.stuck_locks sys)

let test_client_driven_aborts_on_first_not_ok () =
  (* Client-driven coordination decides ABORT on the first NotOK without
     waiting for the other shard, and must still release the OK shard's
     locks. *)
  let sys = make_system ~mode:System.Client_driven () in
  let a = key_in sys 0 and b = key_in sys 1 in
  fund sys a 5;
  fund sys b 50;
  let outcome = ref None in
  System.submit sys ~on_done:(fun o -> outcome := Some o)
    (transfer_tx ~txid:1 sys ~from_:a ~to_:b ~amount:500);
  run_to_done sys;
  Alcotest.(check bool) "aborted" true (!outcome = Some System.Aborted);
  Alcotest.(check int) "debit shard untouched" 5 (Executor.balance (System.shard_state sys 0) a);
  Alcotest.(check int) "credit shard untouched" 50 (Executor.balance (System.shard_state sys 1) b);
  Alcotest.(check int) "OK shard's locks released" 0 (System.stuck_locks sys)

let test_registry_bounded_under_retries () =
  (* Regression for the retry leak: honest-client retries and the fallback
     sweep re-register the same ops; at quiescence every finished
     transaction's entries must have been compacted away. *)
  let sys = make_system ~mode:System.With_reference () in
  let a = key_in sys 0 and b = key_in sys 1 in
  fund sys a 1000;
  fund sys b 1000;
  for txid = 1 to 6 do
    let malicious_client = txid mod 2 = 0 in
    System.submit sys ~malicious_client
      (transfer_tx ~txid sys ~from_:a ~to_:b ~amount:1)
  done;
  System.run sys ~until:120.0;
  Alcotest.(check int) "all decided, no stuck locks" 0 (System.stuck_locks sys);
  Alcotest.(check int) "registry fully compacted" 0 (System.registry_size sys)

(* ------------------------------------------------------------------ *)
(* Commutative fast lane (DESIGN §18)                                  *)
(* ------------------------------------------------------------------ *)

let make_lane_system ?(shards = 2) () =
  System.create { (System.default_config ~shards ~committee_size:3) with System.fast_lane = true }

(* A counter key (disjoint from account keys) living in the given shard. *)
let ctr_key_in sys shard =
  let shards = System.shards sys in
  let rec find i =
    let k = Kvstore_cc.counter_key (Printf.sprintf "c%d" i) in
    if Tx.shard_of_key ~shards k = shard then k else find (i + 1)
  in
  find 0

let merge_tx ~txid deltas =
  Tx.make ~txid (List.map (fun (key, delta) -> Tx.Merge { key; delta }) deltas)

let test_fastlane_mergeable_commits_via_lane () =
  let sys = make_lane_system () in
  let metrics = Repro_obs.Metrics.create () in
  System.set_probe sys (Repro_obs.Probe.make ~trace:(Repro_obs.Trace.create ()) ~metrics);
  let k0 = ctr_key_in sys 0 and k1 = ctr_key_in sys 1 in
  let outcome = ref None in
  System.submit sys ~on_done:(fun o -> outcome := Some o)
    (merge_tx ~txid:1 [ (k0, Tx.Add 7); (k1, Tx.Add 5) ]);
  run_to_done sys;
  Alcotest.(check bool) "committed" true (!outcome = Some System.Committed);
  Alcotest.(check int) "shard 0 counter folded" 7 (Executor.balance (System.shard_state sys 0) k0);
  Alcotest.(check int) "shard 1 counter folded" 5 (Executor.balance (System.shard_state sys 1) k1);
  Alcotest.(check int) "one delta per shard" 1 (System.merge_lane_log sys ~shard:0);
  Alcotest.(check int) "one delta per shard'" 1 (System.merge_lane_log sys ~shard:1);
  Alcotest.(check int) "lane hit counted" 1 (Repro_obs.Metrics.counter metrics "merge.lane_hits");
  Alcotest.(check int) "no downgrade" 0 (Repro_obs.Metrics.counter metrics "merge.downgrades");
  Alcotest.(check bool) "lane state converged" true (System.merge_audit sys = []);
  Alcotest.(check int) "one root per shard" 2 (List.length (System.merge_roots sys));
  Alcotest.(check int) "no locks were ever taken" 0 (System.stuck_locks sys)

let test_fastlane_downgrade_on_lock_conflict () =
  (* A mergeable transaction whose key is under an in-flight exclusive
     lock must NOT ride the lane — deltas folded around the lock window
     would interleave with the 2PC transaction's validated read. *)
  let sys = make_lane_system () in
  let metrics = Repro_obs.Metrics.create () in
  System.set_probe sys (Repro_obs.Probe.make ~trace:(Repro_obs.Trace.create ()) ~metrics);
  let k0 = ctr_key_in sys 0 and k1 = ctr_key_in sys 1 in
  (* Simulate an in-flight 2PC holding k0's lock at submit time. *)
  let locks = Locks.create (System.shard_state sys 0) in
  Alcotest.(check bool) "foreign lock acquired" true (Locks.acquire locks ~txid:99 k0);
  System.submit sys (merge_tx ~txid:1 [ (k0, Tx.Add 3); (k1, Tx.Add 4) ]);
  System.run sys ~until:60.0;
  Alcotest.(check int) "downgrade counted" 1 (Repro_obs.Metrics.counter metrics "merge.downgrades");
  Alcotest.(check int) "no lane hit" 0 (Repro_obs.Metrics.counter metrics "merge.lane_hits");
  Alcotest.(check int) "lane log empty (shard 0)" 0 (System.merge_lane_log sys ~shard:0);
  Alcotest.(check int) "lane log empty (shard 1)" 0 (System.merge_lane_log sys ~shard:1);
  Alcotest.(check bool) "audit trivially clean" true (System.merge_audit sys = [])

let test_fastlane_dropped_delta_leg_retried () =
  (* An adversary dropping a delta leg must only delay it: the retry sweep
     re-drives the leg and the lane still converges to the canonical fold. *)
  let sys = make_lane_system () in
  let dropped = ref 0 in
  System.set_leg_filter sys
    (Some
       (fun ~dst op ->
         match op with
         | Coordination.Merge_tx _ when dst = 1 && !dropped = 0 ->
             incr dropped;
             Repro_sim.Network.Drop
         | _ -> Repro_sim.Network.Deliver));
  let k0 = ctr_key_in sys 0 and k1 = ctr_key_in sys 1 in
  let outcome = ref None in
  System.submit sys ~on_done:(fun o -> outcome := Some o)
    (merge_tx ~txid:1 [ (k0, Tx.Add 2); (k1, Tx.Add 9) ]);
  System.run sys ~until:60.0;
  Alcotest.(check int) "the filter dropped one leg" 1 !dropped;
  Alcotest.(check bool) "still committed" true (!outcome = Some System.Committed);
  Alcotest.(check int) "dropped leg re-driven" 9 (Executor.balance (System.shard_state sys 1) k1);
  Alcotest.(check int) "leg appended exactly once" 1 (System.merge_lane_log sys ~shard:1);
  Alcotest.(check bool) "lane state converged" true (System.merge_audit sys = [])

let test_fastlane_duplicate_delta_leg_idempotent () =
  (* Re-delivered delta legs must not double-count: the applied-table makes
     the Merge_tx leg idempotent, exactly like decision legs. *)
  let sys = make_lane_system () in
  System.set_leg_filter sys
    (Some
       (fun ~dst:_ op ->
         match op with
         | Coordination.Merge_tx _ -> Repro_sim.Network.Duplicate { copies = 3; spacing = 0.5 }
         | _ -> Repro_sim.Network.Deliver));
  (* Counter base names whose ctr_ keys land in shards 0 and 1. *)
  let ctr_base_in shard =
    let shards = System.shards sys in
    let rec find i =
      let c = Printf.sprintf "c%d" i in
      if Tx.shard_of_key ~shards (Kvstore_cc.counter_key c) = shard then c else find (i + 1)
    in
    find 0
  in
  let c0 = ctr_base_in 0 and c1 = ctr_base_in 1 in
  let k0 = Kvstore_cc.counter_key c0 and k1 = Kvstore_cc.counter_key c1 in
  let outcome = ref None in
  System.submit sys ~on_done:(fun o -> outcome := Some o)
    (Tx.make ~txid:1 (Kvstore_cc.ops_of_increment ~keys:[ c0; c1 ] ~amount:11));
  System.run sys ~until:30.0;
  Alcotest.(check bool) "committed once" true (!outcome = Some System.Committed);
  Alcotest.(check int) "delta applied exactly once (shard 0)" 11
    (Executor.balance (System.shard_state sys 0) k0);
  Alcotest.(check int) "delta applied exactly once (shard 1)" 11
    (Executor.balance (System.shard_state sys 1) k1);
  Alcotest.(check int) "lane log deduplicated" 1 (System.merge_lane_log sys ~shard:0);
  Alcotest.(check int) "lane log deduplicated'" 1 (System.merge_lane_log sys ~shard:1);
  Alcotest.(check bool) "lane state converged" true (System.merge_audit sys = [])

let test_fastlane_mixed_tx_keeps_locked_path () =
  (* A transaction with any non-commutative op (a conditional debit) must
     take the 2PC path even with the lane enabled. *)
  let sys = make_lane_system () in
  let a = key_in sys 0 and b = key_in sys 1 in
  fund sys a 100;
  fund sys b 0;
  let outcome = ref None in
  System.submit sys ~on_done:(fun o -> outcome := Some o)
    (transfer_tx ~txid:1 sys ~from_:a ~to_:b ~amount:30);
  run_to_done sys;
  Alcotest.(check bool) "committed via 2PC" true (!outcome = Some System.Committed);
  Alcotest.(check int) "debited" 70 (Executor.balance (System.shard_state sys 0) a);
  Alcotest.(check int) "credited" 30 (Executor.balance (System.shard_state sys 1) b);
  Alcotest.(check int) "nothing rode the lane" 0
    (System.merge_lane_log sys ~shard:0 + System.merge_lane_log sys ~shard:1)

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let test_workload_smallbank_setup_and_gen () =
  let sys = make_system ~shards:4 () in
  let wl = Workload.create Workload.Smallbank ~keyspace:100 ~theta:0.5 ~rng:(Rng.create 2L) in
  Workload.setup wl sys ~initial_balance:500;
  (* Balances landed in the right shards. *)
  let key = Smallbank_cc.checking_key "acc0" in
  let shard = Tx.shard_of_key ~shards:4 key in
  Alcotest.(check int) "funded" 500 (Executor.balance (System.shard_state sys shard) key);
  let tx = Workload.next_tx wl sys ~client:0 in
  Alcotest.(check int) "sendPayment has 2 ops" 2 (List.length tx.Tx.ops)

let test_workload_cross_fraction_matches_eq3 () =
  let sys = make_system ~shards:4 () in
  let wl =
    Workload.create (Workload.Kvstore { updates_per_tx = 3 }) ~keyspace:50_000 ~theta:0.0
      ~rng:(Rng.create 2L)
  in
  for _ = 1 to 3000 do
    ignore (Workload.next_tx wl sys ~client:0)
  done;
  let expected = Repro_shard.Sizing.expected_cross_shard_fraction ~shards:4 ~args:3 in
  let seen = Workload.cross_shard_fraction_seen wl in
  Alcotest.(check (float 0.05)) "appendix B prediction" expected seen

let test_workload_txids_unique () =
  let sys = make_system () in
  let wl = Workload.create Workload.Smallbank ~keyspace:100 ~theta:0.0 ~rng:(Rng.create 2L) in
  let a = Workload.next_tx wl sys ~client:0 in
  let b = Workload.next_tx wl sys ~client:1 in
  Alcotest.(check bool) "distinct txids" true (a.Tx.txid <> b.Tx.txid)

(* ------------------------------------------------------------------ *)
(* End-to-end with workload driver                                     *)
(* ------------------------------------------------------------------ *)

let test_end_to_end_smallbank_run () =
  let sys = make_system ~shards:2 () in
  let wl = Workload.create Workload.Smallbank ~keyspace:500 ~theta:0.3 ~rng:(Rng.create 4L) in
  Workload.setup wl sys ~initial_balance:1000;
  Workload.start_closed_loop wl sys ~clients:4 ~outstanding:8;
  System.run sys ~until:20.0;
  Alcotest.(check bool) "hundreds of commits" true (System.committed sys > 200);
  Alcotest.(check bool) "throughput positive" true (System.throughput sys ~warmup:5.0 > 0.0);
  Alcotest.(check bool) "latency sane" true (Stats.mean (System.latency_stats sys) < 5.0)

let test_reshard_batched_beats_swap_all () =
  let run strategy =
    let sys = make_system ~shards:2 () in
    let wl = Workload.create Workload.Smallbank ~keyspace:500 ~theta:0.2 ~rng:(Rng.create 4L) in
    Workload.setup wl sys ~initial_balance:1000;
    Workload.start_closed_loop wl sys ~clients:4 ~outstanding:8;
    (match strategy with
    | None -> ()
    | Some s -> System.schedule_reshard sys ~at:10.0 ~strategy:s ~fetch_time:6.0);
    System.run sys ~until:30.0;
    System.throughput sys ~warmup:5.0
  in
  let baseline = run None in
  let swap_all = run (Some `Swap_all) in
  let batched = run (Some (`Batched 1)) in
  Alcotest.(check bool) "swap-all hurts" true (swap_all < 0.9 *. baseline);
  Alcotest.(check bool) "batched close to baseline" true (batched > 0.8 *. baseline);
  Alcotest.(check bool) "batched beats swap-all" true (batched > swap_all)

let () =
  Alcotest.run "core"
    [
      ( "coordination",
        [
          Alcotest.test_case "registry roundtrip" `Quick test_registry_roundtrip;
          Alcotest.test_case "registry grows" `Quick test_registry_grows;
          Alcotest.test_case "registry release" `Quick test_registry_release;
          Alcotest.test_case "op cost" `Quick test_op_cost_positive;
          Alcotest.test_case "batch order deterministic" `Quick
            test_batch_order_permutation_determinism;
        ] );
      ( "system",
        [
          Alcotest.test_case "single-shard commit" `Quick test_single_shard_commit;
          Alcotest.test_case "single-shard abort" `Quick test_single_shard_abort_on_overdraft;
          Alcotest.test_case "cross-shard commit" `Quick test_cross_shard_commit;
          Alcotest.test_case "cross-shard atomic abort" `Quick test_cross_shard_atomic_abort;
          Alcotest.test_case "money conservation" `Quick test_cross_shard_money_conservation;
          Alcotest.test_case "client-driven commits" `Quick test_client_driven_mode_commits;
          Alcotest.test_case "malicious client + R completes" `Quick
            test_malicious_client_with_reference_still_completes;
          Alcotest.test_case "malicious client w/o R blocks" `Quick
            test_malicious_client_client_driven_blocks;
          Alcotest.test_case "lock conflict" `Quick test_lock_conflict_aborts_one;
          Alcotest.test_case "wait-die reduces aborts" `Quick test_wait_die_reduces_aborts;
          Alcotest.test_case "batched commit + probes + registry" `Quick
            test_batched_commit_probes_and_registry;
          Alcotest.test_case "legacy unbatched path commits" `Quick
            test_unbatched_legacy_path_commits;
          Alcotest.test_case "flattened cross-shard commit" `Quick
            test_flattened_cross_shard_commit;
          Alcotest.test_case "flattened fallback commits" `Quick test_flattened_fallback_commits;
          Alcotest.test_case "malicious client fallback commits" `Quick
            test_malicious_client_fallback_commits;
          Alcotest.test_case "wait-die park timeout aborts" `Quick
            test_wait_die_park_timeout_aborts;
          Alcotest.test_case "duplicate decision leg idempotent" `Quick
            test_duplicate_decision_leg_idempotent;
          Alcotest.test_case "client-driven early abort" `Quick
            test_client_driven_aborts_on_first_not_ok;
          Alcotest.test_case "registry bounded under retries" `Quick
            test_registry_bounded_under_retries;
          Alcotest.test_case "chains validate" `Quick test_chains_validate;
        ] );
      ( "fast lane",
        [
          Alcotest.test_case "mergeable tx rides the lane" `Quick
            test_fastlane_mergeable_commits_via_lane;
          Alcotest.test_case "downgrade on lock conflict" `Quick
            test_fastlane_downgrade_on_lock_conflict;
          Alcotest.test_case "dropped delta leg re-driven" `Quick
            test_fastlane_dropped_delta_leg_retried;
          Alcotest.test_case "duplicate delta leg idempotent" `Quick
            test_fastlane_duplicate_delta_leg_idempotent;
          Alcotest.test_case "mixed tx keeps 2PC" `Quick test_fastlane_mixed_tx_keeps_locked_path;
        ] );
      ( "workload",
        [
          Alcotest.test_case "smallbank setup/gen" `Quick test_workload_smallbank_setup_and_gen;
          Alcotest.test_case "cross fraction = eq 3" `Quick test_workload_cross_fraction_matches_eq3;
          Alcotest.test_case "txids unique" `Quick test_workload_txids_unique;
        ] );
      ( "results",
        [
          Alcotest.test_case "csv export" `Quick (fun () ->
              let fig =
                Results.figure ~id:"figX" ~caption:"c"
                  [
                    Results.panel ~title:"Panel A" ~x_label:"N" ~columns:[ "s1"; "s2" ]
                      ~rows:[ (1.0, [ 2.0; 3.0 ]); (2.0, [ 4.0; 5.0 ]) ];
                  ]
              in
              match Results.to_csv fig with
              | [ (name, body) ] ->
                  Alcotest.(check string) "filename" "figX-panel-a.csv" name;
                  Alcotest.(check string) "contents" "N,s1,s2\n1,2,3\n2,4,5\n" body
              | _ -> Alcotest.fail "expected one csv");
          Alcotest.test_case "json export" `Quick (fun () ->
              let fig =
                Results.figure ~id:"figX" ~caption:"a \"quoted\" caption"
                  [
                    Results.panel ~title:"Panel A" ~x_label:"N" ~columns:[ "s1" ]
                      ~rows:[ (1.0, [ 2.5 ]); (2.0, [ Float.nan ]) ];
                  ]
              in
              let json = Results.to_json ~wall_time_s:1.25 ~jobs:4 fig in
              Alcotest.(check string) "object with metadata and escaped caption"
                ("{\"id\":\"figX\",\"caption\":\"a \\\"quoted\\\" caption\","
                ^ "\"wall_time_s\":1.250,\"jobs\":4,\"panels\":["
                ^ "{\"title\":\"Panel A\",\"x_label\":\"N\",\"columns\":[\"s1\"],"
                ^ "\"rows\":[{\"x\":1,\"values\":[2.5]},{\"x\":2,\"values\":[null]}]}]}\n")
                json;
              let text = Results.text_figure ~id:"t1" ~caption:"c" "line1\nline2" in
              Alcotest.(check string) "text panel escapes newlines"
                "{\"id\":\"t1\",\"caption\":\"c\",\"panels\":[{\"text\":\"line1\\nline2\"}]}\n"
                (Results.to_json text));
        ] );
      ( "formation",
        [
          Alcotest.test_case "beacon seeds assignment" `Quick (fun () ->
              (* Section 5 end to end: agree on rnd over the network, derive
                 committees from it, and check the committee sizes satisfy
                 Eq. 1 at the paper's security level. *)
              let topology = Repro_sim.Topology.gcp 4 in
              let n = 48 in
              let o =
                Repro_shard.Randomness.run ~n ~topology
                  ~delta:(Repro_shard.Randomness.measured_delta ~topology ~n)
                  ~l_bits:(Repro_shard.Randomness.paper_l_bits ~n) ()
              in
              let committees = 4 in
              let a =
                Repro_shard.Assignment.derive ~seed:o.Repro_shard.Randomness.rnd ~epoch:1
                  ~nodes:n ~committees
              in
              Alcotest.(check int) "4 committees" committees
                (Array.length a.Repro_shard.Assignment.committees);
              let sizes =
                Array.to_list (Array.map Array.length a.Repro_shard.Assignment.committees)
              in
              List.iter (fun s -> Alcotest.(check int) "balanced" 12 s) sizes);
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "smallbank run" `Slow test_end_to_end_smallbank_run;
          Alcotest.test_case "tampered snapshot rejected" `Slow (fun () ->
              (* Section 5.3's verify-before-serve rule: a member whose
                 missed slots were pruned from every peer's replay ring
                 must pull a snapshot — and when a Byzantine server doctors
                 it, Merkle re-verification rejects the package and the
                 retry fetches a clean one.  Crash a follower early, let the
                 committee execute past the replay-ring depth, corrupt the
                 next snapshot, and watch both counters move. *)
              let sys = make_system ~shards:2 () in
              let trace = Repro_obs.Trace.create () in
              let ometrics = Repro_obs.Metrics.create () in
              System.set_probe sys (Repro_obs.Probe.make ~trace ~metrics:ometrics);
              let wl =
                Workload.create Workload.Smallbank ~keyspace:500 ~theta:0.2 ~rng:(Rng.create 9L)
              in
              Workload.setup wl sys ~initial_balance:1000;
              Workload.start_closed_loop wl sys ~clients:8 ~outstanding:8;
              System.crash_member sys ~committee:0 ~member:1;
              System.run sys ~until:25.0;
              System.corrupt_next_snapshot sys ~shard:0;
              (* A literal swap: the slot's previous occupant departs with
                 its consensus state; the newcomer holds nothing and must
                 transfer a snapshot. *)
              System.reset_member sys ~committee:0 ~member:1;
              System.recover_member sys ~committee:0 ~member:1;
              System.run sys ~until:40.0;
              let counter name =
                Option.value ~default:0
                  (List.assoc_opt name (Repro_obs.Metrics.counters ometrics))
              in
              Alcotest.(check bool) "doctored package rejected" true
                (counter "ckpt.fetch.snapshot_rejected" >= 1);
              Alcotest.(check bool) "clean retry installed" true
                (counter "ckpt.fetch.snapshots" >= 1);
              (* The rejoined member ends holding a certificate — it is a
                 full committee citizen again, not a permanent straggler. *)
              Alcotest.(check bool) "member 1 rejoined" true
                (List.exists
                   (fun (c, m, seq, _) -> c = 0 && m = 1 && seq >= 16)
                   (System.committee_checkpoints sys)));
          Alcotest.test_case "hundred-epoch churn soak" `Slow (fun () ->
              (* Hundreds of committee reconfigurations under continuous
                 load: every epoch literally swaps members out through
                 reset + snapshot/replay rejoin.  Across all of it the
                 committees must never certify divergent roots, observers
                 must converge, and the system must keep committing. *)
              let sys = make_system ~shards:2 () in
              let wl =
                Workload.create Workload.Smallbank ~keyspace:500 ~theta:0.2 ~rng:(Rng.create 17L)
              in
              Workload.setup wl sys ~initial_balance:1000;
              Workload.start_closed_loop wl sys ~clients:4 ~outstanding:8;
              for e = 1 to 100 do
                System.advance_epoch sys
                  ~at:(2.0 +. (0.5 *. float_of_int e))
                  ~seed:(Int64.of_int (1000 + e))
                  ~epoch:e ~strategy:`Batched_log
              done;
              System.run sys ~until:62.0;
              let by_slot = Hashtbl.create 64 in
              List.iter
                (fun (c, _m, seq, root) ->
                  let key = (c, seq) in
                  let roots = Option.value (Hashtbl.find_opt by_slot key) ~default:[] in
                  if not (List.mem root roots) then Hashtbl.replace by_slot key (root :: roots))
                (System.committee_checkpoints sys);
              Hashtbl.iter
                (fun (c, seq) roots ->
                  Alcotest.(check int)
                    (Printf.sprintf "committee %d certs for seq %d agree" c seq)
                    1 (List.length roots))
                by_slot;
              List.iter
                (fun (c, lag) ->
                  Alcotest.(check bool)
                    (Printf.sprintf "committee %d observer converged (lag %d)" c lag)
                    true (lag <= 16))
                (System.observer_lag sys);
              Alcotest.(check bool) "still committing through the churn" true
                (System.committed sys > 200);
              (* Regression tripwire for the swap-collapse pathology: before
                 the view-hint + no-op-fill fixes a single swap burned
                 hundreds of view changes and never recovered. *)
              Alcotest.(check bool) "view changes stay bounded" true
                (System.view_changes sys < 2000));
          Alcotest.test_case "reshard strategies" `Slow test_reshard_batched_beats_swap_all;
          Alcotest.test_case "advance_epoch pipeline" `Slow (fun () ->
              (* The full Section 5 pipeline keeps the system live when the
                 transition is batched. *)
              let sys = make_system ~shards:2 () in
              let wl =
                Workload.create Workload.Smallbank ~keyspace:500 ~theta:0.2 ~rng:(Rng.create 4L)
              in
              Workload.setup wl sys ~initial_balance:1000;
              Workload.start_closed_loop wl sys ~clients:4 ~outstanding:8;
              System.advance_epoch sys ~at:8.0 ~seed:99L ~epoch:2 ~strategy:`Batched_log;
              System.run sys ~until:25.0;
              Alcotest.(check bool) "throughput survives the epoch change" true
                (System.throughput sys ~warmup:4.0 > 100.0);
              (* The driver is still running, so some locks are legitimately
                 held by in-flight transactions; the conservation checks of
                 the other tests cover lock hygiene. *)
              Alcotest.(check bool) "hundreds of commits" true (System.committed sys > 500));
        ] );
    ]
