(* Minimal JSON recognizer shared by the obs-sink and lint-emitter tests:
   objects/arrays/strings with escapes, numbers, true/false/null.  Enough
   to reject any unbalanced or unquoted output without pulling in a JSON
   dependency. *)
let ok s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with Some (' ' | '\n' | '\t' | '\r') -> advance (); skip_ws () | _ -> ()
  in
  let expect c = if peek () = Some c then advance () else raise Exit in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string ()
    | Some ('t' | 'f' | 'n') -> literal ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> raise Exit
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); members ()
        | Some '}' -> advance ()
        | _ -> raise Exit
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elements () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); elements ()
        | Some ']' -> advance ()
        | _ -> raise Exit
      in
      elements ()
  and string () =
    expect '"';
    let rec chars () =
      match peek () with
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with Some _ -> advance () | None -> raise Exit);
          chars ()
      | Some _ -> advance (); chars ()
      | None -> raise Exit
    in
    chars ()
  and literal () =
    List.iter
      (fun w ->
        if !pos + String.length w <= n && String.equal (String.sub s !pos (String.length w)) w
        then pos := !pos + String.length w)
      [ "true"; "false"; "null" ];
    ()
  and number () =
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    if not (match peek () with Some c -> num_char c | None -> false) then raise Exit;
    let rec go () = match peek () with Some c when num_char c -> advance (); go () | _ -> () in
    go ()
  in
  match
    value ();
    skip_ws ()
  with
  | () -> !pos = n || String.trim (String.sub s !pos (n - !pos)) = ""
  | exception Exit -> false
