(* Unit tests for the observability layer: metrics bucketing and merge,
   probe capability semantics, hub registration, and well-formedness of
   the Chrome trace-event JSON the sinks emit. *)

open Repro_obs

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1)) in
  nn = 0 || go 0

(* --- Metrics: histogram bucket edges -------------------------------- *)

let test_bucket_index_edges () =
  let i = Alcotest.(check int) in
  (* Representable powers of the base land exactly on their bucket's
     lower edge. *)
  i "1.0 in bucket 0" 0 (Metrics.bucket_index ~base:2.0 1.0);
  i "2.0 opens bucket 1" 1 (Metrics.bucket_index ~base:2.0 2.0);
  i "just under 2.0 stays in 0" 0 (Metrics.bucket_index ~base:2.0 1.9999999999);
  i "4.0 opens bucket 2" 2 (Metrics.bucket_index ~base:2.0 4.0);
  i "1024 opens bucket 10" 10 (Metrics.bucket_index ~base:2.0 1024.0);
  i "0.5 in bucket -1" (-1) (Metrics.bucket_index ~base:2.0 0.5);
  i "0.25 in bucket -2" (-2) (Metrics.bucket_index ~base:2.0 0.25);
  i "base 10: 1.0" 0 (Metrics.bucket_index ~base:10.0 1.0);
  i "base 10: 10.0" 1 (Metrics.bucket_index ~base:10.0 10.0);
  i "base 10: 99.9" 1 (Metrics.bucket_index ~base:10.0 99.9);
  i "base 10: 0.01" (-2) (Metrics.bucket_index ~base:10.0 0.01)

let test_histogram_observe_and_buckets () =
  let m = Metrics.create () in
  Metrics.observe m "lat" 1.0;
  Metrics.observe m "lat" 1.5;
  Metrics.observe m "lat" 2.0;
  Metrics.observe m "lat" 0.0;
  (* nonpositive: counted, not bucketed *)
  Alcotest.(check (list (pair int int)))
    "two samples in bucket 0, one in bucket 1"
    [ (0, 2); (1, 1) ]
    (Metrics.buckets m "lat");
  match Metrics.histogram_stats m "lat" with
  | None -> Alcotest.fail "histogram stats missing"
  | Some s ->
      Alcotest.(check int) "stats count all four samples" 4 (Repro_util.Stats.count s);
      Alcotest.(check (list string)) "histogram listed" [ "lat" ] (Metrics.histogram_names m)

(* --- Metrics: merge -------------------------------------------------- *)

let test_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a "c";
  Metrics.add a "c" 2;
  Metrics.incr b "c";
  Metrics.incr b "only-b";
  Metrics.set_gauge a "g" 1.0;
  Metrics.set_gauge b "g" 9.0;
  Metrics.observe a "h" 1.0;
  Metrics.observe b "h" 4.0;
  Metrics.merge ~into:a b;
  Alcotest.(check int) "counters sum" 4 (Metrics.counter a "c");
  Alcotest.(check int) "src-only counter copied" 1 (Metrics.counter a "only-b");
  Alcotest.(check int) "untouched counter reads 0" 0 (Metrics.counter a "nope");
  (match Metrics.gauge a "g" with
  | Some v -> Alcotest.(check (float 0.0)) "gauge: last write wins" 9.0 v
  | None -> Alcotest.fail "gauge missing after merge");
  Alcotest.(check (list (pair int int)))
    "histograms merge bucket-exactly"
    [ (0, 1); (2, 1) ]
    (Metrics.buckets a "h")

(* --- Probe: capability semantics ------------------------------------- *)

let test_probe_disabled_and_enabled () =
  Alcotest.(check bool) "none is disabled" false (Probe.enabled Probe.none);
  Alcotest.(check bool) "none has no trace" true (Option.is_none (Probe.trace_of Probe.none));
  Alcotest.(check bool) "none has no metrics" true (Option.is_none (Probe.metrics_of Probe.none));
  (* Disabled emitters are no-ops. *)
  Probe.incr Probe.none "c";
  Probe.instant Probe.none ~time:0.0 ~cat:"t" ~node:"n" "e";
  let trace = Trace.create () and metrics = Metrics.create () in
  let p = Probe.make ~trace ~metrics in
  Alcotest.(check bool) "made probe is enabled" true (Probe.enabled p);
  Probe.incr p "c";
  Probe.add p "c" 4;
  Probe.observe p "h" 0.5;
  Probe.set_gauge p "g" 2.0;
  Probe.instant p ~time:1.0 ~cat:"t" ~node:"n" "e";
  Probe.span p ~time:1.0 ~dur:0.5 ~cat:"t" ~node:"n" "s";
  Probe.counter_sample p ~time:2.0 ~node:"n" "depth" 3.0;
  (match Probe.trace_of p with
  | Some t -> Alcotest.(check int) "three trace events" 3 (Trace.length t)
  | None -> Alcotest.fail "enabled probe lost its trace");
  match Probe.metrics_of p with
  | Some m -> Alcotest.(check int) "counter went through" 5 (Metrics.counter m "c")
  | None -> Alcotest.fail "enabled probe lost its metrics"

(* --- Hub: idempotent registration, sorted dumps ---------------------- *)

let test_hub () =
  let hub = Hub.create () in
  let p1 = Hub.probe hub "b-run" in
  let p2 = Hub.probe hub "b-run" in
  let pa = Hub.probe hub "a-run" in
  Probe.incr p1 "c";
  Probe.incr p2 "c";
  Probe.incr pa "c";
  Alcotest.(check (list string)) "names sorted" [ "a-run"; "b-run" ] (Hub.names hub);
  (match Hub.find_metrics hub "b-run" with
  | Some m -> Alcotest.(check int) "same name, same registry" 2 (Metrics.counter m "c")
  | None -> Alcotest.fail "registered name not found");
  Alcotest.(check bool) "unknown name absent" true (Option.is_none (Hub.find_metrics hub "zzz"));
  Alcotest.(check int) "merged counters sum across runs" 3
    (Metrics.counter (Hub.merged_metrics hub) "c");
  Alcotest.(check int) "traces keyed like names" 2 (List.length (Hub.traces hub))

(* --- Sinks: Chrome JSON well-formedness ------------------------------ *)

(* The JSON recognizer lives in Mini_json, shared with the lint-emitter
   tests. *)
let json_ok = Mini_json.ok

let sample_traces () =
  let t = Trace.create () in
  Trace.instant t ~time:0.25 ~cat:"pbft" ~node:"r0"
    ~args:[ ("view", Event.I 1); ("why", Event.S "time\"out"); ("lat", Event.F 0.5) ]
    "view_change";
  Trace.span t ~time:1.0 ~dur:0.5 ~cat:"2pc" ~node:"coord" "prepare";
  Trace.counter t ~time:2.0 ~node:"r1" "inbox_depth" 3.0;
  [ ("run-a", t); ("run-b", Trace.create ()) ]

let test_chrome_json_well_formed () =
  let named = sample_traces () in
  let js = Sink.chrome_json named in
  Alcotest.(check bool) "chrome trace parses as JSON" true (json_ok js);
  Alcotest.(check bool) "has a span" true (contains js "\"ph\":\"X\"");
  Alcotest.(check bool) "has an instant" true (contains js "\"ph\":\"i\"");
  Alcotest.(check bool) "has a counter" true (contains js "\"ph\":\"C\"");
  Alcotest.(check bool) "names the processes" true (contains js "process_name");
  Alcotest.(check bool) "timestamps are microseconds" true (contains js "\"ts\":250000");
  Alcotest.(check bool) "escapes embedded quotes" true (contains js "time\\\"out");
  (* Every JSONL line parses too. *)
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' (Sink.jsonl named))
  in
  Alcotest.(check bool) "jsonl nonempty" true (lines <> []);
  List.iter
    (fun l -> Alcotest.(check bool) ("jsonl line parses: " ^ l) true (json_ok l))
    lines

let test_metrics_sinks () =
  let m = Metrics.create () in
  Metrics.incr m "2pc.committed";
  Metrics.set_gauge m "net.sent" 42.0;
  Metrics.observe m "lat" 0.125;
  let named = [ ("run", m) ] in
  Alcotest.(check bool) "metrics json parses" true (json_ok (Sink.metrics_json named));
  let text = Sink.summary named in
  Alcotest.(check bool) "summary names the counter" true (contains text "2pc.committed");
  Alcotest.(check bool) "summary names the histogram" true (contains text "lat")

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "bucket index edges" `Quick test_bucket_index_edges;
          Alcotest.test_case "observe and buckets" `Quick test_histogram_observe_and_buckets;
          Alcotest.test_case "merge" `Quick test_merge;
        ] );
      ( "probe",
        [ Alcotest.test_case "disabled vs enabled" `Quick test_probe_disabled_and_enabled ] );
      ("hub", [ Alcotest.test_case "registration and dumps" `Quick test_hub ]);
      ( "sinks",
        [
          Alcotest.test_case "chrome json well-formed" `Quick test_chrome_json_well_formed;
          Alcotest.test_case "metrics sinks" `Quick test_metrics_sinks;
        ] );
    ]
