open Repro_util
open Repro_crypto

(* ------------------------------------------------------------------ *)
(* SHA-256 known-answer tests (FIPS 180-4 / NIST CAVS vectors)         *)
(* ------------------------------------------------------------------ *)

let hex_of s = Sha256.to_hex (Sha256.digest_string s)

let test_sha256_empty () =
  Alcotest.(check string) "empty string"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" (hex_of "")

let test_sha256_abc () =
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" (hex_of "abc")

let test_sha256_448_bits () =
  Alcotest.(check string) "two-block boundary message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (hex_of "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha256_896_bits () =
  Alcotest.(check string) "four-block message"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (hex_of
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
        ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")

let test_sha256_million_a () =
  Alcotest.(check string) "one million 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (hex_of (String.make 1_000_000 'a'))

let test_sha256_incremental_matches_oneshot () =
  (* digest_concat must agree with digesting the concatenation, across
     chunkings that straddle the 64-byte block boundary. *)
  let msg = String.init 300 (fun i -> Char.chr (i mod 256)) in
  let whole = Sha256.digest_string msg in
  List.iter
    (fun cut ->
      let parts = [ String.sub msg 0 cut; String.sub msg cut (String.length msg - cut) ] in
      Alcotest.(check string) "chunked = one-shot" (Sha256.to_hex whole)
        (Sha256.to_hex (Sha256.digest_concat parts)))
    [ 1; 63; 64; 65; 127; 128; 129; 299 ]

let test_sha256_of_raw_roundtrip () =
  let d = Sha256.digest_string "roundtrip" in
  let d' = Sha256.of_raw_exn (Sha256.to_raw d) in
  Alcotest.(check bool) "equal" true (Sha256.equal d d')

let test_sha256_of_raw_rejects_bad_length () =
  Alcotest.check_raises "31 bytes" (Sha256.Not_a_digest 31) (fun () ->
      ignore (Sha256.of_raw_exn (String.make 31 'x')))

(* RFC 4231 HMAC-SHA256 test vectors. *)
let test_hmac_rfc4231_case1 () =
  let key = String.make 20 '\x0b' in
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Sha256.to_hex (Sha256.hmac ~key "Hi There"))

let test_hmac_rfc4231_case2 () =
  Alcotest.(check string) "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Sha256.to_hex (Sha256.hmac ~key:"Jefe" "what do ya want for nothing?"))

let test_hmac_rfc4231_long_key () =
  (* Case 6: 131-byte key forces the key-hashing path. *)
  let key = String.make 131 '\xaa' in
  Alcotest.(check string) "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Sha256.to_hex (Sha256.hmac ~key "Test Using Larger Than Block-Size Key - Hash Key First"))

(* ------------------------------------------------------------------ *)
(* Merkle                                                              *)
(* ------------------------------------------------------------------ *)

let leaves n = List.init n (fun i -> Printf.sprintf "tx-%d" i)

let test_merkle_empty () =
  Alcotest.(check bool) "empty root is stable" true
    (Sha256.equal (Merkle.root []) Merkle.empty_root)

let test_merkle_single_leaf () =
  let r = Merkle.root [ "only" ] in
  Alcotest.(check bool) "root of single leaf is its leaf hash" true
    (Sha256.equal r (Merkle.leaf_hash "only"))

let test_merkle_order_sensitivity () =
  Alcotest.(check bool) "leaf order matters" false
    (Sha256.equal (Merkle.root [ "a"; "b" ]) (Merkle.root [ "b"; "a" ]))

let test_merkle_leaf_node_domain_separation () =
  (* A leaf equal to the concatenation of two digests must not collide with
     an internal node. *)
  let l = Merkle.leaf_hash "x" and r = Merkle.leaf_hash "y" in
  let fake_leaf = (l : Sha256.digest :> string) ^ (r : Sha256.digest :> string) in
  Alcotest.(check bool) "no second-preimage by type confusion" false
    (Sha256.equal (Merkle.root [ "x"; "y" ]) (Merkle.leaf_hash fake_leaf))

let test_merkle_proof_verifies_all_sizes () =
  List.iter
    (fun n ->
      let ls = leaves n in
      let root = Merkle.root ls in
      List.iteri
        (fun i leaf ->
          let proof = Merkle.prove ls i in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d i=%d verifies" n i)
            true
            (Merkle.verify ~root ~leaf proof))
        ls)
    [ 1; 2; 3; 4; 5; 7; 8; 9; 16; 33 ]

let test_merkle_proof_rejects_wrong_leaf () =
  let ls = leaves 8 in
  let root = Merkle.root ls in
  let proof = Merkle.prove ls 3 in
  Alcotest.(check bool) "wrong leaf fails" false (Merkle.verify ~root ~leaf:"tx-4" proof)

let test_merkle_proof_rejects_wrong_root () =
  let ls = leaves 8 in
  let proof = Merkle.prove ls 3 in
  let other_root = Merkle.root (leaves 9) in
  Alcotest.(check bool) "wrong root fails" false
    (Merkle.verify ~root:other_root ~leaf:"tx-3" proof)

let test_merkle_prove_out_of_range () =
  Alcotest.check_raises "index out of range"
    (Merkle.Leaf_out_of_range { index = 4; leaves = 4 }) (fun () ->
      ignore (Merkle.prove (leaves 4) 4))

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)
(* ------------------------------------------------------------------ *)

let mk_keystore () = Keys.create_keystore (Rng.create 99L)

let test_keys_sign_verify () =
  let ks = mk_keystore () in
  let sk = Keys.gen ks ~id:1 in
  let s = Keys.sign sk ~msg_tag:12345 in
  Alcotest.(check bool) "valid signature verifies" true (Keys.verify ks s ~msg_tag:12345)

let test_keys_reject_wrong_message () =
  let ks = mk_keystore () in
  let sk = Keys.gen ks ~id:1 in
  let s = Keys.sign sk ~msg_tag:12345 in
  Alcotest.(check bool) "different message fails" false (Keys.verify ks s ~msg_tag:54321)

let test_keys_reject_unknown_signer () =
  let ks = mk_keystore () in
  let s = { Keys.signer = 7; auth = 42L } in
  Alcotest.(check bool) "unknown signer fails" false (Keys.verify ks s ~msg_tag:1)

let test_keys_reject_forged_tag () =
  let ks = mk_keystore () in
  let _sk = Keys.gen ks ~id:1 in
  let forged = { Keys.signer = 1; auth = 0xDEADBEEFL } in
  Alcotest.(check bool) "forged tag fails" false (Keys.verify ks forged ~msg_tag:1)

let test_keys_cross_principal () =
  let ks = mk_keystore () in
  let sk1 = Keys.gen ks ~id:1 in
  let _sk2 = Keys.gen ks ~id:2 in
  let s = Keys.sign sk1 ~msg_tag:10 in
  let claimed_by_2 = { s with Keys.signer = 2 } in
  Alcotest.(check bool) "re-attributed signature fails" false
    (Keys.verify ks claimed_by_2 ~msg_tag:10)

let test_keys_duplicate_registration () =
  let ks = mk_keystore () in
  let _ = Keys.gen ks ~id:5 in
  Alcotest.check_raises "duplicate id" (Keys.Already_registered 5) (fun () ->
      ignore (Keys.gen ks ~id:5))

let test_keys_gen_many () =
  let ks = mk_keystore () in
  let secrets = Keys.gen_many ks 10 in
  Alcotest.(check int) "ten principals" 10 (Array.length secrets);
  Array.iteri (fun i sk -> Alcotest.(check int) "id order" i (Keys.id_of sk)) secrets

let test_keys_hmac_mode () =
  let ks = mk_keystore () in
  let sk = Keys.gen ks ~id:3 in
  let d = Keys.sign_hmac sk "payload" in
  Alcotest.(check bool) "hmac verifies" true (Keys.verify_hmac ks ~id:3 "payload" d);
  Alcotest.(check bool) "hmac rejects other payload" false
    (Keys.verify_hmac ks ~id:3 "other" d);
  Alcotest.(check bool) "hmac rejects other principal" false
    (Keys.verify_hmac ks ~id:99 "payload" d)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_cost_table2_values () =
  let c = Cost_model.default in
  Alcotest.(check (float 1e-12)) "sign" 458.4e-6 c.Cost_model.ecdsa_sign;
  Alcotest.(check (float 1e-12)) "verify" 844.2e-6 c.Cost_model.ecdsa_verify;
  Alcotest.(check (float 1e-12)) "sha" 2.5e-6 c.Cost_model.sha256;
  Alcotest.(check (float 1e-12)) "append" 465.3e-6 c.Cost_model.ahl_append;
  Alcotest.(check (float 1e-12)) "beacon" 482.2e-6 c.Cost_model.beacon_invoke

let test_cost_ahlr_aggregate_matches_table2 () =
  (* Table 2 reports 8031.2 µs for aggregation at f = 8. *)
  let c = Cost_model.default in
  let agg = Cost_model.ahlr_aggregate c ~f:8 in
  Alcotest.(check (float 5e-6)) "f=8 aggregation" 8031.2e-6 agg

let test_cost_ahlr_aggregate_scales_with_f () =
  let c = Cost_model.default in
  let a1 = Cost_model.ahlr_aggregate c ~f:1 in
  let a20 = Cost_model.ahlr_aggregate c ~f:20 in
  Alcotest.(check (float 1e-9)) "linear in f"
    (19.0 *. c.Cost_model.ecdsa_verify) (a20 -. a1)

let test_cost_free_is_zero () =
  let c = Cost_model.free in
  Alcotest.(check (float 0.0)) "aggregate free" 0.0 (Cost_model.ahlr_aggregate c ~f:10);
  Alcotest.(check (float 0.0)) "verify batch free" 0.0 (Cost_model.verify_batch c 100)

let test_cost_verify_batch () =
  let c = Cost_model.default in
  Alcotest.(check (float 1e-12)) "batch of 10" (10.0 *. c.Cost_model.ecdsa_verify)
    (Cost_model.verify_batch c 10)

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

let prop_sha_deterministic =
  QCheck.Test.make ~name:"sha256 is deterministic" ~count:100 QCheck.string (fun s ->
      Sha256.equal (Sha256.digest_string s) (Sha256.digest_string s))

let prop_sha_injective_on_samples =
  QCheck.Test.make ~name:"sha256 distinguishes distinct strings" ~count:200
    QCheck.(pair string string)
    (fun (a, b) -> a = b || not (Sha256.equal (Sha256.digest_string a) (Sha256.digest_string b)))

let prop_sha_concat_chunking =
  QCheck.Test.make ~name:"digest_concat independent of chunking" ~count:100
    QCheck.(list string)
    (fun parts ->
      Sha256.equal (Sha256.digest_concat parts) (Sha256.digest_string (String.concat "" parts)))

let prop_merkle_all_proofs_verify =
  QCheck.Test.make ~name:"every merkle proof verifies" ~count:60
    QCheck.(list_of_size Gen.(1 -- 40) string)
    (fun ls ->
      let root = Merkle.root ls in
      List.for_all
        (fun i -> Merkle.verify ~root ~leaf:(List.nth ls i) (Merkle.prove ls i))
        (List.init (List.length ls) Fun.id))

let prop_sign_verify_roundtrip =
  QCheck.Test.make ~name:"simulated signature roundtrip" ~count:200
    QCheck.(pair small_int int)
    (fun (id, msg_tag) ->
      let ks = Keys.create_keystore (Rng.create 7L) in
      let sk = Keys.gen ks ~id in
      Keys.verify ks (Keys.sign sk ~msg_tag) ~msg_tag)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_sha_deterministic;
      prop_sha_injective_on_samples;
      prop_sha_concat_chunking;
      prop_merkle_all_proofs_verify;
      prop_sign_verify_roundtrip;
    ]

let () =
  Alcotest.run "crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "empty" `Quick test_sha256_empty;
          Alcotest.test_case "abc" `Quick test_sha256_abc;
          Alcotest.test_case "448-bit vector" `Quick test_sha256_448_bits;
          Alcotest.test_case "896-bit vector" `Quick test_sha256_896_bits;
          Alcotest.test_case "million a" `Slow test_sha256_million_a;
          Alcotest.test_case "incremental chunking" `Quick test_sha256_incremental_matches_oneshot;
          Alcotest.test_case "raw roundtrip" `Quick test_sha256_of_raw_roundtrip;
          Alcotest.test_case "raw rejects bad length" `Quick test_sha256_of_raw_rejects_bad_length;
          Alcotest.test_case "hmac rfc4231 case 1" `Quick test_hmac_rfc4231_case1;
          Alcotest.test_case "hmac rfc4231 case 2" `Quick test_hmac_rfc4231_case2;
          Alcotest.test_case "hmac long key" `Quick test_hmac_rfc4231_long_key;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "empty" `Quick test_merkle_empty;
          Alcotest.test_case "single leaf" `Quick test_merkle_single_leaf;
          Alcotest.test_case "order sensitivity" `Quick test_merkle_order_sensitivity;
          Alcotest.test_case "domain separation" `Quick test_merkle_leaf_node_domain_separation;
          Alcotest.test_case "proofs verify (all sizes)" `Quick test_merkle_proof_verifies_all_sizes;
          Alcotest.test_case "rejects wrong leaf" `Quick test_merkle_proof_rejects_wrong_leaf;
          Alcotest.test_case "rejects wrong root" `Quick test_merkle_proof_rejects_wrong_root;
          Alcotest.test_case "prove out of range" `Quick test_merkle_prove_out_of_range;
        ] );
      ( "keys",
        [
          Alcotest.test_case "sign/verify" `Quick test_keys_sign_verify;
          Alcotest.test_case "rejects wrong message" `Quick test_keys_reject_wrong_message;
          Alcotest.test_case "rejects unknown signer" `Quick test_keys_reject_unknown_signer;
          Alcotest.test_case "rejects forged tag" `Quick test_keys_reject_forged_tag;
          Alcotest.test_case "rejects re-attribution" `Quick test_keys_cross_principal;
          Alcotest.test_case "duplicate registration" `Quick test_keys_duplicate_registration;
          Alcotest.test_case "gen_many" `Quick test_keys_gen_many;
          Alcotest.test_case "hmac mode" `Quick test_keys_hmac_mode;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "table 2 values" `Quick test_cost_table2_values;
          Alcotest.test_case "aggregate matches table 2" `Quick
            test_cost_ahlr_aggregate_matches_table2;
          Alcotest.test_case "aggregate scales with f" `Quick test_cost_ahlr_aggregate_scales_with_f;
          Alcotest.test_case "free model is zero" `Quick test_cost_free_is_zero;
          Alcotest.test_case "verify batch" `Quick test_cost_verify_batch;
        ] );
      ("properties", qsuite);
    ]
