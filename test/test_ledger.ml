open Repro_ledger

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

let test_state_put_get () =
  let s = State.create () in
  State.put s "k" "v";
  Alcotest.(check (option string)) "get" (Some "v") (State.get_data s "k");
  Alcotest.(check bool) "mem" true (State.mem s "k");
  Alcotest.(check (option string)) "missing" None (State.get_data s "nope")

let test_state_versions_bump () =
  let s = State.create () in
  State.put s "k" "v1";
  State.put s "k" "v2";
  match State.get s "k" with
  | Some { State.data; version } ->
      Alcotest.(check string) "latest" "v2" data;
      Alcotest.(check int) "version" 1 version
  | None -> Alcotest.fail "missing"

let test_state_delete () =
  let s = State.create () in
  State.put s "k" "v";
  State.delete s "k";
  Alcotest.(check bool) "gone" false (State.mem s "k")

let test_state_root_changes_with_content () =
  let s = State.create () in
  State.put s "a" "1";
  let r1 = State.root s in
  State.put s "b" "2";
  let r2 = State.root s in
  Alcotest.(check bool) "root differs" false (Repro_crypto.Sha256.equal r1 r2)

let test_state_root_insertion_order_free () =
  let s1 = State.create () and s2 = State.create () in
  State.put s1 "a" "1";
  State.put s1 "b" "2";
  State.put s2 "b" "2";
  State.put s2 "a" "1";
  Alcotest.(check bool) "same root" true (Repro_crypto.Sha256.equal (State.root s1) (State.root s2))

let test_state_snapshot_restore () =
  let s = State.create () in
  State.put s "a" "1";
  State.put s "b" "2";
  State.put s "b" "3";
  let s' = State.restore (State.snapshot s) in
  Alcotest.(check bool) "equal" true (State.equal s s');
  Alcotest.(check bool) "roots match" true
    (Repro_crypto.Sha256.equal (State.root s) (State.root s'))

(* ------------------------------------------------------------------ *)
(* Locks                                                               *)
(* ------------------------------------------------------------------ *)

let test_locks_acquire_release () =
  let s = State.create () in
  let l = Locks.create s in
  Alcotest.(check bool) "acquire" true (Locks.acquire l ~txid:1 "acc");
  Alcotest.(check (option int)) "holder" (Some 1) (Locks.holder l "acc");
  Alcotest.(check bool) "lock tuple on chain" true (State.mem s "L_acc");
  Locks.release l ~txid:1 "acc";
  Alcotest.(check (option int)) "released" None (Locks.holder l "acc")

let test_locks_conflict () =
  let s = State.create () in
  let l = Locks.create s in
  ignore (Locks.acquire l ~txid:1 "acc");
  Alcotest.(check bool) "other tx refused" false (Locks.acquire l ~txid:2 "acc");
  Alcotest.(check bool) "re-entrant" true (Locks.acquire l ~txid:1 "acc")

let test_locks_release_only_owner () =
  let s = State.create () in
  let l = Locks.create s in
  ignore (Locks.acquire l ~txid:1 "acc");
  Locks.release l ~txid:2 "acc";
  Alcotest.(check (option int)) "still held" (Some 1) (Locks.holder l "acc")

let test_locks_acquire_all_rollback () =
  let s = State.create () in
  let l = Locks.create s in
  ignore (Locks.acquire l ~txid:9 "b");
  Alcotest.(check bool) "all-or-nothing fails" false (Locks.acquire_all l ~txid:1 [ "a"; "b"; "c" ]);
  Alcotest.(check (option int)) "a rolled back" None (Locks.holder l "a");
  Alcotest.(check (option int)) "b untouched" (Some 9) (Locks.holder l "b")

let test_locks_acquire_all_keeps_prior_locks () =
  let s = State.create () in
  let l = Locks.create s in
  ignore (Locks.acquire l ~txid:1 "a");
  ignore (Locks.acquire l ~txid:9 "c");
  Alcotest.(check bool) "fails on c" false (Locks.acquire_all l ~txid:1 [ "a"; "b"; "c" ]);
  Alcotest.(check (option int)) "pre-existing a kept" (Some 1) (Locks.holder l "a");
  Alcotest.(check (option int)) "b rolled back" None (Locks.holder l "b")

let test_locks_held_by () =
  let s = State.create () in
  let l = Locks.create s in
  ignore (Locks.acquire l ~txid:1 "b");
  ignore (Locks.acquire l ~txid:1 "a");
  ignore (Locks.acquire l ~txid:2 "c");
  Alcotest.(check (list string)) "tx1 locks" [ "a"; "b" ] (Locks.held_by l ~txid:1)

(* ------------------------------------------------------------------ *)
(* Tx                                                                  *)
(* ------------------------------------------------------------------ *)

let test_tx_keys_sorted_distinct () =
  let tx =
    Tx.make ~txid:1
      [ Tx.Put { key = "b"; value = "1" }; Tx.Get { key = "a" }; Tx.Put { key = "b"; value = "2" } ]
  in
  Alcotest.(check (list string)) "keys" [ "a"; "b" ] (Tx.keys tx)

let test_tx_shard_mapping_stable () =
  let a = Tx.shard_of_key ~shards:7 "account-42" in
  let b = Tx.shard_of_key ~shards:7 "account-42" in
  Alcotest.(check int) "deterministic" a b;
  Alcotest.(check bool) "in range" true (a >= 0 && a < 7)

let test_tx_shard_mapping_spreads () =
  let shards = 8 in
  let counts = Array.make shards 0 in
  for i = 0 to 7999 do
    let s = Tx.shard_of_key ~shards ("key" ^ string_of_int i) in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "within 20% of uniform" true (abs (c - 1000) < 200))
    counts

let test_tx_ops_for_shard_partitions () =
  let shards = 5 in
  let ops = List.init 20 (fun i -> Tx.Put { key = "k" ^ string_of_int i; value = "" }) in
  let tx = Tx.make ~txid:1 ops in
  let total =
    List.fold_left
      (fun acc s -> acc + List.length (Tx.ops_for_shard ~shards tx s))
      0
      (List.init shards Fun.id)
  in
  Alcotest.(check int) "partition covers all ops" 20 total

let test_tx_cross_shard_detection () =
  let shards = 4 in
  (* Find two keys in different shards and two in the same. *)
  let k0 = "base" in
  let s0 = Tx.shard_of_key ~shards k0 in
  let rec find pred i =
    let k = "probe" ^ string_of_int i in
    if pred (Tx.shard_of_key ~shards k) then k else find pred (i + 1)
  in
  let other = find (fun s -> s <> s0) 0 in
  let same = find (fun s -> s = s0) 0 in
  let mk keys = Tx.make ~txid:1 (List.map (fun key -> Tx.Put { key; value = "" }) keys) in
  Alcotest.(check bool) "cross" true (Tx.is_cross_shard ~shards (mk [ k0; other ]));
  Alcotest.(check bool) "single" false (Tx.is_cross_shard ~shards (mk [ k0; same ]))

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)
(* ------------------------------------------------------------------ *)

let funded () =
  let s = State.create () in
  Executor.set_balance s "alice" 100;
  Executor.set_balance s "bob" 50;
  s

let transfer ~amount = [ Tx.Debit { account = "alice"; amount }; Tx.Credit { account = "bob"; amount } ]

let test_executor_prepare_commit () =
  let s = funded () in
  (match Executor.prepare s ~txid:1 (transfer ~amount:30) with
  | Executor.Prepare_ok -> ()
  | Executor.Prepare_not_ok r -> Alcotest.fail r);
  (* Locks are held between prepare and commit. *)
  let l = Locks.create s in
  Alcotest.(check (option int)) "alice locked" (Some 1) (Locks.holder l "alice");
  Executor.commit s ~txid:1 (transfer ~amount:30);
  Alcotest.(check int) "alice" 70 (Executor.balance s "alice");
  Alcotest.(check int) "bob" 80 (Executor.balance s "bob");
  Alcotest.(check (option int)) "locks released" None (Locks.holder l "alice")

let test_executor_prepare_insufficient () =
  let s = funded () in
  (match Executor.prepare s ~txid:1 (transfer ~amount:1000) with
  | Executor.Prepare_not_ok _ -> ()
  | Executor.Prepare_ok -> Alcotest.fail "should refuse overdraft");
  let l = Locks.create s in
  Alcotest.(check (option int)) "no dangling lock" None (Locks.holder l "alice")

let test_executor_credit_funds_debit () =
  (* A debit covered by a credit within the same transaction is valid. *)
  let s = State.create () in
  Executor.set_balance s "x" 0;
  let ops = [ Tx.Credit { account = "x"; amount = 10 }; Tx.Debit { account = "x"; amount = 5 } ] in
  match Executor.prepare s ~txid:1 ops with
  | Executor.Prepare_ok -> ()
  | Executor.Prepare_not_ok r -> Alcotest.fail r

let test_executor_abort_releases_without_applying () =
  let s = funded () in
  ignore (Executor.prepare s ~txid:1 (transfer ~amount:30));
  Executor.abort s ~txid:1 (transfer ~amount:30);
  Alcotest.(check int) "alice unchanged" 100 (Executor.balance s "alice");
  Alcotest.(check (option int)) "released" None (Locks.holder (Locks.create s) "alice")

let test_executor_commit_requires_own_locks () =
  (* A commit without a preceding prepare (no locks) must not apply. *)
  let s = funded () in
  Executor.commit s ~txid:7 (transfer ~amount:30);
  Alcotest.(check int) "alice unchanged" 100 (Executor.balance s "alice")

let test_executor_lock_conflict_votes_nok () =
  let s = funded () in
  ignore (Executor.prepare s ~txid:1 (transfer ~amount:10));
  match Executor.prepare s ~txid:2 (transfer ~amount:10) with
  | Executor.Prepare_not_ok _ -> ()
  | Executor.Prepare_ok -> Alcotest.fail "conflicting prepare must fail"

let test_executor_single_path () =
  let s = funded () in
  (match Executor.execute_single s ~txid:1 (transfer ~amount:30) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "alice" 70 (Executor.balance s "alice");
  match Executor.execute_single s ~txid:2 (transfer ~amount:1000) with
  | Error _ -> Alcotest.(check int) "alice unchanged" 70 (Executor.balance s "alice")
  | Ok () -> Alcotest.fail "overdraft"

(* ------------------------------------------------------------------ *)
(* Block / Chain                                                       *)
(* ------------------------------------------------------------------ *)

let test_chain_append_and_validate () =
  let state_root = Repro_crypto.Sha256.digest_string "s0" in
  let c = Block.Chain.create ~state_root in
  ignore (Block.Chain.append c ~txs:[ "t1"; "t2" ] ~state_root ~timestamp:1.0);
  ignore (Block.Chain.append c ~txs:[ "t3" ] ~state_root ~timestamp:2.0);
  Alcotest.(check int) "height" 2 (Block.Chain.height c);
  Alcotest.(check bool) "validates" true (Block.Chain.validate c)

let test_chain_link_verification () =
  let state_root = Repro_crypto.Sha256.digest_string "s0" in
  let g = Block.genesis state_root in
  let b1 = Block.next ~parent:g ~txs:[ "a" ] ~state_root ~timestamp:1.0 in
  Alcotest.(check bool) "link ok" true (Block.verify_link ~parent:g ~child:b1);
  let forged = { b1 with Block.txs = [ "b" ] } in
  Alcotest.(check bool) "tampered txs detected" false (Block.verify_link ~parent:g ~child:forged)

let test_chain_tx_inclusion_proof () =
  let state_root = Repro_crypto.Sha256.digest_string "s0" in
  let g = Block.genesis state_root in
  let b = Block.next ~parent:g ~txs:[ "t0"; "t1"; "t2" ] ~state_root ~timestamp:1.0 in
  let proof = Block.tx_proof b 1 in
  Alcotest.(check bool) "t1 included" true (Block.verify_tx b ~tx:"t1" proof);
  Alcotest.(check bool) "t9 not included" false (Block.verify_tx b ~tx:"t9" proof)

(* ------------------------------------------------------------------ *)
(* Chaincodes                                                          *)
(* ------------------------------------------------------------------ *)

let invoke cc s ~txid fn args = Chaincode.invoke cc s ~txid { Chaincode.fn; args }

let test_kvstore_write_read () =
  let s = State.create () in
  (match invoke Kvstore_cc.chaincode s ~txid:1 "write" [ "k"; "v" ] with
  | Chaincode.Success _ -> ()
  | Chaincode.Failure e -> Alcotest.fail e);
  match invoke Kvstore_cc.chaincode s ~txid:2 "read" [ "k" ] with
  | Chaincode.Success v -> Alcotest.(check string) "read back" "v" v
  | Chaincode.Failure e -> Alcotest.fail e

let test_kvstore_prepare_commit_cycle () =
  let s = State.create () in
  let ops = [ Tx.Put { key = "k"; value = "v" } ] in
  let inv phase = Chaincode.functions_of_ops ~txid:5 ~phase ops in
  (match Chaincode.invoke Kvstore_cc.chaincode s ~txid:5 (inv `Prepare) with
  | Chaincode.Success r -> Alcotest.(check string) "vote" "PrepareOK" r
  | Chaincode.Failure e -> Alcotest.fail e);
  Alcotest.(check bool) "lock tuple exists" true (State.mem s "L_k");
  (match Chaincode.invoke Kvstore_cc.chaincode s ~txid:5 (inv `Commit) with
  | Chaincode.Success _ -> ()
  | Chaincode.Failure e -> Alcotest.fail e);
  Alcotest.(check (option string)) "written" (Some "v") (State.get_data s "k");
  Alcotest.(check bool) "lock gone" false (State.mem s "L_k")

let test_kvstore_unknown_function () =
  let s = State.create () in
  match invoke Kvstore_cc.chaincode s ~txid:1 "nuke" [] with
  | Chaincode.Failure _ -> ()
  | Chaincode.Success _ -> Alcotest.fail "unknown fn must fail"

let test_smallbank_setup_and_balance () =
  let s = State.create () in
  Smallbank_cc.setup s ~accounts:3 ~initial:100;
  Alcotest.(check int) "checking" 100 (Smallbank_cc.checking s "acc0");
  Alcotest.(check int) "savings" 100 (Smallbank_cc.savings s "acc1");
  Alcotest.(check int) "total" 600 (Smallbank_cc.total_money s);
  match invoke Smallbank_cc.chaincode s ~txid:1 "getBalance" [ "acc0" ] with
  | Chaincode.Success v -> Alcotest.(check string) "combined" "200" v
  | Chaincode.Failure e -> Alcotest.fail e

let test_smallbank_send_payment () =
  let s = State.create () in
  Smallbank_cc.setup s ~accounts:2 ~initial:100;
  (match invoke Smallbank_cc.chaincode s ~txid:1 "sendPayment" [ "acc0"; "acc1"; "40" ] with
  | Chaincode.Success _ -> ()
  | Chaincode.Failure e -> Alcotest.fail e);
  Alcotest.(check int) "src" 60 (Smallbank_cc.checking s "acc0");
  Alcotest.(check int) "dst" 140 (Smallbank_cc.checking s "acc1");
  Alcotest.(check int) "money conserved" 400 (Smallbank_cc.total_money s)

let test_smallbank_overdraft_refused () =
  let s = State.create () in
  Smallbank_cc.setup s ~accounts:2 ~initial:100;
  (match invoke Smallbank_cc.chaincode s ~txid:1 "sendPayment" [ "acc0"; "acc1"; "500" ] with
  | Chaincode.Failure _ -> ()
  | Chaincode.Success _ -> Alcotest.fail "overdraft accepted");
  Alcotest.(check int) "unchanged" 100 (Smallbank_cc.checking s "acc0")

let test_smallbank_amalgamate () =
  let s = State.create () in
  Smallbank_cc.setup s ~accounts:2 ~initial:100;
  (match invoke Smallbank_cc.chaincode s ~txid:1 "amalgamate" [ "acc0"; "acc1" ] with
  | Chaincode.Success _ -> ()
  | Chaincode.Failure e -> Alcotest.fail e);
  Alcotest.(check int) "src emptied" 0 (Smallbank_cc.checking s "acc0" + Smallbank_cc.savings s "acc0");
  Alcotest.(check int) "dst holds all" 300 (Smallbank_cc.checking s "acc1");
  Alcotest.(check int) "conserved" 400 (Smallbank_cc.total_money s)

let test_smallbank_write_check_and_savings () =
  let s = State.create () in
  Smallbank_cc.setup s ~accounts:1 ~initial:100;
  (match invoke Smallbank_cc.chaincode s ~txid:1 "writeCheck" [ "acc0"; "30" ] with
  | Chaincode.Success _ -> ()
  | Chaincode.Failure e -> Alcotest.fail e);
  Alcotest.(check int) "checking" 70 (Smallbank_cc.checking s "acc0");
  (match invoke Smallbank_cc.chaincode s ~txid:2 "transactSavings" [ "acc0"; "200" ] with
  | Chaincode.Failure _ -> ()
  | Chaincode.Success _ -> Alcotest.fail "savings overdraft accepted");
  Alcotest.(check int) "savings unchanged" 100 (Smallbank_cc.savings s "acc0")

let test_smallbank_prepare_payment_running_example () =
  (* The Section 6.3 running example: preparePayment writes the lock
     tuples, commitPayment applies and removes them. *)
  let s = State.create () in
  Smallbank_cc.setup s ~accounts:2 ~initial:100;
  let ops = Smallbank_cc.send_payment_ops ~src:"acc0" ~dst:"acc1" ~amount:25 in
  let inv phase = Chaincode.functions_of_ops ~txid:9 ~phase ops in
  (match Chaincode.invoke Smallbank_cc.chaincode s ~txid:9 (inv `Prepare) with
  | Chaincode.Success _ -> ()
  | Chaincode.Failure e -> Alcotest.fail e);
  Alcotest.(check bool) "L_chk_acc0 exists" true (State.mem s "L_chk_acc0");
  (match Chaincode.invoke Smallbank_cc.chaincode s ~txid:9 (inv `Commit) with
  | Chaincode.Success _ -> ()
  | Chaincode.Failure e -> Alcotest.fail e);
  Alcotest.(check int) "applied" 75 (Smallbank_cc.checking s "acc0");
  Alcotest.(check bool) "lock removed" false (State.mem s "L_chk_acc0")

(* ------------------------------------------------------------------ *)
(* UTXO                                                                *)
(* ------------------------------------------------------------------ *)

let test_utxo_mint_and_spend () =
  let u = Utxo.create () in
  let c = Utxo.mint u ~owner:"alice" ~amount:10 in
  Alcotest.(check int) "balance" 10 (Utxo.balance u "alice");
  match Utxo.apply u { Utxo.inputs = [ c.Utxo.id ]; outputs = [ ("bob", 10) ] } with
  | Ok [ out ] ->
      Alcotest.(check string) "new owner" "bob" out.Utxo.owner;
      Alcotest.(check int) "alice spent" 0 (Utxo.balance u "alice");
      Alcotest.(check int) "bob funded" 10 (Utxo.balance u "bob")
  | Ok _ | Error _ -> Alcotest.fail "spend failed"

let test_utxo_double_spend_rejected () =
  let u = Utxo.create () in
  let c = Utxo.mint u ~owner:"alice" ~amount:10 in
  ignore (Utxo.apply u { Utxo.inputs = [ c.Utxo.id ]; outputs = [ ("bob", 10) ] });
  match Utxo.apply u { Utxo.inputs = [ c.Utxo.id ]; outputs = [ ("carol", 10) ] } with
  | Error _ -> Alcotest.(check int) "carol got nothing" 0 (Utxo.balance u "carol")
  | Ok _ -> Alcotest.fail "double spend accepted"

let test_utxo_rejects_inflation () =
  let u = Utxo.create () in
  let c = Utxo.mint u ~owner:"alice" ~amount:10 in
  match Utxo.apply u { Utxo.inputs = [ c.Utxo.id ]; outputs = [ ("bob", 11) ] } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "created money"

let test_utxo_rejects_duplicate_inputs () =
  let u = Utxo.create () in
  let c = Utxo.mint u ~owner:"alice" ~amount:10 in
  match Utxo.apply u { Utxo.inputs = [ c.Utxo.id; c.Utxo.id ]; outputs = [ ("bob", 20) ] } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate input accepted"

let test_utxo_multi_input_change () =
  let u = Utxo.create () in
  let c1 = Utxo.mint u ~owner:"alice" ~amount:7 in
  let c2 = Utxo.mint u ~owner:"alice" ~amount:5 in
  match
    Utxo.apply u
      { Utxo.inputs = [ c1.Utxo.id; c2.Utxo.id ]; outputs = [ ("bob", 10); ("alice", 2) ] }
  with
  | Ok _ ->
      Alcotest.(check int) "change" 2 (Utxo.balance u "alice");
      Alcotest.(check int) "paid" 10 (Utxo.balance u "bob")
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Tx serialization                                                    *)
(* ------------------------------------------------------------------ *)

let sample_tx =
  Tx.make ~txid:42 ~client:7 ~submitted:1.25
    [
      Tx.Put { key = "k|odd"; value = "v%0a" };
      Tx.Get { key = "plain" };
      Tx.Debit { account = "alice"; amount = 30 };
      Tx.Credit { account = "bob"; amount = 30 };
    ]

let test_tx_serialize_roundtrip () =
  match Tx.deserialize (Tx.serialize sample_tx) with
  | Ok t ->
      Alcotest.(check int) "txid" 42 t.Tx.txid;
      Alcotest.(check int) "client" 7 t.Tx.client;
      Alcotest.(check int) "ops count" 4 (List.length t.Tx.ops);
      Alcotest.(check bool) "ops equal" true (t.Tx.ops = sample_tx.Tx.ops)
  | Error e -> Alcotest.fail e

let test_tx_deserialize_rejects_garbage () =
  (match Tx.deserialize "not a tx" with Error _ -> () | Ok _ -> Alcotest.fail "garbage accepted");
  match Tx.deserialize "tx|1|2|3.0\nfly|me" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad op accepted"

let test_tx_digest_distinguishes () =
  let other = Tx.make ~txid:43 ~client:7 ~submitted:1.25 sample_tx.Tx.ops in
  Alcotest.(check bool) "different txid different digest" false
    (Repro_crypto.Sha256.equal (Tx.digest sample_tx) (Tx.digest other))

(* ------------------------------------------------------------------ *)
(* Contract DSL (Section 6.4 extension)                                *)
(* ------------------------------------------------------------------ *)

let send_payment_contract =
  Contract.define ~name:"sendPayment" ~arity:3
    [ Contract.Transfer { from_ = Contract.Param 0; to_ = Contract.Param 1;
                          amount = Contract.Amount_param 2 } ]

let test_contract_compile () =
  match Contract.compile send_payment_contract ~args:[ "alice"; "bob"; "25" ] with
  | Ok [ Tx.Debit { account = "alice"; amount = 25 }; Tx.Credit { account = "bob"; amount = 25 } ]
    ->
      ()
  | Ok _ -> Alcotest.fail "wrong ops"
  | Error e -> Alcotest.fail e

let test_contract_arity_and_amount_errors () =
  (match Contract.compile send_payment_contract ~args:[ "alice"; "bob" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity not checked");
  match Contract.compile send_payment_contract ~args:[ "alice"; "bob"; "lots" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "amount not parsed"

let test_contract_define_validates_params () =
  Alcotest.check_raises "param out of range"
    (Repro_util.Invariant.Violation "Contract.define: parameter out of range") (fun () ->
      ignore
        (Contract.define ~name:"bad" ~arity:1
           [ Contract.Deposit { to_ = Contract.Param 3; amount = Contract.Amount_lit 1 } ]))

let test_contract_analyze () =
  let shards = 4 in
  match Contract.analyze send_payment_contract ~shards ~args:[ "alice"; "bob"; "5" ] with
  | `Single s -> Alcotest.(check int) "alice&bob same shard" (Tx.shard_of_key ~shards "alice") s
  | `Cross l ->
      Alcotest.(check (list int)) "footprint"
        (List.sort_uniq compare [ Tx.shard_of_key ~shards "alice"; Tx.shard_of_key ~shards "bob" ])
        l

let test_contract_single_shard_entry () =
  let cc = Contract.to_chaincode send_payment_contract in
  let s = State.create () in
  Executor.set_balance s "alice" 100;
  (match Chaincode.invoke cc s ~txid:1 { Chaincode.fn = "sendPayment"; args = [ "alice"; "bob"; "30" ] } with
  | Chaincode.Success _ -> ()
  | Chaincode.Failure e -> Alcotest.fail e);
  Alcotest.(check int) "alice" 70 (Executor.balance s "alice");
  Alcotest.(check int) "bob" 30 (Executor.balance s "bob")

let test_contract_auto_sharded_entries () =
  (* The same definition serves the coordinator's prepare/commit flow. *)
  let cc = Contract.to_chaincode send_payment_contract in
  let s = State.create () in
  Executor.set_balance s "alice" 100;
  let ops = Result.get_ok (Contract.compile send_payment_contract ~args:[ "alice"; "bob"; "30" ]) in
  let inv phase = Chaincode.functions_of_ops ~txid:9 ~phase ops in
  (match Chaincode.invoke cc s ~txid:9 (inv `Prepare) with
  | Chaincode.Success v -> Alcotest.(check string) "vote" "PrepareOK" v
  | Chaincode.Failure e -> Alcotest.fail e);
  Alcotest.(check bool) "auto lock tuple" true (State.mem s "L_alice");
  (match Chaincode.invoke cc s ~txid:9 (inv `Commit) with
  | Chaincode.Success _ -> ()
  | Chaincode.Failure e -> Alcotest.fail e);
  Alcotest.(check int) "applied" 70 (Executor.balance s "alice");
  Alcotest.(check bool) "lock gone" false (State.mem s "L_alice")

let test_contract_guarded_withdraw () =
  let escrow =
    Contract.define ~name:"release" ~arity:2
      [
        Contract.Withdraw { from_ = Contract.Lit "escrow"; amount = Contract.Amount_param 1 };
        Contract.Deposit { to_ = Contract.Param 0; amount = Contract.Amount_param 1 };
        Contract.Set { key = Contract.Lit "escrow_status"; value = Contract.Lit "released" };
      ]
  in
  let cc = Contract.to_chaincode escrow in
  let s = State.create () in
  Executor.set_balance s "escrow" 50;
  (match Chaincode.invoke cc s ~txid:1 { Chaincode.fn = "release"; args = [ "carol"; "80" ] } with
  | Chaincode.Failure _ -> ()
  | Chaincode.Success _ -> Alcotest.fail "overdraft accepted");
  (match Chaincode.invoke cc s ~txid:2 { Chaincode.fn = "release"; args = [ "carol"; "50" ] } with
  | Chaincode.Success _ -> ()
  | Chaincode.Failure e -> Alcotest.fail e);
  Alcotest.(check int) "carol paid" 50 (Executor.balance s "carol");
  Alcotest.(check (option string)) "status" (Some "released") (State.get_data s "escrow_status")

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_money_conserved_under_random_transfers =
  QCheck.Test.make ~name:"smallbank conserves money under random op sequences" ~count:100
    QCheck.(list (triple (int_bound 4) (int_bound 4) (int_range 1 50)))
    (fun transfers ->
      let s = State.create () in
      Smallbank_cc.setup s ~accounts:5 ~initial:100;
      List.iteri
        (fun i (a, b, amt) ->
          ignore
            (Chaincode.invoke Smallbank_cc.chaincode s ~txid:i
               {
                 Chaincode.fn = "sendPayment";
                 args = [ "acc" ^ string_of_int a; "acc" ^ string_of_int b; string_of_int amt ];
               }))
        transfers;
      Smallbank_cc.total_money s = 1000)

let prop_utxo_value_never_increases =
  QCheck.Test.make ~name:"utxo total value never increases" ~count:100
    QCheck.(list (pair (int_bound 9) (int_bound 9)))
    (fun spends ->
      let u = Utxo.create () in
      let coins = Array.init 10 (fun i -> Utxo.mint u ~owner:("o" ^ string_of_int i) ~amount:10) in
      let initial = Utxo.total_unspent u in
      List.iter
        (fun (i, j) ->
          ignore
            (Utxo.apply u
               { Utxo.inputs = [ coins.(i).Utxo.id ]; outputs = [ (("o" ^ string_of_int j), 10) ] }))
        spends;
      Utxo.total_unspent u <= initial)

let prop_tx_serialize_roundtrip =
  QCheck.Test.make ~name:"tx serialization roundtrips" ~count:200
    QCheck.(
      pair small_int
        (list_of_size Gen.(1 -- 8) (pair (pair printable_string printable_string) (int_bound 1000))))
    (fun (txid, raw_ops) ->
      let ops =
        List.concat_map
          (fun ((k, v), amount) ->
            if k = "" then []
            else [ Tx.Put { key = k; value = v }; Tx.Debit { account = k ^ "a"; amount } ])
          raw_ops
      in
      ops = []
      ||
      let tx = Tx.make ~txid ops in
      match Tx.deserialize (Tx.serialize tx) with
      | Ok t -> t.Tx.ops = tx.Tx.ops && t.Tx.txid = tx.Tx.txid
      | Error _ -> false)

let prop_prepare_abort_is_identity =
  QCheck.Test.make ~name:"prepare then abort leaves state unchanged" ~count:100
    QCheck.(pair (int_range 1 200) (int_range 1 200))
    (fun (bal, amount) ->
      let s = State.create () in
      Executor.set_balance s "a" bal;
      Executor.set_balance s "b" 0;
      let snapshot = State.snapshot s in
      let ops = [ Tx.Debit { account = "a"; amount }; Tx.Credit { account = "b"; amount } ] in
      ignore (Executor.prepare s ~txid:1 ops);
      Executor.abort s ~txid:1 ops;
      (* Versions may have moved (lock write/delete) but data must match. *)
      List.for_all
        (fun (k, v) -> State.get_data s k = Some v.State.data)
        snapshot)

(* ------------------------------------------------------------------ *)
(* Mergeable state (the fast lane's delta algebra, DESIGN §18)         *)
(* ------------------------------------------------------------------ *)

let test_merge_classify () =
  let reg = Merge.create_registry () in
  Smallbank_cc.declare_mergeable reg;
  Kvstore_cc.declare_mergeable reg;
  Alcotest.(check (list string))
    "rules declared" [ "smallbank.credit"; "kvstore.counter" ] (Merge.rule_names reg);
  Smallbank_cc.declare_mergeable reg;
  Alcotest.(check int) "re-declaring is a no-op" 2 (List.length (Merge.rule_names reg));
  (* A Merge op classifies as itself; a Credit via the smallbank rule;
     conditional debits never classify. *)
  (match Merge.classify_op reg (Tx.Merge { key = "k"; delta = Tx.Add 3 }) with
  | Some ("k", Tx.Add 3) -> ()
  | _ -> Alcotest.fail "Merge op should classify as itself");
  (match Merge.classify_op reg (Tx.Credit { account = "a"; amount = 7 }) with
  | Some ("a", Tx.Add 7) -> ()
  | _ -> Alcotest.fail "Credit should classify via smallbank.credit");
  Alcotest.(check bool) "Debit is not mergeable" true
    (Merge.classify_op reg (Tx.Debit { account = "a"; amount = 7 }) = None);
  (* classify_tx is all-or-nothing. *)
  let all_credits =
    Tx.make ~txid:1
      [ Tx.Credit { account = "a"; amount = 1 }; Tx.Credit { account = "b"; amount = 2 } ]
  in
  (match Merge.classify_tx reg all_credits with
  | Some [ ("a", Tx.Add 1); ("b", Tx.Add 2) ] -> ()
  | _ -> Alcotest.fail "all-credit tx should classify");
  let mixed =
    Tx.make ~txid:2
      [ Tx.Credit { account = "a"; amount = 1 }; Tx.Debit { account = "b"; amount = 2 } ]
  in
  Alcotest.(check bool) "mixed tx stays locked" true (Merge.classify_tx reg mixed = None)

let test_merge_apply_delta () =
  let s = State.create () in
  Executor.set_balance s "n" 10;
  Merge.apply_delta s "n" (Tx.Add 5);
  Alcotest.(check int) "add folds onto balance" 15 (Executor.balance s "n");
  Merge.apply_delta s "n" (Tx.Maxi 40);
  Alcotest.(check int) "max lifts" 40 (Executor.balance s "n");
  Merge.apply_delta s "n" (Tx.Maxi 12);
  Alcotest.(check int) "max keeps" 40 (Executor.balance s "n");
  Merge.apply_delta s "fresh" (Tx.Add 3);
  Alcotest.(check int) "absent key starts at identity" 3 (Executor.balance s "fresh");
  Merge.apply_delta s "set" (Tx.Union [ "b"; "a" ]);
  Merge.apply_delta s "set" (Tx.Union [ "c"; "a" ]);
  Alcotest.(check (option string)) "union accumulates sorted" (Some "a,b,c")
    (State.get_data s "set")

let test_merge_lane_fold_order_free () =
  (* Same delta set, two append orders: identical folded state and root. *)
  let run order =
    let lane = Merge.lane () in
    let s = State.create () in
    Executor.set_balance s "x" 100;
    List.iter (fun (txid, key, d) -> Merge.append lane s ~txid ~key d) order;
    let count, _digest = Merge.fold_into lane s in
    (count, Executor.balance s "x", Executor.balance s "y", Repro_crypto.Sha256.to_hex (Merge.root lane))
  in
  let deltas = [ (1, "x", Tx.Add 5); (2, "y", Tx.Add 7); (3, "x", Tx.Maxi 90) ] in
  let a = run deltas and b = run (List.rev deltas) in
  Alcotest.(check bool) "fold independent of arrival order" true (a = b);
  let count, x, y, _ = a in
  Alcotest.(check int) "all folded" 3 count;
  Alcotest.(check int) "x folded canonically" 105 x;
  Alcotest.(check int) "y folded" 7 y

let test_merge_audit_detects_divergence () =
  let lane = Merge.lane () in
  let s = State.create () in
  Executor.set_balance s "k" 10;
  Merge.append lane s ~txid:1 ~key:"k" (Tx.Add 5);
  ignore (Merge.fold_into lane s);
  Alcotest.(check int) "one fold" 1 (Merge.folds lane);
  Alcotest.(check int) "nothing pending" 0 (Merge.depth lane);
  Alcotest.(check int) "log keeps history" 1 (Merge.log_length lane);
  Alcotest.(check bool) "converged after fold" true (Merge.audit lane s = []);
  (* A write bypassing the lane is exactly what the audit exists to catch. *)
  Executor.set_balance s "k" 999;
  match Merge.audit lane s with
  | [ { Merge.mkey = "k"; expected; actual } ] ->
      Alcotest.(check string) "expected is the canonical fold" "15" expected;
      Alcotest.(check string) "actual is the tampered value" "999" actual
  | ms -> Alcotest.failf "expected one mismatch, got %d" (List.length ms)

let delta_arb =
  let print d = Format.asprintf "%a" Tx.pp_delta d in
  QCheck.make ~print
    QCheck.Gen.(
      oneof
        [
          map (fun n -> Tx.Add n) (int_range (-100) 100);
          map (fun n -> Tx.Maxi n) (int_range (-100) 100);
          map
            (fun l -> Tx.Union l)
            (list_size (0 -- 4) (string_size ~gen:(char_range 'a' 'd') (1 -- 2)));
        ])

let prop_merge_combine_commutative =
  QCheck.Test.make ~name:"merge combine is commutative" ~count:300
    QCheck.(pair delta_arb delta_arb)
    (fun (a, b) -> Merge.combine a b = Merge.combine b a)

let prop_merge_combine_associative =
  QCheck.Test.make ~name:"merge combine is associative" ~count:300
    QCheck.(triple delta_arb delta_arb delta_arb)
    (fun (a, b, c) ->
      let ( >>= ) = Option.bind in
      (Merge.combine a b >>= fun ab -> Merge.combine ab c)
      = (Merge.combine b c >>= fun bc -> Merge.combine a bc))

let prop_merge_identity =
  QCheck.Test.make ~name:"merge identity is neutral" ~count:300 delta_arb (fun d ->
      Merge.combine d (Merge.identity d) = Some (Merge.canon d))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_money_conserved_under_random_transfers;
      prop_utxo_value_never_increases;
      prop_prepare_abort_is_identity;
      prop_tx_serialize_roundtrip;
      prop_merge_combine_commutative;
      prop_merge_combine_associative;
      prop_merge_identity;
    ]

let () =
  Alcotest.run "ledger"
    [
      ( "state",
        [
          Alcotest.test_case "put/get" `Quick test_state_put_get;
          Alcotest.test_case "versions" `Quick test_state_versions_bump;
          Alcotest.test_case "delete" `Quick test_state_delete;
          Alcotest.test_case "root changes" `Quick test_state_root_changes_with_content;
          Alcotest.test_case "root order-free" `Quick test_state_root_insertion_order_free;
          Alcotest.test_case "snapshot/restore" `Quick test_state_snapshot_restore;
        ] );
      ( "locks",
        [
          Alcotest.test_case "acquire/release" `Quick test_locks_acquire_release;
          Alcotest.test_case "conflict" `Quick test_locks_conflict;
          Alcotest.test_case "owner-only release" `Quick test_locks_release_only_owner;
          Alcotest.test_case "acquire_all rollback" `Quick test_locks_acquire_all_rollback;
          Alcotest.test_case "acquire_all keeps prior" `Quick test_locks_acquire_all_keeps_prior_locks;
          Alcotest.test_case "held_by" `Quick test_locks_held_by;
        ] );
      ( "tx",
        [
          Alcotest.test_case "keys" `Quick test_tx_keys_sorted_distinct;
          Alcotest.test_case "stable mapping" `Quick test_tx_shard_mapping_stable;
          Alcotest.test_case "mapping spreads" `Quick test_tx_shard_mapping_spreads;
          Alcotest.test_case "ops partition" `Quick test_tx_ops_for_shard_partitions;
          Alcotest.test_case "cross-shard detection" `Quick test_tx_cross_shard_detection;
          Alcotest.test_case "serialize roundtrip" `Quick test_tx_serialize_roundtrip;
          Alcotest.test_case "deserialize rejects garbage" `Quick
            test_tx_deserialize_rejects_garbage;
          Alcotest.test_case "digest distinguishes" `Quick test_tx_digest_distinguishes;
        ] );
      ( "executor",
        [
          Alcotest.test_case "prepare/commit" `Quick test_executor_prepare_commit;
          Alcotest.test_case "insufficient funds" `Quick test_executor_prepare_insufficient;
          Alcotest.test_case "credit funds debit" `Quick test_executor_credit_funds_debit;
          Alcotest.test_case "abort releases" `Quick test_executor_abort_releases_without_applying;
          Alcotest.test_case "commit needs locks" `Quick test_executor_commit_requires_own_locks;
          Alcotest.test_case "conflict votes NOK" `Quick test_executor_lock_conflict_votes_nok;
          Alcotest.test_case "single path" `Quick test_executor_single_path;
        ] );
      ( "block",
        [
          Alcotest.test_case "append/validate" `Quick test_chain_append_and_validate;
          Alcotest.test_case "link verification" `Quick test_chain_link_verification;
          Alcotest.test_case "tx inclusion proof" `Quick test_chain_tx_inclusion_proof;
        ] );
      ( "chaincode",
        [
          Alcotest.test_case "kvstore write/read" `Quick test_kvstore_write_read;
          Alcotest.test_case "kvstore 2PC cycle" `Quick test_kvstore_prepare_commit_cycle;
          Alcotest.test_case "unknown function" `Quick test_kvstore_unknown_function;
          Alcotest.test_case "smallbank setup" `Quick test_smallbank_setup_and_balance;
          Alcotest.test_case "sendPayment" `Quick test_smallbank_send_payment;
          Alcotest.test_case "overdraft refused" `Quick test_smallbank_overdraft_refused;
          Alcotest.test_case "amalgamate" `Quick test_smallbank_amalgamate;
          Alcotest.test_case "writeCheck/savings" `Quick test_smallbank_write_check_and_savings;
          Alcotest.test_case "preparePayment example" `Quick
            test_smallbank_prepare_payment_running_example;
        ] );
      ( "contract",
        [
          Alcotest.test_case "compile" `Quick test_contract_compile;
          Alcotest.test_case "arity/amount errors" `Quick test_contract_arity_and_amount_errors;
          Alcotest.test_case "define validates" `Quick test_contract_define_validates_params;
          Alcotest.test_case "analyze" `Quick test_contract_analyze;
          Alcotest.test_case "single-shard entry" `Quick test_contract_single_shard_entry;
          Alcotest.test_case "auto-sharded entries" `Quick test_contract_auto_sharded_entries;
          Alcotest.test_case "guarded withdraw" `Quick test_contract_guarded_withdraw;
        ] );
      ( "merge",
        [
          Alcotest.test_case "classify" `Quick test_merge_classify;
          Alcotest.test_case "apply delta" `Quick test_merge_apply_delta;
          Alcotest.test_case "fold order-free" `Quick test_merge_lane_fold_order_free;
          Alcotest.test_case "audit detects divergence" `Quick
            test_merge_audit_detects_divergence;
        ] );
      ( "utxo",
        [
          Alcotest.test_case "mint and spend" `Quick test_utxo_mint_and_spend;
          Alcotest.test_case "double spend" `Quick test_utxo_double_spend_rejected;
          Alcotest.test_case "inflation" `Quick test_utxo_rejects_inflation;
          Alcotest.test_case "duplicate inputs" `Quick test_utxo_rejects_duplicate_inputs;
          Alcotest.test_case "multi-input change" `Quick test_utxo_multi_input_change;
        ] );
      ("properties", qsuite);
    ]
