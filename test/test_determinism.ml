(* Regression test for R1 (determinism): two harness runs with the same
   seed must produce bit-identical metrics.  This is the end-to-end
   guarantee the static rules in ahl_lint protect — if any hash-order
   iteration or wall-clock read sneaks back into lib/, this test is the
   first dynamic tripwire. *)

open Repro_sim
open Repro_consensus

let small_run ~seed =
  Harness.run ~seed ~duration:3.0 ~warmup:0.5 ~variant:Config.ahl_plus ~n:4
    ~topology:(Topology.lan ())
    ~workload:(Harness.Open_loop { rate = 200.0; clients = 8 })
    ()

let check_identical (a : Harness.result) (b : Harness.result) =
  let f = Alcotest.(check (float 0.0)) in
  let i = Alcotest.(check int) in
  f "throughput" a.throughput b.throughput;
  f "latency_mean" a.latency_mean b.latency_mean;
  f "latency_p50" a.latency_p50 b.latency_p50;
  f "latency_p99" a.latency_p99 b.latency_p99;
  i "committed" a.committed b.committed;
  i "view_changes" a.view_changes b.view_changes;
  i "view_change_attempts" a.view_change_attempts b.view_change_attempts;
  i "blocks" a.blocks b.blocks;
  f "consensus_cost_per_block" a.consensus_cost_per_block b.consensus_cost_per_block;
  f "execution_cost_per_block" a.execution_cost_per_block b.execution_cost_per_block;
  i "dropped_requests" a.dropped_requests b.dropped_requests;
  i "dropped_consensus" a.dropped_consensus b.dropped_consensus;
  i "messages_sent" a.messages_sent b.messages_sent

let test_same_seed_same_metrics () =
  let a = small_run ~seed:7L in
  let b = small_run ~seed:7L in
  check_identical a b

let test_run_produces_work () =
  (* Guard against the replay being vacuous: the scenario must commit. *)
  let r = small_run ~seed:7L in
  Alcotest.(check bool) "committed transactions" true (r.Harness.committed > 0)

(* The parallel runner's contract: a figure rendered with 4 worker domains
   is bit-for-bit the figure rendered sequentially — and so are the trace
   and metrics artifacts an installed observability hub records while it
   runs.  Caches are dropped between runs so both actually recompute every
   datapoint. *)
let test_parallel_join_bit_identical () =
  let open Repro_core in
  let render jobs =
    Experiment.set_jobs jobs;
    Experiment.reset_caches ();
    let hub = Repro_obs.Hub.create () in
    Experiment.set_hub (Some hub);
    let rendered = Results.render (Experiment.fig10 ~quick:true ()) in
    Experiment.set_hub None;
    ( rendered,
      Repro_obs.Sink.chrome_json (Repro_obs.Hub.traces hub),
      Repro_obs.Sink.metrics_json (Repro_obs.Hub.metrics hub) )
  in
  let sequential, trace1, metrics1 = render 1 in
  let parallel, trace4, metrics4 = render 4 in
  Experiment.set_jobs 1 (* join the 4 worker domains *);
  Alcotest.(check string) "jobs=4 output equals jobs=1 output" sequential parallel;
  Alcotest.(check bool) "figure is non-trivial" true (String.length sequential > 200);
  Alcotest.(check bool) "jobs=4 trace is byte-identical" true (String.equal trace1 trace4);
  Alcotest.(check bool) "jobs=4 metrics are byte-identical" true (String.equal metrics1 metrics4);
  Alcotest.(check bool) "trace is non-trivial" true (String.length trace1 > 10_000)

(* Same contract for fig13, which now runs the batched + pipelined commit
   path by default: batch ids, flush timing, and sub-batch scheduling must
   all be pure functions of the seeded event order, so the rendered figure
   is byte-identical for any worker count. *)
let test_fig13_parallel_bit_identical () =
  let open Repro_core in
  let render jobs =
    Experiment.set_jobs jobs;
    Experiment.reset_caches ();
    Results.render (Experiment.fig13 ~quick:true ())
  in
  let sequential = render 1 in
  let parallel = render 4 in
  Experiment.set_jobs 1;
  Alcotest.(check string) "jobs=4 fig13 equals jobs=1" sequential parallel;
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "flattened variant is plotted" true (contains sequential "AHL+;flat")

(* Fig. 12 runs literal committee swaps: crash, reset, snapshot transfer,
   checkpoint catch-up.  All of that rides the seeded engine, so the
   rendered figure and the metrics artifact (which carries the ckpt.*
   fetch counters and transfer histograms) must be byte-identical however
   many worker domains render them. *)
let test_fig12_parallel_bit_identical () =
  let open Repro_core in
  let render jobs =
    Experiment.set_jobs jobs;
    Experiment.reset_caches ();
    let hub = Repro_obs.Hub.create () in
    Experiment.set_hub (Some hub);
    let rendered = Results.render (Experiment.fig12 ~quick:true ()) in
    Experiment.set_hub None;
    (rendered, Repro_obs.Sink.metrics_json (Repro_obs.Hub.metrics hub))
  in
  let sequential, metrics1 = render 1 in
  let parallel, metrics4 = render 4 in
  Experiment.set_jobs 1;
  Alcotest.(check string) "jobs=4 fig12 equals jobs=1" sequential parallel;
  Alcotest.(check bool) "jobs=4 metrics artifact is byte-identical" true
    (String.equal metrics1 metrics4);
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "checkpoint catch-up counters exported" true
    (contains metrics1 "ckpt.fetch")

(* Fig. 16's attack panel now runs byzantine members that win the leader
   slot and stall it.  The storm of view changes — campaign votes, backoff
   doubling, capped deadlines — must still be a pure function of the
   seeded event order, so both the rendered figure and the metrics
   artifact (carrying the pbft.vc.reason.* counters the attack fires) are
   byte-identical for any worker count. *)
let test_fig16_parallel_bit_identical () =
  let open Repro_core in
  let render jobs =
    Experiment.set_jobs jobs;
    Experiment.reset_caches ();
    let hub = Repro_obs.Hub.create () in
    Experiment.set_hub (Some hub);
    let rendered = Results.render (Experiment.fig16 ~quick:true ()) in
    Experiment.set_hub None;
    (rendered, Repro_obs.Sink.metrics_json (Repro_obs.Hub.metrics hub))
  in
  let sequential, metrics1 = render 1 in
  let parallel, metrics4 = render 4 in
  Experiment.set_jobs 1;
  Alcotest.(check string) "jobs=4 fig16 equals jobs=1" sequential parallel;
  Alcotest.(check bool) "jobs=4 metrics artifact is byte-identical" true
    (String.equal metrics1 metrics4);
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "view-change reason counters exported" true
    (contains metrics1 "pbft.vc.reason")

(* Fig. 13-fastlane interleaves lane-on and lane-off cells: lane appends,
   block-boundary folds, and the chained merge roots must all be pure
   functions of the seeded event order — plus the hub artifacts, which now
   carry the merge.* counters and fold-depth histograms. *)
let test_fig13_fastlane_parallel_bit_identical () =
  let open Repro_core in
  let render jobs =
    Experiment.set_jobs jobs;
    Experiment.reset_caches ();
    let hub = Repro_obs.Hub.create () in
    Experiment.set_hub (Some hub);
    let rendered = Results.render (Experiment.fig13_fastlane ~quick:true ()) in
    Experiment.set_hub None;
    (rendered, Repro_obs.Sink.metrics_json (Repro_obs.Hub.metrics hub))
  in
  let sequential, metrics1 = render 1 in
  let parallel, metrics4 = render 4 in
  Experiment.set_jobs 1;
  Alcotest.(check string) "jobs=4 fig13_fastlane equals jobs=1" sequential parallel;
  Alcotest.(check bool) "jobs=4 metrics artifact is byte-identical" true
    (String.equal metrics1 metrics4);
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "lane counters exported" true (contains metrics1 "merge.lane_hits");
  Alcotest.(check bool) "lane-on columns plotted" true (contains sequential "lane on")

let () =
  Alcotest.run "determinism"
    [
      ( "harness-replay",
        [
          Alcotest.test_case "same seed, identical metrics" `Quick test_same_seed_same_metrics;
          Alcotest.test_case "scenario is non-trivial" `Quick test_run_produces_work;
        ] );
      ( "parallel-runner",
        [
          Alcotest.test_case "worker count does not change output" `Slow
            test_parallel_join_bit_identical;
          Alcotest.test_case "fig13 batched path is worker-count invariant" `Slow
            test_fig13_parallel_bit_identical;
          Alcotest.test_case "fig12 committee swaps are worker-count invariant" `Slow
            test_fig12_parallel_bit_identical;
          Alcotest.test_case "fig16 leader-stall attacks are worker-count invariant" `Slow
            test_fig16_parallel_bit_identical;
          Alcotest.test_case "fig13_fastlane merge folds are worker-count invariant" `Slow
            test_fig13_fastlane_parallel_bit_identical;
        ] );
    ]
