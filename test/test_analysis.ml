(* Fixture-driven tests for ahl_lint: each rule fires on its positive
   fixture, stays quiet on its negative one, and the suppression/baseline
   machinery behaves as documented.  Fixtures live under
   analysis_fixtures/ and are linted with a [logical_path] that places
   them in the scope under test. *)

open Repro_analysis

let fixture name = Filename.concat "analysis_fixtures" name

let active fs = List.filter (fun f -> not f.Lint_types.suppressed) fs

let count rule fs =
  List.length (List.filter (fun f -> f.Lint_types.rule = rule) (active fs))

let check_fixture ?(logical = "lib/fixture") name =
  Lint.check_file ~logical_path:(Filename.concat logical name) (fixture name)

(* --- R1: determinism ------------------------------------------------ *)

let test_r1_positive () =
  let fs = check_fixture "r1_positive.ml" in
  Alcotest.(check int) "five R1 findings" 5 (count Lint_types.R1 fs);
  Alcotest.(check int) "nothing suppressed" 5 (List.length (active fs))

let test_r1_negative () =
  let fs = check_fixture "r1_negative.ml" in
  Alcotest.(check int) "no findings" 0 (List.length (active fs))

let test_r1_inline_allow () =
  let fs = check_fixture "r1_allowed.ml" in
  Alcotest.(check int) "finding still produced" 1 (List.length fs);
  Alcotest.(check bool) "marked suppressed" true
    (List.for_all (fun f -> f.Lint_types.suppressed) fs);
  Alcotest.(check int) "no active findings" 0 (List.length (active fs))

(* --- R2: comparison safety ------------------------------------------ *)

let test_r2_positive_in_scope () =
  let fs = check_fixture ~logical:"lib/consensus" "r2_positive.ml" in
  Alcotest.(check int) "nine R2 findings" 9 (count Lint_types.R2 fs)

let test_r2_out_of_scope () =
  (* Outside lib/ nothing fires; inside lib/ but outside the narrow R2
     scope only the lib/-wide sort-argument check does (the fixture's
     [List.sort_uniq compare] line). *)
  let fs = check_fixture ~logical:"bench" "r2_positive.ml" in
  Alcotest.(check int) "quiet outside lib" 0 (List.length (active fs));
  let fs = check_fixture ~logical:"lib/sim" "r2_positive.ml" in
  Alcotest.(check int) "only the sort finding elsewhere in lib" 1 (count Lint_types.R2 fs)

let test_r2_negative () =
  let fs = check_fixture ~logical:"lib/ledger" "r2_negative.ml" in
  Alcotest.(check int) "typed comparisons pass" 0 (List.length (active fs))

let test_r2_scope_predicate () =
  Alcotest.(check bool) "consensus in scope" true
    (Lint_rules.in_r2_scope "lib/consensus/pbft.ml");
  Alcotest.(check bool) "ledger in scope" true (Lint_rules.in_r2_scope "lib/ledger/state.ml");
  Alcotest.(check bool) "shard in scope" true (Lint_rules.in_r2_scope "lib/shard/reference.ml");
  Alcotest.(check bool) "sim out of scope" false (Lint_rules.in_r2_scope "lib/sim/engine.ml");
  Alcotest.(check bool) "tests out of scope" false
    (Lint_rules.in_r2_scope "test/test_consensus.ml")

(* --- R2: sort-argument check (lib/-wide) ---------------------------- *)

let test_r2_sort_positive_in_scope () =
  let fs = check_fixture ~logical:"lib/core" "r2_sort_positive.ml" in
  Alcotest.(check int) "three R2 findings" 3 (count Lint_types.R2 fs)

let test_r2_sort_out_of_scope () =
  let fs = check_fixture ~logical:"bench" "r2_sort_positive.ml" in
  Alcotest.(check int) "quiet outside lib/" 0 (List.length (active fs))

let test_r2_sort_no_double_count () =
  (* Where the narrow R2 scope already flags the bare idents, the sort
     rule stays quiet: [List.sort compare] and [List.sort_uniq compare]
     each yield exactly one finding (the ident), not two. *)
  let fs = check_fixture ~logical:"lib/ledger" "r2_sort_positive.ml" in
  Alcotest.(check int) "one finding per bare compare" 3 (count Lint_types.R2 fs)

let test_r2_sort_negative () =
  let fs = check_fixture ~logical:"lib/core" "r2_sort_negative.ml" in
  Alcotest.(check int) "typed comparators pass" 0 (List.length (active fs))

let test_r2_sort_scope_predicate () =
  Alcotest.(check bool) "core in scope" true (Lint_rules.in_r2_sort_scope "lib/core/system.ml");
  Alcotest.(check bool) "sgx in scope" true (Lint_rules.in_r2_sort_scope "lib/sgx/aggregator.ml");
  Alcotest.(check bool) "util in scope" true (Lint_rules.in_r2_sort_scope "lib/util/stats.ml");
  Alcotest.(check bool) "bench out of scope" false
    (Lint_rules.in_r2_sort_scope "bench/bench_main.ml");
  Alcotest.(check bool) "tests out of scope" false
    (Lint_rules.in_r2_sort_scope "test/test_core.ml")

(* --- R3: exception hygiene ------------------------------------------ *)

let test_r3_positive () =
  let fs = check_fixture ~logical:"lib/core" "r3_positive.ml" in
  Alcotest.(check int) "three R3 findings" 3 (count Lint_types.R3 fs);
  List.iter
    (fun f ->
      Alcotest.(check string) "R3 is a warning" "warning"
        (Lint_types.severity_id f.Lint_types.severity))
    (active fs)

let test_r3_negative () =
  let fs = check_fixture ~logical:"lib/core" "r3_negative.ml" in
  Alcotest.(check int) "typed errors and guarded asserts pass" 0 (List.length (active fs))

(* --- R5: quorum hygiene --------------------------------------------- *)

let test_r5_positive_in_scope () =
  let fs = check_fixture ~logical:"lib/consensus" "r5_positive.ml" in
  Alcotest.(check int) "three R5 findings" 3 (count Lint_types.R5 fs)

let test_r5_out_of_scope () =
  let fs = check_fixture ~logical:"lib/sim" "r5_positive.ml" in
  Alcotest.(check int) "quiet outside scope" 0 (List.length (active fs))

let test_r5_negative () =
  let fs = check_fixture ~logical:"lib/shard" "r5_negative.ml" in
  Alcotest.(check int) "helper-derived sizes pass" 0 (List.length (active fs))

let test_r5_scope_predicate () =
  Alcotest.(check bool) "consensus in scope" true
    (Lint_rules.in_r5_scope "lib/consensus/pbft.ml");
  Alcotest.(check bool) "shard in scope" true (Lint_rules.in_r5_scope "lib/shard/reference.ml");
  Alcotest.(check bool) "config allowlisted" false
    (Lint_rules.in_r5_scope "lib/consensus/config.ml");
  Alcotest.(check bool) "quorum allowlisted" false
    (Lint_rules.in_r5_scope "lib/consensus/quorum.ml");
  Alcotest.(check bool) "sizing allowlisted" false (Lint_rules.in_r5_scope "lib/shard/sizing.ml");
  Alcotest.(check bool) "sim out of scope" false (Lint_rules.in_r5_scope "lib/sim/engine.ml")

(* --- R6: console hygiene -------------------------------------------- *)

let test_r6_positive_in_scope () =
  let fs = check_fixture ~logical:"lib/core" "r6_positive.ml" in
  Alcotest.(check int) "five R6 findings" 5 (count Lint_types.R6 fs);
  List.iter
    (fun f ->
      Alcotest.(check string) "R6 is an error" "error"
        (Lint_types.severity_id f.Lint_types.severity))
    (active fs)

let test_r6_out_of_scope () =
  let fs = check_fixture ~logical:"bin" "r6_positive.ml" in
  Alcotest.(check int) "quiet outside lib" 0 (List.length (active fs))

let test_r6_negative () =
  let fs = check_fixture ~logical:"lib/core" "r6_negative.ml" in
  Alcotest.(check int) "sprintf/Buffer/channels pass" 0 (List.length (active fs))

let test_r6_scope_predicate () =
  Alcotest.(check bool) "consensus in scope" true (Lint_rules.in_r6_scope "lib/consensus/pbft.ml");
  Alcotest.(check bool) "obs library in scope" true (Lint_rules.in_r6_scope "lib/obs/metrics.ml");
  Alcotest.(check bool) "sink allowlisted" false (Lint_rules.in_r6_scope "lib/obs/sink.ml");
  Alcotest.(check bool) "table allowlisted" false (Lint_rules.in_r6_scope "lib/util/table.ml");
  Alcotest.(check bool) "bench out of scope" false (Lint_rules.in_r6_scope "bench/main.ml")

(* --- R4: interface coverage (whole-tree scan) ----------------------- *)

let test_r4_scan () =
  let fs =
    active
      (Lint.scan
         ~base:(fixture "r4tree/" )
         ~roots:[ fixture "r4tree" ]
         ~excludes:[] ())
  in
  Alcotest.(check int) "exactly two R4 findings" 2 (List.length fs);
  let missing_mli =
    List.exists
      (fun f -> f.Lint_types.rule = Lint_types.R4 && String.equal f.Lint_types.file "lib/nomli.ml")
      fs
  in
  Alcotest.(check bool) "nomli.ml flagged for missing interface" true missing_mli;
  let unused_export =
    List.exists
      (fun f ->
        f.Lint_types.rule = Lint_types.R4
        && String.equal f.Lint_types.file "lib/widget.mli"
        && f.Lint_types.line = 3)
      fs
  in
  Alcotest.(check bool) "Widget.unused flagged at its .mli line" true unused_export;
  let used_flagged =
    List.exists (fun f -> f.Lint_types.line = 1 && String.equal f.Lint_types.file "lib/widget.mli") fs
  in
  Alcotest.(check bool) "Widget.used not flagged" false used_flagged

(* --- R7: domain safety (cross-module scan) -------------------------- *)

let scan_tree name =
  active
    (Lint.scan
       ~base:(fixture (name ^ "/"))
       ~roots:[ fixture name ]
       ~excludes:[] ())

let rule_findings rule fs = List.filter (fun f -> f.Lint_types.rule = rule) fs

let some_message_contains needle fs =
  List.exists
    (fun f ->
      let msg = f.Lint_types.message in
      let n = String.length needle in
      let rec go i =
        i + n <= String.length msg && (String.equal (String.sub msg i n) needle || go (i + 1))
      in
      go 0)
    fs

let test_r7_scan () =
  let r7 = rule_findings Lint_types.R7 (scan_tree "r7tree") in
  Alcotest.(check bool) "unguarded cell flagged" true (some_message_contains "Gstate.hits" r7);
  Alcotest.(check bool) "flagged at the access site" true
    (List.exists (fun f -> String.equal f.Lint_types.file "lib/gstate.ml") r7);
  Alcotest.(check bool) "guarded-only cell quiet" false
    (some_message_contains "Gstate.errors" r7);
  Alcotest.(check bool) "atomic cell quiet" false (some_message_contains "Gstate.total" r7)

let test_r7_concurrent_mutations () =
  let r7 =
    rule_findings Lint_types.R7
      (List.filter
         (fun f -> String.equal f.Lint_types.file "lib/chan.ml")
         (scan_tree "r7tree"))
  in
  Alcotest.(check int) "both unguarded mutations flagged" 2 (List.length r7);
  Alcotest.(check bool) "field store named" true (some_message_contains ".value <-" r7);
  Alcotest.(check bool) "queue mutation named" true (some_message_contains "Queue.add" r7);
  Alcotest.(check bool) "locked store quiet" true
    (List.for_all (fun f -> f.Lint_types.line > 11) r7)

let test_r8_scan () =
  let fs = scan_tree "r8tree" in
  let r8 = rule_findings Lint_types.R8 fs in
  let r8_in file = List.filter (fun f -> String.equal f.Lint_types.file file) r8 in
  let entropy = r8_in "lib/util/entropy.ml" in
  Alcotest.(check int) "four reachable sources flagged" 4 (List.length entropy);
  Alcotest.(check bool) "polymorphic hash" true (some_message_contains "Hashtbl.hash" entropy);
  Alcotest.(check bool) "ambient random" true (some_message_contains "Random.int" entropy);
  Alcotest.(check bool) "worker identity" true (some_message_contains "Domain.self" entropy);
  Alcotest.(check bool) "gc statistics" true (some_message_contains "Gc.minor_words" entropy);
  Alcotest.(check bool) "unreachable source quiet" false
    (some_message_contains "Random.bool" entropy);
  Alcotest.(check bool) "module init is a root" true
    (some_message_contains "Random.bits" (r8_in "lib/util/boot.ml"));
  (* The merge-fold shape: a sink-scope fold whose tainted variant lets an
     ambient draw reach materialised state fires; the canonical sorted fold
     stays quiet. *)
  let fold = r8_in "lib/ledger/mergefold.ml" in
  Alcotest.(check int) "only the tainted fold fires" 1 (List.length fold);
  Alcotest.(check bool) "the draw reaching merged state is named" true
    (some_message_contains "Random.int" fold);
  Alcotest.(check bool) "tainted fold is below the canonical one" true
    (List.for_all (fun f -> f.Lint_types.line > 6) fold)

(* --- Summary pass ---------------------------------------------------- *)

let summarize ~path src =
  match Lint.parse_impl ~logical:path src with
  | Error f -> Alcotest.failf "summary source did not parse: %s" (Lint_types.to_human f)
  | Ok structure -> Summary.of_structure ~path structure

let test_summary_cells () =
  let s =
    summarize ~path:"lib/m.ml"
      "let a = ref 0\nlet b = Hashtbl.create 16\nlet c = Atomic.make 0\nlet f x = x + 1\n"
  in
  let cell name =
    match List.find_opt (fun (c : Summary.cell) -> String.equal c.c_name name) s.Summary.sm_cells with
    | Some c -> c
    | None -> Alcotest.failf "cell %s not summarized" name
  in
  Alcotest.(check int) "three cells" 3 (List.length s.Summary.sm_cells);
  Alcotest.(check bool) "ref is raw" true ((cell "a").Summary.c_kind = Summary.Raw);
  Alcotest.(check bool) "hashtbl is raw" true ((cell "b").Summary.c_kind = Summary.Raw);
  Alcotest.(check bool) "atomic is sync" true ((cell "c").Summary.c_kind = Summary.Sync);
  Alcotest.(check bool) "function is not a cell" true
    (List.exists (fun (f : Summary.func) -> String.equal f.Summary.fn_name "f") s.Summary.sm_funs)

let test_summary_contexts () =
  let s =
    summarize ~path:"lib/m.ml"
      "let cell = ref 0\n\
       let m = Mutex.create ()\n\
       let locked f = Mutex.lock m; f ()\n\
       let spawn pool = Pool.submit pool (fun () -> cell := 1)\n\
       let safe pool = Pool.submit pool (fun () -> Mutex.protect m (fun () -> cell := 2))\n"
  in
  let fn name =
    match List.find_opt (fun (f : Summary.func) -> String.equal f.Summary.fn_name name) s.Summary.sm_funs with
    | Some f -> f
    | None -> Alcotest.failf "function %s not summarized" name
  in
  Alcotest.(check bool) "module submits" true s.Summary.sm_submits;
  Alcotest.(check bool) "module is concurrency-claiming" true s.Summary.sm_concurrent;
  Alcotest.(check bool) "locked is lock-aware" true (fn "locked").Summary.fn_lock_aware;
  let cell_refs f =
    List.filter (fun (r : Summary.reference) -> r.Summary.r_path = [ "cell" ]) f.Summary.fn_refs
  in
  Alcotest.(check bool) "submit closure ref is in-task and unguarded" true
    (List.exists
       (fun (r : Summary.reference) -> r.Summary.r_in_task && not r.Summary.r_guarded)
       (cell_refs (fn "spawn")));
  Alcotest.(check bool) "protected closure ref is guarded" true
    (List.for_all (fun (r : Summary.reference) -> r.Summary.r_guarded) (cell_refs (fn "safe")))

(* --- Emitters: JSON and SARIF ---------------------------------------- *)

let sample_findings () =
  [
    Lint_types.make ~rule:Lint_types.R7 ~file:"lib/a.ml" ~line:3 ~col:5 "race on \"cell\"";
    Lint_types.make ~severity:Lint_types.Warning ~rule:Lint_types.R8 ~file:"bin/b.ml" ~line:0
      ~col:0 "entropy\nwith newline";
  ]

let test_json_emitter () =
  let js = Lint_types.to_json (sample_findings ()) in
  Alcotest.(check bool) "parses as JSON" true (Mini_json.ok js);
  Alcotest.(check bool) "empty list is valid" true (Mini_json.ok (Lint_types.to_json []))

let test_sarif_emitter () =
  let sarif = Lint_types.to_sarif (sample_findings ()) in
  Alcotest.(check bool) "parses as JSON" true (Mini_json.ok sarif);
  let has needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length sarif
      && (String.equal (String.sub sarif i n) needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "declares 2.1.0" true (has "\"version\":\"2.1.0\"");
  Alcotest.(check bool) "names the driver" true (has "\"name\":\"ahl_lint\"");
  Alcotest.(check bool) "carries rule metadata" true (has "\"id\":\"R7\"");
  Alcotest.(check bool) "describes every rule" true
    (List.for_all
       (fun r -> not (String.equal (Lint_types.rule_description r) ""))
       [ Lint_types.R7; Lint_types.R8 ]);
  Alcotest.(check bool) "results carry locations" true (has "physicalLocation");
  Alcotest.(check bool) "line 0 clamped to 1" true (has "\"startLine\":1");
  Alcotest.(check bool) "empty log still valid" true (Mini_json.ok (Lint_types.to_sarif []))

(* --- Baseline ratchet ----------------------------------------------- *)

let with_baseline contents k =
  let path = Filename.temp_file "ahl_lint_test" ".baseline" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      match Lint.load_baseline path with
      | Error msg -> Alcotest.failf "baseline did not load: %s" msg
      | Ok b -> k b)

let mk_r3 ~line =
  Lint_types.make ~severity:Lint_types.Warning ~rule:Lint_types.R3 ~file:"lib/core/x.ml" ~line
    ~col:1 "failwith"

let test_baseline_within_allowance () =
  with_baseline "# comment\nR3 lib/core/x.ml 2\n" (fun b ->
      let remaining = Lint.apply_baseline ~baseline:b [ mk_r3 ~line:3; mk_r3 ~line:9 ] in
      Alcotest.(check int) "covered group dropped" 0 (List.length remaining))

let test_baseline_exceeded () =
  with_baseline "R3 lib/core/x.ml 1\n" (fun b ->
      let remaining = Lint.apply_baseline ~baseline:b [ mk_r3 ~line:3; mk_r3 ~line:9 ] in
      Alcotest.(check int) "growth reports the whole group" 2 (List.length remaining))

let test_baseline_rejects_r1_r2 () =
  with_baseline
    "R1 lib/sim/engine.ml 1\nR2 lib/consensus/pbft.ml 3\nR6 lib/core/results.ml 1\n\
     R7 lib/core/experiment.ml 2\n"
    (fun b ->
      let remaining = Lint.apply_baseline ~baseline:b [] in
      Alcotest.(check int) "all four entries rejected" 4 (List.length remaining);
      List.iter
        (fun f ->
          Alcotest.(check string) "rejection is an error" "error"
            (Lint_types.severity_id f.Lint_types.severity))
        remaining)

let test_baseline_missing_file_is_empty () =
  match Lint.load_baseline "analysis_fixtures/no_such_baseline" with
  | Error msg -> Alcotest.failf "missing baseline should be empty, got: %s" msg
  | Ok b ->
      Alcotest.(check int) "no findings dropped or added" 1
        (List.length (Lint.apply_baseline ~baseline:b [ mk_r3 ~line:3 ]))

let () =
  Alcotest.run "analysis"
    [
      ( "r1-determinism",
        [
          Alcotest.test_case "positive fixture fires" `Quick test_r1_positive;
          Alcotest.test_case "negative fixture quiet" `Quick test_r1_negative;
          Alcotest.test_case "inline allow suppresses" `Quick test_r1_inline_allow;
        ] );
      ( "r2-comparison",
        [
          Alcotest.test_case "positive fixture fires in scope" `Quick test_r2_positive_in_scope;
          Alcotest.test_case "quiet outside scope" `Quick test_r2_out_of_scope;
          Alcotest.test_case "negative fixture quiet" `Quick test_r2_negative;
          Alcotest.test_case "scope predicate" `Quick test_r2_scope_predicate;
        ] );
      ( "r2-sort-argument",
        [
          Alcotest.test_case "positive fixture fires in lib scope" `Quick
            test_r2_sort_positive_in_scope;
          Alcotest.test_case "quiet outside lib" `Quick test_r2_sort_out_of_scope;
          Alcotest.test_case "no double count in narrow scope" `Quick test_r2_sort_no_double_count;
          Alcotest.test_case "negative fixture quiet" `Quick test_r2_sort_negative;
          Alcotest.test_case "scope predicate" `Quick test_r2_sort_scope_predicate;
        ] );
      ( "r3-exceptions",
        [
          Alcotest.test_case "positive fixture fires" `Quick test_r3_positive;
          Alcotest.test_case "negative fixture quiet" `Quick test_r3_negative;
        ] );
      ( "r5-quorum",
        [
          Alcotest.test_case "positive fixture fires in scope" `Quick test_r5_positive_in_scope;
          Alcotest.test_case "quiet outside scope" `Quick test_r5_out_of_scope;
          Alcotest.test_case "negative fixture quiet" `Quick test_r5_negative;
          Alcotest.test_case "scope predicate" `Quick test_r5_scope_predicate;
        ] );
      ( "r6-console",
        [
          Alcotest.test_case "positive fixture fires in scope" `Quick test_r6_positive_in_scope;
          Alcotest.test_case "quiet outside lib" `Quick test_r6_out_of_scope;
          Alcotest.test_case "negative fixture quiet" `Quick test_r6_negative;
          Alcotest.test_case "scope predicate" `Quick test_r6_scope_predicate;
        ] );
      ("r4-interfaces", [ Alcotest.test_case "tree scan" `Quick test_r4_scan ]);
      ( "r7-domain-safety",
        [
          Alcotest.test_case "tree scan: task-reachable access" `Quick test_r7_scan;
          Alcotest.test_case "tree scan: hand-rolled sync mutations" `Quick
            test_r7_concurrent_mutations;
        ] );
      ("r8-nondeterminism", [ Alcotest.test_case "tree scan" `Quick test_r8_scan ]);
      ( "summary-pass",
        [
          Alcotest.test_case "cell classification" `Quick test_summary_cells;
          Alcotest.test_case "guard and task contexts" `Quick test_summary_contexts;
        ] );
      ( "emitters",
        [
          Alcotest.test_case "json well-formed" `Quick test_json_emitter;
          Alcotest.test_case "sarif 2.1.0 shape" `Quick test_sarif_emitter;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "within allowance" `Quick test_baseline_within_allowance;
          Alcotest.test_case "exceeded reports group" `Quick test_baseline_exceeded;
          Alcotest.test_case "R1/R2/R6/R7 never baselined" `Quick test_baseline_rejects_r1_r2;
          Alcotest.test_case "missing file is empty" `Quick test_baseline_missing_file_is_empty;
        ] );
    ]
