(* Tests for lib/check: schedule witnesses round-trip bit-exactly, the
   oracles flag exactly the traces they should, the shrinker is greedy and
   budget-bounded, and the headline differential holds — HL's unattested
   quorums at N = 2f+1 violate agreement under the scripted split-brain
   attack while AHL/AHL+/AHLR survive the identical schedules. *)

open Repro_util
open Repro_consensus
open Repro_check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1)) in
  nn = 0 || go 0

let sched ?(byz = [ 0 ]) ?(split_brain = true) ?(stale = false) ?(silent = []) ?leader
    ?(requests = 8) ?(events = []) () =
  {
    Schedule.byz;
    split_brain;
    stale_replay = stale;
    silent_toward = silent;
    leader;
    requests;
    events;
  }

let ev ?(start = 1.0) ?(stop = 2.0) kind = { Schedule.start; stop; kind }

(* ------------------------------------------------------------------ *)
(* Schedules                                                           *)
(* ------------------------------------------------------------------ *)

let test_schedule_roundtrip () =
  let s =
    sched ~byz:[ 0; 1 ] ~stale:true ~silent:[ 4 ] ~requests:12
      ~events:
        [
          ev ~start:0.25 ~stop:1.75 (Schedule.Drop 0.125);
          ev ~start:(1.0 /. 3.0) ~stop:3.0 (Schedule.Jitter 0.2);
          ev ~start:0.5 ~stop:2.5 (Schedule.Duplicate 0.3);
          ev ~start:2.0 ~stop:4.0 (Schedule.Partition [ 0; 2 ]);
          ev ~start:0.0 ~stop:5.0 (Schedule.Silence { from_ = 1; toward = 3 });
        ]
      ()
  in
  let s' = Schedule.of_string (Schedule.to_string s) in
  Alcotest.(check string) "string form round-trips" (Schedule.to_string s) (Schedule.to_string s');
  Alcotest.(check (list int)) "byz preserved" s.Schedule.byz s'.Schedule.byz;
  Alcotest.(check int) "requests preserved" s.Schedule.requests s'.Schedule.requests;
  Alcotest.(check int) "events preserved" 5 (List.length s'.Schedule.events)

let test_schedule_leader_token () =
  (* Each leader strategy round-trips through the optional lead= token. *)
  List.iter
    (fun leader ->
      let s = sched ~leader () in
      let s' = Schedule.of_string (Schedule.to_string s) in
      Alcotest.(check string) "leader witness round-trips" (Schedule.to_string s)
        (Schedule.to_string s');
      Alcotest.(check bool) "leader preserved" true (s'.Schedule.leader = Some leader))
    [ Schedule.Stall; Schedule.Serve_only [ 0; 2 ]; Schedule.Drip 1.9 ];
  (* Witnesses predating the leader palette parse verbatim: no token
     means no leader attack. *)
  let old = "v1 byz=0 sb=1 stale=0 quiet=- req=4" in
  let s = Schedule.of_string old in
  Alcotest.(check bool) "pre-palette witness has no leader" true (s.Schedule.leader = None);
  Alcotest.(check string) "and still prints without the token" old (Schedule.to_string s)

let test_schedule_rejects_malformed () =
  let malformed w =
    match Schedule.of_string w with
    | exception Schedule.Invalid_witness _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "wrong version" true (malformed "v2 byz=0 sb=1 stale=0 quiet=- req=4");
  Alcotest.(check bool) "garbage" true (malformed "garbage");
  Alcotest.(check bool) "bad event" true (malformed "v1 byz=0 sb=1 stale=0 quiet=- req=4 zap:1:2")

let test_schedule_generation_deterministic () =
  let gen () = Schedule.generate (Rng.split_named (Rng.create 42L) "0") ~n:5 ~f:2 in
  Alcotest.(check string) "same rng, same schedule" (Schedule.to_string (gen ()))
    (Schedule.to_string (gen ()));
  let s = gen () in
  Alcotest.(check (list int)) "byz clique is 0..f-1" [ 0; 1 ] s.Schedule.byz;
  Alcotest.(check bool) "split-brain scripted when f >= 1" true s.Schedule.split_brain;
  Alcotest.(check bool) "even request count" true (s.Schedule.requests mod 2 = 0)

let test_schedule_heal_active_size () =
  let e = ev ~start:1.0 ~stop:2.0 (Schedule.Drop 0.5) in
  Alcotest.(check bool) "active inside window" true (Schedule.active e ~at:1.5);
  Alcotest.(check bool) "inactive at stop" false (Schedule.active e ~at:2.0);
  Alcotest.(check bool) "inactive before" false (Schedule.active e ~at:0.5);
  let s = sched ~events:[ e; ev ~start:0.0 ~stop:7.5 (Schedule.Jitter 0.1) ] () in
  Alcotest.(check (float 0.0)) "heal time is last stop" 7.5 (Schedule.heal_time s);
  Alcotest.(check (float 0.0)) "no events heal at 0" 0.0 (Schedule.heal_time (sched ()));
  let big = sched ~byz:[ 0; 1 ] ~stale:true ~silent:[ 2 ] ~requests:8 ~events:[ e ] () in
  Alcotest.(check bool) "size shrinks with structure" true
    (Schedule.size big > Schedule.size (sched ~requests:2 ()))

(* ------------------------------------------------------------------ *)
(* Oracles (synthetic traces)                                          *)
(* ------------------------------------------------------------------ *)

let commit ?(member = 1) ?(view = 0) ?(digest = 7) ?(ids = []) ?(at = 1.0) seq =
  { Trace.member; view; seq; digest; ids; at }

let outcome ?(commits = []) ?(submitted = []) ?(honest = [ 1; 2 ]) ?(observer = 1) () =
  {
    Testbed.commits;
    submitted;
    honest;
    observer;
    heal_time = 0.0;
    horizon = 30.0;
    view_changes = 0;
  }

let test_oracle_agreement () =
  let o =
    outcome
      ~commits:[ commit ~member:1 ~digest:7 1; commit ~member:2 ~digest:9 1 ]
      ~submitted:[] ()
  in
  (match Oracle.check o with
  | [ Oracle.Agreement { seq = 1; digest_a = 7; digest_b = 9; _ } ] -> ()
  | vs -> Alcotest.failf "expected one agreement violation, got [%s]"
            (String.concat "; " (List.map Oracle.to_string vs)));
  (* A byzantine replica's conflicting commit is not a violation. *)
  let o =
    outcome
      ~commits:[ commit ~member:1 ~digest:7 1; commit ~member:0 ~digest:9 1 ]
      ~honest:[ 1; 2 ] ()
  in
  Alcotest.(check int) "byzantine commits ignored" 0 (List.length (Oracle.check o))

let test_oracle_order_gap () =
  let o = outcome ~commits:[ commit 1; commit 3 ] () in
  match Oracle.check o with
  | [ Oracle.Order { member = 1; missing_seq = 2; max_seq = 3 } ] -> ()
  | vs ->
      Alcotest.failf "expected one order violation, got [%s]"
        (String.concat "; " (List.map Oracle.to_string vs))

let test_oracle_validity () =
  let o = outcome ~commits:[ commit ~ids:[ 5 ] 1 ] ~submitted:[ 0; 1 ] () in
  match Oracle.check o with
  | [ Oracle.Validity { member = 1; seq = 1; req_id = 5 } ] -> ()
  | vs ->
      Alcotest.failf "expected one validity violation, got [%s]"
        (String.concat "; " (List.map Oracle.to_string vs))

let test_oracle_liveness_only_when_safe () =
  (* Submitted id 1 never executes at the observer: liveness violation. *)
  let o = outcome ~commits:[ commit ~ids:[ 0 ] 1 ] ~submitted:[ 0; 1 ] () in
  (match Oracle.check o with
  | [ Oracle.Liveness { missing = 1; first_missing = 1 } ] -> ()
  | vs ->
      Alcotest.failf "expected one liveness violation, got [%s]"
        (String.concat "; " (List.map Oracle.to_string vs)));
  (* The same gap is NOT reported when the run is already unsafe. *)
  let unsafe =
    outcome
      ~commits:[ commit ~member:1 ~digest:7 ~ids:[ 0 ] 1; commit ~member:2 ~digest:9 1 ]
      ~submitted:[ 0; 1 ] ()
  in
  let vs = Oracle.check unsafe in
  Alcotest.(check bool) "safety reported" true (List.for_all Oracle.is_safety vs);
  Alcotest.(check bool) "liveness suppressed" true
    (not (List.exists (fun v -> not (Oracle.is_safety v)) vs))

let test_oracle_clean_run () =
  let o =
    outcome
      ~commits:[ commit ~ids:[ 0 ] 1; commit ~member:2 ~ids:[ 0 ] 1; commit ~ids:[ 1 ] 2 ]
      ~submitted:[ 0; 1 ] ~observer:1 ()
  in
  Alcotest.(check int) "no violations" 0 (List.length (Oracle.check o))

let test_oracle_kinds () =
  let ag = Oracle.Agreement { seq = 1; member_a = 1; view_a = 0; digest_a = 7; member_b = 2; view_b = 0; digest_b = 9 } in
  let lv = Oracle.Liveness { missing = 1; first_missing = 0 } in
  Alcotest.(check bool) "agreement is safety" true (Oracle.is_safety ag);
  Alcotest.(check bool) "liveness is not" false (Oracle.is_safety lv);
  Alcotest.(check bool) "same kind" true (Oracle.same_kind ag ag);
  Alcotest.(check bool) "different kind" false (Oracle.same_kind ag lv)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let test_shrink_candidates () =
  let s =
    sched ~byz:[ 0; 1 ] ~stale:true ~silent:[ 2 ] ~requests:8
      ~events:[ ev (Schedule.Drop 0.5); ev (Schedule.Jitter 0.1) ]
      ()
  in
  (* 2 event drops + stale off + silence off + byz clique shrink + half
     the requests = 6 one-step candidates. *)
  Alcotest.(check int) "one-step candidates" 6 (List.length (Shrink.candidates s));
  (* The clique never shrinks to empty: the attack needs one byzantine. *)
  let single = sched ~byz:[ 0 ] ~requests:2 () in
  Alcotest.(check int) "minimal schedule has no candidates" 0
    (List.length (Shrink.candidates single))

let test_shrink_minimize_greedy_and_bounded () =
  let base =
    sched ~byz:[ 0 ] ~stale:true ~silent:[ 3 ] ~requests:16
      ~events:[ ev (Schedule.Drop 0.5); ev (Schedule.Jitter 0.1) ]
      ()
  in
  let v = Oracle.Validity { member = 1; seq = 1; req_id = 99 } in
  (* Bug reproduces on every candidate: the shrinker must reach the
     structural floor. *)
  let shrunk, reruns = Shrink.minimize ~replay:(fun _ -> Some v) ~budget:64 base v in
  Alcotest.(check int) "all events dropped" 0 (List.length shrunk.Schedule.events);
  Alcotest.(check bool) "stale replay disabled" false shrunk.Schedule.stale_replay;
  Alcotest.(check (list int)) "silence dropped" [] shrunk.Schedule.silent_toward;
  Alcotest.(check int) "requests at floor" 2 shrunk.Schedule.requests;
  Alcotest.(check bool) "within budget" true (reruns <= 64);
  (* A replay that never reproduces keeps the original schedule. *)
  let kept, _ = Shrink.minimize ~replay:(fun _ -> None) ~budget:8 base v in
  Alcotest.(check string) "irreproducible keeps original" (Schedule.to_string base)
    (Schedule.to_string kept);
  (* Budget 0 spends no replays at all. *)
  let _, spent = Shrink.minimize ~replay:(fun _ -> Some v) ~budget:0 base v in
  Alcotest.(check int) "budget 0 replays nothing" 0 spent

(* ------------------------------------------------------------------ *)
(* Testbed determinism                                                 *)
(* ------------------------------------------------------------------ *)

let pp_commits o = List.map (Format.asprintf "%a" Trace.pp_commit) o.Testbed.commits

let test_testbed_deterministic () =
  let s = Explore.schedule_for ~seed:11L ~n:3 ~f:1 0 in
  let run () = Testbed.run ~engine_seed:11L ~variant:Explore.hl_small ~n:3 s in
  let a = run () and b = run () in
  Alcotest.(check (list string)) "bit-identical committed traces" (pp_commits a) (pp_commits b);
  Alcotest.(check int) "same view changes" a.Testbed.view_changes b.Testbed.view_changes

let test_testbed_horizon_uses_grace () =
  let s = sched ~requests:2 ~events:[ ev ~start:0.0 ~stop:1.5 (Schedule.Drop 0.0) ] () in
  let o = Testbed.run ~engine_seed:3L ~variant:Config.ahl ~n:3 s in
  Alcotest.(check (float 1e-9)) "heal time from schedule" 1.5 o.Testbed.heal_time;
  Alcotest.(check (float 1e-9)) "horizon grants the grace window"
    (o.Testbed.heal_time +. Testbed.grace) o.Testbed.horizon;
  Alcotest.(check (list int)) "honest excludes the byzantine clique" [ 1; 2 ] o.Testbed.honest

(* ------------------------------------------------------------------ *)
(* Explorer and the headline differential                              *)
(* ------------------------------------------------------------------ *)

let test_variant_names () =
  let name v = match v with Some v -> v.Config.name | None -> "?" in
  Alcotest.(check string) "hl2f1" "HL@2f+1" (name (Explore.variant_of_name "hl2f1"));
  Alcotest.(check string) "hl_small is the same config" Explore.hl_small.Config.name
    (name (Explore.variant_of_name "hl@2f+1"));
  Alcotest.(check string) "ahl+" "AHL+" (name (Explore.variant_of_name "ahl+"));
  Alcotest.(check string) "ahlr" "AHLR" (name (Explore.variant_of_name "ahlr"));
  Alcotest.(check bool) "unknown rejected" true
    (Option.is_none (Explore.variant_of_name "bogus"))

let test_trial_seeding () =
  Alcotest.(check int64) "engine seed is base + index" 14L (Explore.engine_seed_for ~seed:11L 3);
  let a = Explore.schedule_for ~seed:7L ~n:3 ~f:1 2 in
  let b = Explore.schedule_for ~seed:7L ~n:3 ~f:1 2 in
  Alcotest.(check string) "schedule_for is deterministic" (Schedule.to_string a)
    (Schedule.to_string b)

let test_differential_holds_and_witness_replays () =
  let d = Explore.differential ~f:1 ~trials:3 ~seed:11L ~budget:16 in
  Alcotest.(check bool) "differential holds" true d.Explore.holds;
  Alcotest.(check bool) "unattested 2f+1 violates safety" true
    (d.Explore.broken.Explore.safety_violations > 0);
  List.iter
    (fun r ->
      Alcotest.(check int)
        (r.Explore.variant_name ^ " stays safe on identical schedules")
        0 r.Explore.safety_violations)
    d.Explore.safe;
  (* The shrunk witness replays bit-identically from (seed, string) alone. *)
  let t =
    List.find (fun t -> Option.is_some t.Explore.shrunk) d.Explore.broken.Explore.trials
  in
  let w = Option.get t.Explore.shrunk in
  let n = d.Explore.broken.Explore.n in
  let replay s =
    List.map Oracle.to_string
      (Explore.replay ~variant:Explore.hl_small ~n ~engine_seed:t.Explore.engine_seed s)
  in
  let direct = replay w in
  Alcotest.(check (list string)) "witness replays from its printed form" direct
    (replay (Schedule.of_string (Schedule.to_string w)));
  Alcotest.(check bool) "shrunk witness still violates" true (direct <> [])

let test_leader_stall_differential_holds () =
  (* Same parameters as the @check rule in ./dune. *)
  let d = Explore.leader_stall_differential ~f:1 ~trials:3 ~seed:7L ~budget:16 in
  Alcotest.(check bool) "leader-stall differential holds" true d.Explore.holds;
  List.iteri
    (fun i t ->
      Alcotest.(check string) "trials run the scripted leader schedule"
        (Schedule.to_string (Explore.leader_schedule ~n:d.Explore.broken.Explore.n ~f:1 i))
        (Schedule.to_string t.Explore.schedule))
    d.Explore.broken.Explore.trials;
  Alcotest.(check int) "a stalling leader never breaks safety" 0
    d.Explore.broken.Explore.safety_violations;
  let stall t =
    match t.Explore.schedule.Schedule.leader with
    | Some Schedule.Stall -> true
    | _ -> false
  in
  List.iter
    (fun t ->
      if stall t then
        Alcotest.(check bool) "broken variant storms on every stall trial" true
          (t.Explore.view_changes >= 1))
    d.Explore.broken.Explore.trials;
  List.iter
    (fun r ->
      Alcotest.(check int)
        (r.Explore.variant_name ^ " rides out the leader attacks")
        0
        (r.Explore.safety_violations + r.Explore.liveness_violations))
    d.Explore.safe;
  (* Only the relay watchdog catches selective serving, so AHLR alone must
     storm on the serve-only trials too. *)
  let ahlr =
    List.find (fun r -> r.Explore.variant_name = Config.ahlr.Config.name) d.Explore.safe
  in
  List.iter
    (fun t ->
      Alcotest.(check bool) "AHLR storms on every trial" true (t.Explore.view_changes >= 1))
    ahlr.Explore.trials

let test_shrink_drops_leader_attack () =
  let s = sched ~byz:[ 0 ] ~split_brain:false ~leader:Schedule.Stall ~requests:2 () in
  let cs = Shrink.candidates s in
  Alcotest.(check int) "leader attack is the only shrinkable axis" 1 (List.length cs);
  Alcotest.(check bool) "the candidate turns the leader honest" true
    (List.for_all (fun c -> c.Schedule.leader = None) cs)

let test_explore_json () =
  let r = Explore.run ~variant:Config.ahl ~n:3 ~f:1 ~trials:1 ~seed:11L ~budget:4 in
  let j = Explore.json_of_report r in
  Alcotest.(check bool) "variant named" true (contains j "\"variant\":\"AHL\"");
  Alcotest.(check bool) "per-trial results" true (contains j "\"engine_seed\":11");
  let s = Explore.json_summary ~wall_time:1.5 [ r ] in
  Alcotest.(check bool) "summary carries wall time" true (contains s "\"wall_time_s\":1.500");
  Alcotest.(check bool) "summary embeds the report" true (contains s "\"safety_violations\":0")

(* ------------------------------------------------------------------ *)
(* Cross-shard schedules                                                *)
(* ------------------------------------------------------------------ *)

open Repro_core

let xsched ?(txs = 3) ?(malicious = []) ?(overdraft = []) ?(contended = false) ?(faults = []) ()
    =
  { Xschedule.txs; malicious; overdraft; contended; faults }

let xfault ?(start = 1.0) ?(stop = 4.0) kind = { Xschedule.start; stop; kind }

let test_xschedule_roundtrip () =
  let s =
    xsched ~txs:5 ~malicious:[ 0; 3 ] ~overdraft:[ 1 ] ~contended:true
      ~faults:
        [
          xfault ~start:0.25 ~stop:(10.0 /. 3.0)
            (Xschedule.Drop_leg { leg = Xschedule.Vote; p = 1.0 /. 3.0 });
          xfault (Xschedule.Dup_leg { leg = Xschedule.Decision; p = 0.5 });
          xfault (Xschedule.Delay_leg { leg = Xschedule.Prepare; d = 7.25 });
          xfault (Xschedule.Crash_ref { member = 2 });
          xfault (Xschedule.Cut_shard 1);
        ]
      ()
  in
  let s' = Xschedule.of_string (Xschedule.to_string s) in
  Alcotest.(check string) "witness round-trips bit-exactly" (Xschedule.to_string s)
    (Xschedule.to_string s');
  Alcotest.(check int) "faults preserved" 5 (List.length s'.Xschedule.faults);
  Alcotest.(check (list int)) "malicious preserved" [ 0; 3 ] s'.Xschedule.malicious;
  Alcotest.(check bool) "contention preserved" true s'.Xschedule.contended

let test_xschedule_rejects_malformed () =
  let malformed w =
    match Xschedule.of_string w with
    | exception Xschedule.Invalid_witness _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "wrong version" true (malformed "v1 txs=2 mal=- over=- hot=0");
  Alcotest.(check bool) "garbage" true (malformed "garbage");
  Alcotest.(check bool) "unknown fault" true (malformed "x1 txs=2 mal=- over=- hot=0 zap:1:2");
  Alcotest.(check bool) "unknown leg" true
    (malformed "x1 txs=2 mal=- over=- hot=0 dropleg:xyz:0.5:1:2")

let test_xschedule_generation_deterministic () =
  let gen () =
    Xschedule.generate (Rng.split_named (Rng.create 42L) "0") ~shards:3 ~committee_size:4
  in
  Alcotest.(check string) "same rng, same schedule" (Xschedule.to_string (gen ()))
    (Xschedule.to_string (gen ()));
  let s = gen () in
  Alcotest.(check bool) "at least two txs" true (s.Xschedule.txs >= 2);
  Alcotest.(check bool) "at least one fault" true (s.Xschedule.faults <> []);
  let e = xfault ~start:1.0 ~stop:4.0 (Xschedule.Cut_shard 0) in
  Alcotest.(check bool) "active inside window" true (Xschedule.active e ~at:2.0);
  Alcotest.(check bool) "inactive at stop" false (Xschedule.active e ~at:4.0);
  Alcotest.(check (float 0.0)) "heal time is last stop" 4.0
    (Xschedule.heal_time (xsched ~faults:[ e ] ()));
  Alcotest.(check bool) "size shrinks with structure" true
    (Xschedule.size (xsched ~txs:6 ~malicious:[ 0 ] ~faults:[ e ] ())
    > Xschedule.size (xsched ~txs:2 ()))

(* Synthetic outcomes for the cross-shard oracles. *)

let xinfo ?(honest = true) ?(participants = [ 0; 1 ]) ?outcome txid =
  { Xtestbed.txid; honest; participants; outcome }

let xdecision ?(at = 1.0) ~txid ~shard commit = { System.at; txid; shard; commit }

let xoutcome ?(mode = System.With_reference) ?(infos = []) ?(decisions = []) ?(stuck_locks = 0)
    ?(total = (2000, 2000)) ?(ref_decisions = []) ?(ckpt_certs = []) ?(observer_lag = [])
    ?(merge_audit = []) () =
  let total_before, total_after = total in
  {
    Xtestbed.mode;
    infos;
    decisions;
    stuck_locks;
    total_before;
    total_after;
    ref_decisions;
    horizon = 60.0;
    registry_size = 0;
    ckpt_certs;
    observer_lag;
    merge_audit;
    merge_roots = [];
  }

let test_xoracle_atomicity () =
  (* tx 1 committed on shard 0, undecided on shard 1: partial commit. *)
  let o =
    xoutcome
      ~infos:[ xinfo ~outcome:System.Committed 1 ]
      ~decisions:[ xdecision ~txid:1 ~shard:0 true ]
      ()
  in
  (match Xoracle.check o with
  | [ Xoracle.Atomicity { txid = 1; committed_on = [ 0 ]; aborted_on = []; missing = [ 1 ] } ]
    ->
      ()
  | vs ->
      Alcotest.failf "expected one atomicity violation, got [%s]"
        (String.concat "; " (List.map Xoracle.to_string vs)));
  (* Commit-on-some with abort-elsewhere is the same bug. *)
  let o =
    xoutcome
      ~infos:[ xinfo ~outcome:System.Committed 1 ]
      ~decisions:[ xdecision ~txid:1 ~shard:0 true; xdecision ~txid:1 ~shard:1 false ]
      ()
  in
  Alcotest.(check bool) "commit+abort fires" true
    (List.exists
       (function Xoracle.Atomicity { aborted_on = [ 1 ]; _ } -> true | _ -> false)
       (Xoracle.check o));
  (* A single-shard transaction cannot violate atomicity. *)
  let o =
    xoutcome
      ~infos:[ xinfo ~participants:[ 0 ] ~outcome:System.Committed 1 ]
      ~decisions:[ xdecision ~txid:1 ~shard:0 true ]
      ()
  in
  Alcotest.(check int) "single participant exempt" 0 (List.length (Xoracle.check o))

let test_xoracle_divergence_and_conservation () =
  let o =
    xoutcome
      ~infos:[ xinfo ~outcome:System.Aborted 1 ]
      ~decisions:[ xdecision ~txid:1 ~shard:0 false; xdecision ~txid:1 ~shard:1 false ]
      ~ref_decisions:[ (1, true) ] ()
  in
  (match Xoracle.check o with
  | [ Xoracle.Divergence { txid = 1; ref_commit = true; _ }; Xoracle.Divergence _ ] -> ()
  | vs ->
      Alcotest.failf "expected two divergences, got [%s]"
        (String.concat "; " (List.map Xoracle.to_string vs)));
  let o = xoutcome ~total:(2000, 1995) () in
  match Xoracle.check o with
  | [ Xoracle.Conservation { before = 2000; after = 1995 } ] -> ()
  | vs ->
      Alcotest.failf "expected one conservation violation, got [%s]"
        (String.concat "; " (List.map Xoracle.to_string vs))

let test_xoracle_liveness_only_when_safe () =
  (* Undecided honest tx + stuck locks on an otherwise safe run. *)
  let o = xoutcome ~infos:[ xinfo 1; xinfo 2 ] ~stuck_locks:2 () in
  let vs = Xoracle.check o in
  Alcotest.(check bool) "stuck locks reported" true
    (List.exists (function Xoracle.Stuck_locks { count = 2 } -> true | _ -> false) vs);
  Alcotest.(check bool) "liveness reported with first txid" true
    (List.exists (function Xoracle.Liveness { missing = 2; first = 1 } -> true | _ -> false) vs);
  (* Same progress gaps are suppressed when the run is unsafe. *)
  let unsafe = xoutcome ~infos:[ xinfo 1 ] ~stuck_locks:2 ~total:(10, 9) () in
  Alcotest.(check bool) "only safety reported" true
    (List.for_all Xoracle.is_safety (Xoracle.check unsafe));
  (* A dishonest client's undecided tx only counts with a reference
     committee on duty. *)
  let abandoned mode = xoutcome ~mode ~infos:[ xinfo ~honest:false 1 ] () in
  Alcotest.(check bool) "R owes silent clients a decision" true
    (Xoracle.check (abandoned System.With_reference) <> []);
  Alcotest.(check int) "client-driven owes nothing" 0
    (List.length (Xoracle.check (abandoned System.Client_driven)))

let test_xoracle_ckpt_divergence () =
  (* Two members of committee 0 certify different roots for seq 16. *)
  let o =
    xoutcome
      ~ckpt_certs:[ (0, 0, 16, 111); (0, 1, 16, 222); (1, 0, 16, 333); (1, 1, 32, 444) ]
      ()
  in
  (match Xoracle.check o with
  | [ Xoracle.Ckpt_divergence { committee = 0; seq = 16; roots = [ 111; 222 ] } ] -> ()
  | vs ->
      Alcotest.failf "expected one ckpt divergence, got [%s]"
        (String.concat "; " (List.map Xoracle.to_string vs)));
  Alcotest.(check bool) "ckpt divergence is a safety violation" true
    (List.for_all Xoracle.is_safety (Xoracle.check o));
  (* It suppresses liveness-class findings like any safety violation. *)
  let with_lag =
    xoutcome ~ckpt_certs:[ (0, 0, 16, 111); (0, 1, 16, 222) ] ~observer_lag:[ (0, 99) ] ()
  in
  Alcotest.(check bool) "divergence suppresses stale-observer" true
    (List.for_all Xoracle.is_safety (Xoracle.check with_lag));
  (* Members whose highest certs sit at different seqs agree vacuously. *)
  let staggered = xoutcome ~ckpt_certs:[ (0, 0, 16, 111); (0, 1, 32, 222) ] () in
  Alcotest.(check int) "different seqs never compare" 0
    (List.length (Xoracle.check staggered));
  (* Same root twice is agreement, not divergence. *)
  let agree = xoutcome ~ckpt_certs:[ (0, 0, 16, 111); (0, 1, 16, 111) ] () in
  Alcotest.(check int) "matching roots pass" 0 (List.length (Xoracle.check agree))

let test_xoracle_stale_observer () =
  (* Lag strictly above one checkpoint interval fires; at or below it,
     the remaining tail is legitimately uncertified. *)
  let o = xoutcome ~observer_lag:[ (0, Xoracle.convergence_bound + 1); (1, Xoracle.convergence_bound); (2, 0) ] () in
  (match Xoracle.check o with
  | [ Xoracle.Stale_observer { committee = 0; lag } ]
    when lag = Xoracle.convergence_bound + 1 ->
      ()
  | vs ->
      Alcotest.failf "expected one stale observer, got [%s]"
        (String.concat "; " (List.map Xoracle.to_string vs)));
  Alcotest.(check bool) "stale observer is liveness-class" false
    (Xoracle.is_safety (Xoracle.Stale_observer { committee = 0; lag = 99 }));
  (* Suppressed on unsafe runs like the other liveness oracles. *)
  let unsafe = xoutcome ~observer_lag:[ (0, 99) ] ~total:(10, 9) () in
  Alcotest.(check bool) "suppressed when unsafe" true
    (List.for_all Xoracle.is_safety (Xoracle.check unsafe));
  Alcotest.(check bool) "bound is the checkpoint interval" true
    (Xoracle.convergence_bound = 16)

(* The cross-shard regression witness: the schedule the explorer found
   against the pre-fix fallback sweep (a silent client plus a dropped
   decision leg yielded a partial commit).  The fixed sweep must replay
   it clean. *)

let prefix_bug_witness =
  "x1 txs=6 mal=5 over=- hot=0 dropleg:dec:0.54010956549511413:6.5492538101898843:16.057947951576917"

let test_xtestbed_deterministic () =
  let s = Xschedule.of_string prefix_bug_witness in
  let run () =
    Xtestbed.run ~engine_seed:58L ~mode:System.With_reference
      ~concurrency:System.Two_phase_locking ~shards:2 ~committee_size:4 s
  in
  let a = run () and b = run () in
  let pp (o : Xtestbed.outcome) =
    List.map
      (fun (d : System.decision_event) ->
        Printf.sprintf "%.17g:%d:%d:%b" d.System.at d.System.txid d.System.shard d.System.commit)
      o.Xtestbed.decisions
  in
  Alcotest.(check (list string)) "bit-identical decision traces" (pp a) (pp b);
  Alcotest.(check int) "same stuck locks" a.Xtestbed.stuck_locks b.Xtestbed.stuck_locks;
  Alcotest.(check int) "same final total" a.Xtestbed.total_after b.Xtestbed.total_after;
  Alcotest.(check bool) "horizon grants grace" true
    (a.Xtestbed.horizon >= Xschedule.heal_time s +. Xtestbed.grace)

let test_fallback_sweep_regression () =
  (* Evidence-based sweep: no violation survives the witness replay. *)
  let vs =
    Xexplore.replay ~mode:System.With_reference ~concurrency:System.Two_phase_locking ~shards:2
      ~committee_size:4 ~engine_seed:58L
      (Xschedule.of_string prefix_bug_witness)
  in
  Alcotest.(check (list string)) "fixed sweep survives the witness" []
    (List.map Xoracle.to_string vs)

let test_fallback_sweep_witness_batched () =
  (* Batching is a run parameter, not part of the witness line: the PR-4
     regression witness must replay with the identical verdict over the
     batched + pipelined commit path. *)
  let vs =
    Xexplore.replay ~batching:true ~mode:System.With_reference
      ~concurrency:System.Two_phase_locking ~shards:2 ~committee_size:4 ~engine_seed:58L
      (Xschedule.of_string prefix_bug_witness)
  in
  Alcotest.(check (list string)) "batched replay stays clean" []
    (List.map Xoracle.to_string vs)

(* The recovered-observer regression witnesses.  Before checkpoint
   catch-up existed, a crashed-and-recovered observer rejoined at its
   pre-crash sequence and silently diverged from its committee — stuck
   locks and undecided transactions at the horizon.  With the fetch
   protocol the replays must come back clean, with the observer fully
   converged. *)

let crashobs_witness = "x1 txs=4 mal=- over=- hot=0 crashobs:0:2:10"

let test_crashobs_recovery_witness () =
  let vs =
    Xexplore.replay ~mode:System.With_reference ~concurrency:System.Two_phase_locking ~shards:2
      ~committee_size:4 ~engine_seed:33L
      (Xschedule.of_string crashobs_witness)
  in
  Alcotest.(check (list string)) "recovered observer converges" []
    (List.map Xoracle.to_string vs)

(* Recovery across a checkpoint boundary: a contended workload keeps
   shard 0 committing while its observer is down for 18 s, so the live
   members certify at least one full checkpoint interval above the
   observer's last executed slot — the recovery path must replay through
   the certified boundary, not just the uncertified tail. *)
let ckpt_boundary_witness = "x1 txs=24 mal=- over=- hot=1 crashobs:0:2:20"

let test_crashobs_checkpoint_boundary () =
  let trace = Repro_obs.Trace.create () and metrics = Repro_obs.Metrics.create () in
  let probe = Repro_obs.Probe.make ~trace ~metrics in
  let o =
    Xtestbed.run ~probe ~engine_seed:33L ~mode:System.With_reference
      ~concurrency:System.Two_phase_locking ~shards:2 ~committee_size:4
      (Xschedule.of_string ckpt_boundary_witness)
  in
  Alcotest.(check (list string)) "clean across the boundary" []
    (List.map Xoracle.to_string (Xoracle.check o));
  let shard0_seqs =
    List.filter_map (fun (c, _, seq, _) -> if c = 0 then Some seq else None) o.Xtestbed.ckpt_certs
  in
  Alcotest.(check bool) "committee certified at least one full interval" true
    (List.exists (fun s -> s >= 16) shard0_seqs);
  Alcotest.(check bool) "observer fully converged at quiescence" true
    (List.for_all (fun (_, lag) -> lag = 0) o.Xtestbed.observer_lag);
  let counter name =
    Option.value ~default:0
      (List.assoc_opt name (Repro_obs.Metrics.counters metrics))
  in
  Alcotest.(check bool) "recovery used the fetch protocol" true (counter "ckpt.fetch.applied" >= 1);
  Alcotest.(check bool) "missed slots were replayed, not skipped" true
    (counter "ckpt.fetch.blocks_replayed" >= 16)

let test_flattened_silent_client_clean () =
  (* The flattened variant keeps a coordinator machine on the shard
     committees, so it owes silent clients the same fallback R does. *)
  let vs =
    Xexplore.replay ~mode:System.Flattened ~concurrency:System.Two_phase_locking ~shards:2
      ~committee_size:3 ~engine_seed:21L Xexplore.silent_client_schedule
  in
  Alcotest.(check (list string)) "flattened finishes the silent client" []
    (List.map Xoracle.to_string vs)

let test_differential_holds_batched () =
  let d = Xexplore.differential ~batching:true ~shards:2 ~committee_size:3 ~seed:21L () in
  Alcotest.(check bool) "figure-14 argument survives batching" true d.Xexplore.holds

let test_xshrink_candidates_and_minimize () =
  let s =
    xsched ~txs:8 ~malicious:[ 0; 2 ] ~overdraft:[ 1 ] ~contended:true
      ~faults:[ xfault (Xschedule.Cut_shard 1); xfault (Xschedule.Crash_ref { member = 1 }) ]
      ()
  in
  (* 2 fault drops + un-contend + clear overdrafts + shrink malicious +
     halve txs = 6 one-step candidates. *)
  Alcotest.(check int) "one-step candidates" 6 (List.length (Xshrink.candidates s));
  Alcotest.(check int) "minimal schedule has no candidates" 0
    (List.length (Xshrink.candidates (xsched ~txs:2 ())));
  let v = Xoracle.Stuck_locks { count = 1 } in
  let shrunk, reruns = Xshrink.minimize ~replay:(fun _ -> Some v) ~budget:64 s v in
  Alcotest.(check int) "all faults dropped" 0 (List.length shrunk.Xschedule.faults);
  Alcotest.(check bool) "un-contended" false shrunk.Xschedule.contended;
  Alcotest.(check (list int)) "overdrafts cleared" [] shrunk.Xschedule.overdraft;
  Alcotest.(check int) "txs at floor" 2 shrunk.Xschedule.txs;
  Alcotest.(check int) "one malicious client kept" 1 (List.length shrunk.Xschedule.malicious);
  Alcotest.(check bool) "within budget" true (reruns <= 64);
  let kept, _ = Xshrink.minimize ~replay:(fun _ -> None) ~budget:8 s v in
  Alcotest.(check string) "irreproducible keeps original" (Xschedule.to_string s)
    (Xschedule.to_string kept)

let test_xexplore_differential_and_json () =
  let d = Xexplore.differential ~shards:2 ~committee_size:3 ~seed:21L () in
  Alcotest.(check bool) "differential holds" true d.Xexplore.holds;
  Alcotest.(check int) "fallback leaves nothing behind" 0 (List.length d.Xexplore.with_ref);
  Alcotest.(check bool) "client-driven leaves stuck locks" true
    (List.exists
       (function Xoracle.Stuck_locks _ -> true | _ -> false)
       d.Xexplore.client_driven);
  let j = Xexplore.json_of_differential d in
  Alcotest.(check bool) "json carries the verdict" true (contains j "\"holds\":true");
  Alcotest.(check bool) "silent client is honest-flagged in the schedule" true
    (Xexplore.silent_client_schedule.Xschedule.malicious = [ 0 ]);
  (* A small explorer run in each mode stays clean post-fix and reports
     deterministically. *)
  let r =
    Xexplore.run ~mode:System.With_reference ~concurrency:System.Two_phase_locking ~shards:2
      ~committee_size:3 ~trials:2 ~seed:11L ~budget:8 ()
  in
  Alcotest.(check int) "no safety violations" 0 r.Xexplore.safety_violations;
  Alcotest.(check int) "no liveness violations" 0 r.Xexplore.liveness_violations;
  Alcotest.(check int64) "engine seed is base + index" 14L (Xexplore.engine_seed_for ~seed:11L 3);
  let a = Xexplore.schedule_for ~seed:7L ~shards:2 ~committee_size:3 2 in
  let b = Xexplore.schedule_for ~seed:7L ~shards:2 ~committee_size:3 2 in
  Alcotest.(check string) "schedule_for deterministic" (Xschedule.to_string a)
    (Xschedule.to_string b);
  Alcotest.(check string) "mode names round-trip" "with-reference"
    (Xexplore.mode_name System.With_reference);
  Alcotest.(check bool) "mode parsing" true
    (Xexplore.mode_of_name "client" = Some System.Client_driven);
  Alcotest.(check bool) "concurrency parsing" true
    (Xexplore.concurrency_of_name "waitdie" = Some System.Wait_die);
  let rj = Xexplore.json_of_report r in
  Alcotest.(check bool) "report json names the mode" true
    (contains rj "\"mode\":\"with-reference\"")

(* ------------------------------------------------------------------ *)
(* Commutative fast lane (DESIGN §18)                                  *)
(* ------------------------------------------------------------------ *)

let test_xoracle_merge_divergence () =
  (* A shard whose materialised state disagrees with the canonical fold of
     its delta log is a safety violation in its own right. *)
  let o =
    xoutcome
      ~merge_audit:[ (1, { Repro_ledger.Merge.mkey = "ctr_x"; expected = "15"; actual = "99" }) ]
      ()
  in
  match Xoracle.check o with
  | [ Xoracle.Merge_divergence { shard = 1; key = "ctr_x"; expected = "15"; actual = "99" } ] as vs
    ->
      Alcotest.(check bool) "merge divergence is safety" true (List.for_all Xoracle.is_safety vs);
      Alcotest.(check bool) "message names the key" true
        (contains (Xoracle.to_string (List.hd vs)) "ctr_x")
  | vs ->
      Alcotest.failf "expected one merge divergence, got [%s]"
        (String.concat "; " (List.map Xoracle.to_string vs))

let test_xschedule_lane_generation () =
  let gen () =
    Xschedule.generate_lane (Rng.split_named (Rng.create 42L) "0") ~shards:3 ~committee_size:4
  in
  Alcotest.(check string) "same rng, same lane schedule" (Xschedule.to_string (gen ()))
    (Xschedule.to_string (gen ()));
  let s = gen () in
  Alcotest.(check (list int)) "lane schedules keep clients honest" [] s.Xschedule.malicious;
  Alcotest.(check bool) "extra faults beyond the base draw" true
    (List.length s.Xschedule.faults
    > List.length
        (Xschedule.generate (Rng.split_named (Rng.create 42L) "0") ~shards:3 ~committee_size:4)
          .Xschedule.faults);
  (* The delta-leg token round-trips through the witness. *)
  let with_mrg =
    xsched ~faults:[ xfault (Xschedule.Drop_leg { leg = Xschedule.Mdelta; p = 0.5 }) ] ()
  in
  let w = Xschedule.to_string with_mrg in
  Alcotest.(check bool) "witness carries the mrg token" true (contains w "dropleg:mrg");
  Alcotest.(check string) "mrg witness round-trips" w
    (Xschedule.to_string (Xschedule.of_string w))

let test_xexplore_fastlane_trials_clean () =
  (* A batch of adversarial fast-lane trials — delta legs dropped, delayed,
     duplicated — must leave every oracle green: conservation holds and
     each shard's state is exactly the canonical fold of its delta log. *)
  let r =
    Xexplore.run ~mode:System.With_reference ~concurrency:System.Two_phase_locking ~lane:true
      ~shards:2 ~committee_size:3 ~trials:2 ~seed:33L ~budget:8 ()
  in
  Alcotest.(check int) "no safety violations" 0 r.Xexplore.safety_violations;
  Alcotest.(check int) "no liveness violations" 0 r.Xexplore.liveness_violations;
  Alcotest.(check bool) "report is lane-flagged" true r.Xexplore.lane;
  Alcotest.(check bool) "json carries the lane flag" true
    (contains (Xexplore.json_of_report r) "\"fast_lane\":true")

let () =
  Alcotest.run "check"
    [
      ( "schedule",
        [
          Alcotest.test_case "witness round-trips" `Quick test_schedule_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_schedule_rejects_malformed;
          Alcotest.test_case "generation deterministic" `Quick
            test_schedule_generation_deterministic;
          Alcotest.test_case "heal/active/size" `Quick test_schedule_heal_active_size;
          Alcotest.test_case "leader token round-trips" `Quick test_schedule_leader_token;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "agreement" `Quick test_oracle_agreement;
          Alcotest.test_case "order gap" `Quick test_oracle_order_gap;
          Alcotest.test_case "validity" `Quick test_oracle_validity;
          Alcotest.test_case "liveness only when safe" `Quick test_oracle_liveness_only_when_safe;
          Alcotest.test_case "clean run" `Quick test_oracle_clean_run;
          Alcotest.test_case "kinds" `Quick test_oracle_kinds;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "candidates" `Quick test_shrink_candidates;
          Alcotest.test_case "drops leader attack" `Quick test_shrink_drops_leader_attack;
          Alcotest.test_case "greedy and bounded" `Quick test_shrink_minimize_greedy_and_bounded;
        ] );
      ( "testbed",
        [
          Alcotest.test_case "deterministic" `Quick test_testbed_deterministic;
          Alcotest.test_case "horizon uses grace" `Quick test_testbed_horizon_uses_grace;
        ] );
      ( "explore",
        [
          Alcotest.test_case "variant names" `Quick test_variant_names;
          Alcotest.test_case "trial seeding" `Quick test_trial_seeding;
          Alcotest.test_case "differential holds; witness replays" `Quick
            test_differential_holds_and_witness_replays;
          Alcotest.test_case "leader-stall differential holds" `Quick
            test_leader_stall_differential_holds;
          Alcotest.test_case "json reports" `Quick test_explore_json;
        ] );
      ( "xschedule",
        [
          Alcotest.test_case "witness round-trips" `Quick test_xschedule_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_xschedule_rejects_malformed;
          Alcotest.test_case "generation deterministic" `Quick
            test_xschedule_generation_deterministic;
          Alcotest.test_case "lane generation" `Quick test_xschedule_lane_generation;
        ] );
      ( "xoracle",
        [
          Alcotest.test_case "atomicity" `Quick test_xoracle_atomicity;
          Alcotest.test_case "divergence and conservation" `Quick
            test_xoracle_divergence_and_conservation;
          Alcotest.test_case "liveness only when safe" `Quick
            test_xoracle_liveness_only_when_safe;
          Alcotest.test_case "checkpoint divergence" `Quick test_xoracle_ckpt_divergence;
          Alcotest.test_case "stale observer" `Quick test_xoracle_stale_observer;
          Alcotest.test_case "merge divergence" `Quick test_xoracle_merge_divergence;
        ] );
      ( "xtestbed",
        [
          Alcotest.test_case "deterministic" `Quick test_xtestbed_deterministic;
          Alcotest.test_case "fallback sweep regression" `Quick test_fallback_sweep_regression;
          Alcotest.test_case "fallback sweep witness, batched" `Quick
            test_fallback_sweep_witness_batched;
          Alcotest.test_case "crashobs recovery witness" `Quick test_crashobs_recovery_witness;
          Alcotest.test_case "crashobs checkpoint boundary" `Quick
            test_crashobs_checkpoint_boundary;
          Alcotest.test_case "flattened silent client" `Quick
            test_flattened_silent_client_clean;
          Alcotest.test_case "differential holds batched" `Quick
            test_differential_holds_batched;
        ] );
      ("xshrink", [ Alcotest.test_case "candidates and minimize" `Quick test_xshrink_candidates_and_minimize ]);
      ( "xexplore",
        [
          Alcotest.test_case "differential, explorer, json" `Quick
            test_xexplore_differential_and_json;
          Alcotest.test_case "fast-lane trials clean" `Quick test_xexplore_fastlane_trials_clean;
        ] );
    ]
