(* Tests for lib/check: schedule witnesses round-trip bit-exactly, the
   oracles flag exactly the traces they should, the shrinker is greedy and
   budget-bounded, and the headline differential holds — HL's unattested
   quorums at N = 2f+1 violate agreement under the scripted split-brain
   attack while AHL/AHL+/AHLR survive the identical schedules. *)

open Repro_util
open Repro_consensus
open Repro_check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1)) in
  nn = 0 || go 0

let sched ?(byz = [ 0 ]) ?(split_brain = true) ?(stale = false) ?(silent = []) ?(requests = 8)
    ?(events = []) () =
  { Schedule.byz; split_brain; stale_replay = stale; silent_toward = silent; requests; events }

let ev ?(start = 1.0) ?(stop = 2.0) kind = { Schedule.start; stop; kind }

(* ------------------------------------------------------------------ *)
(* Schedules                                                           *)
(* ------------------------------------------------------------------ *)

let test_schedule_roundtrip () =
  let s =
    sched ~byz:[ 0; 1 ] ~stale:true ~silent:[ 4 ] ~requests:12
      ~events:
        [
          ev ~start:0.25 ~stop:1.75 (Schedule.Drop 0.125);
          ev ~start:(1.0 /. 3.0) ~stop:3.0 (Schedule.Jitter 0.2);
          ev ~start:0.5 ~stop:2.5 (Schedule.Duplicate 0.3);
          ev ~start:2.0 ~stop:4.0 (Schedule.Partition [ 0; 2 ]);
          ev ~start:0.0 ~stop:5.0 (Schedule.Silence { from_ = 1; toward = 3 });
        ]
      ()
  in
  let s' = Schedule.of_string (Schedule.to_string s) in
  Alcotest.(check string) "string form round-trips" (Schedule.to_string s) (Schedule.to_string s');
  Alcotest.(check (list int)) "byz preserved" s.Schedule.byz s'.Schedule.byz;
  Alcotest.(check int) "requests preserved" s.Schedule.requests s'.Schedule.requests;
  Alcotest.(check int) "events preserved" 5 (List.length s'.Schedule.events)

let test_schedule_rejects_malformed () =
  let malformed w =
    match Schedule.of_string w with
    | exception Schedule.Invalid_witness _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "wrong version" true (malformed "v2 byz=0 sb=1 stale=0 quiet=- req=4");
  Alcotest.(check bool) "garbage" true (malformed "garbage");
  Alcotest.(check bool) "bad event" true (malformed "v1 byz=0 sb=1 stale=0 quiet=- req=4 zap:1:2")

let test_schedule_generation_deterministic () =
  let gen () = Schedule.generate (Rng.split_named (Rng.create 42L) "0") ~n:5 ~f:2 in
  Alcotest.(check string) "same rng, same schedule" (Schedule.to_string (gen ()))
    (Schedule.to_string (gen ()));
  let s = gen () in
  Alcotest.(check (list int)) "byz clique is 0..f-1" [ 0; 1 ] s.Schedule.byz;
  Alcotest.(check bool) "split-brain scripted when f >= 1" true s.Schedule.split_brain;
  Alcotest.(check bool) "even request count" true (s.Schedule.requests mod 2 = 0)

let test_schedule_heal_active_size () =
  let e = ev ~start:1.0 ~stop:2.0 (Schedule.Drop 0.5) in
  Alcotest.(check bool) "active inside window" true (Schedule.active e ~at:1.5);
  Alcotest.(check bool) "inactive at stop" false (Schedule.active e ~at:2.0);
  Alcotest.(check bool) "inactive before" false (Schedule.active e ~at:0.5);
  let s = sched ~events:[ e; ev ~start:0.0 ~stop:7.5 (Schedule.Jitter 0.1) ] () in
  Alcotest.(check (float 0.0)) "heal time is last stop" 7.5 (Schedule.heal_time s);
  Alcotest.(check (float 0.0)) "no events heal at 0" 0.0 (Schedule.heal_time (sched ()));
  let big = sched ~byz:[ 0; 1 ] ~stale:true ~silent:[ 2 ] ~requests:8 ~events:[ e ] () in
  Alcotest.(check bool) "size shrinks with structure" true
    (Schedule.size big > Schedule.size (sched ~requests:2 ()))

(* ------------------------------------------------------------------ *)
(* Oracles (synthetic traces)                                          *)
(* ------------------------------------------------------------------ *)

let commit ?(member = 1) ?(view = 0) ?(digest = 7) ?(ids = []) ?(at = 1.0) seq =
  { Trace.member; view; seq; digest; ids; at }

let outcome ?(commits = []) ?(submitted = []) ?(honest = [ 1; 2 ]) ?(observer = 1) () =
  {
    Testbed.commits;
    submitted;
    honest;
    observer;
    heal_time = 0.0;
    horizon = 30.0;
    view_changes = 0;
  }

let test_oracle_agreement () =
  let o =
    outcome
      ~commits:[ commit ~member:1 ~digest:7 1; commit ~member:2 ~digest:9 1 ]
      ~submitted:[] ()
  in
  (match Oracle.check o with
  | [ Oracle.Agreement { seq = 1; digest_a = 7; digest_b = 9; _ } ] -> ()
  | vs -> Alcotest.failf "expected one agreement violation, got [%s]"
            (String.concat "; " (List.map Oracle.to_string vs)));
  (* A byzantine replica's conflicting commit is not a violation. *)
  let o =
    outcome
      ~commits:[ commit ~member:1 ~digest:7 1; commit ~member:0 ~digest:9 1 ]
      ~honest:[ 1; 2 ] ()
  in
  Alcotest.(check int) "byzantine commits ignored" 0 (List.length (Oracle.check o))

let test_oracle_order_gap () =
  let o = outcome ~commits:[ commit 1; commit 3 ] () in
  match Oracle.check o with
  | [ Oracle.Order { member = 1; missing_seq = 2; max_seq = 3 } ] -> ()
  | vs ->
      Alcotest.failf "expected one order violation, got [%s]"
        (String.concat "; " (List.map Oracle.to_string vs))

let test_oracle_validity () =
  let o = outcome ~commits:[ commit ~ids:[ 5 ] 1 ] ~submitted:[ 0; 1 ] () in
  match Oracle.check o with
  | [ Oracle.Validity { member = 1; seq = 1; req_id = 5 } ] -> ()
  | vs ->
      Alcotest.failf "expected one validity violation, got [%s]"
        (String.concat "; " (List.map Oracle.to_string vs))

let test_oracle_liveness_only_when_safe () =
  (* Submitted id 1 never executes at the observer: liveness violation. *)
  let o = outcome ~commits:[ commit ~ids:[ 0 ] 1 ] ~submitted:[ 0; 1 ] () in
  (match Oracle.check o with
  | [ Oracle.Liveness { missing = 1; first_missing = 1 } ] -> ()
  | vs ->
      Alcotest.failf "expected one liveness violation, got [%s]"
        (String.concat "; " (List.map Oracle.to_string vs)));
  (* The same gap is NOT reported when the run is already unsafe. *)
  let unsafe =
    outcome
      ~commits:[ commit ~member:1 ~digest:7 ~ids:[ 0 ] 1; commit ~member:2 ~digest:9 1 ]
      ~submitted:[ 0; 1 ] ()
  in
  let vs = Oracle.check unsafe in
  Alcotest.(check bool) "safety reported" true (List.for_all Oracle.is_safety vs);
  Alcotest.(check bool) "liveness suppressed" true
    (not (List.exists (fun v -> not (Oracle.is_safety v)) vs))

let test_oracle_clean_run () =
  let o =
    outcome
      ~commits:[ commit ~ids:[ 0 ] 1; commit ~member:2 ~ids:[ 0 ] 1; commit ~ids:[ 1 ] 2 ]
      ~submitted:[ 0; 1 ] ~observer:1 ()
  in
  Alcotest.(check int) "no violations" 0 (List.length (Oracle.check o))

let test_oracle_kinds () =
  let ag = Oracle.Agreement { seq = 1; member_a = 1; view_a = 0; digest_a = 7; member_b = 2; view_b = 0; digest_b = 9 } in
  let lv = Oracle.Liveness { missing = 1; first_missing = 0 } in
  Alcotest.(check bool) "agreement is safety" true (Oracle.is_safety ag);
  Alcotest.(check bool) "liveness is not" false (Oracle.is_safety lv);
  Alcotest.(check bool) "same kind" true (Oracle.same_kind ag ag);
  Alcotest.(check bool) "different kind" false (Oracle.same_kind ag lv)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let test_shrink_candidates () =
  let s =
    sched ~byz:[ 0; 1 ] ~stale:true ~silent:[ 2 ] ~requests:8
      ~events:[ ev (Schedule.Drop 0.5); ev (Schedule.Jitter 0.1) ]
      ()
  in
  (* 2 event drops + stale off + silence off + byz clique shrink + half
     the requests = 6 one-step candidates. *)
  Alcotest.(check int) "one-step candidates" 6 (List.length (Shrink.candidates s));
  (* The clique never shrinks to empty: the attack needs one byzantine. *)
  let single = sched ~byz:[ 0 ] ~requests:2 () in
  Alcotest.(check int) "minimal schedule has no candidates" 0
    (List.length (Shrink.candidates single))

let test_shrink_minimize_greedy_and_bounded () =
  let base =
    sched ~byz:[ 0 ] ~stale:true ~silent:[ 3 ] ~requests:16
      ~events:[ ev (Schedule.Drop 0.5); ev (Schedule.Jitter 0.1) ]
      ()
  in
  let v = Oracle.Validity { member = 1; seq = 1; req_id = 99 } in
  (* Bug reproduces on every candidate: the shrinker must reach the
     structural floor. *)
  let shrunk, reruns = Shrink.minimize ~replay:(fun _ -> Some v) ~budget:64 base v in
  Alcotest.(check int) "all events dropped" 0 (List.length shrunk.Schedule.events);
  Alcotest.(check bool) "stale replay disabled" false shrunk.Schedule.stale_replay;
  Alcotest.(check (list int)) "silence dropped" [] shrunk.Schedule.silent_toward;
  Alcotest.(check int) "requests at floor" 2 shrunk.Schedule.requests;
  Alcotest.(check bool) "within budget" true (reruns <= 64);
  (* A replay that never reproduces keeps the original schedule. *)
  let kept, _ = Shrink.minimize ~replay:(fun _ -> None) ~budget:8 base v in
  Alcotest.(check string) "irreproducible keeps original" (Schedule.to_string base)
    (Schedule.to_string kept);
  (* Budget 0 spends no replays at all. *)
  let _, spent = Shrink.minimize ~replay:(fun _ -> Some v) ~budget:0 base v in
  Alcotest.(check int) "budget 0 replays nothing" 0 spent

(* ------------------------------------------------------------------ *)
(* Testbed determinism                                                 *)
(* ------------------------------------------------------------------ *)

let pp_commits o = List.map (Format.asprintf "%a" Trace.pp_commit) o.Testbed.commits

let test_testbed_deterministic () =
  let s = Explore.schedule_for ~seed:11L ~n:3 ~f:1 0 in
  let run () = Testbed.run ~engine_seed:11L ~variant:Explore.hl_small ~n:3 s in
  let a = run () and b = run () in
  Alcotest.(check (list string)) "bit-identical committed traces" (pp_commits a) (pp_commits b);
  Alcotest.(check int) "same view changes" a.Testbed.view_changes b.Testbed.view_changes

let test_testbed_horizon_uses_grace () =
  let s = sched ~requests:2 ~events:[ ev ~start:0.0 ~stop:1.5 (Schedule.Drop 0.0) ] () in
  let o = Testbed.run ~engine_seed:3L ~variant:Config.ahl ~n:3 s in
  Alcotest.(check (float 1e-9)) "heal time from schedule" 1.5 o.Testbed.heal_time;
  Alcotest.(check (float 1e-9)) "horizon grants the grace window"
    (o.Testbed.heal_time +. Testbed.grace) o.Testbed.horizon;
  Alcotest.(check (list int)) "honest excludes the byzantine clique" [ 1; 2 ] o.Testbed.honest

(* ------------------------------------------------------------------ *)
(* Explorer and the headline differential                              *)
(* ------------------------------------------------------------------ *)

let test_variant_names () =
  let name v = match v with Some v -> v.Config.name | None -> "?" in
  Alcotest.(check string) "hl2f1" "HL@2f+1" (name (Explore.variant_of_name "hl2f1"));
  Alcotest.(check string) "hl_small is the same config" Explore.hl_small.Config.name
    (name (Explore.variant_of_name "hl@2f+1"));
  Alcotest.(check string) "ahl+" "AHL+" (name (Explore.variant_of_name "ahl+"));
  Alcotest.(check string) "ahlr" "AHLR" (name (Explore.variant_of_name "ahlr"));
  Alcotest.(check bool) "unknown rejected" true
    (Option.is_none (Explore.variant_of_name "bogus"))

let test_trial_seeding () =
  Alcotest.(check int64) "engine seed is base + index" 14L (Explore.engine_seed_for ~seed:11L 3);
  let a = Explore.schedule_for ~seed:7L ~n:3 ~f:1 2 in
  let b = Explore.schedule_for ~seed:7L ~n:3 ~f:1 2 in
  Alcotest.(check string) "schedule_for is deterministic" (Schedule.to_string a)
    (Schedule.to_string b)

let test_differential_holds_and_witness_replays () =
  let d = Explore.differential ~f:1 ~trials:3 ~seed:11L ~budget:16 in
  Alcotest.(check bool) "differential holds" true d.Explore.holds;
  Alcotest.(check bool) "unattested 2f+1 violates safety" true
    (d.Explore.broken.Explore.safety_violations > 0);
  List.iter
    (fun r ->
      Alcotest.(check int)
        (r.Explore.variant_name ^ " stays safe on identical schedules")
        0 r.Explore.safety_violations)
    d.Explore.safe;
  (* The shrunk witness replays bit-identically from (seed, string) alone. *)
  let t =
    List.find (fun t -> Option.is_some t.Explore.shrunk) d.Explore.broken.Explore.trials
  in
  let w = Option.get t.Explore.shrunk in
  let n = d.Explore.broken.Explore.n in
  let replay s =
    List.map Oracle.to_string
      (Explore.replay ~variant:Explore.hl_small ~n ~engine_seed:t.Explore.engine_seed s)
  in
  let direct = replay w in
  Alcotest.(check (list string)) "witness replays from its printed form" direct
    (replay (Schedule.of_string (Schedule.to_string w)));
  Alcotest.(check bool) "shrunk witness still violates" true (direct <> [])

let test_explore_json () =
  let r = Explore.run ~variant:Config.ahl ~n:3 ~f:1 ~trials:1 ~seed:11L ~budget:4 in
  let j = Explore.json_of_report r in
  Alcotest.(check bool) "variant named" true (contains j "\"variant\":\"AHL\"");
  Alcotest.(check bool) "per-trial results" true (contains j "\"engine_seed\":11");
  let s = Explore.json_summary ~wall_time:1.5 [ r ] in
  Alcotest.(check bool) "summary carries wall time" true (contains s "\"wall_time_s\":1.500");
  Alcotest.(check bool) "summary embeds the report" true (contains s "\"safety_violations\":0")

let () =
  Alcotest.run "check"
    [
      ( "schedule",
        [
          Alcotest.test_case "witness round-trips" `Quick test_schedule_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_schedule_rejects_malformed;
          Alcotest.test_case "generation deterministic" `Quick
            test_schedule_generation_deterministic;
          Alcotest.test_case "heal/active/size" `Quick test_schedule_heal_active_size;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "agreement" `Quick test_oracle_agreement;
          Alcotest.test_case "order gap" `Quick test_oracle_order_gap;
          Alcotest.test_case "validity" `Quick test_oracle_validity;
          Alcotest.test_case "liveness only when safe" `Quick test_oracle_liveness_only_when_safe;
          Alcotest.test_case "clean run" `Quick test_oracle_clean_run;
          Alcotest.test_case "kinds" `Quick test_oracle_kinds;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "candidates" `Quick test_shrink_candidates;
          Alcotest.test_case "greedy and bounded" `Quick test_shrink_minimize_greedy_and_bounded;
        ] );
      ( "testbed",
        [
          Alcotest.test_case "deterministic" `Quick test_testbed_deterministic;
          Alcotest.test_case "horizon uses grace" `Quick test_testbed_horizon_uses_grace;
        ] );
      ( "explore",
        [
          Alcotest.test_case "variant names" `Quick test_variant_names;
          Alcotest.test_case "trial seeding" `Quick test_trial_seeding;
          Alcotest.test_case "differential holds; witness replays" `Quick
            test_differential_holds_and_witness_replays;
          Alcotest.test_case "json reports" `Quick test_explore_json;
        ] );
    ]
