open Repro_util

let check_float = Alcotest.(check (float 1e-9))

let check_float_at eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 42L and b = Rng.create 43L in
  Alcotest.(check bool) "different seeds differ" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_split_independent () =
  let parent = Rng.create 7L in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  Alcotest.(check bool) "children differ" true (Rng.next_int64 c1 <> Rng.next_int64 c2)

let test_rng_split_named_order_free () =
  let p1 = Rng.create 7L and p2 = Rng.create 7L in
  let a1 = Rng.split_named p1 "alpha" in
  let b1 = Rng.split_named p1 "beta" in
  let b2 = Rng.split_named p2 "beta" in
  let a2 = Rng.split_named p2 "alpha" in
  Alcotest.(check int64) "alpha stream independent of creation order"
    (Rng.next_int64 a1) (Rng.next_int64 a2);
  Alcotest.(check int64) "beta stream independent of creation order"
    (Rng.next_int64 b1) (Rng.next_int64 b2)

let test_rng_int_range () =
  let rng = Rng.create 1L in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 1L in
  Alcotest.check_raises "n = 0" (Invariant.Violation "Rng.int: bound 0 not positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_int_uniform () =
  let rng = Rng.create 5L in
  let n = 10 and draws = 100_000 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let v = Rng.int rng n in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int draws /. float_of_int n in
  Array.iter
    (fun c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      Alcotest.(check bool) "within 5% of uniform" true (dev < 0.05))
    counts

let test_rng_int_in () =
  let rng = Rng.create 2L in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done;
  Alcotest.(check int) "degenerate range" 3 (Rng.int_in rng 3 3)

let test_rng_float_range () =
  let rng = Rng.create 3L in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 11L in
  let s = Stats.create () in
  for _ = 1 to 200_000 do
    Stats.add s (Rng.exponential rng ~mean:3.0)
  done;
  check_float_at 0.05 "mean ~ 3.0" 3.0 (Stats.mean s)

let test_rng_gaussian_moments () =
  let rng = Rng.create 13L in
  let s = Stats.create () in
  for _ = 1 to 200_000 do
    Stats.add s (Rng.gaussian rng ~mu:10.0 ~sigma:2.0)
  done;
  check_float_at 0.05 "mean ~ 10" 10.0 (Stats.mean s);
  check_float_at 0.05 "stddev ~ 2" 2.0 (Stats.stddev s)

let test_rng_permutation_valid () =
  let rng = Rng.create 17L in
  let p = Rng.permutation rng 100 in
  let seen = Array.make 100 false in
  Array.iter (fun i -> seen.(i) <- true) p;
  Alcotest.(check bool) "is a permutation" true (Array.for_all Fun.id seen)

let test_rng_permutation_uniform_position () =
  (* Element 0 should land in every slot with roughly equal frequency. *)
  let rng = Rng.create 19L in
  let n = 5 and trials = 50_000 in
  let counts = Array.make n 0 in
  for _ = 1 to trials do
    let p = Rng.permutation rng n in
    let pos = ref 0 in
    Array.iteri (fun i v -> if v = 0 then pos := i) p;
    counts.(!pos) <- counts.(!pos) + 1
  done;
  let expected = float_of_int trials /. float_of_int n in
  Array.iter
    (fun c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      Alcotest.(check bool) "uniform positions" true (dev < 0.05))
    counts

let test_rng_bytes_length () =
  let rng = Rng.create 23L in
  Alcotest.(check int) "32 bytes" 32 (String.length (Rng.bytes rng 32));
  Alcotest.(check int) "0 bytes" 0 (String.length (Rng.bytes rng 0))

let test_rng_pick () =
  let rng = Rng.create 29L in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "picked element" true (Array.mem (Rng.pick rng arr) arr)
  done;
  Alcotest.check_raises "empty array" (Invariant.Violation "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (int_of_float k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = List.init 5 (fun _ -> match Heap.pop h with Some (_, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "sorted pops" [ 1; 2; 3; 4; 5 ] order

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 1.0 v) [ "a"; "b"; "c" ];
  Heap.push h 0.5 "first";
  let order = List.init 4 (fun _ -> match Heap.pop h with Some (_, v) -> v | None -> "?") in
  Alcotest.(check (list string)) "ties FIFO" [ "first"; "a"; "b"; "c" ] order

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek_key h = None)

let test_heap_interleaved () =
  let h = Heap.create () in
  Heap.push h 3.0 3;
  Heap.push h 1.0 1;
  (match Heap.pop h with
  | Some (k, v) ->
      check_float "key" 1.0 k;
      Alcotest.(check int) "value" 1 v
  | None -> Alcotest.fail "expected element");
  Heap.push h 2.0 2;
  Alcotest.(check bool) "peek 2.0" true (Heap.peek_key h = Some 2.0);
  Alcotest.(check int) "size" 2 (Heap.size h)

let test_heap_random_against_sort () =
  let rng = Rng.create 31L in
  let h = Heap.create () in
  let keys = Array.init 1000 (fun _ -> Rng.float rng 100.0) in
  Array.iter (fun k -> Heap.push h k k) keys;
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  Array.iter
    (fun expect ->
      match Heap.pop h with
      | Some (k, _) -> check_float "heap matches sort" expect k
      | None -> Alcotest.fail "heap exhausted early")
    sorted

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_map_ordered () =
  Alcotest.(check bool) "default_jobs positive" true (Pool.default_jobs () >= 1);
  let p = Pool.create ~jobs:4 in
  Alcotest.(check int) "jobs accessor" 4 (Pool.jobs p);
  let xs = List.init 100 Fun.id in
  let ys = Pool.map p (fun x -> x * x) xs in
  Alcotest.(check (list int)) "results in submission order" (List.map (fun x -> x * x) xs) ys;
  Pool.shutdown p

let test_pool_exception_propagates () =
  let p = Pool.create ~jobs:2 in
  let fut = Pool.submit p (fun () -> failwith "boom") in
  Alcotest.check_raises "worker exception re-raised" (Failure "boom") (fun () ->
      ignore (Pool.await fut : unit));
  Alcotest.check_raises "await is idempotent" (Failure "boom") (fun () ->
      ignore (Pool.await fut : unit));
  Alcotest.(check int) "pool usable after a failed task" 7
    (Pool.await (Pool.submit p (fun () -> 7)));
  Pool.shutdown p

let test_pool_sequential_inline () =
  (* jobs = 1 spawns no domain: the task runs at submission, so its side
     effect is visible before await. *)
  let p = Pool.create ~jobs:0 (* clamped to 1 *) in
  Alcotest.(check int) "jobs clamped to 1" 1 (Pool.jobs p);
  let trace = ref [] in
  let futs =
    List.map (fun i -> Pool.submit p (fun () -> trace := i :: !trace; i)) [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "ran inline at submit, in order" [ 3; 2; 1 ] !trace;
  Alcotest.(check (list int)) "await returns values" [ 1; 2; 3 ] (List.map Pool.await futs);
  Pool.shutdown p

(* ------------------------------------------------------------------ *)
(* Memo                                                                *)
(* ------------------------------------------------------------------ *)

let test_memo_exactly_once () =
  let m : (int, int) Memo.t = Memo.create () in
  let calls = Atomic.make 0 in
  let compute key () =
    Atomic.incr calls;
    key * 10
  in
  let p = Pool.create ~jobs:4 in
  let futs = List.init 16 (fun _ -> Pool.submit p (fun () -> Memo.get m 42 (compute 42))) in
  List.iter (fun f -> Alcotest.(check int) "shared value" 420 (Pool.await f)) futs;
  Pool.shutdown p;
  Alcotest.(check int) "computed exactly once under contention" 1 (Atomic.get calls);
  Alcotest.(check int) "second key computes" 70 (Memo.get m 7 (compute 7));
  Alcotest.(check int) "two computations total" 2 (Atomic.get calls)

let test_memo_clear_recomputes () =
  let m : (string, int) Memo.t = Memo.create () in
  let calls = Atomic.make 0 in
  let compute () = Atomic.incr calls; Atomic.get calls in
  Alcotest.(check int) "first" 1 (Memo.get m "k" compute);
  Alcotest.(check int) "cached" 1 (Memo.get m "k" compute);
  Memo.clear m;
  Alcotest.(check int) "recomputed after clear" 2 (Memo.get m "k" compute)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  check_float "mean" 2.5 (Stats.mean s);
  check_float "total" 10.0 (Stats.total s);
  check_float "min" 1.0 (Stats.min s);
  check_float "max" 4.0 (Stats.max s);
  check_float_at 1e-9 "stddev" (sqrt (5.0 /. 3.0)) (Stats.stddev s)

let test_stats_empty () =
  let s = Stats.create () in
  check_float "mean" 0.0 (Stats.mean s);
  check_float "stddev" 0.0 (Stats.stddev s);
  check_float "percentile" 0.0 (Stats.percentile s 50.0)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check_float "p50" 50.0 (Stats.percentile s 50.0);
  check_float "p99" 99.0 (Stats.percentile s 99.0);
  check_float "p100" 100.0 (Stats.percentile s 100.0);
  check_float "p0 clamps to min rank" 1.0 (Stats.percentile s 0.0)

let series_exn ~bin =
  match Stats.Series.create ~bin with
  | Ok s -> s
  | Error msg -> Alcotest.fail msg

let test_series_binning () =
  let s = series_exn ~bin:1.0 in
  Stats.Series.record s 0.2 1.0;
  Stats.Series.record s 0.8 1.0;
  Stats.Series.record s 2.5 4.0;
  let bins = Stats.Series.bins s in
  Alcotest.(check int) "three bins incl. empty interior" 3 (List.length bins);
  match bins with
  | [ (t0, v0); (t1, v1); (t2, v2) ] ->
      check_float "bin0 start" 0.0 t0;
      check_float "bin0 sum" 2.0 v0;
      check_float "bin1 start" 1.0 t1;
      check_float "bin1 empty" 0.0 v1;
      check_float "bin2 start" 2.0 t2;
      check_float "bin2 sum" 4.0 v2
  | _ -> Alcotest.fail "unexpected bin structure"

let test_series_rate () =
  let s = series_exn ~bin:2.0 in
  Stats.Series.record s 1.0 10.0;
  match Stats.Series.rate_bins s with
  | [ (_, r) ] -> check_float "rate = sum / width" 5.0 r
  | _ -> Alcotest.fail "expected one bin"

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)
(* ------------------------------------------------------------------ *)

let test_zipf_uniform_when_theta_zero () =
  let z = Zipf.create ~n:4 ~theta:0.0 in
  for i = 0 to 3 do
    check_float_at 1e-9 "uniform pmf" 0.25 (Zipf.pmf z i)
  done

let test_zipf_monotone_pmf () =
  let z = Zipf.create ~n:100 ~theta:0.99 in
  let prev = ref infinity in
  for i = 0 to 99 do
    let p = Zipf.pmf z i in
    Alcotest.(check bool) "pmf non-increasing" true (p <= !prev +. 1e-12);
    prev := p
  done

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create ~n:50 ~theta:1.5 in
  let total = ref 0.0 in
  for i = 0 to 49 do
    total := !total +. Zipf.pmf z i
  done;
  check_float_at 1e-9 "pmf sums to 1" 1.0 !total

let test_zipf_sample_matches_pmf () =
  let z = Zipf.create ~n:10 ~theta:1.0 in
  let rng = Rng.create 37L in
  let draws = 200_000 in
  let counts = Array.make 10 0 in
  for _ = 1 to draws do
    let v = Zipf.sample z rng in
    counts.(v) <- counts.(v) + 1
  done;
  for i = 0 to 9 do
    let empirical = float_of_int counts.(i) /. float_of_int draws in
    check_float_at 0.01 "sample frequency ~ pmf" (Zipf.pmf z i) empirical
  done

let test_zipf_high_skew_concentrates () =
  let z = Zipf.create ~n:1000 ~theta:1.99 in
  Alcotest.(check bool) "head key dominates" true (Zipf.pmf z 0 > 0.5)

(* ------------------------------------------------------------------ *)
(* Logspace                                                            *)
(* ------------------------------------------------------------------ *)

let test_log_gamma_factorials () =
  (* Γ(n+1) = n! *)
  let fact n = List.fold_left ( *. ) 1.0 (List.init n (fun i -> float_of_int (i + 1))) in
  List.iter
    (fun n ->
      check_float_at 1e-8 "log_gamma matches factorial"
        (log (fact n))
        (Logspace.log_gamma (float_of_int (n + 1))))
    [ 1; 2; 5; 10; 20 ]

let test_log_gamma_half () =
  (* Γ(1/2) = sqrt(pi) *)
  check_float_at 1e-9 "gamma(0.5)" (0.5 *. log Float.pi) (Logspace.log_gamma 0.5)

let test_log_choose () =
  check_float_at 1e-8 "10 choose 3" (log 120.0) (Logspace.log_choose 10 3);
  check_float "n choose 0" 0.0 (Logspace.log_choose 5 0);
  check_float "n choose n" 0.0 (Logspace.log_choose 5 5);
  Alcotest.(check bool) "out of range" true (Logspace.log_choose 5 6 = neg_infinity)

let test_log_add () =
  check_float_at 1e-12 "log_add" (log 3.0) (Logspace.log_add (log 1.0) (log 2.0));
  check_float "identity" (log 2.0) (Logspace.log_add neg_infinity (log 2.0))

let test_hypergeom_pmf_sums_to_one () =
  let total = 50 and bad = 12 and draws = 10 in
  let acc = ref 0.0 in
  for k = 0 to draws do
    acc := !acc +. exp (Logspace.hypergeom_log_pmf ~total ~bad ~draws ~k)
  done;
  check_float_at 1e-9 "pmf sums to 1" 1.0 !acc

let test_hypergeom_tail_monotone () =
  let tail k = Logspace.hypergeom_tail ~total:400 ~bad:100 ~draws:100 ~at_least:k in
  let prev = ref 1.0 in
  for k = 0 to 100 do
    let t = tail k in
    Alcotest.(check bool) "tail non-increasing" true (t <= !prev +. 1e-12);
    prev := t
  done;
  check_float "k=0 is certain" 1.0 (tail 0)

let test_hypergeom_exact_small () =
  (* Pick 2 from {3 bad, 2 good}: P[X >= 2] = C(3,2)/C(5,2) = 3/10. *)
  check_float_at 1e-12 "exact small case" 0.3
    (Logspace.hypergeom_tail ~total:5 ~bad:3 ~draws:2 ~at_least:2)

let test_hypergeom_paper_committee_sizes () =
  (* Section 5.2: with 25% adversary, PBFT (f = (n-1)/3) needs 600+ nodes
     for Pr <= 2^-20 while AHL+ (f = (n-1)/2) needs about 80. *)
  let neg20 = Float.pow 2.0 (-20.0) in
  let pr_faulty n threshold_frac total =
    let f = int_of_float (floor (float_of_int (n - 1) *. threshold_frac)) in
    Logspace.hypergeom_tail ~total ~bad:(total / 4) ~draws:n ~at_least:(f + 1)
  in
  let total = 2000 in
  Alcotest.(check bool) "AHL+ 80-node committee is safe" true
    (pr_faulty 80 0.5 total <= neg20);
  Alcotest.(check bool) "PBFT 80-node committee is unsafe" true
    (pr_faulty 80 (1.0 /. 3.0) total > neg20);
  Alcotest.(check bool) "PBFT needs roughly 600 nodes" true
    (pr_faulty 600 (1.0 /. 3.0) total <= Float.pow 2.0 (-17.0))

let test_binomial_tail_limits () =
  check_float "at_least 0" 1.0 (Logspace.binomial_tail ~n:10 ~p:0.3 ~at_least:0);
  check_float "beyond n" 0.0 (Logspace.binomial_tail ~n:10 ~p:0.3 ~at_least:11);
  check_float_at 1e-12 "all heads" (Float.pow 0.5 10.0)
    (Logspace.binomial_tail ~n:10 ~p:0.5 ~at_least:10)

let test_binomial_approximates_hypergeom () =
  (* Sampling 10 from a huge population ~ binomial. *)
  let h = Logspace.hypergeom_tail ~total:100_000 ~bad:25_000 ~draws:10 ~at_least:5 in
  let b = Logspace.binomial_tail ~n:10 ~p:0.25 ~at_least:5 in
  check_float_at 1e-3 "binomial limit" b h

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_render_aligns () =
  let out = Table.render ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "10"; "20" ] ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "has rule line" true
    (List.exists
       (fun l -> String.length l > 0 && String.for_all (fun c -> c = '-' || c = ' ') l)
       lines)

let test_table_fnum () =
  Alcotest.(check string) "integer" "42" (Table.fnum 42.0);
  Alcotest.(check string) "zero" "0" (Table.fnum 0.0);
  Alcotest.(check string) "small" "0.2500" (Table.fnum 0.25);
  Alcotest.(check bool) "tiny uses scientific" true (String.contains (Table.fnum 1e-7) 'e')

let test_series_render () =
  let out =
    Table.series ~title:"t" ~x_label:"N" ~columns:[ "HL"; "AHL" ]
      ~rows:[ (7.0, [ 100.0; 110.0 ]); (19.0, [ 90.0; 105.0 ]) ]
  in
  Alcotest.(check bool) "contains title" true
    (String.length out > 0 && String.sub out 0 4 = "== t")

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

let prop_heap_pop_sorted =
  QCheck.Test.make ~name:"heap pops in nondecreasing key order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h k ()) keys;
      let rec drain prev =
        match Heap.pop h with
        | None -> true
        | Some (k, ()) -> k >= prev && drain k
      in
      drain neg_infinity)

let prop_heap_ties_fifo =
  (* Small key range forces many ties; values are insertion indices, so a
     drain must match a stable sort by key — exercising the seq tie-break. *)
  QCheck.Test.make ~name:"heap breaks key ties in FIFO order" ~count:200
    QCheck.(list (int_bound 7))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h (float_of_int k) i) keys;
      let expected =
        List.map snd
          (List.stable_sort
             (fun (a, _) (b, _) -> Int.compare a b)
             (List.mapi (fun i k -> (k, i)) keys))
      in
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
      in
      drain [] = expected)

let prop_permutation_bijective =
  QCheck.Test.make ~name:"permutation is bijective" ~count:100
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, n) ->
      let n = n + 1 in
      let p = Rng.permutation (Rng.of_int seed) n in
      let seen = Array.make n false in
      Array.iter (fun i -> seen.(i) <- true) p;
      Array.for_all Fun.id seen)

let prop_stats_mean_bounded =
  QCheck.Test.make ~name:"mean lies within [min, max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.mean s >= Stats.min s -. 1e-9 && Stats.mean s <= Stats.max s +. 1e-9)

let prop_zipf_sample_in_range =
  QCheck.Test.make ~name:"zipf samples stay in range" ~count:100
    QCheck.(triple small_int (int_bound 500) (float_bound_inclusive 1.99))
    (fun (seed, n, theta) ->
      let n = n + 1 in
      let z = Zipf.create ~n ~theta in
      let rng = Rng.of_int seed in
      List.for_all
        (fun _ ->
          let v = Zipf.sample z rng in
          v >= 0 && v < n)
        (List.init 100 Fun.id))

let prop_hypergeom_tail_in_unit =
  QCheck.Test.make ~name:"hypergeometric tail is a probability" ~count:200
    QCheck.(quad (int_range 1 500) (int_bound 500) (int_bound 500) (int_bound 500))
    (fun (total, bad, draws, at_least) ->
      let bad = min bad total and draws = min draws total in
      let p = Logspace.hypergeom_tail ~total ~bad ~draws ~at_least in
      p >= 0.0 && p <= 1.0 +. 1e-12)

let prop_log_add_commutative =
  QCheck.Test.make ~name:"log_add commutes" ~count:200
    QCheck.(pair (float_range (-50.0) 50.0) (float_range (-50.0) 50.0))
    (fun (a, b) -> Float.abs (Logspace.log_add a b -. Logspace.log_add b a) < 1e-9)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_heap_pop_sorted;
      prop_heap_ties_fifo;
      prop_permutation_bijective;
      prop_stats_mean_bounded;
      prop_zipf_sample_in_range;
      prop_hypergeom_tail_in_unit;
      prop_log_add_commutative;
    ]

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "split_named order-free" `Quick test_rng_split_named_order_free;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int rejects nonpositive" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "int uniform" `Slow test_rng_int_uniform;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "permutation valid" `Quick test_rng_permutation_valid;
          Alcotest.test_case "permutation uniform" `Slow test_rng_permutation_uniform_position;
          Alcotest.test_case "bytes length" `Quick test_rng_bytes_length;
          Alcotest.test_case "pick" `Quick test_rng_pick;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "random vs sort" `Quick test_heap_random_against_sort;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map preserves submission order" `Quick test_pool_map_ordered;
          Alcotest.test_case "worker exceptions propagate" `Quick test_pool_exception_propagates;
          Alcotest.test_case "jobs=1 runs inline" `Quick test_pool_sequential_inline;
        ] );
      ( "memo",
        [
          Alcotest.test_case "exactly once under contention" `Quick test_memo_exactly_once;
          Alcotest.test_case "clear recomputes" `Quick test_memo_clear_recomputes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic moments" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "series binning" `Quick test_series_binning;
          Alcotest.test_case "series rate" `Quick test_series_rate;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "uniform at theta 0" `Quick test_zipf_uniform_when_theta_zero;
          Alcotest.test_case "monotone pmf" `Quick test_zipf_monotone_pmf;
          Alcotest.test_case "pmf sums to one" `Quick test_zipf_pmf_sums_to_one;
          Alcotest.test_case "sample matches pmf" `Slow test_zipf_sample_matches_pmf;
          Alcotest.test_case "high skew concentrates" `Quick test_zipf_high_skew_concentrates;
        ] );
      ( "logspace",
        [
          Alcotest.test_case "log_gamma factorials" `Quick test_log_gamma_factorials;
          Alcotest.test_case "log_gamma half" `Quick test_log_gamma_half;
          Alcotest.test_case "log_choose" `Quick test_log_choose;
          Alcotest.test_case "log_add" `Quick test_log_add;
          Alcotest.test_case "hypergeom pmf normalizes" `Quick test_hypergeom_pmf_sums_to_one;
          Alcotest.test_case "hypergeom tail monotone" `Quick test_hypergeom_tail_monotone;
          Alcotest.test_case "hypergeom exact small case" `Quick test_hypergeom_exact_small;
          Alcotest.test_case "paper committee sizes" `Quick test_hypergeom_paper_committee_sizes;
          Alcotest.test_case "binomial limits" `Quick test_binomial_tail_limits;
          Alcotest.test_case "binomial approximates hypergeom" `Quick
            test_binomial_approximates_hypergeom;
        ] );
      ( "table",
        [
          Alcotest.test_case "render aligns" `Quick test_table_render_aligns;
          Alcotest.test_case "fnum" `Quick test_table_fnum;
          Alcotest.test_case "series render" `Quick test_series_render;
        ] );
      ("properties", qsuite);
    ]
