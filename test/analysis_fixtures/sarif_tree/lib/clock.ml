(* Snapshot fixture: one R1 finding plus the missing-interface R4. *)
let now () = Unix.gettimeofday ()
