(* R5 negative fixture: helper-derived sizes and unrelated arithmetic. *)

let next i = i + 1

let padded f = (2 * f) + 2

let scaled k f = (k * f) + 1

let doubled f = 2 * (f + 1)
