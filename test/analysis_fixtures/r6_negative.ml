(* R6 fixture: formatting without console output; must stay quiet. *)

let render x = Printf.sprintf "x = %d" x

let log buf s = Buffer.add_string buf s

let to_chan oc s = output_string oc s
