(* R3 fixture: untyped failure paths; each binding fires under lib/. *)

let boom () = failwith "boom"

let bad () = invalid_arg "bad"

let impossible () = assert false
