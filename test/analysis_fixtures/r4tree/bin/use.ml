let () = print_int Widget.used
