let x = 1
