(* R1 fixture: every binding below must fire when linted under a lib/ path. *)

let seed () = Random.self_init ()

let t0 () = Unix.gettimeofday ()

let wall () = Sys.time ()

let sum tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0

let dump tbl = Hashtbl.iter (fun _ _ -> ()) tbl
