(* R5 positive fixture: bare quorum arithmetic in consensus/shard scope. *)

let quorum f = (2 * f) + 1

let committee f = 3 * f + 1

let flipped f = 1 + f * 2
