(* Typed or custom comparators as sort arguments: must stay quiet
   everywhere. *)

let sorted xs = List.sort Int.compare xs

let by_name xs = List.sort (fun (a, _) (b, _) -> String.compare a b) xs

let arr a = Array.sort Float.compare a

let dedup xs = List.sort_uniq String.compare xs
