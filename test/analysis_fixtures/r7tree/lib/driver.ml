(* R7 fixture: an unguarded task-reachable access (fires), a directly
   guarded one, a wrapper-guarded one (the false-positive case), and a
   synchronized cell (quiet). *)
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  let v = f () in
  Mutex.unlock lock;
  v

let unguarded pool = Pool.submit pool (fun () -> Gstate.bump 1)

let guarded_direct pool =
  Pool.submit pool (fun () -> Mutex.protect lock (fun () -> Gstate.record_error ()))

let guarded_wrapper pool = Pool.submit pool (fun () -> with_lock (fun () -> Gstate.record_error ()))

let synchronized pool = Pool.submit pool (fun () -> Gstate.bump_total 2)
