(* R7 fixture: a module that hand-rolls synchronization must mutate under
   the lock. *)
type t = { m : Mutex.t; mutable value : int; pending : int Queue.t }

let create () = { m = Mutex.create (); value = 0; pending = Queue.create () }

let set_locked t v =
  Mutex.lock t.m;
  t.value <- v;
  Mutex.unlock t.m

let set_racy t v = t.value <- v

let push_racy t v = Queue.add v t.pending
