(* R7 fixture: raw vs synchronized toplevel state, touched from Driver. *)
let hits = ref 0

let errors = ref 0

let total = Atomic.make 0

let bump n = hits := !hits + n

let record_error () = incr errors

let bump_total n = ignore (Atomic.fetch_and_add total n)
