(* R1 fixture: the violation fires but the inline marker suppresses it. *)

(* ahl_lint: allow R1 *)
let sum tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
