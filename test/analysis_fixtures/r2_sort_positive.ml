(* R2 sort-argument fixture: bare polymorphic compare handed to a
   sort/dedup must fire anywhere under lib/ — including paths outside the
   narrower R2 message/state scope — and stay quiet under bench/. *)

let sorted xs = List.sort compare xs

let dedup xs = List.sort_uniq compare xs

let arr a = Array.sort Stdlib.compare a
