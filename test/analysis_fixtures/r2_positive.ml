(* R2 fixture: every binding below must fire when linted under
   lib/consensus, lib/ledger, or lib/shard — and stay quiet elsewhere. *)

let dedup xs = List.sort_uniq compare xs

let has x xs = List.mem x xs

let lookup k xs = List.assoc k xs

let is_nil x = x = None

let nonempty x = x <> []

let phys a b = a == b

let cmp a b = Stdlib.compare a b

let lo a b = min a b

let hi a b = Stdlib.max a b
