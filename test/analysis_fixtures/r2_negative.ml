(* R2 fixture: typed comparisons; must stay quiet even under lib/consensus. *)

let dedup xs = List.sort_uniq Int.compare xs

let has x xs = List.exists (Int.equal x) xs

let is_nil x = Option.is_none x

let same a b = String.equal a b

let scalar_eq (a : int) b = a = b

let lo a b = Int.min a b

let hi a b = Float.max a b
