(* R3 fixture: typed errors and honest asserts; must stay quiet. *)

let safe () = Error "boom"

let check x = if x then Ok () else Error "bad"

let total = function Some v -> v | None -> 0

let guarded x =
  assert (x >= 0);
  x
