(* R8 fixture: a block-boundary merge fold in sink scope.  The canonical
   fold is a pure function of the delta set — sorted entries, deterministic
   combine — and must stay quiet.  The tainted variant lets an ambient
   random draw reach the materialised state, which must fire. *)
let fold_canonical entries state =
  List.iter (fun (k, d) -> Hashtbl.replace state k d) (List.sort compare entries)

let fold_tainted entries state =
  List.iter (fun (k, d) -> Hashtbl.replace state k (d + Random.int 2)) entries
