(* R8 fixture: consensus code reaches into Entropy, so its sources fire. *)
let tag x = Entropy.source_tag x

let tick () = Entropy.jitter ()

let ident () = Entropy.who ()

let mem () = Entropy.pressure ()
