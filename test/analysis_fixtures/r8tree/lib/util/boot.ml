(* R8 fixture: module initialisation runs in every linked program, so it
   is a sink root even outside the sink directories. *)
let seed = ref 0

let () = seed := Random.bits ()
