(* R8 fixture: every nondeterminism source, plus one the sinks never
   reach. *)
let source_tag x = Hashtbl.hash x

let jitter () = Random.int 1000

let who () = Domain.self ()

let pressure () = Gc.minor_words ()

let unreachable_entropy () = Random.bool ()
