(* R1 fixture: deterministic equivalents; must stay quiet under a lib/ path. *)

let sum tbl = Repro_util.Det.fold ~compare:Int.compare (fun _ v acc -> acc + v) tbl 0

let keys tbl = Repro_util.Det.keys ~compare:Int.compare tbl

let rand rng = Repro_util.Rng.float rng 1.0

let size tbl = Hashtbl.length tbl
