(* R6 fixture: direct console printing from library code; five findings. *)

let debug x = Printf.printf "x = %d\n" x

let warn msg = Printf.eprintf "warning: %s\n" msg

let shout s = print_endline s

let put s = print_string s

let complain s = prerr_endline s
