open Repro_crypto
open Repro_sim
open Repro_consensus

(* ------------------------------------------------------------------ *)
(* Quorum bookkeeping                                                  *)
(* ------------------------------------------------------------------ *)

let test_quorum_counts_distinct_voters () =
  let q = Quorum.create ~n:4 in
  Alcotest.(check int) "first" 1 (Quorum.vote q ~view:0 ~seq:1 ~digest:7 ~member:0);
  Alcotest.(check int) "dup ignored" 1 (Quorum.vote q ~view:0 ~seq:1 ~digest:7 ~member:0);
  Alcotest.(check int) "second" 2 (Quorum.vote q ~view:0 ~seq:1 ~digest:7 ~member:1)

let test_quorum_digests_separate () =
  let q = Quorum.create ~n:4 in
  ignore (Quorum.vote q ~view:0 ~seq:1 ~digest:7 ~member:0);
  ignore (Quorum.vote q ~view:0 ~seq:1 ~digest:8 ~member:1);
  Alcotest.(check int) "digest 7" 1 (Quorum.count q ~view:0 ~seq:1 ~digest:7);
  Alcotest.(check int) "digest 8" 1 (Quorum.count q ~view:0 ~seq:1 ~digest:8)

let test_quorum_forget_below () =
  let q = Quorum.create ~n:4 in
  ignore (Quorum.vote q ~view:0 ~seq:1 ~digest:7 ~member:0);
  ignore (Quorum.vote q ~view:0 ~seq:10 ~digest:7 ~member:0);
  Quorum.forget_below q ~seq:5;
  Alcotest.(check int) "old gone" 0 (Quorum.count q ~view:0 ~seq:1 ~digest:7);
  Alcotest.(check int) "new kept" 1 (Quorum.count q ~view:0 ~seq:10 ~digest:7)

let test_quorum_voters () =
  let q = Quorum.create ~n:4 in
  ignore (Quorum.vote q ~view:0 ~seq:1 ~digest:7 ~member:2);
  ignore (Quorum.vote q ~view:0 ~seq:1 ~digest:7 ~member:0);
  Alcotest.(check (list int)) "sorted voters" [ 0; 2 ] (Quorum.voters q ~view:0 ~seq:1 ~digest:7)

let test_quorum_cert () =
  let q = Quorum.create ~n:5 in
  ignore (Quorum.vote q ~view:0 ~seq:3 ~digest:9 ~member:4);
  Alcotest.(check bool) "below threshold" true
    (Quorum.cert q ~threshold:2 ~view:0 ~seq:3 ~digest:9 = None);
  ignore (Quorum.vote q ~view:0 ~seq:3 ~digest:9 ~member:1);
  Alcotest.(check bool) "cert lists ascending signers" true
    (Quorum.cert q ~threshold:2 ~view:0 ~seq:3 ~digest:9 = Some [ 1; 4 ]);
  (* votes for a different digest never leak into the certificate *)
  ignore (Quorum.vote q ~view:0 ~seq:3 ~digest:8 ~member:2);
  Alcotest.(check bool) "other digest uncertified" true
    (Quorum.cert q ~threshold:2 ~view:0 ~seq:3 ~digest:8 = None)

let test_quorum_forget_below_keeps_uncertified () =
  (* GC is keyed on the certified watermark: forgetting below seq s drops
     exactly the slots the certificate covers.  Every slot at or above s —
     certified or not, however sparse its votes — must keep them, or a
     stabilizing checkpoint would erase in-flight prepare/commit state. *)
  let q = Quorum.create ~n:7 in
  for s = 1 to 40 do
    ignore (Quorum.vote q ~view:0 ~seq:s ~digest:(100 + s) ~member:(s mod 3))
  done;
  Quorum.forget_below q ~seq:17;
  for s = 1 to 16 do
    Alcotest.(check int)
      (Printf.sprintf "slot %d below the watermark is collected" s)
      0
      (Quorum.count q ~view:0 ~seq:s ~digest:(100 + s))
  done;
  for s = 17 to 40 do
    Alcotest.(check int)
      (Printf.sprintf "uncertified slot %d survives" s)
      1
      (Quorum.count q ~view:0 ~seq:s ~digest:(100 + s))
  done

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

let test_config_quorum_rules () =
  let hl = Config.default Config.hl ~n:7 in
  Alcotest.(check int) "HL f" 2 (Config.f_of hl);
  Alcotest.(check int) "HL quorum 2f+1" 5 (Config.quorum_size hl);
  let ahl = Config.default Config.ahl_plus ~n:7 in
  Alcotest.(check int) "AHL f" 3 (Config.f_of ahl);
  Alcotest.(check int) "AHL quorum f+1" 4 (Config.quorum_size ahl)

let test_config_n_for_f () =
  Alcotest.(check int) "HL 3f+1" 16 (Config.n_for_f Config.hl ~f:5);
  Alcotest.(check int) "AHL 2f+1" 11 (Config.n_for_f Config.ahl_plus ~f:5)

let test_default_byz_strategy_flags () =
  (* The throughput experiments' scripted adversary: conflicting-message
     noise on, the targeted attacks off. *)
  let s = Pbft.default_byz_strategy in
  Alcotest.(check bool) "vote noise on" true s.Pbft.vote_noise;
  Alcotest.(check bool) "equivocation on" true s.Pbft.naive_equivocation;
  Alcotest.(check bool) "split brain off" false s.Pbft.split_brain;
  Alcotest.(check bool) "no silent targets" true (s.Pbft.silent_toward = []);
  Alcotest.(check bool) "no stale replay" false s.Pbft.stale_view_replay

let test_config_variant_flags () =
  Alcotest.(check bool) "HL plain" false Config.hl.Config.attested;
  Alcotest.(check bool) "AHL attested" true Config.ahl.Config.attested;
  Alcotest.(check bool) "AHL no split" false Config.ahl.Config.split_queues;
  Alcotest.(check bool) "AHL+ splits" true Config.ahl_plus.Config.split_queues;
  Alcotest.(check bool) "AHL+ forwards" true Config.ahl_plus.Config.forward_requests;
  Alcotest.(check bool) "AHLR relays" true Config.ahlr.Config.relay

(* ------------------------------------------------------------------ *)
(* A reusable single-committee fixture                                 *)
(* ------------------------------------------------------------------ *)

type fixture = {
  engine : Engine.t;
  nodes : Pbft.msg Node.t array;
  committee : Pbft.committee;
  network : Pbft.msg Network.t;
  metrics : Metrics.t;
  executions : (int, (int * int list) list ref) Hashtbl.t;
      (* member -> (seq, req ids) in execution order *)
  faults : Faults.t;
}

let make_fixture ?(variant = Config.ahl_plus) ?(n = 5) ?(byzantine = []) () =
  let engine = Engine.create ~seed:11L in
  let cfg = Config.default variant ~n in
  let keystore = Keys.create_keystore (Engine.rng engine) in
  let metrics = Metrics.create engine in
  let faults = Faults.with_byzantine_ids ~n ~ids:byzantine in
  let network = Network.create engine ~topology:(Topology.lan ()) in
  let committee = ref None in
  let nodes =
    Array.init n (fun id ->
        Node.create engine ~id ~inbox_mode:(Config.inbox_mode cfg) ~handler:(fun node msg ->
            match !committee with
            | Some c -> Pbft.handle c ~member:(Node.id node) msg
            | None -> ()))
  in
  Array.iter (Network.register network) nodes;
  let executions = Hashtbl.create 8 in
  for m = 0 to n - 1 do
    Hashtbl.replace executions m (ref [])
  done;
  let c =
    Pbft.create ~engine ~keystore ~costs:Cost_model.default ~config:cfg ~faults ~metrics
      ~enclave_base_id:0
      ~send:(fun ~src ~dst ~channel ~bytes m ->
        Network.send network ~src:nodes.(src) ~dst ~channel ~bytes m)
      ~charge:(fun ~member cost -> Node.charge nodes.(member) cost)
      ~execute:(fun ~member ~seq batch ->
        let log = Hashtbl.find executions member in
        log := (seq, List.map (fun r -> r.Types.req_id) batch) :: !log)
  in
  committee := Some c;
  Pbft.set_alive c (fun m -> not (Node.is_crashed nodes.(m)));
  Pbft.start c;
  { engine; nodes; committee = c; network; metrics; executions; faults }

let submit ?via fx ~req_id =
  let member = match via with Some m -> m | None -> req_id mod Array.length fx.nodes in
  let req = Types.request ~req_id ~client:0 ~submitted:(Engine.now fx.engine) () in
  Network.send_external fx.network ~src_region:0 ~dst:member ~channel:Pbft.request_channel
    ~bytes:240
    (Pbft.submit_via fx.committee ~member req)

let committed_ids fx ~member =
  !(Hashtbl.find fx.executions member)
  |> List.rev
  |> List.concat_map (fun (_, ids) -> ids)

(* ------------------------------------------------------------------ *)
(* PBFT end-to-end                                                     *)
(* ------------------------------------------------------------------ *)

let test_pbft_commits_requests () =
  let fx = make_fixture () in
  for i = 0 to 19 do
    submit fx ~req_id:i
  done;
  Engine.run fx.engine ~until:5.0;
  let ids = committed_ids fx ~member:0 in
  Alcotest.(check int) "all 20 committed" 20 (List.length ids);
  Alcotest.(check (list int)) "each exactly once" (List.init 20 Fun.id)
    (List.sort compare ids)

let test_pbft_all_variants_commit () =
  List.iter
    (fun variant ->
      let fx = make_fixture ~variant () in
      for i = 0 to 9 do
        submit fx ~req_id:i
      done;
      Engine.run fx.engine ~until:5.0;
      Alcotest.(check int)
        (variant.Config.name ^ " commits")
        10
        (List.length (committed_ids fx ~member:0)))
    Config.all_variants

let test_pbft_safety_across_replicas () =
  (* Every honest replica executes the same batches at the same seqs. *)
  let fx = make_fixture ~n:7 () in
  for i = 0 to 49 do
    submit fx ~req_id:i
  done;
  Engine.run fx.engine ~until:8.0;
  let reference = !(Hashtbl.find fx.executions 0) |> List.rev in
  Alcotest.(check bool) "some blocks" true (reference <> []);
  for m = 1 to 6 do
    let other = !(Hashtbl.find fx.executions m) |> List.rev in
    (* Prefix equality: a replica may lag, but never diverge. *)
    let rec prefix a b =
      match (a, b) with
      | [], _ | _, [] -> true
      | x :: xs, y :: ys -> x = y && prefix xs ys
    in
    Alcotest.(check bool) (Printf.sprintf "replica %d agrees" m) true (prefix reference other)
  done

let test_pbft_view_change_on_leader_crash () =
  let fx = make_fixture ~n:5 () in
  for i = 0 to 4 do
    submit fx ~req_id:i
  done;
  Engine.run fx.engine ~until:3.0;
  Alcotest.(check int) "view 0 initially" 0 (Pbft.current_view fx.committee ~member:2);
  (* Kill the leader; later requests must still commit after a view change. *)
  Node.crash fx.nodes.(0);
  for i = 100 to 109 do
    (* Clients notice the dead peer and use a live one. *)
    submit fx ~req_id:i ~via:(1 + (i mod 4))
  done;
  Engine.run fx.engine ~until:20.0;
  let v = Pbft.current_view fx.committee ~member:2 in
  Alcotest.(check bool) "view advanced" true (v > 0);
  (* Rotation law: the adopted view's leader is v mod n, and it is not the
     corpse the committee just abandoned. *)
  Alcotest.(check int) "leader rotates with the view" (v mod 5)
    (Pbft.leader_of_view fx.committee v);
  Alcotest.(check bool) "new leader is alive" true (Pbft.leader_of_view fx.committee v <> 0);
  let ids = committed_ids fx ~member:2 in
  List.iter
    (fun i ->
      Alcotest.(check bool) (Printf.sprintf "req %d committed" i) true (List.mem i ids))
    [ 100; 105; 109 ]

let test_pbft_new_view_reproposes_prepared () =
  (* Batches that prepared in view 0 but never committed (every Commit is
     eaten by the network) must survive the view change: the New_view
     re-proposals carry their certificates and the new leader drives them
     to execution. *)
  let fx = make_fixture ~n:5 () in
  Network.set_filter fx.network (fun ~src:_ ~dst:_ msg ->
      match msg with Pbft.Commit _ -> Network.Drop | _ -> Network.Deliver);
  for i = 0 to 4 do
    submit fx ~req_id:i ~via:1
  done;
  Engine.run fx.engine ~until:1.5;
  Alcotest.(check int) "nothing commits while commits are dropped" 0
    (List.length (committed_ids fx ~member:2));
  Node.crash fx.nodes.(0);
  Network.clear_filter fx.network;
  Engine.run fx.engine ~until:30.0;
  Alcotest.(check bool) "view advanced" true (Pbft.current_view fx.committee ~member:2 > 0);
  Alcotest.(check (list int)) "prepared batches re-proposed, committed exactly once"
    (List.init 5 Fun.id)
    (List.sort compare (committed_ids fx ~member:2))

let test_pbft_progress_with_f_crashes () =
  (* AHL+: n = 5, f = 2 — two crashed followers must not stop progress. *)
  let fx = make_fixture ~n:5 () in
  Node.crash fx.nodes.(3);
  Node.crash fx.nodes.(4);
  for i = 0 to 9 do
    submit fx ~req_id:i ~via:(i mod 3)
  done;
  Engine.run fx.engine ~until:6.0;
  Alcotest.(check int) "commits with quorum f+1" 10 (List.length (committed_ids fx ~member:0))

let test_pbft_no_progress_beyond_f_crashes () =
  let fx = make_fixture ~n:5 () in
  Node.crash fx.nodes.(2);
  Node.crash fx.nodes.(3);
  Node.crash fx.nodes.(4);
  for i = 0 to 9 do
    submit fx ~req_id:i
  done;
  Engine.run fx.engine ~until:6.0;
  Alcotest.(check int) "no quorum, no commits" 0 (List.length (committed_ids fx ~member:0))

let test_pbft_byzantine_equivocation_tolerated () =
  (* n = 5 AHL+ tolerates f = 2 equivocators (A2M blocks their lies). *)
  let fx = make_fixture ~n:5 ~byzantine:[ 3; 4 ] () in
  for i = 0 to 9 do
    submit fx ~req_id:i ~via:(i mod 3)
  done;
  Engine.run fx.engine ~until:10.0;
  let obs = Pbft.observer fx.committee in
  Alcotest.(check int) "commits despite equivocators" 10 (List.length (committed_ids fx ~member:obs))

let test_pbft_hl_message_complexity_higher () =
  let count variant =
    let fx = make_fixture ~variant ~n:7 () in
    for i = 0 to 19 do
      submit fx ~req_id:i
    done;
    Engine.run fx.engine ~until:5.0;
    Network.sent_count fx.network
  in
  let hl = count Config.hl and ahlr = count Config.ahlr in
  Alcotest.(check bool) "O(N^2) vs O(N)" true (hl > 2 * ahlr)

let test_pbft_observer_skips_byzantine () =
  let fx = make_fixture ~n:5 ~byzantine:[ 0 ] () in
  Alcotest.(check int) "observer is first honest" 1 (Pbft.observer fx.committee)

(* ------------------------------------------------------------------ *)
(* Lockstep (Tendermint / IBFT)                                        *)
(* ------------------------------------------------------------------ *)

let make_lockstep ?(flavour = Lockstep.Tendermint) ~n () =
  let engine = Engine.create ~seed:21L in
  let keystore = Keys.create_keystore (Engine.rng engine) in
  let metrics = Metrics.create engine in
  let network = Network.create engine ~topology:(Topology.lan ()) in
  let committee = ref None in
  let nodes =
    Array.init n (fun id ->
        Node.create engine ~id ~inbox_mode:(Inbox.Shared 5000) ~handler:(fun node msg ->
            match !committee with
            | Some c -> Lockstep.handle c ~member:(Node.id node) msg
            | None -> ()))
  in
  Array.iter (Network.register network) nodes;
  let c =
    Lockstep.create ~engine ~keystore ~costs:Cost_model.default ~flavour ~n ~batch_max:50
      ~metrics
      ~send:(fun ~src ~dst ~channel ~bytes m ->
        Network.send network ~src:nodes.(src) ~dst ~channel ~bytes m)
      ~charge:(fun ~member cost -> Node.charge nodes.(member) cost)
  in
  committee := Some c;
  Lockstep.start c;
  (engine, network, nodes, c, metrics)

let test_lockstep_commits () =
  let engine, network, _, c, metrics = make_lockstep ~n:4 () in
  for i = 0 to 9 do
    let req = Types.request ~req_id:i ~client:0 ~submitted:(Engine.now engine) () in
    Network.send_external network ~src_region:0 ~dst:(i mod 4) ~channel:Lockstep.request_channel
      ~bytes:240 (Lockstep.submit c req)
  done;
  Engine.run engine ~until:10.0;
  Alcotest.(check int) "all committed" 10 (Metrics.committed metrics);
  Alcotest.(check bool) "heights advanced" true (Lockstep.height c ~member:0 >= 1)

let test_lockstep_heights_agree () =
  let engine, network, _, c, _ = make_lockstep ~n:4 () in
  for i = 0 to 29 do
    let req = Types.request ~req_id:i ~client:0 ~submitted:(Engine.now engine) () in
    Network.send_external network ~src_region:0 ~dst:(i mod 4) ~channel:Lockstep.request_channel
      ~bytes:240 (Lockstep.submit c req)
  done;
  Engine.run engine ~until:10.0;
  let h0 = Lockstep.height c ~member:0 in
  for m = 1 to 3 do
    Alcotest.(check bool) "within one height" true (abs (Lockstep.height c ~member:m - h0) <= 1)
  done

let test_lockstep_round_change_on_proposer_crash () =
  let engine, network, nodes, c, metrics = make_lockstep ~n:4 () in
  (* Let one height commit so we are at height >= 1, then crash the next
     proposer before feeding more work. *)
  let send i =
    let req = Types.request ~req_id:i ~client:0 ~submitted:(Engine.now engine) () in
    Network.send_external network ~src_region:0 ~dst:(i mod 4) ~channel:Lockstep.request_channel
      ~bytes:240 (Lockstep.submit c req)
  in
  send 0;
  Engine.run engine ~until:3.0;
  let h = Lockstep.height c ~member:3 in
  Node.crash nodes.((h + 0) mod 4);
  for i = 1 to 10 do
    send (100 + i)
  done;
  Engine.run engine ~until:25.0;
  Alcotest.(check bool) "round changes occurred" true (Lockstep.round_changes c >= 1);
  Alcotest.(check bool) "still commits" true (Metrics.committed metrics > 1)

(* ------------------------------------------------------------------ *)
(* Raft                                                                *)
(* ------------------------------------------------------------------ *)

let make_raft ~n () =
  let engine = Engine.create ~seed:31L in
  let metrics = Metrics.create engine in
  let network = Network.create engine ~topology:(Topology.lan ()) in
  let cluster = ref None in
  let nodes =
    Array.init n (fun id ->
        Node.create engine ~id ~inbox_mode:(Inbox.Shared 5000) ~handler:(fun node msg ->
            match !cluster with
            | Some c -> Raft.handle c ~member:(Node.id node) msg
            | None -> ()))
  in
  Array.iter (Network.register network) nodes;
  let c =
    Raft.create ~engine ~costs:Cost_model.default ~n ~batch_max:50 ~metrics
      ~send:(fun ~src ~dst ~channel ~bytes m ->
        Network.send network ~src:nodes.(src) ~dst ~channel ~bytes m)
      ~charge:(fun ~member cost -> Node.charge nodes.(member) cost)
  in
  cluster := Some c;
  Raft.start c;
  (engine, network, nodes, c, metrics)

let test_raft_commits () =
  let engine, network, _, c, metrics = make_raft ~n:5 () in
  for i = 0 to 9 do
    let req = Types.request ~req_id:i ~client:0 ~submitted:(Engine.now engine) () in
    Network.send_external network ~src_region:0 ~dst:0 ~channel:Raft.request_channel ~bytes:240
      (Raft.submit c req)
  done;
  Engine.run engine ~until:10.0;
  Alcotest.(check int) "all committed" 10 (Metrics.committed metrics);
  Alcotest.(check (option int)) "leader is node 0" (Some 0) (Raft.leader_id c)

let test_raft_election_after_leader_crash () =
  let engine, network, nodes, c, metrics = make_raft ~n:5 () in
  let send i dst =
    let req = Types.request ~req_id:i ~client:0 ~submitted:(Engine.now engine) () in
    Network.send_external network ~src_region:0 ~dst ~channel:Raft.request_channel ~bytes:240
      (Raft.submit c req)
  in
  send 0 0;
  Engine.run engine ~until:2.0;
  Raft.crash c ~member:0;
  Node.crash nodes.(0);
  Engine.run engine ~until:10.0;
  (match Raft.leader_id c with
  | Some l -> Alcotest.(check bool) "new leader elected" true (l <> 0)
  | None -> Alcotest.fail "no leader after crash");
  Alcotest.(check bool) "election counted" true (Raft.elections c >= 1);
  (* New work reaches the new leader and commits (node 0 — the metrics
     observer — is dead, so check log indexes instead of counters). *)
  ignore metrics;
  let new_leader = Option.get (Raft.leader_id c) in
  let before = Raft.committed_index c ~member:new_leader in
  for i = 10 to 14 do
    send i new_leader
  done;
  Engine.run engine ~until:20.0;
  Alcotest.(check bool) "commits resumed" true
    (Raft.committed_index c ~member:new_leader > before)

let test_raft_followers_catch_up () =
  let engine, network, _, c, _ = make_raft ~n:5 () in
  for i = 0 to 19 do
    let req = Types.request ~req_id:i ~client:0 ~submitted:(Engine.now engine) () in
    Network.send_external network ~src_region:0 ~dst:0 ~channel:Raft.request_channel ~bytes:240
      (Raft.submit c req)
  done;
  Engine.run engine ~until:10.0;
  let leader_idx = Raft.committed_index c ~member:0 in
  Alcotest.(check bool) "leader committed" true (leader_idx >= 1);
  for m = 1 to 4 do
    Alcotest.(check bool) "follower within one entry" true
      (abs (Raft.committed_index c ~member:m - leader_idx) <= 1)
  done

(* ------------------------------------------------------------------ *)
(* PoET                                                                *)
(* ------------------------------------------------------------------ *)

let test_poet_basic_run () =
  let r =
    Poet.run ~n:8
      ~topology:(Topology.constrained_lan ~latency_ms:100.0 ~bandwidth_mbps:50.0)
      ~block_mb:2.0 ~block_time:18.0 ~l_bits:0 ~tx_bytes:500 ~duration:600.0 ()
  in
  Alcotest.(check bool) "blocks adopted" true (r.Poet.adopted > 0);
  Alcotest.(check bool) "adopted <= produced" true (r.Poet.adopted <= r.Poet.produced);
  Alcotest.(check bool) "stale in [0,1]" true (r.Poet.stale_rate >= 0.0 && r.Poet.stale_rate < 1.0);
  Alcotest.(check bool) "positive throughput" true (r.Poet.throughput > 0.0)

let test_poet_plus_reduces_stale () =
  let run l_bits =
    Poet.run ~n:32
      ~topology:(Topology.constrained_lan ~latency_ms:100.0 ~bandwidth_mbps:50.0)
      ~block_mb:8.0 ~block_time:18.0 ~l_bits ~tx_bytes:500 ~duration:2400.0 ()
  in
  let plain = run 0 and plus = run (Poet.plus_l_bits ~n:32) in
  Alcotest.(check bool) "PoET+ stales less" true (plus.Poet.stale_rate < plain.Poet.stale_rate)

let test_poet_plus_l_bits () =
  Alcotest.(check int) "n=128 -> l=4" 4 (Poet.plus_l_bits ~n:128);
  Alcotest.(check bool) "at least 1" true (Poet.plus_l_bits ~n:2 >= 1)

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)
(* ------------------------------------------------------------------ *)

let test_harness_open_loop () =
  let r =
    Harness.run ~duration:8.0 ~warmup:2.0 ~variant:Config.ahl_plus ~n:4
      ~topology:(Topology.lan ())
      ~workload:(Harness.Open_loop { rate = 500.0; clients = 4 })
      ()
  in
  Alcotest.(check bool) "throughput ~ offered" true
    (r.Harness.throughput > 350.0 && r.Harness.throughput < 650.0);
  Alcotest.(check bool) "latency positive" true (r.Harness.latency_mean > 0.0)

let test_harness_closed_loop_saturates () =
  let tps clients =
    (Harness.run ~duration:8.0 ~warmup:2.0 ~variant:Config.ahl_plus ~n:4
       ~topology:(Topology.lan ())
       ~workload:(Harness.Closed_loop { clients; outstanding = 8; think = 0.0 })
       ())
      .Harness.throughput
  in
  Alcotest.(check bool) "more clients more tps until saturation" true (tps 8 > tps 1)

let test_harness_crash_schedule_counters () =
  (* A leader crash injected through the harness must surface in the
     result's view-change counters while the committee keeps committing. *)
  let r =
    Harness.run ~seed:3L ~duration:20.0 ~warmup:2.0
      ~crashes:[ (0, 2.0) ]
      ~variant:Config.ahl_plus ~n:5 ~topology:(Topology.lan ())
      ~workload:(Harness.Open_loop { rate = 300.0; clients = 4 })
      ()
  in
  Alcotest.(check bool) "view change attempted" true (r.Harness.view_change_attempts >= 1);
  Alcotest.(check bool) "view change adopted" true (r.Harness.view_changes >= 1);
  Alcotest.(check bool) "attempts >= adoptions" true
    (r.Harness.view_change_attempts >= r.Harness.view_changes);
  Alcotest.(check bool) "still commits after the crash" true (r.Harness.committed > 0)

let test_harness_deterministic () =
  let run () =
    Harness.run ~seed:5L ~duration:6.0 ~variant:Config.ahl_plus ~n:4
      ~topology:(Topology.lan ())
      ~workload:(Harness.Open_loop { rate = 300.0; clients = 2 })
      ()
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same committed" a.Harness.committed b.Harness.committed;
  Alcotest.(check int) "same messages" a.Harness.messages_sent b.Harness.messages_sent

(* ------------------------------------------------------------------ *)
(* Fault-schedule safety property                                      *)
(* ------------------------------------------------------------------ *)

(* Under random crash/recover schedules (within the f bound), honest
   replicas' execution logs must stay prefix-consistent and every request
   that any replica executed is executed at most once there. *)
let prop_pbft_safety_under_crash_schedules =
  QCheck.Test.make ~name:"pbft: prefix safety under random crash schedules" ~count:8
    QCheck.(pair (int_range 1 1000) (list_of_size Gen.(1 -- 6) (pair (int_bound 4) (int_bound 7))))
    (fun (seed, schedule) ->
      let fx = make_fixture ~n:5 () in
      ignore seed;
      (* Submit steady work via member 0 (kept alive). *)
      for i = 0 to 39 do
        submit fx ~req_id:i ~via:0
      done;
      (* Crash/recover members 1..2 (at most f = 2 down at once) at the
         scheduled virtual times. *)
      List.iter
        (fun (who, at) ->
          let member = 1 + (who mod 2) in
          Engine.schedule fx.engine ~delay:(float_of_int (1 + at)) (fun () ->
              if Node.is_crashed fx.nodes.(member) then Node.recover fx.nodes.(member)
              else Node.crash fx.nodes.(member)))
        schedule;
      Engine.run fx.engine ~until:25.0;
      let logs =
        List.init 5 (fun m -> !(Hashtbl.find fx.executions m) |> List.rev)
      in
      let rec prefix a b =
        match (a, b) with
        | [], _ | _, [] -> true
        | x :: xs, y :: ys -> x = y && prefix xs ys
      in
      let reference = List.nth logs 0 in
      let no_dup log =
        let ids = List.concat_map snd log in
        List.length ids = List.length (List.sort_uniq compare ids)
      in
      List.for_all (fun log -> prefix reference log || prefix log reference) logs
      && List.for_all no_dup logs
      && List.length (List.concat_map snd reference) > 0)

let test_pbft_partial_synchrony_delay () =
  (* Messages delayed by 300 ms across the board: progress continues
     (liveness under partial synchrony). *)
  let fx = make_fixture ~n:4 () in
  Network.set_filter fx.network (fun ~src:_ ~dst:_ _ -> Network.Delay 0.3);
  for i = 0 to 9 do
    submit fx ~req_id:i
  done;
  Engine.run fx.engine ~until:15.0;
  Alcotest.(check int) "commits despite delay" 10 (List.length (committed_ids fx ~member:0))

let test_pbft_lossy_network_recovers () =
  (* 10% random message loss: retransmission-free PBFT rides through via
     quorum slack and checkpoint sync. *)
  let fx = make_fixture ~n:7 () in
  let rng = Repro_util.Rng.create 13L in
  Network.set_filter fx.network (fun ~src:_ ~dst:_ _ ->
      if Repro_util.Rng.float rng 1.0 < 0.10 then Network.Drop else Network.Deliver);
  for i = 0 to 29 do
    submit fx ~req_id:i
  done;
  Engine.run fx.engine ~until:30.0;
  let obs = Pbft.observer fx.committee in
  Alcotest.(check bool) "most requests commit" true
    (List.length (committed_ids fx ~member:obs) >= 25)

let test_pbft_checkpoints_stabilize () =
  (* Checkpoints every 16 blocks: after enough commits the stable horizon
     advances, proving garbage collection runs. *)
  let fx = make_fixture ~n:4 () in
  (* Drip requests so they spread over many small blocks (the checkpoint
     interval is counted in blocks, not transactions). *)
  for i = 0 to 399 do
    Engine.schedule fx.engine ~delay:(0.05 *. float_of_int i) (fun () -> submit fx ~req_id:i)
  done;
  Engine.run fx.engine ~until:40.0;
  let stable = Pbft.last_stable fx.committee ~member:0 in
  Alcotest.(check bool) "stable checkpoint advanced" true (stable >= 16);
  Alcotest.(check int) "multiple of the interval" 0 (stable mod 16)

let obs_counter metrics name =
  Option.value ~default:0 (List.assoc_opt name (Repro_obs.Metrics.counters metrics))

let test_pbft_first_cert_on_the_interval () =
  (* The first certificate must land exactly on the checkpoint interval:
     a committee that executed at least 16 but fewer than 32 blocks
     certifies seq 16 — not 15, not the latest executed slot — and every
     member binds that seq to the same execution-chain root. *)
  let fx = make_fixture ~n:4 () in
  (* 28 requests spread far apart: one block each, so the block count
     stays inside [16, 32) and the only certifiable boundary is 16. *)
  for i = 0 to 27 do
    Engine.schedule fx.engine ~delay:(0.15 *. float_of_int i) (fun () -> submit fx ~req_id:i)
  done;
  Engine.run fx.engine ~until:15.0;
  let blocks = Pbft.last_executed fx.committee ~member:0 in
  Alcotest.(check bool) "scenario stayed inside one interval" true (blocks >= 16 && blocks < 32);
  let quorum = Config.quorum_size (Config.default Config.ahl_plus ~n:4) in
  (* Replicas at equal last_executed hold equal execution-chain roots —
     the property that makes the root a certifiable digest at all. *)
  List.iter
    (fun m ->
      if Pbft.last_executed fx.committee ~member:m = blocks then
        Alcotest.(check int)
          (Printf.sprintf "member %d exec root matches" m)
          (Pbft.exec_root fx.committee ~member:0)
          (Pbft.exec_root fx.committee ~member:m))
    [ 1; 2; 3 ];
  let certs =
    List.init 4 (fun m ->
        match Pbft.checkpoint_cert fx.committee ~member:m with
        | None -> Alcotest.fail (Printf.sprintf "member %d holds no certificate" m)
        | Some (seq, root, voters) ->
            Alcotest.(check int) (Printf.sprintf "member %d certifies the boundary" m) 16 seq;
            Alcotest.(check bool)
              (Printf.sprintf "member %d cert carries a quorum" m)
              true
              (List.length (List.sort_uniq compare voters) >= quorum);
            root)
  in
  match certs with
  | r :: rest -> List.iter (Alcotest.(check int) "roots agree" r) rest
  | [] -> ()

let test_pbft_stale_checkpoint_vote_ignored () =
  (* A straggler's Checkpoint vote for a seq at or below the receiver's
     stable watermark refers to state already certified and collected:
     the receiver counts it as stale and its horizon does not move. *)
  let fx = make_fixture ~n:4 () in
  let trace = Repro_obs.Trace.create () and ometrics = Repro_obs.Metrics.create () in
  Pbft.set_probe fx.committee (Repro_obs.Probe.make ~trace ~metrics:ometrics);
  for i = 0 to 39 do
    Engine.schedule fx.engine ~delay:(0.1 *. float_of_int i) (fun () -> submit fx ~req_id:i)
  done;
  Engine.run fx.engine ~until:15.0;
  let stable = Pbft.last_stable fx.committee ~member:0 in
  Alcotest.(check bool) "a checkpoint stabilized" true (stable >= 16);
  let before = obs_counter ometrics "ckpt.stale_msg" in
  (* Deliver the straggler's vote over the wire, on the channel real
     checkpoint traffic uses. *)
  let msg = Pbft.Checkpoint { seq = stable; digest = 424242; sender = 2 } in
  Network.send_external fx.network ~src_region:0 ~dst:0 ~channel:Pbft.consensus_channel
    ~bytes:(Pbft.bytes_of_msg (Config.default Config.ahl_plus ~n:4) msg)
    msg;
  Engine.run fx.engine ~until:16.0;
  Alcotest.(check int) "straggler vote counted as stale" (before + 1)
    (obs_counter ometrics "ckpt.stale_msg");
  Alcotest.(check int) "watermark unmoved by the garbage digest" stable
    (Pbft.last_stable fx.committee ~member:0)

let test_harness_recovery_uses_fetch () =
  (* End to end through the harness: a follower crashes mid-run, recovers,
     and rejoins via the checkpoint fetch protocol — the probe records the
     applied Fetch_resp rather than the member silently staying behind. *)
  let trace = Repro_obs.Trace.create () and ometrics = Repro_obs.Metrics.create () in
  let probe = Repro_obs.Probe.make ~trace ~metrics:ometrics in
  let r =
    Harness.run ~probe ~duration:15.0 ~warmup:2.0 ~variant:Config.ahl_plus ~n:5
      ~crashes:[ (3, 4.0) ]
      ~recovers:[ (3, 9.0) ]
      ~topology:(Topology.lan ())
      ~workload:(Harness.Open_loop { rate = 400.0; clients = 8 })
      ()
  in
  Alcotest.(check bool) "run commits through the crash" true (r.Harness.committed > 0);
  Alcotest.(check bool) "recovery fetched the missed slots" true
    (obs_counter ometrics "ckpt.fetch.applied" >= 1)

let test_pbft_lagging_replica_catches_up () =
  (* A crashed follower misses whole checkpoints; on recovery the stable
     checkpoint sync (Section 5.3's state fetch) pulls it forward. *)
  let fx = make_fixture ~n:4 () in
  Node.crash fx.nodes.(3);
  for i = 0 to 199 do
    submit fx ~req_id:i ~via:(i mod 3)
  done;
  Engine.run fx.engine ~until:20.0;
  Alcotest.(check int) "lagger saw nothing" 0 (Pbft.last_executed fx.committee ~member:3);
  Node.recover fx.nodes.(3);
  for i = 200 to 299 do
    submit fx ~req_id:i ~via:(i mod 3)
  done;
  Engine.run fx.engine ~until:45.0;
  let leader_exec = Pbft.last_executed fx.committee ~member:0 in
  let lagger_exec = Pbft.last_executed fx.committee ~member:3 in
  Alcotest.(check bool) "caught up to within a checkpoint" true
    (leader_exec - lagger_exec <= 16);
  (* Quiescence: everything the leader knows about has been executed. *)
  Alcotest.(check int) "leader backlog drained" 0 (Pbft.known_backlog fx.committee ~member:0)

let test_byzantine_attack_degrades_throughput () =
  (* Figure 8 right: the conflicting-message attack costs real throughput
     but does not halt the attested variants. *)
  let run byzantine =
    (Harness.run ~duration:10.0 ~warmup:3.0 ~byzantine ~variant:Config.ahl_plus ~n:7
       ~topology:(Topology.lan ())
       ~workload:(Harness.Open_loop { rate = 1500.0; clients = 10 })
       ())
      .Harness.throughput
  in
  let honest = run 0 and attacked = run 3 in
  Alcotest.(check bool) "attack hurts" true (attacked < honest);
  Alcotest.(check bool) "but does not halt" true (attacked > 50.0)

let test_vc_backoff_cap_recovers_from_failed_view_changes () =
  (* A crashed leader plus a run of byzantine next-leaders (who never emit
     the New_view) force six consecutive failed view changes.  With the
     capped retry backoff the deadlines stay bounded and the committee
     reaches the first honest leader inside the horizon; with the cap
     lifted to the old effective exponent of 6 the deadline sum alone is
     0.25 * (2^0 + ... + 2^5) = 15.75 s and the run never recovers. *)
  let run cap =
    let trace = Repro_obs.Trace.create () and metrics = Repro_obs.Metrics.create () in
    let probe = Repro_obs.Probe.make ~trace ~metrics in
    let r =
      Harness.run ~seed:2L ~duration:12.0 ~warmup:0.0 ~byzantine:6
        ~byz_ids:[ 1; 2; 3; 4; 5; 6 ] ~crashes:[ (0, 0.1) ]
        ~tune:(fun c -> { c with Config.progress_timeout = 0.25; vc_backoff_cap = cap })
        ~probe ~variant:Config.ahl ~n:15 ~topology:(Topology.lan ())
        ~workload:(Harness.Open_loop { rate = 400.0; clients = 8 })
        ()
    in
    let capped =
      Option.value ~default:0
        (List.assoc_opt "pbft.vc.backoff_capped" (Repro_obs.Metrics.counters metrics))
    in
    (r, capped)
  in
  let default_cap = (Config.default Config.ahl ~n:15).Config.vc_backoff_cap in
  Alcotest.(check int) "default cap is 3" 3 default_cap;
  let r, capped = run default_cap in
  Alcotest.(check bool) "cap binds during the stall run" true (capped > 0);
  Alcotest.(check bool) "honest leader reached" true (r.Harness.view_changes >= 1);
  Alcotest.(check bool) "committee recovers and commits" true (r.Harness.committed > 0);
  let r6, _ = run 6 in
  Alcotest.(check int) "old exponent never recovers in-horizon" 0 r6.Harness.committed

let test_relay_watchdog_fires_on_selective_serving () =
  (* AHLR under a selective-serving byzantine leader: served replicas send
     their relay votes to a leader that sits on them, so the relay
     watchdog must suspect it ("relay-stall") and the committee must
     depose it and keep committing. *)
  let run ~attack =
    let trace = Repro_obs.Trace.create () and metrics = Repro_obs.Metrics.create () in
    let probe = Repro_obs.Probe.make ~trace ~metrics in
    let byz_ids, byz_strategy =
      if attack then
        ( [ 0 ],
          Some
            {
              Pbft.default_byz_strategy with
              Pbft.leader_attack = Some (Pbft.Leader_serve_only [ 0; 1; 2 ]);
            } )
      else ([], None)
    in
    let r =
      Harness.run ~seed:2L ~duration:12.0 ~warmup:0.0 ~byzantine:(List.length byz_ids) ~byz_ids
        ?byz_strategy ~probe ~variant:Config.ahlr ~n:4 ~topology:(Topology.lan ())
        ~workload:(Harness.Open_loop { rate = 400.0; clients = 4 })
        ()
    in
    let relay_stalls =
      Option.value ~default:0
        (List.assoc_opt "pbft.vc.reason.relay-stall" (Repro_obs.Metrics.counters metrics))
    in
    (r, relay_stalls)
  in
  let attacked, stalls = run ~attack:true in
  Alcotest.(check bool) "relay watchdog fires" true (stalls > 0);
  Alcotest.(check bool) "selective server deposed" true (attacked.Harness.view_changes >= 1);
  Alcotest.(check bool) "committee still commits" true (attacked.Harness.committed > 0);
  (* Quiet when commits merely arrive via the relay: an honest AHLR run
     must never suspect its leader. *)
  let honest, honest_stalls = run ~attack:false in
  Alcotest.(check int) "no relay-stall without the attack" 0 honest_stalls;
  Alcotest.(check int) "no view changes without the attack" 0 honest.Harness.view_changes;
  Alcotest.(check bool) "honest run commits" true (honest.Harness.committed > 0)

let test_slow_drip_leader_throttles_without_detection () =
  (* The drip strategy emits each batch just under the watchdog period:
     the committee is throttled hard but no replica ever suspects the
     leader — the stealth end of the leader-attack palette. *)
  let run byz_strategy =
    Harness.run ~seed:2L ~duration:12.0 ~warmup:2.0
      ~byzantine:(if byz_strategy = None then 0 else 1)
      ~byz_ids:(if byz_strategy = None then [] else [ 0 ])
      ?byz_strategy ~variant:Config.ahl ~n:4 ~topology:(Topology.lan ())
      ~workload:(Harness.Open_loop { rate = 400.0; clients = 4 })
      ()
  in
  let dripped =
    run (Some { Pbft.default_byz_strategy with Pbft.leader_attack = Some (Pbft.Leader_drip 1.9) })
  in
  let honest = run None in
  Alcotest.(check int) "never deposed" 0 dripped.Harness.view_changes;
  Alcotest.(check bool) "still commits" true (dripped.Harness.committed > 0);
  Alcotest.(check bool) "but badly throttled" true
    (dripped.Harness.throughput < honest.Harness.throughput /. 2.0)

let test_hl_byzantine_equivocation_splits_votes () =
  (* Without A2M the equivocators' conflicting digests pollute the vote
     tables; with 3f+1 honest margin progress continues regardless. *)
  let fx = make_fixture ~variant:Config.hl ~n:7 ~byzantine:[ 5; 6 ] () in
  for i = 0 to 9 do
    submit fx ~req_id:i ~via:(i mod 5)
  done;
  Engine.run fx.engine ~until:15.0;
  let obs = Pbft.observer fx.committee in
  Alcotest.(check int) "HL survives f equivocators" 10
    (List.length (committed_ids fx ~member:obs))

let test_pbft_partition_halts_minority () =
  (* Partition {0,1} | {2,3,4} in an n=5 AHL+ committee (quorum 3): the
     majority side keeps committing, the minority side cannot — and after
     healing the minority catches up without divergence. *)
  let fx = make_fixture ~n:5 () in
  let majority = [ 2; 3; 4 ] in
  Network.set_filter fx.network (fun ~src ~dst _ ->
      let side x = List.mem x majority in
      if src >= 0 && side src <> side dst then Network.Drop else Network.Deliver);
  (* The leader (member 0) is in the minority: nobody commits until a view
     change elects a majority-side leader. *)
  for i = 0 to 9 do
    submit fx ~req_id:i ~via:2
  done;
  Engine.run fx.engine ~until:20.0;
  let committed_majority = committed_ids fx ~member:2 in
  let committed_minority = committed_ids fx ~member:0 in
  Alcotest.(check int) "majority commits all" 10 (List.length committed_majority);
  Alcotest.(check int) "minority commits nothing" 0 (List.length committed_minority);
  (* Heal; enough post-heal traffic crosses a checkpoint, which is what
     pulls the stale minority forward (Section 5.3's state transfer). *)
  Network.clear_filter fx.network;
  for i = 10 to 409 do
    Engine.schedule fx.engine ~delay:(20.0 +. (0.02 *. float_of_int i)) (fun () ->
        submit fx ~req_id:i ~via:2)
  done;
  Engine.run fx.engine ~until:60.0;
  Alcotest.(check bool) "minority synced after heal" true
    (Pbft.last_executed fx.committee ~member:0 >= 16);
  (* Anything the minority executed itself is a prefix of the majority's
     log (no divergence). *)
  (* No divergence — but catch-up may legitimately skip a certified prefix
     (the Section 5.3 snapshot install: this embedding's snapshot hook is
     the state-free default, so a member anchored at a checkpoint adopts it
     without replay).  Whatever the minority member executed must match the
     majority slot for slot, in order, and any skipped prefix must be
     covered by its stable certificate. *)
  let log0 = !(Hashtbl.find fx.executions 0) |> List.rev in
  let log2 = !(Hashtbl.find fx.executions 2) |> List.rev in
  Alcotest.(check bool) "minority executed after heal" true (log0 <> []);
  List.iter
    (fun (seq, ids) ->
      match List.assoc_opt seq log2 with
      | Some ids2 -> Alcotest.(check (list int)) (Printf.sprintf "slot %d agrees" seq) ids2 ids
      | None -> Alcotest.fail (Printf.sprintf "slot %d unknown to the majority" seq))
    log0;
  Alcotest.(check bool) "slots executed in order" true
    (List.for_all2 ( = ) (List.map fst log0) (List.sort compare (List.map fst log0)));
  (match log0 with
  | (first, _) :: _ ->
      Alcotest.(check bool) "skipped prefix covered by a certificate" true
        (first = 1 || Pbft.last_stable fx.committee ~member:0 >= first - 1)
  | [] -> ())

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_pbft_safety_under_crash_schedules ]

let () =
  Alcotest.run "consensus"
    [
      ( "quorum",
        [
          Alcotest.test_case "distinct voters" `Quick test_quorum_counts_distinct_voters;
          Alcotest.test_case "digests separate" `Quick test_quorum_digests_separate;
          Alcotest.test_case "forget below" `Quick test_quorum_forget_below;
          Alcotest.test_case "cert threshold" `Quick test_quorum_cert;
          Alcotest.test_case "forget below keeps uncertified" `Quick
            test_quorum_forget_below_keeps_uncertified;
          Alcotest.test_case "voters" `Quick test_quorum_voters;
        ] );
      ( "config",
        [
          Alcotest.test_case "quorum rules" `Quick test_config_quorum_rules;
          Alcotest.test_case "n_for_f" `Quick test_config_n_for_f;
          Alcotest.test_case "variant flags" `Quick test_config_variant_flags;
          Alcotest.test_case "default byz strategy" `Quick test_default_byz_strategy_flags;
        ] );
      ( "pbft",
        [
          Alcotest.test_case "commits requests" `Quick test_pbft_commits_requests;
          Alcotest.test_case "all variants commit" `Quick test_pbft_all_variants_commit;
          Alcotest.test_case "safety across replicas" `Quick test_pbft_safety_across_replicas;
          Alcotest.test_case "view change on leader crash" `Quick
            test_pbft_view_change_on_leader_crash;
          Alcotest.test_case "new view re-proposes prepared" `Quick
            test_pbft_new_view_reproposes_prepared;
          Alcotest.test_case "progress with f crashes" `Quick test_pbft_progress_with_f_crashes;
          Alcotest.test_case "halts beyond f crashes" `Quick test_pbft_no_progress_beyond_f_crashes;
          Alcotest.test_case "byzantine equivocation tolerated" `Quick
            test_pbft_byzantine_equivocation_tolerated;
          Alcotest.test_case "message complexity" `Quick test_pbft_hl_message_complexity_higher;
          Alcotest.test_case "observer skips byzantine" `Quick test_pbft_observer_skips_byzantine;
        ] );
      ( "lockstep",
        [
          Alcotest.test_case "commits" `Quick test_lockstep_commits;
          Alcotest.test_case "heights agree" `Quick test_lockstep_heights_agree;
          Alcotest.test_case "round change on crash" `Quick
            test_lockstep_round_change_on_proposer_crash;
        ] );
      ( "raft",
        [
          Alcotest.test_case "commits" `Quick test_raft_commits;
          Alcotest.test_case "election after crash" `Quick test_raft_election_after_leader_crash;
          Alcotest.test_case "followers catch up" `Quick test_raft_followers_catch_up;
        ] );
      ( "poet",
        [
          Alcotest.test_case "basic run" `Quick test_poet_basic_run;
          Alcotest.test_case "PoET+ reduces stale" `Slow test_poet_plus_reduces_stale;
          Alcotest.test_case "plus l bits" `Quick test_poet_plus_l_bits;
        ] );
      ( "harness",
        [
          Alcotest.test_case "open loop" `Quick test_harness_open_loop;
          Alcotest.test_case "closed loop saturates" `Quick test_harness_closed_loop_saturates;
          Alcotest.test_case "crash schedule counters" `Quick test_harness_crash_schedule_counters;
          Alcotest.test_case "deterministic" `Quick test_harness_deterministic;
        ] );
      ( "adversarial-network",
        [
          Alcotest.test_case "partial synchrony delay" `Quick test_pbft_partial_synchrony_delay;
          Alcotest.test_case "lossy network" `Quick test_pbft_lossy_network_recovers;
          Alcotest.test_case "checkpoints stabilize" `Quick test_pbft_checkpoints_stabilize;
          Alcotest.test_case "first cert on the interval" `Quick
            test_pbft_first_cert_on_the_interval;
          Alcotest.test_case "stale checkpoint vote ignored" `Quick
            test_pbft_stale_checkpoint_vote_ignored;
          Alcotest.test_case "harness recovery uses fetch" `Quick
            test_harness_recovery_uses_fetch;
          Alcotest.test_case "lagging replica catches up" `Quick
            test_pbft_lagging_replica_catches_up;
          Alcotest.test_case "byzantine attack degrades" `Slow
            test_byzantine_attack_degrades_throughput;
          Alcotest.test_case "HL survives equivocators" `Quick
            test_hl_byzantine_equivocation_splits_votes;
          Alcotest.test_case "partition safety" `Quick test_pbft_partition_halts_minority;
          Alcotest.test_case "vc backoff cap recovery" `Slow
            test_vc_backoff_cap_recovers_from_failed_view_changes;
          Alcotest.test_case "relay watchdog on selective serving" `Slow
            test_relay_watchdog_fires_on_selective_serving;
          Alcotest.test_case "slow-drip leader throttles" `Slow
            test_slow_drip_leader_throttles_without_detection;
        ] );
      ("properties", qsuite);
    ]
