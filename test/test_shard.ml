open Repro_shard

let check_float_at eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Sizing                                                              *)
(* ------------------------------------------------------------------ *)

let test_sizing_tolerance () =
  Alcotest.(check int) "PBFT n=100" 33 (Sizing.tolerance Sizing.Pbft_third ~n:100);
  Alcotest.(check int) "AHL n=79" 39 (Sizing.tolerance Sizing.Ahl_half ~n:79)

let test_sizing_paper_committee_sizes () =
  (* Section 5.2: 25% adversary, 2^-20 — AHL+ needs ~80, PBFT needs 600+.
     Committee sizes grow mildly with the population; at N=2000 the solver
     lands at 75 and 481, and both keep growing toward the paper's numbers
     for larger N. *)
  let ours = Sizing.min_committee_size ~total:2000 ~fraction:0.25 ~rule:Sizing.Ahl_half ~security_bits:20 in
  let omni = Sizing.min_committee_size ~total:2000 ~fraction:0.25 ~rule:Sizing.Pbft_third ~security_bits:20 in
  Alcotest.(check bool) "ours around 80" true (ours >= 60 && ours <= 90);
  Alcotest.(check bool) "PBFT several hundred" true (omni >= 400);
  Alcotest.(check bool) "order of magnitude gap" true (omni > 5 * ours)

let test_sizing_monotone_in_fraction () =
  let size f =
    Sizing.min_committee_size ~total:1000 ~fraction:f ~rule:Sizing.Ahl_half ~security_bits:20
  in
  Alcotest.(check bool) "harder adversary, bigger committee" true
    (size 0.05 < size 0.15 && size 0.15 < size 0.25)

let test_sizing_faulty_probability_bounds () =
  let p = Sizing.pr_faulty_committee ~total:400 ~byzantine:100 ~n:80 Sizing.Ahl_half in
  Alcotest.(check bool) "is a probability" true (p >= 0.0 && p <= 1.0);
  let log2p = Sizing.log2_pr_faulty ~total:2000 ~byzantine:500 ~n:80 Sizing.Ahl_half in
  Alcotest.(check bool) "2^-20 reached near n=80" true (log2p <= -20.0)

let test_sizing_max_shards () =
  let k, n = Sizing.max_shards ~total:972 ~fraction:0.125 ~rule:Sizing.Ahl_half ~security_bits:20 in
  Alcotest.(check bool) "committee around 27" true (n >= 20 && n <= 40);
  Alcotest.(check int) "k = total / n" (972 / n) k

let test_sizing_epoch_transition_paper_example () =
  (* Section 5.3: n = 80, f = (n-1)/2, k = 10, B = log n = 6 gives
     Pr(faulty) ~ 1e-5 for a 25% adversary over N = 800ish.  We check the
     order of magnitude at N = 2000 where n = 80 is the safe size. *)
  let p =
    Sizing.pr_epoch_transition_faulty ~total:2000 ~byzantine:500 ~n:80 ~k:10 ~batch:6
      Sizing.Ahl_half
  in
  Alcotest.(check bool) "small but nonzero" true (p > 0.0 && p < 1e-3)

let test_sizing_swap_batch () =
  Alcotest.(check int) "log2 9" 3 (Sizing.swap_batch_size ~n:9);
  Alcotest.(check int) "log2 80" 6 (Sizing.swap_batch_size ~n:80)

let test_cross_shard_probability_normalizes () =
  let shards = 10 and args = 4 in
  let total = ref 0.0 in
  for x = 1 to args do
    total := !total +. Sizing.cross_shard_probability ~shards ~args ~touches:x
  done;
  check_float_at 1e-9 "sums to 1" 1.0 !total

let test_cross_shard_probability_closed_form_d2 () =
  (* d = 2: P(same shard) = 1/k. *)
  check_float_at 1e-12 "1/k" 0.1 (Sizing.cross_shard_probability ~shards:10 ~args:2 ~touches:1);
  check_float_at 1e-12 "1 - 1/k" 0.9 (Sizing.cross_shard_probability ~shards:10 ~args:2 ~touches:2)

let test_cross_shard_fraction_majority () =
  (* Appendix B's point: most transactions are distributed. *)
  let f = Sizing.expected_cross_shard_fraction ~shards:10 ~args:3 in
  Alcotest.(check bool) "vast majority cross-shard" true (f > 0.9)

(* ------------------------------------------------------------------ *)
(* Assignment                                                          *)
(* ------------------------------------------------------------------ *)

let test_assignment_partition () =
  let a = Assignment.derive ~seed:1L ~epoch:0 ~nodes:100 ~committees:7 in
  let seen = Array.make 100 false in
  Array.iter (Array.iter (fun node -> seen.(node) <- true)) a.Assignment.committees;
  Alcotest.(check bool) "every node assigned once" true (Array.for_all Fun.id seen);
  Array.iter
    (fun members ->
      Alcotest.(check bool) "balanced" true
        (Array.length members >= 14 && Array.length members <= 15))
    a.Assignment.committees

let test_assignment_deterministic () =
  let a = Assignment.derive ~seed:9L ~epoch:3 ~nodes:50 ~committees:5 in
  let b = Assignment.derive ~seed:9L ~epoch:3 ~nodes:50 ~committees:5 in
  Alcotest.(check bool) "same seed+epoch same assignment" true
    (a.Assignment.committees = b.Assignment.committees)

let test_assignment_epochs_differ () =
  let a = Assignment.derive ~seed:9L ~epoch:1 ~nodes:50 ~committees:5 in
  let b = Assignment.derive ~seed:9L ~epoch:2 ~nodes:50 ~committees:5 in
  Alcotest.(check bool) "reshuffled" true (a.Assignment.committees <> b.Assignment.committees);
  Alcotest.(check bool) "some nodes moved" true
    (List.length (Assignment.transitioning ~from_:a ~to_:b) > 0)

let test_assignment_committee_of () =
  let a = Assignment.derive ~seed:2L ~epoch:0 ~nodes:30 ~committees:3 in
  for node = 0 to 29 do
    let c = Assignment.committee_of a node in
    Alcotest.(check bool) "member listed" true
      (Array.exists (fun m -> m = node) a.Assignment.committees.(c))
  done

let test_assignment_transition_plan_bound () =
  let a = Assignment.derive ~seed:2L ~epoch:0 ~nodes:60 ~committees:4 in
  let b = Assignment.derive ~seed:2L ~epoch:1 ~nodes:60 ~committees:4 in
  let batch = 3 in
  let waves = Assignment.transition_plan ~from_:a ~to_:b ~batch in
  List.iter
    (fun wave ->
      let load = Hashtbl.create 8 in
      List.iter
        (fun s ->
          let bump c =
            Hashtbl.replace load c (1 + Option.value (Hashtbl.find_opt load c) ~default:0)
          in
          bump s.Assignment.from_committee;
          bump s.Assignment.to_committee)
        wave;
      Hashtbl.iter
        (fun _ count -> Alcotest.(check bool) "per-committee bound" true (count <= batch))
        load)
    waves;
  let total = List.fold_left (fun acc w -> acc + List.length w) 0 waves in
  Alcotest.(check int) "plan covers all movers" (List.length (Assignment.transitioning ~from_:a ~to_:b)) total

(* ------------------------------------------------------------------ *)
(* Randomness                                                          *)
(* ------------------------------------------------------------------ *)

let lan = Repro_sim.Topology.lan ()

let test_beacon_protocol_agreement () =
  let o = Randomness.run ~n:16 ~topology:lan ~delta:2.0 ~l_bits:2 () in
  Alcotest.(check bool) "at least one round" true (o.Randomness.rounds >= 1);
  Alcotest.(check bool) "certificates bounded by n" true
    (o.Randomness.certificates >= 1 && o.Randomness.certificates <= 16)

let test_beacon_protocol_deterministic () =
  let a = Randomness.run ~seed:3L ~n:16 ~topology:lan ~delta:2.0 ~l_bits:2 () in
  let b = Randomness.run ~seed:3L ~n:16 ~topology:lan ~delta:2.0 ~l_bits:2 () in
  Alcotest.(check int64) "same seed same rnd" a.Randomness.rnd b.Randomness.rnd

let test_beacon_protocol_elapsed_multiple_of_delta () =
  let o = Randomness.run ~n:16 ~topology:lan ~delta:2.0 ~l_bits:0 () in
  check_float_at 1e-6 "locks exactly at round-end" 2.0 o.Randomness.elapsed

let test_beacon_withholding_cannot_block () =
  (* Byzantine nodes suppressing their certificates cannot stop agreement
     as long as one honest node is lucky; with l = 0 everyone is. *)
  let o = Randomness.run ~n:16 ~topology:lan ~delta:2.0 ~l_bits:0 ~byzantine_withhold:4 () in
  Alcotest.(check int) "one round suffices" 1 o.Randomness.rounds

let test_beacon_withholding_changes_but_does_not_choose () =
  (* Withholding may change the agreed value (fewer candidates) but the
     attacker cannot pick it: the honest minimum is still random. *)
  let base = Randomness.run ~seed:3L ~n:16 ~topology:lan ~delta:2.0 ~l_bits:0 () in
  let attacked =
    Randomness.run ~seed:3L ~n:16 ~topology:lan ~delta:2.0 ~l_bits:0 ~byzantine_withhold:8 ()
  in
  Alcotest.(check bool) "agreement still reached" true (attacked.Randomness.rounds >= 1);
  ignore base

let test_beacon_paper_l_bits () =
  (* l = log2(N) - log2(log2(N)); at N = 512: 9 - 3.17 -> 6. *)
  Alcotest.(check int) "N=512" 6 (Randomness.paper_l_bits ~n:512)

let test_randhound_scales_quadratically_in_group () =
  let fast = Randomness.randhound_runtime ~n:128 ~group:4 ~topology:lan in
  let slow = Randomness.randhound_runtime ~n:128 ~group:16 ~topology:lan in
  Alcotest.(check bool) "c^2 growth" true (slow > 8.0 *. fast)

(* ------------------------------------------------------------------ *)
(* Reference committee state machine                                   *)
(* ------------------------------------------------------------------ *)

let test_reference_commit_path () =
  let r = Reference.create () in
  Alcotest.(check bool) "begin" true
    (Reference.step r ~txid:1 (Reference.Begin { participants = [ 0; 1 ] }) = Reference.Now_started);
  Alcotest.(check bool) "first ok" true
    (Reference.step r ~txid:1 (Reference.Prepare_ok { shard = 0 }) = Reference.No_change);
  Alcotest.(check bool) "second ok commits" true
    (Reference.step r ~txid:1 (Reference.Prepare_ok { shard = 1 }) = Reference.Now_committed);
  Alcotest.(check bool) "state committed" true
    (Reference.state_of r ~txid:1 = Some Reference.Committed)

let test_reference_abort_on_nok () =
  let r = Reference.create () in
  ignore (Reference.step r ~txid:1 (Reference.Begin { participants = [ 0; 1; 2 ] }));
  ignore (Reference.step r ~txid:1 (Reference.Prepare_ok { shard = 0 }));
  Alcotest.(check bool) "nok aborts immediately" true
    (Reference.step r ~txid:1 (Reference.Prepare_not_ok { shard = 1 }) = Reference.Now_aborted)

let test_reference_duplicate_votes_ignored () =
  let r = Reference.create () in
  ignore (Reference.step r ~txid:1 (Reference.Begin { participants = [ 0; 1 ] }));
  ignore (Reference.step r ~txid:1 (Reference.Prepare_ok { shard = 0 }));
  Alcotest.(check bool) "same shard again: no double count" true
    (Reference.step r ~txid:1 (Reference.Prepare_ok { shard = 0 }) = Reference.No_change);
  Alcotest.(check bool) "still preparing" true
    (match Reference.state_of r ~txid:1 with Some (Reference.Preparing 1) -> true | _ -> false)

let test_reference_votes_before_begin_ignored () =
  let r = Reference.create () in
  Alcotest.(check bool) "vote for unknown tx" true
    (Reference.step r ~txid:9 (Reference.Prepare_ok { shard = 0 }) = Reference.No_change)

let test_reference_votes_after_decision_ignored () =
  let r = Reference.create () in
  ignore (Reference.step r ~txid:1 (Reference.Begin { participants = [ 0 ] }));
  ignore (Reference.step r ~txid:1 (Reference.Prepare_ok { shard = 0 }));
  Alcotest.(check bool) "late vote" true
    (Reference.step r ~txid:1 (Reference.Prepare_not_ok { shard = 1 }) = Reference.No_change);
  Alcotest.(check bool) "still committed" true
    (Reference.state_of r ~txid:1 = Some Reference.Committed)

let test_reference_client_abort () =
  let r = Reference.create () in
  ignore (Reference.step r ~txid:1 (Reference.Begin { participants = [ 0; 1 ] }));
  Alcotest.(check bool) "client abort" true
    (Reference.step r ~txid:1 Reference.Client_abort = Reference.Now_aborted);
  Alcotest.(check bool) "abort after decision is no-op" true
    (Reference.step r ~txid:1 Reference.Client_abort = Reference.No_change)

let test_reference_duplicate_begin_ignored () =
  let r = Reference.create () in
  ignore (Reference.step r ~txid:1 (Reference.Begin { participants = [ 0; 1 ] }));
  Alcotest.(check bool) "re-begin is no-op" true
    (Reference.step r ~txid:1 (Reference.Begin { participants = [ 0; 1; 2; 3; 4 ] }) = Reference.No_change)

let test_reference_stats () =
  let r = Reference.create () in
  ignore (Reference.step r ~txid:1 (Reference.Begin { participants = [ 0 ] }));
  ignore (Reference.step r ~txid:2 (Reference.Begin { participants = [ 0 ] }));
  ignore (Reference.step r ~txid:1 (Reference.Prepare_ok { shard = 0 }));
  ignore (Reference.step r ~txid:2 (Reference.Prepare_not_ok { shard = 0 }));
  ignore (Reference.step r ~txid:3 (Reference.Begin { participants = [ 0; 1 ] }));
  Alcotest.(check (triple int int int)) "(inflight, committed, aborted)" (1, 1, 1)
    (Reference.stats r)

(* One batched slot applying a mixed bag of transactions must return the
   same per-step decisions the sequential path would. *)
let test_reference_step_batch_mixed () =
  let r = Reference.create () in
  let steps =
    [
      (1, Reference.Begin { participants = [ 0; 1 ] });
      (1, Reference.Prepare_ok { shard = 0 });
      (1, Reference.Prepare_ok { shard = 1 });
      (2, Reference.Begin { participants = [ 0; 1 ] });
      (2, Reference.Prepare_not_ok { shard = 1 });
      (3, Reference.Begin { participants = [ 0; 1; 2 ] });
    ]
  in
  let out = Reference.step_batch r steps in
  let expect =
    [
      (1, Reference.Now_started);
      (1, Reference.No_change);
      (1, Reference.Now_committed);
      (2, Reference.Now_started);
      (2, Reference.Now_aborted);
      (3, Reference.Now_started);
    ]
  in
  Alcotest.(check bool) "mixed batch decisions" true (out = expect);
  Alcotest.(check bool) "tx1 committed" true (Reference.state_of r ~txid:1 = Some Reference.Committed);
  Alcotest.(check bool) "tx2 aborted" true (Reference.state_of r ~txid:2 = Some Reference.Aborted)

(* Replaying the identical batch (a duplicated carrier leg) must be a
   complete no-op: every step answers No_change and no state moves. *)
let test_reference_step_batch_duplicate_idempotent () =
  let r = Reference.create () in
  let steps =
    [
      (1, Reference.Begin { participants = [ 0; 1 ] });
      (1, Reference.Prepare_ok { shard = 0 });
      (1, Reference.Prepare_ok { shard = 1 });
      (2, Reference.Begin { participants = [ 0; 1 ] });
      (2, Reference.Prepare_not_ok { shard = 0 });
    ]
  in
  ignore (Reference.step_batch r steps);
  let again = Reference.step_batch r steps in
  Alcotest.(check bool) "all no-ops on replay" true
    (List.for_all (fun (_, d) -> d = Reference.No_change) again);
  Alcotest.(check bool) "tx1 still committed" true
    (Reference.state_of r ~txid:1 = Some Reference.Committed);
  Alcotest.(check bool) "tx2 still aborted" true
    (Reference.state_of r ~txid:2 = Some Reference.Aborted)

(* Pipelining can deliver a participant's vote before the Begin it answers;
   the machine buffers it and replays it at Begin, so the decision does not
   depend on leg arrival order. *)
let test_reference_early_votes_replayed_on_begin () =
  let r = Reference.create () in
  Alcotest.(check bool) "early vote buffers" true
    (Reference.step r ~txid:5 (Reference.Prepare_ok { shard = 1 }) = Reference.No_change);
  Alcotest.(check bool) "second early vote same tx" true
    (Reference.step r ~txid:5 (Reference.Prepare_ok { shard = 0 }) = Reference.No_change);
  Alcotest.(check int) "one tx buffered" 1 (Reference.early_votes r);
  Alcotest.(check bool) "begin replays votes straight to commit" true
    (Reference.step r ~txid:5 (Reference.Begin { participants = [ 0; 1 ] })
    = Reference.Now_committed);
  Alcotest.(check int) "buffer drained" 0 (Reference.early_votes r)

(* ------------------------------------------------------------------ *)
(* OmniLedger baseline                                                 *)
(* ------------------------------------------------------------------ *)

let omni_tx txid = { Omniledger.txid; inputs = [ (0, "in0"); (1, "in1") ]; output_shard = 2; output_key = "out" }

let fund o =
  Repro_ledger.State.put (Omniledger.state_of_shard o 0) "in0" "coin";
  Repro_ledger.State.put (Omniledger.state_of_shard o 1) "in1" "coin"

let test_omniledger_honest_commit () =
  let o = Omniledger.create ~shards:3 in
  fund o;
  (match Omniledger.execute o (omni_tx 1) Omniledger.Honest with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "no dangling locks shard 0" [] (Omniledger.locked_keys o 0);
  Alcotest.(check bool) "output created" true
    (Repro_ledger.State.mem (Omniledger.state_of_shard o 2) "out")

let test_omniledger_malicious_client_blocks_forever () =
  (* The Section 6.1 liveness failure. *)
  let o = Omniledger.create ~shards:3 in
  fund o;
  (match Omniledger.execute o (omni_tx 1) Omniledger.Crash_after_locks with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "crashed client cannot succeed");
  Alcotest.(check (list string)) "input locked forever" [ "in0" ] (Omniledger.locked_keys o 0);
  (* A later honest transaction on the same input is blocked. *)
  match Omniledger.execute o (omni_tx 2) Omniledger.Honest with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "stale lock should block"

(* ------------------------------------------------------------------ *)
(* RapidChain baseline                                                 *)
(* ------------------------------------------------------------------ *)

let test_rapidchain_happy_path () =
  let r = Rapidchain.create ~shards:3 in
  let c1 = Rapidchain.mint r ~shard:0 ~owner:"alice" ~amount:5 in
  let c2 = Rapidchain.mint r ~shard:1 ~owner:"alice" ~amount:7 in
  let out =
    Rapidchain.cross_shard_transfer r
      ~inputs:[ (0, c1.Repro_ledger.Utxo.id); (1, c2.Repro_ledger.Utxo.id) ]
      ~output_shard:2 ~owner:"bob"
  in
  Alcotest.(check bool) "committed" true out.Rapidchain.committed;
  Alcotest.(check int) "bob funded in S3" 12
    (Repro_ledger.Utxo.balance (Rapidchain.utxo_of_shard r 2) "bob")

let test_rapidchain_partial_failure_no_rollback () =
  (* One input is already spent: the other leg still migrates and is NOT
     rolled back — the Section 6.1 atomicity gap. *)
  let r = Rapidchain.create ~shards:3 in
  let c1 = Rapidchain.mint r ~shard:0 ~owner:"alice" ~amount:5 in
  let c2 = Rapidchain.mint r ~shard:1 ~owner:"alice" ~amount:7 in
  (* Spend c2 first so its leg fails. *)
  ignore
    (Repro_ledger.Utxo.apply (Rapidchain.utxo_of_shard r 1)
       { Repro_ledger.Utxo.inputs = [ c2.Repro_ledger.Utxo.id ]; outputs = [ ("eve", 7) ] });
  let out =
    Rapidchain.cross_shard_transfer r
      ~inputs:[ (0, c1.Repro_ledger.Utxo.id); (1, c2.Repro_ledger.Utxo.id) ]
      ~output_shard:2 ~owner:"bob"
  in
  Alcotest.(check bool) "not committed" false out.Rapidchain.committed;
  Alcotest.(check int) "one leftover migrated coin" 1 (List.length out.Rapidchain.migrated_leftovers);
  Alcotest.(check int) "original input gone from S1" 0
    (Repro_ledger.Utxo.balance (Rapidchain.utxo_of_shard r 0) "alice")

let test_rapidchain_account_model_violation () =
  (* Figure 4: tx1 = <acc1 + acc3> -> <acc2>; acc3's debit fails, acc1 is
     already debited and stays debited. *)
  let states = Array.init 2 (fun _ -> Repro_ledger.State.create ()) in
  Repro_ledger.Executor.set_balance states.(0) "acc1" 100;
  Repro_ledger.Executor.set_balance states.(1) "acc3" 5;
  match
    Rapidchain.account_transfer states
      ~debits:[ (0, "acc1", 50); (1, "acc3", 50) ]
      ~credit:(0, "acc2", 100)
  with
  | `Partial dangling ->
      Alcotest.(check (list string)) "acc1 debited without rollback" [ "acc1" ] dangling;
      Alcotest.(check int) "money vanished from acc1" 50
        (Repro_ledger.Executor.balance states.(0) "acc1");
      Alcotest.(check int) "acc2 never credited" 0
        (Repro_ledger.Executor.balance states.(0) "acc2")
  | `Committed -> Alcotest.fail "must not commit"

let test_rapidchain_isolation_violation () =
  (* tx2 = <acc3> -> <acc4> interleaves with tx1 and observes (and
     consumes) the balance a partially-executed tx1 depends on. *)
  let states = Array.init 2 (fun _ -> Repro_ledger.State.create ()) in
  Repro_ledger.Executor.set_balance states.(0) "acc1" 100;
  Repro_ledger.Executor.set_balance states.(1) "acc3" 60;
  (* tx2 runs first and drains acc3. *)
  (match
     Rapidchain.account_transfer states ~debits:[ (1, "acc3", 60) ] ~credit:(1, "acc4", 60)
   with
  | `Committed -> ()
  | `Partial _ -> Alcotest.fail "tx2 should commit");
  (* tx1 now fails on acc3 but has already debited acc1. *)
  match
    Rapidchain.account_transfer states
      ~debits:[ (0, "acc1", 50); (1, "acc3", 50) ]
      ~credit:(0, "acc2", 100)
  with
  | `Partial _ ->
      Alcotest.(check int) "tx1 partially applied" 50
        (Repro_ledger.Executor.balance states.(0) "acc1")
  | `Committed -> Alcotest.fail "tx1 cannot commit"

(* ------------------------------------------------------------------ *)
(* State transfer                                                      *)
(* ------------------------------------------------------------------ *)

let test_state_transfer_roundtrip () =
  let open Repro_ledger in
  let s = State.create () in
  State.put s "acc1" "100";
  State.put s "acc2" "50";
  let pkg = State_transfer.pack s in
  match State_transfer.verify_and_restore pkg ~expected_root:(State.root s) with
  | Ok restored -> Alcotest.(check bool) "states equal" true (State.equal s restored)
  | Error e -> Alcotest.fail e

let test_state_transfer_rejects_tampered () =
  let open Repro_ledger in
  let s = State.create () in
  State.put s "acc1" "100";
  let pkg = State_transfer.tamper (State_transfer.pack s) ~key:"acc1" ~value:"1000000" in
  match State_transfer.verify_and_restore pkg ~expected_root:(State.root s) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "doctored snapshot accepted"

let test_state_transfer_rejects_wrong_root () =
  let open Repro_ledger in
  let s = State.create () in
  State.put s "acc1" "100";
  let other = State.create () in
  State.put other "acc1" "999";
  (* Internally consistent package, but not the committee's state. *)
  let pkg = State_transfer.pack other in
  match State_transfer.verify_and_restore pkg ~expected_root:(State.root s) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign snapshot accepted"

let test_state_transfer_time_scales () =
  let open Repro_ledger in
  let small = State.create () in
  State.put small "a" "1";
  let big = State.create () in
  for i = 0 to 999 do
    State.put big (Printf.sprintf "key%04d" i) "some-longer-value"
  done;
  let topo = Repro_sim.Topology.lan () in
  Alcotest.(check bool) "bigger states take longer" true
    (State_transfer.transfer_time topo (State_transfer.pack big)
    > State_transfer.transfer_time topo (State_transfer.pack small))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_assignment_partition_always =
  QCheck.Test.make ~name:"assignment is always a partition" ~count:100
    QCheck.(triple small_int (int_range 2 200) (int_range 1 10))
    (fun (seed, nodes, committees) ->
      let committees = Stdlib.min committees nodes in
      let a =
        Assignment.derive ~seed:(Int64.of_int seed) ~epoch:0 ~nodes ~committees
      in
      let seen = Array.make nodes 0 in
      Array.iter (Array.iter (fun node -> seen.(node) <- seen.(node) + 1)) a.Assignment.committees;
      Array.for_all (fun c -> c = 1) seen)

let prop_reference_never_commits_after_nok =
  QCheck.Test.make ~name:"reference: a NotOK vote is never followed by Committed" ~count:200
    QCheck.(pair (int_range 1 5) (list (pair (int_bound 5) bool)))
    (fun (participants, votes) ->
      let participants = Stdlib.max 1 participants in
      let shard_list = List.init participants Fun.id in
      let r = Reference.create () in
      ignore (Reference.step r ~txid:1 (Reference.Begin { participants = shard_list }));
      (* Each shard's quorum produces exactly one answer; only a shard's
         first vote is meaningful. *)
      let first_votes = Hashtbl.create 8 in
      let saw_nok = ref false in
      List.iter
        (fun (shard, ok) ->
          if shard < participants && not (Hashtbl.mem first_votes shard) then begin
            Hashtbl.replace first_votes shard ok;
            if not ok then saw_nok := true
          end;
          ignore
            (Reference.step r ~txid:1
               (if ok then Reference.Prepare_ok { shard } else Reference.Prepare_not_ok { shard })))
        votes;
      match Reference.state_of r ~txid:1 with
      | Some Reference.Committed -> not !saw_nok
      | _ -> true)

let prop_cross_shard_prob_distribution =
  QCheck.Test.make ~name:"eq 3 is a probability distribution" ~count:50
    QCheck.(pair (int_range 1 8) (int_range 1 30))
    (fun (args, shards) ->
      let total = ref 0.0 in
      for x = 1 to args do
        let p = Sizing.cross_shard_probability ~shards ~args ~touches:x in
        if p < -1e-12 || p > 1.0 +. 1e-9 then total := nan;
        total := !total +. p
      done;
      Float.abs (!total -. 1.0) < 1e-6)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_assignment_partition_always;
      prop_reference_never_commits_after_nok;
      prop_cross_shard_prob_distribution;
    ]

let () =
  Alcotest.run "shard"
    [
      ( "sizing",
        [
          Alcotest.test_case "tolerance" `Quick test_sizing_tolerance;
          Alcotest.test_case "paper committee sizes" `Quick test_sizing_paper_committee_sizes;
          Alcotest.test_case "monotone in fraction" `Quick test_sizing_monotone_in_fraction;
          Alcotest.test_case "probability bounds" `Quick test_sizing_faulty_probability_bounds;
          Alcotest.test_case "max shards" `Quick test_sizing_max_shards;
          Alcotest.test_case "epoch transition (eq 2)" `Quick test_sizing_epoch_transition_paper_example;
          Alcotest.test_case "swap batch B" `Quick test_sizing_swap_batch;
          Alcotest.test_case "eq 3 normalizes" `Quick test_cross_shard_probability_normalizes;
          Alcotest.test_case "eq 3 closed form d=2" `Quick test_cross_shard_probability_closed_form_d2;
          Alcotest.test_case "cross-shard majority" `Quick test_cross_shard_fraction_majority;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "partition" `Quick test_assignment_partition;
          Alcotest.test_case "deterministic" `Quick test_assignment_deterministic;
          Alcotest.test_case "epochs differ" `Quick test_assignment_epochs_differ;
          Alcotest.test_case "committee_of" `Quick test_assignment_committee_of;
          Alcotest.test_case "transition plan bound" `Quick test_assignment_transition_plan_bound;
        ] );
      ( "randomness",
        [
          Alcotest.test_case "agreement" `Quick test_beacon_protocol_agreement;
          Alcotest.test_case "deterministic" `Quick test_beacon_protocol_deterministic;
          Alcotest.test_case "locks at delta" `Quick test_beacon_protocol_elapsed_multiple_of_delta;
          Alcotest.test_case "withholding cannot block" `Quick test_beacon_withholding_cannot_block;
          Alcotest.test_case "withholding cannot choose" `Quick
            test_beacon_withholding_changes_but_does_not_choose;
          Alcotest.test_case "paper l bits" `Quick test_beacon_paper_l_bits;
          Alcotest.test_case "randhound c^2" `Quick test_randhound_scales_quadratically_in_group;
        ] );
      ( "reference",
        [
          Alcotest.test_case "commit path" `Quick test_reference_commit_path;
          Alcotest.test_case "abort on NOK" `Quick test_reference_abort_on_nok;
          Alcotest.test_case "duplicate votes" `Quick test_reference_duplicate_votes_ignored;
          Alcotest.test_case "votes before begin" `Quick test_reference_votes_before_begin_ignored;
          Alcotest.test_case "votes after decision" `Quick test_reference_votes_after_decision_ignored;
          Alcotest.test_case "client abort" `Quick test_reference_client_abort;
          Alcotest.test_case "duplicate begin" `Quick test_reference_duplicate_begin_ignored;
          Alcotest.test_case "stats" `Quick test_reference_stats;
          Alcotest.test_case "step_batch mixed" `Quick test_reference_step_batch_mixed;
          Alcotest.test_case "step_batch idempotent" `Quick
            test_reference_step_batch_duplicate_idempotent;
          Alcotest.test_case "early votes replayed" `Quick
            test_reference_early_votes_replayed_on_begin;
        ] );
      ( "state_transfer",
        [
          Alcotest.test_case "roundtrip" `Quick test_state_transfer_roundtrip;
          Alcotest.test_case "rejects tampered" `Quick test_state_transfer_rejects_tampered;
          Alcotest.test_case "rejects wrong root" `Quick test_state_transfer_rejects_wrong_root;
          Alcotest.test_case "transfer time scales" `Quick test_state_transfer_time_scales;
        ] );
      ( "omniledger",
        [
          Alcotest.test_case "honest commit" `Quick test_omniledger_honest_commit;
          Alcotest.test_case "malicious client blocks" `Quick
            test_omniledger_malicious_client_blocks_forever;
        ] );
      ( "rapidchain",
        [
          Alcotest.test_case "happy path" `Quick test_rapidchain_happy_path;
          Alcotest.test_case "partial failure" `Quick test_rapidchain_partial_failure_no_rollback;
          Alcotest.test_case "account atomicity violation" `Quick
            test_rapidchain_account_model_violation;
          Alcotest.test_case "isolation violation" `Quick test_rapidchain_isolation_violation;
        ] );
      ("properties", qsuite);
    ]
