open Repro_util
open Repro_sim

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_time_starts_at_zero () =
  let e = Engine.create ~seed:1L in
  check_float "t0" 0.0 (Engine.now e)

let test_engine_event_ordering () =
  let e = Engine.create ~seed:1L in
  let log = ref [] in
  Engine.schedule e ~delay:3.0 (fun () -> log := 3 :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:2.0 (fun () -> log := 2 :: !log);
  Engine.run_until_idle e;
  Alcotest.(check (list int)) "timestamp order" [ 1; 2; 3 ] (List.rev !log)

let test_engine_fifo_at_same_time () =
  let e = Engine.create ~seed:1L in
  let log = ref [] in
  List.iter (fun i -> Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)) [ 1; 2; 3 ];
  Engine.run_until_idle e;
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3 ] (List.rev !log)

let test_engine_clock_advances_to_event_time () =
  let e = Engine.create ~seed:1L in
  let seen = ref 0.0 in
  Engine.schedule e ~delay:2.5 (fun () -> seen := Engine.now e);
  Engine.run_until_idle e;
  check_float "clock at event" 2.5 !seen

let test_engine_run_until_horizon () =
  let e = Engine.create ~seed:1L in
  let fired = ref false in
  Engine.schedule e ~delay:5.0 (fun () -> fired := true);
  Engine.run e ~until:4.0;
  Alcotest.(check bool) "not yet" false !fired;
  check_float "clock at horizon" 4.0 (Engine.now e);
  Engine.run e ~until:6.0;
  Alcotest.(check bool) "now fired" true !fired

let test_engine_nested_scheduling () =
  let e = Engine.create ~seed:1L in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 10 then Engine.schedule e ~delay:1.0 tick
  in
  Engine.schedule e ~delay:1.0 tick;
  Engine.run e ~until:100.0;
  Alcotest.(check int) "ten ticks" 10 !count;
  check_float "clock at horizon" 100.0 (Engine.now e)

let test_engine_timer_cancel () =
  let e = Engine.create ~seed:1L in
  let fired = ref false in
  let timer = Engine.timer e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel timer;
  Engine.run_until_idle e;
  Alcotest.(check bool) "cancelled" false !fired;
  Alcotest.(check bool) "reports cancelled" true (Engine.cancelled timer)

let test_engine_negative_delay_rejected () =
  let e = Engine.create ~seed:1L in
  Alcotest.check_raises "negative delay" (Sim_error.Invalid "Engine.schedule: negative delay")
    (fun () -> Engine.schedule e ~delay:(-1.0) (fun () -> ()))

let test_engine_schedule_at_past_clamps () =
  let e = Engine.create ~seed:1L in
  Engine.schedule e ~delay:2.0 (fun () -> Engine.schedule_at e ~time:0.5 (fun () -> ()));
  Engine.run_until_idle e;
  check_float "clock did not go backwards" 2.0 (Engine.now e)

let test_engine_determinism () =
  let run () =
    let e = Engine.create ~seed:42L in
    let acc = ref [] in
    let rng = Engine.rng e in
    for i = 1 to 20 do
      Engine.schedule e ~delay:(Rng.float rng 10.0) (fun () -> acc := i :: !acc)
    done;
    Engine.run_until_idle e;
    !acc
  in
  Alcotest.(check (list int)) "same schedule twice" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)
(* ------------------------------------------------------------------ *)

let test_topology_lan_single_region () =
  let t = Topology.lan () in
  Alcotest.(check int) "one region" 1 (Topology.regions t);
  Alcotest.(check int) "all nodes region 0" 0 (Topology.region_of_node t 17)

let test_topology_gcp_regions () =
  let t = Topology.gcp 8 in
  Alcotest.(check int) "eight regions" 8 (Topology.regions t);
  Alcotest.(check int) "round robin" 3 (Topology.region_of_node t 11)

let test_topology_gcp_bad_count () =
  Alcotest.check_raises "9 regions" (Sim_error.Invalid "Topology.gcp: regions must be in 1..8")
    (fun () -> ignore (Topology.gcp 9))

let test_topology_latency_positive_and_jittered () =
  let t = Topology.gcp 8 in
  let rng = Rng.create 7L in
  for src = 0 to 7 do
    for dst = 0 to 7 do
      let l = Topology.latency t rng ~src_region:src ~dst_region:dst in
      Alcotest.(check bool) "positive" true (l > 0.0)
    done
  done

let test_topology_wan_slower_than_lan () =
  let t = Topology.gcp 8 in
  let rng = Rng.create 7L in
  let intra = Topology.latency t rng ~src_region:0 ~dst_region:0 in
  let inter = Topology.latency t rng ~src_region:0 ~dst_region:5 in
  Alcotest.(check bool) "asia far from us-west" true (inter > 10.0 *. intra)

let test_topology_table3_matches () =
  (* us-west1-b -> asia-southeast1-b is 150.8 ms in Table 3. *)
  check_float "matrix value" 150.8 Topology.gcp_latency_matrix_ms.(0).(5)

let test_topology_transfer_time () =
  let t = Topology.lan ~bandwidth_mbps:1000.0 () in
  (* 1 MB over 1 Gbps = 8 ms. *)
  Alcotest.(check (float 1e-6)) "1MB @ 1Gbps" 8.388608e-3
    (Topology.transfer_time t ~bytes:(1024 * 1024))

(* ------------------------------------------------------------------ *)
(* Inbox                                                               *)
(* ------------------------------------------------------------------ *)

let test_inbox_shared_fifo () =
  let q = Inbox.create (Inbox.Shared 10) in
  ignore (Inbox.push q Inbox.Request "r1");
  ignore (Inbox.push q Inbox.Consensus "c1");
  ignore (Inbox.push q Inbox.Request "r2");
  let order = List.init 3 (fun _ -> match Inbox.pop q with Some (_, m) -> m | None -> "?") in
  Alcotest.(check (list string)) "FIFO across channels" [ "r1"; "c1"; "r2" ] order

let test_inbox_shared_drops_when_full () =
  let q = Inbox.create (Inbox.Shared 2) in
  Alcotest.(check bool) "1 ok" true (Inbox.push q Inbox.Request "a");
  Alcotest.(check bool) "2 ok" true (Inbox.push q Inbox.Consensus "b");
  Alcotest.(check bool) "3 dropped" false (Inbox.push q Inbox.Consensus "c");
  Alcotest.(check int) "consensus drop counted" 1 (Inbox.dropped q Inbox.Consensus);
  Alcotest.(check int) "request drops zero" 0 (Inbox.dropped q Inbox.Request)

let test_inbox_split_priority () =
  let q = Inbox.create (Inbox.Split { request_cap = 10; consensus_cap = 10 }) in
  ignore (Inbox.push q Inbox.Request "r1");
  ignore (Inbox.push q Inbox.Consensus "c1");
  ignore (Inbox.push q Inbox.Request "r2");
  ignore (Inbox.push q Inbox.Consensus "c2");
  let order = List.init 4 (fun _ -> match Inbox.pop q with Some (_, m) -> m | None -> "?") in
  Alcotest.(check (list string)) "consensus first" [ "c1"; "c2"; "r1"; "r2" ] order

let test_inbox_split_request_flood_spares_consensus () =
  (* Optimization 1's whole point. *)
  let q = Inbox.create (Inbox.Split { request_cap = 2; consensus_cap = 2 }) in
  for i = 0 to 9 do
    ignore (Inbox.push q Inbox.Request (Printf.sprintf "r%d" i))
  done;
  Alcotest.(check int) "8 requests dropped" 8 (Inbox.dropped q Inbox.Request);
  Alcotest.(check bool) "consensus unaffected" true (Inbox.push q Inbox.Consensus "c");
  Alcotest.(check int) "no consensus drops" 0 (Inbox.dropped q Inbox.Consensus)

let test_inbox_clear () =
  let q = Inbox.create (Inbox.Shared 10) in
  ignore (Inbox.push q Inbox.Request "x");
  Inbox.clear q;
  Alcotest.(check int) "empty" 0 (Inbox.length q)

let test_inbox_zero_capacity_rejected () =
  Alcotest.check_raises "zero cap" (Sim_error.Invalid "Inbox.create: capacity must be positive")
    (fun () -> ignore (Inbox.create (Inbox.Shared 0)))

(* ------------------------------------------------------------------ *)
(* Node                                                                *)
(* ------------------------------------------------------------------ *)

let make_node e ?(inbox = Inbox.Shared 100) handler = Node.create e ~id:0 ~inbox_mode:inbox ~handler

let test_node_processes_in_order () =
  let e = Engine.create ~seed:1L in
  let log = ref [] in
  let node = make_node e (fun _ m -> log := m :: !log) in
  ignore (Node.deliver node Inbox.Consensus "a");
  ignore (Node.deliver node Inbox.Consensus "b");
  Engine.run_until_idle e;
  Alcotest.(check (list string)) "in order" [ "a"; "b" ] (List.rev !log)

let test_node_serial_cpu () =
  (* Two messages each costing 1 s: the second completes at t = 2. *)
  let e = Engine.create ~seed:1L in
  let finish = ref [] in
  let node_ref = ref None in
  let node =
    make_node e (fun node _ ->
        Node.charge node 1.0;
        finish := Engine.now e :: !finish)
  in
  node_ref := Some node;
  ignore (Node.deliver node Inbox.Consensus "m1");
  ignore (Node.deliver node Inbox.Consensus "m2");
  Engine.run_until_idle e;
  (* Handlers run at dequeue time: m1 at 0, m2 once the CPU frees at 1. *)
  Alcotest.(check (list (float 1e-9))) "dequeue times" [ 0.0; 1.0 ] (List.rev !finish)

let test_node_charge_from_timer_context () =
  (* Work charged outside a handler still occupies the CPU. *)
  let e = Engine.create ~seed:1L in
  let handled_at = ref 0.0 in
  let node = make_node e (fun _ _ -> handled_at := Engine.now e) in
  Node.charge node 2.0;
  ignore (Node.deliver node Inbox.Consensus "m");
  Engine.run_until_idle e;
  check_float "waited for external work" 2.0 !handled_at

let test_node_crash_drops_messages () =
  let e = Engine.create ~seed:1L in
  let count = ref 0 in
  let node = make_node e (fun _ _ -> incr count) in
  Node.crash node;
  Alcotest.(check bool) "rejected" false (Node.deliver node Inbox.Consensus "m");
  Engine.run_until_idle e;
  Alcotest.(check int) "nothing handled" 0 !count

let test_node_recover_resumes () =
  let e = Engine.create ~seed:1L in
  let count = ref 0 in
  let node = make_node e (fun _ _ -> incr count) in
  Node.crash node;
  ignore (Node.deliver node Inbox.Consensus "lost");
  Node.recover node;
  ignore (Node.deliver node Inbox.Consensus "kept");
  Engine.run_until_idle e;
  Alcotest.(check int) "one handled" 1 !count

let test_node_busy_fraction () =
  let e = Engine.create ~seed:1L in
  let node = make_node e (fun node _ -> Node.charge node 1.0) in
  ignore (Node.deliver node Inbox.Consensus "m");
  Engine.run_until_idle e;
  Engine.run e ~until:4.0;
  Alcotest.(check (float 1e-9)) "1s busy of 4s" 0.25 (Node.busy_fraction node)

let test_node_inbox_backpressure () =
  let e = Engine.create ~seed:1L in
  let node =
    Node.create e ~id:0 ~inbox_mode:(Inbox.Shared 2) ~handler:(fun node _ -> Node.charge node 10.0)
  in
  (* First is consumed immediately (CPU busy), then 2 queue, rest drop. *)
  let accepted = List.filter (fun b -> b) (List.init 5 (fun _ -> Node.deliver node Inbox.Consensus "m")) in
  Alcotest.(check int) "three accepted" 3 (List.length accepted);
  Alcotest.(check int) "two dropped" 2 (Node.inbox_dropped node Inbox.Consensus)

(* ------------------------------------------------------------------ *)
(* Network                                                             *)
(* ------------------------------------------------------------------ *)

let two_nodes () =
  let e = Engine.create ~seed:1L in
  let net = Network.create e ~topology:(Topology.lan ()) in
  let received = ref [] in
  let n0 = Node.create e ~id:0 ~inbox_mode:(Inbox.Shared 100) ~handler:(fun _ _ -> ()) in
  let n1 =
    Node.create e ~id:1 ~inbox_mode:(Inbox.Shared 100) ~handler:(fun _ m ->
        received := (m, Engine.now e) :: !received)
  in
  Network.register net n0;
  Network.register net n1;
  (e, net, n0, n1, received)

let test_network_delivers_with_latency () =
  let e, net, n0, _, received = two_nodes () in
  Network.send net ~src:n0 ~dst:1 ~channel:Inbox.Consensus ~bytes:100 "hello";
  Engine.run_until_idle e;
  match !received with
  | [ ("hello", at) ] -> Alcotest.(check bool) "positive latency" true (at > 0.0)
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_network_unknown_destination_ignored () =
  let e, net, n0, _, _ = two_nodes () in
  Network.send net ~src:n0 ~dst:99 ~channel:Inbox.Consensus ~bytes:100 "void";
  Engine.run_until_idle e;
  Alcotest.(check int) "sent counted" 2 (Network.sent_count net + 1)

let test_network_filter_drop () =
  let e, net, n0, _, received = two_nodes () in
  Network.set_filter net (fun ~src:_ ~dst:_ _ -> Network.Drop);
  Network.send net ~src:n0 ~dst:1 ~channel:Inbox.Consensus ~bytes:100 "blocked";
  Engine.run_until_idle e;
  Alcotest.(check int) "nothing delivered" 0 (List.length !received);
  Alcotest.(check int) "drop counted" 1 (Network.dropped_in_network net);
  Network.clear_filter net;
  Network.send net ~src:n0 ~dst:1 ~channel:Inbox.Consensus ~bytes:100 "open";
  Engine.run_until_idle e;
  Alcotest.(check int) "delivered after clear" 1 (List.length !received)

let test_network_filter_delay () =
  let e, net, n0, _, received = two_nodes () in
  Network.set_filter net (fun ~src:_ ~dst:_ _ -> Network.Delay 5.0);
  Network.send net ~src:n0 ~dst:1 ~channel:Inbox.Consensus ~bytes:100 "slow";
  Engine.run_until_idle e;
  match !received with
  | [ (_, at) ] -> Alcotest.(check bool) "delayed" true (at >= 5.0)
  | _ -> Alcotest.fail "expected one delivery"

let test_network_filter_duplicate () =
  let e, net, n0, _, received = two_nodes () in
  Network.set_filter net (fun ~src:_ ~dst:_ _ ->
      Network.Duplicate { copies = 3; spacing = 1.0 });
  Network.send net ~src:n0 ~dst:1 ~channel:Inbox.Consensus ~bytes:100 "dup";
  Engine.run_until_idle e;
  Alcotest.(check int) "one send" 1 (Network.sent_count net);
  Alcotest.(check int) "three deliveries" 3 (Network.delivered_count net);
  (match List.rev !received with
  | [ (_, t0); (_, t1); (_, t2) ] ->
      Alcotest.(check (float 1e-9)) "second copy spaced" 1.0 (t1 -. t0);
      Alcotest.(check (float 1e-9)) "third copy spaced" 1.0 (t2 -. t1)
  | _ -> Alcotest.fail "expected three deliveries");
  (* copies is clamped below at 1: a zero-copy duplicate still delivers. *)
  Network.set_filter net (fun ~src:_ ~dst:_ _ ->
      Network.Duplicate { copies = 0; spacing = 0.0 });
  Network.send net ~src:n0 ~dst:1 ~channel:Inbox.Consensus ~bytes:100 "min";
  Engine.run_until_idle e;
  Alcotest.(check int) "clamped to one copy" 4 (Network.delivered_count net)

let test_network_broadcast_excludes_self () =
  let e = Engine.create ~seed:1L in
  let net = Network.create e ~topology:(Topology.lan ()) in
  let hits = Array.make 3 0 in
  let nodes =
    Array.init 3 (fun id ->
        Node.create e ~id ~inbox_mode:(Inbox.Shared 10) ~handler:(fun node _ ->
            hits.(Node.id node) <- hits.(Node.id node) + 1))
  in
  Array.iter (Network.register net) nodes;
  Network.broadcast net ~src:nodes.(0) ~dsts:[ 0; 1; 2 ] ~channel:Inbox.Consensus ~bytes:10 "b";
  Engine.run_until_idle e;
  Alcotest.(check (array int)) "others only" [| 0; 1; 1 |] hits

let test_network_send_external () =
  let e, net, _, _, received = two_nodes () in
  Network.send_external net ~src_region:0 ~dst:1 ~channel:Inbox.Request ~bytes:10 "client";
  Engine.run_until_idle e;
  Alcotest.(check int) "delivered" 1 (List.length !received)

let test_network_duplicate_registration () =
  let e = Engine.create ~seed:1L in
  let net = Network.create e ~topology:(Topology.lan ()) in
  let n = Node.create e ~id:0 ~inbox_mode:(Inbox.Shared 10) ~handler:(fun _ (_ : int) -> ()) in
  Network.register net n;
  Alcotest.check_raises "dup" (Sim_error.Invalid "Network.register: duplicate node id") (fun () ->
      Network.register net n)

(* ------------------------------------------------------------------ *)
(* Faults / Metrics                                                    *)
(* ------------------------------------------------------------------ *)

let test_faults_roster () =
  let f = Faults.with_byzantine_ids ~n:5 ~ids:[ 1; 3 ] in
  Alcotest.(check bool) "1 byz" true (Faults.is_byzantine f 1);
  Alcotest.(check bool) "0 honest" false (Faults.is_byzantine f 0);
  Alcotest.(check int) "count" 2 (Faults.byzantine_count f);
  Alcotest.(check (list int)) "ids" [ 1; 3 ] (Faults.byzantine_ids f)

let test_faults_random_selection () =
  let f = Faults.with_byzantine (Rng.create 5L) ~n:100 ~count:25 in
  Alcotest.(check int) "25 byzantine" 25 (Faults.byzantine_count f)

let test_faults_adaptive_corruption_delay () =
  let e = Engine.create ~seed:1L in
  let f = Faults.honest 3 in
  Faults.corrupt_after e f 1 ~delay:5.0;
  Engine.run e ~until:4.0;
  Alcotest.(check bool) "not yet corrupted" false (Faults.is_byzantine f 1);
  Engine.run e ~until:6.0;
  Alcotest.(check bool) "corrupted after delay" true (Faults.is_byzantine f 1)

let test_faults_adaptive_corruption_timestamp () =
  (* Section 3.3 adaptive corruption: pin down the exact engine time at
     which the roster flips by sampling it from a probe event stream. *)
  let e = Engine.create ~seed:1L in
  let f = Faults.honest 3 in
  let flip_seen_at = ref nan in
  Faults.corrupt_after e f 1 ~delay:2.5;
  let rec probe () =
    if Faults.is_byzantine f 1 then begin
      if Float.is_nan !flip_seen_at then flip_seen_at := Engine.now e
    end
    else Engine.schedule e ~delay:0.25 probe
  in
  probe ();
  Engine.run e ~until:10.0;
  check_float "first probe seeing corruption" 2.5 !flip_seen_at;
  Alcotest.(check int) "exactly one byzantine" 1 (Faults.byzantine_count f);
  Alcotest.(check bool) "others untouched" false
    (Faults.is_byzantine f 0 || Faults.is_byzantine f 2)

let test_metrics_throughput () =
  let e = Engine.create ~seed:1L in
  let m = Metrics.create e in
  Engine.schedule e ~delay:5.0 (fun () -> Metrics.commit m ~count:100);
  Engine.schedule e ~delay:10.0 (fun () -> Metrics.commit m ~count:100);
  Engine.run e ~until:20.0;
  check_float "after warmup" 10.0 (Metrics.throughput m ~warmup:0.0);
  (* Warmup at 6 s excludes the first batch. *)
  Alcotest.(check (float 1e-6)) "warmup excludes" (100.0 /. 14.0) (Metrics.throughput m ~warmup:6.0)

let test_metrics_counters_and_gauges () =
  let e = Engine.create ~seed:1L in
  let m = Metrics.create e in
  Metrics.incr m "view_change";
  Metrics.incr m "view_change";
  Metrics.add_to m "cost" 1.5;
  Alcotest.(check int) "counter" 2 (Metrics.counter m "view_change");
  check_float "gauge" 1.5 (Metrics.gauge m "cost");
  Alcotest.(check int) "unknown counter" 0 (Metrics.counter m "nope")

let test_metrics_abort_rate () =
  let e = Engine.create ~seed:1L in
  let m = Metrics.create e in
  Metrics.commit m ~count:3;
  Metrics.abort m ~count:1;
  check_float "abort rate" 0.25 (Metrics.abort_rate m)

let test_topology_constrained_lan () =
  let t = Topology.constrained_lan ~latency_ms:100.0 ~bandwidth_mbps:50.0 in
  let rng = Rng.create 1L in
  let l = Topology.latency t rng ~src_region:0 ~dst_region:0 in
  Alcotest.(check bool) "around 100ms" true (l > 0.08 && l < 0.12);
  (* 4 MB at 50 Mbps ~ 0.67 s *)
  Alcotest.(check (float 0.02)) "transfer" 0.671
    (Topology.transfer_time t ~bytes:(4 * 1024 * 1024))

let test_metrics_throughput_series () =
  let e = Engine.create ~seed:1L in
  let m = Metrics.create e in
  Engine.schedule e ~delay:0.5 (fun () -> Metrics.commit m ~count:10);
  Engine.schedule e ~delay:2.5 (fun () -> Metrics.commit m ~count:30);
  Engine.run e ~until:5.0;
  match Metrics.throughput_series m with
  | [ (t0, r0); (t1, r1); (t2, r2) ] ->
      Alcotest.(check (float 1e-9)) "bin0 start" 0.0 t0;
      Alcotest.(check (float 1e-9)) "bin0 rate" 10.0 r0;
      Alcotest.(check (float 1e-9)) "bin1 start" 1.0 t1;
      Alcotest.(check (float 1e-9)) "bin1 empty" 0.0 r1;
      Alcotest.(check (float 1e-9)) "bin2 rate" 30.0 r2;
      ignore t2
  | other -> Alcotest.fail (Printf.sprintf "unexpected series length %d" (List.length other))

let test_network_counters () =
  let e, net, n0, _, _ = two_nodes () in
  Network.send net ~src:n0 ~dst:1 ~channel:Inbox.Consensus ~bytes:10 "a";
  Network.send net ~src:n0 ~dst:1 ~channel:Inbox.Consensus ~bytes:10 "b";
  Engine.run_until_idle e;
  Alcotest.(check int) "sent" 2 (Network.sent_count net);
  Alcotest.(check int) "delivered" 2 (Network.delivered_count net);
  Alcotest.(check bool) "events counted" true (Engine.events_processed e >= 2)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_engine_events_fire_in_order =
  QCheck.Test.make ~name:"events always fire in nondecreasing time order" ~count:100
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.0))
    (fun delays ->
      let e = Engine.create ~seed:3L in
      let ok = ref true in
      let last = ref 0.0 in
      List.iter
        (fun d ->
          Engine.schedule e ~delay:d (fun () ->
              if Engine.now e < !last then ok := false;
              last := Engine.now e))
        delays;
      Engine.run_until_idle e;
      !ok)

let prop_inbox_never_exceeds_capacity =
  QCheck.Test.make ~name:"shared inbox never exceeds capacity" ~count:100
    QCheck.(pair (int_range 1 20) (list (int_bound 1)))
    (fun (cap, pushes) ->
      let q = Inbox.create (Inbox.Shared cap) in
      List.for_all
        (fun c ->
          let channel = if c = 0 then Inbox.Request else Inbox.Consensus in
          ignore (Inbox.push q channel ());
          Inbox.length q <= cap)
        pushes)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_engine_events_fire_in_order; prop_inbox_never_exceeds_capacity ]

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "starts at zero" `Quick test_engine_time_starts_at_zero;
          Alcotest.test_case "event ordering" `Quick test_engine_event_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_engine_fifo_at_same_time;
          Alcotest.test_case "clock advances" `Quick test_engine_clock_advances_to_event_time;
          Alcotest.test_case "horizon" `Quick test_engine_run_until_horizon;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "timer cancel" `Quick test_engine_timer_cancel;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_rejected;
          Alcotest.test_case "past schedule clamps" `Quick test_engine_schedule_at_past_clamps;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
        ] );
      ( "topology",
        [
          Alcotest.test_case "lan single region" `Quick test_topology_lan_single_region;
          Alcotest.test_case "gcp regions" `Quick test_topology_gcp_regions;
          Alcotest.test_case "gcp bad count" `Quick test_topology_gcp_bad_count;
          Alcotest.test_case "latency positive" `Quick test_topology_latency_positive_and_jittered;
          Alcotest.test_case "wan slower" `Quick test_topology_wan_slower_than_lan;
          Alcotest.test_case "table 3 values" `Quick test_topology_table3_matches;
          Alcotest.test_case "transfer time" `Quick test_topology_transfer_time;
          Alcotest.test_case "constrained lan" `Quick test_topology_constrained_lan;
        ] );
      ( "inbox",
        [
          Alcotest.test_case "shared FIFO" `Quick test_inbox_shared_fifo;
          Alcotest.test_case "shared drops when full" `Quick test_inbox_shared_drops_when_full;
          Alcotest.test_case "split priority" `Quick test_inbox_split_priority;
          Alcotest.test_case "flood spares consensus" `Quick
            test_inbox_split_request_flood_spares_consensus;
          Alcotest.test_case "clear" `Quick test_inbox_clear;
          Alcotest.test_case "zero capacity" `Quick test_inbox_zero_capacity_rejected;
        ] );
      ( "node",
        [
          Alcotest.test_case "in order" `Quick test_node_processes_in_order;
          Alcotest.test_case "serial CPU" `Quick test_node_serial_cpu;
          Alcotest.test_case "timer-context charge" `Quick test_node_charge_from_timer_context;
          Alcotest.test_case "crash drops" `Quick test_node_crash_drops_messages;
          Alcotest.test_case "recover resumes" `Quick test_node_recover_resumes;
          Alcotest.test_case "busy fraction" `Quick test_node_busy_fraction;
          Alcotest.test_case "inbox backpressure" `Quick test_node_inbox_backpressure;
        ] );
      ( "network",
        [
          Alcotest.test_case "latency delivery" `Quick test_network_delivers_with_latency;
          Alcotest.test_case "unknown destination" `Quick test_network_unknown_destination_ignored;
          Alcotest.test_case "filter drop" `Quick test_network_filter_drop;
          Alcotest.test_case "filter delay" `Quick test_network_filter_delay;
          Alcotest.test_case "filter duplicate" `Quick test_network_filter_duplicate;
          Alcotest.test_case "broadcast excludes self" `Quick test_network_broadcast_excludes_self;
          Alcotest.test_case "external sender" `Quick test_network_send_external;
          Alcotest.test_case "duplicate registration" `Quick test_network_duplicate_registration;
        ] );
      ( "faults+metrics",
        [
          Alcotest.test_case "roster" `Quick test_faults_roster;
          Alcotest.test_case "random selection" `Quick test_faults_random_selection;
          Alcotest.test_case "adaptive corruption" `Quick test_faults_adaptive_corruption_delay;
          Alcotest.test_case "adaptive corruption timestamp" `Quick
            test_faults_adaptive_corruption_timestamp;
          Alcotest.test_case "throughput" `Quick test_metrics_throughput;
          Alcotest.test_case "counters and gauges" `Quick test_metrics_counters_and_gauges;
          Alcotest.test_case "abort rate" `Quick test_metrics_abort_rate;
          Alcotest.test_case "throughput series" `Quick test_metrics_throughput_series;
          Alcotest.test_case "network counters" `Quick test_network_counters;
        ] );
      ("properties", qsuite);
    ]
