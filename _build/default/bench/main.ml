(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus Bechamel micro-benchmarks of the real
   cryptographic / trusted-log operations backing Table 2.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig8 fig13   # selected experiments
     dune exec bench/main.exe -- micro        # only the Bechamel suite
     BENCH_QUICK=1 dune exec bench/main.exe   # reduced sweeps *)

open Repro_util
open Repro_crypto
open Repro_core

let quick = Sys.getenv_opt "BENCH_QUICK" <> None

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (one Test.make per operation)              *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let payload = String.init 256 (fun i -> Char.chr (i mod 256)) in
  let keystore = Keys.create_keystore (Rng.create 1L) in
  let secret = Keys.gen keystore ~id:0 in
  let enclave_ks = Keys.create_keystore (Rng.create 2L) in
  let enclave =
    Repro_sgx.Enclave.create ~keystore:enclave_ks ~id:0 ~measurement:"bench"
      ~rng:(Rng.create 3L) ~costs:Cost_model.free
      ~charge:(fun _ -> ())
      ~now:(fun () -> 0.0)
  in
  let a2m = Repro_sgx.A2m.create enclave ~watermark_window:1_000_000 in
  let slot = ref 0 in
  let leaves = List.init 100 (fun i -> "tx-" ^ string_of_int i) in
  let zipf = Zipf.create ~n:100_000 ~theta:0.99 in
  let zrng = Rng.create 9L in
  [
    Test.make ~name:"sha256/256B" (Staged.stage (fun () -> Sha256.digest_string payload));
    Test.make ~name:"hmac-sha256/256B"
      (Staged.stage (fun () -> Sha256.hmac ~key:"secret-key" payload));
    Test.make ~name:"sign-hmac" (Staged.stage (fun () -> Keys.sign_hmac secret payload));
    Test.make ~name:"sim-signature" (Staged.stage (fun () -> Keys.sign secret ~msg_tag:42));
    Test.make ~name:"merkle-root/100" (Staged.stage (fun () -> Merkle.root leaves));
    Test.make ~name:"a2m-append"
      (Staged.stage (fun () ->
           incr slot;
           Repro_sgx.A2m.append a2m ~log:0 ~slot:!slot ~digest_tag:7));
    Test.make ~name:"hypergeom-tail"
      (Staged.stage (fun () ->
           Logspace.hypergeom_tail ~total:2000 ~bad:500 ~draws:80 ~at_least:40));
    Test.make ~name:"committee-size-solve"
      (Staged.stage (fun () ->
           Repro_shard.Sizing.min_committee_size ~total:2000 ~fraction:0.25
             ~rule:Repro_shard.Sizing.Ahl_half ~security_bits:20));
    Test.make ~name:"zipf-sample" (Staged.stage (fun () -> Zipf.sample zipf zrng));
  ]

let run_micro () =
  let open Bechamel in
  print_endline "==== micro: Bechamel benchmarks of real operations ====";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun key ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/op\n" key est
          | Some _ | None -> Printf.printf "%-28s (no estimate)\n" key)
        analyzed)
    (micro_tests ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure/table harness                                                 *)
(* ------------------------------------------------------------------ *)

let csv_dir = Sys.getenv_opt "BENCH_CSV_DIR"

let run_experiment id =
  match Experiment.by_id id with
  | None -> Printf.printf "unknown experiment id: %s\n" id
  | Some f ->
      let t0 = Unix.gettimeofday () in
      let fig = f ~quick () in
      Results.print fig;
      Option.iter (fun dir -> Results.save_csv ~dir fig) csv_dir;
      Printf.printf "(%s completed in %.1f s wall time)\n\n%!" id (Unix.gettimeofday () -. t0)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  match args with
  | [] ->
      run_micro ();
      List.iter run_experiment Experiment.all_ids
  | [ "micro" ] -> run_micro ()
  | ids -> List.iter (fun id -> if id = "micro" then run_micro () else run_experiment id) ids
