lib/util/heap.mli:
