lib/util/logspace.mli:
