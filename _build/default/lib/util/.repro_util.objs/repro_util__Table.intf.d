lib/util/table.mli:
