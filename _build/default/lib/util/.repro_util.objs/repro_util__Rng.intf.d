lib/util/rng.mli:
