lib/util/stats.mli:
