lib/util/logspace.ml: Array Float List Stdlib
