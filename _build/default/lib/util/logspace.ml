(* Lanczos approximation with g = 7, n = 9 coefficients (Numerical Recipes
   variant); relative error below 1e-10 over the positive reals. *)
let lanczos_coefficients =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x < 0.5 then
    (* Reflection formula: Γ(x)Γ(1-x) = π / sin(πx). *)
    log (Float.pi /. Float.abs (sin (Float.pi *. x))) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let a = ref lanczos_coefficients.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

let log_choose n k =
  if k < 0 || k > n then neg_infinity
  else if k = 0 || k = n then 0.0
  else
    log_gamma (float_of_int (n + 1))
    -. log_gamma (float_of_int (k + 1))
    -. log_gamma (float_of_int (n - k + 1))

let log_add a b =
  if a = neg_infinity then b
  else if b = neg_infinity then a
  else if a > b then a +. log1p (exp (b -. a))
  else b +. log1p (exp (a -. b))

let log_sum l = List.fold_left log_add neg_infinity l

let hypergeom_log_pmf ~total ~bad ~draws ~k =
  if k < 0 || k > draws || k > bad || draws - k > total - bad then neg_infinity
  else log_choose bad k +. log_choose (total - bad) (draws - k) -. log_choose total draws

let hypergeom_log_tail ~total ~bad ~draws ~at_least =
  let hi = Stdlib.min draws bad in
  if at_least > hi then neg_infinity
  else begin
    let acc = ref neg_infinity in
    for k = Stdlib.max 0 at_least to hi do
      acc := log_add !acc (hypergeom_log_pmf ~total ~bad ~draws ~k)
    done;
    Float.min !acc 0.0
  end

let hypergeom_tail ~total ~bad ~draws ~at_least =
  exp (hypergeom_log_tail ~total ~bad ~draws ~at_least)

let binomial_tail ~n ~p ~at_least =
  if at_least <= 0 then 1.0
  else if at_least > n then 0.0
  else if p <= 0.0 then 0.0
  else if p >= 1.0 then 1.0
  else begin
    let lp = log p and lq = log (1.0 -. p) in
    let acc = ref neg_infinity in
    for k = at_least to n do
      let term = log_choose n k +. (float_of_int k *. lp) +. (float_of_int (n - k) *. lq) in
      acc := log_add !acc term
    done;
    exp (Float.min !acc 0.0)
  end
