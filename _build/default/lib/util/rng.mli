(** Deterministic pseudo-random number generation.

    Every stochastic component of the reproduction (simulator, workloads,
    enclave randomness) draws from an explicit [Rng.t] stream so that whole
    experiments are reproducible from a single integer seed.  The generator
    is SplitMix64 (Steele et al., OOPSLA 2014): tiny state, good statistical
    quality, and cheap [split] for deriving independent child streams. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a fresh stream from a 64-bit seed. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> t
(** [split t] derives a child stream that is statistically independent of
    further draws from [t].  Used to give every node / enclave / client its
    own stream without sharing mutable state. *)

val split_named : t -> string -> t
(** [split_named t label] derives a child stream keyed by [label], so the
    stream a component receives does not depend on the order in which other
    components were created. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int -> int
(** [bits t k] returns [k] uniform random bits as a non-negative int
    ([0 <= k <= 62]). *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Raises [Invalid_argument] if
    [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean; used for Poisson
    arrival processes and PoET wait times. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box–Muller (one value per call, no caching, so the
    stream stays splittable). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0 .. n-1];
    the node-to-committee assignment of Section 5.1 is a chunking of this. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val bytes : t -> int -> string
(** [bytes t n] returns [n] pseudo-random bytes (enclave [sgx_read_rand]). *)
