(** ASCII rendering of experiment output: aligned tables for the paper's
    tables and row-per-x series for its figures. *)

val render : header:string list -> rows:string list list -> string
(** Column-aligned table with a separator under the header. *)

val print : header:string list -> rows:string list list -> unit

val series :
  title:string -> x_label:string -> columns:string list ->
  rows:(float * float list) list -> string
(** [series ~title ~x_label ~columns ~rows] renders one figure panel: each
    row is an x value followed by one y value per named column (matching the
    paper's lines within a plot). *)

val print_series :
  title:string -> x_label:string -> columns:string list ->
  rows:(float * float list) list -> unit

val fnum : float -> string
(** Compact float formatting: integers render without a decimal point,
    small values keep enough significant digits to be comparable. *)
