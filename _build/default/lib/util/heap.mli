(** Binary min-heap keyed by float priority with a monotone tie-break.

    This is the event queue of the discrete-event simulator: events with
    equal timestamps pop in insertion order, which keeps simulations
    deterministic regardless of heap internals. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h key v] inserts [v] with priority [key]. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-key element; ties resolve FIFO. *)

val peek_key : 'a t -> float option
(** Key of the minimum element without removing it. *)

val clear : 'a t -> unit
